// Quickstart: the complete TT-SNN lifecycle (Algorithm 1) in ~60 lines.
//
//   1. Build a spiking MS-ResNet18.
//   2. Factorize its convolutions into TT cores (PTT mode).
//   3. Train with surrogate-gradient BPTT on a synthetic dataset.
//   4. Merge the cores back into dense kernels for spike-driven inference.
//   5. Verify the merged model scores identically.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/factorize.h"
#include "core/flops.h"
#include "core/models.h"
#include "data/synthetic_image.h"
#include "snn/trainer.h"

using namespace ttsnn;

int main() {
  Rng rng(42);

  // 1. A scaled-down MS-ResNet18 (width 8) with LIF neurons (tau=0.25, vth=0.5).
  ModelConfig cfg;
  cfg.num_classes = 4;
  cfg.base_width = 8;
  cfg.timesteps = 4;
  ModulePtr net = make_ms_resnet18(cfg, rng);
  ModelStats dense_stats = analyze_model(*net, 3, 12, 12);
  std::printf("dense model:      %s\n", stats_summary(dense_stats, 4).c_str());

  // 2. TT-decompose every block convolution (Parallel TT pipeline).
  FactorizeOptions fopts;
  fopts.mode = TTMode::kPTT;
  fopts.use_vbmf = false;     // tiny toy weights: use a fixed rank fraction
  fopts.rank_fraction = 0.5;  // (real flows use VBMF; see cifar_pipeline)
  FactorizeReport report = factorize_network(*net, fopts, rng);
  ModelStats tt_stats = analyze_model(*net, 3, 12, 12);
  std::printf("factorized (%lld layers): %s\n",
              static_cast<long long>(report.replaced()),
              stats_summary(tt_stats, 4).c_str());

  // 3. Train with BPTT: SGD + momentum + cosine LR, CE on summed logits.
  SyntheticImageDataset train({.num_classes = 4, .samples_per_class = 16,
                               .size = 12, .seed = 1});
  SyntheticImageDataset test({.num_classes = 4, .samples_per_class = 8,
                              .size = 12, .seed = 2});
  Trainer trainer(*net, train, test,
                  {.epochs = 5, .batch_size = 16, .timesteps = 4, .lr = 0.08F,
                   .seed = 3});
  FitResult fit = trainer.fit();
  std::printf("trained: test accuracy %.1f%% (chance 25%%), %.3f s/batch\n",
              100.0 * fit.test_accuracy, fit.batch_time_s);

  // 4. Merge TT cores into dense kernels (Eq. 6) for spike-driven inference.
  merge_network(*net);

  // 5. The merged network computes the same function.
  Trainer eval(*net, train, test, {.epochs = 1, .batch_size = 16, .timesteps = 4});
  std::printf("merged model: test accuracy %.1f%% (must match)\n",
              100.0 * eval.evaluate());
  return 0;
}
