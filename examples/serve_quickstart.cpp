// Quickstart for the inference stack: train-side model -> checkpoint ->
// compiled engine -> sharded serving router.
//
//   1. Build and factorize a model with the training API (here: a scaled
//      MS-ResNet18 in PTT mode; a real run would Trainer::fit() it first).
//   2. save_parameters() writes weights AND BatchNorm running statistics.
//   3. A serving process reconstructs the architecture, then
//      compile_checkpoint() loads the checkpoint and lowers the module tree
//      into an immutable, thread-safe infer::Engine.
//   4. infer::Router clones the plan across shard replicas and coalesces
//      single-sample requests into same-shape micro-batches per shard —
//      mixed request shapes never block each other. (infer::Server is the
//      same machinery pinned to one shard.)
//   5. Serving is shape-general: each new input resolution compiles its
//      program once (single-flight, LRU byte budget) and every later
//      request of that shape is a cache hit. Requests carry a priority
//      class, and a queue-byte budget sheds overload as AdmissionError
//      at submit time instead of letting queues grow without bound.

#include <cstdio>
#include <future>
#include <vector>

#include "core/factorize.h"
#include "core/models.h"
#include "infer/engine.h"
#include "infer/router.h"
#include "snn/serialize.h"
#include "tensor/ops.h"

using namespace ttsnn;

namespace {

ModulePtr build_model(uint64_t seed) {
  Rng rng(seed);
  ModelConfig cfg;
  cfg.in_channels = 3;
  cfg.num_classes = 10;
  cfg.base_width = 8;
  cfg.timesteps = 4;
  ModulePtr net = make_ms_resnet18(cfg, rng);
  FactorizeOptions fopts;
  fopts.mode = TTMode::kPTT;
  fopts.use_vbmf = false;
  fopts.rank_fraction = 0.4;
  factorize_network(*net, fopts, rng);
  return net;
}

}  // namespace

int main() {
  const std::string ckpt = "/tmp/ttsnn_serve_quickstart.bin";

  // --- training side -------------------------------------------------------
  {
    ModulePtr net = build_model(/*seed=*/1);
    // Stand-in for Trainer::fit(): a couple of training forwards so the BN
    // running statistics are real.
    Rng data_rng(7);
    net->set_training(true);
    for (int i = 0; i < 2; ++i) {
      net->forward(Tensor::uniform({4, 4, 3, 12, 12}, data_rng));
    }
    net->clear_cache();
    save_parameters(*net, ckpt);
    std::printf("saved checkpoint: %s\n", ckpt.c_str());
  }

  // --- serving side --------------------------------------------------------
  // Rebuild the architecture (any seed: the checkpoint overwrites it), load
  // and compile. The unmerged plan is the FLOP-cheap one on CPU; pass
  // default options instead to get the merged spike-hardware kernels.
  ModulePtr arch = build_model(/*seed=*/99);
  infer::Engine engine = infer::compile_checkpoint(
      *arch, ckpt, {.merge_tt = false, .fold_batchnorm = true});
  std::printf("compiled plan (%zu ops):\n%s", engine.num_ops(),
              engine.summary().c_str());

  // Typed weight planes: the same checkpoint can serve with compressed
  // weights — bf16 halves the footprint; int8 quarters it for spike-fed
  // layers (per-output-channel scales, calibrated after BN folding). All
  // three engines below share the merged lowering so the bytes compare
  // like-for-like; f32 remains the bit-identical default. Per-dtype byte
  // accounting comes straight from the engine's weight footprint (also
  // surfaced in RouterStats for a running fleet).
  for (const WeightDtype dtype :
       {WeightDtype::kF32, WeightDtype::kBf16, WeightDtype::kInt8}) {
    ModulePtr a = build_model(/*seed=*/99);
    infer::Engine e =
        infer::compile_checkpoint(*a, ckpt, {.weight_dtype = dtype});
    const infer::WeightFootprint& fp = e.weight_footprint();
    std::printf("weight footprint, %-4s plan: %7lld bytes "
                "(f32 %lld, bf16 %lld, int8+scales %lld)\n",
                weight_dtype_name(dtype), static_cast<long long>(fp.total()),
                static_cast<long long>(fp.f32_bytes),
                static_cast<long long>(fp.bf16_bytes),
                static_cast<long long>(fp.int8_bytes));
  }

  // Two engine replicas (cloned plans over shared weights AND a shared
  // program cache), each with its own per-(shape, class) queues; the
  // session key routes a client's traffic to a stable shard. Mixed shapes
  // — here the image size and a smaller event-style clip — coalesce
  // independently instead of queueing behind each other, and an idle
  // shard steals ready batches from a loaded one. `queue_bytes` puts a
  // per-shard budget on queued sample bytes: submits past it throw
  // infer::AdmissionError synchronously ("overloaded, back off") instead
  // of growing the queue without bound.
  infer::Router router(engine, {.num_shards = 2, .max_batch = 4,
                                .max_delay_ms = 2.0,
                                .queue_bytes = 64 << 20});
  Rng rng(42);
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 8; ++i) {
    Tensor sample = (i % 4 == 3) ? Tensor::uniform({4, 3, 8, 8}, rng)
                                 : Tensor::uniform({4, 3, 12, 12}, rng);
    // Interactive requests dispatch before batch-class ones whenever both
    // are ready on a shard; within a class, oldest group first.
    const infer::Priority cls =
        (i % 2 == 0) ? infer::Priority::kInteractive : infer::Priority::kBatch;
    futures.push_back(router.submit(std::move(sample),
                                    /*session=*/static_cast<uint64_t>(i), cls));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    Tensor logits_t = futures[i].get();  // [T, classes]
    // Rate decoding: class scores are logits summed over timesteps.
    const int64_t classes = logits_t.size(-1);
    Tensor scores({classes});
    for (int64_t t = 0; t < logits_t.size(0); ++t) {
      for (int64_t c = 0; c < classes; ++c) {
        scores[c] += logits_t[t * classes + c];
      }
    }
    std::printf("request %zu -> class %lld\n", i,
                static_cast<long long>(scores.argmax()));
  }
  infer::RouterStats stats = router.stats();
  std::printf("served %lld requests in %lld batches (mean batch %.1f)\n",
              static_cast<long long>(stats.requests),
              static_cast<long long>(stats.batches), stats.mean_batch());
  for (size_t s = 0; s < stats.shard_requests.size(); ++s) {
    std::printf("  shard %zu: %lld requests in %lld batches, %lld stolen\n", s,
                static_cast<long long>(stats.shard_requests[s]),
                static_cast<long long>(stats.shard_batches[s]),
                static_cast<long long>(stats.shard_steals[s]));
  }
  std::printf("plan cache: %lld shape(s), %lld bytes, %lld hits / %lld "
              "misses, %lld shed\n",
              static_cast<long long>(stats.cache_shapes),
              static_cast<long long>(stats.cache_bytes),
              static_cast<long long>(stats.cache_hits),
              static_cast<long long>(stats.cache_misses),
              static_cast<long long>(stats.shed));
  std::remove(ckpt.c_str());
  return 0;
}
