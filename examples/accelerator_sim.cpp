// Accelerator simulation walkthrough: maps a TT-SNN training workload onto
// (a) the existing single-engine SNN training accelerator [3] and (b) the
// proposed 4-cluster pipelined design (Sec. IV, Fig. 3), and prints the
// per-component energy breakdown for one training image.
//
// Build & run:  ./build/examples/accelerator_sim

#include <cstdio>

#include "core/factorize.h"
#include "core/flops.h"
#include "core/models.h"
#include "core/paper_config.h"
#include "hw/multi_cluster.h"
#include "hw/sata_baseline.h"

using namespace ttsnn;

namespace {

HwWorkload resnet18_workload(TTMode mode, bool factorize, bool parallel) {
  Rng rng(1);
  ModelConfig cfg;
  cfg.base_width = 64;  // paper scale
  cfg.num_classes = 10;
  cfg.timesteps = 4;
  ModulePtr net = make_ms_resnet18(cfg, rng);
  if (factorize) {
    FactorizeOptions f;
    f.mode = mode;
    f.explicit_ranks = paper_ranks_resnet18();  // published VBMF ranks
    f.init_from_dense = false;                  // shapes only; no training here
    if (mode == TTMode::kHTT) f.htt_schedule = {true, true, false, false};
    factorize_network(*net, f, rng);
  }
  ModelStats stats = analyze_model(*net, 3, 32, 32);
  WorkloadOptions w;
  w.timesteps = 4;
  w.parallel_strips = parallel;
  return build_workload("ResNet18", stats, w);
}

void print_report(const char* design, const char* mode, const EnergyReport& r,
                  double clock_ghz) {
  std::printf("%-12s %-9s total %9.1f uJ | compute %7.1f  sram %7.1f  dram "
              "%7.1f  lif %5.1f  leak %7.1f | %.2f ms\n",
              design, mode, r.total_pj() / 1e6, r.compute_pj / 1e6,
              r.sram_pj / 1e6, r.dram_pj / 1e6, r.lif_pj / 1e6,
              r.leakage_pj / 1e6, r.milliseconds(clock_ghz));
}

}  // namespace

int main() {
  std::printf("Training energy for ONE image, forward + BPTT backward, T=4,\n"
              "MS-ResNet18 @ 32x32 with the paper's published VBMF ranks.\n\n");

  SataConfig sata;
  MultiClusterConfig mc;

  HwWorkload base = resnet18_workload(TTMode::kSTT, false, false);
  HwWorkload stt = resnet18_workload(TTMode::kSTT, true, false);
  HwWorkload ptt = resnet18_workload(TTMode::kPTT, true, true);
  HwWorkload htt = resnet18_workload(TTMode::kHTT, true, true);

  std::printf("--- existing single-engine accelerator (SATA-style [3]) ---\n");
  print_report("existing", "baseline", simulate_sata(base, sata),
               sata.energy.clock_ghz);
  EnergyReport s = simulate_sata(stt, sata);
  print_report("existing", "STT", s, sata.energy.clock_ghz);
  EnergyReport p = simulate_sata(ptt, sata);
  print_report("existing", "PTT", p, sata.energy.clock_ghz);
  print_report("existing", "HTT", simulate_sata(htt, sata),
               sata.energy.clock_ghz);
  std::printf("PTT pays +%.1f%% over STT here: one strip output round-trips "
              "through DRAM before the merge.\n\n",
              100.0 * (p.total_pj() / s.total_pj() - 1.0));

  std::printf("--- proposed 4-cluster pipelined accelerator (Fig. 3) ---\n");
  EnergyReport ms = simulate_multi_cluster(stt, mc);
  print_report("proposed", "STT", ms, mc.energy.clock_ghz);
  EnergyReport mp = simulate_multi_cluster(ptt, mc);
  print_report("proposed", "PTT", mp, mc.energy.clock_ghz);
  EnergyReport mh = simulate_multi_cluster(htt, mc);
  print_report("proposed", "HTT", mh, mc.energy.clock_ghz);
  std::printf("PTT saves %.1f%% and HTT %.1f%% vs STT: parallel strip "
              "clusters + adder-array merge remove the buffer bounces.\n",
              100.0 * (1.0 - mp.total_pj() / ms.total_pj()),
              100.0 * (1.0 - mh.total_pj() / ms.total_pj()));
  return 0;
}
