// Event-camera pipeline: TT-SNN on a dynamic dataset (N-Caltech101 stand-in)
// where every timestep carries DIFFERENT input — the regime in which the
// paper finds HTT loses accuracy while PTT holds up (Table II discussion).
// Also demonstrates NDA-style event augmentation.
//
// Build & run:  ./build/examples/event_pipeline

#include <cstdio>

#include "core/factorize.h"
#include "core/models.h"
#include "data/synthetic_event.h"
#include "snn/trainer.h"

using namespace ttsnn;

namespace {

double train_mode(TTMode mode, bool factorize, const char* label) {
  Rng rng(9);
  ModelConfig cfg;
  cfg.in_channels = 2;  // ON / OFF polarity
  cfg.num_classes = 4;
  cfg.base_width = 8;
  cfg.timesteps = 6;
  ModulePtr net = make_ms_resnet18(cfg, rng);
  if (factorize) {
    FactorizeOptions f;
    f.mode = mode;
    f.use_vbmf = false;
    f.rank_fraction = 0.5;
    // Paper (Sec. V-A): N-Caltech101 uses half sub-convolutions at t = 5, 6.
    if (mode == TTMode::kHTT) f.htt_schedule = {true, true, true, true, false, false};
    factorize_network(*net, f, rng);
  }

  SyntheticEventDataset train({.num_classes = 4, .samples_per_class = 20,
                               .size = 12, .seed = 31});
  SyntheticEventDataset test({.num_classes = 4, .samples_per_class = 8,
                              .size = 12, .seed = 32});
  Trainer trainer(*net, train, test,
                  {.epochs = 5, .batch_size = 16, .timesteps = 6, .lr = 0.08F,
                   .augment = true,
                   .augment_opts = {.max_shift = 1, .cutout_size = 0},
                   .seed = 13});
  FitResult fit = trainer.fit();
  std::printf("%-8s acc %.1f%%  %.3f s/batch\n", label,
              100.0 * fit.test_accuracy, fit.batch_time_s);
  return fit.test_accuracy;
}

}  // namespace

int main() {
  std::printf("event dataset: per-timestep distinct frames, T = 6\n");
  train_mode(TTMode::kPTT, false, "baseline");
  const double ptt = train_mode(TTMode::kPTT, true, "PTT");
  const double htt = train_mode(TTMode::kHTT, true, "HTT");
  std::printf("PTT - HTT accuracy gap: %.1f points (paper: HTT loses on "
              "dynamic data)\n",
              100.0 * (ptt - htt));
  return 0;
}
