// Event-camera pipeline: TT-SNN on a dynamic dataset (N-Caltech101 stand-in)
// where every timestep carries DIFFERENT input — the regime in which the
// paper finds HTT loses accuracy while PTT holds up (Table II discussion).
// Also demonstrates NDA-style event augmentation riding the async DataLoader.
//
// Each mode is the SAME scenario config with tt_mode swapped — the point of
// the scenario layer: comparing baseline / PTT / HTT is three option edits,
// not three pipelines. The equivalent CLI run:
//   ./build/ttsnn_train --dataset=event --model=resnet18 --base_width=8 …
//       --tt_mode=htt --timesteps=6 --htt_schedule=111100 --augment --epochs=5
//
// Build & run:  ./build/event_pipeline

#include <cstdio>

#include "snn/scenario.h"

using namespace ttsnn;

namespace {

double train_mode(const char* tt_mode, const char* label) {
  ScenarioConfig cfg;
  cfg.dataset = "event";
  cfg.classes = 4;
  cfg.train_per_class = 20;
  cfg.test_per_class = 8;
  cfg.image_size = 12;
  cfg.data_seed = 31;
  cfg.model = "resnet18";
  cfg.base_width = 8;
  cfg.tt_mode = tt_mode;
  cfg.rank_fraction = 0.5;
  // Paper (Sec. V-A): N-Caltech101 uses half sub-convolutions at t = 5, 6.
  cfg.htt_schedule = "111100";
  cfg.epochs = 6;
  cfg.batch_size = 16;
  cfg.timesteps = 6;
  cfg.lr = 0.08F;
  cfg.augment = true;
  cfg.augment_max_shift = 1;
  cfg.augment_cutout = 0;
  cfg.seed = 5;

  ScenarioResult r = run_scenario(cfg);
  std::printf("%-8s acc %.1f%%  %.3f s/batch\n", label,
              100.0 * r.fit.test_accuracy, r.fit.batch_time_s);
  return r.fit.test_accuracy;
}

}  // namespace

int main() {
  std::printf("event dataset: per-timestep distinct frames, T = 6\n");
  train_mode("none", "baseline");
  const double ptt = train_mode("ptt", "PTT");
  const double htt = train_mode("htt", "HTT");
  std::printf("PTT - HTT accuracy gap: %.1f points (paper: HTT loses on "
              "dynamic data)\n",
              100.0 * (ptt - htt));
  return 0;
}
