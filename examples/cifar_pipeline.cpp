// CIFAR-style pipeline: the full Algorithm 1 flow on a static image dataset,
// including VBMF rank selection from pretrained dense weights.
//
//   1. Train a dense MS-ResNet18 briefly (the "base model").
//   2. Run VBMF on its conv weights to pick TT-ranks automatically.
//   3. Factorize with TT-SVD initialization and continue training (PTT).
//   4. Compare baseline vs TT on accuracy / params / FLOPs / batch time.
//
// Build & run:  ./build/examples/cifar_pipeline

#include <cstdio>

#include "core/factorize.h"
#include "core/flops.h"
#include "core/models.h"
#include "data/synthetic_image.h"
#include "snn/trainer.h"

using namespace ttsnn;

int main() {
  Rng rng(7);
  ModelConfig cfg;
  cfg.num_classes = 4;
  cfg.base_width = 12;
  cfg.timesteps = 4;

  SyntheticImageDataset train({.num_classes = 4, .samples_per_class = 24,
                               .size = 12, .seed = 11});
  SyntheticImageDataset test({.num_classes = 4, .samples_per_class = 8,
                              .size = 12, .seed = 22});
  TrainConfig tcfg{.epochs = 4, .batch_size = 16, .timesteps = 4, .lr = 0.08F,
                   .seed = 5};

  // 1. Base model pre-training (Algorithm 1 line 1).
  ModulePtr net = make_ms_resnet18(cfg, rng);
  Trainer base_trainer(*net, train, test, tcfg);
  FitResult base_fit = base_trainer.fit();
  ModelStats base_stats = analyze_model(*net, 3, 12, 12);
  std::printf("baseline: acc %.1f%%  %s  %.3f s/batch\n",
              100.0 * base_fit.test_accuracy,
              stats_summary(base_stats, 4).c_str(), base_fit.batch_time_s);

  // 2+3. VBMF ranks from the trained weights, TT-SVD init, continue training.
  FactorizeOptions fopts;
  fopts.mode = TTMode::kPTT;
  fopts.use_vbmf = true;  // Algorithm 1 line 2
  FactorizeReport report = factorize_network(*net, fopts, rng);
  std::printf("VBMF ranks: ");
  for (const FactorizedLayer& l : report.layers) {
    std::printf("%lld ", static_cast<long long>(l.rank));
  }
  std::printf("\n");
  std::printf("compression: %.2fx params in decomposed layers (init err "
              "%.2f..%.2f)\n",
              static_cast<double>(report.dense_params()) /
                  static_cast<double>(report.tt_params()),
              report.layers.front().init_error, report.layers.back().init_error);

  Trainer tt_trainer(*net, train, test, tcfg);
  FitResult tt_fit = tt_trainer.fit();
  ModelStats tt_stats = analyze_model(*net, 3, 12, 12);
  std::printf("PTT:      acc %.1f%%  %s  %.3f s/batch\n",
              100.0 * tt_fit.test_accuracy, stats_summary(tt_stats, 4).c_str(),
              tt_fit.batch_time_s);

  // 4. Merge for spike-driven inference (Algorithm 1 lines 20-22).
  merge_network(*net);
  Trainer merged(*net, train, test, tcfg);
  std::printf("merged:   acc %.1f%% (spike-driven inference model)\n",
              100.0 * merged.evaluate());
  return 0;
}
