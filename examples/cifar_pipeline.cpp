// CIFAR-style pipeline: the full Algorithm 1 flow on a static image dataset,
// composed as ONE scenario config (the same schema `ttsnn_train` and the
// configs/*.cfg files use) instead of a hand-written pipeline:
//
//   pretrain_epochs  trains the dense base model (Algorithm 1 line 1),
//   vbmf             picks TT-ranks from its trained weights (line 2),
//   tt_mode = ptt    factorizes with TT-SVD init and continues training,
//   compile_smoke    verifies the exact-mode engine matches the module.
//
// The same run from the CLI:
//   ./build/ttsnn_train --dataset=image --model=resnet18 --base_width=12 …
//       --tt_mode=ptt --pretrain_epochs=4 --vbmf --epochs=4 --compile_smoke
//
// Build & run:  ./build/cifar_pipeline

#include <cstdio>

#include "core/factorize.h"
#include "snn/scenario.h"
#include "snn/trainer.h"

using namespace ttsnn;

int main() {
  ScenarioConfig cfg;
  cfg.dataset = "image";
  cfg.classes = 4;
  cfg.train_per_class = 24;
  cfg.test_per_class = 8;
  cfg.image_size = 12;
  cfg.data_seed = 11;
  cfg.model = "resnet18";
  cfg.base_width = 12;
  cfg.tt_mode = "ptt";
  cfg.pretrain_epochs = 4;  // Algorithm 1 line 1: dense base model
  cfg.vbmf = true;          // line 2: automatic rank selection
  cfg.epochs = 4;
  cfg.batch_size = 16;
  cfg.timesteps = 4;
  cfg.lr = 0.08F;
  cfg.seed = 5;
  cfg.compile_smoke = true;

  ScenarioResult r = run_scenario(cfg);

  std::printf("baseline: acc %.1f%%  %s\n",
              100.0 * r.pretrain_fit.test_accuracy,
              stats_summary(r.dense_stats, cfg.timesteps).c_str());
  std::printf("VBMF ranks: ");
  for (const FactorizedLayer& l : r.factorization.layers) {
    std::printf("%lld ", static_cast<long long>(l.rank));
  }
  std::printf("\n");
  std::printf("compression: %.2fx params in decomposed layers (init err "
              "%.2f..%.2f)\n",
              static_cast<double>(r.factorization.dense_params()) /
                  static_cast<double>(r.factorization.tt_params()),
              r.factorization.layers.front().init_error,
              r.factorization.layers.back().init_error);
  std::printf("PTT:      %s\n", scenario_summary(cfg, r).c_str());
  std::printf("exact engine max |diff| vs module: %.3g\n",
              r.compile_max_abs_diff);

  // 4. Merge for spike-driven inference (Algorithm 1 lines 20-22). The
  //    scenario hands back the trained model, so post-passes keep composing.
  merge_network(*r.model);
  {
    std::unique_ptr<Dataset> train = make_scenario_dataset(cfg, true);
    std::unique_ptr<Dataset> test = make_scenario_dataset(cfg, false);
    Trainer merged(*r.model, *train, *test,
                   {.epochs = 1, .batch_size = cfg.batch_size,
                    .timesteps = cfg.timesteps, .seed = cfg.seed});
    std::printf("merged:   acc %.1f%% (spike-driven inference model)\n",
                100.0 * merged.evaluate());
  }
  return 0;
}
