#pragma once

/// \file optimizer.h
/// SGD with momentum and weight decay plus a cosine-annealing learning-rate
/// schedule — the training recipe of Sec. V-A (momentum 0.9, weight decay
/// 1e-4, cosine annealing from lr 0.1).

#include <vector>

#include "nn/module.h"

namespace ttsnn {

class SGD {
 public:
  struct Options {
    float lr = 0.1F;
    float momentum = 0.9F;
    float weight_decay = 1e-4F;
  };

  SGD(std::vector<Parameter*> params, Options opts);

  /// v = momentum * v + (grad + wd * w);  w -= lr * v.
  void step();
  void zero_grad();
  void set_lr(float lr) { opts_.lr = lr; }
  float lr() const { return opts_.lr; }

 private:
  std::vector<Parameter*> params_;
  std::vector<Tensor> velocity_;
  Options opts_;
};

/// Cosine annealing: lr(e) = 0.5 * base * (1 + cos(pi * e / total)).
class CosineLr {
 public:
  CosineLr(float base_lr, int64_t total_epochs);
  float at(int64_t epoch) const;

 private:
  float base_lr_ = 0.0F;
  int64_t total_epochs_ = 1;
};

}  // namespace ttsnn
