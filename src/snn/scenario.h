#pragma once

/// \file scenario.h
/// Declarative end-to-end training scenarios: one config struct composes
/// dataset (synthetic image / CIFAR-like / event-gesture), model architecture,
/// TT mode and rank source, loss, timesteps, augmentation, and the output
/// artifacts (checkpoint, compile smoke, JSON report). `ttsnn_train` is a
/// thin CLI over this API, and the examples build their pipelines from the
/// same configs — "new scenario" means "new config", not "new .cpp file".
///
/// Config sources compose in precedence order: defaults < config file
/// (`key = value` lines, '#' comments) < explicit CLI overrides
/// (`--key=value`). Unknown keys throw, so a typo fails loudly instead of
/// silently training the wrong scenario.

#include <memory>
#include <string>
#include <vector>

#include "core/factorize.h"
#include "core/flops.h"
#include "nn/module.h"
#include "snn/dataset.h"
#include "snn/trainer.h"

namespace ttsnn {

struct ScenarioConfig {
  // -- dataset ------------------------------------------------------------
  /// "image" (CIFAR-like static gratings), "event" (N-Caltech-like clips),
  /// or "gesture" (DVS-Gesture-like motion classes).
  std::string dataset = "image";
  int64_t classes = 4;
  int64_t train_per_class = 16;
  int64_t test_per_class = 6;
  int64_t image_size = 12;
  uint64_t data_seed = 11;

  // -- model --------------------------------------------------------------
  /// "resnet18", "resnet34", "resnet20", "vgg9", or "vgg11".
  std::string model = "resnet18";
  int64_t base_width = 8;
  /// "per_step", "tdbn", or "tebn".
  std::string bn = "per_step";

  // -- tensor-train factorization ------------------------------------------
  /// "none" (dense baseline), "stt", "ptt", or "htt".
  std::string tt_mode = "none";
  /// Dense pre-training epochs before factorization (Algorithm 1 line 1);
  /// 0 factorizes the random init directly.
  int64_t pretrain_epochs = 0;
  /// Explicit per-layer ranks (traversal order); empty defers to vbmf or
  /// rank_fraction.
  std::vector<int64_t> ranks;
  /// VBMF auto-rank from the (pre)trained dense weights (Algorithm 1 line 2).
  bool vbmf = false;
  double rank_fraction = 0.5;
  /// HTT per-timestep schedule as a '1'/'0' string ("1100" = full steps then
  /// half steps); empty defaults to full sub-convolutions in the first half.
  std::string htt_schedule;

  // -- training -----------------------------------------------------------
  int64_t epochs = 2;
  int64_t batch_size = 16;
  int64_t timesteps = 4;
  float lr = 0.05F;
  /// "ce" (CE on summed logits) or "tet".
  std::string loss = "ce";
  float tet_lambda = 0.05F;
  bool augment = false;
  int64_t augment_max_shift = 2;
  int64_t augment_cutout = 4;
  int64_t prefetch = 2;
  uint64_t seed = 7;
  bool verbose = false;

  // -- artifacts ----------------------------------------------------------
  /// Checkpoint path (save_parameters v2); empty skips saving.
  std::string checkpoint;
  /// After training, lower through infer::compile in exact mode and verify
  /// the engine reproduces eval-mode Module::forward on one test batch.
  bool compile_smoke = false;
  /// JSON training report path (bench_json.h conventions); empty skips it.
  std::string report;
};

struct ScenarioResult {
  FitResult fit;
  /// Static analysis of the trained model (post-factorization when TT is on).
  ModelStats stats;
  /// Dense pre-training result; epochs empty when pretrain_epochs = 0.
  FitResult pretrain_fit;
  /// Dense counts before factorization (equals `stats` for tt_mode "none").
  ModelStats dense_stats;
  /// Per-layer factorization report; empty for tt_mode "none".
  FactorizeReport factorization;
  /// Compile smoke: max |engine - module| over one test batch (-1 = not run).
  double compile_max_abs_diff = -1.0;
  /// The trained model, for callers that keep composing (merge, serve, ...).
  ModulePtr model;
};

/// Applies one `key = value` setting. Throws ttsnn::Error on an unknown key
/// or an unparsable value.
void apply_scenario_option(ScenarioConfig& cfg, const std::string& key,
                           const std::string& value);

/// Loads `key = value` lines ('#' starts a comment, blank lines ignored).
ScenarioConfig load_scenario_file(const std::string& path);

/// Parses CLI tokens: every token must be `--key=value` or a bare `--flag`
/// (bools). `--config=FILE` loads a file and must come first — it replaces
/// the whole config, and silently discarding earlier flags is exactly the
/// quiet misconfiguration this layer refuses.
ScenarioConfig parse_scenario_cli(const std::vector<std::string>& args);

/// Builds the (untrained) model architecture named by cfg. The architecture
/// half of run_scenario, exposed so offline tools (e.g. ttsnn_plan_lint) can
/// reconstruct a checkpoint-compatible module tree without touching a
/// dataset. Throws ttsnn::Error on an unknown model or bn name.
ModulePtr build_scenario_model(const ScenarioConfig& cfg, int64_t in_channels,
                               Rng& rng);

/// Translates the scenario's TT settings (mode, rank source, HTT schedule —
/// defaulting to full sub-convolutions in the early half) into
/// FactorizeOptions. Must not be called with tt_mode "none".
FactorizeOptions scenario_factorize_options(const ScenarioConfig& cfg);

/// Runs the scenario end to end: build data + model, optional dense
/// pre-training, factorize, train, then emit the requested artifacts
/// (checkpoint / compile smoke / JSON report).
ScenarioResult run_scenario(const ScenarioConfig& cfg);

/// Writes the JSON training report (schema of util/bench_json.h: one
/// "scenario" row, one row per epoch, one "result" row).
void write_scenario_report(const ScenarioConfig& cfg,
                           const ScenarioResult& result,
                           const std::string& path);

/// Builds the dataset named by cfg ("image" / "event" / "gesture").
/// `train` picks the train or test split (sizes and seed differ).
std::unique_ptr<Dataset> make_scenario_dataset(const ScenarioConfig& cfg,
                                               bool train);

/// One-line human summary: accuracy, params/FLOPs, batch time, data wait.
std::string scenario_summary(const ScenarioConfig& cfg,
                             const ScenarioResult& result);

}  // namespace ttsnn
