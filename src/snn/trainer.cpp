#include "snn/trainer.h"

#include <algorithm>
#include <iostream>
#include <numeric>

#include "tensor/arena.h"

namespace ttsnn {

Trainer::Trainer(Module& model, const Dataset& train, const Dataset& test,
                 TrainConfig cfg)
    : model_(model),
      train_(train),
      cfg_(cfg),
      optimizer_(model.parameters(),
                 {.lr = cfg.lr, .momentum = cfg.momentum,
                  .weight_decay = cfg.weight_decay}),
      schedule_(cfg.lr, std::max<int64_t>(cfg.epochs, 1)),
      train_loader_(train, {.batch_size = cfg.batch_size,
                            .timesteps = cfg.timesteps,
                            .seed = cfg.seed,
                            .shuffle = true,
                            .drop_last = true,
                            .augment = cfg.augment,
                            .augment_opts = cfg.augment_opts,
                            .prefetch = cfg.prefetch}),
      eval_loader_(test, {.batch_size = cfg.batch_size,
                          .timesteps = cfg.timesteps,
                          .seed = cfg.seed,
                          .shuffle = false,
                          .drop_last = false,
                          .augment = false,
                          .prefetch = cfg.prefetch}) {
  TTSNN_CHECK(cfg_.epochs >= 1, "Trainer: epochs must be >= 1, got " << cfg_.epochs);
  TTSNN_CHECK(cfg_.batch_size >= 1,
              "Trainer: batch_size must be >= 1, got " << cfg_.batch_size);
  TTSNN_CHECK(cfg_.timesteps >= 1,
              "Trainer: timesteps must be >= 1, got " << cfg_.timesteps);
}

LossResult Trainer::compute_loss(const Tensor& logits,
                                 const std::vector<int64_t>& labels) const {
  switch (cfg_.loss) {
    case LossKind::kCeSum:
      return cross_entropy_sum_loss(logits, labels);
    case LossKind::kTet:
      return tet_loss(logits, labels, cfg_.tet_lambda);
  }
  TTSNN_CHECK(false, "unknown loss kind");
  return {};
}

EpochStats Trainer::run_epoch(int64_t epoch) {
  // Every batch allocates the same activation/gradient/im2col shapes; the
  // arena recycles them across batches instead of round-tripping the heap.
  // The scope lives on the consumer side; producer tasks allocating batch
  // tensors on pool workers share it (Arena entry points are thread-safe).
  ArenaScope arena;
  if (cfg_.cosine_lr) optimizer_.set_lr(schedule_.at(epoch));
  model_.set_training(true);
  train_loader_.begin_epoch(epoch);

  Timer timer;
  EpochStats stats;
  int64_t batches = 0;
  int64_t correct = 0, seen = 0;
  Batch batch;
  while (train_loader_.next(&batch)) {
    Tensor logits = model_.forward(batch.input);
    LossResult loss = compute_loss(logits, batch.labels);
    optimizer_.zero_grad();
    model_.backward(loss.grad);
    optimizer_.step();

    stats.loss += loss.value;
    correct += static_cast<int64_t>(
        std::llround(accuracy(logits, batch.labels) *
                     static_cast<double>(batch.labels.size())));
    seen += static_cast<int64_t>(batch.labels.size());
    ++batches;
  }
  TTSNN_CHECK(batches > 0, "run_epoch: dataset smaller than one batch");
  stats.loss /= static_cast<double>(batches);
  stats.train_accuracy = static_cast<double>(correct) / static_cast<double>(seen);
  stats.seconds = timer.seconds();
  stats.data_wait_seconds = train_loader_.wait_seconds();
  stats.compute_seconds = std::max(0.0, stats.seconds - stats.data_wait_seconds);
  if (cfg_.verbose) {
    std::cout << "epoch " << epoch << ": loss " << stats.loss << " acc "
              << stats.train_accuracy << " (" << stats.seconds << " s, "
              << stats.data_wait_seconds << " s data wait)\n";
  }
  return stats;
}

double Trainer::evaluate() {
  ArenaScope arena;
  model_.set_training(false);
  eval_loader_.begin_epoch(0);
  int64_t correct = 0, seen = 0;
  Batch batch;
  while (eval_loader_.next(&batch)) {
    Tensor logits = model_.forward(batch.input);
    correct += static_cast<int64_t>(
        std::llround(accuracy(logits, batch.labels) *
                     static_cast<double>(batch.labels.size())));
    seen += static_cast<int64_t>(batch.labels.size());
  }
  model_.set_training(true);
  return seen > 0 ? static_cast<double>(correct) / static_cast<double>(seen) : 0.0;
}

FitResult Trainer::fit() {
  FitResult result;
  for (int64_t e = 0; e < cfg_.epochs; ++e) {
    result.epochs.push_back(run_epoch(e));
  }
  // Timing runs training-mode forward passes, which nudge the BN running
  // statistics; measure BEFORE the final evaluation so the reported accuracy
  // corresponds to the model state a caller sees after fit() returns.
  result.batch_time_s = time_batch();
  result.test_accuracy = evaluate();
  return result;
}

double Trainer::time_batch(int64_t reps) {
  TTSNN_CHECK(reps >= 1, "time_batch: reps must be >= 1");
  ArenaScope arena;
  model_.set_training(true);
  std::vector<int64_t> idx(static_cast<size_t>(
      std::min<int64_t>(cfg_.batch_size, train_.size())));
  std::iota(idx.begin(), idx.end(), 0);
  Batch batch = train_.get_batch(idx, cfg_.timesteps);

  // Warm-up pass (first-touch allocations).
  Tensor logits = model_.forward(batch.input);
  LossResult loss = compute_loss(logits, batch.labels);
  model_.backward(loss.grad);
  optimizer_.zero_grad();

  Timer timer;
  for (int64_t r = 0; r < reps; ++r) {
    Tensor out = model_.forward(batch.input);
    LossResult l = compute_loss(out, batch.labels);
    model_.backward(l.grad);
  }
  const double elapsed = timer.seconds() / static_cast<double>(reps);
  optimizer_.zero_grad();
  return elapsed;
}

}  // namespace ttsnn
