#pragma once

/// \file encoder.h
/// Input coding for SNNs. The paper uses direct coding [31]: the analog
/// image is presented unchanged at every timestep and the first Conv+BN+LIF
/// stack acts as a learned spike encoder. Rate coding is provided as an
/// alternative for experiments.

#include "tensor/tensor.h"

namespace ttsnn {

/// Replicates a static batch [N, C, H, W] across T timesteps -> [T, N, C, H, W].
Tensor direct_code(const Tensor& images, int64_t timesteps);

/// Bernoulli rate coding: spike with probability proportional to pixel
/// intensity (clamped to [0, 1]) independently per timestep.
Tensor rate_code(const Tensor& images, int64_t timesteps, Rng& rng);

}  // namespace ttsnn
