#pragma once

/// \file trainer.h
/// BPTT training loop implementing the paper's recipe (Sec. V-A): SGD with
/// momentum 0.9, weight decay 1e-4, cosine-annealed lr from 0.1, CE loss on
/// time-summed logits (or the TET loss for Table III), optional NDA-style
/// augmentation. Batches arrive through the async DataLoader (snn/dataloader.h)
/// so augmentation and batch assembly overlap the compute; EpochStats splits
/// wall clock into compute vs data-wait so the paper's Table II "training
/// time" metric (time_batch — pure forward+backward) stays uncontaminated.

#include <functional>

#include "nn/module.h"
#include "snn/augment.h"
#include "snn/dataloader.h"
#include "snn/dataset.h"
#include "snn/loss.h"
#include "snn/optimizer.h"

namespace ttsnn {

enum class LossKind { kCeSum, kTet };

struct TrainConfig {
  int64_t epochs = 10;
  int64_t batch_size = 32;
  int64_t timesteps = 4;
  float lr = 0.1F;
  float momentum = 0.9F;
  float weight_decay = 1e-4F;
  bool cosine_lr = true;
  LossKind loss = LossKind::kCeSum;
  float tet_lambda = 0.05F;
  bool augment = false;
  AugmentOptions augment_opts;
  /// DataLoader prefetch depth (producer tasks in flight). 0 assembles each
  /// batch synchronously on the training thread.
  int64_t prefetch = 2;
  uint64_t seed = 7;
  bool verbose = false;
};

struct EpochStats {
  double loss = 0.0;
  double train_accuracy = 0.0;
  /// Total epoch wall clock: compute_seconds + data_wait_seconds.
  double seconds = 0.0;
  /// Wall clock with a ready batch in hand (forward/backward/step).
  double compute_seconds = 0.0;
  /// Wall clock blocked on the DataLoader (all of batch assembly when
  /// prefetch = 0; the uncovered remainder when producers run ahead).
  double data_wait_seconds = 0.0;
};

struct FitResult {
  std::vector<EpochStats> epochs;
  double test_accuracy = 0.0;
  /// Mean forward+backward wall clock per batch (the Table II metric).
  double batch_time_s = 0.0;
};

class Trainer {
 public:
  Trainer(Module& model, const Dataset& train, const Dataset& test,
          TrainConfig cfg);

  /// One pass over the training set.
  EpochStats run_epoch(int64_t epoch);
  /// Accuracy on the held-out set (eval mode).
  double evaluate();
  /// Full training run; also measures batch_time_s at the end.
  FitResult fit();
  /// The paper's "training time": mean wall clock of forward+backward on one
  /// batch, over `reps` repetitions (no optimizer step, no data loading).
  double time_batch(int64_t reps = 3);

 private:
  LossResult compute_loss(const Tensor& logits,
                          const std::vector<int64_t>& labels) const;

  Module& model_;
  const Dataset& train_;  ///< still read directly by time_batch()
  TrainConfig cfg_;
  SGD optimizer_;
  CosineLr schedule_;
  DataLoader train_loader_;
  DataLoader eval_loader_;
};

}  // namespace ttsnn
