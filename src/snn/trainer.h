#pragma once

/// \file trainer.h
/// BPTT training loop implementing the paper's recipe (Sec. V-A): SGD with
/// momentum 0.9, weight decay 1e-4, cosine-annealed lr from 0.1, CE loss on
/// time-summed logits (or the TET loss for Table III), optional NDA-style
/// augmentation. Also provides the paper's "training time" metric — wall
/// clock of forward+backward over a single batch.

#include <functional>

#include "nn/module.h"
#include "snn/augment.h"
#include "snn/dataset.h"
#include "snn/loss.h"
#include "snn/optimizer.h"

namespace ttsnn {

enum class LossKind { kCeSum, kTet };

struct TrainConfig {
  int64_t epochs = 10;
  int64_t batch_size = 32;
  int64_t timesteps = 4;
  float lr = 0.1F;
  float momentum = 0.9F;
  float weight_decay = 1e-4F;
  bool cosine_lr = true;
  LossKind loss = LossKind::kCeSum;
  float tet_lambda = 0.05F;
  bool augment = false;
  AugmentOptions augment_opts;
  uint64_t seed = 7;
  bool verbose = false;
};

struct EpochStats {
  double loss = 0.0;
  double train_accuracy = 0.0;
  double seconds = 0.0;
};

struct FitResult {
  std::vector<EpochStats> epochs;
  double test_accuracy = 0.0;
  /// Mean forward+backward wall clock per batch (the Table II metric).
  double batch_time_s = 0.0;
};

class Trainer {
 public:
  Trainer(Module& model, const Dataset& train, const Dataset& test,
          TrainConfig cfg);

  /// One pass over the training set.
  EpochStats run_epoch(int64_t epoch);
  /// Accuracy on the held-out set (eval mode).
  double evaluate();
  /// Full training run; also measures batch_time_s at the end.
  FitResult fit();
  /// The paper's "training time": mean wall clock of forward+backward on one
  /// batch, over `reps` repetitions (no optimizer step).
  double time_batch(int64_t reps = 3);

 private:
  LossResult compute_loss(const Tensor& logits,
                          const std::vector<int64_t>& labels) const;

  Module& model_;
  const Dataset& train_;
  const Dataset& test_;
  TrainConfig cfg_;
  SGD optimizer_;
  CosineLr schedule_;
  Rng rng_;
};

}  // namespace ttsnn
