#include "snn/encoder.h"

#include <algorithm>

namespace ttsnn {

Tensor direct_code(const Tensor& images, int64_t timesteps) {
  TTSNN_CHECK(images.dim() == 4, "direct_code expects [N, C, H, W]");
  TTSNN_CHECK(timesteps >= 1, "direct_code timesteps must be >= 1");
  Shape out_shape = images.shape();
  out_shape.insert(out_shape.begin(), timesteps);
  Tensor out(out_shape);
  const int64_t n = images.numel();
  for (int64_t t = 0; t < timesteps; ++t) {
    std::copy(images.data(), images.data() + n, out.data() + t * n);
  }
  return out;
}

Tensor rate_code(const Tensor& images, int64_t timesteps, Rng& rng) {
  TTSNN_CHECK(images.dim() == 4, "rate_code expects [N, C, H, W]");
  Shape out_shape = images.shape();
  out_shape.insert(out_shape.begin(), timesteps);
  Tensor out(out_shape);
  const int64_t n = images.numel();
  const float* src = images.data();
  float* dst = out.data();
  for (int64_t t = 0; t < timesteps; ++t) {
    for (int64_t i = 0; i < n; ++i) {
      const float p = std::clamp(src[i], 0.0F, 1.0F);
      dst[t * n + i] = rng.bernoulli(p) ? 1.0F : 0.0F;
    }
  }
  return out;
}

}  // namespace ttsnn
