#include "snn/serialize.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>

#include "util/failpoint.h"

namespace ttsnn {

namespace {

// v1 ("TT_SNN01") stored trainable parameters only. v2 appends a buffer
// section carrying non-trainable state — BatchNorm running statistics —
// without which a trained checkpoint cannot reproduce eval-mode outputs.
// The loader accepts both; v1 checkpoints leave buffers at their init values.
constexpr uint64_t kMagicV1 = 0x54545F534E4E3031ULL;  // "TT_SNN01"
constexpr uint64_t kMagicV2 = 0x54545F534E4E3032ULL;  // "TT_SNN02"

void write_u64(std::ofstream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

uint64_t read_u64(std::ifstream& in) {
  uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  TTSNN_CHECK(in.good(), "checkpoint truncated");
  return v;
}

void write_string(std::ofstream& out, const std::string& s) {
  write_u64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::ifstream& in) {
  const uint64_t n = read_u64(in);
  TTSNN_CHECK(n < (1 << 20), "checkpoint string too long");
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  TTSNN_CHECK(in.good(), "checkpoint truncated");
  return s;
}

void write_tensor(std::ofstream& out, const std::string& name,
                  const Tensor& value) {
  // Injected crash: abandons the stream mid-file, exactly where power loss
  // would — the tmp+rename protocol in save_parameters must keep the
  // previously published checkpoint intact.
  TTSNN_FAILPOINT("checkpoint.write");
  write_string(out, name);
  write_u64(out, static_cast<uint64_t>(value.dim()));
  for (int64_t d = 0; d < value.dim(); ++d) {
    write_u64(out, static_cast<uint64_t>(value.size(d)));
  }
  out.write(reinterpret_cast<const char*>(value.data()),
            static_cast<std::streamsize>(value.numel() * sizeof(float)));
  // Catch a short write (disk full, dead filesystem) at the tensor that hit
  // it, not as an unlabeled failure after the whole file "finished".
  TTSNN_CHECK(out.good(), "checkpoint short write in '" << name << "'");
}

/// Reads one named tensor record into `value` (name and shape must match).
void read_tensor(std::ifstream& in, const std::string& expected_name,
                 Tensor& value) {
  const std::string name = read_string(in);
  TTSNN_CHECK(name == expected_name, "parameter order mismatch: checkpoint '"
                                         << name << "' vs model '"
                                         << expected_name << "'");
  const uint64_t dims = read_u64(in);
  // Sanity-cap BEFORE allocating the shape: a garbage/truncated record read
  // as a dim count must reject as corrupt, not size a vector by it.
  TTSNN_CHECK(dims <= 8, "checkpoint corrupt: tensor '"
                             << name << "' claims " << dims << " dims");
  Shape shape(dims);
  for (uint64_t d = 0; d < dims; ++d) {
    shape[d] = static_cast<int64_t>(read_u64(in));
  }
  TTSNN_CHECK(shape == value.shape(),
              "shape mismatch for '" << name << "': checkpoint "
                                     << shape_str(shape) << " vs model "
                                     << shape_str(value.shape()));
  in.read(reinterpret_cast<char*>(value.data()),
          static_cast<std::streamsize>(value.numel() * sizeof(float)));
  TTSNN_CHECK(in.good(), "checkpoint truncated in '" << name << "'");
}

}  // namespace

void save_parameters(Module& root, const std::string& path) {
  // Crash-safe publish: write the whole file to <path>.tmp, close, THEN
  // rename over the destination (atomic on POSIX — rename replaces). A
  // crash, short write, or injected fault anywhere before the rename leaves
  // whatever was previously published at `path` untouched and loadable; the
  // half-written tmp is removed on the failure path (a real crash leaves it
  // behind, where the next successful save truncates it).
  const std::string tmp = path + ".tmp";
  try {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    TTSNN_CHECK(out.is_open(), "cannot open " << tmp << " for writing");
    std::vector<Parameter*> params = root.parameters();
    std::vector<BufferRef> buffers = root.buffers();
    write_u64(out, kMagicV2);
    write_u64(out, params.size());
    for (const Parameter* p : params) write_tensor(out, p->name, p->value);
    write_u64(out, buffers.size());
    for (const BufferRef& b : buffers) write_tensor(out, b.name, *b.value);
    out.close();
    TTSNN_CHECK(out.good(), "checkpoint write failure on " << tmp);
    // Injected crash in the gap between a complete tmp and its publication.
    TTSNN_FAILPOINT("checkpoint.rename");
    TTSNN_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
                "cannot publish checkpoint: rename " << tmp << " -> " << path);
  } catch (...) {
    std::remove(tmp.c_str());  // best-effort; never leave a half checkpoint
    throw;
  }
}

void load_parameters(Module& root, const std::string& path) {
  // Injected read fault: a checkpoint that vanished or a filesystem that
  // errors on open — retry/fallback logic upstream sees a labeled Error.
  TTSNN_FAILPOINT("checkpoint.read");
  std::ifstream in(path, std::ios::binary);
  TTSNN_CHECK(in.is_open(), "cannot open " << path << " for reading");
  const uint64_t magic = read_u64(in);
  TTSNN_CHECK(magic == kMagicV1 || magic == kMagicV2,
              "not a TT-SNN checkpoint: " << path);
  std::vector<Parameter*> params = root.parameters();
  const uint64_t count = read_u64(in);
  TTSNN_CHECK(count == params.size(),
              "checkpoint has " << count << " parameters, model has "
                                << params.size());
  for (Parameter* p : params) read_tensor(in, p->name, p->value);
  if (magic == kMagicV1) return;  // v1: no buffer section
  std::vector<BufferRef> buffers = root.buffers();
  const uint64_t buf_count = read_u64(in);
  TTSNN_CHECK(buf_count == buffers.size(),
              "checkpoint has " << buf_count << " buffers, model has "
                                << buffers.size());
  for (BufferRef& b : buffers) {
    read_tensor(in, b.name, *b.value);
    // BN running statistics feed inference-time folding (1/sqrt(var+eps))
    // and int8 scale calibration; a NaN/Inf running variance would poison
    // every folded weight silently. Reject it at load with the buffer named,
    // not downstream as mystery-NaN activations.
    if (b.name.size() >= 11 &&
        b.name.compare(b.name.size() - 11, 11, "running_var") == 0) {
      const float* v = b.value->data();
      for (int64_t i = 0; i < b.value->numel(); ++i) {
        TTSNN_CHECK(std::isfinite(v[i]),
                    "checkpoint corrupt: non-finite BatchNorm running "
                    "variance in '"
                        << b.name << "' at index " << i);
      }
    }
  }
}

}  // namespace ttsnn
