#include "snn/serialize.h"

#include <cstdint>
#include <fstream>

namespace ttsnn {

namespace {

constexpr uint64_t kMagic = 0x54545F534E4E3031ULL;  // "TT_SNN01"

void write_u64(std::ofstream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

uint64_t read_u64(std::ifstream& in) {
  uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  TTSNN_CHECK(in.good(), "checkpoint truncated");
  return v;
}

void write_string(std::ofstream& out, const std::string& s) {
  write_u64(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::ifstream& in) {
  const uint64_t n = read_u64(in);
  TTSNN_CHECK(n < (1 << 20), "checkpoint string too long");
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  TTSNN_CHECK(in.good(), "checkpoint truncated");
  return s;
}

}  // namespace

void save_parameters(Module& root, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  TTSNN_CHECK(out.is_open(), "cannot open " << path << " for writing");
  std::vector<Parameter*> params = root.parameters();
  write_u64(out, kMagic);
  write_u64(out, params.size());
  for (const Parameter* p : params) {
    write_string(out, p->name);
    write_u64(out, static_cast<uint64_t>(p->value.dim()));
    for (int64_t d = 0; d < p->value.dim(); ++d) {
      write_u64(out, static_cast<uint64_t>(p->value.size(d)));
    }
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
  }
  TTSNN_CHECK(out.good(), "write failure on " << path);
}

void load_parameters(Module& root, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  TTSNN_CHECK(in.is_open(), "cannot open " << path << " for reading");
  TTSNN_CHECK(read_u64(in) == kMagic, "not a TT-SNN checkpoint: " << path);
  std::vector<Parameter*> params = root.parameters();
  const uint64_t count = read_u64(in);
  TTSNN_CHECK(count == params.size(),
              "checkpoint has " << count << " parameters, model has "
                                << params.size());
  for (Parameter* p : params) {
    const std::string name = read_string(in);
    TTSNN_CHECK(name == p->name, "parameter order mismatch: checkpoint '"
                                     << name << "' vs model '" << p->name << "'");
    const uint64_t dims = read_u64(in);
    Shape shape(dims);
    for (uint64_t d = 0; d < dims; ++d) {
      shape[d] = static_cast<int64_t>(read_u64(in));
    }
    TTSNN_CHECK(shape == p->value.shape(),
                "shape mismatch for '" << name << "': checkpoint "
                                       << shape_str(shape) << " vs model "
                                       << shape_str(p->value.shape()));
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
    TTSNN_CHECK(in.good(), "checkpoint truncated in '" << name << "'");
  }
}

}  // namespace ttsnn
