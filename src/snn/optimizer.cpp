#include "snn/optimizer.h"

#include <cmath>
#include <numbers>

#include "tensor/ops.h"
#include "tensor/simd.h"

namespace ttsnn {

SGD::SGD(std::vector<Parameter*> params, Options opts)
    : params_(std::move(params)), opts_(opts) {
  TTSNN_CHECK(!params_.empty(), "SGD: no parameters");
  TTSNN_CHECK(opts_.lr > 0.0F, "SGD: lr must be positive");
  velocity_.reserve(params_.size());
  for (Parameter* p : params_) {
    TTSNN_CHECK(p != nullptr, "SGD: null parameter");
    velocity_.push_back(zeros_like(p->value));
  }
}

void SGD::step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    const float decay = p.decay ? opts_.weight_decay : 0.0F;
    // Fused, vectorized in-place update — no temporaries per parameter.
    simd::sgd_step(p.value.numel(), opts_.lr, opts_.momentum, decay,
                   p.grad.data(), velocity_[i].data(), p.value.data());
  }
}

void SGD::zero_grad() {
  for (Parameter* p : params_) p->grad.zero_();
}

CosineLr::CosineLr(float base_lr, int64_t total_epochs)
    : base_lr_(base_lr), total_epochs_(total_epochs) {
  TTSNN_CHECK(total_epochs_ >= 1, "CosineLr: total_epochs must be >= 1");
}

float CosineLr::at(int64_t epoch) const {
  const double x = std::numbers::pi * static_cast<double>(epoch) /
                   static_cast<double>(total_epochs_);
  return static_cast<float>(0.5 * base_lr_ * (1.0 + std::cos(x)));
}

}  // namespace ttsnn
