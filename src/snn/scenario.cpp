#include "snn/scenario.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/models.h"
#include "data/synthetic_event.h"
#include "data/synthetic_gesture.h"
#include "data/synthetic_image.h"
#include "infer/engine.h"
#include "snn/serialize.h"
#include "util/bench_json.h"

namespace ttsnn {

namespace {

std::string trim(const std::string& s) {
  const size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

int64_t to_i64(const std::string& key, const std::string& value) {
  size_t pos = 0;
  int64_t v = 0;
  try {
    v = std::stoll(value, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  TTSNN_CHECK(pos == value.size() && !value.empty(),
              "scenario: '" << key << "' wants an integer, got '" << value << "'");
  return v;
}

double to_f64(const std::string& key, const std::string& value) {
  size_t pos = 0;
  double v = 0;
  try {
    v = std::stod(value, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  TTSNN_CHECK(pos == value.size() && !value.empty(),
              "scenario: '" << key << "' wants a number, got '" << value << "'");
  return v;
}

bool to_bool(const std::string& key, const std::string& value) {
  if (value == "1" || value == "true" || value == "on" || value == "yes") {
    return true;
  }
  if (value == "0" || value == "false" || value == "off" || value == "no") {
    return false;
  }
  TTSNN_CHECK(false, "scenario: '" << key << "' wants a boolean, got '"
                                   << value << "'");
  return false;
}

std::vector<int64_t> to_i64_list(const std::string& key,
                                 const std::string& value) {
  std::vector<int64_t> out;
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = trim(item);
    if (!item.empty()) out.push_back(to_i64(key, item));
  }
  return out;
}

TTMode parse_tt_mode(const std::string& name) {
  if (name == "stt") return TTMode::kSTT;
  if (name == "ptt") return TTMode::kPTT;
  if (name == "htt") return TTMode::kHTT;
  TTSNN_CHECK(false, "scenario: unknown tt_mode '" << name
                         << "' (expected none|stt|ptt|htt)");
  return TTMode::kPTT;
}

BatchNorm::Mode parse_bn(const std::string& name) {
  if (name == "per_step") return BatchNorm::Mode::kPerStep;
  if (name == "tdbn") return BatchNorm::Mode::kTdBn;
  if (name == "tebn") return BatchNorm::Mode::kTebn;
  TTSNN_CHECK(false, "scenario: unknown bn '" << name
                         << "' (expected per_step|tdbn|tebn)");
  return BatchNorm::Mode::kPerStep;
}


TrainConfig make_train_config(const ScenarioConfig& cfg, int64_t epochs) {
  TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = cfg.batch_size;
  tc.timesteps = cfg.timesteps;
  tc.lr = static_cast<float>(cfg.lr);
  tc.loss = cfg.loss == "tet" ? LossKind::kTet : LossKind::kCeSum;
  tc.tet_lambda = cfg.tet_lambda;
  tc.augment = cfg.augment;
  tc.augment_opts = {.max_shift = cfg.augment_max_shift,
                     .cutout_size = cfg.augment_cutout};
  tc.prefetch = cfg.prefetch;
  tc.seed = cfg.seed;
  tc.verbose = cfg.verbose;
  return tc;
}

/// Keys a bare `--flag` may enable. Anything else requires `=value`: a bare
/// `--checkpoint` would otherwise silently write a file literally named
/// "true" instead of failing loudly.
bool is_boolean_key(const std::string& key) {
  return key == "vbmf" || key == "augment" || key == "verbose" ||
         key == "compile_smoke";
}

}  // namespace

void apply_scenario_option(ScenarioConfig& cfg, const std::string& key,
                           const std::string& value) {
  if (key == "dataset") cfg.dataset = value;
  else if (key == "classes") cfg.classes = to_i64(key, value);
  else if (key == "train_per_class") cfg.train_per_class = to_i64(key, value);
  else if (key == "test_per_class") cfg.test_per_class = to_i64(key, value);
  else if (key == "image_size") cfg.image_size = to_i64(key, value);
  else if (key == "data_seed") cfg.data_seed = static_cast<uint64_t>(to_i64(key, value));
  else if (key == "model") cfg.model = value;
  else if (key == "base_width") cfg.base_width = to_i64(key, value);
  else if (key == "bn") cfg.bn = value;
  else if (key == "tt_mode") cfg.tt_mode = value;
  else if (key == "pretrain_epochs") cfg.pretrain_epochs = to_i64(key, value);
  else if (key == "ranks") cfg.ranks = to_i64_list(key, value);
  else if (key == "vbmf") cfg.vbmf = to_bool(key, value);
  else if (key == "rank_fraction") cfg.rank_fraction = to_f64(key, value);
  else if (key == "htt_schedule") cfg.htt_schedule = value;
  else if (key == "epochs") cfg.epochs = to_i64(key, value);
  else if (key == "batch_size") cfg.batch_size = to_i64(key, value);
  else if (key == "timesteps") cfg.timesteps = to_i64(key, value);
  else if (key == "lr") cfg.lr = static_cast<float>(to_f64(key, value));
  else if (key == "loss") cfg.loss = value;
  else if (key == "tet_lambda") cfg.tet_lambda = static_cast<float>(to_f64(key, value));
  else if (key == "augment") cfg.augment = to_bool(key, value);
  else if (key == "augment_max_shift") cfg.augment_max_shift = to_i64(key, value);
  else if (key == "augment_cutout") cfg.augment_cutout = to_i64(key, value);
  else if (key == "prefetch") cfg.prefetch = to_i64(key, value);
  else if (key == "seed") cfg.seed = static_cast<uint64_t>(to_i64(key, value));
  else if (key == "verbose") cfg.verbose = to_bool(key, value);
  else if (key == "checkpoint") cfg.checkpoint = value;
  else if (key == "compile_smoke") cfg.compile_smoke = to_bool(key, value);
  else if (key == "report") cfg.report = value;
  else TTSNN_CHECK(false, "scenario: unknown option '" << key << "'");
}

ScenarioConfig load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  TTSNN_CHECK(in.good(), "scenario: cannot open config file '" << path << "'");
  ScenarioConfig cfg;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    TTSNN_CHECK(eq != std::string::npos, "scenario: " << path << ":" << lineno
                    << ": expected 'key = value', got '" << line << "'");
    apply_scenario_option(cfg, trim(line.substr(0, eq)),
                          trim(line.substr(eq + 1)));
  }
  return cfg;
}

ScenarioConfig parse_scenario_cli(const std::vector<std::string>& args) {
  ScenarioConfig cfg;
  bool any_option = false;
  for (const std::string& arg : args) {
    TTSNN_CHECK(arg.rfind("--", 0) == 0,
                "scenario: expected --key=value, got '" << arg << "'");
    std::string key = arg.substr(2);
    std::string value;
    const size_t eq = key.find('=');
    if (eq != std::string::npos) {
      value = key.substr(eq + 1);
      key.erase(eq);
    } else {
      TTSNN_CHECK(is_boolean_key(key),
                  "scenario: '--" << key << "' needs a value (--" << key
                                  << "=...); only boolean flags may be bare");
      value = "true";
    }
    if (key == "config") {
      // The file replaces the whole config, so options in front of it would
      // be silently discarded — refuse instead of training the wrong
      // scenario. (Precedence stays: defaults < file < later flags.)
      TTSNN_CHECK(!any_option,
                  "scenario: --config must come before other options "
                  "(options after it override the file)");
      cfg = load_scenario_file(value);
    } else {
      apply_scenario_option(cfg, key, value);
    }
    any_option = true;
  }
  return cfg;
}

std::unique_ptr<Dataset> make_scenario_dataset(const ScenarioConfig& cfg,
                                               bool train) {
  const int64_t per_class = train ? cfg.train_per_class : cfg.test_per_class;
  const uint64_t seed = train ? cfg.data_seed : cfg.data_seed + 1;
  if (cfg.dataset == "image") {
    return std::make_unique<SyntheticImageDataset>(SyntheticImageDataset::Options{
        .num_classes = cfg.classes, .samples_per_class = per_class,
        .size = cfg.image_size, .seed = seed});
  }
  if (cfg.dataset == "event") {
    return std::make_unique<SyntheticEventDataset>(SyntheticEventDataset::Options{
        .num_classes = cfg.classes, .samples_per_class = per_class,
        .size = cfg.image_size, .seed = seed});
  }
  if (cfg.dataset == "gesture") {
    return std::make_unique<SyntheticGestureDataset>(
        SyntheticGestureDataset::Options{.num_classes = cfg.classes,
                                         .samples_per_class = per_class,
                                         .size = cfg.image_size,
                                         .seed = seed});
  }
  TTSNN_CHECK(false, "scenario: unknown dataset '"
                         << cfg.dataset << "' (expected image|event|gesture)");
  return nullptr;
}

ModulePtr build_scenario_model(const ScenarioConfig& cfg, int64_t in_channels,
                               Rng& rng) {
  ModelConfig mc;
  mc.in_channels = in_channels;
  mc.num_classes = cfg.classes;
  mc.base_width = cfg.base_width;
  mc.timesteps = cfg.timesteps;
  mc.bn_mode = parse_bn(cfg.bn);
  if (cfg.model == "resnet18") return make_ms_resnet18(mc, rng);
  if (cfg.model == "resnet34") return make_ms_resnet34(mc, rng);
  if (cfg.model == "resnet20") return make_resnet20(mc, rng);
  if (cfg.model == "vgg9") return make_vgg9(mc, rng);
  if (cfg.model == "vgg11") return make_vgg11(mc, rng);
  TTSNN_CHECK(false, "scenario: unknown model '"
                         << cfg.model
                         << "' (expected resnet18|resnet34|resnet20|vgg9|vgg11)");
  return nullptr;
}

FactorizeOptions scenario_factorize_options(const ScenarioConfig& cfg) {
  TTSNN_CHECK(cfg.tt_mode != "none",
              "scenario: factorize options need a TT mode, got 'none'");
  FactorizeOptions fo;
  fo.mode = parse_tt_mode(cfg.tt_mode);
  fo.explicit_ranks = cfg.ranks;
  fo.use_vbmf = cfg.vbmf;
  fo.rank_fraction = cfg.rank_fraction;
  if (fo.mode == TTMode::kHTT) {
    if (!cfg.htt_schedule.empty()) {
      TTSNN_CHECK(static_cast<int64_t>(cfg.htt_schedule.size()) ==
                      cfg.timesteps,
                  "scenario: htt_schedule length "
                      << cfg.htt_schedule.size() << " != timesteps "
                      << cfg.timesteps);
      for (char c : cfg.htt_schedule) {
        TTSNN_CHECK(c == '0' || c == '1',
                    "scenario: htt_schedule wants a '1'/'0' string, got '"
                        << cfg.htt_schedule << "'");
        fo.htt_schedule.push_back(c == '1');
      }
    } else {
      // Paper default (Sec. V-A): full sub-convolutions in the early half.
      for (int64_t t = 0; t < cfg.timesteps; ++t) {
        fo.htt_schedule.push_back(t < (cfg.timesteps + 1) / 2);
      }
    }
  }
  return fo;
}

ScenarioResult run_scenario(const ScenarioConfig& cfg) {
  TTSNN_CHECK(cfg.loss == "ce" || cfg.loss == "tet",
              "scenario: unknown loss '" << cfg.loss << "' (expected ce|tet)");
  TTSNN_CHECK(cfg.epochs >= 1,
              "scenario: epochs must be >= 1, got " << cfg.epochs);
  TTSNN_CHECK(cfg.pretrain_epochs >= 0, "scenario: pretrain_epochs must be >= 0");

  std::unique_ptr<Dataset> train = make_scenario_dataset(cfg, /*train=*/true);
  std::unique_ptr<Dataset> test = make_scenario_dataset(cfg, /*train=*/false);
  const int64_t in_c = train->channels();

  Rng rng(cfg.seed);
  ScenarioResult result;
  result.model = build_scenario_model(cfg, in_c, rng);
  Module& net = *result.model;

  // Algorithm 1 line 1: optional dense base-model training before the
  // decomposition (the source of meaningful VBMF ranks).
  if (cfg.pretrain_epochs > 0) {
    Trainer pre(net, *train, *test, make_train_config(cfg, cfg.pretrain_epochs));
    result.pretrain_fit = pre.fit();
  }
  result.dense_stats =
      analyze_model(net, in_c, cfg.image_size, cfg.image_size);

  if (cfg.tt_mode != "none") {
    result.factorization =
        factorize_network(net, scenario_factorize_options(cfg), rng);
  }

  Trainer trainer(net, *train, *test, make_train_config(cfg, cfg.epochs));
  result.fit = trainer.fit();
  result.stats = analyze_model(net, in_c, cfg.image_size, cfg.image_size);

  if (!cfg.checkpoint.empty()) save_parameters(net, cfg.checkpoint);

  if (cfg.compile_smoke) {
    // Exact lowering reproduces eval-mode Module::forward bit-for-bit, so a
    // nonzero diff here means the checkpointed model would serve wrong.
    net.set_training(false);
    infer::Engine engine =
        infer::compile(net, {.merge_tt = false, .fold_batchnorm = false});
    std::vector<int64_t> idx(static_cast<size_t>(
        std::min<int64_t>(cfg.batch_size, test->size())));
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<int64_t>(i);
    Batch batch = test->get_batch(idx, cfg.timesteps);
    Tensor ref = net.forward(batch.input);
    Tensor got = engine.run(batch.input);
    net.set_training(true);
    TTSNN_CHECK(ref.numel() == got.numel(),
                "scenario: compile smoke shape mismatch");
    double max_diff = 0.0;
    for (int64_t i = 0; i < ref.numel(); ++i) {
      max_diff = std::max(
          max_diff, std::abs(static_cast<double>(ref.data()[i]) -
                             static_cast<double>(got.data()[i])));
    }
    result.compile_max_abs_diff = max_diff;
  }

  if (!cfg.report.empty()) write_scenario_report(cfg, result, cfg.report);
  return result;
}

void write_scenario_report(const ScenarioConfig& cfg,
                           const ScenarioResult& result,
                           const std::string& path) {
  bench::Report report;
  report.add("scenario")
      .str("dataset", cfg.dataset)
      .str("model", cfg.model)
      .str("bn", cfg.bn)
      .str("tt_mode", cfg.tt_mode)
      .str("loss", cfg.loss)
      .num("classes", static_cast<double>(cfg.classes))
      .num("base_width", static_cast<double>(cfg.base_width))
      .num("epochs", static_cast<double>(cfg.epochs))
      .num("pretrain_epochs", static_cast<double>(cfg.pretrain_epochs))
      .num("batch_size", static_cast<double>(cfg.batch_size))
      .num("timesteps", static_cast<double>(cfg.timesteps))
      .num("prefetch", static_cast<double>(cfg.prefetch))
      .num("augment", cfg.augment ? 1.0 : 0.0)
      .num("seed", static_cast<double>(cfg.seed));
  for (size_t e = 0; e < result.fit.epochs.size(); ++e) {
    const EpochStats& s = result.fit.epochs[e];
    report.add("epoch/" + std::to_string(e))
        .num("loss", s.loss)
        .num("train_accuracy", s.train_accuracy)
        .num("seconds", s.seconds)
        .num("compute_s", s.compute_seconds)
        .num("data_wait_s", s.data_wait_seconds);
  }
  bench::Row& row = report.add("result");
  row.num("test_accuracy", result.fit.test_accuracy)
      .num("batch_time_s", result.fit.batch_time_s)
      .num("params_m", result.stats.params_m())
      .num("flops_g", result.stats.flops_g(cfg.timesteps));
  if (!result.factorization.layers.empty()) {
    row.num("tt_layers", static_cast<double>(result.factorization.replaced()))
        .num("tt_compression",
             static_cast<double>(result.factorization.dense_params()) /
                 static_cast<double>(result.factorization.tt_params()));
  }
  if (result.compile_max_abs_diff >= 0.0) {
    row.num("compile_max_abs_diff", result.compile_max_abs_diff);
  }
  report.write(path);
}

std::string scenario_summary(const ScenarioConfig& cfg,
                             const ScenarioResult& result) {
  double wait = 0.0, total = 0.0;
  for (const EpochStats& e : result.fit.epochs) {
    wait += e.data_wait_seconds;
    total += e.seconds;
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s/%s/%s: acc %.1f%%  %s  %.3f s/batch  data wait %.0f%%",
                cfg.dataset.c_str(), cfg.model.c_str(), cfg.tt_mode.c_str(),
                100.0 * result.fit.test_accuracy,
                stats_summary(result.stats, cfg.timesteps).c_str(),
                result.fit.batch_time_s,
                total > 0.0 ? 100.0 * wait / total : 0.0);
  return buf;
}

}  // namespace ttsnn
