#include "snn/adam.h"

#include <cmath>

#include "tensor/ops.h"
#include "tensor/simd.h"

namespace ttsnn {

Adam::Adam(std::vector<Parameter*> params, Options opts)
    : params_(std::move(params)), opts_(opts) {
  TTSNN_CHECK(!params_.empty(), "Adam: no parameters");
  TTSNN_CHECK(opts_.lr > 0.0F, "Adam: lr must be positive");
  TTSNN_CHECK(opts_.beta1 >= 0.0F && opts_.beta1 < 1.0F &&
                  opts_.beta2 >= 0.0F && opts_.beta2 < 1.0F,
              "Adam: betas must be in [0, 1)");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    TTSNN_CHECK(p != nullptr, "Adam: null parameter");
    m_.push_back(zeros_like(p->value));
    v_.push_back(zeros_like(p->value));
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0F - std::pow(opts_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0F - std::pow(opts_.beta2, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    const float decay = p.decay ? opts_.weight_decay : 0.0F;
    // Fused, vectorized in-place update — no temporaries per parameter.
    simd::adam_step(p.value.numel(), opts_.lr, opts_.beta1, opts_.beta2, bc1,
                    bc2, opts_.eps, decay, p.grad.data(), m_[i].data(),
                    v_[i].data(), p.value.data());
  }
}

void Adam::zero_grad() {
  for (Parameter* p : params_) p->grad.zero_();
}

}  // namespace ttsnn
