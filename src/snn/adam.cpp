#include "snn/adam.h"

#include <cmath>

namespace ttsnn {

Adam::Adam(std::vector<Parameter*> params, Options opts)
    : params_(std::move(params)), opts_(opts) {
  TTSNN_CHECK(!params_.empty(), "Adam: no parameters");
  TTSNN_CHECK(opts_.lr > 0.0F, "Adam: lr must be positive");
  TTSNN_CHECK(opts_.beta1 >= 0.0F && opts_.beta1 < 1.0F &&
                  opts_.beta2 >= 0.0F && opts_.beta2 < 1.0F,
              "Adam: betas must be in [0, 1)");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Parameter* p : params_) {
    TTSNN_CHECK(p != nullptr, "Adam: null parameter");
    m_.push_back(Tensor::zeros(p->value.shape()));
    v_.push_back(Tensor::zeros(p->value.shape()));
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0F - std::pow(opts_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0F - std::pow(opts_.beta2, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    float* w = p.value.data();
    const float* g = p.grad.data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const float decay = p.decay ? opts_.weight_decay : 0.0F;
    const int64_t n = p.value.numel();
    for (int64_t j = 0; j < n; ++j) {
      m[j] = opts_.beta1 * m[j] + (1.0F - opts_.beta1) * g[j];
      v[j] = opts_.beta2 * v[j] + (1.0F - opts_.beta2) * g[j] * g[j];
      const float m_hat = m[j] / bc1;
      const float v_hat = v[j] / bc2;
      w[j] -= opts_.lr * (m_hat / (std::sqrt(v_hat) + opts_.eps) + decay * w[j]);
    }
  }
}

void Adam::zero_grad() {
  for (Parameter* p : params_) p->grad.zero_();
}

}  // namespace ttsnn
