#pragma once

/// \file loss.h
/// Training losses over per-timestep logits [T, N, C]:
///  - cross_entropy_sum_loss: CE on the summed logits (Algorithm 1 line 16),
///    the main TT-SNN objective.
///  - tet_loss: Temporal Efficient Training [28] — per-timestep CE averaged
///    over T, optionally blended with an MSE regularizer that pulls each
///    step's correct-class logit toward phi.

#include <vector>

#include "tensor/tensor.h"

namespace ttsnn {

struct LossResult {
  double value = 0.0;  ///< mean loss over the batch
  Tensor grad;         ///< gradient w.r.t. the per-step logits [T, N, C]
};

LossResult cross_entropy_sum_loss(const Tensor& logits,
                                  const std::vector<int64_t>& labels);

LossResult tet_loss(const Tensor& logits, const std::vector<int64_t>& labels,
                    float lambda = 0.05F, float phi = 1.0F);

/// Top-1 accuracy of summed logits against labels.
double accuracy(const Tensor& logits, const std::vector<int64_t>& labels);

}  // namespace ttsnn
