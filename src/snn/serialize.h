#pragma once

/// \file serialize.h
/// Binary checkpointing of module parameters. The format is a simple tagged
/// stream: magic, parameter count, then per parameter its name, shape and
/// raw float32 data; v2 appends the same record layout for non-trainable
/// buffers (BatchNorm running statistics), which eval-mode inference and
/// infer::compile depend on. Loading matches records by position AND name,
/// so a checkpoint only loads into an architecturally identical module tree
/// (including the factorization state — a PTT checkpoint loads into a PTT
/// model, not a dense one).

#include <string>

#include "nn/module.h"

namespace ttsnn {

/// Writes all parameters of `root` to `path`. Throws ttsnn::Error on I/O
/// failure.
void save_parameters(Module& root, const std::string& path);

/// Loads parameters saved by save_parameters into `root`. Throws on I/O
/// failure, count/name/shape mismatch.
void load_parameters(Module& root, const std::string& path);

}  // namespace ttsnn
