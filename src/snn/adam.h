#pragma once

/// \file adam.h
/// Adam optimizer (Kingma & Ba) with decoupled weight decay (AdamW-style).
/// The paper trains with SGD+momentum; Adam is provided as the standard
/// alternative for users adopting the library on other tasks, and for the
/// optimizer ablations.

#include <vector>

#include "nn/module.h"

namespace ttsnn {

class Adam {
 public:
  struct Options {
    float lr = 1e-3F;
    float beta1 = 0.9F;
    float beta2 = 0.999F;
    float eps = 1e-8F;
    /// Decoupled weight decay (applied to the weights, not the gradient).
    float weight_decay = 0.0F;
  };

  Adam(std::vector<Parameter*> params, Options opts);

  void step();
  void zero_grad();
  void set_lr(float lr) { opts_.lr = lr; }
  float lr() const { return opts_.lr; }

 private:
  std::vector<Parameter*> params_;
  std::vector<Tensor> m_;  ///< first-moment estimates
  std::vector<Tensor> v_;  ///< second-moment estimates
  Options opts_;
  int64_t t_ = 0;  ///< step count for bias correction
};

}  // namespace ttsnn
