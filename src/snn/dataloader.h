#pragma once

/// \file dataloader.h
/// Async, double-buffered batch pipeline between a Dataset and the training
/// loop. The Trainer used to assemble and augment every batch on the training
/// thread, so the compute kernels stalled on data between steps; the
/// DataLoader moves `Dataset::get_batch` + augmentation onto producer tasks
/// running on the shared ThreadPool and hands the consumer ready Batches
/// through a bounded prefetch window (default depth 2 — double buffering).
///
/// Determinism contract: batch content depends only on (seed, epoch,
/// batch index), never on production order or thread timing. The epoch
/// shuffle order is drawn from a per-epoch derived seed, and each batch's
/// augmentation draws come from a per-batch derived Rng, so the async path is
/// bit-identical to the synchronous fallback (`prefetch = 0`, or a pool with
/// no workers) under the same seed — a property the tests pin.
///
/// Scheduling: at most `prefetch` producer tasks are ever in flight; a new
/// one is submitted only when the consumer takes a batch, so producers never
/// block on a full queue (a blocked pool worker could starve parallel_for).
/// begin_epoch() and the destructor cancel and drain in-flight producers, so
/// abandoning an epoch mid-way cannot leave a task referencing a dead loader.

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <map>
#include <mutex>
#include <vector>

#include "snn/augment.h"
#include "snn/dataset.h"

namespace ttsnn {

struct DataLoaderOptions {
  int64_t batch_size = 32;
  int64_t timesteps = 4;
  uint64_t seed = 7;
  /// Reshuffle sample order every epoch (training); false = sequential (eval).
  bool shuffle = true;
  /// Drop the ragged tail batch (training); false = keep it (eval).
  bool drop_last = true;
  bool augment = false;
  AugmentOptions augment_opts;
  /// Producer tasks kept in flight ahead of the consumer. 0 = synchronous:
  /// next() assembles the batch on the calling thread.
  int64_t prefetch = 2;
};

class DataLoader {
 public:
  DataLoader(const Dataset& dataset, DataLoaderOptions opts);
  /// Cancels and drains any in-flight producers.
  ~DataLoader();

  DataLoader(const DataLoader&) = delete;
  DataLoader& operator=(const DataLoader&) = delete;

  /// Batches next() will yield per epoch (0 when drop_last and the dataset is
  /// smaller than one batch).
  int64_t batches_per_epoch() const;

  /// Starts an epoch: derives the shuffle order from (seed, epoch), resets
  /// the wait clock, and (async mode) schedules the first `prefetch`
  /// producers. Cancels any batches still in flight from a previous epoch,
  /// so calling it mid-epoch is a clean restart.
  void begin_epoch(int64_t epoch);

  /// Yields the next batch of the epoch in deterministic order; false at
  /// epoch end. Rethrows the first exception raised by a producer task.
  bool next(Batch* out);

  /// Time next() spent blocked waiting on data since begin_epoch() — the
  /// "data wait" half of the Trainer's compute/data split. In synchronous
  /// mode this is the full batch assembly time.
  double wait_seconds() const;

  /// True when producers actually run ahead on the pool (prefetch > 0 and
  /// the shared ThreadPool has workers); false means next() is synchronous.
  bool async() const { return async_; }

 private:
  /// Assembles batch `batch_index` of the current epoch: index slice,
  /// get_batch, then augmentation with a per-batch Rng. Thread-safe w.r.t.
  /// other produce() calls (reads epoch state that only begin_epoch writes).
  Batch produce(int64_t batch_index) const;
  /// Registers one in-flight producer for `batch_index` and enqueues it.
  void schedule(int64_t batch_index);
  /// Cancels outstanding producers and blocks until in-flight hits zero.
  void drain();

  const Dataset& dataset_;
  DataLoaderOptions opts_;
  bool async_ = false;

  // Epoch-constant state, written by begin_epoch() only while no producer is
  // in flight; read unlocked by produce().
  std::vector<int64_t> order_;
  uint64_t epoch_seed_ = 0;
  int64_t epoch_batches_ = 0;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<int64_t, Batch> ready_;  ///< produced, not yet consumed
  int64_t next_batch_ = 0;          ///< next index handed to the consumer
  int64_t next_submit_ = 0;         ///< next index handed to a producer
  int64_t inflight_ = 0;
  bool cancel_ = false;
  /// First (lowest-index) producer failure of the epoch. The error is
  /// attributed to its batch index so next() delivers every good batch
  /// before it and throws exactly where the sync path would.
  std::exception_ptr error_;
  int64_t error_batch_ = -1;  ///< -1 = no error
  double wait_seconds_ = 0.0;
};

}  // namespace ttsnn
