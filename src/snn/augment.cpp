#include "snn/augment.h"

#include <algorithm>

namespace ttsnn {

Tensor augment_events(const Tensor& x, const AugmentOptions& opts, Rng& rng) {
  TTSNN_CHECK(x.dim() == 5, "augment_events expects [T, N, C, H, W]");
  const int64_t t_steps = x.size(0);
  const int64_t n = x.size(1);
  const int64_t c = x.size(2);
  const int64_t h = x.size(3);
  const int64_t w = x.size(4);

  Tensor out = Tensor::zeros(x.shape());
  const float* src = x.data();
  float* dst = out.data();

  for (int64_t b = 0; b < n; ++b) {
    // One transform per sample, applied to every timestep.
    const int64_t dy = opts.max_shift > 0
                           ? rng.index(2 * opts.max_shift + 1) - opts.max_shift
                           : 0;
    const int64_t dx = opts.max_shift > 0
                           ? rng.index(2 * opts.max_shift + 1) - opts.max_shift
                           : 0;
    const bool flip = opts.hflip && rng.bernoulli(0.5F);
    const bool cut = opts.cutout_size > 0 && rng.bernoulli(opts.cutout_prob);
    const int64_t cy = cut ? rng.index(h) : 0;
    const int64_t cx = cut ? rng.index(w) : 0;

    for (int64_t t = 0; t < t_steps; ++t) {
      for (int64_t ch = 0; ch < c; ++ch) {
        const float* plane = src + (((t * n + b) * c) + ch) * h * w;
        float* oplane = dst + (((t * n + b) * c) + ch) * h * w;
        for (int64_t y = 0; y < h; ++y) {
          const int64_t sy = y - dy;
          if (sy < 0 || sy >= h) continue;
          for (int64_t xx = 0; xx < w; ++xx) {
            int64_t sx = xx - dx;
            if (flip) sx = w - 1 - sx;
            if (sx < 0 || sx >= w) continue;
            if (cut && std::llabs(y - cy) <= opts.cutout_size / 2 &&
                std::llabs(xx - cx) <= opts.cutout_size / 2) {
              continue;
            }
            oplane[y * w + xx] = plane[sy * w + sx];
          }
        }
      }
    }
  }
  return out;
}

}  // namespace ttsnn
