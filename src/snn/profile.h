#pragma once

/// \file profile.h
/// Runtime profiling of a spiking network: per-LIF spike densities measured
/// on real data. This closes the loop between the training framework and
/// the hardware simulators — instead of assuming a representative sparsity,
/// the HW workload can be built from densities the trained model actually
/// produces (SATA's energy advantage is sparsity-dependent).

#include <vector>

#include "nn/module.h"

namespace ttsnn {

struct SpikeProfile {
  /// Mean output density of each LIF layer, in traversal order.
  std::vector<double> lif_densities;
  /// Mean over all LIF layers (weighted equally).
  double mean_density = 0.0;
};

/// Runs one forward pass of `root` on `input` ([T, N, C, H, W]) in eval mode
/// and collects the spike density of every LIFNeuron in the tree.
SpikeProfile profile_spikes(Module& root, const Tensor& input);

}  // namespace ttsnn
