#include "snn/profile.h"

#include "nn/lif.h"

namespace ttsnn {

SpikeProfile profile_spikes(Module& root, const Tensor& input) {
  const bool was_training = root.is_training();
  root.set_training(false);
  root.forward(input);
  root.set_training(was_training);

  SpikeProfile profile;
  visit_module_slots(root, [&](ModulePtr& slot) {
    if (auto* lif = dynamic_cast<LIFNeuron*>(slot.get())) {
      profile.lif_densities.push_back(lif->last_spike_density());
    }
  });
  TTSNN_CHECK(!profile.lif_densities.empty(),
              "profile_spikes: model has no LIF layers");
  double sum = 0.0;
  for (double d : profile.lif_densities) sum += d;
  profile.mean_density = sum / static_cast<double>(profile.lif_densities.size());
  return profile;
}

}  // namespace ttsnn
