#include "snn/dataloader.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "util/thread_pool.h"

namespace ttsnn {

namespace {

/// SplitMix64 finalizer: decorrelates derived seeds so (seed, epoch, batch)
/// streams never overlap even for adjacent inputs.
uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

DataLoader::DataLoader(const Dataset& dataset, DataLoaderOptions opts)
    : dataset_(dataset), opts_(opts) {
  TTSNN_CHECK(opts_.batch_size >= 1,
              "DataLoader: batch_size must be >= 1, got " << opts_.batch_size);
  TTSNN_CHECK(opts_.timesteps >= 1,
              "DataLoader: timesteps must be >= 1, got " << opts_.timesteps);
  TTSNN_CHECK(opts_.prefetch >= 0,
              "DataLoader: prefetch must be >= 0, got " << opts_.prefetch);
  // With no pool workers a submitted task would never run; fall back to
  // assembling batches on the consumer thread.
  async_ = opts_.prefetch > 0 && ThreadPool::instance().workers() > 0;
}

DataLoader::~DataLoader() { drain(); }

int64_t DataLoader::batches_per_epoch() const {
  const int64_t n = dataset_.size();
  if (opts_.drop_last) return n / opts_.batch_size;
  return (n + opts_.batch_size - 1) / opts_.batch_size;
}

void DataLoader::begin_epoch(int64_t epoch) {
  TTSNN_CHECK(epoch >= 0, "DataLoader: epoch must be >= 0, got " << epoch);
  drain();  // after this no producer reads the epoch state we rewrite below

  epoch_seed_ = mix64(opts_.seed ^ mix64(static_cast<uint64_t>(epoch) + 1));
  order_.resize(static_cast<size_t>(dataset_.size()));
  std::iota(order_.begin(), order_.end(), 0);
  if (opts_.shuffle) {
    Rng rng(epoch_seed_);
    std::shuffle(order_.begin(), order_.end(), rng.engine());
  }
  epoch_batches_ = batches_per_epoch();

  {
    std::lock_guard<std::mutex> lock(mu_);
    ready_.clear();
    next_batch_ = 0;
    next_submit_ = 0;
    error_ = nullptr;
    error_batch_ = -1;
    wait_seconds_ = 0.0;
  }
  if (async_) {
    const int64_t ahead = std::min(opts_.prefetch, epoch_batches_);
    for (int64_t b = 0; b < ahead; ++b) schedule(b);
    std::lock_guard<std::mutex> lock(mu_);
    next_submit_ = ahead;
  }
}

Batch DataLoader::produce(int64_t batch_index) const {
  const int64_t begin = batch_index * opts_.batch_size;
  const int64_t end =
      std::min<int64_t>(begin + opts_.batch_size, dataset_.size());
  std::vector<int64_t> idx(order_.begin() + begin, order_.begin() + end);
  Batch batch = dataset_.get_batch(idx, opts_.timesteps);
  if (opts_.augment) {
    // Per-batch derived Rng: augmentation draws depend on the batch index,
    // not on which producer ran first — the async/sync bit-identity hinge.
    Rng rng(mix64(epoch_seed_ ^ mix64(static_cast<uint64_t>(batch_index))));
    batch.input = augment_events(batch.input, opts_.augment_opts, rng);
  }
  return batch;
}

void DataLoader::schedule(int64_t batch_index) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++inflight_;
  }
  ThreadPool::instance().submit([this, batch_index] {
    bool cancelled;
    {
      std::lock_guard<std::mutex> lock(mu_);
      cancelled = cancel_;
    }
    Batch batch;
    std::exception_ptr err;
    if (!cancelled) {
      try {
        batch = produce(batch_index);
      } catch (...) {
        err = std::current_exception();
      }
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (!cancel_) {
      if (err) {
        // Keep the error of the LOWEST failing index: that is where the
        // sequential sync path would have thrown.
        if (error_batch_ < 0 || batch_index < error_batch_) {
          error_ = err;
          error_batch_ = batch_index;
        }
      } else if (!cancelled) {
        ready_.emplace(batch_index, std::move(batch));
      }
    }
    --inflight_;
    // Notify while still holding the mutex: drain() may destroy this loader
    // (and this condition variable) the instant it sees inflight_ == 0, so
    // the notify must happen-before our unlock, not after it.
    cv_.notify_all();
  });
}

bool DataLoader::next(Batch* out) {
  TTSNN_CHECK(out != nullptr, "DataLoader::next: null output batch");
  if (!async_) {
    std::lock_guard<std::mutex> lock(mu_);
    if (next_batch_ >= epoch_batches_) return false;
    // Synchronous assembly is pure data wait: the consumer thread is doing
    // the producer's job.
    Timer t;
    *out = produce(next_batch_);
    wait_seconds_ += t.seconds();
    ++next_batch_;
    return true;
  }

  {
    Timer t;
    std::unique_lock<std::mutex> lock(mu_);
    if (next_batch_ >= epoch_batches_) return false;
    const int64_t take = next_batch_;
    // A failure on a LATER batch must not preempt `take`: its producer is
    // still in flight and will deliver. Only when `take` itself failed is
    // there nothing left to wait for — consumption is in order, so an
    // error_batch_ below take would already have thrown.
    cv_.wait(lock, [&] { return ready_.count(take) > 0 || error_batch_ == take; });
    wait_seconds_ += t.seconds();
    auto it = ready_.find(take);
    if (it == ready_.end()) {
      // Every good batch before the failure has been delivered (matching the
      // sync path's order). Mark the epoch finished before surfacing it so a
      // caller that catches and retries gets a clean begin_epoch, not a
      // wedged cursor.
      const std::exception_ptr err = error_;
      next_batch_ = epoch_batches_;
      lock.unlock();
      drain();
      std::rethrow_exception(err);
    }
    *out = std::move(it->second);
    ready_.erase(it);
    ++next_batch_;
  }
  // Refill the prefetch window outside the lock (submit takes the pool lock).
  int64_t refill = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (next_submit_ < epoch_batches_) refill = next_submit_++;
  }
  if (refill >= 0) schedule(refill);
  return true;
}

double DataLoader::wait_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wait_seconds_;
}

void DataLoader::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cancel_ = true;
  cv_.wait(lock, [&] { return inflight_ == 0; });
  cancel_ = false;
  ready_.clear();
}

}  // namespace ttsnn
