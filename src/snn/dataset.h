#pragma once

/// \file dataset.h
/// Abstract dataset interface consumed by the Trainer. Implementations live
/// in src/data. A dataset produces [T, N, C, H, W] sequences directly:
/// static image datasets replicate each frame across timesteps (direct
/// coding); event datasets return a distinct frame per timestep — the
/// property the paper's HTT analysis hinges on.

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace ttsnn {

struct Batch {
  Tensor input;  ///< [T, N, C, H, W]
  std::vector<int64_t> labels;
};

class Dataset {
 public:
  virtual ~Dataset() = default;

  virtual int64_t size() const = 0;
  virtual int64_t num_classes() const = 0;
  virtual int64_t channels() const = 0;
  virtual int64_t height() const = 0;
  virtual int64_t width() const = 0;
  /// True when each timestep carries distinct content (event data).
  virtual bool is_temporal() const = 0;

  /// Assembles a batch for the given sample indices with T timesteps.
  virtual Batch get_batch(const std::vector<int64_t>& indices,
                          int64_t timesteps) const = 0;
};

}  // namespace ttsnn
