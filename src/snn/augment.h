#pragma once

/// \file augment.h
/// Neuromorphic data augmentation in the style of NDA [29]: geometric
/// transforms applied consistently across all timesteps of an event clip —
/// rolling (integer translation), horizontal flip, and cutout. These are the
/// NDA operations that act on event frames without resampling.

#include "tensor/tensor.h"

namespace ttsnn {

struct AugmentOptions {
  int64_t max_shift = 2;    ///< rolling range in pixels (+/-)
  bool hflip = true;        ///< random horizontal flip with p = 0.5
  int64_t cutout_size = 4;  ///< square cutout side; 0 disables
  float cutout_prob = 0.5F;
};

/// Augments a batch sequence [T, N, C, H, W] in place-like fashion (returns a
/// new tensor). One transform draw per sample, shared across its timesteps —
/// event clips must stay temporally coherent.
Tensor augment_events(const Tensor& x, const AugmentOptions& opts, Rng& rng);

}  // namespace ttsnn
