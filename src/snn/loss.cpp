#include "snn/loss.h"

#include <cmath>
#include <vector>

#include "tensor/ops.h"

namespace ttsnn {

namespace {

void check_logits(const Tensor& logits, const std::vector<int64_t>& labels) {
  TTSNN_CHECK(logits.dim() == 3, "loss expects [T, N, C] logits, got "
                                     << shape_str(logits.shape()));
  TTSNN_CHECK(static_cast<int64_t>(labels.size()) == logits.size(1),
              "labels size " << labels.size() << " vs batch " << logits.size(1));
  for (int64_t label : labels) {
    TTSNN_CHECK(label >= 0 && label < logits.size(2),
                "label " << label << " out of range");
  }
}

/// Sums logits over the time dimension: [T, N, C] -> [N, C].
Tensor sum_over_time(const Tensor& logits) {
  const int64_t t_steps = logits.size(0);
  const int64_t nc = logits.size(1) * logits.size(2);
  if (t_steps == 0) return Tensor({logits.size(1), logits.size(2)});
  Tensor out = Tensor::empty({logits.size(1), logits.size(2)});
  float* dst = out.data();
  const float* src = logits.data();
  std::copy(src, src + nc, dst);
  for (int64_t t = 1; t < t_steps; ++t) {
    for (int64_t i = 0; i < nc; ++i) dst[i] += src[t * nc + i];
  }
  return out;
}

}  // namespace

LossResult cross_entropy_sum_loss(const Tensor& logits,
                                  const std::vector<int64_t>& labels) {
  check_logits(logits, labels);
  const int64_t t_steps = logits.size(0);
  const int64_t n = logits.size(1);
  const int64_t c = logits.size(2);

  Tensor summed = sum_over_time(logits);
  // One buffer serves both passes: log-softmax for the loss value, then
  // exponentiated in place into the softmax the gradient needs.
  Tensor p = log_softmax(summed);

  LossResult out;
  for (int64_t i = 0; i < n; ++i) {
    out.value -= p.at({i, labels[static_cast<size_t>(i)]});
  }
  out.value /= static_cast<double>(n);

  // d loss / d summed = (softmax - onehot) / n; identical for every timestep
  // because d summed / d logits[t] = identity.
  p.exp_();
  const float inv_n = 1.0F / static_cast<float>(n);
  out.grad = Tensor::empty({t_steps, n, c});
  float* g = out.grad.data();
  const float* pp = p.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < c; ++j) {
      const float v =
          (pp[i * c + j] - (labels[static_cast<size_t>(i)] == j ? 1.0F : 0.0F)) *
          inv_n;
      for (int64_t t = 0; t < t_steps; ++t) g[(t * n + i) * c + j] = v;
    }
  }
  return out;
}

LossResult tet_loss(const Tensor& logits, const std::vector<int64_t>& labels,
                    float lambda, float phi) {
  check_logits(logits, labels);
  const int64_t t_steps = logits.size(0);
  const int64_t n = logits.size(1);
  const int64_t c = logits.size(2);
  TTSNN_CHECK(lambda >= 0.0F && lambda <= 1.0F, "tet lambda must be in [0, 1]");

  LossResult out;
  out.grad = Tensor::empty({t_steps, n, c});
  float* g = out.grad.data();
  const float* step_base = logits.data();
  const float ce_w = (1.0F - lambda) / static_cast<float>(t_steps * n);
  const float mse_w = lambda / static_cast<float>(t_steps * n * c);

  // Scratch reused across the T per-step passes instead of three fresh
  // tensors (slice clone, log-softmax, softmax) per timestep.
  std::vector<float> logp(static_cast<size_t>(n * c));
  for (int64_t t = 0; t < t_steps; ++t) {
    const float* step = step_base + t * n * c;
    log_softmax_rows(step, n, c, logp.data());
    for (int64_t i = 0; i < n; ++i) {
      const int64_t label = labels[static_cast<size_t>(i)];
      const float* srow = step + i * c;
      const float* lrow = logp.data() + i * c;
      float* grow = g + (t * n + i) * c;
      out.value -= (1.0F - lambda) * lrow[label] /
                   static_cast<double>(t_steps * n);
      for (int64_t j = 0; j < c; ++j) {
        const float onehot = label == j ? 1.0F : 0.0F;
        const float diff = srow[j] - phi * onehot;
        out.value += static_cast<double>(mse_w) * diff * diff;
        grow[j] = ce_w * (std::exp(lrow[j]) - onehot) + 2.0F * mse_w * diff;
      }
    }
  }
  return out;
}

double accuracy(const Tensor& logits, const std::vector<int64_t>& labels) {
  TTSNN_CHECK(logits.dim() == 3, "accuracy expects [T, N, C]");
  Tensor summed = sum_over_time(logits);
  auto pred = argmax_rows(summed);
  int64_t correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    correct += pred[i] == labels[i] ? 1 : 0;
  }
  return labels.empty() ? 0.0
                        : static_cast<double>(correct) /
                              static_cast<double>(labels.size());
}

}  // namespace ttsnn
