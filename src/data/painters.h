#pragma once

/// \file painters.h
/// Shared procedural drawing helpers for the synthetic datasets: oriented
/// gratings, Gaussian blobs, and rotated bars rendered into single-channel
/// H x W planes (pointer + dims; the callers own the tensor).

#include <cstdint>

namespace ttsnn {

/// Adds amplitude * sin(2*pi*freq*(x cos a + y sin a)/extent + phase).
void paint_grating(float* plane, int64_t h, int64_t w, double angle,
                   double freq, double phase, double amplitude);

/// Adds amplitude * exp(-d^2 / (2 sigma^2)) centered at (cy, cx).
void paint_blob(float* plane, int64_t h, int64_t w, double cy, double cx,
                double sigma, double amplitude);

/// Adds an anti-aliased rotated bar of given half-length and half-thickness
/// centered at (cy, cx) with orientation `angle`.
void paint_bar(float* plane, int64_t h, int64_t w, double cy, double cx,
               double angle, double half_len, double half_thick,
               double amplitude);

}  // namespace ttsnn
