#pragma once

/// \file synthetic_image.h
/// CIFAR10/100 stand-in (DESIGN.md §3): class-conditional static images.
/// Each class is a distinct combination of an oriented grating, a
/// perpendicular secondary grating, and a Gaussian blob at a class-specific
/// position; samples add spatial jitter and pixel noise. Class information is
/// carried by BOTH horizontal and vertical structure, which is precisely what
/// separates PTT's cross-shaped receptive field from STT's asymmetric strips.
///
/// get_batch() replicates each image across timesteps (direct coding [31]).

#include "snn/dataset.h"

namespace ttsnn {

class SyntheticImageDataset : public Dataset {
 public:
  struct Options {
    int64_t num_classes = 10;
    int64_t samples_per_class = 32;
    int64_t channels = 3;
    int64_t size = 16;  ///< square images
    float noise = 0.15F;
    int64_t max_jitter = 2;
    uint64_t seed = 1234;
  };

  explicit SyntheticImageDataset(Options opts);

  int64_t size() const override { return static_cast<int64_t>(labels_.size()); }
  int64_t num_classes() const override { return opts_.num_classes; }
  int64_t channels() const override { return opts_.channels; }
  int64_t height() const override { return opts_.size; }
  int64_t width() const override { return opts_.size; }
  bool is_temporal() const override { return false; }

  Batch get_batch(const std::vector<int64_t>& indices,
                  int64_t timesteps) const override;

  /// Raw image of one sample [C, H, W] (for inspection/tests).
  Tensor image(int64_t index) const;
  int64_t label(int64_t index) const { return labels_.at(static_cast<size_t>(index)); }

 private:
  Options opts_;
  Tensor images_;  ///< [N, C, H, W], generated at construction
  std::vector<int64_t> labels_;
};

}  // namespace ttsnn
