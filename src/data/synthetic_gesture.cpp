#include "data/synthetic_gesture.h"

#include <cmath>
#include <numbers>
#include <vector>

#include "data/painters.h"

namespace ttsnn {

SyntheticGestureDataset::SyntheticGestureDataset(Options opts) : opts_(opts) {
  TTSNN_CHECK(opts_.num_classes >= 2 && opts_.samples_per_class >= 1,
              "SyntheticGestureDataset: bad sizes");
  TTSNN_CHECK(opts_.size >= 8, "SyntheticGestureDataset: size too small");
}

Batch SyntheticGestureDataset::get_batch(const std::vector<int64_t>& indices,
                                         int64_t timesteps) const {
  TTSNN_CHECK(!indices.empty(), "get_batch: empty index list");
  const int64_t s = opts_.size;
  const int64_t n = static_cast<int64_t>(indices.size());
  Batch batch;
  batch.input = Tensor({timesteps, n, 2, s, s});

  std::vector<float> prev(static_cast<size_t>(s * s));
  std::vector<float> cur(static_cast<size_t>(s * s));

  // The last two classes are rotations (cw / ccw); the rest are translations
  // along equally spaced directions.
  const int64_t translation_classes = std::max<int64_t>(opts_.num_classes - 2, 1);

  for (int64_t b = 0; b < n; ++b) {
    const int64_t idx = indices[static_cast<size_t>(b)];
    TTSNN_CHECK(idx >= 0 && idx < size(), "get_batch: index out of range");
    const int64_t cls = label(idx);
    Rng rng(opts_.seed * 1000003ULL + static_cast<uint64_t>(idx));

    const bool rotating = opts_.num_classes > 2 && cls >= translation_classes;
    const double dir = 2.0 * std::numbers::pi *
                       static_cast<double>(cls % translation_classes) /
                       static_cast<double>(translation_classes);
    const double spin = (cls - translation_classes) == 0 ? 1.0 : -1.0;
    const double radius = s / 4.0;
    double angle0 = rng.uniform(0.0F, 6.28F);
    double cy = s / 2.0 + rng.uniform(-1.5F, 1.5F);
    double cx = s / 2.0 + rng.uniform(-1.5F, 1.5F);

    auto position = [&](int64_t t) {
      if (rotating) {
        const double a =
            angle0 + spin * 0.7 * static_cast<double>(t);
        return std::pair<double, double>(s / 2.0 + radius * std::sin(a),
                                         s / 2.0 + radius * std::cos(a));
      }
      // Translation with wrap-around so long clips stay inside the frame.
      double py = cy + opts_.speed * std::sin(dir) * static_cast<double>(t);
      double px = cx + opts_.speed * std::cos(dir) * static_cast<double>(t);
      py = std::fmod(std::fmod(py, s) + s, s);
      px = std::fmod(std::fmod(px, s) + s, s);
      return std::pair<double, double>(py, px);
    };

    auto [py, px] = position(0);
    std::fill(prev.begin(), prev.end(), 0.0F);
    paint_blob(prev.data(), s, s, py, px, 1.8, 1.2);

    for (int64_t t = 0; t < timesteps; ++t) {
      auto [qy, qx] = position(t + 1);
      std::fill(cur.begin(), cur.end(), 0.0F);
      paint_blob(cur.data(), s, s, qy, qx, 1.8, 1.2);

      float* on = batch.input.data() + (((t * n + b) * 2 + 0) * s * s);
      float* off = batch.input.data() + (((t * n + b) * 2 + 1) * s * s);
      for (int64_t p = 0; p < s * s; ++p) {
        const float diff = cur[static_cast<size_t>(p)] - prev[static_cast<size_t>(p)];
        if (diff > 0.15F) on[p] = 1.0F;
        if (diff < -0.15F) off[p] = 1.0F;
        if (rng.bernoulli(opts_.noise_events)) {
          (rng.bernoulli(0.5F) ? on : off)[p] = 1.0F;
        }
      }
      std::swap(prev, cur);
    }
    batch.labels.push_back(cls);
  }
  return batch;
}

}  // namespace ttsnn
