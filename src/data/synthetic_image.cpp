#include "data/synthetic_image.h"

#include <cmath>
#include <numbers>

#include "data/painters.h"
#include "snn/encoder.h"

namespace ttsnn {

SyntheticImageDataset::SyntheticImageDataset(Options opts) : opts_(opts) {
  TTSNN_CHECK(opts_.num_classes >= 2 && opts_.samples_per_class >= 1,
              "SyntheticImageDataset: bad sizes");
  const int64_t n = opts_.num_classes * opts_.samples_per_class;
  const int64_t s = opts_.size;
  images_ = Tensor({n, opts_.channels, s, s});
  labels_.resize(static_cast<size_t>(n));
  Rng rng(opts_.seed);

  int64_t idx = 0;
  for (int64_t k = 0; k < opts_.num_classes; ++k) {
    // Class signature: primary orientation, frequency, blob position.
    const double angle =
        std::numbers::pi * static_cast<double>(k) / opts_.num_classes;
    const double freq = 2.0 + static_cast<double>(k % 3);
    const double blob_y =
        s * (0.25 + 0.5 * static_cast<double>(k % 4) / 3.0);
    const double blob_x =
        s * (0.25 + 0.5 * static_cast<double>((k / 4) % 4) / 3.0);
    for (int64_t i = 0; i < opts_.samples_per_class; ++i, ++idx) {
      labels_[static_cast<size_t>(idx)] = k;
      const double jy = rng.uniform(-static_cast<float>(opts_.max_jitter),
                                    static_cast<float>(opts_.max_jitter));
      const double jx = rng.uniform(-static_cast<float>(opts_.max_jitter),
                                    static_cast<float>(opts_.max_jitter));
      const double phase = rng.uniform(0.0F, 0.6F);
      for (int64_t c = 0; c < opts_.channels; ++c) {
        float* plane = images_.data() + ((idx * opts_.channels + c) * s * s);
        const double cphase = phase + 0.7 * static_cast<double>(c);
        // Primary grating plus a perpendicular secondary one: classes are
        // distinguishable only by joint horizontal+vertical structure.
        paint_grating(plane, s, s, angle, freq, cphase, 0.5);
        paint_grating(plane, s, s, angle + std::numbers::pi / 2.0, freq + 1.0,
                      cphase, 0.3);
        paint_blob(plane, s, s, blob_y + jy, blob_x + jx, s / 8.0, 0.8);
        // Pixel noise and [0, 1] range.
        for (int64_t p = 0; p < s * s; ++p) {
          plane[p] = 0.5F + 0.5F * plane[p] + opts_.noise * rng.normal();
        }
      }
    }
  }
  images_.clamp_(0.0F, 1.0F);
}

Batch SyntheticImageDataset::get_batch(const std::vector<int64_t>& indices,
                                       int64_t timesteps) const {
  TTSNN_CHECK(!indices.empty(), "get_batch: empty index list");
  const int64_t s = opts_.size;
  Tensor frames({static_cast<int64_t>(indices.size()), opts_.channels, s, s});
  Batch batch;
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t idx = indices[i];
    TTSNN_CHECK(idx >= 0 && idx < size(), "get_batch: index out of range");
    const int64_t chw = opts_.channels * s * s;
    std::copy(images_.data() + idx * chw, images_.data() + (idx + 1) * chw,
              frames.data() + static_cast<int64_t>(i) * chw);
    batch.labels.push_back(labels_[static_cast<size_t>(idx)]);
  }
  batch.input = direct_code(frames, timesteps);
  return batch;
}

Tensor SyntheticImageDataset::image(int64_t index) const {
  TTSNN_CHECK(index >= 0 && index < size(), "image index out of range");
  const int64_t chw = opts_.channels * opts_.size * opts_.size;
  Tensor out({opts_.channels, opts_.size, opts_.size});
  std::copy(images_.data() + index * chw, images_.data() + (index + 1) * chw,
            out.data());
  return out;
}

}  // namespace ttsnn
