#pragma once

/// \file synthetic_gesture.h
/// DVS128-Gesture stand-in (DESIGN.md §3): event clips whose CLASS IS THE
/// MOTION. A fixed disk moves with a class-specific velocity direction (or
/// rotates around the center for the last two classes); single frames are
/// nearly indistinguishable across classes, so classification requires
/// temporal integration — the regime targeted by TET and NDA in Table III.

#include "snn/dataset.h"

namespace ttsnn {

class SyntheticGestureDataset : public Dataset {
 public:
  struct Options {
    int64_t num_classes = 8;
    int64_t samples_per_class = 32;
    int64_t size = 16;
    double speed = 1.8;
    float noise_events = 0.02F;
    uint64_t seed = 9876;
  };

  explicit SyntheticGestureDataset(Options opts);

  int64_t size() const override {
    return opts_.num_classes * opts_.samples_per_class;
  }
  int64_t num_classes() const override { return opts_.num_classes; }
  int64_t channels() const override { return 2; }
  int64_t height() const override { return opts_.size; }
  int64_t width() const override { return opts_.size; }
  bool is_temporal() const override { return true; }

  Batch get_batch(const std::vector<int64_t>& indices,
                  int64_t timesteps) const override;

  int64_t label(int64_t index) const { return index / opts_.samples_per_class; }

 private:
  Options opts_;
};

}  // namespace ttsnn
