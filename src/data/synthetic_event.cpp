#include "data/synthetic_event.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "data/painters.h"

namespace ttsnn {

SyntheticEventDataset::SyntheticEventDataset(Options opts) : opts_(opts) {
  TTSNN_CHECK(opts_.num_classes >= 2 && opts_.samples_per_class >= 1,
              "SyntheticEventDataset: bad sizes");
  TTSNN_CHECK(opts_.size >= 8, "SyntheticEventDataset: size too small");
}

void SyntheticEventDataset::render_shape(int64_t cls, double cy, double cx,
                                         float* plane) const {
  const int64_t s = opts_.size;
  // Class signature: bar orientation + satellite blob offset (shape identity,
  // as in N-Caltech; the motion is the same saccade for every class).
  const double angle =
      std::numbers::pi * static_cast<double>(cls) / opts_.num_classes;
  const double blob_angle =
      2.0 * std::numbers::pi * static_cast<double>(cls) / opts_.num_classes;
  paint_bar(plane, s, s, cy, cx, angle, s / 4.0, 1.0, 1.0);
  paint_blob(plane, s, s, cy + (s / 5.0) * std::sin(blob_angle),
             cx + (s / 5.0) * std::cos(blob_angle), 1.5, 1.0);
}

Batch SyntheticEventDataset::get_batch(const std::vector<int64_t>& indices,
                                       int64_t timesteps) const {
  TTSNN_CHECK(!indices.empty(), "get_batch: empty index list");
  const int64_t s = opts_.size;
  const int64_t n = static_cast<int64_t>(indices.size());
  Batch batch;
  batch.input = Tensor({timesteps, n, 2, s, s});

  // Triangular saccade in the style of the N-Caltech recording protocol:
  // three sweep directions visited in sequence.
  const double dirs[3] = {std::numbers::pi / 6.0, 5.0 * std::numbers::pi / 6.0,
                          -std::numbers::pi / 2.0};

  std::vector<float> prev(static_cast<size_t>(s * s));
  std::vector<float> cur(static_cast<size_t>(s * s));

  for (int64_t b = 0; b < n; ++b) {
    const int64_t idx = indices[static_cast<size_t>(b)];
    TTSNN_CHECK(idx >= 0 && idx < size(), "get_batch: index out of range");
    const int64_t cls = label(idx);
    // Per-sample determinism: the generator depends only on (seed, idx).
    Rng rng(opts_.seed * 1000003ULL + static_cast<uint64_t>(idx));
    double cy = s / 2.0 + rng.uniform(-2.0F, 2.0F);
    double cx = s / 2.0 + rng.uniform(-2.0F, 2.0F);
    const double phase = rng.uniform(0.0F, 3.0F);

    std::fill(prev.begin(), prev.end(), 0.0F);
    render_shape(cls, cy, cx, prev.data());

    for (int64_t t = 0; t < timesteps; ++t) {
      const double dir = dirs[(t + static_cast<int64_t>(phase)) % 3];
      cy += opts_.speed * std::sin(dir);
      cx += opts_.speed * std::cos(dir);
      // Keep the shape inside the frame.
      cy = std::clamp(cy, s / 4.0, 3.0 * s / 4.0);
      cx = std::clamp(cx, s / 4.0, 3.0 * s / 4.0);

      std::fill(cur.begin(), cur.end(), 0.0F);
      render_shape(cls, cy, cx, cur.data());

      float* on = batch.input.data() + (((t * n + b) * 2 + 0) * s * s);
      float* off = batch.input.data() + (((t * n + b) * 2 + 1) * s * s);
      for (int64_t p = 0; p < s * s; ++p) {
        const float diff = cur[static_cast<size_t>(p)] - prev[static_cast<size_t>(p)];
        // Event threshold 0.15 mimics a DVS contrast threshold.
        if (diff > 0.15F) on[p] = 1.0F;
        if (diff < -0.15F) off[p] = 1.0F;
        // Sensor noise: spurious events of either polarity.
        if (rng.bernoulli(opts_.noise_events)) {
          (rng.bernoulli(0.5F) ? on : off)[p] = 1.0F;
        }
      }
      std::swap(prev, cur);
    }
    batch.labels.push_back(cls);
  }
  return batch;
}

}  // namespace ttsnn
