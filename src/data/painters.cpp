#include "data/painters.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace ttsnn {

void paint_grating(float* plane, int64_t h, int64_t w, double angle,
                   double freq, double phase, double amplitude) {
  const double ca = std::cos(angle);
  const double sa = std::sin(angle);
  const double extent = static_cast<double>(std::max(h, w));
  for (int64_t y = 0; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      const double u = (x * ca + y * sa) / extent;
      plane[y * w + x] += static_cast<float>(
          amplitude * std::sin(2.0 * std::numbers::pi * freq * u + phase));
    }
  }
}

void paint_blob(float* plane, int64_t h, int64_t w, double cy, double cx,
                double sigma, double amplitude) {
  const double inv = 1.0 / (2.0 * sigma * sigma);
  for (int64_t y = 0; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      const double dy = y - cy;
      const double dx = x - cx;
      plane[y * w + x] +=
          static_cast<float>(amplitude * std::exp(-(dy * dy + dx * dx) * inv));
    }
  }
}

void paint_bar(float* plane, int64_t h, int64_t w, double cy, double cx,
               double angle, double half_len, double half_thick,
               double amplitude) {
  const double ca = std::cos(angle);
  const double sa = std::sin(angle);
  for (int64_t y = 0; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      const double dy = y - cy;
      const double dx = x - cx;
      // Coordinates in the bar frame.
      const double along = dx * ca + dy * sa;
      const double across = -dx * sa + dy * ca;
      // Soft edges: 1 inside, linear falloff over one pixel.
      const double fa = std::clamp(half_len + 0.5 - std::fabs(along), 0.0, 1.0);
      const double fc = std::clamp(half_thick + 0.5 - std::fabs(across), 0.0, 1.0);
      plane[y * w + x] += static_cast<float>(amplitude * fa * fc);
    }
  }
}

}  // namespace ttsnn
