#include "util/failpoint.h"

#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>

namespace ttsnn::failpoint {

namespace detail {
std::atomic<int> armed_count{0};
}  // namespace detail

namespace {

enum class Mode { kOff, kOnce, kEveryN, kAfterK };

struct Point {
  Mode mode = Mode::kOff;
  int64_t n = 0;       ///< the N of every:N / the K of after:K
  int64_t hits = 0;    ///< evaluations observed while armed
  int64_t fired = 0;   ///< evaluations that threw
  std::string spec;    ///< the original spec string, for summary()
};

/// All registry state behind one mutex. The armed path is rare and cheap
/// (map lookup + counter bump); the unarmed path never gets here.
struct Registry {
  std::mutex mu;
  std::map<std::string, Point> points;

  static Registry& instance() {
    static Registry r;
    return r;
  }
};

Point parse_spec(const std::string& name, const std::string& spec) {
  Point p;
  p.spec = spec;
  if (spec == "off") {
    p.mode = Mode::kOff;
    return p;
  }
  if (spec == "once") {
    p.mode = Mode::kOnce;
    return p;
  }
  const auto parse_n = [&](const char* prefix, Mode mode,
                           int64_t min_n) -> bool {
    const std::string pre(prefix);
    if (spec.rfind(pre, 0) != 0) return false;
    const std::string num = spec.substr(pre.size());
    int64_t n = -1;
    try {
      size_t used = 0;
      n = std::stoll(num, &used);
      if (used != num.size()) n = -1;
    } catch (const std::exception&) {
      n = -1;
    }
    TTSNN_CHECK(n >= min_n, "failpoint '" << name << "': bad count in spec '"
                                          << spec << "'");
    p.mode = mode;
    p.n = n;
    return true;
  };
  if (parse_n("every:", Mode::kEveryN, 1)) return p;
  if (parse_n("after:", Mode::kAfterK, 0)) return p;
  TTSNN_CHECK(false, "failpoint '"
                         << name << "': unknown spec '" << spec
                         << "' (want off | once | every:N | after:K)");
  return p;  // unreachable
}

/// Parses TTSNN_FAILPOINTS at static-init time, before main: env-armed
/// failpoints fire in any binary with no code changes. Self-contained (the
/// registry is a function-local static), so initialization order is safe.
struct EnvLoader {
  EnvLoader() {
    const char* env = std::getenv("TTSNN_FAILPOINTS");
    if (env != nullptr && *env != '\0') arm_spec_list(env);
  }
};
const EnvLoader env_loader;

}  // namespace

namespace detail {

void evaluate(const char* name) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.points.find(name);
  if (it == r.points.end()) return;
  Point& p = it->second;
  const int64_t hit = ++p.hits;
  bool fire = false;
  switch (p.mode) {
    case Mode::kOff:
      break;
    case Mode::kOnce:
      fire = hit == 1;
      break;
    case Mode::kEveryN:
      fire = hit % p.n == 0;
      break;
    case Mode::kAfterK:
      fire = hit > p.n;
      break;
  }
  if (!fire) return;
  ++p.fired;
  std::ostringstream oss;
  oss << "failpoint '" << name << "' fired (spec " << p.spec << ", hit " << hit
      << "): injected fault";
  throw FailpointError(oss.str());
}

}  // namespace detail

void arm(const std::string& name, const std::string& spec) {
  TTSNN_CHECK(!name.empty(), "failpoint: empty name");
  Point p = parse_spec(name, spec);  // validate before touching the registry
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lock(r.mu);
  const bool fresh = r.points.find(name) == r.points.end();
  r.points[name] = std::move(p);  // re-arming resets hit/fired counters
  if (fresh) detail::armed_count.fetch_add(1, std::memory_order_release);
}

bool disarm(const std::string& name) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.points.erase(name) == 0) return false;
  detail::armed_count.fetch_sub(1, std::memory_order_release);
  return true;
}

void disarm_all() {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lock(r.mu);
  detail::armed_count.fetch_sub(static_cast<int>(r.points.size()),
                                std::memory_order_release);
  r.points.clear();
}

bool armed(const std::string& name) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.points.find(name) != r.points.end();
}

int64_t hits(const std::string& name) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.hits;
}

int64_t fired(const std::string& name) {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.fired;
}

void arm_spec_list(const std::string& list) {
  size_t begin = 0;
  while (begin <= list.size()) {
    size_t end = list.find(',', begin);
    if (end == std::string::npos) end = list.size();
    const std::string entry = list.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;
    // The spec itself may contain ':' (every:N), so split on the FIRST one.
    const size_t colon = entry.find(':');
    TTSNN_CHECK(colon != std::string::npos && colon > 0,
                "failpoint list entry '" << entry << "' is not name:spec");
    arm(entry.substr(0, colon), entry.substr(colon + 1));
  }
}

std::string summary() {
  Registry& r = Registry::instance();
  std::lock_guard<std::mutex> lock(r.mu);
  std::ostringstream oss;
  for (const auto& [name, p] : r.points) {
    oss << name << ": " << p.spec << " (hits " << p.hits << ", fired "
        << p.fired << ")\n";
  }
  return oss.str();
}

}  // namespace ttsnn::failpoint
