#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

#include "util/common.h"

namespace ttsnn {

/// Shared state of one parallel_for call. Heap-allocated and owned jointly by
/// the caller and the helper tasks. Note `fn` is a raw pointer into the
/// caller's frame: parallel_for must keep blocking until pending hits zero —
/// a variant that returns early would leave helpers dereferencing a dead
/// std::function even though the Region itself stays alive.
struct ThreadPool::Region {
  std::atomic<int64_t> next{0};    ///< first unclaimed iteration
  int64_t n = 0;
  int64_t grain = 1;
  const std::function<void(int64_t, int64_t)>* fn = nullptr;
  std::atomic<int> pending{0};     ///< helper tasks not yet finished
  std::mutex err_mu;
  std::exception_ptr error;

  /// Claims chunks until the cursor passes n, running fn on each.
  void drain() {
    for (;;) {
      const int64_t begin = next.fetch_add(grain);
      if (begin >= n) return;
      const int64_t end = std::min(n, begin + grain);
      try {
        (*fn)(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!error) error = std::current_exception();
        next.store(n);  // abandon the rest of this region
      }
    }
  }
};

ThreadPool::ThreadPool(int threads) {
  TTSNN_CHECK(threads >= 0, "ThreadPool size must be >= 0");
  threads_.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return stop_ || !queue_.empty() || !submitted_.empty();
      });
      if (stop_ && queue_.empty() && submitted_.empty()) return;
      // Helper chunks first: they unblock a caller already inside a compute
      // region, while submitted tasks are latency-tolerant background work.
      if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      } else {
        task = std::move(submitted_.front());
        submitted_.pop_front();
      }
    }
    task();
  }
}

bool ThreadPool::run_one_task() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::parallel_for(int64_t n,
                              const std::function<void(int64_t, int64_t)>& fn,
                              int64_t grain) {
  if (n <= 0) return;
  const int nworkers = workers();
  if (grain <= 0) {
    // A few chunks per participant so a slow chunk doesn't serialize the tail.
    grain = std::max<int64_t>(1, n / (4 * (nworkers + 1)));
  }
  const int64_t chunks = (n + grain - 1) / grain;
  if (nworkers == 0 || chunks <= 1) {
    fn(0, n);
    return;
  }

  auto region = std::make_shared<Region>();
  region->n = n;
  region->grain = grain;
  region->fn = &fn;

  // One helper per worker, but never more helpers than leftover chunks (the
  // caller itself takes chunks too).
  const int helpers =
      static_cast<int>(std::min<int64_t>(nworkers, chunks - 1));
  region->pending.store(helpers);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int h = 0; h < helpers; ++h) {
      queue_.emplace_back([this, region] {
        region->drain();
        {
          // Decrement under the pool mutex: a caller checks pending while
          // holding it, so this cannot slip between its check and its wait.
          std::lock_guard<std::mutex> lock(mu_);
          region->pending.fetch_sub(1);
        }
        cv_.notify_all();  // wake a caller blocked in the wait below
      });
    }
  }
  cv_.notify_all();

  region->drain();

  // Wait for helpers — but keep doing useful work. Draining the shared queue
  // here is what makes nested parallel_for calls deadlock-free: our helper
  // tasks are *somewhere* in that queue, so running queued tasks inline
  // guarantees forward progress even if every worker is wedged on its own
  // region.
  while (region->pending.load() > 0) {
    if (!run_one_task()) {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this, &region] {
        return region->pending.load() == 0 || !queue_.empty();
      });
    }
  }

  if (region->error) std::rethrow_exception(region->error);
}

void ThreadPool::submit(std::function<void()> task) {
  TTSNN_CHECK(workers() > 0,
              "ThreadPool::submit requires at least one worker thread");
  TTSNN_CHECK(task != nullptr, "ThreadPool::submit of an empty task");
  {
    std::lock_guard<std::mutex> lock(mu_);
    submitted_.emplace_back(std::move(task));
  }
  // notify_all, not notify_one: the single wake could land on a caller
  // blocked in parallel_for (whose predicate ignores submitted_), which
  // would re-sleep and strand the task until an unrelated notify.
  cv_.notify_all();
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("TTSNN_POOL_THREADS")) {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      // Only honor a fully numeric value; "auto" or a typo must not silently
      // disable the pool (strtol returns 0 with no conversion).
      if (end != env && *end == '\0' && v >= 0) {
        return static_cast<int>(std::min<long>(v, 256));
      }
    }
    const unsigned hc = std::thread::hardware_concurrency();
    return hc > 1 ? static_cast<int>(hc - 1) : 0;
  }());
  return pool;
}

void parallel_for(int64_t n, const std::function<void(int64_t, int64_t)>& fn,
                  int64_t grain) {
  ThreadPool::instance().parallel_for(n, fn, grain);
}

void parallel_invoke(const std::function<void()>& fa,
                     const std::function<void()>& fb) {
  parallel_for(
      2, [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) (i == 0 ? fa : fb)();
      },
      /*grain=*/1);
}

}  // namespace ttsnn
