#pragma once

/// \file failpoint.h
/// Named-failpoint registry for deterministic fault injection.
///
/// A failpoint is a named site in production code where a fault can be
/// injected on demand — the serving stack's reliability machinery (replica
/// quarantine, crash-safe checkpoints, retry paths) is proven against
/// *injected* faults instead of waiting for real ones. Sites are spelled
///
///   TTSNN_FAILPOINT("router.dispatch");
///
/// and are ZERO-COST while nothing is armed: the macro is a single relaxed
/// atomic load of a process-wide armed counter, no string work, no lock.
/// Arming a failpoint attaches a firing spec to its name; when an armed
/// site's spec fires, the site throws failpoint::FailpointError (a
/// ttsnn::Error), which propagates exactly like the real fault it stands in
/// for.
///
/// Specs (the `hit` counter is per-name, counted only while armed):
///   "off"      never fires — counts hits, so tests can prove a site is
///              actually reached without perturbing behavior
///   "once"     fires on the first hit only (fail-once)
///   "every:N"  fires on every Nth hit (hits N, 2N, 3N, ...); N=1 = always
///   "after:K"  passes the first K hits, fires on every hit after them
///
/// Arming is programmatic — failpoint::arm("name", "spec") — or environmental:
/// TTSNN_FAILPOINTS="checkpoint.write:once,router.dispatch.0:every:1" is
/// parsed once at process start, so any binary (tests, benches, ttsnn_train)
/// can run a fault drill with no code changes. Hit accounting is mutex-
/// serialized, so the set of firing hits is a pure function of the spec and
/// the total hit count — deterministic under any thread interleaving, which
/// is what the TSan determinism test pins.
///
/// Known site names (kept in docs/ARCHITECTURE.md "Reliability"):
///   engine.run           top of infer::Engine::run
///   plan_cache.compile   program-cache first-miss compile
///   router.dispatch      every Router batch execution (any replica)
///   router.dispatch.<i>  batch execution on replica i specifically
///   checkpoint.write     save_parameters, mid-file (simulated crash)
///   checkpoint.rename    save_parameters, between write and publish
///   checkpoint.read      load_parameters, before parsing

#include <atomic>
#include <cstdint>
#include <string>

#include "util/common.h"

namespace ttsnn::failpoint {

/// Thrown by a firing failpoint. Derives from ttsnn::Error so it propagates
/// through every existing failure path (poisoned futures, quarantine
/// accounting, checkpoint rollback) exactly like an organic fault — but is
/// catchable by type where a test or bench needs to tell injected from real.
class FailpointError : public Error {
 public:
  explicit FailpointError(const std::string& what) : Error(what) {}
};

namespace detail {
/// Number of currently armed failpoints; the macro's fast-path gate.
extern std::atomic<int> armed_count;
/// Slow path: look up `name`, count the hit, throw FailpointError if the
/// spec fires. No-op for names that are not armed.
void evaluate(const char* name);
}  // namespace detail

/// Arms (or re-arms, resetting counters) failpoint `name` with `spec`.
/// Throws ttsnn::Error on a malformed spec.
void arm(const std::string& name, const std::string& spec);

/// Disarms one failpoint; returns false if it was not armed.
bool disarm(const std::string& name);

/// Disarms everything (including env-armed failpoints).
void disarm_all();

bool armed(const std::string& name);

/// Hits observed while armed (every TTSNN_FAILPOINT evaluation of the name).
int64_t hits(const std::string& name);

/// Times the failpoint actually fired (threw).
int64_t fired(const std::string& name);

/// Parses a comma-separated "name:spec,name:spec" list (the TTSNN_FAILPOINTS
/// grammar) and arms every entry. Exposed so tests cover env parsing without
/// re-execing the process.
void arm_spec_list(const std::string& list);

/// One line per armed failpoint: name, spec, hits, fired.
std::string summary();

/// Fast-path gate used by the macro; true when any failpoint is armed.
inline bool any_armed() {
  return detail::armed_count.load(std::memory_order_acquire) > 0;
}

}  // namespace ttsnn::failpoint

/// Failpoint site. `name` must be a null-terminated string; prefer a literal
/// (per-instance sites precompute a std::string and pass .c_str()).
#define TTSNN_FAILPOINT(name)                     \
  do {                                            \
    if (ttsnn::failpoint::any_armed()) {          \
      ttsnn::failpoint::detail::evaluate(name);   \
    }                                             \
  } while (0)
