#pragma once

/// \file thread_pool.h
/// Persistent worker pool shared by every parallel code path in the library.
///
/// The seed implementation spawned fresh threads on every gemm() call and
/// every PTT branch pair — the CPU analog of per-op stream setup. This pool
/// is created once and reused, so a parallel region costs a queue push
/// instead of a thread spawn.
///
/// Design notes:
///  - parallel_for is *work-sharing*: the calling thread claims chunks from
///    the same atomic cursor the workers do, and while waiting for stragglers
///    it drains the shared queue. A nested parallel_for issued from inside a
///    worker task therefore completes inline even when every worker is busy —
///    the pool cannot deadlock on itself.
///  - Exceptions thrown by the body are captured; the first one is rethrown
///    on the calling thread after the region completes, and the remaining
///    chunks of that region are abandoned.

#include <cstdint>
#include <functional>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

namespace ttsnn {

class ThreadPool {
 public:
  /// Creates `threads` persistent workers. Zero is valid: every parallel_for
  /// then runs entirely on the calling thread.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of persistent workers (excluding the calling thread, which also
  /// executes chunks during parallel_for).
  int workers() const { return static_cast<int>(threads_.size()); }

  /// Runs fn(begin, end) over a partition of [0, n), blocking until every
  /// iteration has finished. `grain` is the chunk size handed out per claim;
  /// 0 picks one aimed at a few chunks per participant. Safe to call from
  /// inside a task running on this pool.
  void parallel_for(int64_t n, const std::function<void(int64_t, int64_t)>& fn,
                    int64_t grain = 0);

  /// Enqueues a standalone fire-and-forget task (the DataLoader producer
  /// pattern). Submitted tasks live in their own queue that only idle
  /// workers drain — a thread blocked in parallel_for runs helper chunks,
  /// never a whole submitted task, so batch-granularity background work
  /// cannot sneak into a compute region's critical path. Requires at least
  /// one worker: with none, nothing would ever execute the task, so the
  /// caller must run its work synchronously instead. Completion signalling
  /// is the task's own business; the pool destructor drains both queues
  /// before joining, so a submitted task never silently disappears.
  void submit(std::function<void()> task);

  /// Process-wide pool, created on first use and sized from
  /// TTSNN_POOL_THREADS if set, else hardware_concurrency() - 1 (the calling
  /// thread supplies the remaining lane).
  static ThreadPool& instance();

 private:
  struct Region;  // shared state of one parallel_for call

  void worker_loop();
  /// Pops and runs one parallel_for helper chunk; returns false if that
  /// queue was empty. Deliberately never touches submitted_: this is the
  /// work a blocked parallel_for caller may steal, and stealing a whole
  /// submitted task there would serialize it into the compute path.
  bool run_one_task();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;      ///< parallel_for helpers
  std::deque<std::function<void()>> submitted_;  ///< standalone submit() tasks
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// parallel_for on the process-wide pool (ThreadPool::instance()).
void parallel_for(int64_t n, const std::function<void(int64_t, int64_t)>& fn,
                  int64_t grain = 0);

/// Runs two independent thunks concurrently on the process-wide pool and
/// blocks until both finish (the PTT strip-branch pattern).
void parallel_invoke(const std::function<void()>& fa,
                     const std::function<void()>& fb);

}  // namespace ttsnn
