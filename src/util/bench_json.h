#pragma once

/// \file bench_json.h
/// Shared harness for the benches and the `ttsnn_train` scenario reports:
/// repeat-until-stable timing with p50/p99 percentiles, and a
/// machine-readable JSON report (BENCH_micro.json / BENCH_serving.json /
/// training reports) so the perf trajectory is tracked PR-over-PR as CI
/// artifacts instead of scrollback.
///
/// JSON schema: {"schema": 1, "benchmarks": [{"name": ..., string and number
/// fields...}, ...]}. Field sets vary per bench family (GEMM rows carry
/// shape/density/GFLOPs, serving rows carry req/s), consumers should index by
/// field name.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/common.h"

namespace ttsnn::bench {

struct Timing {
  double p50_s = 0.0;
  double p99_s = 0.0;
  double mean_s = 0.0;
  int64_t iters = 0;
};

/// 0-based index of the nearest-rank p99 in a sorted sample of size n >= 1,
/// with a ceil'd rank: a floor'd n*99/100 under-ranks small samples (n < 100
/// would report ~p95).
inline size_t p99_index(size_t n) {
  const size_t rank = (n * 99 + 99) / 100;  // ceil(0.99 n), >= 1 for n >= 1
  return std::min(n - 1, rank - 1);
}

/// Runs fn() repeatedly — at least min_iters times and until min_seconds of
/// total measured time — and summarizes the per-iteration wall clock.
template <typename Fn>
Timing time_fn(Fn&& fn, double min_seconds = 0.2, int64_t min_iters = 5,
               int64_t max_iters = 1 << 20) {
  fn();  // warm-up: first-touch allocations, branch predictors, caches
  std::vector<double> samples;
  double total = 0.0;
  while ((total < min_seconds ||
          static_cast<int64_t>(samples.size()) < min_iters) &&
         static_cast<int64_t>(samples.size()) < max_iters) {
    Timer t;
    fn();
    const double s = t.seconds();
    samples.push_back(s);
    total += s;
  }
  std::sort(samples.begin(), samples.end());
  Timing out;
  out.iters = static_cast<int64_t>(samples.size());
  const size_t n = samples.size();
  out.p50_s = samples[n / 2];
  out.p99_s = samples[p99_index(n)];
  for (double s : samples) out.mean_s += s;
  out.mean_s /= static_cast<double>(n);
  return out;
}

/// One report row: a name plus free-form string and numeric fields.
class Row {
 public:
  explicit Row(std::string name) : name_(std::move(name)) {}

  Row& str(const std::string& key, const std::string& value) {
    strs_.emplace_back(key, value);
    return *this;
  }
  Row& num(const std::string& key, double value) {
    nums_.emplace_back(key, value);
    return *this;
  }
  /// Standard latency triple from a Timing, in milliseconds.
  Row& timing(const Timing& t) {
    return num("p50_ms", t.p50_s * 1e3)
        .num("p99_ms", t.p99_s * 1e3)
        .num("mean_ms", t.mean_s * 1e3)
        .num("iters", static_cast<double>(t.iters));
  }

  const std::string& name() const { return name_; }

 private:
  friend class Report;
  std::string name_;
  std::vector<std::pair<std::string, std::string>> strs_;
  std::vector<std::pair<std::string, double>> nums_;
};

/// Accumulates rows and writes them as JSON.
class Report {
 public:
  Row& add(const std::string& name) {
    rows_.emplace_back(name);
    return rows_.back();
  }

  void write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    TTSNN_CHECK(f != nullptr, "cannot open bench report " << path);
    std::fprintf(f, "{\n  \"schema\": 1,\n  \"benchmarks\": [\n");
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(f, "    {\"name\": \"%s\"", r.name_.c_str());
      for (const auto& [k, v] : r.strs_) {
        std::fprintf(f, ", \"%s\": \"%s\"", k.c_str(), v.c_str());
      }
      for (const auto& [k, v] : r.nums_) {
        std::fprintf(f, ", \"%s\": %.6g", k.c_str(), v);
      }
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
  }

 private:
  std::vector<Row> rows_;
};

/// --out=path / --quick flags shared by the JSON benches. A bench with
/// extra knobs passes an `extra` handler instead of growing a second parser:
/// it sees each unrecognized flag and returns true when it consumed it.
struct Args {
  std::string out;
  bool quick = false;

  static Args parse(int argc, char** argv, const char* default_out,
                    const std::function<bool(const std::string&)>& extra = {}) {
    Args a;
    a.out = default_out;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--out=", 0) == 0) {
        a.out = arg.substr(6);
      } else if (arg == "--quick") {
        a.quick = true;
      } else if (!extra || !extra(arg)) {
        std::printf("unknown flag %s (shared flags: --out=PATH, --quick)\n",
                    arg.c_str());
      }
    }
    return a;
  }
};

}  // namespace ttsnn::bench
