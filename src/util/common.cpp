#include "util/common.h"

namespace ttsnn {

void fail(const std::string& file, int line, const std::string& msg) {
  std::ostringstream oss;
  oss << file << ":" << line << ": " << msg;
  throw Error(oss.str());
}

}  // namespace ttsnn
