#pragma once

/// \file common.h
/// Shared utilities: error checking, deterministic RNG, and wall-clock timing.

#include <chrono>
#include <cstdint>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ttsnn {

/// Thrown by TTSNN_CHECK failures and by invalid API usage throughout the
/// library. Derives from std::runtime_error so callers can catch either.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void fail(const std::string& file, int line, const std::string& msg);

/// Precondition / invariant check. Always active (not compiled out): this
/// library favors loud failure over silent numeric corruption.
#define TTSNN_CHECK(cond, msg)                                 \
  do {                                                         \
    if (!(cond)) {                                             \
      std::ostringstream oss_;                                 \
      oss_ << "check failed: " #cond " — " << msg;             \
      ::ttsnn::fail(__FILE__, __LINE__, oss_.str());           \
    }                                                          \
  } while (0)

/// Deterministic pseudo-random generator. Every stochastic component in the
/// library takes an Rng& so experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed) : engine_(seed) {}

  /// Standard normal sample.
  float normal() { return normal_(engine_); }
  /// Uniform sample in [lo, hi).
  float uniform(float lo = 0.0F, float hi = 1.0F) {
    return lo + (hi - lo) * unit_(engine_);
  }
  /// Uniform integer in [0, n). Requires n > 0: uniform_int_distribution
  /// with an empty range is undefined behavior, not an error.
  int64_t index(int64_t n) {
    TTSNN_CHECK(n > 0, "Rng::index needs a positive range, got " << n);
    std::uniform_int_distribution<int64_t> d(0, n - 1);
    return d(engine_);
  }
  /// Bernoulli draw with probability p of true.
  bool bernoulli(float p) { return unit_(engine_) < p; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::normal_distribution<float> normal_{0.0F, 1.0F};
  std::uniform_real_distribution<float> unit_{0.0F, 1.0F};
};

/// Monotonic wall-clock stopwatch used for training-time measurements.
class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ttsnn
