#pragma once

/// \file spike_plane.h
/// Compressed representation of binary spike activations.
///
/// SNN activations are overwhelmingly zero (the paper's motivation; related
/// work measures ~0.3 spikes per neuron), and after the im2col lowering the
/// spike tensor shows up as one operand of every convolution GEMM. A
/// SpikePlane is a CSR index set over such a matrix — values are not stored
/// because a spike is exactly 1.0f — built once per timestep/batch plane and
/// consumed by the spmm kernels below, which replace the dense inner products
/// with gathered accumulation: C[i, j] += a instead of C[i, j] += a * b.
///
/// Bit-identity: a skipped zero entry would have contributed a * 0.0f = ±0.0
/// to an accumulator that is never -0.0 (it starts at +0.0 and IEEE-754
/// round-to-nearest cancellation yields +0.0), and a hit entry contributes
/// a * 1.0f == a exactly. Iteration stays ascending in the contraction index,
/// so for finite inputs the spmm kernels return the same bits as the dense
/// kernels in gemm.cpp. Tests pin this at spike densities {0, 0.03, 0.3, 1}.

#include <cstdint>
#include <vector>

namespace ttsnn {

struct SpikePlane {
  int64_t rows = 0;
  int64_t cols = 0;
  /// Per-row slices of col_idx: row r's column indices are
  /// col_idx[row_ptr[r] .. row_ptr[r + 1]).
  std::vector<int64_t> row_ptr;
  std::vector<int32_t> col_idx;

  int64_t nnz() const { return static_cast<int64_t>(col_idx.size()); }
  double density() const {
    return rows * cols == 0 ? 0.0
                            : static_cast<double>(nnz()) /
                                  static_cast<double>(rows * cols);
  }

  /// Builds the index set from a row-major [rows, cols] matrix. Returns false
  /// — leaving *this cleared — when a value other than exactly 0.0f / 1.0f is
  /// found, or when more than max_density * rows * cols entries are set (the
  /// point where gathered accumulation stops beating the vectorized dense
  /// kernels); callers fall back to the dense path on false.
  bool build(const float* data, int64_t rows, int64_t cols,
             double max_density = 1.0);

  void clear();
};

/// Rows [m0, m1) of C += alpha * A * B for row-major A [m, k], C [m, n],
/// where `plane` indexes B [k, n]. Zero A elements are skipped exactly like
/// the dense kernels' spike skip.
void spmm_nn_rows(int64_t m0, int64_t m1, int64_t n, int64_t k, float alpha,
                  const float* a, const SpikePlane& plane, float* c);

/// Rows [m0, m1) of C += alpha * A * B^T for A [m, k], C [m, n], where
/// `plane` indexes B [n, k]. Accumulates each dot product in double in
/// ascending index order, matching gemm_nt_rows bit-for-bit.
void spmm_nt_rows(int64_t m0, int64_t m1, int64_t n, int64_t k, float alpha,
                  const float* a, const SpikePlane& plane, float* c);

}  // namespace ttsnn
