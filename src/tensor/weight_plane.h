#pragma once

/// \file weight_plane.h
/// Typed read-only weight storage for the inference stack. The training side
/// is float32 everywhere; serving plans may re-encode eligible weight
/// matrices into narrower planes: bf16 (round-to-nearest-even truncation of
/// the f32 bits, dequantized in bulk before the unchanged f32 GEMM) or int8
/// with one float scale per output channel (symmetric per-channel
/// quantization, consumed by the integer spike-GEMM kernels in simd.h).
///
/// A WeightPlane is a value type holding refcounted immutable payload:
/// copying an Op or an Engine shares the encoded bytes exactly like the f32
/// weight tensors they replace, so the per-dtype byte accounting
/// (Engine::weight_footprint) stays a unique-storage count.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace ttsnn {

/// Storage dtype of one weight plane. The lattice is flat: a plan picks one
/// requested dtype and every weight either lowers to it or falls back to f32
/// (never to an intermediate dtype), so mixed plans stay two-level.
enum class WeightDtype {
  kF32 = 0,   ///< plain float tensors — the bit-identical default
  kBf16 = 1,  ///< 16-bit truncated floats, dequantized before the f32 GEMM
  kInt8 = 2,  ///< symmetric int8 + per-output-channel float scales
};

/// "f32" / "bf16" / "int8" — shared by summaries, benches and CLI flags.
const char* weight_dtype_name(WeightDtype dtype);

/// Parses a CLI spelling of a dtype name; throws ttsnn::Error on anything
/// but "f32" / "bf16" / "int8".
WeightDtype parse_weight_dtype(const std::string& name);

/// Encodes one f32 value as bf16 with round-to-nearest-even (ties to even),
/// NaN-preserving (always quiet). Infinities and signed zeros round to
/// themselves; values whose magnitude rounds past the largest finite bf16
/// become infinity, exactly like hardware bf16 conversion.
uint16_t bf16_from_f32(float x);

/// Decodes bf16 -> f32: a pure bit expansion (bf16 is the upper half of the
/// f32 encoding), exact for every input including NaN and denormals.
float bf16_to_f32(uint16_t bits);

/// One typed weight plane. Default-constructed planes are the f32 state:
/// quantized() is false and the owning Op keeps its float tensor.
class WeightPlane {
 public:
  WeightPlane() = default;

  /// Re-encodes `w` (any shape) as bf16, element for element.
  static WeightPlane bf16_from(const Tensor& w);

  /// Symmetric per-output-channel int8: rows are slices along dim 0 (conv
  /// [O, C, kh, kw] and linear [out, in] both put the output channel first).
  /// Per row r: scale[r] = max|w_r| / 127 (1.0 for an all-zero row) and
  /// q = round-to-nearest(w / scale) clamped to [-127, 127].
  static WeightPlane int8_from(const Tensor& w);

  WeightDtype dtype() const { return dtype_; }
  bool quantized() const { return dtype_ != WeightDtype::kF32; }

  const Shape& shape() const { return shape_; }
  int64_t numel() const { return numel_; }
  /// Output channels (dim 0 of the logical shape); scales() has this many.
  int64_t rows() const { return shape_.empty() ? 0 : shape_[0]; }
  /// Elements per output channel.
  int64_t cols() const { return rows() > 0 ? numel_ / rows() : 0; }

  const uint16_t* bf16_data() const { return bf16_ ? bf16_->data() : nullptr; }
  const int8_t* int8_data() const { return int8_ ? int8_->data() : nullptr; }
  const Tensor& scales() const { return scales_; }

  /// Encoded payload bytes (data + the int8 scale vector). This is what the
  /// plan's weight accounting charges instead of the replaced f32 bytes.
  int64_t payload_bytes() const;

  /// Stable identity of the shared payload, for unique-storage accounting
  /// (the analogue of Tensor::data() pointer dedup). Null when f32.
  const void* storage_key() const;

  /// Decodes back to a fresh f32 tensor (tests and diagnostics; the hot
  /// paths dequantize into plan scratch via the simd kernels instead).
  Tensor dequant() const;

 private:
  WeightDtype dtype_ = WeightDtype::kF32;
  Shape shape_;
  int64_t numel_ = 0;
  std::shared_ptr<const std::vector<uint16_t>> bf16_;
  std::shared_ptr<const std::vector<int8_t>> int8_;
  Tensor scales_;  ///< [rows] float scales; defined only for int8
};

}  // namespace ttsnn
