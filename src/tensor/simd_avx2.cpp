/// \file simd_avx2.cpp
/// AVX2 implementations of the simd.h kernels. Compiled with -mavx2 -mfma on
/// x86 (see CMakeLists.txt); on other targets the stubs at the bottom keep
/// the link whole and simd.cpp never dispatches here.
///
/// Bit-identity: every kernel uses separate vmulps/vaddps (never FMA) in the
/// exact per-element order of the scalar loops in simd.cpp, scalar tail loops
/// repeat the same expressions, and the TU is built with -ffp-contract=off so
/// the compiler cannot fuse the tails either. vsqrtps / vdivps are correctly
/// rounded, matching their scalar counterparts bit-for-bit.

#include "tensor/simd_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#if defined(__AVX2__)

#include <immintrin.h>

namespace ttsnn::simd::avx2 {

bool compiled_in() { return true; }

void axpy(int64_t n, float a, const float* x, float* y) {
  const __m256 va = _mm256_set1_ps(a);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vx = _mm256_loadu_ps(x + i);
    const __m256 vy = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(y + i, _mm256_add_ps(vy, _mm256_mul_ps(va, vx)));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void mul(int64_t n, const float* x, float* y) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vx = _mm256_loadu_ps(x + i);
    const __m256 vy = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(y + i, _mm256_mul_ps(vy, vx));
  }
  for (; i < n; ++i) y[i] *= x[i];
}

void scale(int64_t n, float a, float* y) {
  const __m256 va = _mm256_set1_ps(a);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(_mm256_loadu_ps(y + i), va));
  }
  for (; i < n; ++i) y[i] *= a;
}

void relu(int64_t n, float* y) {
  const __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_max_ps(_mm256_loadu_ps(y + i), zero));
  }
  for (; i < n; ++i) y[i] = std::max(y[i], 0.0F);
}

void affine(int64_t n, float mu, float inv_std, float eff, float beta,
            const float* x, float* y) {
  const __m256 vmu = _mm256_set1_ps(mu);
  const __m256 vs = _mm256_set1_ps(inv_std);
  const __m256 ve = _mm256_set1_ps(eff);
  const __m256 vb = _mm256_set1_ps(beta);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v =
        _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(x + i), vmu), vs);
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_mul_ps(ve, v), vb));
  }
  for (; i < n; ++i) {
    const float v = (x[i] - mu) * inv_std;
    y[i] = eff * v + beta;
  }
}

namespace {

/// u = tau * u_post + in; s = u >= v_th. Shared by the two LIF variants.
inline __m256 lif_membrane(__m256 vtau, __m256 vupost, __m256 vin) {
  return _mm256_add_ps(_mm256_mul_ps(vtau, vupost), vin);
}

}  // namespace

namespace {

/// Scalar tail twin of the vector surrogate lanes below; expression-identical
/// to simd.cpp's scalar reference.
inline float surrogate_tail(int kind, float alpha, float v_th, float u) {
  const float x = u - v_th;
  switch (kind) {
    case 0:  // rectangle
      return std::fabs(x) < 0.5F * alpha ? 1.0F / alpha : 0.0F;
    case 1: {  // triangle
      const float v = 1.0F - std::fabs(x) / alpha;
      return v > 0.0F ? v / alpha : 0.0F;
    }
    default: {  // atan
      const float z = 0.5F * 3.14159265358979323846F * alpha * x;
      return alpha / (2.0F * (1.0F + z * z));
    }
  }
}

}  // namespace

void lif_backward_step(int64_t m, int kind, float alpha, float tau, float v_th,
                       bool zero_reset, bool detach_reset, const float* gst,
                       const float* ut, const float* st, float* gu_post,
                       float* git) {
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  const __m256 one = _mm256_set1_ps(1.0F);
  const __m256 vth = _mm256_set1_ps(v_th);
  const __m256 vtau = _mm256_set1_ps(tau);
  const __m256 valpha = _mm256_set1_ps(alpha);
  const __m256 half_alpha = _mm256_set1_ps(0.5F * alpha);
  const __m256 inv_alpha = _mm256_set1_ps(1.0F / alpha);
  const __m256 two = _mm256_set1_ps(2.0F);
  const __m256 atan_c =
      _mm256_set1_ps(0.5F * 3.14159265358979323846F * alpha);
  int64_t i = 0;
  for (; i + 8 <= m; i += 8) {
    const __m256 u = _mm256_loadu_ps(ut + i);
    const __m256 x = _mm256_sub_ps(u, vth);
    __m256 surr;
    if (kind == 0) {  // rectangle: |x| < 0.5a ? 1/a : 0
      const __m256 lt = _mm256_cmp_ps(_mm256_and_ps(x, abs_mask), half_alpha,
                                      _CMP_LT_OQ);
      surr = _mm256_and_ps(lt, inv_alpha);
    } else if (kind == 1) {  // triangle: max(1 - |x|/a, 0) / a
      const __m256 v = _mm256_sub_ps(
          one, _mm256_div_ps(_mm256_and_ps(x, abs_mask), valpha));
      const __m256 gt = _mm256_cmp_ps(v, _mm256_setzero_ps(), _CMP_GT_OQ);
      surr = _mm256_and_ps(gt, _mm256_div_ps(v, valpha));
    } else {  // atan: a / (2 * (1 + (c*x)^2))
      const __m256 z = _mm256_mul_ps(atan_c, x);
      surr = _mm256_div_ps(
          valpha, _mm256_mul_ps(two, _mm256_add_ps(one, _mm256_mul_ps(z, z))));
    }
    const __m256 gup = _mm256_loadu_ps(gu_post + i);
    const __m256 carry =
        zero_reset
            ? _mm256_mul_ps(gup, _mm256_sub_ps(one, _mm256_loadu_ps(st + i)))
            : gup;
    __m256 gu = _mm256_add_ps(_mm256_mul_ps(_mm256_loadu_ps(gst + i), surr),
                              carry);
    if (!detach_reset) {
      const __m256 reset_term = zero_reset ? u : vth;
      gu = _mm256_sub_ps(
          gu, _mm256_mul_ps(_mm256_mul_ps(gup, reset_term), surr));
    }
    _mm256_storeu_ps(git + i, gu);
    _mm256_storeu_ps(gu_post + i, _mm256_mul_ps(vtau, gu));
  }
  for (; i < m; ++i) {
    const float surr = surrogate_tail(kind, alpha, v_th, ut[i]);
    const float carry =
        zero_reset ? gu_post[i] * (1.0F - st[i]) : gu_post[i];
    float gu = gst[i] * surr + carry;
    if (!detach_reset) {
      const float reset_term = zero_reset ? ut[i] : v_th;
      gu -= gu_post[i] * reset_term * surr;
    }
    git[i] = gu;
    gu_post[i] = tau * gu;
  }
}

void lif_step_eval(int64_t m, float tau, float v_th, bool zero_reset,
                   const float* in, float* u_post, float* s_out) {
  const __m256 vtau = _mm256_set1_ps(tau);
  const __m256 vth = _mm256_set1_ps(v_th);
  const __m256 one = _mm256_set1_ps(1.0F);
  int64_t i = 0;
  for (; i + 8 <= m; i += 8) {
    const __m256 u = lif_membrane(vtau, _mm256_loadu_ps(u_post + i),
                                  _mm256_loadu_ps(in + i));
    const __m256 mask = _mm256_cmp_ps(u, vth, _CMP_GE_OQ);
    const __m256 s = _mm256_and_ps(mask, one);
    _mm256_storeu_ps(s_out + i, s);
    const __m256 reset =
        zero_reset ? _mm256_mul_ps(u, _mm256_sub_ps(one, s))
                   : _mm256_sub_ps(u, _mm256_mul_ps(vth, s));
    _mm256_storeu_ps(u_post + i, reset);
  }
  for (; i < m; ++i) {
    const float u = tau * u_post[i] + in[i];
    const float s = u >= v_th ? 1.0F : 0.0F;
    s_out[i] = s;
    u_post[i] = zero_reset ? u * (1.0F - s) : u - v_th * s;
  }
}

void lif_step_train(int64_t m, float tau, float v_th, bool zero_reset,
                    const float* in, float* u_post, float* u_out,
                    float* s_out) {
  const __m256 vtau = _mm256_set1_ps(tau);
  const __m256 vth = _mm256_set1_ps(v_th);
  const __m256 one = _mm256_set1_ps(1.0F);
  int64_t i = 0;
  for (; i + 8 <= m; i += 8) {
    const __m256 u = lif_membrane(vtau, _mm256_loadu_ps(u_post + i),
                                  _mm256_loadu_ps(in + i));
    const __m256 mask = _mm256_cmp_ps(u, vth, _CMP_GE_OQ);
    const __m256 s = _mm256_and_ps(mask, one);
    _mm256_storeu_ps(u_out + i, u);
    _mm256_storeu_ps(s_out + i, s);
    const __m256 reset =
        zero_reset ? _mm256_mul_ps(u, _mm256_sub_ps(one, s))
                   : _mm256_sub_ps(u, _mm256_mul_ps(vth, s));
    _mm256_storeu_ps(u_post + i, reset);
  }
  for (; i < m; ++i) {
    const float u = tau * u_post[i] + in[i];
    const float s = u >= v_th ? 1.0F : 0.0F;
    u_out[i] = u;
    s_out[i] = s;
    u_post[i] = zero_reset ? u * (1.0F - s) : u - v_th * s;
  }
}

namespace {

/// Spike + reset tail of every LIF-family kernel: s = (u >= v_th), then the
/// reset update — the exact vector sequence of lif_step_eval.
inline void lif_fire(__m256 u, __m256 vth, __m256 one, bool zero_reset,
                     float* u_post, float* s_out) {
  const __m256 mask = _mm256_cmp_ps(u, vth, _CMP_GE_OQ);
  const __m256 s = _mm256_and_ps(mask, one);
  _mm256_storeu_ps(s_out, s);
  const __m256 reset = zero_reset
                           ? _mm256_mul_ps(u, _mm256_sub_ps(one, s))
                           : _mm256_sub_ps(u, _mm256_mul_ps(vth, s));
  _mm256_storeu_ps(u_post, reset);
}

}  // namespace

void lif_step_eval_bias(int64_t m, float tau, float v_th, bool zero_reset,
                        float bias, const float* in, float* u_post,
                        float* s_out) {
  const __m256 vtau = _mm256_set1_ps(tau);
  const __m256 vth = _mm256_set1_ps(v_th);
  const __m256 one = _mm256_set1_ps(1.0F);
  const __m256 vbias = _mm256_set1_ps(bias);
  int64_t i = 0;
  for (; i + 8 <= m; i += 8) {
    const __m256 v = _mm256_add_ps(_mm256_loadu_ps(in + i), vbias);
    const __m256 u = lif_membrane(vtau, _mm256_loadu_ps(u_post + i), v);
    lif_fire(u, vth, one, zero_reset, u_post + i, s_out + i);
  }
  for (; i < m; ++i) {
    const float v = in[i] + bias;
    const float u = tau * u_post[i] + v;
    const float s = u >= v_th ? 1.0F : 0.0F;
    s_out[i] = s;
    u_post[i] = zero_reset ? u * (1.0F - s) : u - v_th * s;
  }
}

void affine_lif_step(int64_t n, float mu, float inv_std, float eff, float beta,
                     float tau, float v_th, bool zero_reset, const float* x,
                     float* u_post, float* s_out) {
  const __m256 vmu = _mm256_set1_ps(mu);
  const __m256 vs = _mm256_set1_ps(inv_std);
  const __m256 ve = _mm256_set1_ps(eff);
  const __m256 vb = _mm256_set1_ps(beta);
  const __m256 vtau = _mm256_set1_ps(tau);
  const __m256 vth = _mm256_set1_ps(v_th);
  const __m256 one = _mm256_set1_ps(1.0F);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v =
        _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(x + i), vmu), vs);
    const __m256 a = _mm256_add_ps(_mm256_mul_ps(ve, v), vb);
    const __m256 u = lif_membrane(vtau, _mm256_loadu_ps(u_post + i), a);
    lif_fire(u, vth, one, zero_reset, u_post + i, s_out + i);
  }
  for (; i < n; ++i) {
    const float v = (x[i] - mu) * inv_std;
    const float a = eff * v + beta;
    const float u = tau * u_post[i] + a;
    const float s = u >= v_th ? 1.0F : 0.0F;
    s_out[i] = s;
    u_post[i] = zero_reset ? u * (1.0F - s) : u - v_th * s;
  }
}

void add_lif_step(int64_t m, float tau, float v_th, bool zero_reset,
                  const float* a, const float* b, float* u_post, float* s_out) {
  const __m256 vtau = _mm256_set1_ps(tau);
  const __m256 vth = _mm256_set1_ps(v_th);
  const __m256 one = _mm256_set1_ps(1.0F);
  int64_t i = 0;
  for (; i + 8 <= m; i += 8) {
    const __m256 v = _mm256_add_ps(_mm256_loadu_ps(a + i),
                                   _mm256_mul_ps(one, _mm256_loadu_ps(b + i)));
    const __m256 u = lif_membrane(vtau, _mm256_loadu_ps(u_post + i), v);
    lif_fire(u, vth, one, zero_reset, u_post + i, s_out + i);
  }
  for (; i < m; ++i) {
    const float v = a[i] + 1.0F * b[i];
    const float u = tau * u_post[i] + v;
    const float s = u >= v_th ? 1.0F : 0.0F;
    s_out[i] = s;
    u_post[i] = zero_reset ? u * (1.0F - s) : u - v_th * s;
  }
}

void affine_add(int64_t n, float mu, float inv_std, float eff, float beta,
                bool swap, const float* x, const float* other, float* y) {
  const __m256 vmu = _mm256_set1_ps(mu);
  const __m256 vs = _mm256_set1_ps(inv_std);
  const __m256 ve = _mm256_set1_ps(eff);
  const __m256 vb = _mm256_set1_ps(beta);
  const __m256 one = _mm256_set1_ps(1.0F);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v =
        _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(x + i), vmu), vs);
    const __m256 a = _mm256_add_ps(_mm256_mul_ps(ve, v), vb);
    const __m256 o = _mm256_loadu_ps(other + i);
    const __m256 r = swap ? _mm256_add_ps(o, _mm256_mul_ps(one, a))
                          : _mm256_add_ps(a, _mm256_mul_ps(one, o));
    _mm256_storeu_ps(y + i, r);
  }
  for (; i < n; ++i) {
    const float v = (x[i] - mu) * inv_std;
    const float a = eff * v + beta;
    y[i] = swap ? other[i] + 1.0F * a : a + 1.0F * other[i];
  }
}

void adam_step(int64_t n, float lr, float beta1, float beta2, float bc1,
               float bc2, float eps, float decay, const float* g, float* m,
               float* v, float* w) {
  const __m256 vb1 = _mm256_set1_ps(beta1);
  const __m256 vb1c = _mm256_set1_ps(1.0F - beta1);
  const __m256 vb2 = _mm256_set1_ps(beta2);
  const __m256 vb2c = _mm256_set1_ps(1.0F - beta2);
  const __m256 vbc1 = _mm256_set1_ps(bc1);
  const __m256 vbc2 = _mm256_set1_ps(bc2);
  const __m256 veps = _mm256_set1_ps(eps);
  const __m256 vlr = _mm256_set1_ps(lr);
  const __m256 vdecay = _mm256_set1_ps(decay);
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 vg = _mm256_loadu_ps(g + j);
    __m256 vm = _mm256_loadu_ps(m + j);
    __m256 vv = _mm256_loadu_ps(v + j);
    __m256 vw = _mm256_loadu_ps(w + j);
    vm = _mm256_add_ps(_mm256_mul_ps(vb1, vm), _mm256_mul_ps(vb1c, vg));
    // ((1-b2) * g) * g — the scalar expression is left-associative, and the
    // other grouping differs by an ulp.
    vv = _mm256_add_ps(_mm256_mul_ps(vb2, vv),
                       _mm256_mul_ps(_mm256_mul_ps(vb2c, vg), vg));
    _mm256_storeu_ps(m + j, vm);
    _mm256_storeu_ps(v + j, vv);
    const __m256 m_hat = _mm256_div_ps(vm, vbc1);
    const __m256 v_hat = _mm256_div_ps(vv, vbc2);
    const __m256 denom = _mm256_add_ps(_mm256_sqrt_ps(v_hat), veps);
    const __m256 update = _mm256_add_ps(_mm256_div_ps(m_hat, denom),
                                        _mm256_mul_ps(vdecay, vw));
    _mm256_storeu_ps(w + j, _mm256_sub_ps(vw, _mm256_mul_ps(vlr, update)));
  }
  for (; j < n; ++j) {
    m[j] = beta1 * m[j] + (1.0F - beta1) * g[j];
    v[j] = beta2 * v[j] + (1.0F - beta2) * g[j] * g[j];
    const float m_hat = m[j] / bc1;
    const float v_hat = v[j] / bc2;
    w[j] -= lr * (m_hat / (std::sqrt(v_hat) + eps) + decay * w[j]);
  }
}

void sgd_step(int64_t n, float lr, float momentum, float decay, const float* g,
              float* v, float* w) {
  const __m256 vmom = _mm256_set1_ps(momentum);
  const __m256 vlr = _mm256_set1_ps(lr);
  const __m256 vdecay = _mm256_set1_ps(decay);
  int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256 vg = _mm256_loadu_ps(g + j);
    __m256 vv = _mm256_loadu_ps(v + j);
    __m256 vw = _mm256_loadu_ps(w + j);
    vv = _mm256_add_ps(_mm256_add_ps(_mm256_mul_ps(vmom, vv), vg),
                       _mm256_mul_ps(vdecay, vw));
    _mm256_storeu_ps(v + j, vv);
    _mm256_storeu_ps(w + j, _mm256_sub_ps(vw, _mm256_mul_ps(vlr, vv)));
  }
  for (; j < n; ++j) {
    v[j] = momentum * v[j] + g[j] + decay * w[j];
    w[j] -= lr * v[j];
  }
}

namespace {

/// crow[j] += av * brow[j] over [j0, j1) — one vectorized axpy strip.
inline void axpy_strip(float av, const float* brow, int64_t j0, int64_t j1,
                       float* crow) {
  const __m256 va = _mm256_set1_ps(av);
  int64_t j = j0;
  for (; j + 8 <= j1; j += 8) {
    const __m256 bv = _mm256_loadu_ps(brow + j);
    const __m256 cv = _mm256_loadu_ps(crow + j);
    _mm256_storeu_ps(crow + j, _mm256_add_ps(cv, _mm256_mul_ps(va, bv)));
  }
  for (; j < j1; ++j) crow[j] += av * brow[j];
}

/// Four C rows updated from one streamed B row; mirrors update4() in gemm.cpp
/// including its all-zero early-out and per-row zero skip, so the result is
/// bit-identical to the scalar blocked kernel.
inline void update4(float av0, float av1, float av2, float av3,
                    const float* brow, int64_t j0, int64_t j1, float* cr0,
                    float* cr1, float* cr2, float* cr3) {
  const bool z0 = av0 == 0.0F, z1 = av1 == 0.0F, z2 = av2 == 0.0F,
             z3 = av3 == 0.0F;
  if (z0 && z1 && z2 && z3) return;
  if (!z0 && !z1 && !z2 && !z3) {
    const __m256 va0 = _mm256_set1_ps(av0);
    const __m256 va1 = _mm256_set1_ps(av1);
    const __m256 va2 = _mm256_set1_ps(av2);
    const __m256 va3 = _mm256_set1_ps(av3);
    int64_t j = j0;
    for (; j + 8 <= j1; j += 8) {
      const __m256 bv = _mm256_loadu_ps(brow + j);
      _mm256_storeu_ps(cr0 + j, _mm256_add_ps(_mm256_loadu_ps(cr0 + j),
                                              _mm256_mul_ps(va0, bv)));
      _mm256_storeu_ps(cr1 + j, _mm256_add_ps(_mm256_loadu_ps(cr1 + j),
                                              _mm256_mul_ps(va1, bv)));
      _mm256_storeu_ps(cr2 + j, _mm256_add_ps(_mm256_loadu_ps(cr2 + j),
                                              _mm256_mul_ps(va2, bv)));
      _mm256_storeu_ps(cr3 + j, _mm256_add_ps(_mm256_loadu_ps(cr3 + j),
                                              _mm256_mul_ps(va3, bv)));
    }
    for (; j < j1; ++j) {
      const float bv = brow[j];
      cr0[j] += av0 * bv;
      cr1[j] += av1 * bv;
      cr2[j] += av2 * bv;
      cr3[j] += av3 * bv;
    }
    return;
  }
  if (!z0) axpy_strip(av0, brow, j0, j1, cr0);
  if (!z1) axpy_strip(av1, brow, j0, j1, cr1);
  if (!z2) axpy_strip(av2, brow, j0, j1, cr2);
  if (!z3) axpy_strip(av3, brow, j0, j1, cr3);
}

}  // namespace

void gemm_nn_rows(int64_t m0, int64_t m1, int64_t n, int64_t k, int64_t panel,
                  float alpha, const float* a, const float* b, float* c) {
  for (int64_t j0 = 0; j0 < n; j0 += panel) {
    const int64_t j1 = std::min(n, j0 + panel);
    int64_t i = m0;
    for (; i + 4 <= m1; i += 4) {
      const float* ar0 = a + i * k;
      const float* ar1 = ar0 + k;
      const float* ar2 = ar1 + k;
      const float* ar3 = ar2 + k;
      float* cr0 = c + i * n;
      float* cr1 = cr0 + n;
      float* cr2 = cr1 + n;
      float* cr3 = cr2 + n;
      for (int64_t p = 0; p < k; ++p) {
        update4(alpha * ar0[p], alpha * ar1[p], alpha * ar2[p],
                alpha * ar3[p], b + p * n, j0, j1, cr0, cr1, cr2, cr3);
      }
    }
    for (; i < m1; ++i) {  // remainder rows
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (int64_t p = 0; p < k; ++p) {
        const float av = alpha * arow[p];
        if (av == 0.0F) continue;  // spike sparsity: skip zero rows of B
        axpy_strip(av, b + p * n, j0, j1, crow);
      }
    }
  }
}

void gemm_nt_rows(int64_t m0, int64_t m1, int64_t n, int64_t k, float alpha,
                  const float* a, const float* b, float* c) {
  for (int64_t i = m0; i < m1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + j * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      // Four independent dot products in four double lanes. Lane s_j sees
      // exactly the scalar kernel's sequence of (double)a*b products in
      // ascending p, so the bits match; only the columns run in parallel.
      __m256d acc = _mm256_setzero_pd();
      for (int64_t p = 0; p < k; ++p) {
        const __m256d av = _mm256_set1_pd(static_cast<double>(arow[p]));
        const __m256d bv =
            _mm256_set_pd(static_cast<double>(b3[p]), static_cast<double>(b2[p]),
                          static_cast<double>(b1[p]), static_cast<double>(b0[p]));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(av, bv));
      }
      alignas(32) double s[4];
      _mm256_store_pd(s, acc);
      crow[j] += alpha * static_cast<float>(s[0]);
      crow[j + 1] += alpha * static_cast<float>(s[1]);
      crow[j + 2] += alpha * static_cast<float>(s[2]);
      crow[j + 3] += alpha * static_cast<float>(s[3]);
    }
    for (; j < n; ++j) {  // remainder columns, scalar
      const float* brow = b + j * k;
      double s = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        s += static_cast<double>(arow[p]) * brow[p];
      }
      crow[j] += alpha * static_cast<float>(s);
    }
  }
}

void gemm_tn_rows(int64_t m0, int64_t m1, int64_t n, int64_t k, int64_t lda,
                  int64_t panel, float alpha, const float* a, const float* b,
                  float* c) {
  for (int64_t j0 = 0; j0 < n; j0 += panel) {
    const int64_t j1 = std::min(n, j0 + panel);
    int64_t i = m0;
    for (; i + 4 <= m1; i += 4) {
      float* cr0 = c + i * n;
      float* cr1 = cr0 + n;
      float* cr2 = cr1 + n;
      float* cr3 = cr2 + n;
      for (int64_t p = 0; p < k; ++p) {
        const float* arow = a + p * lda + i;
        update4(alpha * arow[0], alpha * arow[1], alpha * arow[2],
                alpha * arow[3], b + p * n, j0, j1, cr0, cr1, cr2, cr3);
      }
    }
    for (; i < m1; ++i) {  // remainder rows
      float* crow = c + i * n;
      for (int64_t p = 0; p < k; ++p) {
        const float av = alpha * a[p * lda + i];
        if (av == 0.0F) continue;
        axpy_strip(av, b + p * n, j0, j1, crow);
      }
    }
  }
}

// ---- typed weight-plane kernels --------------------------------------------

void dequant_bf16(int64_t n, const uint16_t* src, float* dst) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i half =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m256i wide = _mm256_slli_epi32(_mm256_cvtepu16_epi32(half), 16);
    _mm256_storeu_ps(dst + i, _mm256_castsi256_ps(wide));
  }
  for (; i < n; ++i) {  // tail: same bit expansion, one lane at a time
    const uint32_t wide = static_cast<uint32_t>(src[i]) << 16U;
    std::memcpy(&dst[i], &wide, sizeof(float));
  }
}

namespace {

/// Exact int32 dot of an s8 row against a u8 spike row, 32 bytes per step.
/// maddubs pairs u8*s8 into s16 sums: spikes are {0,1}, so each pair sum is
/// in [-254, 254] — far from s16 saturation — and madd widens to exact s32.
/// Integer addition is associative, so this matches the scalar loop bitwise.
inline int32_t dot_s8u8(int64_t k, const int8_t* w, const uint8_t* s) {
  __m256i acc = _mm256_setzero_si256();
  const __m256i ones = _mm256_set1_epi16(1);
  int64_t p = 0;
  for (; p + 32 <= k; p += 32) {
    const __m256i sv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + p));
    const __m256i wv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + p));
    const __m256i pairs = _mm256_maddubs_epi16(sv, wv);
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(pairs, ones));
  }
  __m128i lanes = _mm_add_epi32(_mm256_castsi256_si128(acc),
                                _mm256_extracti128_si256(acc, 1));
  lanes = _mm_add_epi32(lanes, _mm_shuffle_epi32(lanes, _MM_SHUFFLE(1, 0, 3, 2)));
  lanes = _mm_add_epi32(lanes, _mm_shuffle_epi32(lanes, _MM_SHUFFLE(2, 3, 0, 1)));
  int32_t sum = _mm_cvtsi128_si32(lanes);
  for (; p < k; ++p) {  // tail lanes, scalar
    sum += static_cast<int32_t>(w[p]) * static_cast<int32_t>(s[p]);
  }
  return sum;
}

}  // namespace

void gemm_s8_wxs(int64_t m, int64_t n, int64_t k, const int8_t* w,
                 const uint8_t* s, const float* scale, float* c) {
  for (int64_t o = 0; o < m; ++o) {
    const int8_t* wo = w + o * k;
    const float sc = scale[o];
    for (int64_t j = 0; j < n; ++j) {
      c[o * n + j] = sc * static_cast<float>(dot_s8u8(k, wo, s + j * k));
    }
  }
}

void gemm_s8_sxw(int64_t m, int64_t n, int64_t k, const uint8_t* s,
                 const int8_t* w, const float* scale, float* c) {
  for (int64_t i = 0; i < m; ++i) {
    const uint8_t* si = s + i * k;
    for (int64_t j = 0; j < n; ++j) {
      c[i * n + j] =
          scale[j] * static_cast<float>(dot_s8u8(k, w + j * k, si));
    }
  }
}

}  // namespace ttsnn::simd::avx2

#else  // !defined(__AVX2__): non-x86 toolchain — stubs that are never called.

namespace ttsnn::simd::avx2 {

bool compiled_in() { return false; }

void axpy(int64_t, float, const float*, float*) {}
void mul(int64_t, const float*, float*) {}
void scale(int64_t, float, float*) {}
void relu(int64_t, float*) {}
void affine(int64_t, float, float, float, float, const float*, float*) {}
void lif_backward_step(int64_t, int, float, float, float, bool, bool,
                       const float*, const float*, const float*, float*,
                       float*) {}
void lif_step_eval(int64_t, float, float, bool, const float*, float*, float*) {}
void lif_step_train(int64_t, float, float, bool, const float*, float*, float*,
                    float*) {}
void lif_step_eval_bias(int64_t, float, float, bool, float, const float*,
                        float*, float*) {}
void affine_lif_step(int64_t, float, float, float, float, float, float, bool,
                     const float*, float*, float*) {}
void add_lif_step(int64_t, float, float, bool, const float*, const float*,
                  float*, float*) {}
void affine_add(int64_t, float, float, float, float, bool, const float*,
                const float*, float*) {}
void adam_step(int64_t, float, float, float, float, float, float, float,
               const float*, float*, float*, float*) {}
void sgd_step(int64_t, float, float, float, const float*, float*, float*) {}
void gemm_nn_rows(int64_t, int64_t, int64_t, int64_t, int64_t, float,
                  const float*, const float*, float*) {}
void gemm_tn_rows(int64_t, int64_t, int64_t, int64_t, int64_t, int64_t, float,
                  const float*, const float*, float*) {}
void gemm_nt_rows(int64_t, int64_t, int64_t, int64_t, float, const float*,
                  const float*, float*) {}
void dequant_bf16(int64_t, const uint16_t*, float*) {}
void gemm_s8_wxs(int64_t, int64_t, int64_t, const int8_t*, const uint8_t*,
                 const float*, float*) {}
void gemm_s8_sxw(int64_t, int64_t, int64_t, const uint8_t*, const int8_t*,
                 const float*, float*) {}

}  // namespace ttsnn::simd::avx2

#endif
