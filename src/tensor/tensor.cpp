#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <utility>

#include "tensor/arena.h"
#include "tensor/simd.h"

namespace ttsnn {

Storage::Storage(int64_t n, bool zero)
    : size_(n), cap_(Arena::size_class(n)) {
  TTSNN_CHECK(n >= 0, "negative storage size " << n);
  data_ = Arena::instance().acquire(cap_);
  if (zero && n > 0) {
    std::memset(data_, 0, static_cast<size_t>(n) * sizeof(float));
  }
}

Storage::~Storage() { Arena::instance().release(data_, cap_); }

int64_t shape_numel(const Shape& s) {
  int64_t n = 1;
  for (int64_t e : s) {
    TTSNN_CHECK(e >= 0, "negative extent in shape " << shape_str(s));
    n *= e;
  }
  return n;
}

std::string shape_str(const Shape& s) {
  std::string out = "[";
  for (size_t i = 0; i < s.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(s[i]);
  }
  return out + "]";
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      storage_(std::make_shared<Storage>(shape_numel(shape_), /*zero=*/true)) {}

Tensor::Tensor(Shape shape, std::vector<float> data) {
  shape_ = std::move(shape);
  TTSNN_CHECK(static_cast<int64_t>(data.size()) == shape_numel(shape_),
              "data size " << data.size() << " does not match shape "
                           << shape_str(shape_));
  storage_ = std::make_shared<Storage>(shape_numel(shape_), /*zero=*/false);
  std::copy(data.begin(), data.end(), storage_->data());
}

Tensor Tensor::empty(Shape shape) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.storage_ = std::make_shared<Storage>(shape_numel(t.shape_), /*zero=*/false);
  return t;
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.0F); }

Tensor Tensor::full(Shape shape, float value) {
  Tensor t = empty(std::move(shape));
  t.fill_(value);
  return t;
}

Tensor Tensor::arange(int64_t n) {
  Tensor t = empty({n});
  for (int64_t i = 0; i < n; ++i) t[i] = static_cast<float>(i);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng) {
  Tensor t = empty(std::move(shape));
  float* p = t.data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) p[i] = rng.normal();
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t = empty(std::move(shape));
  float* p = t.data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) p[i] = rng.uniform(lo, hi);
  return t;
}

Tensor Tensor::bernoulli(Shape shape, Rng& rng, float p) {
  Tensor t = empty(std::move(shape));
  float* d = t.data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) d[i] = rng.bernoulli(p) ? 1.0F : 0.0F;
  return t;
}

int64_t Tensor::size(int64_t i) const {
  const int64_t d = dim();
  if (i < 0) i += d;
  TTSNN_CHECK(i >= 0 && i < d, "dim index " << i << " out of range for "
                                            << shape_str(shape_));
  return shape_[static_cast<size_t>(i)];
}

void Tensor::check_defined() const {
  TTSNN_CHECK(defined(), "operation on undefined tensor");
}

float* Tensor::data() {
  check_defined();
  return storage_->data() + offset_;
}

const float* Tensor::data() const {
  check_defined();
  return storage_->data() + offset_;
}

float& Tensor::operator[](int64_t flat_index) {
  check_defined();
  return storage_->data()[offset_ + flat_index];
}

float Tensor::operator[](int64_t flat_index) const {
  check_defined();
  return storage_->data()[offset_ + flat_index];
}

namespace {

int64_t checked_flat_index(const Shape& shape, std::initializer_list<int64_t> idx) {
  TTSNN_CHECK(idx.size() == shape.size(),
              "at() arity " << idx.size() << " vs dim " << shape.size());
  int64_t flat = 0;
  size_t d = 0;
  for (int64_t i : idx) {
    TTSNN_CHECK(i >= 0 && i < shape[d],
                "index " << i << " out of range for dim " << d << " of "
                         << shape_str(shape));
    flat = flat * shape[d] + i;
    ++d;
  }
  return flat;
}

}  // namespace

float& Tensor::at(std::initializer_list<int64_t> idx) {
  check_defined();
  return storage_->data()[offset_ + checked_flat_index(shape_, idx)];
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  check_defined();
  return storage_->data()[offset_ + checked_flat_index(shape_, idx)];
}

Tensor Tensor::clone() const {
  if (!defined()) return {};
  Tensor out = empty(shape_);
  std::copy(data(), data() + numel(), out.data());
  return out;
}

Tensor Tensor::reshape(Shape shape) const {
  check_defined();
  int64_t inferred = -1;
  int64_t known = 1;
  for (size_t i = 0; i < shape.size(); ++i) {
    if (shape[i] == -1) {
      TTSNN_CHECK(inferred < 0, "more than one -1 in reshape target");
      inferred = static_cast<int64_t>(i);
    } else {
      known *= shape[i];
    }
  }
  if (inferred >= 0) {
    TTSNN_CHECK(known > 0 && numel() % known == 0,
                "cannot infer reshape dim: numel " << numel() << " target "
                                                   << shape_str(shape));
    shape[static_cast<size_t>(inferred)] = numel() / known;
  }
  TTSNN_CHECK(shape_numel(shape) == numel(),
              "reshape " << shape_str(shape_) << " -> " << shape_str(shape)
                         << " changes numel");
  Tensor t;
  t.shape_ = std::move(shape);
  t.storage_ = storage_;
  t.offset_ = offset_;
  return t;
}

Tensor Tensor::view(int64_t offset, Shape shape) const {
  check_defined();
  const int64_t n = shape_numel(shape);
  TTSNN_CHECK(offset >= 0 && offset_ + offset + n <= storage_->size(),
              "view [" << offset << ", " << offset + n
                       << ") out of range for storage of "
                       << storage_->size() - offset_ << " floats");
  Tensor t;
  t.shape_ = std::move(shape);
  t.storage_ = storage_;
  t.offset_ = offset_ + offset;
  return t;
}

Tensor Tensor::permute(const std::vector<int64_t>& axes) const {
  check_defined();
  const int64_t d = dim();
  TTSNN_CHECK(static_cast<int64_t>(axes.size()) == d,
              "permute arity " << axes.size() << " vs dim " << d);
  std::vector<bool> seen(static_cast<size_t>(d), false);
  Shape new_shape(static_cast<size_t>(d));
  for (int64_t i = 0; i < d; ++i) {
    const int64_t a = axes[static_cast<size_t>(i)];
    TTSNN_CHECK(a >= 0 && a < d && !seen[static_cast<size_t>(a)],
                "invalid permutation axis " << a);
    seen[static_cast<size_t>(a)] = true;
    new_shape[static_cast<size_t>(i)] = shape_[static_cast<size_t>(a)];
  }
  // Strides of the source tensor (row-major).
  std::vector<int64_t> src_stride(static_cast<size_t>(d), 1);
  for (int64_t i = d - 2; i >= 0; --i) {
    src_stride[static_cast<size_t>(i)] =
        src_stride[static_cast<size_t>(i + 1)] * shape_[static_cast<size_t>(i + 1)];
  }
  Tensor out = empty(new_shape);
  const float* src = data();
  float* dst = out.data();
  const int64_t n = numel();
  std::vector<int64_t> idx(static_cast<size_t>(d), 0);
  for (int64_t flat = 0; flat < n; ++flat) {
    int64_t src_flat = 0;
    for (int64_t i = 0; i < d; ++i) {
      src_flat += idx[static_cast<size_t>(i)] *
                  src_stride[static_cast<size_t>(axes[static_cast<size_t>(i)])];
    }
    dst[flat] = src[src_flat];
    // Row-major increment of idx over new_shape.
    for (int64_t i = d - 1; i >= 0; --i) {
      if (++idx[static_cast<size_t>(i)] < new_shape[static_cast<size_t>(i)]) break;
      idx[static_cast<size_t>(i)] = 0;
    }
  }
  return out;
}

Tensor Tensor::transpose2d() const {
  TTSNN_CHECK(dim() == 2, "transpose2d on " << shape_str(shape_));
  return permute({1, 0});
}

Tensor Tensor::slice0(int64_t begin, int64_t end) const {
  check_defined();
  TTSNN_CHECK(dim() >= 1, "slice0 on scalar tensor");
  TTSNN_CHECK(begin >= 0 && begin <= end && end <= shape_[0],
              "slice0 [" << begin << ", " << end << ") out of range for "
                         << shape_str(shape_));
  Shape out_shape = shape_;
  out_shape[0] = end - begin;
  const int64_t row = numel() / std::max<int64_t>(shape_[0], 1);
  Tensor out = empty(out_shape);
  std::copy(data() + begin * row, data() + end * row, out.data());
  return out;
}

Tensor& Tensor::fill_(float value) {
  check_defined();
  std::fill(data(), data() + numel(), value);
  return *this;
}

Tensor& Tensor::add_(const Tensor& other) { return axpy_(1.0F, other); }

Tensor& Tensor::sub_(const Tensor& other) { return axpy_(-1.0F, other); }

Tensor& Tensor::mul_(const Tensor& other) {
  TTSNN_CHECK(same_shape(other), "mul_ shape mismatch " << shape_str(shape_)
                                                        << " vs "
                                                        << shape_str(other.shape_));
  simd::mul(numel(), other.data(), data());
  return *this;
}

Tensor& Tensor::add_scalar_(float value) {
  float* a = data();
  const int64_t n = numel();
  for (int64_t i = 0; i < n; ++i) a[i] += value;
  return *this;
}

Tensor& Tensor::mul_scalar_(float value) {
  simd::scale(numel(), value, data());
  return *this;
}

Tensor& Tensor::exp_() {
  float* a = data();
  const int64_t n = numel();
  for (int64_t i = 0; i < n; ++i) a[i] = std::exp(a[i]);
  return *this;
}

Tensor& Tensor::axpy_(float alpha, const Tensor& other) {
  TTSNN_CHECK(same_shape(other), "axpy_ shape mismatch " << shape_str(shape_)
                                                         << " vs "
                                                         << shape_str(other.shape_));
  simd::axpy(numel(), alpha, other.data(), data());
  return *this;
}

Tensor& Tensor::clamp_(float lo, float hi) {
  float* a = data();
  const int64_t n = numel();
  for (int64_t i = 0; i < n; ++i) a[i] = std::clamp(a[i], lo, hi);
  return *this;
}

double Tensor::sum() const {
  const float* a = data();
  const int64_t n = numel();
  double s = 0.0;
  for (int64_t i = 0; i < n; ++i) s += a[i];
  return s;
}

double Tensor::mean() const {
  TTSNN_CHECK(numel() > 0, "mean of empty tensor");
  return sum() / static_cast<double>(numel());
}

float Tensor::max_value() const {
  TTSNN_CHECK(numel() > 0, "max of empty tensor");
  return *std::max_element(data(), data() + numel());
}

float Tensor::min_value() const {
  TTSNN_CHECK(numel() > 0, "min of empty tensor");
  return *std::min_element(data(), data() + numel());
}

int64_t Tensor::argmax() const {
  TTSNN_CHECK(numel() > 0, "argmax of empty tensor");
  return std::distance(data(), std::max_element(data(), data() + numel()));
}

double Tensor::density() const {
  if (numel() == 0) return 0.0;
  const float* a = data();
  const int64_t n = numel();
  int64_t nz = 0;
  for (int64_t i = 0; i < n; ++i) nz += (a[i] != 0.0F);
  return static_cast<double>(nz) / static_cast<double>(n);
}

double Tensor::norm() const {
  const float* a = data();
  const int64_t n = numel();
  double s = 0.0;
  for (int64_t i = 0; i < n; ++i) s += static_cast<double>(a[i]) * a[i];
  return std::sqrt(s);
}

std::string Tensor::to_string(int64_t max_entries) const {
  if (!defined()) return "Tensor(undefined)";
  std::string out = "Tensor" + shape_str(shape_) + " {";
  const int64_t n = std::min(numel(), max_entries);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(data()[i]);
  }
  if (numel() > max_entries) out += ", ...";
  return out + "}";
}

}  // namespace ttsnn
