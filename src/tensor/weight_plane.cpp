#include "tensor/weight_plane.h"

#include <cmath>
#include <cstring>
#include <sstream>

#include "util/common.h"

namespace ttsnn {

const char* weight_dtype_name(WeightDtype dtype) {
  switch (dtype) {
    case WeightDtype::kF32:
      return "f32";
    case WeightDtype::kBf16:
      return "bf16";
    case WeightDtype::kInt8:
      return "int8";
  }
  return "?";
}

WeightDtype parse_weight_dtype(const std::string& name) {
  if (name == "f32") return WeightDtype::kF32;
  if (name == "bf16") return WeightDtype::kBf16;
  if (name == "int8") return WeightDtype::kInt8;
  TTSNN_CHECK(false, "unknown weight dtype '" << name
                                              << "' (expected f32, bf16 or int8)");
  return WeightDtype::kF32;  // unreachable
}

uint16_t bf16_from_f32(float x) {
  uint32_t bits = 0;
  static_assert(sizeof(bits) == sizeof(x));
  std::memcpy(&bits, &x, sizeof(bits));
  if ((bits & 0x7fffffffU) > 0x7f800000U) {
    // NaN: truncation alone could zero the payload and turn it into an
    // infinity. Keep the sign + top payload bits and force the quiet bit.
    return static_cast<uint16_t>((bits >> 16U) | 0x0040U);
  }
  // Round to nearest even: add half of the dropped ulp, plus one more when
  // the kept mantissa LSB is set so exact ties round toward the even code.
  bits += 0x7fffU + ((bits >> 16U) & 1U);
  return static_cast<uint16_t>(bits >> 16U);
}

float bf16_to_f32(uint16_t bits) {
  const uint32_t wide = static_cast<uint32_t>(bits) << 16U;
  float out = 0.0F;
  std::memcpy(&out, &wide, sizeof(out));
  return out;
}

WeightPlane WeightPlane::bf16_from(const Tensor& w) {
  TTSNN_CHECK(w.defined() && w.numel() > 0,
              "WeightPlane::bf16_from needs a non-empty tensor");
  WeightPlane p;
  p.dtype_ = WeightDtype::kBf16;
  p.shape_ = w.shape();
  p.numel_ = w.numel();
  auto payload = std::make_shared<std::vector<uint16_t>>(
      static_cast<size_t>(p.numel_));
  const float* src = w.data();
  for (int64_t i = 0; i < p.numel_; ++i) {
    (*payload)[static_cast<size_t>(i)] = bf16_from_f32(src[i]);
  }
  p.bf16_ = std::move(payload);
  return p;
}

WeightPlane WeightPlane::int8_from(const Tensor& w) {
  TTSNN_CHECK(w.defined() && w.dim() >= 1 && w.numel() > 0,
              "WeightPlane::int8_from needs a non-empty tensor with an "
              "output-channel dim");
  WeightPlane p;
  p.dtype_ = WeightDtype::kInt8;
  p.shape_ = w.shape();
  p.numel_ = w.numel();
  const int64_t rows = p.rows();
  const int64_t cols = p.cols();
  auto payload =
      std::make_shared<std::vector<int8_t>>(static_cast<size_t>(p.numel_));
  Tensor scales(Shape{rows});
  const float* src = w.data();
  float* sc = scales.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = src + r * cols;
    float amax = 0.0F;
    for (int64_t i = 0; i < cols; ++i) amax = std::max(amax, std::fabs(row[i]));
    const float scale = amax > 0.0F ? amax / 127.0F : 1.0F;
    sc[r] = scale;
    int8_t* q = payload->data() + r * cols;
    for (int64_t i = 0; i < cols; ++i) {
      long v = std::lrintf(row[i] / scale);
      if (v > 127) v = 127;
      if (v < -127) v = -127;
      q[i] = static_cast<int8_t>(v);
    }
  }
  p.int8_ = std::move(payload);
  p.scales_ = std::move(scales);
  return p;
}

int64_t WeightPlane::payload_bytes() const {
  switch (dtype_) {
    case WeightDtype::kF32:
      return 0;
    case WeightDtype::kBf16:
      return numel_ * static_cast<int64_t>(sizeof(uint16_t));
    case WeightDtype::kInt8:
      return numel_ * static_cast<int64_t>(sizeof(int8_t)) +
             rows() * static_cast<int64_t>(sizeof(float));
  }
  return 0;
}

const void* WeightPlane::storage_key() const {
  if (bf16_) return bf16_->data();
  if (int8_) return int8_->data();
  return nullptr;
}

Tensor WeightPlane::dequant() const {
  TTSNN_CHECK(quantized(), "dequant() on an f32 (empty) WeightPlane");
  Tensor out(shape_);
  float* dst = out.data();
  if (dtype_ == WeightDtype::kBf16) {
    const uint16_t* src = bf16_->data();
    for (int64_t i = 0; i < numel_; ++i) dst[i] = bf16_to_f32(src[i]);
    return out;
  }
  const int8_t* src = int8_->data();
  const float* sc = scales_.data();
  const int64_t cols_n = cols();
  for (int64_t r = 0; r < rows(); ++r) {
    const float scale = sc[r];
    for (int64_t i = 0; i < cols_n; ++i) {
      dst[r * cols_n + i] = scale * static_cast<float>(src[r * cols_n + i]);
    }
  }
  return out;
}

}  // namespace ttsnn
