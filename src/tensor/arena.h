#pragma once

/// \file arena.h
/// Recycling allocator for tensor storage — the training-side counterpart of
/// the inference engine's per-call workspace.
///
/// A BPTT training step allocates and frees the same activation, gradient,
/// and im2col shapes every batch; with plain heap allocation each of those is
/// a fresh malloc plus a page-faulted zero-fill. The Arena keeps freed blocks
/// on power-of-two size-class free lists and hands them back on the next
/// request, so a steady-state training step touches the allocator not at all.
///
/// Mechanics: Tensor storage always allocates and releases through
/// Arena::instance(). While no ArenaScope is alive the arena is pass-through
/// (plain new[]/delete[]). Inside a scope — Trainer wraps every epoch, eval
/// and timing pass in one — released blocks are cached up to byte_limit() and
/// reused. Blocks are raw capacity: zero-filling (when the caller asked for
/// zeros) happens in Storage, so recycling never changes Tensor semantics.
/// All entry points are thread-safe; blocks may be acquired and released from
/// pool workers while a scope is active on the main thread.

#include <cstdint>

namespace ttsnn {

struct ArenaStats {
  int64_t hits = 0;       ///< acquires served from the cache
  int64_t misses = 0;     ///< acquires that fell through to new[]
  int64_t recycled = 0;   ///< releases that went back to the cache
  int64_t freed = 0;      ///< releases that fell through to delete[]
  int64_t cached_blocks = 0;
  int64_t cached_bytes = 0;
};

class Arena {
 public:
  /// Process-wide arena. First use happens inside the first tensor-storage
  /// allocation, so it outlives every tensor (static destruction order).
  static Arena& instance();

  /// Size class (in floats) a request of n floats is rounded up to: the next
  /// power of two, at least kMinClass. Capacity, not numel, keys the cache.
  static int64_t size_class(int64_t n);

  /// Returns a block of exactly `cap` floats (a size_class value); contents
  /// are unspecified.
  float* acquire(int64_t cap);
  /// Returns a block to the arena. Cached while a scope is active and the
  /// cache is under byte_limit(); freed otherwise. noexcept — runs in
  /// Storage's destructor.
  void release(float* p, int64_t cap) noexcept;

  bool active() const;
  ArenaStats stats() const;
  void reset_stats();
  /// Frees every cached block (stats keep counting).
  void trim();
  /// Cache cap in bytes; releases beyond it fall through to delete[].
  void set_byte_limit(int64_t bytes);
  int64_t byte_limit() const;

  static constexpr int64_t kMinClass = 1024;  ///< floats: 4 KiB blocks

 private:
  friend class ArenaScope;
  Arena();
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void enter_scope();
  void exit_scope();

  struct Impl;
  Impl* impl_;
};

/// Enables storage recycling for the enclosing scope. Nestable and
/// refcounted; the cache is trimmed when the last scope exits, so memory
/// held between training steps never outlives the training loop.
class ArenaScope {
 public:
  ArenaScope();
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;
};

}  // namespace ttsnn
