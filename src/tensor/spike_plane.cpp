#include "tensor/spike_plane.h"

#include "util/common.h"

namespace ttsnn {

void SpikePlane::clear() {
  rows = 0;
  cols = 0;
  row_ptr.clear();
  col_idx.clear();
}

bool SpikePlane::build(const float* data, int64_t r, int64_t c,
                       double max_density) {
  clear();
  TTSNN_CHECK(r >= 0 && c >= 0, "SpikePlane: negative extents");
  TTSNN_CHECK(data != nullptr || r * c == 0, "SpikePlane: null data");
  const auto max_nnz = static_cast<int64_t>(
      max_density * static_cast<double>(r) * static_cast<double>(c));
  rows = r;
  cols = c;
  row_ptr.reserve(static_cast<size_t>(r) + 1);
  row_ptr.push_back(0);
  for (int64_t i = 0; i < r; ++i) {
    const float* row = data + i * c;
    for (int64_t j = 0; j < c; ++j) {
      const float v = row[j];
      if (v == 0.0F) continue;
      if (v != 1.0F) {  // not a spike matrix — dense kernels handle it
        clear();
        return false;
      }
      col_idx.push_back(static_cast<int32_t>(j));
    }
    row_ptr.push_back(nnz());
    if (nnz() > max_nnz) {  // too dense to beat the vectorized dense path
      clear();
      return false;
    }
  }
  return true;
}

void spmm_nn_rows(int64_t m0, int64_t m1, int64_t n, int64_t k, float alpha,
                  const float* a, const SpikePlane& plane, float* c) {
  TTSNN_CHECK(plane.rows == k && plane.cols == n,
              "spmm_nn_rows: plane is " << plane.rows << "x" << plane.cols
                                        << ", expected " << k << "x" << n);
  const int64_t* rp = plane.row_ptr.data();
  const int32_t* ci = plane.col_idx.data();
  for (int64_t i = m0; i < m1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = alpha * arow[p];
      if (av == 0.0F) continue;  // same zero-skip as the dense kernels
      const int64_t e = rp[p + 1];
      for (int64_t idx = rp[p]; idx < e; ++idx) {
        crow[ci[idx]] += av;  // b value is exactly 1: accumulate, no multiply
      }
    }
  }
}

void spmm_nt_rows(int64_t m0, int64_t m1, int64_t n, int64_t k, float alpha,
                  const float* a, const SpikePlane& plane, float* c) {
  TTSNN_CHECK(plane.rows == n && plane.cols == k,
              "spmm_nt_rows: plane is " << plane.rows << "x" << plane.cols
                                        << ", expected " << n << "x" << k);
  const int64_t* rp = plane.row_ptr.data();
  const int32_t* ci = plane.col_idx.data();
  for (int64_t i = m0; i < m1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const int64_t e = rp[j + 1];
      double s = 0.0;
      for (int64_t idx = rp[j]; idx < e; ++idx) {
        s += static_cast<double>(arow[ci[idx]]);  // b value is exactly 1
      }
      crow[j] += alpha * static_cast<float>(s);
    }
  }
}

}  // namespace ttsnn
