#pragma once

/// \file ops.h
/// Free-function tensor operations: elementwise arithmetic, activations,
/// matrix multiplication, softmax, and small utilities used across the
/// library. All functions allocate and return fresh tensors unless the name
/// ends in '_' (none here — in-place ops live on Tensor itself).

#include "tensor/tensor.h"

namespace ttsnn {

// ---- allocation helpers ----------------------------------------------------
/// Zero tensor with the same shape as t (PyTorch's zeros_like).
Tensor zeros_like(const Tensor& t);
/// Uninitialized tensor with the same shape as t — for buffers every element
/// of which is about to be written.
Tensor empty_like(const Tensor& t);

// ---- elementwise -----------------------------------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float s);
Tensor relu(const Tensor& a);
/// Derivative mask of relu evaluated at pre-activation a: 1 where a > 0.
Tensor relu_mask(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor sqrt(const Tensor& a);

// ---- linear algebra --------------------------------------------------------
/// Row-major matrix product of a [m, k] by b [k, n] -> [m, n].
Tensor matmul(const Tensor& a, const Tensor& b);
/// a^T * b where a is [k, m], b is [k, n] -> [m, n].
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// a * b^T where a is [m, k], b is [n, k] -> [m, n].
Tensor matmul_nt(const Tensor& a, const Tensor& b);

// ---- softmax / classification ----------------------------------------------
/// Row-wise log-softmax of logits [n, c].
Tensor log_softmax(const Tensor& logits);
/// Raw-buffer variant: log-softmax of `src` [n, c] into `dst` (may alias
/// src). Lets the loss kernels reuse one scratch buffer per timestep instead
/// of allocating tensors in the BPTT hot loop.
void log_softmax_rows(const float* src, int64_t n, int64_t c, float* dst);
/// Row-wise softmax of logits [n, c].
Tensor softmax(const Tensor& logits);
/// Per-row argmax of a [n, c] matrix -> length-n vector of class indices.
std::vector<int64_t> argmax_rows(const Tensor& logits);

// ---- NCHW helpers ----------------------------------------------------------
/// Adds a per-channel bias [c] to an NCHW tensor.
Tensor add_channel_bias(const Tensor& x, const Tensor& bias);
/// Sums an NCHW tensor over (n, h, w) -> per-channel vector [c].
Tensor sum_nhw(const Tensor& x);
/// Global average pool: NCHW -> [n, c].
Tensor global_avg_pool(const Tensor& x);
/// Backward of global_avg_pool: grad [n, c] -> NCHW with h*w spread.
Tensor global_avg_pool_backward(const Tensor& grad, int64_t h, int64_t w);

/// Concatenate along dim 0 (all tensors must agree on trailing dims).
Tensor cat0(const std::vector<Tensor>& parts);

// ---- timestep gather/scatter (the HTT schedule split) ----------------------
/// Gathers dim-0 rows listed in idx into a new tensor; empty idx returns an
/// undefined tensor.
Tensor gather_steps(const Tensor& x, const std::vector<int64_t>& idx);
/// Gathers dim-0 rows of x listed in idx into `out`, which must already have
/// shape [idx.size(), x dims 1..]. Allocation-free variant for callers that
/// place the result in planned scratch (infer::Engine's HTT split).
void gather_steps_into(const Tensor& x, const std::vector<int64_t>& idx,
                       Tensor& out);
/// Writes dim-0 rows of src into dst at the positions listed in idx.
void scatter_steps(Tensor& dst, const Tensor& src,
                   const std::vector<int64_t>& idx);

/// Max absolute elementwise difference — test helper.
double max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace ttsnn
