#include "tensor/arena.h"

#include <atomic>
#include <bit>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/common.h"

namespace ttsnn {

struct Arena::Impl {
  mutable std::mutex mu;
  std::unordered_map<int64_t, std::vector<float*>> buckets;  // keyed by cap
  int64_t cached_bytes = 0;
  int64_t cached_blocks = 0;
  int64_t byte_limit = 256LL << 20;  // 256 MiB
  /// Read lock-free on the allocation fast path: while no scope is active,
  /// acquire/release must not serialize concurrent Engine::run threads on
  /// the mutex just to reach new[]/delete[].
  std::atomic<int> scope_depth{0};
  // Counters are atomics so the pass-through path can count without locking.
  std::atomic<int64_t> hits{0}, misses{0}, recycled{0}, freed{0};
};

Arena::Arena() : impl_(new Impl) {}

Arena::~Arena() {
  trim();
  delete impl_;
}

Arena& Arena::instance() {
  static Arena arena;
  return arena;
}

int64_t Arena::size_class(int64_t n) {
  if (n <= kMinClass) return kMinClass;
  return static_cast<int64_t>(std::bit_ceil(static_cast<uint64_t>(n)));
}

float* Arena::acquire(int64_t cap) {
  TTSNN_CHECK(cap == size_class(cap), "Arena::acquire of a non-class size "
                                          << cap);
  if (impl_->scope_depth.load(std::memory_order_relaxed) > 0) {
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto it = impl_->buckets.find(cap);
    if (it != impl_->buckets.end() && !it->second.empty()) {
      float* p = it->second.back();
      it->second.pop_back();
      impl_->cached_bytes -= cap * static_cast<int64_t>(sizeof(float));
      --impl_->cached_blocks;
      impl_->hits.fetch_add(1, std::memory_order_relaxed);
      return p;
    }
  }
  impl_->misses.fetch_add(1, std::memory_order_relaxed);
  return new float[static_cast<size_t>(cap)];
}

void Arena::release(float* p, int64_t cap) noexcept {
  if (p == nullptr) return;
  // Lock-free pass-through while no scope is active. A release racing a
  // scope transition at worst caches a block that the next trim (scope exit
  // or destructor) frees — never a leak or double-free.
  if (impl_->scope_depth.load(std::memory_order_relaxed) > 0) {
    std::lock_guard<std::mutex> lock(impl_->mu);
    const int64_t bytes = cap * static_cast<int64_t>(sizeof(float));
    if (impl_->cached_bytes + bytes <= impl_->byte_limit) {
      impl_->buckets[cap].push_back(p);
      impl_->cached_bytes += bytes;
      ++impl_->cached_blocks;
      impl_->recycled.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  impl_->freed.fetch_add(1, std::memory_order_relaxed);
  delete[] p;
}

bool Arena::active() const {
  return impl_->scope_depth.load(std::memory_order_relaxed) > 0;
}

ArenaStats Arena::stats() const {
  ArenaStats out;
  out.hits = impl_->hits.load(std::memory_order_relaxed);
  out.misses = impl_->misses.load(std::memory_order_relaxed);
  out.recycled = impl_->recycled.load(std::memory_order_relaxed);
  out.freed = impl_->freed.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(impl_->mu);
  out.cached_blocks = impl_->cached_blocks;
  out.cached_bytes = impl_->cached_bytes;
  return out;
}

void Arena::reset_stats() {
  impl_->hits.store(0, std::memory_order_relaxed);
  impl_->misses.store(0, std::memory_order_relaxed);
  impl_->recycled.store(0, std::memory_order_relaxed);
  impl_->freed.store(0, std::memory_order_relaxed);
}

void Arena::trim() {
  std::unordered_map<int64_t, std::vector<float*>> buckets;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    buckets.swap(impl_->buckets);
    impl_->cached_bytes = 0;
    impl_->cached_blocks = 0;
  }
  for (auto& [cap, blocks] : buckets) {
    (void)cap;
    for (float* p : blocks) delete[] p;
  }
}

void Arena::set_byte_limit(int64_t bytes) {
  TTSNN_CHECK(bytes >= 0, "Arena byte limit must be non-negative");
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->byte_limit = bytes;
}

int64_t Arena::byte_limit() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->byte_limit;
}

void Arena::enter_scope() {
  impl_->scope_depth.fetch_add(1, std::memory_order_relaxed);
}

void Arena::exit_scope() {
  const int prev = impl_->scope_depth.fetch_sub(1, std::memory_order_relaxed);
  TTSNN_CHECK(prev > 0, "ArenaScope underflow");
  if (prev == 1) trim();  // nothing holds the cache between training loops
}

ArenaScope::ArenaScope() { Arena::instance().enter_scope(); }

ArenaScope::~ArenaScope() { Arena::instance().exit_scope(); }

}  // namespace ttsnn
