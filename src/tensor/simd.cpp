#include "tensor/simd.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "tensor/simd_kernels.h"
#include "util/common.h"

namespace ttsnn::simd {

namespace {

/// CPU support for the AVX2 tier: the instruction set must be present at
/// runtime *and* simd_avx2.cpp must have been built with AVX2 codegen.
bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  return avx2::compiled_in() && __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

Level compute_detected() {
  Level best = cpu_has_avx2() ? Level::kAvx2 : Level::kScalar;
  if (const char* env = std::getenv("TTSNN_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) return Level::kScalar;
    if (std::strcmp(env, "avx2") == 0) return best;  // cannot exceed the CPU
  }
  return best;
}

std::atomic<Level>& active_storage() {
  static std::atomic<Level> level{detected_level()};
  return level;
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
  }
  return "?";
}

Level detected_level() {
  static const Level detected = compute_detected();
  return detected;
}

Level active_level() { return active_storage().load(); }

void set_level(Level level) {
  if (level == Level::kAvx2 && detected_level() != Level::kAvx2) {
    level = Level::kScalar;  // clamp: never dispatch into unsupported code
  }
  active_storage().store(level);
}

LevelGuard::LevelGuard(Level level) : prev_(active_level()) { set_level(level); }

LevelGuard::~LevelGuard() { set_level(prev_); }

namespace {

/// True when the AVX2 implementation should run. Inlined into every kernel;
/// one relaxed atomic load per whole-buffer call.
inline bool use_avx2() { return active_level() == Level::kAvx2; }

}  // namespace

// ---- elementwise: scalar reference implementations -------------------------
// These are the semantics the AVX2 TU reproduces bit-for-bit (mul + add in the
// same per-element order; this TU is built with -ffp-contract=off so the
// compiler cannot fuse them into FMAs behind our back).

void axpy(int64_t n, float a, const float* x, float* y) {
  if (use_avx2()) return avx2::axpy(n, a, x, y);
  for (int64_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void mul(int64_t n, const float* x, float* y) {
  if (use_avx2()) return avx2::mul(n, x, y);
  for (int64_t i = 0; i < n; ++i) y[i] *= x[i];
}

void scale(int64_t n, float a, float* y) {
  if (use_avx2()) return avx2::scale(n, a, y);
  for (int64_t i = 0; i < n; ++i) y[i] *= a;
}

void relu(int64_t n, float* y) {
  if (use_avx2()) return avx2::relu(n, y);
  for (int64_t i = 0; i < n; ++i) y[i] = std::max(y[i], 0.0F);
}

void affine(int64_t n, float mu, float inv_std, float eff, float beta,
            const float* x, float* y) {
  if (use_avx2()) return avx2::affine(n, mu, inv_std, eff, beta, x, y);
  for (int64_t i = 0; i < n; ++i) {
    const float v = (x[i] - mu) * inv_std;
    y[i] = eff * v + beta;
  }
}

namespace {

/// Scalar surrogate derivative, kept expression-identical to the AVX2 lanes
/// (and to nn/lif.cpp's surrogate_grad for these families).
inline float surrogate(LifSurrogate kind, float alpha, float v_th, float u) {
  const float x = u - v_th;
  switch (kind) {
    case LifSurrogate::kRectangle:
      return std::fabs(x) < 0.5F * alpha ? 1.0F / alpha : 0.0F;
    case LifSurrogate::kTriangle: {
      const float v = 1.0F - std::fabs(x) / alpha;
      return v > 0.0F ? v / alpha : 0.0F;
    }
    case LifSurrogate::kAtan: {
      const float z = 0.5F * 3.14159265358979323846F * alpha * x;
      return alpha / (2.0F * (1.0F + z * z));
    }
  }
  return 0.0F;
}

}  // namespace

void lif_backward_step(int64_t m, LifSurrogate kind, float alpha, float tau,
                       float v_th, bool zero_reset, bool detach_reset,
                       const float* gst, const float* ut, const float* st,
                       float* gu_post, float* git) {
  if (use_avx2()) {
    return avx2::lif_backward_step(m, static_cast<int>(kind), alpha, tau, v_th,
                                   zero_reset, detach_reset, gst, ut, st,
                                   gu_post, git);
  }
  for (int64_t i = 0; i < m; ++i) {
    const float surr = surrogate(kind, alpha, v_th, ut[i]);
    const float carry =
        zero_reset ? gu_post[i] * (1.0F - st[i]) : gu_post[i];
    float gu = gst[i] * surr + carry;
    if (!detach_reset) {
      const float reset_term = zero_reset ? ut[i] : v_th;
      gu -= gu_post[i] * reset_term * surr;
    }
    git[i] = gu;
    gu_post[i] = tau * gu;
  }
}

void lif_step_eval(int64_t m, float tau, float v_th, bool zero_reset,
                   const float* in, float* u_post, float* s_out) {
  if (use_avx2()) {
    return avx2::lif_step_eval(m, tau, v_th, zero_reset, in, u_post, s_out);
  }
  for (int64_t i = 0; i < m; ++i) {
    const float u = tau * u_post[i] + in[i];
    const float s = u >= v_th ? 1.0F : 0.0F;
    s_out[i] = s;
    u_post[i] = zero_reset ? u * (1.0F - s) : u - v_th * s;
  }
}

void lif_step_train(int64_t m, float tau, float v_th, bool zero_reset,
                    const float* in, float* u_post, float* u_out,
                    float* s_out) {
  if (use_avx2()) {
    return avx2::lif_step_train(m, tau, v_th, zero_reset, in, u_post, u_out,
                                s_out);
  }
  for (int64_t i = 0; i < m; ++i) {
    const float u = tau * u_post[i] + in[i];
    const float s = u >= v_th ? 1.0F : 0.0F;
    u_out[i] = u;
    s_out[i] = s;
    u_post[i] = zero_reset ? u * (1.0F - s) : u - v_th * s;
  }
}

void lif_step_eval_bias(int64_t m, float tau, float v_th, bool zero_reset,
                        float bias, const float* in, float* u_post,
                        float* s_out) {
  if (use_avx2()) {
    return avx2::lif_step_eval_bias(m, tau, v_th, zero_reset, bias, in, u_post,
                                    s_out);
  }
  for (int64_t i = 0; i < m; ++i) {
    const float v = in[i] + bias;
    const float u = tau * u_post[i] + v;
    const float s = u >= v_th ? 1.0F : 0.0F;
    s_out[i] = s;
    u_post[i] = zero_reset ? u * (1.0F - s) : u - v_th * s;
  }
}

void affine_lif_step(int64_t n, float mu, float inv_std, float eff, float beta,
                     float tau, float v_th, bool zero_reset, const float* x,
                     float* u_post, float* s_out) {
  if (use_avx2()) {
    return avx2::affine_lif_step(n, mu, inv_std, eff, beta, tau, v_th,
                                 zero_reset, x, u_post, s_out);
  }
  for (int64_t i = 0; i < n; ++i) {
    const float v = (x[i] - mu) * inv_std;
    const float a = eff * v + beta;
    const float u = tau * u_post[i] + a;
    const float s = u >= v_th ? 1.0F : 0.0F;
    s_out[i] = s;
    u_post[i] = zero_reset ? u * (1.0F - s) : u - v_th * s;
  }
}

void add_lif_step(int64_t m, float tau, float v_th, bool zero_reset,
                  const float* a, const float* b, float* u_post, float* s_out) {
  if (use_avx2()) {
    return avx2::add_lif_step(m, tau, v_th, zero_reset, a, b, u_post, s_out);
  }
  for (int64_t i = 0; i < m; ++i) {
    const float v = a[i] + 1.0F * b[i];
    const float u = tau * u_post[i] + v;
    const float s = u >= v_th ? 1.0F : 0.0F;
    s_out[i] = s;
    u_post[i] = zero_reset ? u * (1.0F - s) : u - v_th * s;
  }
}

void affine_add(int64_t n, float mu, float inv_std, float eff, float beta,
                bool swap, const float* x, const float* other, float* y) {
  if (use_avx2()) {
    return avx2::affine_add(n, mu, inv_std, eff, beta, swap, x, other, y);
  }
  for (int64_t i = 0; i < n; ++i) {
    const float v = (x[i] - mu) * inv_std;
    const float a = eff * v + beta;
    y[i] = swap ? other[i] + 1.0F * a : a + 1.0F * other[i];
  }
}

void adam_step(int64_t n, float lr, float beta1, float beta2, float bc1,
               float bc2, float eps, float decay, const float* g, float* m,
               float* v, float* w) {
  if (use_avx2()) {
    return avx2::adam_step(n, lr, beta1, beta2, bc1, bc2, eps, decay, g, m, v,
                           w);
  }
  for (int64_t j = 0; j < n; ++j) {
    m[j] = beta1 * m[j] + (1.0F - beta1) * g[j];
    v[j] = beta2 * v[j] + (1.0F - beta2) * g[j] * g[j];
    const float m_hat = m[j] / bc1;
    const float v_hat = v[j] / bc2;
    w[j] -= lr * (m_hat / (std::sqrt(v_hat) + eps) + decay * w[j]);
  }
}

void sgd_step(int64_t n, float lr, float momentum, float decay, const float* g,
              float* v, float* w) {
  if (use_avx2()) return avx2::sgd_step(n, lr, momentum, decay, g, v, w);
  for (int64_t j = 0; j < n; ++j) {
    v[j] = momentum * v[j] + g[j] + decay * w[j];
    w[j] -= lr * v[j];
  }
}

// ---- GEMM row-strip kernels ------------------------------------------------
// gemm.cpp only calls these after checking the active level itself, so the
// public entry points just assert and forward.

void gemm_nn_rows_avx2(int64_t m0, int64_t m1, int64_t n, int64_t k,
                       int64_t panel, float alpha, const float* a,
                       const float* b, float* c) {
  TTSNN_CHECK(active_level() == Level::kAvx2,
              "gemm_nn_rows_avx2 called on the scalar tier");
  avx2::gemm_nn_rows(m0, m1, n, k, panel, alpha, a, b, c);
}

void gemm_tn_rows_avx2(int64_t m0, int64_t m1, int64_t n, int64_t k,
                       int64_t lda, int64_t panel, float alpha, const float* a,
                       const float* b, float* c) {
  TTSNN_CHECK(active_level() == Level::kAvx2,
              "gemm_tn_rows_avx2 called on the scalar tier");
  avx2::gemm_tn_rows(m0, m1, n, k, lda, panel, alpha, a, b, c);
}

void gemm_nt_rows_avx2(int64_t m0, int64_t m1, int64_t n, int64_t k,
                       float alpha, const float* a, const float* b, float* c) {
  TTSNN_CHECK(active_level() == Level::kAvx2,
              "gemm_nt_rows_avx2 called on the scalar tier");
  avx2::gemm_nt_rows(m0, m1, n, k, alpha, a, b, c);
}

// ---- typed weight-plane kernels --------------------------------------------
// Integer accumulation is exact, so unlike the float kernels above these need
// no ordering discipline: scalar and AVX2 tiers agree bitwise automatically.

void dequant_bf16(int64_t n, const uint16_t* src, float* dst) {
  if (use_avx2()) return avx2::dequant_bf16(n, src, dst);
  for (int64_t i = 0; i < n; ++i) {
    const uint32_t wide = static_cast<uint32_t>(src[i]) << 16U;
    std::memcpy(&dst[i], &wide, sizeof(float));
  }
}

void spikes_to_u8(int64_t n, const float* src, uint8_t* dst) {
  for (int64_t i = 0; i < n; ++i) dst[i] = src[i] != 0.0F ? 1 : 0;
}

void spikes_to_u8_t(int64_t k, int64_t n, const float* src, uint8_t* dst) {
  for (int64_t p = 0; p < k; ++p) {
    const float* row = src + p * n;
    for (int64_t j = 0; j < n; ++j) dst[j * k + p] = row[j] != 0.0F ? 1 : 0;
  }
}

namespace {

/// Exact int32 dot of an s8 row against a u8 spike row.
inline int32_t dot_s8u8(int64_t k, const int8_t* w, const uint8_t* s) {
  int32_t acc = 0;
  for (int64_t p = 0; p < k; ++p) {
    acc += static_cast<int32_t>(w[p]) * static_cast<int32_t>(s[p]);
  }
  return acc;
}

}  // namespace

void gemm_s8_wxs(int64_t m, int64_t n, int64_t k, const int8_t* w,
                 const uint8_t* s, const float* scale, float* c) {
  if (use_avx2()) return avx2::gemm_s8_wxs(m, n, k, w, s, scale, c);
  for (int64_t o = 0; o < m; ++o) {
    const int8_t* wo = w + o * k;
    const float sc = scale[o];
    for (int64_t j = 0; j < n; ++j) {
      c[o * n + j] = sc * static_cast<float>(dot_s8u8(k, wo, s + j * k));
    }
  }
}

void gemm_s8_sxw(int64_t m, int64_t n, int64_t k, const uint8_t* s,
                 const int8_t* w, const float* scale, float* c) {
  if (use_avx2()) return avx2::gemm_s8_sxw(m, n, k, s, w, scale, c);
  for (int64_t i = 0; i < m; ++i) {
    const uint8_t* si = s + i * k;
    for (int64_t j = 0; j < n; ++j) {
      c[i * n + j] =
          scale[j] * static_cast<float>(dot_s8u8(k, w + j * k, si));
    }
  }
}

}  // namespace ttsnn::simd
