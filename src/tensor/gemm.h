#pragma once

/// \file gemm.h
/// Small blocked single-precision GEMM for packed row-major matrices.
/// C = alpha * op(A) * op(B) + beta * C, with op controlled by trans flags.
/// Matrices are densely packed: op(A) is [m, k], op(B) is [k, n], C is [m, n].
///
/// Work is split across a small thread pool when the problem is large enough;
/// the PTT branch parallelism (DESIGN.md §4) uses threads one level up, so
/// GEMM keeps its own parallelism conservative to avoid oversubscription.

#include <cstdint>

namespace ttsnn {

void gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, const float* b, float beta, float* c);

/// Number of worker threads GEMM may use (defaults to 1; the training loop
/// raises it for the dense baseline where no branch parallelism exists).
void set_gemm_threads(int threads);
int gemm_threads();

}  // namespace ttsnn
