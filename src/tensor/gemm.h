#pragma once

/// \file gemm.h
/// Small blocked single-precision GEMM for packed row-major matrices.
/// C = alpha * op(A) * op(B) + beta * C, with op controlled by trans flags.
/// Matrices are densely packed: op(A) is [m, k], op(B) is [k, n], C is [m, n].
///
/// Large problems are row-partitioned across the shared ThreadPool; the PTT
/// branch parallelism (DESIGN.md §4) uses the same pool one level up, so GEMM
/// keeps its own fan-out conservative to avoid oversubscription. The NN and
/// TN paths additionally switch to a cache-blocked inner kernel above a size
/// threshold. Both kernels accumulate each C element in ascending-k order, so
/// results are bit-identical across kernels and thread counts.

#include <cstdint>

namespace ttsnn {

void gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, const float* b, float beta, float* c);

/// Number of row partitions GEMM may fan out across the shared pool
/// (defaults to 1; the training loop raises it for the dense baseline where
/// no branch parallelism exists).
void set_gemm_threads(int threads);
int gemm_threads();

/// Restores the previous gemm thread count on scope exit, so a benchmark or
/// test that raises it cannot leak the setting into later code.
class GemmThreadsGuard {
 public:
  explicit GemmThreadsGuard(int threads);
  ~GemmThreadsGuard();
  GemmThreadsGuard(const GemmThreadsGuard&) = delete;
  GemmThreadsGuard& operator=(const GemmThreadsGuard&) = delete;

 private:
  int prev_ = 0;
};

/// Inner-kernel selection. kAuto dispatches per call:
///   - spike-sparse binary B (NN / NT) -> the SpikePlane spmm path, which
///     replaces inner products with gathered accumulation;
///   - large dense problems -> the AVX2 kernel when the CPU has it (kSimd),
///     else the scalar cache-blocked kernel (kBlocked);
///   - everything else -> the naive loops (kNaive).
/// The explicit values pin one tier for tests and benchmarks. kSimd degrades
/// to kBlocked on CPUs without AVX2 (or under simd::LevelGuard(kScalar));
/// kSparse degrades to kNaive when B is not a binary matrix. Every tier
/// returns bit-identical results on finite inputs — the AVX2 kernels use
/// unfused multiply+add in scalar order, and the spmm path's skipped zeros
/// would have contributed exact ±0.0 terms — so selection is a pure
/// performance decision.
enum class GemmKernel { kAuto, kNaive, kBlocked, kSimd, kSparse };

void set_gemm_kernel(GemmKernel kernel);
GemmKernel gemm_kernel();

/// Same RAII idea as GemmThreadsGuard, for the kernel override.
class GemmKernelGuard {
 public:
  explicit GemmKernelGuard(GemmKernel kernel);
  ~GemmKernelGuard();
  GemmKernelGuard(const GemmKernelGuard&) = delete;
  GemmKernelGuard& operator=(const GemmKernelGuard&) = delete;

 private:
  GemmKernel prev_;
};

}  // namespace ttsnn
