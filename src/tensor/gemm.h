#pragma once

/// \file gemm.h
/// Small blocked single-precision GEMM for packed row-major matrices.
/// C = alpha * op(A) * op(B) + beta * C, with op controlled by trans flags.
/// Matrices are densely packed: op(A) is [m, k], op(B) is [k, n], C is [m, n].
///
/// Large problems are row-partitioned across the shared ThreadPool; the PTT
/// branch parallelism (DESIGN.md §4) uses the same pool one level up, so GEMM
/// keeps its own fan-out conservative to avoid oversubscription. The NN and
/// TN paths additionally switch to a cache-blocked inner kernel above a size
/// threshold. Both kernels accumulate each C element in ascending-k order, so
/// results are bit-identical across kernels and thread counts.

#include <cstdint>

namespace ttsnn {

void gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, const float* b, float beta, float* c);

/// Number of row partitions GEMM may fan out across the shared pool
/// (defaults to 1; the training loop raises it for the dense baseline where
/// no branch parallelism exists).
void set_gemm_threads(int threads);
int gemm_threads();

/// Restores the previous gemm thread count on scope exit, so a benchmark or
/// test that raises it cannot leak the setting into later code.
class GemmThreadsGuard {
 public:
  explicit GemmThreadsGuard(int threads);
  ~GemmThreadsGuard();
  GemmThreadsGuard(const GemmThreadsGuard&) = delete;
  GemmThreadsGuard& operator=(const GemmThreadsGuard&) = delete;

 private:
  int prev_;
};

/// Inner-kernel selection for the NN/TN paths. kAuto picks kBlocked above a
/// size threshold; the explicit values exist for benchmarking the two kernels
/// against each other and for pinning one in tests.
enum class GemmKernel { kAuto, kNaive, kBlocked };

void set_gemm_kernel(GemmKernel kernel);
GemmKernel gemm_kernel();

/// Same RAII idea as GemmThreadsGuard, for the kernel override.
class GemmKernelGuard {
 public:
  explicit GemmKernelGuard(GemmKernel kernel);
  ~GemmKernelGuard();
  GemmKernelGuard(const GemmKernelGuard&) = delete;
  GemmKernelGuard& operator=(const GemmKernelGuard&) = delete;

 private:
  GemmKernel prev_;
};

}  // namespace ttsnn
