#pragma once

/// \file tensor.h
/// Dense, contiguous, row-major float32 tensor with shared storage.
///
/// Design notes (see DESIGN.md §4):
///  - Tensors are cheap value types: copying a Tensor shares the underlying
///    buffer (like a PyTorch view of the whole tensor); clone() deep-copies.
///  - All tensors are contiguous. reshape() shares storage; permute() copies.
///  - Convolution activations use NCHW layout throughout the library.

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "util/common.h"

namespace ttsnn {

/// Tensor shape: one extent per dimension, row-major (last dim fastest).
using Shape = std::vector<int64_t>;

/// Product of all extents; 1 for a rank-0 shape.
int64_t shape_numel(const Shape& s);

/// Human-readable form, e.g. "[2, 3, 8, 8]".
std::string shape_str(const Shape& s);

/// Flat float buffer backing a Tensor. Allocation and release go through the
/// Arena (arena.h): inside an ArenaScope, freed blocks are recycled instead
/// of hitting the heap, which removes the per-op malloc/zero-fill churn from
/// the training loop. Blocks are size-class capacities; `size` is the numel
/// actually in use.
class Storage {
 public:
  /// Allocates n floats; zero-fills when `zero` (recycled blocks carry stale
  /// data, so Tensor's zero-initialized constructors must ask for it).
  Storage(int64_t n, bool zero);
  ~Storage();
  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  float* data() { return data_; }
  const float* data() const { return data_; }
  int64_t size() const { return size_; }

 private:
  float* data_ = nullptr;
  int64_t size_ = 0;
  int64_t cap_ = 0;  ///< size-class capacity returned to the arena on release
};

/// Dense float32 tensor. See file comment for semantics.
class Tensor {
 public:
  /// Empty tensor (numel() == 0, dim() == 0).
  Tensor() = default;

  /// Zero-filled tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor wrapping a copy of the given flat data (row-major).
  Tensor(Shape shape, std::vector<float> data);

  // ---- factories -----------------------------------------------------------
  /// Tensor with *unspecified* contents — for outputs every element of which
  /// is about to be written (clones, GEMM beta=0 results, elementwise maps).
  /// Skips the zero-fill that Tensor(Shape) guarantees.
  static Tensor empty(Shape shape);
  static Tensor zeros(Shape shape);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, float value);
  /// 1-D tensor [0, 1, ..., n-1].
  static Tensor arange(int64_t n);
  /// I.i.d. N(0, 1) entries.
  static Tensor randn(Shape shape, Rng& rng);
  /// I.i.d. uniform entries in [lo, hi).
  static Tensor uniform(Shape shape, Rng& rng, float lo = 0.0F, float hi = 1.0F);
  /// I.i.d. Bernoulli(p) entries in {0, 1}.
  static Tensor bernoulli(Shape shape, Rng& rng, float p);

  // ---- metadata ------------------------------------------------------------
  bool defined() const { return storage_ != nullptr; }
  int64_t numel() const { return defined() ? shape_numel(shape_) : 0; }
  int64_t dim() const { return static_cast<int64_t>(shape_.size()); }
  /// Extent of dimension i (supports negative indices, Python-style).
  int64_t size(int64_t i) const;
  const Shape& shape() const { return shape_; }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  // ---- data access ---------------------------------------------------------
  float* data();
  const float* data() const;
  float& operator[](int64_t flat_index);
  float operator[](int64_t flat_index) const;
  /// Multi-dimensional accessor (bounds-checked); convenient in tests.
  float& at(std::initializer_list<int64_t> idx);
  float at(std::initializer_list<int64_t> idx) const;

  // ---- structure -----------------------------------------------------------
  /// Deep copy.
  Tensor clone() const;
  /// Same storage, new shape (numel must match). One extent may be -1 and is
  /// inferred from the remaining dimensions.
  Tensor reshape(Shape shape) const;
  /// Shared-storage window: a tensor of the given shape whose first element
  /// sits `offset` floats after this tensor's first element. Bounds-checked
  /// against the storage actually in use. The inference memory planner
  /// (infer/analysis.h) uses views to place every plan register inside one
  /// flat workspace buffer.
  Tensor view(int64_t offset, Shape shape) const;
  /// Copying permutation of dimensions (axes is a permutation of 0..dim-1).
  Tensor permute(const std::vector<int64_t>& axes) const;
  /// 2-D transpose (dim() must be 2). Copies.
  Tensor transpose2d() const;
  /// Slice along dim 0: rows [begin, end). Copies.
  Tensor slice0(int64_t begin, int64_t end) const;

  // ---- in-place arithmetic (return *this for chaining) ----------------------
  Tensor& fill_(float value);
  Tensor& zero_() { return fill_(0.0F); }
  Tensor& add_(const Tensor& other);
  Tensor& sub_(const Tensor& other);
  Tensor& mul_(const Tensor& other);
  Tensor& add_scalar_(float value);
  Tensor& mul_scalar_(float value);
  /// Alias of mul_scalar_ matching the free-function name ops.h::scale.
  Tensor& scale_(float value) { return mul_scalar_(value); }
  /// Elementwise e^x in place.
  Tensor& exp_();
  /// *this += alpha * other (BLAS axpy).
  Tensor& axpy_(float alpha, const Tensor& other);
  /// Clamp all entries into [lo, hi].
  Tensor& clamp_(float lo, float hi);

  // ---- reductions ----------------------------------------------------------
  double sum() const;
  double mean() const;
  float max_value() const;
  float min_value() const;
  /// Index of the maximum entry (first occurrence).
  int64_t argmax() const;
  /// Fraction of non-zero entries — spike density for SNN activations.
  double density() const;
  /// sqrt(sum of squares).
  double norm() const;

  std::string to_string(int64_t max_entries = 32) const;

 private:
  void check_defined() const;

  Shape shape_;
  std::shared_ptr<Storage> storage_;
  int64_t offset_ = 0;  ///< float offset into storage_ (views; 0 elsewhere)
};

}  // namespace ttsnn
