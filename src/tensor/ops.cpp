#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "tensor/gemm.h"
#include "tensor/simd.h"

namespace ttsnn {

Tensor zeros_like(const Tensor& t) { return Tensor::zeros(t.shape()); }

Tensor empty_like(const Tensor& t) { return Tensor::empty(t.shape()); }

namespace {

Tensor binary_op(const Tensor& a, const Tensor& b, float sign) {
  TTSNN_CHECK(a.same_shape(b), "elementwise shape mismatch "
                                   << shape_str(a.shape()) << " vs "
                                   << shape_str(b.shape()));
  Tensor out = a.clone();
  out.axpy_(sign, b);
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) { return binary_op(a, b, 1.0F); }

Tensor sub(const Tensor& a, const Tensor& b) { return binary_op(a, b, -1.0F); }

Tensor mul(const Tensor& a, const Tensor& b) {
  Tensor out = a.clone();
  out.mul_(b);
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = a.clone();
  out.scale_(s);
  return out;
}

Tensor relu(const Tensor& a) {
  Tensor out = a.clone();
  simd::relu(out.numel(), out.data());
  return out;
}

Tensor relu_mask(const Tensor& a) {
  Tensor out = empty_like(a);
  const float* s = a.data();
  float* p = out.data();
  const int64_t n = out.numel();
  for (int64_t i = 0; i < n; ++i) p[i] = s[i] > 0.0F ? 1.0F : 0.0F;
  return out;
}

Tensor exp(const Tensor& a) {
  Tensor out = a.clone();
  out.exp_();
  return out;
}

Tensor sqrt(const Tensor& a) {
  Tensor out = a.clone();
  float* p = out.data();
  const int64_t n = out.numel();
  for (int64_t i = 0; i < n; ++i) p[i] = std::sqrt(p[i]);
  return out;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  TTSNN_CHECK(a.dim() == 2 && b.dim() == 2, "matmul expects 2-D operands");
  const int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  TTSNN_CHECK(b.size(0) == k, "matmul inner dim mismatch "
                                  << shape_str(a.shape()) << " x "
                                  << shape_str(b.shape()));
  Tensor out = Tensor::empty({m, n});
  gemm(false, false, m, n, k, 1.0F, a.data(), b.data(), 0.0F, out.data());
  return out;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  TTSNN_CHECK(a.dim() == 2 && b.dim() == 2, "matmul_tn expects 2-D operands");
  const int64_t k = a.size(0), m = a.size(1), n = b.size(1);
  TTSNN_CHECK(b.size(0) == k, "matmul_tn inner dim mismatch");
  Tensor out = Tensor::empty({m, n});
  gemm(true, false, m, n, k, 1.0F, a.data(), b.data(), 0.0F, out.data());
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  TTSNN_CHECK(a.dim() == 2 && b.dim() == 2, "matmul_nt expects 2-D operands");
  const int64_t m = a.size(0), k = a.size(1), n = b.size(0);
  TTSNN_CHECK(b.size(1) == k, "matmul_nt inner dim mismatch");
  Tensor out = Tensor::empty({m, n});
  gemm(false, true, m, n, k, 1.0F, a.data(), b.data(), 0.0F, out.data());
  return out;
}

Tensor log_softmax(const Tensor& logits) {
  TTSNN_CHECK(logits.dim() == 2, "log_softmax expects [n, c]");
  const int64_t n = logits.size(0), c = logits.size(1);
  Tensor out = empty_like(logits);
  log_softmax_rows(logits.data(), n, c, out.data());
  return out;
}

void log_softmax_rows(const float* src, int64_t n, int64_t c, float* dst) {
  for (int64_t i = 0; i < n; ++i) {
    const float* row = src + i * c;
    float* orow = dst + i * c;
    const float mx = *std::max_element(row, row + c);
    double z = 0.0;
    for (int64_t j = 0; j < c; ++j) z += std::exp(static_cast<double>(row[j] - mx));
    const float logz = static_cast<float>(std::log(z)) + mx;
    for (int64_t j = 0; j < c; ++j) orow[j] = row[j] - logz;
  }
}

Tensor softmax(const Tensor& logits) {
  return log_softmax(logits).exp_();
}

std::vector<int64_t> argmax_rows(const Tensor& logits) {
  TTSNN_CHECK(logits.dim() == 2, "argmax_rows expects [n, c]");
  const int64_t n = logits.size(0), c = logits.size(1);
  std::vector<int64_t> out(static_cast<size_t>(n));
  const float* src = logits.data();
  for (int64_t i = 0; i < n; ++i) {
    const float* row = src + i * c;
    out[static_cast<size_t>(i)] = std::distance(row, std::max_element(row, row + c));
  }
  return out;
}

Tensor add_channel_bias(const Tensor& x, const Tensor& bias) {
  TTSNN_CHECK(x.dim() == 4, "add_channel_bias expects NCHW");
  const int64_t n = x.size(0), c = x.size(1), hw = x.size(2) * x.size(3);
  TTSNN_CHECK(bias.numel() == c, "bias size mismatch");
  Tensor out = x.clone();
  float* p = out.data();
  const float* b = bias.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < c; ++j) {
      float* row = p + (i * c + j) * hw;
      const float bj = b[j];
      for (int64_t k = 0; k < hw; ++k) row[k] += bj;
    }
  }
  return out;
}

Tensor sum_nhw(const Tensor& x) {
  TTSNN_CHECK(x.dim() == 4, "sum_nhw expects NCHW");
  const int64_t n = x.size(0), c = x.size(1), hw = x.size(2) * x.size(3);
  Tensor out({c});
  float* dst = out.data();
  const float* src = x.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < c; ++j) {
      const float* row = src + (i * c + j) * hw;
      double s = 0.0;
      for (int64_t k = 0; k < hw; ++k) s += row[k];
      dst[j] += static_cast<float>(s);
    }
  }
  return out;
}

Tensor global_avg_pool(const Tensor& x) {
  TTSNN_CHECK(x.dim() == 4, "global_avg_pool expects NCHW");
  const int64_t n = x.size(0), c = x.size(1), hw = x.size(2) * x.size(3);
  TTSNN_CHECK(hw > 0, "empty spatial dims");
  Tensor out = Tensor::empty({n, c});
  const float* src = x.data();
  float* dst = out.data();
  for (int64_t i = 0; i < n * c; ++i) {
    const float* row = src + i * hw;
    double s = 0.0;
    for (int64_t k = 0; k < hw; ++k) s += row[k];
    dst[i] = static_cast<float>(s / static_cast<double>(hw));
  }
  return out;
}

Tensor global_avg_pool_backward(const Tensor& grad, int64_t h, int64_t w) {
  TTSNN_CHECK(grad.dim() == 2, "gap backward expects [n, c]");
  const int64_t n = grad.size(0), c = grad.size(1), hw = h * w;
  Tensor out = Tensor::empty({n, c, h, w});
  const float* src = grad.data();
  float* dst = out.data();
  const float inv = 1.0F / static_cast<float>(hw);
  for (int64_t i = 0; i < n * c; ++i) {
    const float g = src[i] * inv;
    float* row = dst + i * hw;
    for (int64_t k = 0; k < hw; ++k) row[k] = g;
  }
  return out;
}

Tensor cat0(const std::vector<Tensor>& parts) {
  TTSNN_CHECK(!parts.empty(), "cat0 of nothing");
  Shape out_shape = parts.front().shape();
  int64_t rows = 0;
  for (const Tensor& t : parts) {
    TTSNN_CHECK(t.dim() == parts.front().dim(), "cat0 rank mismatch");
    for (int64_t d = 1; d < t.dim(); ++d) {
      TTSNN_CHECK(t.size(d) == parts.front().size(d), "cat0 trailing dim mismatch");
    }
    rows += t.size(0);
  }
  out_shape[0] = rows;
  Tensor out = Tensor::empty(out_shape);
  float* dst = out.data();
  for (const Tensor& t : parts) {
    std::copy(t.data(), t.data() + t.numel(), dst);
    dst += t.numel();
  }
  return out;
}

Tensor gather_steps(const Tensor& x, const std::vector<int64_t>& idx) {
  if (idx.empty()) return {};
  Shape s = x.shape();
  s[0] = static_cast<int64_t>(idx.size());
  Tensor out = Tensor::empty(s);
  gather_steps_into(x, idx, out);
  return out;
}

void gather_steps_into(const Tensor& x, const std::vector<int64_t>& idx,
                       Tensor& out) {
  if (idx.empty()) return;
  const int64_t row = x.numel() / x.size(0);
  TTSNN_CHECK(out.numel() == static_cast<int64_t>(idx.size()) * row,
              "gather_steps_into size mismatch");
  for (size_t j = 0; j < idx.size(); ++j) {
    std::copy(x.data() + idx[j] * row, x.data() + (idx[j] + 1) * row,
              out.data() + static_cast<int64_t>(j) * row);
  }
}

void scatter_steps(Tensor& dst, const Tensor& src,
                   const std::vector<int64_t>& idx) {
  if (idx.empty()) return;
  const int64_t row = dst.numel() / dst.size(0);
  TTSNN_CHECK(src.numel() == static_cast<int64_t>(idx.size()) * row,
              "scatter_steps size mismatch");
  for (size_t j = 0; j < idx.size(); ++j) {
    std::copy(src.data() + static_cast<int64_t>(j) * row,
              src.data() + static_cast<int64_t>(j + 1) * row,
              dst.data() + idx[j] * row);
  }
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  TTSNN_CHECK(a.same_shape(b), "max_abs_diff shape mismatch");
  const float* pa = a.data();
  const float* pb = b.data();
  const int64_t n = a.numel();
  double m = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    m = std::max(m, static_cast<double>(std::fabs(pa[i] - pb[i])));
  }
  return m;
}

}  // namespace ttsnn
