#include "tensor/im2col.h"

#include <cstring>

namespace ttsnn {

void im2col(const float* image, const ConvGeometry& g, float* col) {
  const int64_t oh = g.out_h();
  const int64_t ow = g.out_w();
  const int64_t cols = oh * ow;
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_channels; ++c) {
    const float* plane = image + c * g.in_h * g.in_w;
    for (int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* out = col + row * cols;
        for (int64_t y = 0; y < oh; ++y) {
          const int64_t in_y = y * g.stride_h + kh - g.pad_h;
          if (in_y < 0 || in_y >= g.in_h) {
            std::memset(out + y * ow, 0, static_cast<size_t>(ow) * sizeof(float));
            continue;
          }
          const float* src_row = plane + in_y * g.in_w;
          float* dst_row = out + y * ow;
          for (int64_t x = 0; x < ow; ++x) {
            const int64_t in_x = x * g.stride_w + kw - g.pad_w;
            dst_row[x] = (in_x >= 0 && in_x < g.in_w) ? src_row[in_x] : 0.0F;
          }
        }
      }
    }
  }
}

void col2im(const float* col, const ConvGeometry& g, float* image_grad) {
  const int64_t oh = g.out_h();
  const int64_t ow = g.out_w();
  const int64_t cols = oh * ow;
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_channels; ++c) {
    float* plane = image_grad + c * g.in_h * g.in_w;
    for (int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* src = col + row * cols;
        for (int64_t y = 0; y < oh; ++y) {
          const int64_t in_y = y * g.stride_h + kh - g.pad_h;
          if (in_y < 0 || in_y >= g.in_h) continue;
          float* dst_row = plane + in_y * g.in_w;
          const float* src_row = src + y * ow;
          for (int64_t x = 0; x < ow; ++x) {
            const int64_t in_x = x * g.stride_w + kw - g.pad_w;
            if (in_x >= 0 && in_x < g.in_w) dst_row[in_x] += src_row[x];
          }
        }
      }
    }
  }
}

}  // namespace ttsnn
