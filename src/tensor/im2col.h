#pragma once

/// \file im2col.h
/// Convolution lowering for NCHW tensors with asymmetric kernels — the TT
/// sub-convolutions use (1,1), (kh,1), (1,kw) and (1,1) kernels, so kernel
/// height/width, stride and padding are all independent parameters.

#include <cstdint>

#include "tensor/tensor.h"

namespace ttsnn {

/// Static geometry of a 2-D convolution.
struct ConvGeometry {
  int64_t in_channels = 0;
  int64_t in_h = 0;
  int64_t in_w = 0;
  int64_t kernel_h = 1;
  int64_t kernel_w = 1;
  int64_t stride_h = 1;
  int64_t stride_w = 1;
  int64_t pad_h = 0;
  int64_t pad_w = 0;

  int64_t out_h() const {
    return (in_h + 2 * pad_h - kernel_h) / stride_h + 1;
  }
  int64_t out_w() const {
    return (in_w + 2 * pad_w - kernel_w) / stride_w + 1;
  }
  /// Rows of the lowered column matrix: C * kh * kw.
  int64_t col_rows() const { return in_channels * kernel_h * kernel_w; }
  /// Columns of the lowered column matrix: out_h * out_w.
  int64_t col_cols() const { return out_h() * out_w(); }
  /// 1x1 / stride 1 / no padding: the lowering is an identity copy, so conv
  /// code can feed the input plane to gemm directly.
  bool pointwise() const {
    return kernel_h == 1 && kernel_w == 1 && stride_h == 1 && stride_w == 1 &&
           pad_h == 0 && pad_w == 0;
  }
};

/// Lowers one CHW image (pointer to c*h*w floats) into the column matrix
/// `col` of shape [col_rows, col_cols] (caller-allocated, overwritten).
void im2col(const float* image, const ConvGeometry& g, float* col);

/// Adjoint of im2col: accumulates the column matrix back into a CHW image
/// gradient (caller-allocated; this function ADDS into it).
void col2im(const float* col, const ConvGeometry& g, float* image_grad);

}  // namespace ttsnn
