#include "tensor/random.h"

#include <cmath>

namespace ttsnn {

Tensor kaiming_normal(Shape shape, int64_t fan_in, Rng& rng) {
  TTSNN_CHECK(fan_in > 0, "kaiming_normal fan_in must be positive");
  Tensor t = Tensor::randn(std::move(shape), rng);
  t.mul_scalar_(std::sqrt(2.0F / static_cast<float>(fan_in)));
  return t;
}

Tensor xavier_uniform(Shape shape, int64_t fan_in, int64_t fan_out, Rng& rng) {
  TTSNN_CHECK(fan_in > 0 && fan_out > 0, "xavier_uniform fans must be positive");
  const float a = std::sqrt(6.0F / static_cast<float>(fan_in + fan_out));
  return Tensor::uniform(std::move(shape), rng, -a, a);
}

}  // namespace ttsnn
