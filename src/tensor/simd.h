#pragma once

/// \file simd.h
/// Vectorized kernel tier with runtime dispatch.
///
/// Every function here has two implementations: a portable scalar loop
/// (simd.cpp) and an AVX2 one (simd_avx2.cpp, compiled with -mavx2 -mfma and
/// only reachable after a cpuid check). The active tier is picked once at
/// startup — the TTSNN_SIMD environment variable ("scalar" / "avx2") can pin
/// it — and can be overridden per-scope with LevelGuard for tests and benches.
///
/// Bit-identity contract: the AVX2 kernels use separate multiply and add
/// instructions (never FMA) in exactly the per-element order of the scalar
/// loops, and both TUs are built with -ffp-contract=off, so scalar and AVX2
/// results are bitwise identical for every reorder-free kernel below (all of
/// them — reductions that would need lane-split accumulators are deliberately
/// not offered here). That keeps the library-wide "same bits on every kernel
/// tier" invariant that the GEMM layer and the inference engine pin in tests.

#include <cstdint>

namespace ttsnn::simd {

enum class Level { kScalar, kAvx2 };

const char* level_name(Level level);

/// Best tier this CPU supports, intersected with TTSNN_SIMD if set.
/// Computed once on first call.
Level detected_level();

/// Tier used by all kernels below. Defaults to detected_level().
Level active_level();

/// Pins the active tier; requests above detected_level() are clamped down
/// (asking for AVX2 on a non-AVX2 host leaves the scalar tier active).
void set_level(Level level);

/// RAII pin-and-restore, so a test or bench cannot leak its tier.
class LevelGuard {
 public:
  explicit LevelGuard(Level level);
  ~LevelGuard();
  LevelGuard(const LevelGuard&) = delete;
  LevelGuard& operator=(const LevelGuard&) = delete;

 private:
  Level prev_;
};

// ---- elementwise kernels ---------------------------------------------------
// All operate on contiguous float buffers; in-place variants mutate y.

/// y[i] += a * x[i]
void axpy(int64_t n, float a, const float* x, float* y);
/// y[i] *= x[i]
void mul(int64_t n, const float* x, float* y);
/// y[i] *= a
void scale(int64_t n, float a, float* y);
/// y[i] = max(y[i], 0)
void relu(int64_t n, float* y);
/// y[i] = eff * ((x[i] - mu) * inv_std) + beta — the BatchNorm eval affine.
void affine(int64_t n, float mu, float inv_std, float eff, float beta,
            const float* x, float* y);

/// Exp-free surrogate-gradient families of the LIF backward step. The
/// sigmoid surrogate needs exp() (no exact vector form) and stays on the
/// caller's scalar loop.
enum class LifSurrogate { kRectangle, kTriangle, kAtan };

/// One BPTT timestep of the LIF backward recurrence over m neurons, mirroring
/// LIFNeuron::backward's inner loop: surrogate at the cached membrane u,
/// reset-carry from gu_post, optional non-detached reset term, then
/// gu_post = tau * gu. Reads gst/ut/st, updates gu_post, writes git.
void lif_backward_step(int64_t m, LifSurrogate kind, float alpha, float tau,
                       float v_th, bool zero_reset, bool detach_reset,
                       const float* gst, const float* ut, const float* st,
                       float* gu_post, float* git);

/// One LIF timestep over m neurons (eval mode): u = tau * u_post + in,
/// s = u >= v_th, then the reset update of u_post. Writes spikes to s_out.
/// Reads in[i] before writing s_out[i], so s_out may alias in.
void lif_step_eval(int64_t m, float tau, float v_th, bool zero_reset,
                   const float* in, float* u_post, float* s_out);
/// Training variant: additionally records the pre-reset membrane u.
void lif_step_train(int64_t m, float tau, float v_th, bool zero_reset,
                    const float* in, float* u_post, float* u_out, float* s_out);

// ---- fused inference epilogues ---------------------------------------------
// Single-pass kernels for the plan-IR fusion pass (infer/compile.cpp): the
// producer's elementwise math feeds the LIF membrane (or the residual add)
// without the intermediate ever reaching memory. Each expression is copied
// verbatim from the unfused kernel pair it replaces — same operand order,
// separate mul and add — so fused and unfused plans are bitwise identical on
// both tiers.

/// lif_step_eval with the conv-bias add folded in: u = tau * u_post + v where
/// v = in + bias, exactly the unfused per-channel bias pass followed by
/// lif_step_eval. s_out may alias in.
void lif_step_eval_bias(int64_t m, float tau, float v_th, bool zero_reset,
                        float bias, const float* in, float* u_post,
                        float* s_out);
/// BatchNorm eval affine feeding one LIF timestep over a channel plane:
/// a = eff * ((x - mu) * inv_std) + beta, then the lif_step_eval update on a.
/// s_out may alias x.
void affine_lif_step(int64_t n, float mu, float inv_std, float eff, float beta,
                     float tau, float v_th, bool zero_reset, const float* x,
                     float* u_post, float* s_out);
/// Residual add feeding one LIF timestep: u = tau * u_post + (a + 1*b),
/// matching the unfused copy + axpy(1, b) then lif_step_eval. s_out may alias
/// a, never b.
void add_lif_step(int64_t m, float tau, float v_th, bool zero_reset,
                  const float* a, const float* b, float* u_post, float* s_out);
/// BatchNorm eval affine feeding a residual add over a channel plane:
/// v = eff * ((x - mu) * inv_std) + beta, then y = swap ? other + 1*v
/// : v + 1*other — `swap` records which add operand the affine produced, so
/// the axpy operand order (and therefore the bits) match the unfused plan.
/// y may alias x, never other.
void affine_add(int64_t n, float mu, float inv_std, float eff, float beta,
                bool swap, const float* x, const float* other, float* y);

/// Fused Adam update for one parameter block; bc1/bc2 are the bias-correction
/// denominators 1 - beta^t.
void adam_step(int64_t n, float lr, float beta1, float beta2, float bc1,
               float bc2, float eps, float decay, const float* g, float* m,
               float* v, float* w);
/// Fused SGD-with-momentum update: v = mu*v + g + decay*w; w -= lr*v.
void sgd_step(int64_t n, float lr, float momentum, float decay, const float* g,
              float* v, float* w);

// ---- GEMM microkernels -----------------------------------------------------
// Row-strip kernels matching the scalar kernels in gemm.cpp: same n-panel /
// 4-row blocking, same ascending-k accumulation, same zero-skip semantics.
// Called by gemm() only when the active level is kAvx2.

/// Rows [m0, m1) of C += alpha * A * B (A [m,k], B [k,n]), n-panelled.
void gemm_nn_rows_avx2(int64_t m0, int64_t m1, int64_t n, int64_t k,
                       int64_t panel, float alpha, const float* a,
                       const float* b, float* c);
/// Rows [m0, m1) of C += alpha * A^T * B (A [k,m] with leading dim lda).
void gemm_tn_rows_avx2(int64_t m0, int64_t m1, int64_t n, int64_t k,
                       int64_t lda, int64_t panel, float alpha, const float* a,
                       const float* b, float* c);
/// Rows [m0, m1) of C += alpha * A * B^T (B [n,k]). Four output columns run
/// as four independent double-precision lanes; each dot product still
/// accumulates in ascending k with unfused mul+add, so the result matches
/// the scalar kernel bit-for-bit.
void gemm_nt_rows_avx2(int64_t m0, int64_t m1, int64_t n, int64_t k,
                       float alpha, const float* a, const float* b, float* c);

// ---- typed weight-plane kernels (tensor/weight_plane.h) --------------------
// The quantized serving path. Unlike the float kernels above, the int8 GEMMs
// need no ordering discipline for bit-identity: the accumulation is exact
// int32 arithmetic (spikes are {0,1} u8, weights s8, k * 127 < 2^31), so any
// summation order gives the same integer, and the single per-output-channel
// rescale is one float multiply. Scalar and AVX2 tiers are therefore bitwise
// identical by construction.

/// dst[i] = f32 whose bit pattern is src[i] << 16 — exact bf16 expansion,
/// including NaN and denormals. Pure bit movement, identical on both tiers.
void dequant_bf16(int64_t n, const uint16_t* src, float* dst);

/// Binary {0,1} float spikes -> u8, same order. Exact boolean conversion
/// (s != 0), tier-independent; scalar on both tiers.
void spikes_to_u8(int64_t n, const float* src, uint8_t* dst);

/// Binary spike matrix [k, n] in im2col layout -> transposed u8 [n, k], so
/// the int8 dot products read both operands contiguously along k. Scalar on
/// both tiers (boolean conversion, exact).
void spikes_to_u8_t(int64_t k, int64_t n, const float* src, uint8_t* dst);

/// Int8-weight x binary-spike GEMM, conv orientation: w is [m, k] s8 rows
/// (one output channel per row), s is [n, k] u8 spike columns, and
/// c[o * n + j] = scale[o] * dot_int32(w_o, s_j). Widening accumulate into
/// int32, one float rescale per output value.
void gemm_s8_wxs(int64_t m, int64_t n, int64_t k, const int8_t* w,
                 const uint8_t* s, const float* scale, float* c);

/// Linear orientation: s is [m, k] u8 spike rows, w is [n, k] s8 rows (one
/// output feature per row), c[i * n + j] = scale[j] * dot_int32(s_i, w_j) —
/// the integer analogue of gemm(trans_b=true).
void gemm_s8_sxw(int64_t m, int64_t n, int64_t k, const uint8_t* s,
                 const int8_t* w, const float* scale, float* c);

}  // namespace ttsnn::simd
