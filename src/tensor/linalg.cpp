#include "tensor/linalg.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tensor/gemm.h"

namespace ttsnn {

namespace {

constexpr int kMaxJacobiSweeps = 64;

/// Off-diagonal Frobenius norm squared.
double off_diag_norm2(const std::vector<double>& a, int64_t n) {
  double s = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) s += 2.0 * a[i * n + j] * a[i * n + j];
  }
  return s;
}

}  // namespace

SymEig sym_eig(const Tensor& a_in) {
  TTSNN_CHECK(a_in.dim() == 2 && a_in.size(0) == a_in.size(1),
              "sym_eig expects square matrix, got " << shape_str(a_in.shape()));
  const int64_t n = a_in.size(0);

  std::vector<double> a(static_cast<size_t>(n * n));
  const float* src = a_in.data();
  double scale = 0.0;
  for (int64_t i = 0; i < n * n; ++i) {
    a[static_cast<size_t>(i)] = src[i];
    scale = std::max(scale, std::fabs(static_cast<double>(src[i])));
  }
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      TTSNN_CHECK(std::fabs(a[i * n + j] - a[j * n + i]) <=
                      1e-4 * std::max(1.0, scale),
                  "sym_eig: matrix not symmetric at (" << i << ", " << j << ")");
      // Symmetrize exactly so rotations stay consistent.
      const double m = 0.5 * (a[i * n + j] + a[j * n + i]);
      a[i * n + j] = a[j * n + i] = m;
    }
  }

  std::vector<double> v(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  const double total2 = std::inner_product(a.begin(), a.end(), a.begin(), 0.0);
  const double tol2 = std::max(total2, 1e-300) * 1e-24;

  for (int sweep = 0; sweep < kMaxJacobiSweeps; ++sweep) {
    if (off_diag_norm2(a, n) <= tol2) break;
    for (int64_t p = 0; p < n - 1; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (apq == 0.0) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply the rotation J(p, q, theta) on both sides of A.
        for (int64_t k = 0; k < n; ++k) {
          const double akp = a[k * n + p];
          const double akq = a[k * n + q];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + q] = s * akp + c * akq;
        }
        for (int64_t k = 0; k < n; ++k) {
          const double apk = a[p * n + k];
          const double aqk = a[q * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[q * n + k] = s * apk + c * aqk;
        }
        // Accumulate eigenvectors (columns of V).
        for (int64_t k = 0; k < n; ++k) {
          const double vkp = v[k * n + p];
          const double vkq = v[k * n + q];
          v[k * n + p] = c * vkp - s * vkq;
          v[k * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int64_t x, int64_t y) {
    return a[x * n + x] > a[y * n + y];
  });

  SymEig out;
  out.values.resize(static_cast<size_t>(n));
  out.vectors = Tensor({n, n});
  float* vec = out.vectors.data();
  for (int64_t j = 0; j < n; ++j) {
    const int64_t src_col = order[static_cast<size_t>(j)];
    out.values[static_cast<size_t>(j)] = a[src_col * n + src_col];
    for (int64_t i = 0; i < n; ++i) {
      vec[i * n + j] = static_cast<float>(v[i * n + src_col]);
    }
  }
  return out;
}

Svd svd(const Tensor& a) {
  TTSNN_CHECK(a.dim() == 2, "svd expects 2-D tensor");
  const int64_t m = a.size(0);
  const int64_t n = a.size(1);
  const int64_t r = std::min(m, n);
  TTSNN_CHECK(r > 0, "svd of empty matrix");

  const bool gram_left = m <= n;  // form the Gram matrix on the smaller side
  const int64_t g = gram_left ? m : n;

  // G = A A^T (left) or A^T A (right).
  Tensor gram({g, g});
  if (gram_left) {
    gemm(false, true, m, m, n, 1.0F, a.data(), a.data(), 0.0F, gram.data());
  } else {
    gemm(true, false, n, n, m, 1.0F, a.data(), a.data(), 0.0F, gram.data());
  }

  SymEig eig = sym_eig(gram);

  Svd out;
  out.s = Tensor({r});
  for (int64_t i = 0; i < r; ++i) {
    out.s[i] = static_cast<float>(
        std::sqrt(std::max(0.0, eig.values[static_cast<size_t>(i)])));
  }

  // Eigenvectors of the Gram side give one factor; the other follows by
  // projection: if G = A A^T then u_i is an eigenvector and v_i = A^T u_i / s_i.
  Tensor gram_vecs({g, r});
  {
    const float* src = eig.vectors.data();
    float* dst = gram_vecs.data();
    for (int64_t i = 0; i < g; ++i) {
      for (int64_t j = 0; j < r; ++j) dst[i * r + j] = src[i * g + j];
    }
  }

  // Compute the projected factor and normalize columns by singular values.
  const float eps = 1e-12F;
  if (gram_left) {
    out.u = gram_vecs;  // [m, r]
    // proj = A^T U: [n, r]
    Tensor proj({n, r});
    gemm(true, false, n, r, m, 1.0F, a.data(), gram_vecs.data(), 0.0F,
         proj.data());
    float* p = proj.data();
    for (int64_t j = 0; j < r; ++j) {
      const float s = out.s[j];
      const float inv = s > eps ? 1.0F / s : 0.0F;
      for (int64_t i = 0; i < n; ++i) p[i * r + j] *= inv;
    }
    out.v = proj;
  } else {
    out.v = gram_vecs;  // [n, r]
    // proj = A V: [m, r]
    Tensor proj({m, r});
    gemm(false, false, m, r, n, 1.0F, a.data(), gram_vecs.data(), 0.0F,
         proj.data());
    float* p = proj.data();
    for (int64_t j = 0; j < r; ++j) {
      const float s = out.s[j];
      const float inv = s > eps ? 1.0F / s : 0.0F;
      for (int64_t i = 0; i < m; ++i) p[i * r + j] *= inv;
    }
    out.u = proj;
  }
  return out;
}

std::vector<double> singular_values(const Tensor& a) {
  TTSNN_CHECK(a.dim() == 2, "singular_values expects 2-D tensor");
  const int64_t m = a.size(0);
  const int64_t n = a.size(1);
  const bool gram_left = m <= n;
  const int64_t g = gram_left ? m : n;
  Tensor gram({g, g});
  if (gram_left) {
    gemm(false, true, m, m, n, 1.0F, a.data(), a.data(), 0.0F, gram.data());
  } else {
    gemm(true, false, n, n, m, 1.0F, a.data(), a.data(), 0.0F, gram.data());
  }
  SymEig eig = sym_eig(gram);
  std::vector<double> s(eig.values.size());
  for (size_t i = 0; i < s.size(); ++i) {
    s[i] = std::sqrt(std::max(0.0, eig.values[i]));
  }
  return s;
}

}  // namespace ttsnn
