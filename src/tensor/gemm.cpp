#include "tensor/gemm.h"

#include <algorithm>
#include <atomic>
#include <future>
#include <vector>

#include "util/common.h"

namespace ttsnn {

namespace {

std::atomic<int> g_gemm_threads{1};

/// Computes rows [m0, m1) of C for the non-transposed case A[m,k] * B[k,n].
/// Inner loops are ordered i-k-j so the B row is streamed contiguously.
void gemm_nn_rows(int64_t m0, int64_t m1, int64_t n, int64_t k, float alpha,
                  const float* a, const float* b, float* c) {
  for (int64_t i = m0; i < m1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = alpha * arow[p];
      if (av == 0.0F) continue;  // spike matrices are sparse; skip zero rows
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// Rows [m0, m1) of C for A[m,k] * B^T where B is [n, k].
void gemm_nt_rows(int64_t m0, int64_t m1, int64_t n, int64_t k, float alpha,
                  const float* a, const float* b, float* c) {
  for (int64_t i = m0; i < m1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      double s = 0.0;
      for (int64_t p = 0; p < k; ++p) s += static_cast<double>(arow[p]) * brow[p];
      crow[j] += alpha * static_cast<float>(s);
    }
  }
}

/// Rows [m0, m1) of C for A^T * B where A is [k, m], B is [k, n].
void gemm_tn_rows(int64_t m0, int64_t m1, int64_t n, int64_t k, int64_t lda,
                  float alpha, const float* a, const float* b, float* c) {
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = a + p * lda;
    const float* brow = b + p * n;
    for (int64_t i = m0; i < m1; ++i) {
      const float av = alpha * arow[i];
      if (av == 0.0F) continue;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void scale_c(float beta, int64_t mn, float* c) {
  if (beta == 1.0F) return;
  if (beta == 0.0F) {
    std::fill(c, c + mn, 0.0F);
    return;
  }
  for (int64_t i = 0; i < mn; ++i) c[i] *= beta;
}

}  // namespace

void set_gemm_threads(int threads) {
  TTSNN_CHECK(threads >= 1, "gemm thread count must be >= 1");
  g_gemm_threads.store(threads);
}

int gemm_threads() { return g_gemm_threads.load(); }

void gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, const float* b, float beta, float* c) {
  TTSNN_CHECK(m >= 0 && n >= 0 && k >= 0, "negative gemm dims");
  scale_c(beta, m * n, c);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0F) return;

  // A^T with B^T is not needed anywhere in the library.
  TTSNN_CHECK(!(trans_a && trans_b), "gemm: TT case unsupported");

  const int threads = g_gemm_threads.load();
  const bool parallel = threads > 1 && m >= 2 * threads && m * n * k > (1 << 16);

  auto run_rows = [&](int64_t m0, int64_t m1) {
    if (trans_a) {
      gemm_tn_rows(m0, m1, n, k, m, alpha, a, b, c);
    } else if (trans_b) {
      gemm_nt_rows(m0, m1, n, k, alpha, a, b, c);
    } else {
      gemm_nn_rows(m0, m1, n, k, alpha, a, b, c);
    }
  };

  if (!parallel) {
    run_rows(0, m);
    return;
  }
  std::vector<std::future<void>> futures;
  const int64_t chunk = (m + threads - 1) / threads;
  for (int t = 0; t < threads; ++t) {
    const int64_t m0 = t * chunk;
    const int64_t m1 = std::min<int64_t>(m, m0 + chunk);
    if (m0 >= m1) break;
    futures.push_back(std::async(std::launch::async, run_rows, m0, m1));
  }
  for (auto& f : futures) f.get();
}

}  // namespace ttsnn
