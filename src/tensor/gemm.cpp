#include "tensor/gemm.h"

#include <algorithm>
#include <atomic>

#include "tensor/simd.h"
#include "tensor/spike_plane.h"
#include "util/common.h"
#include "util/thread_pool.h"

namespace ttsnn {

namespace {

std::atomic<int> g_gemm_threads{1};
std::atomic<GemmKernel> g_gemm_kernel{GemmKernel::kAuto};

/// The blocked NN/TN kernels tile over n only: a k x NC column panel of B is
/// held L2-resident and reused by every row of the strip, with NC chosen so
/// the panel fits kPanelBytes. The k loop stays whole and ascending inside
/// each panel, so every C element accumulates its contributions in exactly
/// the same order as the naive kernels — results stay bit-identical.
constexpr int64_t kPanelBytes = 512 << 10;

/// Panel width (in floats) for a given inner dimension k, clamped so tiny
/// panels don't degenerate the inner loop.
int64_t panel_width(int64_t k) {
  const int64_t nc = kPanelBytes / (k * static_cast<int64_t>(sizeof(float)));
  return std::max<int64_t>(64, nc & ~int64_t{15});
}

/// The scalar blocked kernel only pays off once B no longer fits in cache;
/// below this size the naive loops win on its panel overhead.
constexpr int64_t kBlockedThreshold = 1 << 17;

/// The AVX2 kernel has essentially no setup cost, so it engages far earlier —
/// the training loop is dominated by thousands of small per-item conv GEMMs
/// (m*n*k around 10^4-10^5) that the blocked threshold never reaches.
constexpr int64_t kVectorThreshold = 1 << 10;

/// Minimum problem size for attempting a SpikePlane build on B (the build
/// scans k*n floats; at m >= 4 that is at most 1/8 of the nominal work).
constexpr int64_t kSparseThreshold = 1 << 14;

/// Fraction of zeros in a strided sample of the matrix, against a threshold
/// in percent. The O(1) sample decides a kernel regime for O(m*n*k) work:
///  - A side, > 25% zeros: the blocked kernels' 4-row grouping dilutes the
///    zero-row skip, so spike-sparse A stays on the naive kernel;
///  - B side, > 70% zeros: worth attempting a SpikePlane build for the
///    gathered-accumulation path.
bool sample_zeros_exceed(const float* p, int64_t len, int64_t percent) {
  constexpr int64_t kSamples = 256;
  // Odd stride: a power-of-two stride over a power-of-two row length would
  // sample the same few columns of every row, misreading structured matrices.
  const int64_t stride = std::max<int64_t>(1, len / kSamples) | 1;
  int64_t seen = 0, zeros = 0;
  for (int64_t i = 0; i < len; i += stride, ++seen) {
    if (p[i] == 0.0F) ++zeros;
  }
  return zeros * 100 > seen * percent;
}

/// Above this spike density the gathered-accumulation path loses to the
/// vectorized dense kernels (one scalar add + index load per non-zero vs an
/// 8-wide multiply-add per 8 elements) and the build is abandoned.
constexpr double kSparseMaxDensity = 0.25;

/// Computes rows [m0, m1) of C for the non-transposed case A[m,k] * B[k,n].
/// Inner loops are ordered i-k-j so the B row is streamed contiguously.
/// A single O(k) scan per row hoists the zero check out of the O(k*n) inner
/// loop: fully dense rows (conv weights, gradients) run branch-free, and
/// only rows that actually contain zeros (spike rows) pay the per-element
/// test. Contributions stay in ascending-k order either way, so the result
/// is bit-identical to the pre-hoist kernel.
void gemm_nn_rows(int64_t m0, int64_t m1, int64_t n, int64_t k, float alpha,
                  const float* a, const float* b, float* c) {
  for (int64_t i = m0; i < m1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    if (std::find(arow, arow + k, 0.0F) == arow + k) {  // dense row
      for (int64_t p = 0; p < k; ++p) {
        const float av = alpha * arow[p];
        const float* brow = b + p * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
      continue;
    }
    for (int64_t p = 0; p < k; ++p) {
      const float av = alpha * arow[p];
      if (av == 0.0F) continue;  // spike matrices are sparse; skip zero rows
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// Four C rows updated from one streamed B row. The all-zero early-out and
/// the per-row fallback reproduce the naive kernel's skip semantics exactly
/// (a skipped row's C element is never touched, so no 0 * inf or -0.0 + 0.0
/// artifacts can differ from the naive result).
void update4(float av0, float av1, float av2, float av3, const float* brow,
             int64_t j0, int64_t j1, float* cr0, float* cr1, float* cr2,
             float* cr3) {
  const bool z0 = av0 == 0.0F, z1 = av1 == 0.0F, z2 = av2 == 0.0F,
             z3 = av3 == 0.0F;
  if (z0 && z1 && z2 && z3) return;
  if (!z0 && !z1 && !z2 && !z3) {
    for (int64_t j = j0; j < j1; ++j) {
      const float bv = brow[j];
      cr0[j] += av0 * bv;
      cr1[j] += av1 * bv;
      cr2[j] += av2 * bv;
      cr3[j] += av3 * bv;
    }
    return;
  }
  if (!z0) for (int64_t j = j0; j < j1; ++j) cr0[j] += av0 * brow[j];
  if (!z1) for (int64_t j = j0; j < j1; ++j) cr1[j] += av1 * brow[j];
  if (!z2) for (int64_t j = j0; j < j1; ++j) cr2[j] += av2 * brow[j];
  if (!z3) for (int64_t j = j0; j < j1; ++j) cr3[j] += av3 * brow[j];
}

/// Blocked variant of gemm_nn_rows: tiles over n so the active k x NC panel
/// of B stays cache-resident across the strip, and register-blocks four rows
/// of C so every streamed B element feeds four FMAs instead of one. Each C
/// element still accumulates its k contributions in ascending order, so the
/// result is bit-identical to the naive kernel.
void gemm_nn_rows_blocked(int64_t m0, int64_t m1, int64_t n, int64_t k,
                          float alpha, const float* a, const float* b,
                          float* c) {
  const int64_t nc = panel_width(k);
  for (int64_t j0 = 0; j0 < n; j0 += nc) {
    const int64_t j1 = std::min(n, j0 + nc);
    int64_t i = m0;
    for (; i + 4 <= m1; i += 4) {
      const float* ar0 = a + i * k;
      const float* ar1 = ar0 + k;
      const float* ar2 = ar1 + k;
      const float* ar3 = ar2 + k;
      float* cr0 = c + i * n;
      float* cr1 = cr0 + n;
      float* cr2 = cr1 + n;
      float* cr3 = cr2 + n;
      for (int64_t p = 0; p < k; ++p) {
        update4(alpha * ar0[p], alpha * ar1[p], alpha * ar2[p],
                alpha * ar3[p], b + p * n, j0, j1, cr0, cr1, cr2, cr3);
      }
    }
    for (; i < m1; ++i) {  // remainder rows, scalar
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (int64_t p = 0; p < k; ++p) {
        const float av = alpha * arow[p];
        if (av == 0.0F) continue;  // spike sparsity: skip zero rows of B
        const float* brow = b + p * n;
        for (int64_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

/// Rows [m0, m1) of C for A[m,k] * B^T where B is [n, k].
void gemm_nt_rows(int64_t m0, int64_t m1, int64_t n, int64_t k, float alpha,
                  const float* a, const float* b, float* c) {
  for (int64_t i = m0; i < m1; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      double s = 0.0;
      for (int64_t p = 0; p < k; ++p) s += static_cast<double>(arow[p]) * brow[p];
      crow[j] += alpha * static_cast<float>(s);
    }
  }
}

/// Rows [m0, m1) of C for A^T * B where A is [k, m], B is [k, n]. The zero
/// check is hoisted per A row (one O(m) scan instead of m per-element tests)
/// exactly like gemm_nn_rows.
void gemm_tn_rows(int64_t m0, int64_t m1, int64_t n, int64_t k, int64_t lda,
                  float alpha, const float* a, const float* b, float* c) {
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = a + p * lda;
    const float* brow = b + p * n;
    if (std::find(arow + m0, arow + m1, 0.0F) == arow + m1) {  // dense row
      for (int64_t i = m0; i < m1; ++i) {
        const float av = alpha * arow[i];
        float* crow = c + i * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
      continue;
    }
    for (int64_t i = m0; i < m1; ++i) {
      const float av = alpha * arow[i];
      if (av == 0.0F) continue;
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

/// Blocked variant of gemm_tn_rows: tiles over n so the active m x NC block
/// of C stays cache-resident across the whole k sweep (the naive TN loop
/// re-streams all of C on every k step), and register-blocks four C rows per
/// streamed B row like the NN kernel. The p loop stays ascending within a
/// panel, so the result is bit-identical to the naive kernel.
void gemm_tn_rows_blocked(int64_t m0, int64_t m1, int64_t n, int64_t k,
                          int64_t lda, float alpha, const float* a,
                          const float* b, float* c) {
  const int64_t nc = panel_width(k);
  for (int64_t j0 = 0; j0 < n; j0 += nc) {
    const int64_t j1 = std::min(n, j0 + nc);
    int64_t i = m0;
    for (; i + 4 <= m1; i += 4) {
      float* cr0 = c + i * n;
      float* cr1 = cr0 + n;
      float* cr2 = cr1 + n;
      float* cr3 = cr2 + n;
      for (int64_t p = 0; p < k; ++p) {
        const float* arow = a + p * lda + i;
        update4(alpha * arow[0], alpha * arow[1], alpha * arow[2],
                alpha * arow[3], b + p * n, j0, j1, cr0, cr1, cr2, cr3);
      }
    }
    for (; i < m1; ++i) {  // remainder rows, scalar
      float* crow = c + i * n;
      for (int64_t p = 0; p < k; ++p) {
        const float av = alpha * a[p * lda + i];
        if (av == 0.0F) continue;
        const float* brow = b + p * n;
        for (int64_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

void scale_c(float beta, int64_t mn, float* c) {
  if (beta == 1.0F) return;
  if (beta == 0.0F) {
    std::fill(c, c + mn, 0.0F);
    return;
  }
  simd::scale(mn, beta, c);
}

/// Which dense kernel a strip runs. kVector is the AVX2 kernel from
/// simd_avx2.cpp; kBlocked its scalar twin; kNaive the plain loops.
enum class DenseTier { kNaive, kBlocked, kVector };

}  // namespace

void set_gemm_threads(int threads) {
  TTSNN_CHECK(threads >= 1, "gemm thread count must be >= 1");
  g_gemm_threads.store(threads);
}

int gemm_threads() { return g_gemm_threads.load(); }

GemmThreadsGuard::GemmThreadsGuard(int threads) : prev_(gemm_threads()) {
  set_gemm_threads(threads);
}

GemmThreadsGuard::~GemmThreadsGuard() { set_gemm_threads(prev_); }

void set_gemm_kernel(GemmKernel kernel) { g_gemm_kernel.store(kernel); }

GemmKernel gemm_kernel() { return g_gemm_kernel.load(); }

GemmKernelGuard::GemmKernelGuard(GemmKernel kernel) : prev_(gemm_kernel()) {
  set_gemm_kernel(kernel);
}

GemmKernelGuard::~GemmKernelGuard() { set_gemm_kernel(prev_); }

void gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          float alpha, const float* a, const float* b, float beta, float* c) {
  TTSNN_CHECK(m >= 0 && n >= 0 && k >= 0, "negative gemm dims");
  TTSNN_CHECK(c != nullptr || m * n == 0, "gemm: null C with m*n > 0");
  TTSNN_CHECK((a != nullptr && b != nullptr) ||
                  m * n * k == 0 || alpha == 0.0F,
              "gemm: null A/B with a non-empty product");
  scale_c(beta, m * n, c);
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0F) return;

  // A^T with B^T is not needed anywhere in the library.
  TTSNN_CHECK(!(trans_a && trans_b), "gemm: TT case unsupported");

  const GemmKernel pinned = g_gemm_kernel.load();

  // --- spike-plane path: binary sparse B, NN and NT --------------------------
  // The B operand of the conv GEMMs is the (im2col'd) spike activation; when
  // it samples sparse, one O(k*n) CSR build turns the O(m*n*k) product into
  // gathered accumulation over the non-zeros. The build itself verifies the
  // matrix is binary and bails above kSparseMaxDensity, so a false positive
  // from the sample costs one scan, never a wrong kernel.
  SpikePlane plane;
  bool sparse = false;
  if (!trans_a) {
    const int64_t b_rows = trans_b ? n : k;
    const int64_t b_cols = trans_b ? k : n;
    if (pinned == GemmKernel::kSparse) {
      sparse = plane.build(b, b_rows, b_cols);  // forced: any binary density
    } else if (pinned == GemmKernel::kAuto && m >= 4 &&
               m * n * k >= kSparseThreshold &&
               sample_zeros_exceed(b, b_rows * b_cols, 70)) {
      sparse = plane.build(b, b_rows, b_cols, kSparseMaxDensity);
    }
  }

  // --- dense tier selection. NN/TN have vector and scalar-blocked kernels;
  // NT has a vector kernel only (four parallel double-lane dot columns) and
  // otherwise stays on the naive double-accumulating loop.
  DenseTier tier = DenseTier::kNaive;
  if (!sparse) {
    const bool avx2 = simd::active_level() == simd::Level::kAvx2;
    switch (pinned) {
      case GemmKernel::kNaive:
      case GemmKernel::kSparse:  // sparse build failed: B was not binary
        break;
      case GemmKernel::kBlocked:
        if (!trans_b) tier = DenseTier::kBlocked;
        break;
      case GemmKernel::kSimd:
        if (avx2) {
          tier = DenseTier::kVector;
        } else if (!trans_b) {
          tier = DenseTier::kBlocked;
        }
        break;
      case GemmKernel::kAuto:
        // Dense A above the tier threshold runs vectorized (or scalar
        // blocked without AVX2); sparse spike matrices stay on the naive
        // kernel, whose per-row zero skip the 4-row grouping would dilute
        // (NT has no zero skip, so the A sample is skipped there).
        if (avx2 && m * n * k >= kVectorThreshold &&
            (trans_b || !sample_zeros_exceed(a, m * k, 25))) {
          tier = DenseTier::kVector;
        } else if (!avx2 && !trans_b && m * n * k >= kBlockedThreshold &&
                   m >= 8 && !sample_zeros_exceed(a, m * k, 25)) {
          tier = DenseTier::kBlocked;
        }
        break;
    }
  }

  const int64_t panel = panel_width(k);
  auto run_rows = [&](int64_t m0, int64_t m1) {
    if (sparse) {
      if (trans_b) {
        spmm_nt_rows(m0, m1, n, k, alpha, a, plane, c);
      } else {
        spmm_nn_rows(m0, m1, n, k, alpha, a, plane, c);
      }
    } else if (trans_a) {
      switch (tier) {
        case DenseTier::kVector:
          simd::gemm_tn_rows_avx2(m0, m1, n, k, m, panel, alpha, a, b, c);
          break;
        case DenseTier::kBlocked:
          gemm_tn_rows_blocked(m0, m1, n, k, m, alpha, a, b, c);
          break;
        case DenseTier::kNaive:
          gemm_tn_rows(m0, m1, n, k, m, alpha, a, b, c);
          break;
      }
    } else if (trans_b) {
      if (tier == DenseTier::kVector) {
        simd::gemm_nt_rows_avx2(m0, m1, n, k, alpha, a, b, c);
      } else {
        gemm_nt_rows(m0, m1, n, k, alpha, a, b, c);
      }
    } else {
      switch (tier) {
        case DenseTier::kVector:
          simd::gemm_nn_rows_avx2(m0, m1, n, k, panel, alpha, a, b, c);
          break;
        case DenseTier::kBlocked:
          gemm_nn_rows_blocked(m0, m1, n, k, alpha, a, b, c);
          break;
        case DenseTier::kNaive:
          gemm_nn_rows(m0, m1, n, k, alpha, a, b, c);
          break;
      }
    }
  };

  const int threads = g_gemm_threads.load();
  const bool parallel = threads > 1 && m >= 2 * threads && m * n * k > (1 << 16);
  if (!parallel) {
    run_rows(0, m);
    return;
  }
  // Row strips on the shared pool; chunk size caps the fan-out at `threads`
  // concurrent strips, preserving the pre-pool oversubscription budget.
  const int64_t chunk = (m + threads - 1) / threads;
  parallel_for(m, run_rows, chunk);
}

}  // namespace ttsnn
