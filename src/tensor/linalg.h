#pragma once

/// \file linalg.h
/// Dense linear algebra needed by the TT machinery: a cyclic Jacobi
/// eigensolver for symmetric matrices and a Gram-matrix-based thin SVD.
/// The SVD forms the Gram matrix on the smaller side, so an [m, n] unfolding
/// with m << n costs O(m^2 n + m^3) — adequate for conv-weight unfoldings.

#include <vector>

#include "tensor/tensor.h"

namespace ttsnn {

/// Eigendecomposition of a symmetric matrix, eigenvalues descending.
struct SymEig {
  std::vector<double> values;  ///< descending eigenvalues
  Tensor vectors;              ///< [n, n]; column j pairs with values[j]
};

/// Cyclic Jacobi eigensolver (double-precision internally).
/// `a` must be square and symmetric; asymmetry beyond 1e-4 is rejected.
SymEig sym_eig(const Tensor& a);

/// Thin singular value decomposition A = U * diag(S) * V^T.
struct Svd {
  Tensor u;  ///< [m, r]
  Tensor s;  ///< [r], descending, non-negative
  Tensor v;  ///< [n, r]
};

/// Thin SVD of a 2-D tensor via the Gram matrix of the smaller side.
Svd svd(const Tensor& a);

/// Singular values only (descending) — what VBMF needs.
std::vector<double> singular_values(const Tensor& a);

}  // namespace ttsnn
