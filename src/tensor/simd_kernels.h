#pragma once

/// \file simd_kernels.h
/// Internal declarations of the AVX2 kernel implementations (simd_avx2.cpp).
/// Only simd.cpp includes this; everything public lives in simd.h.

#include <cstdint>

namespace ttsnn::simd::avx2 {

/// True when simd_avx2.cpp was built with AVX2 codegen (x86 toolchain).
bool compiled_in();

void axpy(int64_t n, float a, const float* x, float* y);
void mul(int64_t n, const float* x, float* y);
void scale(int64_t n, float a, float* y);
void relu(int64_t n, float* y);
void affine(int64_t n, float mu, float inv_std, float eff, float beta,
            const float* x, float* y);
void lif_backward_step(int64_t m, int kind, float alpha, float tau, float v_th,
                       bool zero_reset, bool detach_reset, const float* gst,
                       const float* ut, const float* st, float* gu_post,
                       float* git);
void lif_step_eval(int64_t m, float tau, float v_th, bool zero_reset,
                   const float* in, float* u_post, float* s_out);
void lif_step_train(int64_t m, float tau, float v_th, bool zero_reset,
                    const float* in, float* u_post, float* u_out, float* s_out);
void lif_step_eval_bias(int64_t m, float tau, float v_th, bool zero_reset,
                        float bias, const float* in, float* u_post,
                        float* s_out);
void affine_lif_step(int64_t n, float mu, float inv_std, float eff, float beta,
                     float tau, float v_th, bool zero_reset, const float* x,
                     float* u_post, float* s_out);
void add_lif_step(int64_t m, float tau, float v_th, bool zero_reset,
                  const float* a, const float* b, float* u_post, float* s_out);
void affine_add(int64_t n, float mu, float inv_std, float eff, float beta,
                bool swap, const float* x, const float* other, float* y);
void adam_step(int64_t n, float lr, float beta1, float beta2, float bc1,
               float bc2, float eps, float decay, const float* g, float* m,
               float* v, float* w);
void sgd_step(int64_t n, float lr, float momentum, float decay, const float* g,
              float* v, float* w);
void gemm_nn_rows(int64_t m0, int64_t m1, int64_t n, int64_t k, int64_t panel,
                  float alpha, const float* a, const float* b, float* c);
void gemm_tn_rows(int64_t m0, int64_t m1, int64_t n, int64_t k, int64_t lda,
                  int64_t panel, float alpha, const float* a, const float* b,
                  float* c);
void gemm_nt_rows(int64_t m0, int64_t m1, int64_t n, int64_t k, float alpha,
                  const float* a, const float* b, float* c);
void dequant_bf16(int64_t n, const uint16_t* src, float* dst);
void gemm_s8_wxs(int64_t m, int64_t n, int64_t k, const int8_t* w,
                 const uint8_t* s, const float* scale, float* c);
void gemm_s8_sxw(int64_t m, int64_t n, int64_t k, const uint8_t* s,
                 const int8_t* w, const float* scale, float* c);

}  // namespace ttsnn::simd::avx2
