#pragma once

/// \file random.h
/// Weight initializers. Conventions match the PyTorch defaults the paper's
/// released training code relies on.

#include "tensor/tensor.h"

namespace ttsnn {

/// Kaiming-normal initialization: N(0, sqrt(2 / fan_in)).
Tensor kaiming_normal(Shape shape, int64_t fan_in, Rng& rng);

/// Xavier-uniform initialization: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
Tensor xavier_uniform(Shape shape, int64_t fan_in, int64_t fan_out, Rng& rng);

}  // namespace ttsnn
