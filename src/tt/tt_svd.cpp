#include "tt/tt_svd.h"

#include <algorithm>

#include "tensor/linalg.h"
#include "tensor/ops.h"

namespace ttsnn {

namespace {

/// Truncated SVD split: A [m, n] ~= U_r * R where U_r is [m, r] with
/// orthonormal columns and R = diag(S_r) V_r^T is [r, n].
struct SvdSplit {
  Tensor left;   ///< [m, r]
  Tensor right;  ///< [r, n]
};

SvdSplit truncated_split(const Tensor& a, int64_t r) {
  Svd f = svd(a);
  const int64_t full = f.s.numel();
  TTSNN_CHECK(r <= full, "truncated_split: rank " << r << " exceeds " << full);
  const int64_t m = a.size(0);
  const int64_t n = a.size(1);
  SvdSplit out;
  out.left = Tensor({m, r});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < r; ++j) out.left.at({i, j}) = f.u.at({i, j});
  }
  out.right = Tensor({r, n});
  for (int64_t j = 0; j < r; ++j) {
    const float s = f.s[j];
    for (int64_t i = 0; i < n; ++i) out.right.at({j, i}) = s * f.v.at({i, j});
  }
  return out;
}

}  // namespace

TTCores tt_svd(const Tensor& dense, int64_t rank) {
  TTSNN_CHECK(dense.dim() == 4, "tt_svd expects [O, I, K, K]");
  const int64_t out_c = dense.size(0);
  const int64_t in_c = dense.size(1);
  const int64_t k = dense.size(2);
  TTSNN_CHECK(dense.size(3) == k && k % 2 == 1,
              "tt_svd expects a square odd kernel, got " << shape_str(dense.shape()));
  const int64_t r = std::min({rank, in_c, out_c});
  TTSNN_CHECK(r >= 1, "tt_svd rank must be >= 1");

  // Circular permute: W [O, I, K, K] -> A [I, K1, K2, O]  (Eq. 3).
  Tensor a = dense.permute({1, 2, 3, 0});

  // Stage 1: unfold [I, K*K*O]; G1 = left factor -> w1.
  SvdSplit s1 = truncated_split(a.reshape({in_c, k * k * out_c}), r);
  // w1[r1, i] = U1[i, r1].
  Tensor w1 = s1.left.transpose2d().reshape({r, in_c, 1, 1});

  // Stage 2: remainder viewed [(r1, K1), K2*O].
  SvdSplit s2 = truncated_split(s1.right.reshape({r * k, k * out_c}), r);
  // U2 rows are (r1, k1), columns r2 -> w2[r2, r1, k1, 0].
  Tensor w2 = s2.left.reshape({r, k, r}).permute({2, 0, 1}).reshape({r, r, k, 1});

  // Stage 3: remainder viewed [(r2, K2), O].
  SvdSplit s3 = truncated_split(s2.right.reshape({r * k, out_c}), r);
  Tensor w3 = s3.left.reshape({r, k, r}).permute({2, 0, 1}).reshape({r, r, 1, k});

  // Final core: R3 [r3, O] -> w4[o, r3].
  Tensor w4 = s3.right.transpose2d().reshape({out_c, r, 1, 1});

  TTCores cores{.in_channels = in_c,
                .out_channels = out_c,
                .kernel = k,
                .rank = r,
                .w1 = std::move(w1),
                .w2 = std::move(w2),
                .w3 = std::move(w3),
                .w4 = std::move(w4)};
  cores.check();
  return cores;
}

double tt_reconstruction_error(const Tensor& dense, const TTCores& cores) {
  Tensor recon = merge_stt(cores);
  TTSNN_CHECK(recon.same_shape(dense), "reconstruction shape mismatch");
  Tensor diff = sub(recon, dense);
  const double denom = dense.norm();
  return denom > 0.0 ? diff.norm() / denom : diff.norm();
}

}  // namespace ttsnn
