#include "tt/vbmf.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/linalg.h"

namespace ttsnn {

namespace {

/// tau(x, alpha) = 0.5 * (x - (1 + alpha) + sqrt((x - (1 + alpha))^2 - 4 alpha));
/// defined for x >= (1 + sqrt(alpha))^2.
double tau(double x, double alpha) {
  const double d = x - (1.0 + alpha);
  return 0.5 * (d + std::sqrt(std::max(0.0, d * d - 4.0 * alpha)));
}

/// EVB free energy as a function of the noise variance (Nakajima et al.,
/// JMLR 2013, Corollary 8; matches the reference pyVBMF implementation).
double evb_objective(double sigma2, int64_t l, int64_t m,
                     const std::vector<double>& s, double residual,
                     double xubar) {
  const double alpha = static_cast<double>(l) / static_cast<double>(m);
  double obj = residual / (static_cast<double>(m) * sigma2);
  for (double sv : s) {
    const double x = sv * sv / (static_cast<double>(m) * sigma2);
    if (x > xubar) {
      const double tz = tau(x, alpha);
      obj += x - tz;                         // term2
      obj += std::log((tz + 1.0) / x);       // term3
      obj += alpha * std::log(tz / alpha + 1.0);  // term4
    } else {
      obj += x - std::log(x);                // term1
    }
  }
  return obj;
}

}  // namespace

VbmfResult evbmf(const Tensor& y, double sigma2) {
  TTSNN_CHECK(y.dim() == 2, "evbmf expects a matrix");
  // Orient so L <= M.
  const bool transposed = y.size(0) > y.size(1);
  const int64_t l = transposed ? y.size(1) : y.size(0);
  const int64_t m = transposed ? y.size(0) : y.size(1);
  TTSNN_CHECK(l >= 1, "evbmf: empty matrix");

  const double alpha = static_cast<double>(l) / static_cast<double>(m);
  const double tauubar = 2.5129 * std::sqrt(alpha);
  const double xubar = (1.0 + tauubar) * (1.0 + alpha / tauubar);

  std::vector<double> s = singular_values(y);  // length l, descending
  // Guard against numerically-zero singular values in the objective.
  const double s_floor = std::max(s.front(), 1.0) * 1e-12;
  for (double& v : s) v = std::max(v, s_floor);

  if (sigma2 <= 0.0) {
    // Bounded search interval from the reference implementation (H = L, so
    // the SVD residual term is zero).
    double sum_s2 = 0.0;
    for (double v : s) sum_s2 += v * v;
    const double upper = sum_s2 / static_cast<double>(l * m);
    const int64_t eh_ub = std::min<int64_t>(
        static_cast<int64_t>(std::ceil(static_cast<double>(l) / (1.0 + alpha))) - 1,
        l - 1);
    double tail_mean = 0.0;
    for (int64_t i = eh_ub; i < l; ++i) tail_mean += s[static_cast<size_t>(i)] *
                                                     s[static_cast<size_t>(i)];
    tail_mean /= static_cast<double>(l - eh_ub);
    const double lower =
        std::max(s[static_cast<size_t>(eh_ub)] * s[static_cast<size_t>(eh_ub)] /
                     (static_cast<double>(m) * xubar),
                 tail_mean / static_cast<double>(m));

    // Dense log-grid scan followed by golden-section refinement.
    const double lo = std::max(lower, 1e-30);
    const double hi = std::max(upper, lo * (1.0 + 1e-9));
    const int grid = 256;
    double best = lo, best_obj = std::numeric_limits<double>::infinity();
    for (int i = 0; i <= grid; ++i) {
      const double x =
          lo * std::pow(hi / lo, static_cast<double>(i) / grid);
      const double obj = evb_objective(x, l, m, s, 0.0, xubar);
      if (obj < best_obj) {
        best_obj = obj;
        best = x;
      }
    }
    // Golden-section around the best grid cell.
    double a = best / std::pow(hi / lo, 1.0 / grid);
    double b = best * std::pow(hi / lo, 1.0 / grid);
    a = std::max(a, lo);
    b = std::min(b, hi);
    const double gr = 0.5 * (std::sqrt(5.0) - 1.0);
    for (int it = 0; it < 60 && (b - a) > 1e-14 * b; ++it) {
      const double x1 = b - gr * (b - a);
      const double x2 = a + gr * (b - a);
      if (evb_objective(x1, l, m, s, 0.0, xubar) <
          evb_objective(x2, l, m, s, 0.0, xubar)) {
        b = x2;
      } else {
        a = x1;
      }
    }
    sigma2 = 0.5 * (a + b);
  }

  // Rank = singular values above the EVB threshold.
  const double threshold =
      std::sqrt(static_cast<double>(m) * sigma2 * (1.0 + tauubar) *
                (1.0 + alpha / tauubar));
  VbmfResult out;
  out.sigma2 = sigma2;
  for (double sv : s) {
    if (sv <= threshold) break;
    // EVB shrinkage estimator for the retained components.
    const double s2 = sv * sv;
    const double t = 1.0 - static_cast<double>(l + m) * sigma2 / s2;
    const double disc =
        t * t - 4.0 * static_cast<double>(l) * m * sigma2 * sigma2 / (s2 * s2);
    out.shrunk.push_back(0.5 * sv * (t + std::sqrt(std::max(0.0, disc))));
    ++out.rank;
  }
  return out;
}

int64_t estimate_tt_rank(const Tensor& conv_weight) {
  TTSNN_CHECK(conv_weight.dim() == 4, "estimate_tt_rank expects [O, I, K, K]");
  const int64_t out_c = conv_weight.size(0);
  const int64_t in_c = conv_weight.size(1);
  const int64_t k = conv_weight.size(2);
  Tensor a = conv_weight.permute({1, 2, 3, 0});  // [I, K, K, O]
  const VbmfResult first = evbmf(a.reshape({in_c, k * k * out_c}));
  const VbmfResult last = evbmf(a.reshape({in_c * k * k, out_c}));
  const int64_t est = std::min(first.rank, last.rank);
  return std::clamp<int64_t>(est, 1, std::min(in_c, out_c));
}

}  // namespace ttsnn
