#pragma once

/// \file tt_svd.h
/// TT-SVD factorization of a dense convolution weight into TTCores
/// (initialization step of Algorithm 1, lines 3-5) following the
/// circular-permute scheme of Gabor & Zdunek [22].

#include "tt/tt_cores.h"

namespace ttsnn {

/// Decomposes dense [O, I, K, K] into TTCores with uniform rank
/// min(rank, I, O) via successive truncated SVDs of the permuted tensor
/// [I, K, K, O]. K must be odd.
TTCores tt_svd(const Tensor& dense, int64_t rank);

/// ||merge_stt(cores) - dense||_F / ||dense||_F.
double tt_reconstruction_error(const Tensor& dense, const TTCores& cores);

}  // namespace ttsnn
