#pragma once

/// \file vbmf.h
/// Empirical Variational Bayesian Matrix Factorization — the global analytic
/// solution of Nakajima et al. [24] — used by Algorithm 1 (line 2) to select
/// near-optimal TT-ranks without cross-validation.
///
/// Given an observed matrix Y = (low-rank signal) + noise, EVBMF analytically
/// estimates the noise variance and returns the number of singular values
/// whose magnitude is explained by signal rather than noise.

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace ttsnn {

struct VbmfResult {
  int64_t rank = 0;       ///< estimated signal rank
  double sigma2 = 0.0;    ///< estimated (or supplied) noise variance
  std::vector<double> shrunk;  ///< EVB-shrunk singular values (size == rank)
};

/// Analytic EVBMF on matrix y. If sigma2 <= 0, the noise variance is
/// estimated by minimizing the EVB free energy over a bounded interval.
VbmfResult evbmf(const Tensor& y, double sigma2 = -1.0);

/// TT-rank estimate for a dense conv weight [O, I, K, K]: EVBMF is applied to
/// the first and last unfoldings of the circular-permuted tensor (the two
/// unfoldings whose ranks bound the uniform TT-rank), and the smaller
/// estimate is returned, clamped to [1, min(I, O)].
int64_t estimate_tt_rank(const Tensor& conv_weight);

}  // namespace ttsnn
