#include "tt/tt_cores.h"

#include "tensor/ops.h"

namespace ttsnn {

int64_t tt_num_params(int64_t in_c, int64_t out_c, int64_t kernel, int64_t rank) {
  return rank * in_c + 2 * kernel * rank * rank + out_c * rank;
}

int64_t TTCores::num_params() const {
  return tt_num_params(in_channels, out_channels, kernel, rank);
}

void TTCores::check() const {
  TTSNN_CHECK(rank > 0 && kernel > 0 && kernel % 2 == 1,
              "TTCores: rank must be positive and kernel odd");
  TTSNN_CHECK(w1.shape() == (Shape{rank, in_channels, 1, 1}),
              "TTCores w1 shape " << shape_str(w1.shape()));
  TTSNN_CHECK(w2.shape() == (Shape{rank, rank, kernel, 1}),
              "TTCores w2 shape " << shape_str(w2.shape()));
  TTSNN_CHECK(w3.shape() == (Shape{rank, rank, 1, kernel}),
              "TTCores w3 shape " << shape_str(w3.shape()));
  TTSNN_CHECK(w4.shape() == (Shape{out_channels, rank, 1, 1}),
              "TTCores w4 shape " << shape_str(w4.shape()));
}

namespace {

/// Contracts a 3-core vertical path: out[o, y, i] = sum_{r1, r2}
/// w4[o, r2] * strip[r2, r1, y] * w1[r1, i], with `strip` either w2 (indexed
/// by dy) or w3 (indexed by dx). Returns [O, K, I].
Tensor contract_strip_path(const TTCores& c, const Tensor& strip) {
  const int64_t r = c.rank;
  const int64_t k = c.kernel;
  // strip is [r2, r1, K, 1] or [r2, r1, 1, K]; flatten to [r2, r1, K] and
  // permute to [r2, K, r1] so a single GEMM against w1 [r1, I] applies.
  Tensor s3 = strip.reshape({r, r, k});
  Tensor s_perm = s3.permute({0, 2, 1}).reshape({r * k, r});  // [(r2, y), r1]
  Tensor w1_mat = c.w1.reshape({r, c.in_channels});           // [r1, I]
  Tensor t1 = matmul(s_perm, w1_mat);                         // [(r2, y), I]
  // out[(o), (y, i)] = w4 [O, r2] x t1 viewed [r2, (y, I)]
  Tensor w4_mat = c.w4.reshape({c.out_channels, r});
  Tensor out = matmul(w4_mat, t1.reshape({r, k * c.in_channels}));
  return out.reshape({c.out_channels, k, c.in_channels});
}

}  // namespace

Tensor merge_stt(const TTCores& c) {
  c.check();
  const int64_t r = c.rank;
  const int64_t k = c.kernel;
  const int64_t in_c = c.in_channels;
  const int64_t out_c = c.out_channels;

  // t1[(r2, y), i] = sum_r1 w2[r2, r1, y] * w1[r1, i]
  Tensor w2_perm = c.w2.reshape({r, r, k}).permute({0, 2, 1}).reshape({r * k, r});
  Tensor t1 = matmul(w2_perm, c.w1.reshape({r, in_c}));  // [(r2, y), I]
  // t2[(r3, x), (y, i)] = sum_r2 w3[r3, r2, x] * t1[r2, (y, i)]
  Tensor w3_perm = c.w3.reshape({r, r, k}).permute({0, 2, 1}).reshape({r * k, r});
  Tensor t2 = matmul(w3_perm, t1.reshape({r, k * in_c}));  // [(r3, x), (y, I)]
  // dense[o, (x, y, i)] = sum_r3 w4[o, r3] * t2[r3, (x, y, i)]
  Tensor t3 = matmul(c.w4.reshape({out_c, r}), t2.reshape({r, k * k * in_c}));
  // [O, x, y, i] -> [O, i, y, x]
  return t3.reshape({out_c, k, k, in_c}).permute({0, 3, 2, 1});
}

Tensor merge_ptt(const TTCores& c) {
  c.check();
  const int64_t k = c.kernel;
  const int64_t center = k / 2;
  Tensor vertical = contract_strip_path(c, c.w2);    // [O, dy, I]
  Tensor horizontal = contract_strip_path(c, c.w3);  // [O, dx, I]

  Tensor dense = Tensor::zeros({c.out_channels, c.in_channels, k, k});
  for (int64_t o = 0; o < c.out_channels; ++o) {
    for (int64_t i = 0; i < c.in_channels; ++i) {
      for (int64_t d = 0; d < k; ++d) {
        dense.at({o, i, d, center}) += vertical.at({o, d, i});
        dense.at({o, i, center, d}) += horizontal.at({o, d, i});
      }
    }
  }
  return dense;
}

Tensor merge_half(const TTCores& c) {
  c.check();
  // half[o, i] = sum_r w4[o, r] * w1[r, i]
  Tensor half = matmul(c.w4.reshape({c.out_channels, c.rank}),
                       c.w1.reshape({c.rank, c.in_channels}));
  return half.reshape({c.out_channels, c.in_channels, 1, 1});
}

}  // namespace ttsnn
