#pragma once

/// \file tt_cores.h
/// Tensor-train cores of a decomposed K x K convolution and the merge
/// (reconstruction) contractions of Algorithm 1 / Eq. (6).
///
/// Following Gabor & Zdunek [22], the dense weight W in R^{O x I x K x K} is
/// circular-permuted to R^{I x K x K x O} and decomposed into four TT-cores,
/// materialized directly as the four sub-convolution weights of Fig. 1:
///
///   w1: [r, I, 1, 1]   pointwise, I -> r
///   w2: [r, r, K, 1]   vertical strip, r -> r
///   w3: [r, r, 1, K]   horizontal strip, r -> r
///   w4: [O, r, 1, 1]   pointwise, r -> O
///
/// The paper uses a single TT-rank r per layer (r1 = r2 = r3 = r), which is
/// what the published VBMF rank lists contain.

#include "tensor/tensor.h"

namespace ttsnn {

struct TTCores {
  int64_t in_channels = 0;
  int64_t out_channels = 0;
  int64_t kernel = 3;  ///< K (square dense kernel; odd)
  int64_t rank = 0;    ///< uniform TT-rank r

  Tensor w1;  ///< [r, I, 1, 1]
  Tensor w2;  ///< [r, r, K, 1]
  Tensor w3;  ///< [r, r, 1, K]
  Tensor w4;  ///< [O, r, 1, 1]

  /// Total trainable scalars: r*I + 2*K*r^2 + O*r.
  int64_t num_params() const;

  /// Validates shapes; throws on inconsistency.
  void check() const;
};

/// Number of TT parameters for given layer dimensions without materializing.
int64_t tt_num_params(int64_t in_c, int64_t out_c, int64_t kernel, int64_t rank);

/// Merges the STT chain w1 -> w2 -> w3 -> w4 into a dense [O, I, K, K] kernel.
/// The sequential composition spans the full K x K support.
Tensor merge_stt(const TTCores& c);

/// Merges the PTT computation (Eq. 6): (w1*w2 + w1*w3)*w4 -> dense kernel
/// with cross-shaped support — "3x3 without the four corner values" (Fig. 1c).
Tensor merge_ptt(const TTCores& c);

/// Merges the half path w1 -> w4 used by HTT's half timesteps into a dense
/// pointwise kernel [O, I, 1, 1].
Tensor merge_half(const TTCores& c);

}  // namespace ttsnn
