#pragma once

/// \file server.h
/// Micro-batching serving front-end over a compiled infer::Engine.
///
/// Single-sample requests ([T, C, H, W]) are queued and coalesced into
/// batches: a dispatcher pops as soon as `max_batch` requests are waiting, or
/// when the oldest request has aged past `max_delay_ms` — the classic
/// throughput/latency trade of a serving system. Batched requests ride one
/// Engine::run call, which amortizes kernel and im2col overhead across the
/// batch; the heavy math inside run() still lands on the shared ThreadPool
/// through the gemm fan-out.
///
/// Dispatchers are dedicated threads rather than pool tasks on purpose: they
/// block on a condition variable waiting for traffic, and a blocked pool
/// worker would steal a compute lane from every gemm in the process. With
/// `num_dispatchers > 1`, several batches are in flight at once — safe
/// because Engine::run is const and thread-safe.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "infer/engine.h"

namespace ttsnn::infer {

struct ServerOptions {
  /// Coalesce at most this many requests into one Engine::run call.
  int64_t max_batch = 8;
  /// Dispatch a partial batch once the oldest queued request is this old.
  double max_delay_ms = 2.0;
  /// Dispatcher threads; each carries one batch at a time.
  int num_dispatchers = 1;
};

struct ServerStats {
  int64_t requests = 0;   ///< samples accepted by submit()/infer()
  int64_t batches = 0;    ///< Engine::run calls issued
  int64_t max_batch = 0;  ///< largest coalesced batch observed
  double mean_batch() const {
    return batches > 0 ? static_cast<double>(requests) /
                             static_cast<double>(batches)
                       : 0.0;
  }
};

class Server {
 public:
  /// The engine must outlive the server. Dispatchers start immediately.
  explicit Server(const Engine& engine, ServerOptions opts = {});
  /// Drains the queue, then joins the dispatchers.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueues one sample [T, C, H, W]; the future resolves to the engine
  /// output for that sample with the batch axis removed (e.g. [T, classes]).
  /// Only same-shaped samples are coalesced into one batched run, so mixed
  /// shapes are served correctly (in separate batches) and a request the
  /// engine rejects fails only the futures of its own shape-group. Throws
  /// if the server is shutting down.
  std::future<Tensor> submit(Tensor x);

  /// Blocking convenience around submit().
  Tensor infer(Tensor x);

  ServerStats stats() const;

  /// Stops accepting work, finishes queued requests, joins dispatchers.
  /// Idempotent; also called by the destructor.
  void shutdown();

 private:
  struct Request {
    Tensor x;
    std::promise<Tensor> promise;
    std::chrono::steady_clock::time_point arrival;
  };

  void dispatcher_loop();
  /// Pops a batch according to the coalescing policy. Returns empty only at
  /// shutdown. Called with `mu_` NOT held.
  std::vector<Request> next_batch();

  const Engine& engine_;
  ServerOptions opts_;
  std::vector<std::thread> dispatchers_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool stop_ = false;
  ServerStats stats_;
};

}  // namespace ttsnn::infer
