#pragma once

/// \file server.h
/// Micro-batching serving front-end over a compiled infer::Engine — now a
/// thin single-shard compatibility wrapper around infer::Router.
///
/// Single-sample requests ([T, C, H, W]) are queued and coalesced into
/// batches: a dispatcher pops as soon as `max_batch` same-shaped requests
/// are waiting, or when a shape group's oldest request has aged past
/// `max_delay_ms` — the classic throughput/latency trade of a serving
/// system. Batched requests ride one Engine::run call, which amortizes
/// kernel and im2col overhead across the batch; the heavy math inside run()
/// still lands on the shared ThreadPool through the gemm fan-out.
///
/// The original Server kept ONE FIFO queue and popped a same-shaped prefix,
/// so mixed-shape traffic head-of-line-blocked: one odd-shaped request at
/// the front stalled every other shape group for a full `max_delay_ms`.
/// Serving is now built on the sharded Router (router.h), which keeps one
/// queue per shape group; Server simply pins `num_shards = 1` (which also
/// disables work stealing — there is nowhere to steal from). New code that
/// wants replica scaling, priority classes, or admission control should hold
/// a Router directly; either front-end serves any input signature the plan
/// admits, compiling each new shape once into the shared program cache
/// (plan_cache.h).

#include <cstdint>
#include <future>

#include "infer/engine.h"
#include "infer/router.h"

namespace ttsnn::infer {

struct ServerOptions {
  /// Coalesce at most this many same-shaped requests into one Engine::run.
  int64_t max_batch = 8;
  /// Dispatch a partial batch once its shape group's oldest request is this
  /// old.
  double max_delay_ms = 2.0;
  /// Dispatcher threads; each carries one batch at a time.
  int num_dispatchers = 1;
};

struct ServerStats {
  int64_t requests = 0;   ///< samples accepted by submit()/infer()
  int64_t batches = 0;    ///< Engine::run calls issued
  int64_t max_batch = 0;  ///< largest coalesced batch observed
  double mean_batch() const {
    return batches > 0 ? static_cast<double>(requests) /
                             static_cast<double>(batches)
                       : 0.0;
  }
};

class Server {
 public:
  /// Dispatchers start immediately. The engine only needs to outlive the
  /// constructor (the router clones the plan; weights stay shared).
  explicit Server(const Engine& engine, ServerOptions opts = {})
      : router_(engine, RouterOptions{.num_shards = 1,
                                      .max_batch = opts.max_batch,
                                      .max_delay_ms = opts.max_delay_ms,
                                      .dispatchers_per_shard =
                                          opts.num_dispatchers}) {}

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueues one sample [T, C, H, W] (all extents > 0); the future resolves
  /// to the engine output for that sample with the batch axis removed (e.g.
  /// [T, classes]). Only same-shaped samples are coalesced into one batched
  /// run, and each shape group flushes on its own deadline, so mixed shapes
  /// are served without blocking each other. A request the engine rejects
  /// fails only the futures of its own batch. Throws if the server is
  /// shutting down.
  std::future<Tensor> submit(Tensor x) { return router_.submit(std::move(x)); }

  /// Blocking convenience around submit().
  Tensor infer(Tensor x) { return router_.infer(std::move(x)); }

  ServerStats stats() const {
    const RouterStats r = router_.stats();
    return ServerStats{.requests = r.requests,
                       .batches = r.batches,
                       .max_batch = r.max_batch};
  }

  /// Stops accepting work, finishes queued requests, joins dispatchers.
  /// Idempotent; also called by the destructor.
  void shutdown() { router_.shutdown(); }

 private:
  Router router_;
};

}  // namespace ttsnn::infer
