#include "infer/plan_cache.h"

#include <algorithm>
#include <utility>

#include "util/failpoint.h"

namespace ttsnn::infer {

namespace {

int64_t shape_bytes(const Shape& s) {
  return static_cast<int64_t>(s.capacity() * sizeof(int64_t));
}

/// Honest metadata accounting for the LRU budget: the layout's per-register
/// vectors plus every exec record. Weights are deliberately absent — they
/// live in the engine's op list, refcounted once across all cached shapes.
int64_t program_bytes(const CompiledProgram& p) {
  int64_t b = static_cast<int64_t>(sizeof(CompiledProgram)) +
              shape_bytes(p.input) +
              static_cast<int64_t>(sizeof(MemoryPlan));
  const MemoryPlan& m = *p.layout;
  for (const Shape& s : m.shape) b += shape_bytes(s);
  b += static_cast<int64_t>((m.offset.capacity() + m.floats.capacity()) *
                            sizeof(int64_t));
  for (const OpExec& e : p.exec) {
    b += static_cast<int64_t>(sizeof(OpExec)) + shape_bytes(e.out_shape) +
         static_cast<int64_t>((e.full_idx.capacity() + e.half_idx.capacity()) *
                              sizeof(int64_t));
  }
  return b;
}

}  // namespace

void split_htt_schedule(const TTConv2d::Options& tt, int64_t t_steps,
                        std::vector<int64_t>& full_idx,
                        std::vector<int64_t>& half_idx) {
  for (int64_t t = 0; t < t_steps; ++t) {
    bool full = true;
    if (tt.mode == TTMode::kHTT && !tt.full_step.empty()) {
      TTSNN_CHECK(t < static_cast<int64_t>(tt.full_step.size()),
                  "infer: HTT schedule too short for timestep " << t);
      full = tt.full_step[static_cast<size_t>(t)];
    }
    (full ? full_idx : half_idx).push_back(t);
  }
}

CompiledProgram compile_program(const std::vector<Op>& ops,
                                const PlanAnalysis& analysis,
                                const Shape& input) {
  CompiledProgram p;
  p.input = input;
  // plan_memory re-runs every shape-transfer function with concrete extents,
  // so any shape the plan cannot serve (pool divisibility, TEBN T, a too-
  // short HTT schedule) throws a labeled error HERE — before the program
  // enters the cache or any kernel runs.
  p.layout =
      std::make_shared<const MemoryPlan>(plan_memory(ops, analysis, input));
  p.exec.reserve(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    OpExec e;
    e.out_shape = p.layout->shape[static_cast<size_t>(op.out)];
    if (analysis.is_alias[i]) {
      e.dest = OpExec::Dest::kAlias;
    } else if (op.kind == Op::Kind::kFlatten) {
      // Flatten INTO the result register: the caller must not receive a
      // view of the recycled workspace (or of its own input).
      e.dest = OpExec::Dest::kMaterialize;
    } else if (op.out == analysis.result_reg) {
      e.dest = OpExec::Dest::kResult;
    } else if (analysis.is_inplace[i]) {
      e.dest = OpExec::Dest::kInPlace;
    } else {
      e.dest = OpExec::Dest::kWorkspace;
      e.offset = p.layout->offset[static_cast<size_t>(op.out)];
    }
    if (op.kind == Op::Kind::kTTHtt ||
        (op.kind == Op::Kind::kTTExact && op.tt.mode == TTMode::kHTT)) {
      e.has_schedule = true;
      split_htt_schedule(op.tt, input[0], e.full_idx, e.half_idx);
    }
    p.exec.push_back(std::move(e));
  }
  for (const Op& op : ops) {  // dtype tag: first quantized plane wins
    if (op.plane.quantized()) {
      p.weight_dtype = op.plane.dtype();
      break;
    }
  }
  p.bytes = program_bytes(p);
  return p;
}

std::shared_ptr<const CompiledProgram> ProgramCache::get(
    const std::vector<Op>& ops, const PlanAnalysis& analysis,
    const Shape& input) {
  std::promise<std::shared_ptr<const CompiledProgram>> compile_slot;
  Future ready;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      if (it->shape == input) {
        ++hits_;
        lru_.splice(lru_.begin(), lru_, it);  // touch for LRU
        ready = it->ready;
        break;
      }
    }
    if (!ready.valid()) {
      ++misses_;
      owner = true;
      Entry e;
      e.shape = input;
      e.ready = compile_slot.get_future().share();
      ready = e.ready;
      lru_.push_front(std::move(e));
    }
  }

  if (!owner) return ready.get();  // warm hit, or join an in-flight compile

  // First miss: compile OUTSIDE the lock, so a cold shape never stalls
  // lookups (or compiles) of other shapes — only same-shape callers wait,
  // on the shared future above.
  std::shared_ptr<const CompiledProgram> prog;
  try {
    // Injected cold-compile fault: propagates to every waiter joined on this
    // shape's future and is NOT cached, like any organic compile failure.
    TTSNN_FAILPOINT("plan_cache.compile");
    prog = std::make_shared<const CompiledProgram>(
        compile_program(ops, analysis, input));
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      lru_.remove_if([&input](const Entry& e) { return e.shape == input; });
    }
    // Waiters joined on the future observe the same error; the entry is
    // gone, so a later identical request retries instead of replaying a
    // cached exception forever.
    compile_slot.set_exception(std::current_exception());
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Entry& e : lru_) {
      if (e.shape == input) {
        e.done = true;
        e.bytes = prog->bytes;
        bytes_ += prog->bytes;
        break;
      }
    }
    if (budget_ > 0) evict_locked(input);
  }
  compile_slot.set_value(prog);
  return prog;
}

void ProgramCache::evict_locked(const Shape& keep) {
  while (bytes_ > budget_ && lru_.size() > 1) {
    // Walk from the LRU end; skip in-flight compiles and the entry that just
    // landed (a budget smaller than one program must still serve).
    auto victim = lru_.end();
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
      if (it->done && !(it->shape == keep)) {
        victim = std::next(it).base();
        break;
      }
    }
    if (victim == lru_.end()) break;
    bytes_ -= victim->bytes;
    lru_.erase(victim);
    ++evictions_;
  }
}

ProgramCacheStats ProgramCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ProgramCacheStats s;
  s.budget_bytes = budget_;
  s.bytes = bytes_;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  for (const Entry& e : lru_) s.entries += e.done ? 1 : 0;
  return s;
}

}  // namespace ttsnn::infer
