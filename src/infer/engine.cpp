#include "infer/engine.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "infer/analysis.h"
#include "infer/plan_cache.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/ops.h"
#include "tensor/simd.h"
#include "util/failpoint.h"

namespace ttsnn::infer {

namespace {

/// Memory provider behind every op kernel. The kernels below are written
/// once against this interface; the two executors differ ONLY in where the
/// returned tensors live. LegacyCtx allocates (the reference path, unchanged
/// behavior); PlannedCtx hands out views of the packed workspace at the
/// offsets the memory planner assigned. Kernel arithmetic — every gemm /
/// simd call, argument for argument, in the same order — is shared, which is
/// what makes the planned executor bit-identical to the legacy one.
struct ExecCtx {
  /// The op's output tensor (register `out`).
  virtual Tensor out(const Shape& s) = 0;
  /// An op-internal temporary (TT pipeline stages, HTT gather planes).
  virtual Tensor temp(const Shape& s) = 0;
  /// The im2col column matrix, reused by every conv lowering in the plan.
  virtual float* col(int64_t elems) = 0;
  /// Raw float scratch (the LIF membrane plane).
  virtual float* raw(int64_t elems) = 0;

  /// Compiled per-op record (set on the planned path): pre-resolved HTT
  /// schedule split, so kernels skip per-call schedule walks. Null on the
  /// legacy path, where kernels derive everything from the tensors.
  const OpExec* exec = nullptr;

 protected:
  ~ExecCtx() = default;
};

/// Reference executor memory: a fresh tensor per output/temp, a grow-only
/// buffer for the column matrix, and one live allocation per raw() call —
/// an op may hold several raw regions at once (LIF membrane plus a bf16
/// dequant buffer), so they must never alias or move under each other.
struct LegacyCtx final : ExecCtx {
  std::vector<float> col_buf;
  std::vector<std::vector<float>> raw_bufs;

  Tensor out(const Shape& s) override { return Tensor::empty(s); }
  Tensor temp(const Shape& s) override { return Tensor::empty(s); }
  float* col(int64_t elems) override {
    if (static_cast<int64_t>(col_buf.size()) < elems) {
      col_buf.resize(static_cast<size_t>(elems));
    }
    return col_buf.data();
  }
  float* raw(int64_t elems) override {
    raw_bufs.emplace_back(static_cast<size_t>(elems));
    return raw_bufs.back().data();
  }
  /// Drops this op's raw scratch between ops, keeping the reference path's
  /// peak at the widest single op rather than the whole plan.
  void end_op() { raw_bufs.clear(); }
};

/// Planned executor memory for ONE op: the output is a pre-computed
/// destination (workspace view, in-place alias of the input, or the owning
/// result tensor), temps/raw bump through the plan's scratch region, col is
/// the plan's fixed column block. The bump cursor is checked against the
/// scratch budget op_scratch_floats() computed — any drift between the
/// analysis enumeration and the kernels is a hard error, not a corruption.
struct PlannedCtx final : ExecCtx {
  const MemoryPlan* plan = nullptr;
  Tensor* ws = nullptr;
  Tensor dest;
  size_t op_index = 0;
  int64_t cursor = 0;

  Tensor out(const Shape& s) override {
    TTSNN_CHECK(dest.defined() && s == dest.shape(),
                "infer: planned shape drift at op " << op_index << ": kernel "
                    << "produced " << shape_str(s) << ", plan says "
                    << shape_str(dest.shape()));
    return dest;
  }
  Tensor temp(const Shape& s) override {
    const int64_t n = shape_numel(s);
    Tensor t = ws->view(plan->scratch_offset + cursor, s);
    bump(n);
    return t;
  }
  float* col(int64_t elems) override {
    TTSNN_CHECK(elems <= plan->col_floats,
                "infer: planned col overrun at op " << op_index);
    return ws->data() + plan->col_offset;
  }
  float* raw(int64_t elems) override {
    float* p = ws->data() + plan->scratch_offset + cursor;
    bump(elems);
    return p;
  }

 private:
  void bump(int64_t elems) {
    cursor += plan_align_up(elems);
    TTSNN_CHECK(cursor <= plan->scratch_floats,
                "infer: planned scratch overrun at op " << op_index);
  }
};

/// Dense convolution over a folded-batch NCHW tensor. Mirrors
/// conv2d_forward() exactly (same im2col lowering, same gemm calls in the
/// same order) so outputs are bit-identical to the Module path; the only
/// difference is where the column matrix and the output live. With a
/// quantized `plane` the weight matrix instead comes from typed storage:
/// bf16 dequantizes into scratch once per call and runs the identical f32
/// gemm; int8 converts each lowered spike tile to transposed u8 and runs the
/// integer spike-GEMM with per-channel rescale. The bias epilogue is shared
/// by all three paths.
Tensor run_conv(const Tensor& x, const Tensor& weight, const WeightPlane& plane,
                const Conv2d::Options& opts, const Tensor& bias, ExecCtx& ctx,
                bool is_out) {
  TTSNN_CHECK(x.dim() >= 3, "infer conv: input must be at least [C, H, W]");
  TTSNN_CHECK(x.size(-3) == opts.in_channels,
              "infer conv: channel mismatch, expected "
                  << opts.in_channels << " in " << shape_str(x.shape()));
  const int64_t chw = x.size(-3) * x.size(-2) * x.size(-1);
  const int64_t batch = x.numel() / chw;
  ConvGeometry g{.in_channels = opts.in_channels,
                 .in_h = x.size(-2),
                 .in_w = x.size(-1),
                 .kernel_h = opts.kernel_h,
                 .kernel_w = opts.kernel_w,
                 .stride_h = opts.resolved_stride_h(),
                 .stride_w = opts.resolved_stride_w(),
                 .pad_h = opts.resolved_pad_h(),
                 .pad_w = opts.resolved_pad_w()};
  const int64_t oh = g.out_h();
  const int64_t ow = g.out_w();
  TTSNN_CHECK(oh > 0 && ow > 0, "infer conv: output would be empty for input "
                                    << shape_str(x.shape()));
  Shape out_shape = x.shape();
  out_shape[out_shape.size() - 3] = opts.out_channels;
  out_shape[out_shape.size() - 2] = oh;
  out_shape[out_shape.size() - 1] = ow;
  // gemm beta=0 writes every element of the (possibly uninitialized) output.
  Tensor out = is_out ? ctx.out(out_shape) : ctx.temp(out_shape);
  // Pointwise stride-1 convolutions (the TT w1/w4 cores and most shortcut
  // projections) skip the im2col lowering entirely: the column matrix would
  // be an identity copy of the input plane, so gemm reads it in place. The
  // gemm call is argument-for-argument identical, keeping bit-identity.
  const bool pointwise = g.pointwise();
  float* col = pointwise ? nullptr : ctx.col(g.col_rows() * g.col_cols());
  // Typed-plane weight resolution (scratch terms mirrored by see_plane in
  // analysis.cpp). The f32 path reads the tensor in place — its gemm call is
  // argument-for-argument the historical one.
  const float* wf = nullptr;
  uint8_t* su8 = nullptr;
  if (!plane.quantized()) {
    wf = weight.data();
  } else if (plane.dtype() == WeightDtype::kBf16) {
    float* wbuf = ctx.raw(plane.numel());
    simd::dequant_bf16(plane.numel(), plane.bf16_data(), wbuf);
    wf = wbuf;
  } else {
    su8 = reinterpret_cast<uint8_t*>(
        ctx.raw((g.col_rows() * g.col_cols() + 3) / 4));
  }
  const int64_t in_stride = opts.in_channels * g.in_h * g.in_w;
  const int64_t out_stride = opts.out_channels * oh * ow;
  for (int64_t b = 0; b < batch; ++b) {
    const float* lowered;
    if (pointwise) {
      lowered = x.data() + b * in_stride;
    } else {
      im2col(x.data() + b * in_stride, g, col);
      lowered = col;
    }
    if (su8 != nullptr) {
      simd::spikes_to_u8_t(g.col_rows(), g.col_cols(), lowered, su8);
      simd::gemm_s8_wxs(opts.out_channels, g.col_cols(), g.col_rows(),
                        plane.int8_data(), su8, plane.scales().data(),
                        out.data() + b * out_stride);
    } else {
      gemm(false, false, opts.out_channels, g.col_cols(), g.col_rows(), 1.0F,
           wf, lowered, 0.0F, out.data() + b * out_stride);
    }
  }
  if (bias.defined()) {
    const float* bb = bias.data();
    float* o = out.data();
    const int64_t hw = oh * ow;
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t c = 0; c < opts.out_channels; ++c) {
        float* plane = o + (b * opts.out_channels + c) * hw;
        const float bv = bb[c];
        for (int64_t i = 0; i < hw; ++i) plane[i] += bv;
      }
    }
  }
  return out;
}

/// HTT schedule split for one execution: the compiled program's pre-resolved
/// index lists when this is a planned run, else (legacy path) a fresh split
/// via the shared split_htt_schedule — the same function program compilation
/// uses, so the two paths can never disagree.
struct ScheduleSplit {
  const std::vector<int64_t>* full = nullptr;
  const std::vector<int64_t>* half = nullptr;
  std::vector<int64_t> full_local, half_local;

  ScheduleSplit(const Op& op, int64_t t_steps, const ExecCtx& ctx) {
    if (ctx.exec != nullptr && ctx.exec->has_schedule) {
      full = &ctx.exec->full_idx;
      half = &ctx.exec->half_idx;
      return;
    }
    split_htt_schedule(op.tt, t_steps, full_local, half_local);
    full = &full_local;
    half = &half_local;
  }
};

/// gather_steps into a ctx temp; undefined tensor for an empty index list
/// (matching gather_steps), so the scratch budget only charges non-empty
/// splits — in lockstep with op_scratch_floats().
Tensor gather_steps_ctx(const Tensor& x, const std::vector<int64_t>& idx,
                        ExecCtx& ctx) {
  if (idx.empty()) return {};
  Shape s = x.shape();
  s[0] = static_cast<int64_t>(idx.size());
  Tensor out = ctx.temp(s);
  gather_steps_into(x, idx, out);
  return out;
}

/// Unmerged TT pipeline — reproduces eval-mode TTConv2d::forward bit-for-bit
/// (the PTT branches run sequentially here; the training path computes them
/// into separate buffers before the same add, so the bits agree).
Tensor run_tt_exact(const Op& op, const Tensor& x, ExecCtx& ctx) {
  const Tensor none;
  const WeightPlane f32;  // exact-mode TT cores always stay f32
  Tensor o1 = run_conv(x, op.w1, f32, op.tt_w1_opts, none, ctx, false);
  auto ptt_path = [&](const Tensor& in, bool is_out) {
    Tensor a = run_conv(in, op.w2, f32, op.tt_w2_opts, none, ctx, false);
    Tensor b = run_conv(in, op.w3, f32, op.tt_w3_opts, none, ctx, false);
    a.add_(b);  // in place: a is this call's own conv output
    return run_conv(a, op.w4, f32, op.tt_w4_opts, none, ctx, is_out);
  };
  switch (op.tt.mode) {
    case TTMode::kSTT: {
      Tensor z2 = run_conv(o1, op.w2, f32, op.tt_w2_opts, none, ctx, false);
      Tensor z3 = run_conv(z2, op.w3, f32, op.tt_w3_opts, none, ctx, false);
      return run_conv(z3, op.w4, f32, op.tt_w4_opts, none, ctx, true);
    }
    case TTMode::kPTT:
      return ptt_path(o1, true);
    case TTMode::kHTT: {
      TTSNN_CHECK(o1.dim() == 5, "infer HTT expects [T, N, C, H, W]");
      ScheduleSplit split(op, o1.size(0), ctx);
      Tensor full_x = gather_steps_ctx(o1, *split.full, ctx);
      Tensor half_x = gather_steps_ctx(o1, *split.half, ctx);
      Tensor y_full, y_half;
      if (full_x.defined()) y_full = ptt_path(full_x, false);
      if (half_x.defined()) {
        y_half =
            run_conv(half_x, op.w4, f32, op.tt_w4_half_opts, none, ctx, false);
      }
      TTSNN_CHECK(y_full.defined() || y_half.defined(),
                  "infer HTT: empty schedule");
      Shape out_shape = (y_full.defined() ? y_full : y_half).shape();
      out_shape[0] = o1.size(0);
      Tensor out = ctx.out(out_shape);  // scatter covers every step
      if (y_full.defined()) scatter_steps(out, y_full, *split.full);
      if (y_half.defined()) scatter_steps(out, y_half, *split.half);
      return out;
    }
  }
  TTSNN_CHECK(false, "unreachable");
  return {};
}

/// Merged HTT: cross kernel on full steps, merged pointwise on half steps
/// (Algorithm 1 lines 20-22 applied per schedule entry). Both kernels use
/// stride s, so all steps agree on the output shape.
Tensor run_tt_htt_merged(const Op& op, const Tensor& x, ExecCtx& ctx) {
  TTSNN_CHECK(x.dim() == 5, "infer HTT expects [T, N, C, H, W]");
  ScheduleSplit split(op, x.size(0), ctx);
  Tensor full_x = gather_steps_ctx(x, *split.full, ctx);
  Tensor half_x = gather_steps_ctx(x, *split.half, ctx);
  Tensor y_full, y_half;
  if (full_x.defined()) {
    y_full = run_conv(full_x, op.full_kernel, op.plane, op.conv, op.bias, ctx,
                      false);
  }
  if (half_x.defined()) {
    y_half = run_conv(half_x, op.half_kernel, op.half_plane, op.half_conv,
                      op.bias, ctx, false);
  }
  TTSNN_CHECK(y_full.defined() || y_half.defined(), "infer HTT: empty schedule");
  Shape out_shape = (y_full.defined() ? y_full : y_half).shape();
  out_shape[0] = x.size(0);
  Tensor out = ctx.out(out_shape);  // scatter covers every step
  if (y_full.defined()) scatter_steps(out, y_full, *split.full);
  if (y_half.defined()) scatter_steps(out, y_half, *split.half);
  return out;
}

/// Inference BatchNorm. Statistics are the stored running stats, so this is
/// an affine per (timestep, channel) — the arithmetic matches BatchNorm's
/// eval forward expression-for-expression for bit identity. simd::affine
/// reads each element before writing the same position, so the output may
/// alias the input (the planned executor's in-place path).
Tensor run_affine(const Op& op, const Tensor& x, ExecCtx& ctx) {
  TTSNN_CHECK(x.dim() == 5, "infer affine expects [T, N, C, H, W], got "
                                << shape_str(x.shape()));
  const int64_t t_steps = x.size(0);
  const int64_t n = x.size(1);
  const int64_t c = x.size(2);
  const int64_t hw = x.size(3) * x.size(4);
  TTSNN_CHECK(c == op.bn_gamma.numel(), "infer affine channel mismatch: " << c);
  const bool tebn = op.bn_mode == BatchNorm::Mode::kTebn;
  if (tebn) {
    TTSNN_CHECK(t_steps == op.bn_timesteps,
                "infer affine: TEBN configured for T=" << op.bn_timesteps
                                                       << ", got " << t_steps);
  }
  Tensor out = ctx.out(x.shape());
  const float* in = x.data();
  float* y = out.data();
  const float* g_gamma = op.bn_gamma.data();
  const float* g_beta = op.bn_beta.data();
  const float* g_mean = op.bn_mean.data();
  const float* g_inv_std = op.bn_inv_std.data();
  for (int64_t ch = 0; ch < c; ++ch) {
    const float inv_std = g_inv_std[ch];
    const float mu = g_mean[ch];
    for (int64_t t = 0; t < t_steps; ++t) {
      const float step = tebn ? op.bn_step_scale[t] : 1.0F;
      const float eff = g_gamma[ch] * op.bn_alpha_vth * step;
      for (int64_t b = 0; b < n; ++b) {
        const int64_t base = (((t * n + b) * c) + ch) * hw;
        // Same affine kernel (and therefore the same bits) as BatchNorm's
        // eval forward.
        simd::affine(hw, mu, inv_std, eff, g_beta[ch], in + base, y + base);
      }
    }
  }
  return out;
}

/// LIF spikes via the stateless eval kernel; the membrane plane comes from
/// ctx scratch. lif_step_eval is read-before-write per element, so the
/// output may alias the input.
Tensor run_lif(const Op& op, const Tensor& x, ExecCtx& ctx) {
  TTSNN_CHECK(x.dim() >= 2,
              "LIF expects [T, N, ...], got " << shape_str(x.shape()));
  Tensor out = ctx.out(x.shape());
  float* u_post = ctx.raw(x.numel() / x.size(0));
  lif_forward_eval_into(op.lif, x, out, u_post);
  return out;
}

/// Non-overlapping average pool; mirrors AvgPool2d::forward.
Tensor run_avg_pool(const Tensor& x, int64_t kernel, ExecCtx& ctx) {
  TTSNN_CHECK(x.dim() >= 3, "infer pool expects [..., C, H, W]");
  const int64_t h = x.size(-2);
  const int64_t w = x.size(-1);
  TTSNN_CHECK(h % kernel == 0 && w % kernel == 0,
              "infer pool requires divisible spatial dims, got "
                  << h << "x" << w << " k=" << kernel);
  const int64_t oh = h / kernel;
  const int64_t ow = w / kernel;
  const int64_t planes = x.numel() / (h * w);
  Shape out_shape = x.shape();
  out_shape[out_shape.size() - 2] = oh;
  out_shape[out_shape.size() - 1] = ow;
  Tensor out = ctx.out(out_shape);  // every output element is written below
  const float* in = x.data();
  float* o = out.data();
  const float inv = 1.0F / static_cast<float>(kernel * kernel);
  for (int64_t p = 0; p < planes; ++p) {
    const float* plane = in + p * h * w;
    float* oplane = o + p * oh * ow;
    for (int64_t y = 0; y < oh; ++y) {
      for (int64_t xx = 0; xx < ow; ++xx) {
        float s = 0.0F;
        for (int64_t ky = 0; ky < kernel; ++ky) {
          const float* row = plane + (y * kernel + ky) * w + xx * kernel;
          for (int64_t kx = 0; kx < kernel; ++kx) s += row[kx];
        }
        oplane[y * ow + xx] = s * inv;
      }
    }
  }
  return out;
}

/// Global average pool [T,N,C,H,W] -> [T,N,C]; mirrors GlobalAvgPool.
Tensor run_global_pool(const Tensor& x, ExecCtx& ctx) {
  TTSNN_CHECK(x.dim() == 5, "infer global pool expects [T, N, C, H, W]");
  const int64_t hw = x.size(3) * x.size(4);
  const int64_t rows = x.numel() / hw;
  Tensor out = ctx.out({x.size(0), x.size(1), x.size(2)});
  const float* in = x.data();
  float* o = out.data();
  const float inv = 1.0F / static_cast<float>(hw);
  for (int64_t r = 0; r < rows; ++r) {
    double s = 0.0;
    const float* row = in + r * hw;
    for (int64_t i = 0; i < hw; ++i) s += row[i];
    o[r] = static_cast<float>(s) * inv;
  }
  return out;
}

/// Dense head; mirrors Linear::forward (weight [out, in]). Quantized planes
/// follow the run_conv pattern: bf16 dequantizes into scratch then runs the
/// identical f32 gemm; int8 converts the spike rows to u8 and runs the
/// integer GEMM in its linear (trans_b) orientation.
Tensor run_linear(const Op& op, const Tensor& x, ExecCtx& ctx) {
  const bool planed = op.plane.quantized();
  const int64_t out_f = planed ? op.plane.rows() : op.weight.size(0);
  const int64_t in_f = planed ? op.plane.cols() : op.weight.size(1);
  TTSNN_CHECK(x.size(-1) == in_f, "infer linear expected last dim "
                                      << in_f << ", got " << shape_str(x.shape()));
  const int64_t b = x.numel() / in_f;
  Shape out_shape = x.shape();
  out_shape[out_shape.size() - 1] = out_f;
  Tensor out = ctx.out(out_shape);  // gemm beta=0 writes every element
  if (planed && op.plane.dtype() == WeightDtype::kInt8) {
    uint8_t* su8 = reinterpret_cast<uint8_t*>(ctx.raw((b * in_f + 3) / 4));
    simd::spikes_to_u8(b * in_f, x.data(), su8);
    simd::gemm_s8_sxw(b, out_f, in_f, su8, op.plane.int8_data(),
                      op.plane.scales().data(), out.data());
  } else {
    const float* wf;
    if (planed) {  // bf16: dequant once, then the identical f32 gemm
      float* wbuf = ctx.raw(op.plane.numel());
      simd::dequant_bf16(op.plane.numel(), op.plane.bf16_data(), wbuf);
      wf = wbuf;
    } else {
      wf = op.weight.data();
    }
    gemm(false, true, b, out_f, in_f, 1.0F, x.data(), wf, 0.0F, out.data());
  }
  if (op.bias.defined()) {
    float* p = out.data();
    const float* bb = op.bias.data();
    for (int64_t i = 0; i < b; ++i) {
      for (int64_t j = 0; j < out_f; ++j) p[i * out_f + j] += bb[j];
    }
  }
  return out;
}

/// Residual join: copy + axpy, the same kernel sequence as ops.h add()
/// (clone then axpy_), so the bits agree. When the destination aliases x
/// (the planned in-place path) the copy is skipped.
Tensor run_add(const Tensor& x, const Tensor& x2, ExecCtx& ctx) {
  TTSNN_CHECK(x.same_shape(x2), "elementwise shape mismatch "
                                    << shape_str(x.shape()) << " vs "
                                    << shape_str(x2.shape()));
  Tensor out = ctx.out(x.shape());
  if (out.data() != x.data()) {
    std::copy(x.data(), x.data() + x.numel(), out.data());
  }
  out.axpy_(1.0F, x2);
  return out;
}

/// Fused conv + LIF epilogue. Each folded-batch tile b = t*N + n is lowered
/// and multiplied exactly as run_conv (same im2col, same gemm arguments), but
/// the LIF step — with the conv bias folded into its membrane input — runs in
/// place on the tile straight after its gemm, while it is still cache-hot.
/// The tile loop ascends t-major, which IS the membrane recurrence order, and
/// lif_step_eval reads each element before writing the spike over it, so the
/// pre-activation never reaches a second buffer.
Tensor run_conv_lif(const Op& op, const Tensor& x, ExecCtx& ctx) {
  const Conv2d::Options& opts = op.conv;
  TTSNN_CHECK(x.dim() == 5, "infer conv+lif expects [T, N, C, H, W], got "
                                << shape_str(x.shape()));
  TTSNN_CHECK(x.size(2) == opts.in_channels,
              "infer conv+lif: channel mismatch, expected "
                  << opts.in_channels << " in " << shape_str(x.shape()));
  ConvGeometry g{.in_channels = opts.in_channels,
                 .in_h = x.size(3),
                 .in_w = x.size(4),
                 .kernel_h = opts.kernel_h,
                 .kernel_w = opts.kernel_w,
                 .stride_h = opts.resolved_stride_h(),
                 .stride_w = opts.resolved_stride_w(),
                 .pad_h = opts.resolved_pad_h(),
                 .pad_w = opts.resolved_pad_w()};
  const int64_t oh = g.out_h();
  const int64_t ow = g.out_w();
  TTSNN_CHECK(oh > 0 && ow > 0,
              "infer conv+lif: output would be empty for input "
                  << shape_str(x.shape()));
  const int64_t t_steps = x.size(0);
  const int64_t n = x.size(1);
  Tensor out = ctx.out({t_steps, n, opts.out_channels, oh, ow});
  const bool pointwise = g.pointwise();
  float* col = pointwise ? nullptr : ctx.col(g.col_rows() * g.col_cols());
  const int64_t in_stride = opts.in_channels * g.in_h * g.in_w;
  const int64_t out_stride = opts.out_channels * oh * ow;
  float* u_post = ctx.raw(n * out_stride);
  std::fill(u_post, u_post + n * out_stride, 0.0F);
  // Typed-plane resolution after the membrane buffer, matching the scratch
  // term order of op_footprint's kConvLif case.
  const float* wf = nullptr;
  uint8_t* su8 = nullptr;
  if (!op.plane.quantized()) {
    wf = op.weight.data();
  } else if (op.plane.dtype() == WeightDtype::kBf16) {
    float* wbuf = ctx.raw(op.plane.numel());
    simd::dequant_bf16(op.plane.numel(), op.plane.bf16_data(), wbuf);
    wf = wbuf;
  } else {
    su8 = reinterpret_cast<uint8_t*>(
        ctx.raw((g.col_rows() * g.col_cols() + 3) / 4));
  }
  const int64_t hw = oh * ow;
  const float tau = op.lif.tau;
  const float v_th = op.lif.v_th;
  const bool zero_reset = op.lif.reset == ResetMode::kZero;
  for (int64_t b = 0; b < t_steps * n; ++b) {
    const float* lowered;
    if (pointwise) {
      lowered = x.data() + b * in_stride;
    } else {
      im2col(x.data() + b * in_stride, g, col);
      lowered = col;
    }
    float* tile = out.data() + b * out_stride;
    if (su8 != nullptr) {
      simd::spikes_to_u8_t(g.col_rows(), g.col_cols(), lowered, su8);
      simd::gemm_s8_wxs(opts.out_channels, g.col_cols(), g.col_rows(),
                        op.plane.int8_data(), su8, op.plane.scales().data(),
                        tile);
    } else {
      gemm(false, false, opts.out_channels, g.col_cols(), g.col_rows(), 1.0F,
           wf, lowered, 0.0F, tile);
    }
    float* u = u_post + (b % n) * out_stride;
    if (op.bias.defined()) {
      // Per channel plane, so the scalar bias folds into the membrane input
      // with the exact expression of the unfused bias pass.
      const float* bb = op.bias.data();
      for (int64_t c = 0; c < opts.out_channels; ++c) {
        simd::lif_step_eval_bias(hw, tau, v_th, zero_reset, bb[c],
                                 tile + c * hw, u + c * hw, tile + c * hw);
      }
    } else {
      simd::lif_step_eval(out_stride, tau, v_th, zero_reset, tile, u, tile);
    }
  }
  return out;
}

/// Fused inference-BN affine + LIF step. Same ch / t / b loop nest as
/// run_affine; each (ch, b) plane sees t ascending — the membrane recurrence
/// order. affine_lif_step reads x before writing the spike at the same
/// position, so the output may alias the input (the in-place path).
Tensor run_affine_lif(const Op& op, const Tensor& x, ExecCtx& ctx) {
  TTSNN_CHECK(x.dim() == 5, "infer affine+lif expects [T, N, C, H, W], got "
                                << shape_str(x.shape()));
  const int64_t t_steps = x.size(0);
  const int64_t n = x.size(1);
  const int64_t c = x.size(2);
  const int64_t hw = x.size(3) * x.size(4);
  TTSNN_CHECK(c == op.bn_gamma.numel(),
              "infer affine+lif channel mismatch: " << c);
  const bool tebn = op.bn_mode == BatchNorm::Mode::kTebn;
  if (tebn) {
    TTSNN_CHECK(t_steps == op.bn_timesteps,
                "infer affine+lif: TEBN configured for T="
                    << op.bn_timesteps << ", got " << t_steps);
  }
  Tensor out = ctx.out(x.shape());
  float* u_post = ctx.raw(x.numel() / t_steps);
  std::fill(u_post, u_post + x.numel() / t_steps, 0.0F);
  const float tau = op.lif.tau;
  const float v_th = op.lif.v_th;
  const bool zero_reset = op.lif.reset == ResetMode::kZero;
  const float* in = x.data();
  float* y = out.data();
  const float* g_gamma = op.bn_gamma.data();
  const float* g_beta = op.bn_beta.data();
  const float* g_mean = op.bn_mean.data();
  const float* g_inv_std = op.bn_inv_std.data();
  for (int64_t ch = 0; ch < c; ++ch) {
    const float inv_std = g_inv_std[ch];
    const float mu = g_mean[ch];
    for (int64_t t = 0; t < t_steps; ++t) {
      const float step = tebn ? op.bn_step_scale[t] : 1.0F;
      const float eff = g_gamma[ch] * op.bn_alpha_vth * step;
      for (int64_t b = 0; b < n; ++b) {
        const int64_t base = (((t * n + b) * c) + ch) * hw;
        simd::affine_lif_step(hw, mu, inv_std, eff, g_beta[ch], tau, v_th,
                              zero_reset, in + base,
                              u_post + (b * c + ch) * hw, y + base);
      }
    }
  }
  return out;
}

/// Fused residual join + LIF step: one pass per timestep, u = tau * u_post +
/// (x + 1*x2). The output may alias x (never x2 — the analysis keeps in2's
/// storage group separate from the in-place group).
Tensor run_add_lif(const Op& op, const Tensor& x, const Tensor& x2,
                   ExecCtx& ctx) {
  TTSNN_CHECK(x.same_shape(x2), "elementwise shape mismatch "
                                    << shape_str(x.shape()) << " vs "
                                    << shape_str(x2.shape()));
  TTSNN_CHECK(x.dim() >= 2,
              "infer add+lif expects [T, N, ...], got " << shape_str(x.shape()));
  Tensor out = ctx.out(x.shape());
  const int64_t t_steps = x.size(0);
  const int64_t m = x.numel() / t_steps;
  float* u_post = ctx.raw(m);
  std::fill(u_post, u_post + m, 0.0F);
  for (int64_t t = 0; t < t_steps; ++t) {
    simd::add_lif_step(m, op.lif.tau, op.lif.v_th,
                       op.lif.reset == ResetMode::kZero, x.data() + t * m,
                       x2.data() + t * m, u_post, out.data() + t * m);
  }
  return out;
}

/// Fused inference-BN affine + residual join: x is the affine's input, x2 the
/// other add operand, op.fused_swap the original operand order. The output
/// may alias x (never x2).
Tensor run_affine_add(const Op& op, const Tensor& x, const Tensor& x2,
                      ExecCtx& ctx) {
  TTSNN_CHECK(x.dim() == 5, "infer affine+add expects [T, N, C, H, W], got "
                                << shape_str(x.shape()));
  TTSNN_CHECK(x.same_shape(x2), "elementwise shape mismatch "
                                    << shape_str(x.shape()) << " vs "
                                    << shape_str(x2.shape()));
  const int64_t t_steps = x.size(0);
  const int64_t n = x.size(1);
  const int64_t c = x.size(2);
  const int64_t hw = x.size(3) * x.size(4);
  TTSNN_CHECK(c == op.bn_gamma.numel(),
              "infer affine+add channel mismatch: " << c);
  const bool tebn = op.bn_mode == BatchNorm::Mode::kTebn;
  if (tebn) {
    TTSNN_CHECK(t_steps == op.bn_timesteps,
                "infer affine+add: TEBN configured for T="
                    << op.bn_timesteps << ", got " << t_steps);
  }
  Tensor out = ctx.out(x.shape());
  const float* in = x.data();
  const float* other = x2.data();
  float* y = out.data();
  const float* g_gamma = op.bn_gamma.data();
  const float* g_beta = op.bn_beta.data();
  const float* g_mean = op.bn_mean.data();
  const float* g_inv_std = op.bn_inv_std.data();
  for (int64_t ch = 0; ch < c; ++ch) {
    const float inv_std = g_inv_std[ch];
    const float mu = g_mean[ch];
    for (int64_t t = 0; t < t_steps; ++t) {
      const float step = tebn ? op.bn_step_scale[t] : 1.0F;
      const float eff = g_gamma[ch] * op.bn_alpha_vth * step;
      for (int64_t b = 0; b < n; ++b) {
        const int64_t base = (((t * n + b) * c) + ch) * hw;
        simd::affine_add(hw, mu, inv_std, eff, g_beta[ch], op.fused_swap,
                         in + base, other + base, y + base);
      }
    }
  }
  return out;
}

Tensor exec_op(const Op& op, const Tensor& x, const Tensor& x2, ExecCtx& ctx) {
  switch (op.kind) {
    case Op::Kind::kConv:
      return run_conv(x, op.weight, op.plane, op.conv, op.bias, ctx, true);
    case Op::Kind::kTTExact:
      return run_tt_exact(op, x, ctx);
    case Op::Kind::kTTHtt:
      return run_tt_htt_merged(op, x, ctx);
    case Op::Kind::kAffine:
      return run_affine(op, x, ctx);
    case Op::Kind::kLif:
      return run_lif(op, x, ctx);
    case Op::Kind::kAvgPool:
      return run_avg_pool(x, op.pool_kernel, ctx);
    case Op::Kind::kGlobalPool:
      return run_global_pool(x, ctx);
    case Op::Kind::kFlatten:
      return x.reshape({x.size(0), x.size(1), -1});
    case Op::Kind::kLinear:
      return run_linear(op, x, ctx);
    case Op::Kind::kAdd:
      return run_add(x, x2, ctx);
    case Op::Kind::kConvLif:
      return run_conv_lif(op, x, ctx);
    case Op::Kind::kAffineLif:
      return run_affine_lif(op, x, ctx);
    case Op::Kind::kAddLif:
      return run_add_lif(op, x, x2, ctx);
    case Op::Kind::kAffineAdd:
      return run_affine_add(op, x, x2, ctx);
  }
  TTSNN_CHECK(false, "unreachable");
  return {};
}

}  // namespace

const char* op_kind_name(Op::Kind k) {
  switch (k) {
    case Op::Kind::kConv:
      return "conv";
    case Op::Kind::kTTExact:
      return "tt";
    case Op::Kind::kTTHtt:
      return "htt";
    case Op::Kind::kAffine:
      return "affine";
    case Op::Kind::kLif:
      return "lif";
    case Op::Kind::kAvgPool:
      return "pool";
    case Op::Kind::kGlobalPool:
      return "gpool";
    case Op::Kind::kFlatten:
      return "flatten";
    case Op::Kind::kLinear:
      return "linear";
    case Op::Kind::kAdd:
      return "add";
    case Op::Kind::kConvLif:
      return "conv+lif";
    case Op::Kind::kAffineLif:
      return "affine+lif";
    case Op::Kind::kAddLif:
      return "add+lif";
    case Op::Kind::kAffineAdd:
      return "affine+add";
  }
  return "?";
}

Tensor Engine::run(const Tensor& x) const {
  TTSNN_FAILPOINT("engine.run");
  if (!opts_.static_plan) return run_legacy(x);
  Tensor workspace;
  return run_planned(x, workspace);
}

Tensor Engine::run(const Tensor& x, Tensor& workspace) const {
  TTSNN_FAILPOINT("engine.run");
  if (!opts_.static_plan) return run_legacy(x);
  return run_planned(x, workspace);
}

std::shared_ptr<const CompiledProgram> Engine::program(
    const Shape& input) const {
  TTSNN_CHECK(analysis_ && programs_,
              "infer::Engine::program on an unsealed engine");
  return programs_->get(ops_, *analysis_, input);
}

std::shared_ptr<const MemoryPlan> Engine::memory_plan(
    const Shape& input) const {
  // The aliasing constructor keeps the whole program alive through the
  // layout handle, so layout-only callers cannot dangle after an eviction.
  std::shared_ptr<const CompiledProgram> prog = program(input);
  return {prog, prog->layout.get()};
}

ProgramCacheStats Engine::cache_stats() const {
  TTSNN_CHECK(programs_, "infer::Engine::cache_stats on an unsealed engine");
  return programs_->stats();
}

Shape Engine::input_signature() const {
  TTSNN_CHECK(analysis_, "infer::Engine::input_signature on an unsealed engine");
  return analysis_->sym_shape[0];
}

Tensor Engine::run_legacy(const Tensor& x) const {
  TTSNN_CHECK(!ops_.empty(), "infer::Engine::run on an empty plan");
  TTSNN_CHECK(x.dim() == 5, "infer::Engine::run expects [T, N, C, H, W], got "
                                << shape_str(x.shape()));
  LegacyCtx ctx;
  std::vector<Tensor> regs(static_cast<size_t>(num_regs_));
  regs[0] = x;
  for (size_t i = 0; i < ops_.size(); ++i) {
    const Op& op = ops_[i];
    const Tensor& a = regs[static_cast<size_t>(op.in)];
    static const Tensor kNone;
    const Tensor& b = op.in2 >= 0 ? regs[static_cast<size_t>(op.in2)] : kNone;
    TTSNN_CHECK(a.defined(), "infer: op " << i << " reads an undefined register");
    Tensor y = exec_op(op, a, b, ctx);
    ctx.end_op();
    // Eagerly release registers whose last reader just ran, so peak memory is
    // the widest live set (e.g. a residual input), not the whole history.
    for (int r : {op.in, op.in2}) {
      if (r >= 0 && last_use_[static_cast<size_t>(r)] == static_cast<int>(i)) {
        regs[static_cast<size_t>(r)] = Tensor();
      }
    }
    regs[static_cast<size_t>(op.out)] = std::move(y);
  }
  return regs[static_cast<size_t>(result_reg_)];
}

Tensor Engine::run_planned(const Tensor& x, Tensor& workspace) const {
  TTSNN_CHECK(!ops_.empty(), "infer::Engine::run on an empty plan");
  TTSNN_CHECK(x.dim() == 5, "infer::Engine::run expects [T, N, C, H, W], got "
                                << shape_str(x.shape()));
  // One cache lookup per call resolves EVERYTHING shape-dependent: the packed
  // layout, each op's destination, and the HTT schedule splits. The op loop
  // below only follows the precomputed records.
  const std::shared_ptr<const CompiledProgram> prog = program(x.shape());
  const MemoryPlan* plan = prog->layout.get();
  if (plan->total_floats > 0 &&
      (!workspace.defined() || workspace.numel() < plan->total_floats)) {
    workspace = Tensor::empty({plan->total_floats});
  }
  std::vector<Tensor> regs(static_cast<size_t>(num_regs_));
  regs[0] = x;
  for (size_t i = 0; i < ops_.size(); ++i) {
    const Op& op = ops_[i];
    const OpExec& ex = prog->exec[i];
    const size_t out = static_cast<size_t>(op.out);
    Tensor& a = regs[static_cast<size_t>(op.in)];
    TTSNN_CHECK(a.defined(), "infer: op " << i << " reads an undefined register");
    if (ex.dest == OpExec::Dest::kAlias) {
      // kFlatten view — no kernel, no memory: reshare the input buffer.
      regs[out] = a.reshape(ex.out_shape);
      continue;
    }
    if (ex.dest == OpExec::Dest::kMaterialize) {
      // Flatten INTO the result register: the caller must not receive a view
      // of the recycled workspace (or of its own input), so materialize.
      Tensor y = Tensor::empty(ex.out_shape);
      std::copy(a.data(), a.data() + a.numel(), y.data());
      regs[out] = std::move(y);
      continue;
    }
    PlannedCtx ctx;
    ctx.plan = plan;
    ctx.ws = &workspace;
    ctx.op_index = i;
    ctx.exec = &ex;
    switch (ex.dest) {
      case OpExec::Dest::kResult:
        ctx.dest = Tensor::empty(ex.out_shape);  // the caller owns this
        break;
      case OpExec::Dest::kInPlace:
        ctx.dest = a.reshape(ex.out_shape);  // write over the dying input
        break;
      default:
        ctx.dest = workspace.view(ex.offset, ex.out_shape);
        break;
    }
    static const Tensor kNone;
    const Tensor& b = op.in2 >= 0 ? regs[static_cast<size_t>(op.in2)] : kNone;
    regs[out] = exec_op(op, a, b, ctx);
  }
  return regs[static_cast<size_t>(result_reg_)];
}

void Engine::seal() {
  analysis_ = std::make_shared<const PlanAnalysis>(
      analyze_plan(ops_, num_regs_, result_reg_));
  last_use_ = analysis_->last_use;
  programs_ = std::make_shared<ProgramCache>(opts_.plan_cache_bytes);
}

std::string Engine::summary() const {
  std::ostringstream oss;
  for (size_t i = 0; i < ops_.size(); ++i) {
    const Op& op = ops_[i];
    oss << i << ": " << op_kind_name(op.kind);
    if (!op.label.empty()) oss << " " << op.label;
    oss << " (r" << op.in;
    if (op.in2 >= 0) oss << ", r" << op.in2;
    oss << " -> r" << op.out << ")";
    if (analysis_) {
      const size_t out = static_cast<size_t>(op.out);
      const int last = analysis_->live[out].last_use;
      oss << " live [" << i << ", ";
      if (op.out == result_reg_ || last < 0) {
        oss << "end";
      } else {
        oss << last;
      }
      oss << "]";
      if (analysis_->is_alias[i]) oss << " alias";
      if (analysis_->is_inplace[i]) oss << " in-place";
    }
    oss << "\n";
  }
  // Always printed (even at 0) so ttsnn_plan_lint can assert fusion happened.
  int fused_total = 0;
  int fused_counts[4] = {0, 0, 0, 0};
  for (const Op& op : ops_) {
    switch (op.kind) {
      case Op::Kind::kConvLif:
        ++fused_counts[0];
        ++fused_total;
        break;
      case Op::Kind::kAffineLif:
        ++fused_counts[1];
        ++fused_total;
        break;
      case Op::Kind::kAddLif:
        ++fused_counts[2];
        ++fused_total;
        break;
      case Op::Kind::kAffineAdd:
        ++fused_counts[3];
        ++fused_total;
        break;
      default:
        break;
    }
  }
  oss << "fused ops: " << fused_total;
  if (fused_total > 0) {
    static const char* const kFusedNames[4] = {"conv+lif", "affine+lif",
                                               "add+lif", "affine+add"};
    const char* sep = " (";
    for (int k = 0; k < 4; ++k) {
      if (fused_counts[k] == 0) continue;
      oss << sep << kFusedNames[k] << " x" << fused_counts[k];
      sep = ", ";
    }
    oss << ")";
  }
  oss << "\n";
  // Quantization census: which weight-bearing ops the pass lowered to the
  // requested dtype and which fell back (and why). Only printed for plans
  // actually compiled with a narrow dtype — f32 plans keep today's summary.
  if (opts_.weight_dtype != WeightDtype::kF32) {
    int quantized = 0;
    int fell_back = 0;
    for (const Op& op : ops_) {
      if (op.quant_note.empty()) continue;
      if (op.plane.quantized()) {
        ++quantized;
      } else {
        ++fell_back;
      }
    }
    oss << "weight dtype: " << weight_dtype_name(opts_.weight_dtype) << " — "
        << quantized << " op(s) quantized, " << fell_back
        << " kept f32\nquantization census:\n";
    for (size_t i = 0; i < ops_.size(); ++i) {
      const Op& op = ops_[i];
      if (op.quant_note.empty()) continue;
      oss << "  " << i << ": " << op_kind_name(op.kind);
      if (!op.label.empty()) oss << " " << op.label;
      oss << " -> " << op.quant_note << "\n";
    }
  }
  if (programs_) {
    const ProgramCacheStats s = programs_->stats();
    oss << "plan cache: " << s.entries << " shape(s), " << s.bytes << " / ";
    if (s.budget_bytes > 0) {
      oss << s.budget_bytes;
    } else {
      oss << "unbounded";
    }
    oss << " bytes, " << s.hits << " hits, " << s.misses << " misses, "
        << s.evictions << " evictions\n";
    oss << "weights: " << weight_footprint_.total() << " bytes (f32 "
        << weight_footprint_.f32_bytes << ", bf16 "
        << weight_footprint_.bf16_bytes << ", int8+scales "
        << weight_footprint_.int8_bytes
        << "), shared across all cached shapes and engine copies\n";
  }
  return oss.str();
}

std::string Engine::summary(const Shape& input) const {
  TTSNN_CHECK(analysis_, "infer::Engine::summary on an unsealed engine");
  return summary() + memory_plan_report(ops_, *analysis_, input);
}

}  // namespace ttsnn::infer
