#pragma once

/// \file engine.h
/// Compiled inference engine — the serving half of the train/infer split.
///
/// The training Module API is the wrong execution model for serving: forward()
/// is non-const, caches activations for BPTT, and mutates per-layer state, so
/// one model instance cannot run two requests concurrently. infer::compile()
/// walks a trained module tree once and lowers it into an immutable Engine —
/// a flat, register-addressed plan of ops over read-only weight tensors.
/// Engine::run(x) const allocates a per-call workspace (registers + one
/// reusable im2col scratch) and nothing else, so any number of threads can
/// call run() on the same Engine simultaneously.
///
/// Lowering follows Algorithm 1 lines 20-22: with CompileOptions::merge_tt
/// (the default), every TTConv2d collapses into a single dense convolution —
/// the full K x K merged kernel for STT, the cross-shaped kernel for PTT —
/// and HTT layers keep a two-kernel per-step plan (cross on full steps,
/// merged pointwise on half steps). With merge_tt off, the four TT cores are
/// lowered as-is; the engine then reproduces eval-mode Module::forward
/// bit-for-bit, which is what the equivalence tests pin. fold_batchnorm
/// additionally folds inference-mode BN (an affine per channel) into the
/// preceding convolution's weights wherever the scale is time-invariant
/// (i.e. everything except TEBN).

#include <string>
#include <vector>

#include "core/ttconv.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/lif.h"

namespace ttsnn::infer {

struct CompileOptions {
  /// Lower each TTConv2d to its merged dense kernel(s) (Algorithm 1 lines
  /// 20-22). Off: lower the four sub-convolutions exactly as the training
  /// forward runs them — bit-identical to eval-mode Module::forward.
  bool merge_tt = true;
  /// Fold inference-mode BatchNorm into the preceding conv where the BN scale
  /// is time-invariant (all modes except TEBN). Off: keep a standalone affine
  /// op that reproduces BatchNorm's eval forward bit-for-bit.
  bool fold_batchnorm = true;
};

/// One instruction of the flat plan. Ops read register `in` (and `in2` for
/// kAdd) and write register `out`; register 0 is the network input. Which
/// field group is meaningful depends on `kind`.
struct Op {
  enum class Kind {
    kConv,        ///< dense conv: weight [O,C,kh,kw], optional bias [O]
    kTTExact,     ///< unmerged TT pipeline (STT/PTT/HTT) from four cores
    kTTHtt,       ///< merged HTT: cross kernel on full steps, 1x1 on half
    kAffine,      ///< inference BatchNorm (running stats, per-(t,c) scale)
    kLif,         ///< leaky integrate-and-fire over [T, N, ...]
    kAvgPool,     ///< non-overlapping average pool
    kGlobalPool,  ///< [T,N,C,H,W] -> [T,N,C]
    kFlatten,     ///< [T,N,...] -> [T,N,F]
    kLinear,      ///< dense classifier head
    kAdd,         ///< residual join: regs[out] = regs[in] + regs[in2]
  };

  Kind kind = Kind::kConv;
  int in = -1;
  int in2 = -1;
  int out = -1;

  // kConv (also kTTHtt's full-step geometry; kLinear stores weight/bias only)
  Conv2d::Options conv;
  Tensor weight;
  Tensor bias;  ///< undefined when absent (BN folding or Linear bias)

  // kTTExact / kTTHtt
  TTConv2d::Options tt;         ///< mode, stride and HTT schedule
  Tensor w1, w2, w3, w4;        ///< kTTExact: cloned cores
  Conv2d::Options tt_w1_opts, tt_w2_opts, tt_w3_opts, tt_w4_opts;
  Conv2d::Options tt_w4_half_opts;  ///< HTT half step: stride moved onto w4
  Tensor full_kernel;           ///< kTTHtt: merged cross kernel [O,I,K,K]
  Tensor half_kernel;           ///< kTTHtt: merged pointwise kernel [O,I,1,1]
  Conv2d::Options half_conv;    ///< kTTHtt: half-step geometry (1x1, stride s)

  // kAffine
  BatchNorm::Mode bn_mode = BatchNorm::Mode::kPerStep;
  float bn_alpha_vth = 1.0F;
  int64_t bn_timesteps = 0;     ///< TEBN: required T; 0 means any
  Tensor bn_gamma, bn_beta, bn_mean, bn_inv_std, bn_step_scale;

  // kLif
  LIFNeuron::Options lif;

  // kAvgPool
  int64_t pool_kernel = 2;

  std::string label;  ///< human-readable op description for summary()
};

/// Immutable compiled plan. Copyable (ops share read-only weight storage);
/// run() is const and thread-safe.
class Engine {
 public:
  /// Executes the plan on x: [T, N, C, H, W]. Thread-safe; allocates only the
  /// per-call workspace. Registers are freed eagerly after their last use, so
  /// peak memory is the widest live set, not the whole activation history.
  Tensor run(const Tensor& x) const;

  size_t num_ops() const { return ops_.size(); }
  const CompileOptions& options() const { return opts_; }
  /// One line per op: kind, label, register dataflow.
  std::string summary() const;

 private:
  friend Engine compile(const Module& root, const CompileOptions& opts);

  std::vector<Op> ops_;
  int num_regs_ = 1;               ///< register 0 is the input
  int result_reg_ = 0;             ///< register holding the network output
  std::vector<int> last_use_;      ///< per register: index of last reading op
  CompileOptions opts_;

  void seal();  ///< computes last_use_ once the op list is final
};

/// Lowers a trained module tree into an Engine. The tree is read through
/// const accessors only and can keep training afterwards: all weights are
/// cloned at compile time, so later optimizer steps do not alias the plan.
/// Throws ttsnn::Error on module types the lowering does not know.
Engine compile(const Module& root, const CompileOptions& opts = {});

/// Checkpoint-to-serving pipeline: loads `checkpoint_path` (written by
/// save_parameters) into `root` — which must be architecturally identical to
/// the saved model — then compiles it.
Engine compile_checkpoint(Module& root, const std::string& checkpoint_path,
                          const CompileOptions& opts = {});

}  // namespace ttsnn::infer
