#pragma once

/// \file engine.h
/// Compiled inference engine — the serving half of the train/infer split.
///
/// The training Module API is the wrong execution model for serving: forward()
/// is non-const, caches activations for BPTT, and mutates per-layer state, so
/// one model instance cannot run two requests concurrently. infer::compile()
/// walks a trained module tree once and lowers it into an immutable Engine —
/// a flat, register-addressed plan of ops over read-only weight tensors.
///
/// Every compile() runs the static-analysis pipeline of infer/analysis.h over
/// the lowered plan: a verifier (malformed plans throw at compile time, not
/// mid-run), symbolic shape inference, and liveness + alias analysis. With
/// CompileOptions::static_plan (the default) run() executes a per-shape
/// CompiledProgram — packed workspace layout plus per-op execution records —
/// compiled on first miss and memoized in a shape-keyed, LRU-bounded
/// ProgramCache (plan_cache.h) shared by every copy of the engine: one
/// allocation per call (zero when the caller re-submits a workspace tensor),
/// bit-identical outputs to the unplanned executor, which remains available
/// as the reference path with static_plan off.
///
/// Lowering follows Algorithm 1 lines 20-22: with CompileOptions::merge_tt
/// (the default), every TTConv2d collapses into a single dense convolution —
/// the full K x K merged kernel for STT, the cross-shaped kernel for PTT —
/// and HTT layers keep a two-kernel per-step plan (cross on full steps,
/// merged pointwise on half steps). With merge_tt off, the four TT cores are
/// lowered as-is; the engine then reproduces eval-mode Module::forward
/// bit-for-bit, which is what the equivalence tests pin. fold_batchnorm
/// additionally folds inference-mode BN (an affine per channel) into the
/// preceding convolution's weights wherever the scale is time-invariant
/// (i.e. everything except TEBN).

#include <memory>
#include <string>
#include <vector>

#include "core/ttconv.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/lif.h"
#include "tensor/weight_plane.h"

namespace ttsnn::infer {

struct PlanAnalysis;
struct MemoryPlan;
struct CompiledProgram;
struct ProgramCacheStats;
class ProgramCache;

struct CompileOptions {
  /// Lower each TTConv2d to its merged dense kernel(s) (Algorithm 1 lines
  /// 20-22). Off: lower the four sub-convolutions exactly as the training
  /// forward runs them — bit-identical to eval-mode Module::forward.
  bool merge_tt = true;
  /// Fold inference-mode BatchNorm into the preceding conv where the BN scale
  /// is time-invariant (all modes except TEBN). Off: keep a standalone affine
  /// op that reproduces BatchNorm's eval forward bit-for-bit.
  bool fold_batchnorm = true;
  /// Execute against the statically planned workspace: all registers, the
  /// im2col buffer, and composite-op scratch live at planner-assigned offsets
  /// of ONE buffer allocated (or reused) per call. Off: the reference
  /// executor, one allocation per register. Outputs are bit-identical.
  bool static_plan = true;
  /// Byte budget of the per-shape compiled-program cache (plan_cache.h):
  /// plan metadata only — weights are refcounted once outside the cache —
  /// with LRU eviction past the budget. 0 disables eviction entirely.
  int64_t plan_cache_bytes = 8LL << 20;
  /// Greedily fuse elementwise chains (conv/affine/add feeding a LIF step,
  /// affine feeding a residual add) into single fused ops executed by
  /// single-pass SIMD kernels, wherever the liveness analysis proves the
  /// intermediate has exactly one consumer. Outputs are bit-identical with
  /// fusion on or off; off keeps the one-op-per-module reference lowering.
  bool fuse_elementwise = true;
  /// Storage dtype requested for conv/linear weight matrices (including the
  /// PR-9 fused conv+LIF ops and merged HTT kernel pairs). kF32 — the default
  /// — is a complete no-op and stays bit-identical to today's engine. kBf16
  /// re-encodes every eligible weight with the round-to-nearest-even codec
  /// (dequantized into plan scratch before the unchanged f32 GEMM). kInt8
  /// additionally requires the op's input to be provably binary spikes (a LIF
  /// output, possibly through kFlatten) and runs the integer spike-GEMM
  /// kernels with one float rescale per output channel. Ineligible weights
  /// fall back to f32 bit-identically; biases and BN tensors always stay f32.
  WeightDtype weight_dtype = WeightDtype::kF32;
};

/// One instruction of the flat plan. Ops read register `in` (and `in2` for
/// kAdd) and write register `out`; register 0 is the network input. Which
/// field group is meaningful depends on `kind`.
struct Op {
  enum class Kind {
    kConv,        ///< dense conv: weight [O,C,kh,kw], optional bias [O]
    kTTExact,     ///< unmerged TT pipeline (STT/PTT/HTT) from four cores
    kTTHtt,       ///< merged HTT: cross kernel on full steps, 1x1 on half
    kAffine,      ///< inference BatchNorm (running stats, per-(t,c) scale)
    kLif,         ///< leaky integrate-and-fire over [T, N, ...]
    kAvgPool,     ///< non-overlapping average pool
    kGlobalPool,  ///< [T,N,C,H,W] -> [T,N,C]
    kFlatten,     ///< [T,N,...] -> [T,N,F]
    kLinear,      ///< dense classifier head
    kAdd,         ///< residual join: regs[out] = regs[in] + regs[in2]
    // Fused elementwise chains (compile.cpp's fusion pass; never lowered
    // directly from modules). Each reuses the field groups of its parts.
    kConvLif,     ///< conv whose LIF epilogue runs per output tile
    kAffineLif,   ///< inference-BN affine feeding a LIF step
    kAddLif,      ///< residual join feeding a LIF step
    kAffineAdd,   ///< inference-BN affine feeding a residual join
  };

  Kind kind = Kind::kConv;
  int in = -1;
  int in2 = -1;
  int out = -1;

  // kConv (also kTTHtt's full-step geometry; kLinear stores weight/bias only)
  Conv2d::Options conv;
  Tensor weight;
  Tensor bias;  ///< undefined when absent (BN folding or Linear bias)

  // kTTExact / kTTHtt
  TTConv2d::Options tt;         ///< mode, stride and HTT schedule
  Tensor w1, w2, w3, w4;        ///< kTTExact: cloned cores
  Conv2d::Options tt_w1_opts, tt_w2_opts, tt_w3_opts, tt_w4_opts;
  Conv2d::Options tt_w4_half_opts;  ///< HTT half step: stride moved onto w4
  Tensor full_kernel;           ///< kTTHtt: merged cross kernel [O,I,K,K]
  Tensor half_kernel;           ///< kTTHtt: merged pointwise kernel [O,I,1,1]
  Conv2d::Options half_conv;    ///< kTTHtt: half-step geometry (1x1, stride s)

  // kAffine
  BatchNorm::Mode bn_mode = BatchNorm::Mode::kPerStep;
  float bn_alpha_vth = 1.0F;
  int64_t bn_timesteps = 0;     ///< TEBN: required T; 0 means any
  Tensor bn_gamma, bn_beta, bn_mean, bn_inv_std, bn_step_scale;

  // kLif
  LIFNeuron::Options lif;

  // kAvgPool
  int64_t pool_kernel = 2;

  // kAffineAdd
  /// True when the fused affine produced the add's SECOND operand: the add's
  /// axpy order (first + 1*second) is preserved so the bits match unfused.
  bool fused_swap = false;

  // Typed weight planes (compile.cpp's quantization pass; weight_dtype !=
  // kF32 only). When `plane` is quantized it REPLACES the f32 tensor it was
  // encoded from (`weight` for kConv/kConvLif/kLinear, `full_kernel` for
  // kTTHtt — whose pointwise kernel moves to `half_plane`); the f32 tensor is
  // dropped so the plan's weight bytes actually shrink. Ops the pass skips
  // keep their f32 tensors and record why in `quant_note`.
  WeightPlane plane;
  WeightPlane half_plane;
  std::string quant_note;  ///< census entry: dtype name or fallback reason

  std::string label;  ///< human-readable op description for summary()
};

/// Short lowercase mnemonic for an op kind ("conv", "htt", ...), shared by
/// Engine::summary() and every analysis diagnostic.
const char* op_kind_name(Op::Kind kind);

/// Unique read-only weight storage of one plan, split by storage dtype.
/// Each shared buffer is counted once (PR-7 semantics): Engine copies,
/// Router replicas and all cached programs reference this same storage.
struct WeightFootprint {
  int64_t f32_bytes = 0;   ///< float tensors (incl. biases and BN vectors)
  int64_t bf16_bytes = 0;  ///< bf16 plane payloads
  int64_t int8_bytes = 0;  ///< int8 plane payloads + per-channel f32 scales
  int64_t total() const { return f32_bytes + bf16_bytes + int8_bytes; }
};

/// Immutable compiled plan. Copyable (ops share read-only weight storage,
/// copies share the analysis and the per-shape plan cache); run() is const
/// and thread-safe.
class Engine {
 public:
  /// Executes the plan on x: [T, N, C, H, W]. Thread-safe. With static_plan
  /// the call allocates exactly one workspace buffer plus the owning result
  /// tensor; without it, registers are freed eagerly after their last use,
  /// so peak memory is the widest live set, not the whole activation history.
  Tensor run(const Tensor& x) const;

  /// As run(x), but places the packed workspace in `workspace`, (re)allocating
  /// it only when too small — zero workspace allocations in steady state for
  /// a caller (e.g. a Router dispatcher thread) that re-submits the same
  /// tensor every call. With static_plan off this is identical to run(x).
  Tensor run(const Tensor& x, Tensor& workspace) const;

  size_t num_ops() const { return ops_.size(); }
  const std::vector<Op>& ops() const { return ops_; }
  int num_regs() const { return num_regs_; }
  int result_reg() const { return result_reg_; }
  const CompileOptions& options() const { return opts_; }

  /// Verifier + liveness/alias result computed at compile time. Valid for
  /// any Engine produced by compile().
  const PlanAnalysis& analysis() const { return *analysis_; }

  /// Fully compiled program for one input signature [T, N, C, H, W],
  /// memoized (single-flight, LRU by byte budget) in the ProgramCache shared
  /// by every copy of this Engine — Router replicas compile each shape once,
  /// process-wide. Throws ttsnn::Error if the plan cannot run at this shape.
  std::shared_ptr<const CompiledProgram> program(const Shape& input) const;

  /// Concrete memory layout for one input shape; the layout half of
  /// program(input). Kept for layout-only callers (reports, benches).
  std::shared_ptr<const MemoryPlan> memory_plan(const Shape& input) const;

  /// Residency and hit/miss/eviction counters of the shared program cache.
  ProgramCacheStats cache_stats() const;

  /// Symbolic input signature [T, N, C, H, W] from shape inference:
  /// concrete where the plan pins an extent (the channel count always;
  /// T for TEBN-pinned plans), kDimUnknown where any extent serves. The
  /// Router validates submissions against this before queueing.
  Shape input_signature() const;

  /// Bytes of read-only weight storage the plan references, counting each
  /// shared buffer once. Engine copies and all cached programs reference
  /// this same storage — it is never duplicated per shape or per replica.
  int64_t weight_bytes() const { return weight_footprint_.total(); }

  /// weight_bytes() split by storage dtype (f32 / bf16 / int8+scales), for
  /// mixed-dtype fleet inspection (summary(), RouterStats, benches).
  const WeightFootprint& weight_footprint() const { return weight_footprint_; }

  /// One line per op: kind, label, register dataflow, live range and
  /// alias/in-place flags from the analysis — plus the program-cache
  /// residency (shapes cached, bytes vs budget, hit/miss/eviction counts).
  std::string summary() const;
  /// summary() plus the concrete memory-plan report (byte offsets, workspace
  /// totals, savings vs the unplanned executor) for one input shape.
  std::string summary(const Shape& input) const;

 private:
  friend Engine compile(const Module& root, const CompileOptions& opts);

  Tensor run_legacy(const Tensor& x) const;
  Tensor run_planned(const Tensor& x, Tensor& workspace) const;

  std::vector<Op> ops_;
  int num_regs_ = 1;               ///< register 0 is the input
  int result_reg_ = 0;             ///< register holding the network output
  std::vector<int> last_use_;      ///< per register: index of last reading op
  WeightFootprint weight_footprint_;  ///< unique weight bytes, per dtype
  CompileOptions opts_;
  std::shared_ptr<const PlanAnalysis> analysis_;  ///< set by seal()
  std::shared_ptr<ProgramCache> programs_;        ///< shared across copies

  void seal();  ///< runs analyze_plan() once the op list is final
};

/// Lowers a trained module tree into an Engine. The tree is read through
/// const accessors only and can keep training afterwards: all weights are
/// cloned at compile time, so later optimizer steps do not alias the plan.
/// Throws ttsnn::Error on module types the lowering does not know — and, via
/// the verifier that seals every compile, on any malformed lowering.
Engine compile(const Module& root, const CompileOptions& opts = {});

/// Checkpoint-to-serving pipeline: loads `checkpoint_path` (written by
/// save_parameters) into `root` — which must be architecturally identical to
/// the saved model — then compiles it.
Engine compile_checkpoint(Module& root, const std::string& checkpoint_path,
                          const CompileOptions& opts = {});

}  // namespace ttsnn::infer
