#include "infer/analysis.h"

#include <algorithm>
#include <climits>
#include <cstdint>
#include <numeric>
#include <sstream>

#include "tensor/im2col.h"

namespace ttsnn::infer {

namespace {

int64_t align_up(int64_t n) { return plan_align_up(n); }

bool known(int64_t d) { return d != kDimUnknown; }

/// Kinds whose in2 operand is meaningful (a residual join, fused or not).
bool has_second_input(Op::Kind k) {
  return k == Op::Kind::kAdd || k == Op::Kind::kAddLif ||
         k == Op::Kind::kAffineAdd;
}

/// numel of a possibly-symbolic shape; kDimUnknown if any extent is unknown.
int64_t sym_numel(const Shape& s) {
  int64_t n = 1;
  for (int64_t d : s) {
    if (!known(d)) return kDimUnknown;
    n *= d;
  }
  return n;
}

/// "op 3 (conv 16->32 3x3)" — every diagnostic names the offending op.
std::string op_where(const Op& op, size_t index) {
  std::ostringstream oss;
  oss << "op " << index << " (" << op_kind_name(op.kind);
  if (!op.label.empty()) oss << " " << op.label;
  oss << ")";
  return oss.str();
}

int64_t unify_dim(int64_t a, int64_t b, const Op& op, size_t index,
                  const char* what) {
  if (!known(a)) return b;
  if (!known(b)) return a;
  TTSNN_CHECK(a == b, "infer verify: " << op_where(op, index) << ": " << what
                                       << " mismatch (" << a << " vs " << b
                                       << ")");
  return a;
}

/// Elementwise unification of two equal-rank shapes; refines both in place.
void unify_shape(Shape& a, Shape& b, const Op& op, size_t index,
                 const char* what) {
  TTSNN_CHECK(a.size() == b.size(),
              "infer verify: " << op_where(op, index) << ": " << what
                               << " rank mismatch " << shape_str(a) << " vs "
                               << shape_str(b));
  for (size_t d = 0; d < a.size(); ++d) {
    a[d] = b[d] = unify_dim(a[d], b[d], op, index, what);
  }
}

ConvGeometry make_geometry(int64_t in_h, int64_t in_w,
                           const Conv2d::Options& o) {
  return ConvGeometry{.in_channels = o.in_channels,
                      .in_h = in_h,
                      .in_w = in_w,
                      .kernel_h = o.kernel_h,
                      .kernel_w = o.kernel_w,
                      .stride_h = o.resolved_stride_h(),
                      .stride_w = o.resolved_stride_w(),
                      .pad_h = o.resolved_pad_h(),
                      .pad_w = o.resolved_pad_w()};
}

/// Shape transfer of one dense convolution. Unifies the input's channel dim
/// with the conv geometry in place; spatial extents propagate when known and
/// are validated to produce a non-empty output.
Shape conv_out_shape(Shape& in, const Conv2d::Options& o, const Op& op,
                     size_t index, const char* what) {
  TTSNN_CHECK(in.size() >= 3, "infer verify: "
                                  << op_where(op, index) << ": " << what
                                  << " needs at least a [C, H, W] input, got "
                                  << shape_str(in));
  const size_t ci = in.size() - 3;
  in[ci] = unify_dim(in[ci], o.in_channels, op, index, "input channels");
  Shape out = in;
  out[ci] = o.out_channels;
  for (int spatial = 0; spatial < 2; ++spatial) {
    const size_t d = ci + 1 + static_cast<size_t>(spatial);
    if (!known(in[d])) {
      out[d] = kDimUnknown;
      continue;
    }
    const ConvGeometry g = make_geometry(in[ci + 1], in[ci + 2], o);
    const int64_t extent = spatial == 0 ? g.out_h() : g.out_w();
    TTSNN_CHECK(extent > 0, "infer verify: " << op_where(op, index) << ": "
                                             << what
                                             << " output would be empty for "
                                             << shape_str(in));
    out[d] = extent;
  }
  return out;
}

/// Per-kind field-group completeness: an op must carry every tensor and
/// option its executor will touch, checked at compile time instead of
/// crashing (or reading undefined tensors) mid-run.
void check_weight4(const Tensor& w, const Conv2d::Options& o, const Op& op,
                   size_t index, const char* what) {
  TTSNN_CHECK(w.defined(), "infer verify: " << op_where(op, index)
                                            << " is missing its " << what);
  TTSNN_CHECK(o.in_channels > 0 && o.out_channels > 0 && o.kernel_h > 0 &&
                  o.kernel_w > 0 && o.resolved_stride_h() > 0 &&
                  o.resolved_stride_w() > 0,
              "infer verify: " << op_where(op, index) << ": invalid " << what
                               << " geometry");
  TTSNN_CHECK(w.dim() == 4 && w.size(0) == o.out_channels &&
                  w.size(1) == o.in_channels && w.size(2) == o.kernel_h &&
                  w.size(3) == o.kernel_w,
              "infer verify: " << op_where(op, index) << ": " << what
                               << " shape " << shape_str(w.shape())
                               << " does not match geometry [" << o.out_channels
                               << ", " << o.in_channels << ", " << o.kernel_h
                               << ", " << o.kernel_w << "]");
}

/// Shared sanity for any quantized plane: payload present, per-channel scales
/// sized to the output-channel dim for int8.
void check_plane_payload(const WeightPlane& p, const Op& op, size_t index,
                         const char* what) {
  TTSNN_CHECK(p.numel() > 0 && p.storage_key() != nullptr,
              "infer verify: " << op_where(op, index) << ": " << what
                               << " plane has no payload");
  if (p.dtype() == WeightDtype::kInt8) {
    TTSNN_CHECK(p.scales().defined() && p.scales().numel() == p.rows(),
                "infer verify: " << op_where(op, index) << ": " << what
                                 << " int8 plane needs one scale per output "
                                 << "channel (" << p.rows() << "), got "
                                 << (p.scales().defined() ? p.scales().numel()
                                                          : 0));
  }
}

/// Conv-shaped weight storage: either a plain f32 tensor or a quantized
/// plane carrying the same [O, C, kh, kw] logical shape — never both.
void check_conv_weight(const Tensor& w, const WeightPlane& p,
                       const Conv2d::Options& o, const Op& op, size_t index,
                       const char* what) {
  if (!p.quantized()) {
    check_weight4(w, o, op, index, what);
    return;
  }
  TTSNN_CHECK(!w.defined(), "infer verify: "
                                << op_where(op, index) << ": " << what
                                << " has both an f32 tensor and a quantized "
                                << "plane — the pass must drop the tensor");
  const Shape& s = p.shape();
  TTSNN_CHECK(s.size() == 4 && s[0] == o.out_channels && s[1] == o.in_channels &&
                  s[2] == o.kernel_h && s[3] == o.kernel_w,
              "infer verify: " << op_where(op, index) << ": " << what
                               << " plane shape " << shape_str(s)
                               << " does not match geometry [" << o.out_channels
                               << ", " << o.in_channels << ", " << o.kernel_h
                               << ", " << o.kernel_w << "]");
  check_plane_payload(p, op, index, what);
}

void check_op_fields(const Op& op, size_t i) {
  switch (op.kind) {
    case Op::Kind::kConv:
    case Op::Kind::kConvLif:
      check_conv_weight(op.weight, op.plane, op.conv, op, i, "conv weight");
      if (op.bias.defined()) {
        TTSNN_CHECK(op.bias.numel() == op.conv.out_channels,
                    "infer verify: " << op_where(op, i) << ": bias has "
                                     << op.bias.numel() << " entries for "
                                     << op.conv.out_channels << " channels");
      }
      break;
    case Op::Kind::kTTExact:
      check_weight4(op.w1, op.tt_w1_opts, op, i, "TT core w1");
      check_weight4(op.w2, op.tt_w2_opts, op, i, "TT core w2");
      check_weight4(op.w3, op.tt_w3_opts, op, i, "TT core w3");
      check_weight4(op.w4, op.tt_w4_opts, op, i, "TT core w4");
      if (op.tt.mode == TTMode::kHTT) {
        check_weight4(op.w4, op.tt_w4_half_opts, op, i,
                      "TT half-step core w4");
      }
      break;
    case Op::Kind::kTTHtt:
      check_conv_weight(op.full_kernel, op.plane, op.conv, op, i,
                        "merged full-step kernel");
      check_conv_weight(op.half_kernel, op.half_plane, op.half_conv, op, i,
                        "merged half-step kernel");
      TTSNN_CHECK(op.conv.out_channels == op.half_conv.out_channels,
                  "infer verify: " << op_where(op, i)
                                   << ": full/half kernels disagree on output "
                                   << "channels");
      break;
    case Op::Kind::kAffine:
    case Op::Kind::kAffineLif:
    case Op::Kind::kAffineAdd: {
      const struct {
        const Tensor& t;
        const char* name;
      } fields[] = {{op.bn_gamma, "bn_gamma"},
                    {op.bn_beta, "bn_beta"},
                    {op.bn_mean, "bn_mean"},
                    {op.bn_inv_std, "bn_inv_std"}};
      for (const auto& f : fields) {
        TTSNN_CHECK(f.t.defined(), "infer verify: " << op_where(op, i)
                                                    << " is missing " << f.name);
        TTSNN_CHECK(f.t.numel() == op.bn_gamma.numel(),
                    "infer verify: " << op_where(op, i) << ": " << f.name
                                     << " has " << f.t.numel()
                                     << " entries, expected "
                                     << op.bn_gamma.numel());
      }
      TTSNN_CHECK(op.bn_gamma.numel() > 0,
                  "infer verify: " << op_where(op, i) << ": zero BN channels");
      if (op.bn_mode == BatchNorm::Mode::kTebn) {
        TTSNN_CHECK(op.bn_timesteps > 0 && op.bn_step_scale.defined() &&
                        op.bn_step_scale.numel() == op.bn_timesteps,
                    "infer verify: " << op_where(op, i)
                                     << ": TEBN needs a step scale with one "
                                     << "entry per timestep");
      }
      break;
    }
    case Op::Kind::kLinear:
      if (op.plane.quantized()) {
        TTSNN_CHECK(!op.weight.defined() && op.plane.shape().size() == 2 &&
                        op.plane.rows() > 0 && op.plane.cols() > 0,
                    "infer verify: " << op_where(op, i)
                                     << " needs a [out, in] weight plane");
        check_plane_payload(op.plane, op, i, "linear weight");
      } else {
        TTSNN_CHECK(op.weight.defined() && op.weight.dim() == 2 &&
                        op.weight.size(0) > 0 && op.weight.size(1) > 0,
                    "infer verify: " << op_where(op, i)
                                     << " needs a [out, in] weight matrix");
      }
      if (op.bias.defined()) {
        const int64_t out_f =
            op.plane.quantized() ? op.plane.rows() : op.weight.size(0);
        TTSNN_CHECK(op.bias.numel() == out_f,
                    "infer verify: " << op_where(op, i) << ": bias has "
                                     << op.bias.numel() << " entries for "
                                     << out_f << " outputs");
      }
      break;
    case Op::Kind::kAvgPool:
      TTSNN_CHECK(op.pool_kernel >= 1, "infer verify: "
                                           << op_where(op, i)
                                           << ": pool kernel must be >= 1");
      break;
    case Op::Kind::kLif:
    case Op::Kind::kGlobalPool:
    case Op::Kind::kFlatten:
    case Op::Kind::kAdd:
    case Op::Kind::kAddLif:
      break;
  }
}

/// Counts full/half steps of an HTT schedule for a concrete T, validating
/// the schedule covers every step.
void split_counts(const TTConv2d::Options& tt, int64_t t_steps, const Op& op,
                  size_t index, int64_t& full, int64_t& half) {
  full = t_steps;
  half = 0;
  if (tt.mode != TTMode::kHTT || tt.full_step.empty()) return;
  TTSNN_CHECK(t_steps <= static_cast<int64_t>(tt.full_step.size()),
              "infer verify: " << op_where(op, index) << ": HTT schedule has "
                               << tt.full_step.size() << " entries for T="
                               << t_steps);
  full = 0;
  for (int64_t t = 0; t < t_steps; ++t) {
    full += tt.full_step[static_cast<size_t>(t)] ? 1 : 0;
  }
  half = t_steps - full;
}

/// Combined shape transfer + resource footprint of one op. `in` (and `in2`
/// for kAdd) are refined in place by unification. scratch/col are only
/// accumulated for extents that are concrete — the symbolic compile-time
/// pass gets shapes and diagnostics, the concrete planning pass additionally
/// gets exact byte counts. The scratch enumeration must mirror the planned
/// executor's temp allocations (engine.cpp) order-for-order; the executor
/// asserts it never overruns the budget computed here.
struct OpFootprint {
  Shape out;
  int64_t scratch = 0;  ///< aligned sum of the op's internal temporaries
  int64_t col = 0;      ///< largest im2col column matrix among its convs
};

OpFootprint op_footprint(const Op& op, size_t index, Shape& in, Shape* in2) {
  OpFootprint f;
  auto add_temp = [&f](const Shape& s) {
    const int64_t n = sym_numel(s);
    if (known(n)) f.scratch += align_up(n);
  };
  auto see_col = [&f](const Shape& s, const Conv2d::Options& o) {
    const int64_t h = s[s.size() - 2];
    const int64_t w = s[s.size() - 1];
    if (!known(h) || !known(w)) return;
    const ConvGeometry g = make_geometry(h, w, o);
    if (!g.pointwise()) f.col = std::max(f.col, g.col_rows() * g.col_cols());
  };
  // Quantized-plane scratch of one conv branch, mirroring the executor's
  // ctx.raw calls in run_conv: bf16 dequantizes the whole kernel into an f32
  // buffer once per op call; int8 converts each lowered spike tile into a
  // transposed u8 matrix (bytes packed into the float workspace).
  auto see_plane = [&f](const WeightPlane& p, const Shape& s,
                        const Conv2d::Options& o) {
    if (!p.quantized()) return;
    if (p.dtype() == WeightDtype::kBf16) {
      f.scratch += align_up(p.numel());
      return;
    }
    const int64_t h = s[s.size() - 2];
    const int64_t w = s[s.size() - 1];
    if (!known(h) || !known(w)) return;
    const ConvGeometry g = make_geometry(h, w, o);
    f.scratch += align_up((g.col_rows() * g.col_cols() + 3) / 4);
  };

  switch (op.kind) {
    case Op::Kind::kConv:
      f.out = conv_out_shape(in, op.conv, op, index, "conv");
      see_col(in, op.conv);
      see_plane(op.plane, in, op.conv);
      break;

    case Op::Kind::kTTExact: {
      Shape o1 = conv_out_shape(in, op.tt_w1_opts, op, index, "TT core w1");
      see_col(in, op.tt_w1_opts);
      switch (op.tt.mode) {
        case TTMode::kSTT: {
          Shape z2 = conv_out_shape(o1, op.tt_w2_opts, op, index, "TT core w2");
          see_col(o1, op.tt_w2_opts);
          Shape z3 = conv_out_shape(z2, op.tt_w3_opts, op, index, "TT core w3");
          see_col(z2, op.tt_w3_opts);
          f.out = conv_out_shape(z3, op.tt_w4_opts, op, index, "TT core w4");
          see_col(z3, op.tt_w4_opts);
          add_temp(o1);
          add_temp(z2);
          add_temp(z3);
          break;
        }
        case TTMode::kPTT: {
          Shape a = conv_out_shape(o1, op.tt_w2_opts, op, index, "TT core w2");
          see_col(o1, op.tt_w2_opts);
          Shape b = conv_out_shape(o1, op.tt_w3_opts, op, index, "TT core w3");
          see_col(o1, op.tt_w3_opts);
          unify_shape(a, b, op, index, "PTT branch outputs");
          f.out = conv_out_shape(a, op.tt_w4_opts, op, index, "TT core w4");
          see_col(a, op.tt_w4_opts);
          add_temp(o1);
          add_temp(a);
          add_temp(b);
          break;
        }
        case TTMode::kHTT: {
          TTSNN_CHECK(in.size() == 5,
                      "infer verify: " << op_where(op, index)
                                       << ": HTT expects [T, N, C, H, W], got "
                                       << shape_str(in));
          add_temp(o1);
          const int64_t t = o1[0];
          int64_t n_full = kDimUnknown;
          int64_t n_half = kDimUnknown;
          if (known(t)) split_counts(op.tt, t, op, index, n_full, n_half);
          Shape full_x = o1;
          full_x[0] = n_full;
          Shape half_x = o1;
          half_x[0] = n_half;
          Shape y_full;
          Shape y_half;
          if (!known(t) || n_full > 0) {
            add_temp(full_x);
            Shape a =
                conv_out_shape(full_x, op.tt_w2_opts, op, index, "TT core w2");
            see_col(full_x, op.tt_w2_opts);
            Shape b =
                conv_out_shape(full_x, op.tt_w3_opts, op, index, "TT core w3");
            see_col(full_x, op.tt_w3_opts);
            unify_shape(a, b, op, index, "PTT branch outputs");
            y_full = conv_out_shape(a, op.tt_w4_opts, op, index, "TT core w4");
            see_col(a, op.tt_w4_opts);
            add_temp(a);
            add_temp(b);
            add_temp(y_full);
          }
          if (!known(t) || n_half > 0) {
            add_temp(half_x);
            y_half = conv_out_shape(half_x, op.tt_w4_half_opts, op, index,
                                    "TT half-step core w4");
            see_col(half_x, op.tt_w4_half_opts);
            add_temp(y_half);
          }
          if (!y_full.empty() && !y_half.empty()) {
            Shape a = y_full;
            Shape b = y_half;
            a[0] = b[0] = kDimUnknown;  // split sizes legitimately differ
            unify_shape(a, b, op, index, "HTT branch outputs");
            f.out = a;
          } else {
            f.out = y_full.empty() ? y_half : y_full;
          }
          TTSNN_CHECK(!f.out.empty(), "infer verify: " << op_where(op, index)
                                                       << ": empty HTT "
                                                       << "schedule");
          f.out[0] = in[0];
          break;
        }
      }
      break;
    }

    case Op::Kind::kTTHtt: {
      TTSNN_CHECK(in.size() == 5,
                  "infer verify: " << op_where(op, index)
                                   << ": HTT expects [T, N, C, H, W], got "
                                   << shape_str(in));
      in[2] = unify_dim(in[2], op.conv.in_channels, op, index,
                        "input channels");
      in[2] = unify_dim(in[2], op.half_conv.in_channels, op, index,
                        "input channels");
      const int64_t t = in[0];
      int64_t n_full = kDimUnknown;
      int64_t n_half = kDimUnknown;
      if (known(t)) split_counts(op.tt, t, op, index, n_full, n_half);
      Shape full_x = in;
      full_x[0] = n_full;
      Shape half_x = in;
      half_x[0] = n_half;
      Shape y_full;
      Shape y_half;
      if (!known(t) || n_full > 0) {
        add_temp(full_x);
        y_full = conv_out_shape(full_x, op.conv, op, index,
                                "merged full-step conv");
        see_col(full_x, op.conv);
        see_plane(op.plane, full_x, op.conv);
        add_temp(y_full);
      }
      if (!known(t) || n_half > 0) {
        add_temp(half_x);
        y_half = conv_out_shape(half_x, op.half_conv, op, index,
                                "merged half-step conv");
        see_col(half_x, op.half_conv);
        see_plane(op.half_plane, half_x, op.half_conv);
        add_temp(y_half);
      }
      if (!y_full.empty() && !y_half.empty()) {
        Shape a = y_full;
        Shape b = y_half;
        a[0] = b[0] = kDimUnknown;
        unify_shape(a, b, op, index, "HTT branch outputs");
        f.out = a;
      } else {
        f.out = y_full.empty() ? y_half : y_full;
      }
      TTSNN_CHECK(!f.out.empty(), "infer verify: " << op_where(op, index)
                                                   << ": empty HTT schedule");
      f.out[0] = in[0];
      break;
    }

    case Op::Kind::kAffine:
    case Op::Kind::kAffineLif:
    case Op::Kind::kAffineAdd:
      TTSNN_CHECK(in.size() == 5,
                  "infer verify: " << op_where(op, index)
                                   << ": affine expects [T, N, C, H, W], got "
                                   << shape_str(in));
      in[2] = unify_dim(in[2], op.bn_gamma.numel(), op, index, "BN channels");
      if (op.bn_mode == BatchNorm::Mode::kTebn) {
        in[0] = unify_dim(in[0], op.bn_timesteps, op, index, "TEBN timesteps");
      }
      if (op.kind == Op::Kind::kAffineAdd) {
        TTSNN_CHECK(in2 != nullptr, "infer verify: "
                                        << op_where(op, index)
                                        << " needs a second input");
        unify_shape(in, *in2, op, index, "residual operands");
      }
      f.out = in;
      if (op.kind == Op::Kind::kAffineLif) {
        // The fused LIF epilogue's membrane plane, same as a standalone kLif.
        const int64_t n = sym_numel(in);
        if (known(n) && known(in[0])) f.scratch = align_up(n / in[0]);
      }
      break;

    case Op::Kind::kConvLif: {
      TTSNN_CHECK(in.size() == 5,
                  "infer verify: " << op_where(op, index)
                                   << ": conv+lif expects [T, N, C, H, W], "
                                   << "got " << shape_str(in));
      f.out = conv_out_shape(in, op.conv, op, index, "conv");
      see_col(in, op.conv);
      // Membrane plane over the conv OUTPUT geometry, zeroed once per call.
      const int64_t n = sym_numel(f.out);
      if (known(n) && known(in[0])) f.scratch = align_up(n / in[0]);
      see_plane(op.plane, in, op.conv);  // adds on top of the membrane
      break;
    }

    case Op::Kind::kLif: {
      TTSNN_CHECK(in.size() >= 2, "infer verify: " << op_where(op, index)
                                                   << ": LIF expects "
                                                   << "[T, N, ...], got "
                                                   << shape_str(in));
      f.out = in;
      const int64_t n = sym_numel(in);
      if (known(n) && known(in[0])) f.scratch = align_up(n / in[0]);
      break;
    }

    case Op::Kind::kAvgPool: {
      TTSNN_CHECK(in.size() >= 3, "infer verify: " << op_where(op, index)
                                                   << ": pool expects "
                                                   << "[..., C, H, W], got "
                                                   << shape_str(in));
      f.out = in;
      for (size_t d = in.size() - 2; d < in.size(); ++d) {
        if (!known(in[d])) continue;
        TTSNN_CHECK(in[d] % op.pool_kernel == 0,
                    "infer verify: " << op_where(op, index)
                                     << ": pool requires divisible spatial "
                                     << "dims, got " << shape_str(in) << " k="
                                     << op.pool_kernel);
        f.out[d] = in[d] / op.pool_kernel;
      }
      break;
    }

    case Op::Kind::kGlobalPool:
      TTSNN_CHECK(in.size() == 5,
                  "infer verify: " << op_where(op, index)
                                   << ": global pool expects [T, N, C, H, W], "
                                   << "got " << shape_str(in));
      f.out = {in[0], in[1], in[2]};
      break;

    case Op::Kind::kFlatten: {
      TTSNN_CHECK(in.size() >= 2, "infer verify: " << op_where(op, index)
                                                   << ": flatten expects "
                                                   << "[T, N, ...], got "
                                                   << shape_str(in));
      int64_t rest = 1;
      for (size_t d = 2; d < in.size(); ++d) {
        if (!known(in[d])) {
          rest = kDimUnknown;
          break;
        }
        rest *= in[d];
      }
      f.out = {in[0], in[1], rest};
      break;
    }

    case Op::Kind::kLinear: {
      TTSNN_CHECK(in.size() >= 2, "infer verify: " << op_where(op, index)
                                                   << ": linear expects "
                                                   << "[..., features], got "
                                                   << shape_str(in));
      const size_t li = in.size() - 1;
      const bool planed = op.plane.quantized();
      const int64_t in_f = planed ? op.plane.cols() : op.weight.size(1);
      const int64_t out_f = planed ? op.plane.rows() : op.weight.size(0);
      in[li] = unify_dim(in[li], in_f, op, index, "input features");
      f.out = in;
      f.out[li] = out_f;
      if (planed) {
        if (op.plane.dtype() == WeightDtype::kBf16) {
          f.scratch += align_up(op.plane.numel());
        } else {
          // u8 copy of the whole spike matrix [rows, in_f], bytes in floats.
          int64_t rows = 1;
          bool rows_known = true;
          for (size_t d = 0; d < li; ++d) {
            if (!known(in[d])) {
              rows_known = false;
              break;
            }
            rows *= in[d];
          }
          if (rows_known) f.scratch += align_up((rows * in_f + 3) / 4);
        }
      }
      break;
    }

    case Op::Kind::kAdd:
    case Op::Kind::kAddLif:
      TTSNN_CHECK(in2 != nullptr, "infer verify: " << op_where(op, index)
                                                   << " needs a second input");
      unify_shape(in, *in2, op, index, "residual operands");
      f.out = in;
      if (op.kind == Op::Kind::kAddLif) {
        TTSNN_CHECK(in.size() >= 2,
                    "infer verify: " << op_where(op, index)
                                     << ": add+lif expects [T, N, ...], got "
                                     << shape_str(in));
        const int64_t n = sym_numel(in);
        if (known(n) && known(in[0])) f.scratch = align_up(n / in[0]);
      }
      break;
  }
  return f;
}

}  // namespace

PlanAnalysis analyze_plan(const std::vector<Op>& ops, int num_regs,
                          int result_reg) {
  TTSNN_CHECK(num_regs >= 1, "infer verify: plan has no registers");
  TTSNN_CHECK(result_reg >= 0 && result_reg < num_regs,
              "infer verify: result register r" << result_reg
                                                << " out of range for "
                                                << num_regs << " registers");
  PlanAnalysis a;
  a.num_regs = num_regs;
  a.result_reg = result_reg;
  a.live.assign(static_cast<size_t>(num_regs), LiveRange{});
  a.reads.assign(static_cast<size_t>(num_regs), 0);
  a.root.resize(static_cast<size_t>(num_regs));
  std::iota(a.root.begin(), a.root.end(), 0);
  a.last_use.assign(static_cast<size_t>(num_regs), INT_MAX);
  a.is_alias.assign(ops.size(), false);
  a.is_inplace.assign(ops.size(), false);
  a.sym_shape.assign(static_cast<size_t>(num_regs), Shape{});

  if (ops.empty()) {
    TTSNN_CHECK(result_reg == 0,
                "infer verify: empty plan cannot produce register r"
                    << result_reg);
    a.sym_shape[0] = Shape(5, kDimUnknown);
    return a;
  }

  // ---- pass 1: structure + per-kind field groups ----------------------------
  std::vector<int> def_op(static_cast<size_t>(num_regs), -1);
  auto defined_at = [&](int r, size_t i) {
    return r == 0 || (def_op[static_cast<size_t>(r)] >= 0 &&
                      def_op[static_cast<size_t>(r)] < static_cast<int>(i));
  };
  for (size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    TTSNN_CHECK(op.in >= 0 && op.in < num_regs,
                "infer verify: " << op_where(op, i) << " reads register r"
                                 << op.in << ", out of range for " << num_regs
                                 << " registers");
    TTSNN_CHECK(defined_at(op.in, i), "infer verify: "
                                          << op_where(op, i)
                                          << " reads register r" << op.in
                                          << " before it is written");
    if (has_second_input(op.kind)) {
      TTSNN_CHECK(op.in2 >= 0 && op.in2 < num_regs,
                  "infer verify: " << op_where(op, i)
                                   << " needs a second input register, got r"
                                   << op.in2);
      TTSNN_CHECK(defined_at(op.in2, i), "infer verify: "
                                             << op_where(op, i)
                                             << " reads register r" << op.in2
                                             << " before it is written");
    } else {
      TTSNN_CHECK(op.in2 < 0, "infer verify: " << op_where(op, i)
                                               << " has an unexpected second "
                                               << "input r" << op.in2);
    }
    TTSNN_CHECK(op.out >= 1 && op.out < num_regs,
                "infer verify: " << op_where(op, i) << " writes register r"
                                 << op.out << ", out of range for " << num_regs
                                 << " registers (r0 is the input)");
    TTSNN_CHECK(def_op[static_cast<size_t>(op.out)] < 0,
                "infer verify: " << op_where(op, i) << " writes register r"
                                 << op.out << ", already written by op "
                                 << def_op[static_cast<size_t>(op.out)]);
    check_op_fields(op, i);
    def_op[static_cast<size_t>(op.out)] = static_cast<int>(i);
  }
  TTSNN_CHECK(result_reg == 0 || def_op[static_cast<size_t>(result_reg)] >= 0,
              "infer verify: result register r" << result_reg
                                                << " is never written");

  // ---- liveness -------------------------------------------------------------
  for (int r = 0; r < num_regs; ++r) {
    a.live[static_cast<size_t>(r)].def = def_op[static_cast<size_t>(r)];
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    for (int r : {ops[i].in, ops[i].in2}) {
      if (r >= 0) {
        a.live[static_cast<size_t>(r)].last_use = static_cast<int>(i);
        ++a.reads[static_cast<size_t>(r)];
      }
    }
  }
  for (int r = 1; r < num_regs; ++r) {
    TTSNN_CHECK(def_op[static_cast<size_t>(r)] >= 0,
                "infer verify: register r" << r
                                           << " is never written (the plan "
                                           << "claims " << num_regs
                                           << " registers)");
    TTSNN_CHECK(r == result_reg || a.live[static_cast<size_t>(r)].last_use >= 0,
                "infer verify: "
                    << op_where(ops[static_cast<size_t>(
                                    def_op[static_cast<size_t>(r)])],
                                static_cast<size_t>(
                                    def_op[static_cast<size_t>(r)]))
                    << ": output register r" << r << " is never read");
  }

  // ---- symbolic shape inference ---------------------------------------------
  a.sym_shape[0] = Shape(5, kDimUnknown);
  for (size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    Shape& in = a.sym_shape[static_cast<size_t>(op.in)];
    Shape* in2 =
        op.in2 >= 0 ? &a.sym_shape[static_cast<size_t>(op.in2)] : nullptr;
    a.sym_shape[static_cast<size_t>(op.out)] =
        op_footprint(op, i, in, in2).out;
  }

  // ---- alias + in-place analysis --------------------------------------------
  // group_max[g]: last op reading any register of g's storage group (INT_MAX
  // once the result register joins — it never does, by construction below).
  auto member_last = [&](int r) {
    return r == result_reg ? INT_MAX : a.live[static_cast<size_t>(r)].last_use;
  };
  std::vector<int> group_max(static_cast<size_t>(num_regs), INT_MIN);
  group_max[0] = member_last(0);
  for (size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    const size_t out = static_cast<size_t>(op.out);
    const int g = a.root[static_cast<size_t>(op.in)];
    if (op.kind == Op::Kind::kFlatten && op.out != result_reg) {
      // Pure view: the output register aliases the input buffer.
      a.is_alias[i] = true;
      a.root[out] = g;
      group_max[static_cast<size_t>(g)] =
          std::max(group_max[static_cast<size_t>(g)], member_last(op.out));
      continue;
    }
    // Every elementwise kind whose kernel reads each input element before
    // writing the output at the same position — fused epilogues included.
    // kConvLif is excluded: its gemm writes whole tiles while later tiles
    // still read the input.
    const bool inplace_kind = op.kind == Op::Kind::kLif ||
                              op.kind == Op::Kind::kAffine ||
                              op.kind == Op::Kind::kAdd ||
                              op.kind == Op::Kind::kAffineLif ||
                              op.kind == Op::Kind::kAddLif ||
                              op.kind == Op::Kind::kAffineAdd;
    if (inplace_kind && g != 0 && op.out != result_reg &&
        group_max[static_cast<size_t>(g)] <= static_cast<int>(i) &&
        (op.in2 < 0 || a.root[static_cast<size_t>(op.in2)] != g)) {
      // The input buffer's last reader is this op: write the output over it.
      a.is_inplace[i] = true;
      a.root[out] = g;
      group_max[static_cast<size_t>(g)] =
          std::max(group_max[static_cast<size_t>(g)], member_last(op.out));
      continue;
    }
    a.root[out] = op.out;
    group_max[out] = member_last(op.out);
  }

  // Derived eager-release table (the Engine's legacy executor): a register is
  // dropped after its last reading op; never-read registers and the result
  // are pinned to the end of the plan.
  for (int r = 0; r < num_regs; ++r) {
    const int last = a.live[static_cast<size_t>(r)].last_use;
    a.last_use[static_cast<size_t>(r)] =
        (r == result_reg || last < 0) ? INT_MAX : last;
  }
  return a;
}

bool fusion_candidate(const PlanAnalysis& analysis, int reg) {
  return reg != analysis.result_reg &&
         analysis.reads[static_cast<size_t>(reg)] == 1;
}

Shape infer_op_shape(const Op& op, size_t index, Shape& in, Shape* in2) {
  return op_footprint(op, index, in, in2).out;
}

int64_t op_scratch_floats(const Op& op, const Shape& in_shape) {
  Shape in = in_shape;
  Shape in2 = in_shape;
  return op_footprint(op, 0, in, op.in2 >= 0 ? &in2 : nullptr).scratch;
}

int64_t op_col_floats(const Op& op, const Shape& in_shape) {
  Shape in = in_shape;
  Shape in2 = in_shape;
  return op_footprint(op, 0, in, op.in2 >= 0 ? &in2 : nullptr).col;
}

MemoryPlan plan_memory(const std::vector<Op>& ops,
                       const PlanAnalysis& analysis, const Shape& input) {
  TTSNN_CHECK(input.size() == 5,
              "infer plan: expects a concrete [T, N, C, H, W] input, got "
                  << shape_str(input));
  for (int64_t d : input) {
    TTSNN_CHECK(d > 0, "infer plan: input has a non-positive extent: "
                           << shape_str(input));
  }
  const int num_regs = analysis.num_regs;
  const int result_reg = analysis.result_reg;
  TTSNN_CHECK(analysis.is_alias.size() == ops.size(),
              "infer plan: analysis does not match this plan");

  MemoryPlan plan;
  plan.shape.assign(static_cast<size_t>(num_regs), Shape{});
  plan.offset.assign(static_cast<size_t>(num_regs), -1);
  plan.floats.assign(static_cast<size_t>(num_regs), 0);
  plan.shape[0] = input;
  plan.floats[0] = shape_numel(input);

  // Concrete shape walk: the same transfer functions as the compile-time
  // verifier, now with every extent known, so residual geometry errors (pool
  // divisibility, TEBN T, short HTT schedules) throw here, pre-kernel.
  for (size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    Shape& in = plan.shape[static_cast<size_t>(op.in)];
    Shape* in2 =
        op.in2 >= 0 ? &plan.shape[static_cast<size_t>(op.in2)] : nullptr;
    const OpFootprint f = op_footprint(op, i, in, in2);
    plan.shape[static_cast<size_t>(op.out)] = f.out;
    plan.floats[static_cast<size_t>(op.out)] = shape_numel(f.out);
    plan.col_floats = std::max(plan.col_floats, f.col);
    plan.scratch_floats = std::max(plan.scratch_floats, f.scratch);
    if (!analysis.is_alias[i]) {
      plan.unplanned_floats +=
          plan.floats[static_cast<size_t>(op.out)] + f.scratch;
    }
  }
  plan.unplanned_floats += plan.col_floats;

  // Storage-group extents: a group's buffer must hold its largest member and
  // live until the last read of any member.
  auto member_end = [&](int r) {
    return r == result_reg ? INT_MAX
                           : analysis.live[static_cast<size_t>(r)].last_use;
  };
  std::vector<int> group_end(static_cast<size_t>(num_regs), INT_MIN);
  std::vector<int64_t> group_size(static_cast<size_t>(num_regs), 0);
  for (int r = 0; r < num_regs; ++r) {
    const size_t g = static_cast<size_t>(analysis.root[static_cast<size_t>(r)]);
    group_end[g] = std::max(group_end[g], member_end(r));
    group_size[g] =
        std::max(group_size[g], plan.floats[static_cast<size_t>(r)]);
  }

  // The im2col and composite-op scratch regions live for the whole call and
  // sit at the bottom of the workspace; registers pack above them.
  int64_t base = 0;
  plan.col_offset = base;
  base += align_up(plan.col_floats);
  plan.scratch_offset = base;
  base += align_up(plan.scratch_floats);

  // Greedy best-fit: place groups largest-first; each goes into the smallest
  // temporal-conflict-free gap that fits (or opens new space at the top).
  struct Block {
    int64_t off = 0;
    int64_t size = 0;
    int start = 0;
    int end = 0;
  };
  struct Region {
    int root = 0;
    int64_t size = 0;
    int start = 0;
    int end = 0;
  };
  std::vector<Region> regions;
  for (int r = 0; r < num_regs; ++r) {
    if (analysis.root[static_cast<size_t>(r)] != r) continue;  // member
    if (r == 0 || r == result_reg) continue;  // caller / owning memory
    regions.push_back(Region{r, align_up(group_size[static_cast<size_t>(r)]),
                             analysis.live[static_cast<size_t>(r)].def,
                             group_end[static_cast<size_t>(r)]});
  }
  std::sort(regions.begin(), regions.end(), [](const Region& x, const Region& y) {
    if (x.size != y.size) return x.size > y.size;
    if (x.start != y.start) return x.start < y.start;
    return x.root < y.root;
  });
  std::vector<Block> placed;
  for (const Region& reg : regions) {
    std::vector<const Block*> conflicts;
    for (const Block& b : placed) {
      if (b.start <= reg.end && reg.start <= b.end) conflicts.push_back(&b);
    }
    std::sort(conflicts.begin(), conflicts.end(),
              [](const Block* x, const Block* y) { return x->off < y->off; });
    int64_t best_off = -1;
    int64_t best_gap = INT64_MAX;
    int64_t cursor = base;
    for (const Block* b : conflicts) {
      if (b->off > cursor) {
        const int64_t gap = b->off - cursor;
        if (gap >= reg.size && gap < best_gap) {
          best_gap = gap;
          best_off = cursor;
        }
      }
      cursor = std::max(cursor, b->off + b->size);
    }
    if (best_off < 0) best_off = cursor;  // open space at the top
    placed.push_back(Block{best_off, reg.size, reg.start, reg.end});
    plan.offset[static_cast<size_t>(reg.root)] = best_off;
  }
  for (int r = 0; r < num_regs; ++r) {
    const int g = analysis.root[static_cast<size_t>(r)];
    if (g != r) {
      plan.offset[static_cast<size_t>(r)] =
          plan.offset[static_cast<size_t>(g)];
    }
  }
  plan.total_floats = base;
  for (const Block& b : placed) {
    plan.total_floats = std::max(plan.total_floats, b.off + b.size);
  }

  // Widest simultaneously-live set of planned groups — the lower bound the
  // packing is judged against in the report.
  for (size_t i = 0; i < ops.size(); ++i) {
    int64_t live_now = 0;
    for (const Region& reg : regions) {
      if (reg.start <= static_cast<int>(i) && reg.end >= static_cast<int>(i)) {
        live_now += reg.size;
      }
    }
    plan.peak_live_floats = std::max(plan.peak_live_floats, live_now);
  }
  return plan;
}

std::string memory_plan_report(const std::vector<Op>& ops,
                               const PlanAnalysis& analysis,
                               const Shape& input) {
  const MemoryPlan plan = plan_memory(ops, analysis, input);
  std::ostringstream oss;
  auto kib = [](int64_t floats) {
    return static_cast<double>(floats) * 4.0 / 1024.0;
  };
  oss << "memory plan for input " << shape_str(input) << "\n";
  for (size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    const size_t out = static_cast<size_t>(op.out);
    oss << "  " << i << ": " << op_kind_name(op.kind);
    if (!op.label.empty()) oss << " " << op.label;
    oss << " -> r" << op.out << " " << shape_str(plan.shape[out]);
    const int last = analysis.live[out].last_use;
    oss << " live [" << i << ", ";
    if (op.out == analysis.result_reg || last < 0) {
      oss << "end";
    } else {
      oss << last;
    }
    oss << "]";
    if (analysis.is_alias[i]) {
      oss << " alias of r" << op.in;
    } else if (analysis.is_inplace[i]) {
      oss << " in-place over r" << op.in << " @" << plan.offset[out];
    } else if (op.out == analysis.result_reg) {
      oss << " result (owned)";
    } else {
      oss << " @" << plan.offset[out];
    }
    oss << "\n";
  }
  oss << "workspace: " << plan.total_floats << " floats ("
      << kib(plan.total_floats) << " KiB) = col " << plan.col_floats
      << " + scratch " << plan.scratch_floats << " + registers\n";
  oss << "unplanned per-call allocations: " << plan.unplanned_floats
      << " floats (" << kib(plan.unplanned_floats) << " KiB); peak live "
      << plan.peak_live_floats << " floats (" << kib(plan.peak_live_floats)
      << " KiB)\n";
  return oss.str();
}

}  // namespace ttsnn::infer
