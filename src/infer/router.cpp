#include "infer/router.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "infer/analysis.h"
#include "infer/plan_cache.h"
#include "util/failpoint.h"

namespace ttsnn::infer {

namespace {

using TimePoint = std::chrono::steady_clock::time_point;

TimePoint group_deadline(const TimePoint& arrival, double max_delay_ms) {
  return arrival +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double, std::milli>(max_delay_ms));
}

std::chrono::steady_clock::duration ms_duration(double ms) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

int64_t sample_bytes(const Tensor& x) {
  return x.numel() * static_cast<int64_t>(sizeof(float));
}

}  // namespace

const char* priority_name(Priority cls) {
  switch (cls) {
    case Priority::kBatch:
      return "batch";
    case Priority::kNormal:
      return "normal";
    case Priority::kInteractive:
      return "interactive";
  }
  return "?";
}

Router::Router(const Engine& engine, RouterOptions opts) : opts_(opts) {
  TTSNN_CHECK(opts_.num_shards >= 1, "Router needs >= 1 shard");
  TTSNN_CHECK(opts_.max_batch >= 1, "Router max_batch must be >= 1");
  TTSNN_CHECK(opts_.max_delay_ms >= 0.0, "Router max_delay_ms must be >= 0");
  TTSNN_CHECK(opts_.dispatchers_per_shard >= 1,
              "Router needs >= 1 dispatcher per shard");
  TTSNN_CHECK(opts_.queue_bytes >= 0, "Router queue_bytes must be >= 0");
  TTSNN_CHECK(opts_.steal_poll_ms > 0.0, "Router steal_poll_ms must be > 0");
  TTSNN_CHECK(opts_.quarantine_after >= 0,
              "Router quarantine_after must be >= 0 (0 disables)");
  TTSNN_CHECK(opts_.probe_interval_ms > 0.0,
              "Router probe_interval_ms must be > 0");
  signature_ = engine.input_signature();
  shards_.reserve(static_cast<size_t>(opts_.num_shards));
  for (int i = 0; i < opts_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(engine, i));
  }
  // Dispatchers start only after every shard exists: a stealing dispatcher
  // walks shards_ itself, and shard_for must already be stable.
  for (auto& shard : shards_) {
    shard->dispatchers.reserve(
        static_cast<size_t>(opts_.dispatchers_per_shard));
    for (int d = 0; d < opts_.dispatchers_per_shard; ++d) {
      shard->dispatchers.emplace_back(
          [this, s = shard.get()] { dispatcher_loop(*s); });
    }
  }
}

Router::~Router() { shutdown(); }

void Router::shutdown() {
  // One caller does the stop + join; concurrent callers (e.g. the destructor
  // racing an explicit shutdown) BLOCK inside call_once until that caller
  // finishes, so everyone returning from shutdown() can rely on the
  // documented post-condition: queues drained, dispatchers joined.
  std::call_once(shutdown_once_, [this] {
    for (auto& shard : shards_) {
      {
        std::lock_guard<std::mutex> lock(shard->mu);
        shard->stop = true;
      }
      shard->cv.notify_all();
    }
    for (auto& shard : shards_) {
      for (std::thread& t : shard->dispatchers) {
        if (t.joinable()) t.join();
      }
      shard->dispatchers.clear();
    }
  });
}

int Router::shard_for(const Shape& shape, uint64_t session) const {
  // FNV-1a over the shape extents and the session key. Same (shape, session)
  // always hashes alike, so a client's same-shaped requests coalesce on one
  // shard; distinct sessions spread a hot shape across replicas.
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (int64_t d : shape) mix(static_cast<uint64_t>(d));
  mix(session);
  return static_cast<int>(h % static_cast<uint64_t>(shards_.size()));
}

std::future<Tensor> Router::submit(Tensor x, const SubmitOptions& sopts) {
  TTSNN_CHECK(x.dim() == 4, "Router::submit expects one sample [T, C, H, W], "
                                << "got " << shape_str(x.shape()));
  // All extents must be positive: a zero-sized sample would reach the
  // dispatcher's numel()/t_steps stacking arithmetic as a divide by zero and
  // take the whole process down instead of failing one request.
  for (int64_t d = 0; d < 4; ++d) {
    TTSNN_CHECK(x.size(d) > 0, "Router::submit needs all dims > 0, got "
                                   << shape_str(x.shape()));
  }
  // Validate against the model's input signature NOW, at the submit call
  // site. A sample the compiled plan can never serve (a channel count the
  // weights don't have, a TEBN-pinned T) used to queue, wait out its
  // deadline, and fail deep inside a dispatcher with an engine-internal
  // message; it now throws synchronously with the caller's stack intact.
  // Signature layout is [T, N, C, H, W]; the sample is [T, C, H, W].
  static constexpr int kSigAxis[4] = {0, 2, 3, 4};
  for (int d = 0; d < 4; ++d) {
    const int64_t want = signature_[static_cast<size_t>(kSigAxis[d])];
    if (want != kDimUnknown && x.size(d) != want) {
      std::ostringstream oss;
      oss << "Router::submit: sample " << shape_str(x.shape())
          << " does not match the model input signature [T, N, C, H, W] = "
          << shape_str(signature_) << " (sample dim " << d << " is "
          << x.size(d) << ", the plan requires " << want << ")";
      throw Error(oss.str());
    }
  }
  const int ci = static_cast<int>(sopts.priority);
  TTSNN_CHECK(ci >= 0 && ci < kNumPriority,
              "Router::submit: invalid priority class " << ci);
  TTSNN_CHECK(sopts.deadline_ms >= 0.0,
              "Router::submit: deadline_ms must be >= 0 (0 = none)");

  Request req;
  req.x = std::move(x);
  req.arrival = std::chrono::steady_clock::now();
  req.deadline = sopts.deadline_ms > 0.0
                     ? req.arrival + ms_duration(sopts.deadline_ms)
                     : TimePoint::max();
  req.session = sopts.session;
  std::future<Tensor> fut = req.promise.get_future();
  const int64_t bytes = sample_bytes(req.x);

  // Home shard first; a quarantined home re-routes to the next healthy shard
  // (scanning in index order keeps the choice deterministic), so new traffic
  // never queues behind a failing replica. With every shard quarantined the
  // home keeps the request — its queue still drains via choose_executor.
  Shard* target =
      shards_[static_cast<size_t>(shard_for(req.x.shape(), sopts.session))]
          .get();
  if (opts_.quarantine_after > 0 &&
      target->quarantined.load(std::memory_order_acquire)) {
    for (size_t k = 1; k < shards_.size(); ++k) {
      Shard& cand = *shards_[(static_cast<size_t>(target->index) + k) %
                             shards_.size()];
      if (!cand.quarantined.load(std::memory_order_acquire)) {
        {
          std::lock_guard<std::mutex> lock(target->mu);
          ++target->rerouted;
        }
        target = &cand;
        break;
      }
    }
  }
  Shard& shard = *target;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    TTSNN_CHECK(!shard.stop, "Router::submit after shutdown");
    if (opts_.queue_bytes > 0 &&
        shard.queued_bytes + bytes > opts_.queue_bytes) {
      ++shard.shed;
      // Backoff hint: the queue ahead needs ~queued/max_batch dispatches to
      // drain, each worth up to max_delay_ms of coalescing; +1 batch of
      // headroom, capped so a deeply flooded shard never tells a client to
      // go away for more than a second.
      int64_t queued = 0;
      for (int64_t d : shard.class_depth) queued += d;
      const double per_batch = std::max(opts_.max_delay_ms, 1.0);
      const double retry_ms = std::min(
          (std::ceil(static_cast<double>(queued) /
                     static_cast<double>(opts_.max_batch)) +
           1.0) *
              per_batch,
          1000.0);
      std::ostringstream oss;
      oss << "Router::submit: admission control shed a " << bytes
          << "-byte sample (" << priority_name(sopts.priority)
          << "): shard holds " << shard.queued_bytes << " of "
          << opts_.queue_bytes << " queued bytes; retry after " << retry_ms
          << " ms";
      throw AdmissionError(oss.str(), retry_ms);
    }
    Group* group = nullptr;
    for (Group& g : shard.groups) {
      if (g.cls == sopts.priority && g.shape == req.x.shape()) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      shard.groups.emplace_back();
      group = &shard.groups.back();
      group->shape = req.x.shape();
      group->cls = sopts.priority;
    }
    group->min_deadline = std::min(group->min_deadline, req.deadline);
    group->reqs.push_back(std::move(req));
    ++shard.requests;
    shard.queued_bytes += bytes;
    ++shard.class_depth[static_cast<size_t>(ci)];
  }
  total_queued_.fetch_add(1, std::memory_order_relaxed);
  shard.cv.notify_one();
  return fut;
}

std::future<Tensor> Router::submit(Tensor x, uint64_t session, Priority cls) {
  SubmitOptions sopts;
  sopts.session = session;
  sopts.priority = cls;
  return submit(std::move(x), sopts);
}

Tensor Router::infer(Tensor x, const SubmitOptions& sopts) {
  return submit(std::move(x), sopts).get();
}

Tensor Router::infer(Tensor x, uint64_t session, Priority cls) {
  return submit(std::move(x), session, cls).get();
}

int64_t Router::cancel(uint64_t session) {
  // Collect matching requests under each shard's lock, settle their promises
  // AFTER every lock is released: a future continuation must never run with
  // a shard lock held.
  std::vector<Request> cancelled;
  for (auto& sp : shards_) {
    Shard& shard = *sp;
    const size_t before = cancelled.size();
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.groups.begin(); it != shard.groups.end();) {
      Group& g = *it;
      for (auto rit = g.reqs.begin(); rit != g.reqs.end();) {
        if (rit->session == session) {
          shard.queued_bytes -= sample_bytes(rit->x);
          --shard.class_depth[static_cast<size_t>(g.cls)];
          total_queued_.fetch_sub(1, std::memory_order_relaxed);
          cancelled.push_back(std::move(*rit));
          rit = g.reqs.erase(rit);
        } else {
          ++rit;
        }
      }
      it = g.reqs.empty() ? shard.groups.erase(it) : std::next(it);
    }
    shard.cancelled += static_cast<int64_t>(cancelled.size() - before);
  }
  for (Request& r : cancelled) {
    std::ostringstream oss;
    oss << "Router: request cancelled (session " << session << ", sample "
        << shape_str(r.x.shape()) << ")";
    r.promise.set_exception(std::make_exception_ptr(CancelledError(oss.str())));
  }
  return static_cast<int64_t>(cancelled.size());
}

RouterStats Router::stats() const {
  RouterStats s;
  s.shard_requests.reserve(shards_.size());
  s.shard_batches.reserve(shards_.size());
  s.shard_steals.reserve(shards_.size());
  s.shard_quarantined.reserve(shards_.size());
  s.class_depth.assign(kNumPriority, 0);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.requests += shard->requests;
    s.batches += shard->batches;
    s.max_batch = std::max(s.max_batch, shard->max_batch);
    s.shed += shard->shed;
    s.steals += shard->steals;
    s.deadline_misses += shard->deadline_misses;
    s.cancelled += shard->cancelled;
    s.replica_failures += shard->failures;
    s.quarantines += shard->quarantines;
    s.readmissions += shard->readmissions;
    s.probes += shard->probes;
    s.rerouted += shard->rerouted;
    s.shard_requests.push_back(shard->requests);
    s.shard_batches.push_back(shard->batches);
    s.shard_steals.push_back(shard->steals);
    const bool quarantined =
        shard->quarantined.load(std::memory_order_relaxed);
    s.shard_quarantined.push_back(quarantined ? 1 : 0);
    if (!quarantined) ++s.healthy_shards;
    for (int c = 0; c < kNumPriority; ++c) {
      s.class_depth[static_cast<size_t>(c)] +=
          shard->class_depth[static_cast<size_t>(c)];
    }
  }
  // One cache serves every replica, so read it once (shard 0's handle).
  const ProgramCacheStats cache = shards_[0]->engine.cache_stats();
  s.cache_hits = cache.hits;
  s.cache_misses = cache.misses;
  s.cache_evictions = cache.evictions;
  s.cache_shapes = cache.entries;
  s.cache_bytes = cache.bytes;
  // Weight storage is likewise shared by every replica: per-dtype unique
  // bytes from shard 0's engine, labeled with the compiled weight dtype.
  const WeightFootprint& wf = shards_[0]->engine.weight_footprint();
  s.weight_dtype = weight_dtype_name(shards_[0]->engine.options().weight_dtype);
  s.weight_f32_bytes = wf.f32_bytes;
  s.weight_bf16_bytes = wf.bf16_bytes;
  s.weight_int8_bytes = wf.int8_bytes;
  return s;
}

void Router::fail_expired(std::vector<Request>& expired) {
  for (Request& r : expired) {
    std::ostringstream oss;
    oss << "Router: request deadline expired while queued (sample "
        << shape_str(r.x.shape()) << ", session " << r.session << ")";
    r.promise.set_exception(std::make_exception_ptr(DeadlineError(oss.str())));
  }
  expired.clear();
}

std::vector<Router::Request> Router::pop_ready_locked(
    Shard& shard, TimePoint now, bool flush_any, TimePoint* next_deadline,
    std::vector<Request>* expired) {
  *next_deadline = TimePoint::max();

  // Deadline prune FIRST, so the batch formed below is exactly the batch
  // that would have formed had the expired requests never been queued — the
  // survivors' outputs stay bit-identical. Groups whose min_deadline bound
  // is still in the future (including the no-deadline common case,
  // TimePoint::max()) are skipped without touching their requests. The
  // shutdown drain (flush_any) skips pruning entirely: shutdown() promises
  // every queued request finishes.
  if (!flush_any) {
    for (auto it = shard.groups.begin(); it != shard.groups.end();) {
      Group& g = *it;
      if (g.min_deadline <= now) {
        TimePoint min_left = TimePoint::max();
        for (auto rit = g.reqs.begin(); rit != g.reqs.end();) {
          if (rit->deadline <= now) {
            shard.queued_bytes -= sample_bytes(rit->x);
            --shard.class_depth[static_cast<size_t>(g.cls)];
            ++shard.deadline_misses;
            total_queued_.fetch_sub(1, std::memory_order_relaxed);
            expired->push_back(std::move(*rit));
            rit = g.reqs.erase(rit);
          } else {
            min_left = std::min(min_left, rit->deadline);
            ++rit;
          }
        }
        g.min_deadline = min_left;  // exact again after a full scan
      }
      it = g.reqs.empty() ? shard.groups.erase(it) : std::next(it);
    }
  }

  // Scan the live groups for ready ones: a group is ready when it is FULL
  // (dispatches immediately regardless of age — the PR-2 server would sit
  // on a full batch while an older, not-yet-due request held the queue
  // front) or when its deadline — always derived from its own oldest
  // request's arrival — has expired. Among ready groups a higher priority
  // class wins outright; within a class, serve the one whose front request
  // has waited longest: full still beats not-yet-due, but a sustained flood
  // that keeps one group permanently full cannot starve an expired group OF
  // ITS CLASS, because the flood's front stays fresh (it keeps being
  // consumed) while the starving group's front only ages. Groups that are
  // neither feed the earliest pending flush — or request deadline — back to
  // the caller's sleep.
  auto ready = shard.groups.end();
  for (auto it = shard.groups.begin(); it != shard.groups.end(); ++it) {
    const bool full = static_cast<int64_t>(it->reqs.size()) >= opts_.max_batch;
    const TimePoint deadline =
        group_deadline(it->reqs.front().arrival, opts_.max_delay_ms);
    if (full || deadline <= now) {
      if (ready == shard.groups.end() || it->cls > ready->cls ||
          (it->cls == ready->cls &&
           it->reqs.front().arrival < ready->reqs.front().arrival)) {
        ready = it;
      }
    } else {
      *next_deadline =
          std::min({*next_deadline, deadline, it->min_deadline});
    }
  }
  if (ready == shard.groups.end()) {
    if (!flush_any || shard.groups.empty()) return {};
    ready = shard.groups.begin();  // drain: flush without waiting out ages
  }

  std::vector<Request> batch;
  batch.reserve(static_cast<size_t>(std::min<int64_t>(
      opts_.max_batch, static_cast<int64_t>(ready->reqs.size()))));
  while (!ready->reqs.empty() &&
         static_cast<int64_t>(batch.size()) < opts_.max_batch) {
    shard.queued_bytes -= sample_bytes(ready->reqs.front().x);
    batch.push_back(std::move(ready->reqs.front()));
    ready->reqs.pop_front();
  }
  shard.class_depth[static_cast<size_t>(ready->cls)] -=
      static_cast<int64_t>(batch.size());
  total_queued_.fetch_sub(static_cast<int64_t>(batch.size()),
                          std::memory_order_relaxed);
  // A partially drained group keeps its remaining requests AND their
  // arrival stamps, so the tail's deadline stays anchored to when those
  // requests actually arrived.
  if (ready->reqs.empty()) shard.groups.erase(ready);
  return batch;
}

std::vector<Router::Request> Router::try_steal(Shard& thief) {
  // Snapshot the other shards' loads one lock at a time — this function
  // NEVER holds two shard locks, so it cannot deadlock against another
  // dispatcher stealing in the opposite direction.
  struct Load {
    Shard* shard;
    int64_t queued;
  };
  std::vector<Load> loads;
  loads.reserve(shards_.size());
  for (auto& sp : shards_) {
    Shard* s = sp.get();
    if (s == &thief) continue;
    int64_t queued = 0;
    {
      std::lock_guard<std::mutex> lock(s->mu);
      for (const Group& g : s->groups) {
        queued += static_cast<int64_t>(g.reqs.size());
      }
    }
    if (queued > 0) loads.push_back({s, queued});
  }
  std::sort(loads.begin(), loads.end(),
            [](const Load& a, const Load& b) { return a.queued > b.queued; });

  const TimePoint now = std::chrono::steady_clock::now();
  for (const Load& load : loads) {
    std::vector<Request> batch;
    std::vector<Request> expired;
    {
      std::lock_guard<std::mutex> lock(load.shard->mu);
      TimePoint ignored;
      // Only READY groups are stealable: a group still coalescing toward a
      // full batch keeps coalescing on its home shard.
      batch = pop_ready_locked(*load.shard, now, /*flush_any=*/false, &ignored,
                               &expired);
    }
    fail_expired(expired);  // victim's lock released; settle its misses
    if (!batch.empty()) {
      {
        std::lock_guard<std::mutex> lock(thief.mu);
        ++thief.steals;
        ++thief.batches;  // the batch executes HERE, on the thief's replica
        thief.max_batch =
            std::max(thief.max_batch, static_cast<int64_t>(batch.size()));
      }
      return batch;
    }
  }
  return {};
}

std::vector<Router::Request> Router::next_batch(Shard& shard, bool* stopped) {
  *stopped = false;
  const bool can_steal = opts_.work_stealing && shards_.size() > 1;
  const bool health_on = opts_.quarantine_after > 0;
  std::unique_lock<std::mutex> lock(shard.mu);
  for (;;) {
    if (shard.stop && shard.groups.empty()) {
      *stopped = true;
      return {};
    }
    const TimePoint now = std::chrono::steady_clock::now();
    TimePoint next_deadline = TimePoint::max();
    std::vector<Request> expired;
    std::vector<Request> batch = pop_ready_locked(
        shard, now, /*flush_any=*/shard.stop, &next_deadline, &expired);
    if (!batch.empty() || !expired.empty()) {
      if (!batch.empty()) {
        // Counted at POP time, not completion: stats().batches is the
        // "dispatcher picked this up" signal tests and probes key on.
        ++shard.batches;
        shard.max_batch =
            std::max(shard.max_batch, static_cast<int64_t>(batch.size()));
      }
      // Settle outside the lock: a waiter's continuation may re-enter the
      // router (submit a retry) the instant its future resolves.
      lock.unlock();
      fail_expired(expired);
      if (!batch.empty()) return batch;
      lock.lock();
      continue;  // the queue may have changed while unlocked; rescan
    }
    if (shard.stop) continue;  // re-check: drain emptied the shard

    const bool quarantined =
        health_on && shard.quarantined.load(std::memory_order_relaxed);
    if (quarantined) {
      // A quarantined replica's dispatcher owes its queue a drain (handled
      // above — choose_executor runs those batches elsewhere) and its
      // replica a probe; it does NOT take on stolen work.
      if (now >= shard.next_probe) return {};  // probe due; caller probes
      next_deadline = std::min(next_deadline, shard.next_probe);
      shard.cv.wait_until(lock, next_deadline);
      continue;
    }

    if (!shard.groups.empty()) {
      // Own work pending but not yet due: sleep to the earliest deadline
      // (a fill, a new group, or shutdown wakes us sooner).
      shard.cv.wait_until(lock, next_deadline);
      continue;
    }
    if (!can_steal) {
      shard.cv.wait(lock,
                    [&shard] { return shard.stop || !shard.groups.empty(); });
      continue;
    }
    // Empty shard, stealing enabled: poll the rest of the fleet. Fast
    // cadence while the router holds queued work anywhere (that work may go
    // ready any moment), 20x slower when fully idle.
    lock.unlock();
    std::vector<Request> stolen = try_steal(shard);
    if (!stolen.empty()) return stolen;
    const double poll_ms =
        total_queued_.load(std::memory_order_relaxed) > 0
            ? opts_.steal_poll_ms
            : opts_.steal_poll_ms * 20.0;
    lock.lock();
    shard.cv.wait_for(lock, ms_duration(poll_ms), [&shard] {
      return shard.stop || !shard.groups.empty();
    });
  }
}

Tensor Router::run_replica(const Shard& shard, const Tensor& input,
                           Tensor& workspace) const {
  // Both failpoints sit in front of the engine so an injected fault takes
  // the exact path an engine fault would: the anonymous site for "any
  // replica", the named one to fail replica `shard.index` specifically
  // (which is how tests and fault drills quarantine one replica).
  TTSNN_FAILPOINT("router.dispatch");
  TTSNN_FAILPOINT(shard.failpoint_name.c_str());
  return shard.engine.run(input, workspace);
}

bool Router::run_batch(const Shard& exec, std::vector<Request>& batch,
                       Tensor& workspace) const {
  // Promises fulfilled so far; the catch below must only touch the rest —
  // set_exception on an already-satisfied promise throws future_error.
  size_t fulfilled = 0;
  try {
    // Stack [T, C, H, W] samples into [T, N, C, H, W]: sample n's step t
    // lands at row (t * N + n).
    const Shape& s0 = batch[0].x.shape();
    const int64_t n = static_cast<int64_t>(batch.size());
    const int64_t t_steps = s0[0];
    const int64_t chw = batch[0].x.numel() / t_steps;
    Shape in_shape{t_steps, n, s0[1], s0[2], s0[3]};
    Tensor input(in_shape);
    for (int64_t j = 0; j < n; ++j) {
      TTSNN_CHECK(batch[static_cast<size_t>(j)].x.shape() == s0,
                  "Router: a batch must share one shape, got "
                      << shape_str(batch[static_cast<size_t>(j)].x.shape())
                      << " vs " << shape_str(s0));
      const float* src = batch[static_cast<size_t>(j)].x.data();
      for (int64_t t = 0; t < t_steps; ++t) {
        std::copy(src + t * chw, src + (t + 1) * chw,
                  input.data() + (t * n + j) * chw);
      }
    }

    Tensor out = run_replica(exec, input, workspace);

    // Split [T, N, ...] back into per-sample [T, ...] tensors.
    TTSNN_CHECK(out.dim() >= 2 && out.size(0) == t_steps && out.size(1) == n,
                "Router: engine output shape " << shape_str(out.shape())
                                               << " lost the batch layout");
    const int64_t row = out.numel() / (t_steps * n);
    Shape sample_shape;
    sample_shape.push_back(t_steps);
    for (int64_t d = 2; d < out.dim(); ++d) sample_shape.push_back(out.size(d));
    for (int64_t j = 0; j < n; ++j) {
      Tensor sample(sample_shape);
      for (int64_t t = 0; t < t_steps; ++t) {
        std::copy(out.data() + (t * n + j) * row,
                  out.data() + (t * n + j + 1) * row,
                  sample.data() + t * row);
      }
      batch[static_cast<size_t>(j)].promise.set_value(std::move(sample));
      ++fulfilled;
    }
    return true;
  } catch (...) {
    // A failed run poisons the not-yet-fulfilled futures of its batch (all
    // same-shaped, per next_batch), never the router itself.
    for (size_t j = fulfilled; j < batch.size(); ++j) {
      batch[j].promise.set_exception(std::current_exception());
    }
    return false;
  }
}

Router::Shard& Router::choose_executor(Shard& home) {
  if (opts_.quarantine_after <= 0 ||
      !home.quarantined.load(std::memory_order_acquire)) {
    return home;
  }
  // Replicas share weights and the program cache, so a batch runs
  // bit-identically on any of them; index-order scan keeps it deterministic.
  for (size_t k = 1; k < shards_.size(); ++k) {
    Shard& cand =
        *shards_[(static_cast<size_t>(home.index) + k) % shards_.size()];
    if (!cand.quarantined.load(std::memory_order_acquire)) return cand;
  }
  return home;  // every replica quarantined: home is no worse than any other
}

void Router::account_run(Shard& exec, bool ok, const Shape& batched_shape) {
  bool went_quarantined = false;
  {
    std::lock_guard<std::mutex> lock(exec.mu);
    if (ok) {
      exec.consecutive_failures = 0;
      if (exec.quarantined.load(std::memory_order_relaxed)) {
        // Evidence of health beats waiting for the next probe (this path is
        // the all-quarantined fallback recovering on its own).
        exec.quarantined.store(false, std::memory_order_release);
        ++exec.readmissions;
      }
      return;
    }
    ++exec.failures;
    if (opts_.quarantine_after == 0) return;
    ++exec.consecutive_failures;
    exec.probe_shape = batched_shape;  // what the probe will re-try
    if (exec.consecutive_failures >= opts_.quarantine_after &&
        !exec.quarantined.load(std::memory_order_relaxed)) {
      exec.quarantined.store(true, std::memory_order_release);
      ++exec.quarantines;
      exec.next_probe =
          std::chrono::steady_clock::now() + ms_duration(opts_.probe_interval_ms);
      went_quarantined = true;
    }
  }
  // Wake the shard's dispatchers: their wait must now track next_probe.
  if (went_quarantined) exec.cv.notify_all();
}

void Router::maybe_probe(Shard& shard, Tensor& workspace) {
  Shape probe_shape;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!shard.quarantined.load(std::memory_order_relaxed)) return;
    if (std::chrono::steady_clock::now() < shard.next_probe) return;
    ++shard.probes;
    // Pre-schedule the next attempt; a successful probe makes it moot.
    shard.next_probe =
        std::chrono::steady_clock::now() + ms_duration(opts_.probe_interval_ms);
    probe_shape = shard.probe_shape;
  }
  if (probe_shape.size() != 5) return;  // quarantined without a recorded run
  try {
    // A synthetic zeros batch of the exact shape that failed, on the
    // quarantined replica's OWN engine — through run_replica, so a still-
    // armed per-replica failpoint (or a still-broken replica) keeps it
    // quarantined. No client future is ever attached to a probe.
    Tensor zeros(probe_shape);
    (void)run_replica(shard, zeros, workspace);
  } catch (...) {
    return;  // still failing: stay quarantined until the next probe
  }
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.quarantined.store(false, std::memory_order_release);
    shard.consecutive_failures = 0;
    ++shard.readmissions;
  }
}

void Router::dispatcher_loop(Shard& shard) {
  // One workspace per dispatcher thread, handed to every run: after the first
  // batch of each shape (growing it to the largest layout seen), the planned
  // engine makes zero workspace allocations per call.
  Tensor workspace;
  for (;;) {
    bool stopped = false;
    std::vector<Request> batch = next_batch(shard, &stopped);
    if (stopped) return;
    if (batch.empty()) {
      // next_batch returned early because a re-admission probe is due.
      maybe_probe(shard, workspace);
      continue;
    }
    // A healthy shard executes its own batch; a quarantined one drains onto
    // the first healthy replica (bit-identical — shared weights + cache).
    Shard& exec = choose_executor(shard);
    const Shape& s0 = batch[0].x.shape();
    const Shape batched{s0[0], static_cast<int64_t>(batch.size()), s0[1],
                        s0[2], s0[3]};
    const bool ok = run_batch(exec, batch, workspace);
    account_run(exec, ok, batched);
  }
}

}  // namespace ttsnn::infer
