#include "infer/router.h"

#include <algorithm>
#include <chrono>

namespace ttsnn::infer {

namespace {

using TimePoint = std::chrono::steady_clock::time_point;

TimePoint group_deadline(const TimePoint& arrival, double max_delay_ms) {
  return arrival +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double, std::milli>(max_delay_ms));
}

}  // namespace

Router::Router(const Engine& engine, RouterOptions opts) : opts_(opts) {
  TTSNN_CHECK(opts_.num_shards >= 1, "Router needs >= 1 shard");
  TTSNN_CHECK(opts_.max_batch >= 1, "Router max_batch must be >= 1");
  TTSNN_CHECK(opts_.max_delay_ms >= 0.0, "Router max_delay_ms must be >= 0");
  TTSNN_CHECK(opts_.dispatchers_per_shard >= 1,
              "Router needs >= 1 dispatcher per shard");
  shards_.reserve(static_cast<size_t>(opts_.num_shards));
  for (int i = 0; i < opts_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(engine));
  }
  // Dispatchers start only after every shard exists: a dispatcher never
  // touches any shard but its own, but shard_for must already be stable.
  for (auto& shard : shards_) {
    shard->dispatchers.reserve(
        static_cast<size_t>(opts_.dispatchers_per_shard));
    for (int d = 0; d < opts_.dispatchers_per_shard; ++d) {
      shard->dispatchers.emplace_back(
          [this, s = shard.get()] { dispatcher_loop(*s); });
    }
  }
}

Router::~Router() { shutdown(); }

void Router::shutdown() {
  // One caller does the stop + join; concurrent callers (e.g. the destructor
  // racing an explicit shutdown) BLOCK inside call_once until that caller
  // finishes, so everyone returning from shutdown() can rely on the
  // documented post-condition: queues drained, dispatchers joined.
  std::call_once(shutdown_once_, [this] {
    for (auto& shard : shards_) {
      {
        std::lock_guard<std::mutex> lock(shard->mu);
        shard->stop = true;
      }
      shard->cv.notify_all();
    }
    for (auto& shard : shards_) {
      for (std::thread& t : shard->dispatchers) {
        if (t.joinable()) t.join();
      }
      shard->dispatchers.clear();
    }
  });
}

int Router::shard_for(const Shape& shape, uint64_t session) const {
  // FNV-1a over the shape extents and the session key. Same (shape, session)
  // always hashes alike, so a client's same-shaped requests coalesce on one
  // shard; distinct sessions spread a hot shape across replicas.
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (int64_t d : shape) mix(static_cast<uint64_t>(d));
  mix(session);
  return static_cast<int>(h % static_cast<uint64_t>(shards_.size()));
}

std::future<Tensor> Router::submit(Tensor x, uint64_t session) {
  TTSNN_CHECK(x.dim() == 4, "Router::submit expects one sample [T, C, H, W], "
                                << "got " << shape_str(x.shape()));
  // All extents must be positive: a zero-sized sample would reach the
  // dispatcher's numel()/t_steps stacking arithmetic as a divide by zero and
  // take the whole process down instead of failing one request.
  for (int64_t d = 0; d < 4; ++d) {
    TTSNN_CHECK(x.size(d) > 0, "Router::submit needs all dims > 0, got "
                                   << shape_str(x.shape()));
  }
  Request req;
  req.x = std::move(x);
  req.arrival = std::chrono::steady_clock::now();
  std::future<Tensor> fut = req.promise.get_future();

  Shard& shard = *shards_[static_cast<size_t>(
      shard_for(req.x.shape(), session))];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    TTSNN_CHECK(!shard.stop, "Router::submit after shutdown");
    Group* group = nullptr;
    for (Group& g : shard.groups) {
      if (g.shape == req.x.shape()) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      shard.groups.emplace_back();
      group = &shard.groups.back();
      group->shape = req.x.shape();
    }
    group->reqs.push_back(std::move(req));
    ++shard.requests;
  }
  shard.cv.notify_one();
  return fut;
}

Tensor Router::infer(Tensor x, uint64_t session) {
  return submit(std::move(x), session).get();
}

RouterStats Router::stats() const {
  RouterStats s;
  s.shard_requests.reserve(shards_.size());
  s.shard_batches.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.requests += shard->requests;
    s.batches += shard->batches;
    s.max_batch = std::max(s.max_batch, shard->max_batch);
    s.shard_requests.push_back(shard->requests);
    s.shard_batches.push_back(shard->batches);
  }
  return s;
}

std::vector<Router::Request> Router::next_batch(Shard& shard) {
  std::unique_lock<std::mutex> lock(shard.mu);
  for (;;) {
    shard.cv.wait(lock, [&shard] { return shard.stop || !shard.groups.empty(); });
    if (shard.groups.empty()) return {};  // stop with a drained shard

    // Scan the live groups for ready ones: a group is ready when it is FULL
    // (dispatches immediately regardless of age — the PR-2 server would sit
    // on a full batch while an older, not-yet-due request held the queue
    // front) or when its deadline — always derived from its own oldest
    // request's arrival — has expired. Among ready groups, serve the one
    // whose front request has waited longest: full still beats not-yet-due,
    // but a sustained flood that keeps one group permanently full cannot
    // starve an expired group, because the flood's front stays fresh (it
    // keeps being consumed) while the starving group's front only ages.
    // Groups that are neither bound the sleep below by the earliest pending
    // deadline.
    const auto now = std::chrono::steady_clock::now();
    auto ready = shard.groups.end();
    TimePoint next_deadline = TimePoint::max();
    for (auto it = shard.groups.begin(); it != shard.groups.end(); ++it) {
      const bool full =
          static_cast<int64_t>(it->reqs.size()) >= opts_.max_batch;
      const TimePoint deadline =
          group_deadline(it->reqs.front().arrival, opts_.max_delay_ms);
      if (full || deadline <= now) {
        if (ready == shard.groups.end() ||
            it->reqs.front().arrival < ready->reqs.front().arrival) {
          ready = it;
        }
      } else {
        next_deadline = std::min(next_deadline, deadline);
      }
    }
    if (ready == shard.groups.end()) {
      if (shard.stop) {
        ready = shard.groups.begin();  // drain: flush without waiting out ages
      } else {
        shard.cv.wait_until(lock, next_deadline);
        continue;  // re-scan: a fill, a new group, or the deadline passing
      }
    }

    std::vector<Request> batch;
    batch.reserve(static_cast<size_t>(
        std::min<int64_t>(opts_.max_batch,
                          static_cast<int64_t>(ready->reqs.size()))));
    while (!ready->reqs.empty() &&
           static_cast<int64_t>(batch.size()) < opts_.max_batch) {
      batch.push_back(std::move(ready->reqs.front()));
      ready->reqs.pop_front();
    }
    // A partially drained group keeps its remaining requests AND their
    // arrival stamps, so the tail's deadline stays anchored to when those
    // requests actually arrived.
    if (ready->reqs.empty()) shard.groups.erase(ready);
    ++shard.batches;
    shard.max_batch = std::max<int64_t>(
        shard.max_batch, static_cast<int64_t>(batch.size()));
    return batch;
  }
}

void Router::run_batch(const Shard& shard, std::vector<Request>& batch,
                       Tensor& workspace) const {
  // Promises fulfilled so far; the catch below must only touch the rest —
  // set_exception on an already-satisfied promise throws future_error.
  size_t fulfilled = 0;
  try {
    // Stack [T, C, H, W] samples into [T, N, C, H, W]: sample n's step t
    // lands at row (t * N + n).
    const Shape& s0 = batch[0].x.shape();
    const int64_t n = static_cast<int64_t>(batch.size());
    const int64_t t_steps = s0[0];
    const int64_t chw = batch[0].x.numel() / t_steps;
    Shape in_shape{t_steps, n, s0[1], s0[2], s0[3]};
    Tensor input(in_shape);
    for (int64_t j = 0; j < n; ++j) {
      TTSNN_CHECK(batch[static_cast<size_t>(j)].x.shape() == s0,
                  "Router: a batch must share one shape, got "
                      << shape_str(batch[static_cast<size_t>(j)].x.shape())
                      << " vs " << shape_str(s0));
      const float* src = batch[static_cast<size_t>(j)].x.data();
      for (int64_t t = 0; t < t_steps; ++t) {
        std::copy(src + t * chw, src + (t + 1) * chw,
                  input.data() + (t * n + j) * chw);
      }
    }

    Tensor out = shard.engine.run(input, workspace);

    // Split [T, N, ...] back into per-sample [T, ...] tensors.
    TTSNN_CHECK(out.dim() >= 2 && out.size(0) == t_steps && out.size(1) == n,
                "Router: engine output shape " << shape_str(out.shape())
                                               << " lost the batch layout");
    const int64_t row = out.numel() / (t_steps * n);
    Shape sample_shape;
    sample_shape.push_back(t_steps);
    for (int64_t d = 2; d < out.dim(); ++d) sample_shape.push_back(out.size(d));
    for (int64_t j = 0; j < n; ++j) {
      Tensor sample(sample_shape);
      for (int64_t t = 0; t < t_steps; ++t) {
        std::copy(out.data() + (t * n + j) * row,
                  out.data() + (t * n + j + 1) * row,
                  sample.data() + t * row);
      }
      batch[static_cast<size_t>(j)].promise.set_value(std::move(sample));
      ++fulfilled;
    }
  } catch (...) {
    // A failed run poisons the not-yet-fulfilled futures of its batch (all
    // same-shaped, per next_batch), never the router itself.
    for (size_t j = fulfilled; j < batch.size(); ++j) {
      batch[j].promise.set_exception(std::current_exception());
    }
  }
}

void Router::dispatcher_loop(Shard& shard) {
  // One workspace per dispatcher thread, handed to every run: after the first
  // batch of each shape (growing it to the largest layout seen), the planned
  // engine makes zero workspace allocations per call.
  Tensor workspace;
  for (;;) {
    std::vector<Request> batch = next_batch(shard);
    if (batch.empty()) return;
    run_batch(shard, batch, workspace);
  }
}

}  // namespace ttsnn::infer
