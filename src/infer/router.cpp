#include "infer/router.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "infer/analysis.h"
#include "infer/plan_cache.h"

namespace ttsnn::infer {

namespace {

using TimePoint = std::chrono::steady_clock::time_point;

TimePoint group_deadline(const TimePoint& arrival, double max_delay_ms) {
  return arrival +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double, std::milli>(max_delay_ms));
}

std::chrono::steady_clock::duration ms_duration(double ms) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

int64_t sample_bytes(const Tensor& x) {
  return x.numel() * static_cast<int64_t>(sizeof(float));
}

}  // namespace

const char* priority_name(Priority cls) {
  switch (cls) {
    case Priority::kBatch:
      return "batch";
    case Priority::kNormal:
      return "normal";
    case Priority::kInteractive:
      return "interactive";
  }
  return "?";
}

Router::Router(const Engine& engine, RouterOptions opts) : opts_(opts) {
  TTSNN_CHECK(opts_.num_shards >= 1, "Router needs >= 1 shard");
  TTSNN_CHECK(opts_.max_batch >= 1, "Router max_batch must be >= 1");
  TTSNN_CHECK(opts_.max_delay_ms >= 0.0, "Router max_delay_ms must be >= 0");
  TTSNN_CHECK(opts_.dispatchers_per_shard >= 1,
              "Router needs >= 1 dispatcher per shard");
  TTSNN_CHECK(opts_.queue_bytes >= 0, "Router queue_bytes must be >= 0");
  TTSNN_CHECK(opts_.steal_poll_ms > 0.0, "Router steal_poll_ms must be > 0");
  signature_ = engine.input_signature();
  shards_.reserve(static_cast<size_t>(opts_.num_shards));
  for (int i = 0; i < opts_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(engine));
  }
  // Dispatchers start only after every shard exists: a stealing dispatcher
  // walks shards_ itself, and shard_for must already be stable.
  for (auto& shard : shards_) {
    shard->dispatchers.reserve(
        static_cast<size_t>(opts_.dispatchers_per_shard));
    for (int d = 0; d < opts_.dispatchers_per_shard; ++d) {
      shard->dispatchers.emplace_back(
          [this, s = shard.get()] { dispatcher_loop(*s); });
    }
  }
}

Router::~Router() { shutdown(); }

void Router::shutdown() {
  // One caller does the stop + join; concurrent callers (e.g. the destructor
  // racing an explicit shutdown) BLOCK inside call_once until that caller
  // finishes, so everyone returning from shutdown() can rely on the
  // documented post-condition: queues drained, dispatchers joined.
  std::call_once(shutdown_once_, [this] {
    for (auto& shard : shards_) {
      {
        std::lock_guard<std::mutex> lock(shard->mu);
        shard->stop = true;
      }
      shard->cv.notify_all();
    }
    for (auto& shard : shards_) {
      for (std::thread& t : shard->dispatchers) {
        if (t.joinable()) t.join();
      }
      shard->dispatchers.clear();
    }
  });
}

int Router::shard_for(const Shape& shape, uint64_t session) const {
  // FNV-1a over the shape extents and the session key. Same (shape, session)
  // always hashes alike, so a client's same-shaped requests coalesce on one
  // shard; distinct sessions spread a hot shape across replicas.
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (int64_t d : shape) mix(static_cast<uint64_t>(d));
  mix(session);
  return static_cast<int>(h % static_cast<uint64_t>(shards_.size()));
}

std::future<Tensor> Router::submit(Tensor x, uint64_t session, Priority cls) {
  TTSNN_CHECK(x.dim() == 4, "Router::submit expects one sample [T, C, H, W], "
                                << "got " << shape_str(x.shape()));
  // All extents must be positive: a zero-sized sample would reach the
  // dispatcher's numel()/t_steps stacking arithmetic as a divide by zero and
  // take the whole process down instead of failing one request.
  for (int64_t d = 0; d < 4; ++d) {
    TTSNN_CHECK(x.size(d) > 0, "Router::submit needs all dims > 0, got "
                                   << shape_str(x.shape()));
  }
  // Validate against the model's input signature NOW, at the submit call
  // site. A sample the compiled plan can never serve (a channel count the
  // weights don't have, a TEBN-pinned T) used to queue, wait out its
  // deadline, and fail deep inside a dispatcher with an engine-internal
  // message; it now throws synchronously with the caller's stack intact.
  // Signature layout is [T, N, C, H, W]; the sample is [T, C, H, W].
  static constexpr int kSigAxis[4] = {0, 2, 3, 4};
  for (int d = 0; d < 4; ++d) {
    const int64_t want = signature_[static_cast<size_t>(kSigAxis[d])];
    if (want != kDimUnknown && x.size(d) != want) {
      std::ostringstream oss;
      oss << "Router::submit: sample " << shape_str(x.shape())
          << " does not match the model input signature [T, N, C, H, W] = "
          << shape_str(signature_) << " (sample dim " << d << " is "
          << x.size(d) << ", the plan requires " << want << ")";
      throw Error(oss.str());
    }
  }
  const int ci = static_cast<int>(cls);
  TTSNN_CHECK(ci >= 0 && ci < kNumPriority,
              "Router::submit: invalid priority class " << ci);

  Request req;
  req.x = std::move(x);
  req.arrival = std::chrono::steady_clock::now();
  std::future<Tensor> fut = req.promise.get_future();
  const int64_t bytes = sample_bytes(req.x);

  Shard& shard = *shards_[static_cast<size_t>(
      shard_for(req.x.shape(), session))];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    TTSNN_CHECK(!shard.stop, "Router::submit after shutdown");
    if (opts_.queue_bytes > 0 && shard.queued_bytes + bytes > opts_.queue_bytes) {
      ++shard.shed;
      std::ostringstream oss;
      oss << "Router::submit: admission control shed a " << bytes
          << "-byte sample (" << priority_name(cls) << "): shard holds "
          << shard.queued_bytes << " of " << opts_.queue_bytes
          << " queued bytes";
      throw AdmissionError(oss.str());
    }
    Group* group = nullptr;
    for (Group& g : shard.groups) {
      if (g.cls == cls && g.shape == req.x.shape()) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      shard.groups.emplace_back();
      group = &shard.groups.back();
      group->shape = req.x.shape();
      group->cls = cls;
    }
    group->reqs.push_back(std::move(req));
    ++shard.requests;
    shard.queued_bytes += bytes;
    ++shard.class_depth[static_cast<size_t>(ci)];
  }
  total_queued_.fetch_add(1, std::memory_order_relaxed);
  shard.cv.notify_one();
  return fut;
}

Tensor Router::infer(Tensor x, uint64_t session, Priority cls) {
  return submit(std::move(x), session, cls).get();
}

RouterStats Router::stats() const {
  RouterStats s;
  s.shard_requests.reserve(shards_.size());
  s.shard_batches.reserve(shards_.size());
  s.shard_steals.reserve(shards_.size());
  s.class_depth.assign(kNumPriority, 0);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.requests += shard->requests;
    s.batches += shard->batches;
    s.max_batch = std::max(s.max_batch, shard->max_batch);
    s.shed += shard->shed;
    s.steals += shard->steals;
    s.shard_requests.push_back(shard->requests);
    s.shard_batches.push_back(shard->batches);
    s.shard_steals.push_back(shard->steals);
    for (int c = 0; c < kNumPriority; ++c) {
      s.class_depth[static_cast<size_t>(c)] +=
          shard->class_depth[static_cast<size_t>(c)];
    }
  }
  // One cache serves every replica, so read it once (shard 0's handle).
  const ProgramCacheStats cache = shards_[0]->engine.cache_stats();
  s.cache_hits = cache.hits;
  s.cache_misses = cache.misses;
  s.cache_evictions = cache.evictions;
  s.cache_shapes = cache.entries;
  s.cache_bytes = cache.bytes;
  return s;
}

std::vector<Router::Request> Router::pop_ready_locked(
    Shard& shard, TimePoint now, bool flush_any, TimePoint* next_deadline) {
  // Scan the live groups for ready ones: a group is ready when it is FULL
  // (dispatches immediately regardless of age — the PR-2 server would sit
  // on a full batch while an older, not-yet-due request held the queue
  // front) or when its deadline — always derived from its own oldest
  // request's arrival — has expired. Among ready groups a higher priority
  // class wins outright; within a class, serve the one whose front request
  // has waited longest: full still beats not-yet-due, but a sustained flood
  // that keeps one group permanently full cannot starve an expired group OF
  // ITS CLASS, because the flood's front stays fresh (it keeps being
  // consumed) while the starving group's front only ages. Groups that are
  // neither feed the earliest pending deadline back to the caller's sleep.
  *next_deadline = TimePoint::max();
  auto ready = shard.groups.end();
  for (auto it = shard.groups.begin(); it != shard.groups.end(); ++it) {
    const bool full = static_cast<int64_t>(it->reqs.size()) >= opts_.max_batch;
    const TimePoint deadline =
        group_deadline(it->reqs.front().arrival, opts_.max_delay_ms);
    if (full || deadline <= now) {
      if (ready == shard.groups.end() || it->cls > ready->cls ||
          (it->cls == ready->cls &&
           it->reqs.front().arrival < ready->reqs.front().arrival)) {
        ready = it;
      }
    } else {
      *next_deadline = std::min(*next_deadline, deadline);
    }
  }
  if (ready == shard.groups.end()) {
    if (!flush_any || shard.groups.empty()) return {};
    ready = shard.groups.begin();  // drain: flush without waiting out ages
  }

  std::vector<Request> batch;
  batch.reserve(static_cast<size_t>(std::min<int64_t>(
      opts_.max_batch, static_cast<int64_t>(ready->reqs.size()))));
  while (!ready->reqs.empty() &&
         static_cast<int64_t>(batch.size()) < opts_.max_batch) {
    shard.queued_bytes -= sample_bytes(ready->reqs.front().x);
    batch.push_back(std::move(ready->reqs.front()));
    ready->reqs.pop_front();
  }
  shard.class_depth[static_cast<size_t>(ready->cls)] -=
      static_cast<int64_t>(batch.size());
  total_queued_.fetch_sub(static_cast<int64_t>(batch.size()),
                          std::memory_order_relaxed);
  // A partially drained group keeps its remaining requests AND their
  // arrival stamps, so the tail's deadline stays anchored to when those
  // requests actually arrived.
  if (ready->reqs.empty()) shard.groups.erase(ready);
  return batch;
}

std::vector<Router::Request> Router::try_steal(Shard& thief) {
  // Snapshot the other shards' loads one lock at a time — this function
  // NEVER holds two shard locks, so it cannot deadlock against another
  // dispatcher stealing in the opposite direction.
  struct Load {
    Shard* shard;
    int64_t queued;
  };
  std::vector<Load> loads;
  loads.reserve(shards_.size());
  for (auto& sp : shards_) {
    Shard* s = sp.get();
    if (s == &thief) continue;
    int64_t queued = 0;
    {
      std::lock_guard<std::mutex> lock(s->mu);
      for (const Group& g : s->groups) {
        queued += static_cast<int64_t>(g.reqs.size());
      }
    }
    if (queued > 0) loads.push_back({s, queued});
  }
  std::sort(loads.begin(), loads.end(),
            [](const Load& a, const Load& b) { return a.queued > b.queued; });

  const TimePoint now = std::chrono::steady_clock::now();
  for (const Load& load : loads) {
    std::vector<Request> batch;
    {
      std::lock_guard<std::mutex> lock(load.shard->mu);
      TimePoint ignored;
      // Only READY groups are stealable: a group still coalescing toward a
      // full batch keeps coalescing on its home shard.
      batch = pop_ready_locked(*load.shard, now, /*flush_any=*/false, &ignored);
    }
    if (!batch.empty()) {
      std::lock_guard<std::mutex> lock(thief.mu);
      ++thief.steals;
      ++thief.batches;  // the batch executes HERE, on the thief's replica
      thief.max_batch =
          std::max(thief.max_batch, static_cast<int64_t>(batch.size()));
      return batch;
    }
  }
  return {};
}

std::vector<Router::Request> Router::next_batch(Shard& shard) {
  const bool can_steal = opts_.work_stealing && shards_.size() > 1;
  std::unique_lock<std::mutex> lock(shard.mu);
  for (;;) {
    if (shard.stop && shard.groups.empty()) return {};
    const TimePoint now = std::chrono::steady_clock::now();
    TimePoint next_deadline = TimePoint::max();
    std::vector<Request> batch =
        pop_ready_locked(shard, now, /*flush_any=*/shard.stop, &next_deadline);
    if (!batch.empty()) {
      ++shard.batches;
      shard.max_batch =
          std::max(shard.max_batch, static_cast<int64_t>(batch.size()));
      return batch;
    }
    if (shard.stop) continue;  // re-check: drain emptied the shard

    if (!shard.groups.empty()) {
      // Own work pending but not yet due: sleep to the earliest deadline
      // (a fill, a new group, or shutdown wakes us sooner).
      shard.cv.wait_until(lock, next_deadline);
      continue;
    }
    if (!can_steal) {
      shard.cv.wait(lock,
                    [&shard] { return shard.stop || !shard.groups.empty(); });
      continue;
    }
    // Empty shard, stealing enabled: poll the rest of the fleet. Fast
    // cadence while the router holds queued work anywhere (that work may go
    // ready any moment), 20x slower when fully idle.
    lock.unlock();
    std::vector<Request> stolen = try_steal(shard);
    if (!stolen.empty()) return stolen;
    const double poll_ms =
        total_queued_.load(std::memory_order_relaxed) > 0
            ? opts_.steal_poll_ms
            : opts_.steal_poll_ms * 20.0;
    lock.lock();
    shard.cv.wait_for(lock, ms_duration(poll_ms), [&shard] {
      return shard.stop || !shard.groups.empty();
    });
  }
}

void Router::run_batch(const Shard& shard, std::vector<Request>& batch,
                       Tensor& workspace) const {
  // Promises fulfilled so far; the catch below must only touch the rest —
  // set_exception on an already-satisfied promise throws future_error.
  size_t fulfilled = 0;
  try {
    // Stack [T, C, H, W] samples into [T, N, C, H, W]: sample n's step t
    // lands at row (t * N + n).
    const Shape& s0 = batch[0].x.shape();
    const int64_t n = static_cast<int64_t>(batch.size());
    const int64_t t_steps = s0[0];
    const int64_t chw = batch[0].x.numel() / t_steps;
    Shape in_shape{t_steps, n, s0[1], s0[2], s0[3]};
    Tensor input(in_shape);
    for (int64_t j = 0; j < n; ++j) {
      TTSNN_CHECK(batch[static_cast<size_t>(j)].x.shape() == s0,
                  "Router: a batch must share one shape, got "
                      << shape_str(batch[static_cast<size_t>(j)].x.shape())
                      << " vs " << shape_str(s0));
      const float* src = batch[static_cast<size_t>(j)].x.data();
      for (int64_t t = 0; t < t_steps; ++t) {
        std::copy(src + t * chw, src + (t + 1) * chw,
                  input.data() + (t * n + j) * chw);
      }
    }

    Tensor out = shard.engine.run(input, workspace);

    // Split [T, N, ...] back into per-sample [T, ...] tensors.
    TTSNN_CHECK(out.dim() >= 2 && out.size(0) == t_steps && out.size(1) == n,
                "Router: engine output shape " << shape_str(out.shape())
                                               << " lost the batch layout");
    const int64_t row = out.numel() / (t_steps * n);
    Shape sample_shape;
    sample_shape.push_back(t_steps);
    for (int64_t d = 2; d < out.dim(); ++d) sample_shape.push_back(out.size(d));
    for (int64_t j = 0; j < n; ++j) {
      Tensor sample(sample_shape);
      for (int64_t t = 0; t < t_steps; ++t) {
        std::copy(out.data() + (t * n + j) * row,
                  out.data() + (t * n + j + 1) * row,
                  sample.data() + t * row);
      }
      batch[static_cast<size_t>(j)].promise.set_value(std::move(sample));
      ++fulfilled;
    }
  } catch (...) {
    // A failed run poisons the not-yet-fulfilled futures of its batch (all
    // same-shaped, per next_batch), never the router itself.
    for (size_t j = fulfilled; j < batch.size(); ++j) {
      batch[j].promise.set_exception(std::current_exception());
    }
  }
}

void Router::dispatcher_loop(Shard& shard) {
  // One workspace per dispatcher thread, handed to every run: after the first
  // batch of each shape (growing it to the largest layout seen), the planned
  // engine makes zero workspace allocations per call.
  Tensor workspace;
  for (;;) {
    std::vector<Request> batch = next_batch(shard);
    if (batch.empty()) return;
    run_batch(shard, batch, workspace);
  }
}

}  // namespace ttsnn::infer
