#pragma once

/// \file router.h
/// Sharded multi-replica serving layer — the scale-out front-end over
/// infer::Engine, with QoS: priority classes, admission control and
/// idle-shard work stealing.
///
/// The PR-2 Server coalesced every request into ONE FIFO queue and popped a
/// same-shaped *prefix*, so a single odd-shaped request at the front
/// head-of-line-blocked every other shape group: mixed-scenario traffic
/// (image / event / gesture clips with different [T, C, H, W]) degraded to
/// batches of one, each paying the full `max_delay_ms` stall. The Router
/// fixes that structurally:
///
///   submit(x, session, priority)
///        │  validate against Engine::input_signature()
///        │  admission: shed (AdmissionError) if the shard's queued bytes
///        │  would exceed `queue_bytes`
///        │  shard = hash(shape, session) % num_shards
///        ▼
///   ┌─ Shard 0 ──────────────┐  ┌─ Shard 1 ──────────────┐
///   │ groups: (shape, class) │  │ groups: (shape, class) │ ...
///   │ dispatcher thread(s)   │◄─┤  ← idle dispatchers    │
///   │ Engine replica 0       │  │    steal ready groups  │
///   └───────────┬────────────┘  └───────────┬────────────┘
///               └────────── shared ThreadPool ───────────┘
///               └──────── shared ProgramCache ───────────┘
///
///  - Every shard keeps one queue PER (SHAPE, PRIORITY CLASS) GROUP, each
///    carrying its own oldest-arrival deadline, so shape groups never block
///    each other and a full batch dispatches immediately even when an older,
///    not-yet-due group sits in front of it.
///  - Among ready groups of one shard, a higher priority class always
///    dispatches first; within a class the existing starvation-proof rule
///    holds (oldest front wins, and a flood's front stays fresh while a
///    starving group's front only ages). Strict cross-class priority is the
///    point of the classes: interactive traffic preempts batch backfill.
///  - Admission control: when `queue_bytes > 0` and a shard's queued sample
///    bytes would exceed it, submit() sheds the request with a typed
///    AdmissionError instead of letting the queue (and every deadline in it)
///    grow without bound. Callers distinguish "overloaded, retry elsewhere"
///    from a real failure by type.
///  - Work stealing: a dispatcher whose own shard is EMPTY polls the other
///    shards and pulls the oldest ready group from the most-loaded one, so a
///    skewed session hash cannot idle half the fleet. Replicas share weights
///    and the program cache, so a stolen batch is bit-identical to a
///    home-shard run.
///  - Each shard owns an Engine replica — a cloned plan sharing the same
///    read-only weight storage AND the same shape-keyed ProgramCache
///    (plan_cache.h): a shape compiled by any shard is warm on all of them.
///  - All replicas fan their GEMMs onto the one process ThreadPool;
///    dispatcher threads block outside the pool, exactly like the Server's.
///
/// Server (server.h) remains as a thin `num_shards = 1` compatibility
/// wrapper over this class.

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "infer/engine.h"

namespace ttsnn::infer {

/// Request priority class. Among ready groups of a shard, higher classes
/// dispatch strictly first; within a class the oldest-front rule applies.
enum class Priority : int {
  kBatch = 0,        ///< offline backfill: runs when nothing else is ready
  kNormal = 1,       ///< the default
  kInteractive = 2,  ///< latency-sensitive: preempts everything ready
};
constexpr int kNumPriority = 3;
const char* priority_name(Priority cls);

/// Thrown by submit() when admission control sheds a request because the
/// target shard's queued bytes would exceed RouterOptions::queue_bytes.
/// Derives from ttsnn::Error so existing catch sites keep working; catching
/// this type specifically distinguishes "overloaded, back off" from a
/// malformed request or an engine failure.
class AdmissionError : public Error {
 public:
  explicit AdmissionError(const std::string& what) : Error(what) {}
};

struct RouterOptions {
  /// Engine replicas, each with its own request queues and dispatchers.
  int num_shards = 2;
  /// Coalesce at most this many same-shaped requests into one Engine::run.
  int64_t max_batch = 8;
  /// Dispatch a partial batch once its group's oldest request is this old.
  double max_delay_ms = 2.0;
  /// Dispatcher threads per shard; each carries one batch at a time.
  int dispatchers_per_shard = 1;
  /// Admission budget: maximum queued sample bytes PER SHARD before submit()
  /// sheds with AdmissionError. 0 = unbounded (no admission control).
  int64_t queue_bytes = 0;
  /// Let a dispatcher whose shard is empty pull ready work from the
  /// most-loaded other shard. Only meaningful with num_shards > 1.
  bool work_stealing = true;
  /// How often an empty-shard dispatcher polls for stealable work while the
  /// router holds queued requests (it polls 20x slower when fully idle).
  double steal_poll_ms = 1.0;
};

struct RouterStats {
  int64_t requests = 0;   ///< samples accepted by submit()/infer()
  int64_t batches = 0;    ///< Engine::run calls issued across all shards
  int64_t max_batch = 0;  ///< largest coalesced batch observed anywhere
  int64_t shed = 0;       ///< submissions rejected by admission control
  int64_t steals = 0;     ///< batches a dispatcher pulled from another shard

  // Shared program cache (one per compiled model, all replicas).
  int64_t cache_hits = 0;       ///< program lookups served warm
  int64_t cache_misses = 0;     ///< first-miss compiles triggered
  int64_t cache_evictions = 0;  ///< programs dropped by the LRU budget
  int64_t cache_shapes = 0;     ///< input signatures currently resident
  int64_t cache_bytes = 0;      ///< plan metadata bytes resident

  std::vector<int64_t> shard_requests;  ///< per-shard accepted samples
  std::vector<int64_t> shard_batches;   ///< per-shard Engine::run calls
  std::vector<int64_t> shard_steals;    ///< per-shard batches stolen BY it
  /// Current queued samples per priority class (index = Priority value),
  /// summed over shards — a gauge, not a counter.
  std::vector<int64_t> class_depth;

  double mean_batch() const {
    return batches > 0 ? static_cast<double>(requests) /
                             static_cast<double>(batches)
                       : 0.0;
  }
};

class Router {
 public:
  /// Clones the compiled plan into one replica per shard (weight storage and
  /// the program cache are shared, so replicas cost a plan's worth of
  /// metadata, not a model copy) and starts the dispatchers. The engine
  /// argument itself only needs to live through the constructor.
  explicit Router(const Engine& engine, RouterOptions opts = {});
  /// Drains every shard queue, then joins the dispatchers.
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Enqueues one sample [T, C, H, W] (all extents > 0) on the shard chosen
  /// by shard_for(x.shape(), session); the future resolves to the engine
  /// output for that sample with the batch axis removed (e.g. [T, classes]).
  ///
  /// Fails fast — synchronously, with a labeled ttsnn::Error — on any sample
  /// the compiled model can never serve (wrong rank, zero-sized or
  /// signature-mismatched extents, e.g. a channel count the weights don't
  /// have), instead of poisoning a future deep inside a dispatcher after the
  /// request waited out its deadline. Throws AdmissionError when the shard's
  /// queue is over budget. Requests the engine rejects for per-shape reasons
  /// (pool divisibility, TEBN T) still fail only their own future.
  std::future<Tensor> submit(Tensor x, uint64_t session = 0,
                             Priority cls = Priority::kNormal);

  /// Blocking convenience around submit().
  Tensor infer(Tensor x, uint64_t session = 0,
               Priority cls = Priority::kNormal);

  /// Deterministic shard for a (shape, session) key. Same shape + same
  /// session always lands on the same shard (so its requests coalesce);
  /// distinct session keys spread one shape across replicas.
  int shard_for(const Shape& shape, uint64_t session = 0) const;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Aggregated over all shards, plus the per-shard breakdown and the shared
  /// program cache's residency/traffic counters.
  RouterStats stats() const;

  /// Stops accepting work, finishes every queued request (pending groups
  /// flush immediately, ignoring their deadlines), joins dispatchers.
  /// Idempotent; also called by the destructor.
  void shutdown();

 private:
  struct Request {
    Tensor x;
    std::promise<Tensor> promise;
    std::chrono::steady_clock::time_point arrival;
  };

  /// One (shape, priority) group: a FIFO of same-shaped requests. The flush
  /// deadline is always `reqs.front().arrival + max_delay_ms` — arrivals
  /// ride with the requests, so a group that waited while another flushed
  /// (or the tail left behind by a partial pop) keeps its original age
  /// instead of being re-armed with a fresh delay.
  struct Group {
    Shape shape;
    Priority cls = Priority::kNormal;
    std::deque<Request> reqs;
  };

  struct Shard {
    Engine engine;  ///< cloned plan; weights + program cache shared
    explicit Shard(const Engine& e) : engine(e) {}

    mutable std::mutex mu;
    std::condition_variable cv;
    std::list<Group> groups;  ///< insertion-ordered; one per (shape, class)
    bool stop = false;
    int64_t requests = 0;
    int64_t batches = 0;
    int64_t max_batch = 0;
    int64_t queued_bytes = 0;  ///< sample bytes currently queued (admission)
    int64_t shed = 0;          ///< requests rejected by admission control
    int64_t steals = 0;        ///< batches THIS shard stole from others
    std::array<int64_t, kNumPriority> class_depth{};  ///< queued per class
    std::vector<std::thread> dispatchers;
  };

  void dispatcher_loop(Shard& shard);
  /// Blocks until this shard has a ready batch, a steal succeeds, or
  /// shutdown drains the shard (then returns empty). Batch/steal counters
  /// are updated on the EXECUTING shard.
  std::vector<Request> next_batch(Shard& shard);
  /// Scans `shard`'s groups (mu held) and pops the winning ready batch:
  /// highest priority class first, oldest front within a class; a group is
  /// ready when full or past its deadline (or unconditionally with
  /// `flush_any`, the shutdown drain). Returns empty when nothing is ready
  /// and sets *next_deadline to the earliest pending flush time.
  std::vector<Request> pop_ready_locked(
      Shard& shard, std::chrono::steady_clock::time_point now, bool flush_any,
      std::chrono::steady_clock::time_point* next_deadline);
  /// Steal attempt for an empty-shard dispatcher: snapshots the other
  /// shards' queue depths (one lock at a time — never two shard locks held),
  /// then pops a ready batch from the most-loaded one. Returns empty when
  /// nothing anywhere is ready.
  std::vector<Request> try_steal(Shard& thief);
  /// Stacks a same-shaped batch into [T, N, C, H, W], runs the shard's
  /// replica against the dispatcher's reusable workspace, splits the output
  /// back per sample, and settles every promise.
  void run_batch(const Shard& shard, std::vector<Request>& batch,
                 Tensor& workspace) const;

  RouterOptions opts_;
  Shape signature_;  ///< Engine::input_signature(), validated per submit
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int64_t> total_queued_{0};  ///< steal-poll cadence heuristic
  std::once_flag shutdown_once_;
};

}  // namespace ttsnn::infer
