#pragma once

/// \file router.h
/// Sharded multi-replica serving layer — the scale-out front-end over
/// infer::Engine.
///
/// The PR-2 Server coalesced every request into ONE FIFO queue and popped a
/// same-shaped *prefix*, so a single odd-shaped request at the front
/// head-of-line-blocked every other shape group: mixed-scenario traffic
/// (image / event / gesture clips with different [T, C, H, W]) degraded to
/// batches of one, each paying the full `max_delay_ms` stall. The Router
/// fixes that structurally:
///
///   submit(x, session)
///        │  shard = hash(shape, session) % num_shards
///        ▼
///   ┌─ Shard 0 ──────────────┐  ┌─ Shard 1 ──────────────┐
///   │ groups: shape → queue  │  │ groups: shape → queue  │ ...
///   │ dispatcher thread(s)   │  │ dispatcher thread(s)   │
///   │ Engine replica 0       │  │ Engine replica 1       │
///   └───────────┬────────────┘  └───────────┬────────────┘
///               └────────── shared ThreadPool ───────────┘
///
///  - Every shard keeps one queue PER SHAPE GROUP, each carrying its own
///    oldest-arrival deadline, so shape groups never block each other and a
///    full batch dispatches immediately even when an older, not-yet-due
///    group sits in front of it.
///  - Each shard owns an Engine replica — a cloned plan sharing the same
///    read-only weight storage (Engine is copyable and run() is const +
///    thread-safe), compiled once by the caller.
///  - All replicas fan their GEMMs onto the one process ThreadPool;
///    dispatcher threads block outside the pool, exactly like the Server's.
///
/// Server (server.h) remains as a thin `num_shards = 1` compatibility
/// wrapper over this class.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "infer/engine.h"

namespace ttsnn::infer {

struct RouterOptions {
  /// Engine replicas, each with its own request queues and dispatchers.
  int num_shards = 2;
  /// Coalesce at most this many same-shaped requests into one Engine::run.
  int64_t max_batch = 8;
  /// Dispatch a partial batch once its group's oldest request is this old.
  double max_delay_ms = 2.0;
  /// Dispatcher threads per shard; each carries one batch at a time.
  int dispatchers_per_shard = 1;
};

struct RouterStats {
  int64_t requests = 0;   ///< samples accepted by submit()/infer()
  int64_t batches = 0;    ///< Engine::run calls issued across all shards
  int64_t max_batch = 0;  ///< largest coalesced batch observed anywhere
  std::vector<int64_t> shard_requests;  ///< per-shard accepted samples
  std::vector<int64_t> shard_batches;   ///< per-shard Engine::run calls
  double mean_batch() const {
    return batches > 0 ? static_cast<double>(requests) /
                             static_cast<double>(batches)
                       : 0.0;
  }
};

class Router {
 public:
  /// Clones the compiled plan into one replica per shard (weight storage is
  /// shared, so replicas cost a plan's worth of metadata, not a model copy)
  /// and starts the dispatchers. The engine argument itself only needs to
  /// live through the constructor.
  explicit Router(const Engine& engine, RouterOptions opts = {});
  /// Drains every shard queue, then joins the dispatchers.
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Enqueues one sample [T, C, H, W] (all extents > 0) on the shard chosen
  /// by shard_for(x.shape(), session); the future resolves to the engine
  /// output for that sample with the batch axis removed (e.g. [T, classes]).
  /// Requests the engine rejects fail only their own future. Throws if the
  /// router is shutting down or the sample has a zero-sized dimension.
  std::future<Tensor> submit(Tensor x, uint64_t session = 0);

  /// Blocking convenience around submit().
  Tensor infer(Tensor x, uint64_t session = 0);

  /// Deterministic shard for a (shape, session) key. Same shape + same
  /// session always lands on the same shard (so its requests coalesce);
  /// distinct session keys spread one shape across replicas.
  int shard_for(const Shape& shape, uint64_t session = 0) const;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Aggregated over all shards, plus the per-shard breakdown.
  RouterStats stats() const;

  /// Stops accepting work, finishes every queued request (pending groups
  /// flush immediately, ignoring their deadlines), joins dispatchers.
  /// Idempotent; also called by the destructor.
  void shutdown();

 private:
  struct Request {
    Tensor x;
    std::promise<Tensor> promise;
    std::chrono::steady_clock::time_point arrival;
  };

  /// One shape group: a FIFO of same-shaped requests. The flush deadline is
  /// always `reqs.front().arrival + max_delay_ms` — arrivals ride with the
  /// requests, so a group that waited while another flushed (or the tail
  /// left behind by a partial pop) keeps its original age instead of being
  /// re-armed with a fresh delay.
  struct Group {
    Shape shape;
    std::deque<Request> reqs;
  };

  struct Shard {
    Engine engine;  ///< cloned plan; weights shared with every other replica
    explicit Shard(const Engine& e) : engine(e) {}

    mutable std::mutex mu;
    std::condition_variable cv;
    std::list<Group> groups;  ///< insertion-ordered; one entry per live shape
    bool stop = false;
    int64_t requests = 0;
    int64_t batches = 0;
    int64_t max_batch = 0;
    std::vector<std::thread> dispatchers;
  };

  void dispatcher_loop(Shard& shard);
  /// Pops the next ready batch of one shard: a full group first, else the
  /// group whose deadline expired earliest, else (on stop) the oldest group.
  /// Blocks until something is ready. Returns empty only at shutdown with a
  /// drained shard.
  std::vector<Request> next_batch(Shard& shard);
  /// Stacks a same-shaped batch into [T, N, C, H, W], runs the shard's
  /// replica against the dispatcher's reusable workspace, splits the output
  /// back per sample, and settles every promise.
  void run_batch(const Shard& shard, std::vector<Request>& batch,
                 Tensor& workspace) const;

  RouterOptions opts_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::once_flag shutdown_once_;
};

}  // namespace ttsnn::infer
