#pragma once

/// \file router.h
/// Sharded multi-replica serving layer — the scale-out front-end over
/// infer::Engine, with QoS (priority classes, admission control, idle-shard
/// work stealing) and a reliability layer (request deadlines + cancellation,
/// replica health quarantine with probe re-admission).
///
/// The PR-2 Server coalesced every request into ONE FIFO queue and popped a
/// same-shaped *prefix*, so a single odd-shaped request at the front
/// head-of-line-blocked every other shape group: mixed-scenario traffic
/// (image / event / gesture clips with different [T, C, H, W]) degraded to
/// batches of one, each paying the full `max_delay_ms` stall. The Router
/// fixes that structurally:
///
///   submit(x, {session, priority, deadline_ms})
///        │  validate against Engine::input_signature()
///        │  admission: shed (AdmissionError + retry_after_ms hint) if the
///        │  shard's queued bytes would exceed `queue_bytes`
///        │  shard = hash(shape, session) % num_shards
///        │  quarantined home shard? re-route to the next healthy one
///        ▼
///   ┌─ Shard 0 ──────────────┐  ┌─ Shard 1 ──────────────┐
///   │ groups: (shape, class) │  │ groups: (shape, class) │ ...
///   │ dispatcher thread(s)   │◄─┤  ← idle dispatchers    │
///   │ Engine replica 0       │  │    steal ready groups  │
///   │ health: fails/probe    │  └───────────┬────────────┘
///   └───────────┬────────────┘              │
///               └────────── shared ThreadPool ───────────┘
///               └──────── shared ProgramCache ───────────┘
///
///  - Every shard keeps one queue PER (SHAPE, PRIORITY CLASS) GROUP, each
///    carrying its own oldest-arrival deadline, so shape groups never block
///    each other and a full batch dispatches immediately even when an older,
///    not-yet-due group sits in front of it.
///  - Among ready groups of one shard, a higher priority class always
///    dispatches first; within a class the existing starvation-proof rule
///    holds (oldest front wins, and a flood's front stays fresh while a
///    starving group's front only ages).
///  - Admission control: when `queue_bytes > 0` and a shard's queued sample
///    bytes would exceed it, submit() sheds the request with a typed
///    AdmissionError carrying a queue-depth-derived retry_after_ms hint, so
///    clients back off proportionally to the actual overload.
///  - Request deadlines: a submit may carry `deadline_ms`; a request still
///    queued when its deadline expires is dropped BEFORE batching and its
///    future fails fast with a typed DeadlineError — the surviving batch is
///    exactly the batch that would have formed without it (bit-identical
///    outputs). cancel(session) resolves all in-queue futures of a session
///    with CancelledError without running them.
///  - Replica health: every batch's success/failure is accounted to the
///    replica that EXECUTED it. `quarantine_after` consecutive failures
///    quarantine the replica: new submits re-route to healthy shards, its
///    already-queued work drains on a healthy replica's engine (bit-identical
///    — replicas share weights and the program cache), and a periodic probe
///    (a synthetic run on the failed shape) re-admits it once it recovers.
///  - Work stealing: a dispatcher whose own shard is EMPTY polls the other
///    shards and pulls the oldest ready group from the most-loaded one, so a
///    skewed session hash cannot idle half the fleet.
///  - Fault injection (util/failpoint.h): every batch execution evaluates the
///    `router.dispatch` and `router.dispatch.<replica>` failpoints, so the
///    whole quarantine/re-admission machine is testable deterministically.
///
/// Server (server.h) remains as a thin `num_shards = 1` compatibility
/// wrapper over this class.

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "infer/engine.h"

namespace ttsnn::infer {

/// Request priority class. Among ready groups of a shard, higher classes
/// dispatch strictly first; within a class the oldest-front rule applies.
enum class Priority : int {
  kBatch = 0,        ///< offline backfill: runs when nothing else is ready
  kNormal = 1,       ///< the default
  kInteractive = 2,  ///< latency-sensitive: preempts everything ready
};
constexpr int kNumPriority = 3;
const char* priority_name(Priority cls);

/// Thrown by submit() when admission control sheds a request because the
/// target shard's queued bytes would exceed RouterOptions::queue_bytes.
/// Derives from ttsnn::Error so existing catch sites keep working; catching
/// this type specifically distinguishes "overloaded, back off" from a
/// malformed request or an engine failure. retry_after_ms() is a
/// queue-depth-derived backoff hint: roughly how long the shard needs to
/// drain enough of its current queue for a retry to be admitted.
class AdmissionError : public Error {
 public:
  explicit AdmissionError(const std::string& what, double retry_after_ms = 0.0)
      : Error(what), retry_after_ms_(retry_after_ms) {}
  double retry_after_ms() const { return retry_after_ms_; }

 private:
  double retry_after_ms_;
};

/// Fails the future of a request whose SubmitOptions::deadline_ms expired
/// while it was still queued. The request never reached an engine; the batch
/// it would have joined runs without it, bit-identically.
class DeadlineError : public Error {
 public:
  explicit DeadlineError(const std::string& what) : Error(what) {}
};

/// Fails the futures resolved by Router::cancel(session).
class CancelledError : public Error {
 public:
  explicit CancelledError(const std::string& what) : Error(what) {}
};

struct RouterOptions {
  /// Engine replicas, each with its own request queues and dispatchers.
  int num_shards = 2;
  /// Coalesce at most this many same-shaped requests into one Engine::run.
  int64_t max_batch = 8;
  /// Dispatch a partial batch once its group's oldest request is this old.
  double max_delay_ms = 2.0;
  /// Dispatcher threads per shard; each carries one batch at a time.
  int dispatchers_per_shard = 1;
  /// Admission budget: maximum queued sample bytes PER SHARD before submit()
  /// sheds with AdmissionError. 0 = unbounded (no admission control).
  int64_t queue_bytes = 0;
  /// Let a dispatcher whose shard is empty pull ready work from the
  /// most-loaded other shard. Only meaningful with num_shards > 1.
  bool work_stealing = true;
  /// How often an empty-shard dispatcher polls for stealable work while the
  /// router holds queued requests (it polls 20x slower when fully idle).
  double steal_poll_ms = 1.0;
  /// Consecutive batch failures on one replica before it is quarantined:
  /// new traffic re-routes to healthy shards and its queue drains on a
  /// healthy replica. 0 disables health tracking entirely.
  int quarantine_after = 3;
  /// Cadence of re-admission probes on a quarantined replica: a synthetic
  /// run of the shape that failed, on the quarantined engine; success
  /// re-admits the replica.
  double probe_interval_ms = 25.0;
};

struct RouterStats {
  int64_t requests = 0;   ///< samples accepted by submit()/infer()
  int64_t batches = 0;    ///< Engine::run calls issued across all shards
  int64_t max_batch = 0;  ///< largest coalesced batch observed anywhere
  int64_t shed = 0;       ///< submissions rejected by admission control
  int64_t steals = 0;     ///< batches a dispatcher pulled from another shard

  // Reliability layer.
  int64_t deadline_misses = 0;   ///< requests dropped with DeadlineError
  int64_t cancelled = 0;         ///< requests resolved by cancel(session)
  int64_t replica_failures = 0;  ///< batch executions that threw (any cause)
  int64_t quarantines = 0;       ///< healthy -> quarantined transitions
  int64_t readmissions = 0;      ///< quarantined -> healthy transitions
  int64_t probes = 0;            ///< re-admission probe attempts
  int64_t rerouted = 0;          ///< submits redirected off a quarantined home

  // Shared program cache (one per compiled model, all replicas).
  int64_t cache_hits = 0;       ///< program lookups served warm
  int64_t cache_misses = 0;     ///< first-miss compiles triggered
  int64_t cache_evictions = 0;  ///< programs dropped by the LRU budget
  int64_t cache_shapes = 0;     ///< input signatures currently resident
  int64_t cache_bytes = 0;      ///< plan metadata bytes resident

  // Weight storage of the served plan (unique bytes, shared by every
  // replica), split by dtype so mixed f32/bf16/int8 fleets are inspectable.
  const char* weight_dtype = "f32";  ///< CompileOptions::weight_dtype name
  int64_t weight_f32_bytes = 0;
  int64_t weight_bf16_bytes = 0;
  int64_t weight_int8_bytes = 0;  ///< packed int8 payloads + f32 scales

  std::vector<int64_t> shard_requests;  ///< per-shard accepted samples
  std::vector<int64_t> shard_batches;   ///< per-shard Engine::run calls
  std::vector<int64_t> shard_steals;    ///< per-shard batches stolen BY it
  /// Health gauge per shard: 1 = quarantined right now, 0 = healthy.
  std::vector<int64_t> shard_quarantined;
  /// Current queued samples per priority class (index = Priority value),
  /// summed over shards — a gauge, not a counter.
  std::vector<int64_t> class_depth;

  /// Shards currently healthy (num_shards minus quarantined) — a gauge.
  int64_t healthy_shards = 0;

  double mean_batch() const {
    return batches > 0 ? static_cast<double>(requests) /
                             static_cast<double>(batches)
                       : 0.0;
  }
};

/// Per-submit knobs beyond the sample itself. The two-argument submit()
/// overloads remain for callers without deadlines.
struct SubmitOptions {
  /// Coalescing/affinity key: same (shape, session) always lands on the same
  /// shard. Also the handle cancel(session) resolves by.
  uint64_t session = 0;
  Priority priority = Priority::kNormal;
  /// Fail the request with DeadlineError if it is still QUEUED this many ms
  /// after submit (measured to the moment a dispatcher would batch it).
  /// 0 = no deadline. A deadline never aborts a request already executing.
  double deadline_ms = 0.0;
};

class Router {
 public:
  /// Clones the compiled plan into one replica per shard (weight storage and
  /// the program cache are shared, so replicas cost a plan's worth of
  /// metadata, not a model copy) and starts the dispatchers. The engine
  /// argument itself only needs to live through the constructor.
  explicit Router(const Engine& engine, RouterOptions opts = {});
  /// Drains every shard queue, then joins the dispatchers.
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Enqueues one sample [T, C, H, W] (all extents > 0) on the shard chosen
  /// by shard_for(x.shape(), session) — or the next healthy shard when that
  /// one is quarantined; the future resolves to the engine output for that
  /// sample with the batch axis removed (e.g. [T, classes]).
  ///
  /// Fails fast — synchronously, with a labeled ttsnn::Error — on any sample
  /// the compiled model can never serve (wrong rank, zero-sized or
  /// signature-mismatched extents, e.g. a channel count the weights don't
  /// have), instead of poisoning a future deep inside a dispatcher after the
  /// request waited out its deadline; and on submit after shutdown()/~Router
  /// (never a hang — the queues are gone). Throws AdmissionError when the
  /// shard's queue is over budget. Requests the engine rejects for per-shape
  /// reasons (pool divisibility, TEBN T) still fail only their own future.
  std::future<Tensor> submit(Tensor x, const SubmitOptions& sopts);
  std::future<Tensor> submit(Tensor x, uint64_t session = 0,
                             Priority cls = Priority::kNormal);

  /// Blocking convenience around submit().
  Tensor infer(Tensor x, const SubmitOptions& sopts);
  Tensor infer(Tensor x, uint64_t session = 0,
               Priority cls = Priority::kNormal);

  /// Resolves every request of `session` still queued (on any shard) with a
  /// typed CancelledError, without running them; returns how many were
  /// resolved. A request already popped into a batch is past cancellation
  /// and completes normally. Note the default session key is 0, so
  /// cancel(0) cancels all keyless queued requests.
  int64_t cancel(uint64_t session);

  /// Deterministic shard for a (shape, session) key. Same shape + same
  /// session always lands on the same shard (so its requests coalesce);
  /// distinct session keys spread one shape across replicas. This is the
  /// HOME shard — submit() may re-route when it is quarantined.
  int shard_for(const Shape& shape, uint64_t session = 0) const;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Aggregated over all shards, plus the per-shard breakdown and the shared
  /// program cache's residency/traffic counters.
  RouterStats stats() const;

  /// Stops accepting work, finishes every queued request (pending groups
  /// flush immediately, ignoring their deadlines), joins dispatchers.
  /// Idempotent; also called by the destructor.
  void shutdown();

 private:
  using TimePoint = std::chrono::steady_clock::time_point;

  struct Request {
    Tensor x;
    std::promise<Tensor> promise;
    std::chrono::steady_clock::time_point arrival;
    /// arrival + SubmitOptions::deadline_ms; TimePoint::max() = no deadline.
    std::chrono::steady_clock::time_point deadline;
    uint64_t session = 0;  ///< cancellation key
  };

  /// One (shape, priority) group: a FIFO of same-shaped requests. The flush
  /// deadline is always `reqs.front().arrival + max_delay_ms` — arrivals
  /// ride with the requests, so a group that waited while another flushed
  /// (or the tail left behind by a partial pop) keeps its original age
  /// instead of being re-armed with a fresh delay.
  struct Group {
    Shape shape;
    Priority cls = Priority::kNormal;
    std::deque<Request> reqs;
    /// Lower bound on the earliest request deadline queued here: exact after
    /// every prune scan, monotone-min on push (so possibly stale-low after a
    /// pop, costing at most one wasted scan). Stays TimePoint::max() — the
    /// common no-deadline case — which lets pop_ready_locked skip the
    /// per-request deadline scan entirely.
    TimePoint min_deadline = TimePoint::max();
  };

  struct Shard {
    Engine engine;  ///< cloned plan; weights + program cache shared
    int index = 0;  ///< position in shards_, for stats and failpoint names
    /// Per-replica failpoint site name ("router.dispatch.<index>"),
    /// precomputed so the hot path passes a stable c_str().
    std::string failpoint_name;
    Shard(const Engine& e, int i)
        : engine(e),
          index(i),
          failpoint_name("router.dispatch." + std::to_string(i)) {}

    mutable std::mutex mu;
    std::condition_variable cv;
    std::list<Group> groups;  ///< insertion-ordered; one per (shape, class)
    bool stop = false;
    int64_t requests = 0;
    int64_t batches = 0;
    int64_t max_batch = 0;
    int64_t queued_bytes = 0;  ///< sample bytes currently queued (admission)
    int64_t shed = 0;          ///< requests rejected by admission control
    int64_t steals = 0;        ///< batches THIS shard stole from others
    std::array<int64_t, kNumPriority> class_depth{};  ///< queued per class

    // Replica health. `quarantined` is atomic so submit() and executor
    // selection read it without the shard lock; every WRITE happens under mu
    // together with the bookkeeping counters below.
    std::atomic<bool> quarantined{false};
    int consecutive_failures = 0;
    TimePoint next_probe{};  ///< earliest time the next probe may run
    Shape probe_shape;       ///< batched input shape of the failing run
    int64_t deadline_misses = 0;
    int64_t cancelled = 0;
    int64_t failures = 0;      ///< batch executions on THIS replica that threw
    int64_t quarantines = 0;   ///< transitions into quarantine
    int64_t readmissions = 0;  ///< transitions out of quarantine
    int64_t probes = 0;        ///< probe attempts on this replica
    int64_t rerouted = 0;      ///< submits redirected AWAY from this home

    std::vector<std::thread> dispatchers;
  };

  void dispatcher_loop(Shard& shard);
  /// Blocks until this shard has a ready batch, a steal succeeds, a
  /// re-admission probe is due (returns empty, *stopped stays false), or
  /// shutdown drains the shard (returns empty, *stopped = true). Expired
  /// deadlines found while scanning are failed here. Batch/steal counters
  /// are updated at POP time on the dispatching shard (under quarantine the
  /// run itself may execute on another replica's engine).
  std::vector<Request> next_batch(Shard& shard, bool* stopped);
  /// Scans `shard`'s groups (mu held): first drops every request whose
  /// deadline expired into *expired (the caller fails them with
  /// DeadlineError), then pops the winning ready batch: highest priority
  /// class first, oldest front within a class; a group is ready when full or
  /// past its deadline (or unconditionally with `flush_any`, the shutdown
  /// drain). Returns empty when nothing is ready and sets *next_deadline to
  /// the earliest pending flush or request-deadline time.
  std::vector<Request> pop_ready_locked(
      Shard& shard, std::chrono::steady_clock::time_point now, bool flush_any,
      std::chrono::steady_clock::time_point* next_deadline,
      std::vector<Request>* expired);
  /// Steal attempt for an empty-shard dispatcher: snapshots the other
  /// shards' queue depths (one lock at a time — never two shard locks held),
  /// then pops a ready batch from the most-loaded one. Returns empty when
  /// nothing anywhere is ready.
  std::vector<Request> try_steal(Shard& thief);
  /// The replica every batch/probe execution goes through: evaluates the
  /// router.dispatch failpoints for `shard`, then runs its engine.
  Tensor run_replica(const Shard& shard, const Tensor& input,
                     Tensor& workspace) const;
  /// Stacks a same-shaped batch into [T, N, C, H, W], runs it on `exec`'s
  /// replica against the dispatcher's reusable workspace, splits the output
  /// back per sample, and settles every promise. Returns false when the run
  /// threw (the exception poisons the batch futures), so the caller can
  /// account the failure to `exec`'s health.
  bool run_batch(const Shard& exec, std::vector<Request>& batch,
                 Tensor& workspace) const;
  /// Health bookkeeping after a batch executed on `exec`: failures feed the
  /// consecutive counter and may quarantine; success resets it (and
  /// re-admits — evidence of health beats waiting for the next probe).
  void account_run(Shard& exec, bool ok, const Shape& batched_shape);
  /// If `shard` is quarantined and its probe is due, runs a synthetic
  /// request through its OWN engine; success re-admits it.
  void maybe_probe(Shard& shard, Tensor& workspace);
  /// Executor for a batch popped on `home`: home itself when healthy, else
  /// the first healthy shard, else home (all-quarantined degenerate case).
  Shard& choose_executor(Shard& home);
  /// Fails every request in `batch` with DeadlineError. Never throws.
  static void fail_expired(std::vector<Request>& expired);

  RouterOptions opts_;
  Shape signature_;  ///< Engine::input_signature(), validated per submit
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int64_t> total_queued_{0};  ///< steal-poll cadence heuristic
  std::once_flag shutdown_once_;
};

}  // namespace ttsnn::infer
