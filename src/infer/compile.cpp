#include <cmath>
#include <set>
#include <sstream>

#include "infer/analysis.h"
#include "infer/engine.h"
#include "nn/containers.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "snn/serialize.h"

namespace ttsnn::infer {

namespace {

/// Mutable state of one compile() call. Registers are assigned fresh per op
/// output; BN folding mutates the most recent op in place instead of
/// emitting a new one.
struct Builder {
  const CompileOptions& opts;
  std::vector<Op> ops;
  int num_regs = 1;  // register 0 is the network input
  /// Registers with more than one consumer (a Residual's input feeds both
  /// branches); folding must never rewrite the op that produced one.
  std::set<int> pinned;

  int fresh_reg() { return num_regs++; }

  int emit(Op op) {
    ops.push_back(std::move(op));
    return ops.back().out;
  }
};

int lower(const Module& m, int in_reg, Builder& b);

std::string conv_label(const Conv2d::Options& o) {
  std::ostringstream oss;
  oss << o.in_channels << "->" << o.out_channels << " " << o.kernel_h << "x"
      << o.kernel_w;
  if (o.resolved_stride_h() != 1 || o.resolved_stride_w() != 1) {
    oss << " s" << o.resolved_stride_h() << "," << o.resolved_stride_w();
  }
  return oss.str();
}

int lower_conv(const Conv2d& conv, int in_reg, Builder& b) {
  Op op;
  op.kind = Op::Kind::kConv;
  op.in = in_reg;
  op.out = b.fresh_reg();
  op.conv = conv.options();
  op.weight = conv.weight().value.clone();
  if (op.conv.bias) {
    op.bias = conv.bias().value.clone();
    op.conv.bias = false;  // bias now lives in op.bias, not in the options
  }
  op.label = conv_label(op.conv);
  return b.emit(std::move(op));
}

int lower_ttconv(const TTConv2d& tt, int in_reg, Builder& b) {
  const TTConv2d::Options& o = tt.options();
  // An HTT layer whose schedule is empty (or absent) runs every step full,
  // so it merges to a single cross-kernel conv just like PTT.
  const bool per_step =
      o.mode == TTMode::kHTT && !o.full_step.empty();

  if (b.opts.merge_tt && !per_step) {
    // Algorithm 1 lines 20-22: one dense kernel — full K x K for STT,
    // cross-shaped for PTT.
    Op op;
    op.kind = Op::Kind::kConv;
    op.in = in_reg;
    op.out = b.fresh_reg();
    op.conv = Conv2d::Options{.in_channels = o.in_channels,
                              .out_channels = o.out_channels,
                              .kernel_h = o.kernel,
                              .kernel_w = o.kernel,
                              .stride = o.stride};
    op.weight = tt.merged_kernel();
    op.label = "merged-" + tt_mode_name(o.mode) + " " + conv_label(op.conv);
    return b.emit(std::move(op));
  }

  if (b.opts.merge_tt) {
    // Merged HTT: two kernels selected per timestep by the schedule.
    Op op;
    op.kind = Op::Kind::kTTHtt;
    op.in = in_reg;
    op.out = b.fresh_reg();
    op.tt = o;
    op.conv = Conv2d::Options{.in_channels = o.in_channels,
                              .out_channels = o.out_channels,
                              .kernel_h = o.kernel,
                              .kernel_w = o.kernel,
                              .stride = o.stride};
    op.half_conv = Conv2d::Options{.in_channels = o.in_channels,
                                   .out_channels = o.out_channels,
                                   .kernel_h = 1,
                                   .kernel_w = 1,
                                   .stride = o.stride};
    op.full_kernel = tt.merged_kernel();
    op.half_kernel = tt.merged_half_kernel();
    op.label = "merged-HTT " + conv_label(op.conv);
    return b.emit(std::move(op));
  }

  // Exact mode: the four sub-convolutions with the training pipeline's
  // geometry, for bit-identity with eval-mode Module::forward.
  Op op;
  op.kind = Op::Kind::kTTExact;
  op.in = in_reg;
  op.out = b.fresh_reg();
  op.tt = o;
  op.w1 = tt.w1().value.clone();
  op.w2 = tt.w2().value.clone();
  op.w3 = tt.w3().value.clone();
  op.w4 = tt.w4().value.clone();
  const bool parallel_mode = o.mode != TTMode::kSTT;
  op.tt_w1_opts = tt.opt_w1();
  op.tt_w2_opts = tt.opt_w2(parallel_mode);
  op.tt_w3_opts = tt.opt_w3(parallel_mode);
  op.tt_w4_opts = tt.opt_w4(false);
  op.tt_w4_half_opts = tt.opt_w4(true);
  {
    std::ostringstream oss;
    oss << tt_mode_name(o.mode) << " r" << o.rank << " " << o.in_channels
        << "->" << o.out_channels;
    op.label = oss.str();
  }
  return b.emit(std::move(op));
}

/// Per-channel inverse std, computed with the exact expression BatchNorm's
/// eval forward uses so standalone affine ops stay bit-identical.
Tensor bn_inv_std(const BatchNorm& bn) {
  const Tensor& var = bn.running_var();
  Tensor inv_std(var.shape());
  for (int64_t c = 0; c < var.numel(); ++c) {
    const double v = var[c];
    inv_std[c] =
        1.0F / std::sqrt(static_cast<float>(v) + bn.options().eps);
  }
  return inv_std;
}

int lower_bn(const BatchNorm& bn, int in_reg, Builder& b) {
  const BatchNorm::Options& o = bn.options();
  Tensor inv_std = bn_inv_std(bn);

  // Peephole fold: inference BN is y = s[c] * conv(x) + (beta - s * mean)
  // with s = gamma * alpha_vth * inv_std, time-invariant for every mode but
  // TEBN — scale the producing conv's output channels and attach the shift
  // as its bias. Only valid when the previous op is the conv that feeds us
  // AND we are its sole consumer: a pinned register (a Residual input, read
  // again by the other branch) must keep its raw conv output.
  if (b.opts.fold_batchnorm && o.mode != BatchNorm::Mode::kTebn &&
      !b.ops.empty() && b.pinned.count(in_reg) == 0) {
    Op& prev = b.ops.back();
    const bool foldable =
        prev.out == in_reg &&
        (prev.kind == Op::Kind::kConv || prev.kind == Op::Kind::kTTHtt);
    if (foldable) {
      const int64_t out_c = prev.kind == Op::Kind::kConv
                                ? prev.conv.out_channels
                                : prev.tt.out_channels;
      TTSNN_CHECK(out_c == o.channels,
                  "infer: BN channels " << o.channels
                                        << " do not match producing conv "
                                        << out_c);
      Tensor bias(Shape{out_c});
      const Tensor& gamma = bn.gamma().value;
      const Tensor& beta = bn.beta().value;
      const Tensor& mean = bn.running_mean();
      auto scale_rows = [&](Tensor& w) {
        const int64_t row = w.numel() / out_c;
        for (int64_t oc = 0; oc < out_c; ++oc) {
          const float s = gamma[oc] * o.alpha_vth * inv_std[oc];
          float* wr = w.data() + oc * row;
          for (int64_t i = 0; i < row; ++i) wr[i] *= s;
        }
      };
      for (int64_t oc = 0; oc < out_c; ++oc) {
        const float s = gamma[oc] * o.alpha_vth * inv_std[oc];
        const float b0 = prev.bias.defined() ? prev.bias[oc] : 0.0F;
        bias[oc] = s * b0 + beta[oc] - s * mean[oc];
      }
      if (prev.kind == Op::Kind::kConv) {
        scale_rows(prev.weight);
      } else {
        scale_rows(prev.full_kernel);
        scale_rows(prev.half_kernel);
      }
      prev.bias = std::move(bias);
      prev.label += " +bn";
      return in_reg;
    }
  }

  Op op;
  op.kind = Op::Kind::kAffine;
  op.in = in_reg;
  op.out = b.fresh_reg();
  op.bn_mode = o.mode;
  op.bn_alpha_vth = o.alpha_vth;
  op.bn_timesteps = o.mode == BatchNorm::Mode::kTebn ? o.timesteps : 0;
  op.bn_gamma = bn.gamma().value.clone();
  op.bn_beta = bn.beta().value.clone();
  op.bn_mean = bn.running_mean().clone();
  op.bn_inv_std = std::move(inv_std);
  if (o.mode == BatchNorm::Mode::kTebn) {
    op.bn_step_scale = bn.step_scale().value.clone();
  }
  {
    std::ostringstream oss;
    oss << "c" << o.channels;
    op.label = oss.str();
  }
  return b.emit(std::move(op));
}

int lower_residual(const Residual& res, int in_reg, Builder& b) {
  // The input register feeds the body AND the shortcut (or the Add itself):
  // no branch may fold state into the op that produced it.
  b.pinned.insert(in_reg);
  const int body_out = lower(res.body(), in_reg, b);
  const int skip_out =
      res.shortcut() != nullptr ? lower(*res.shortcut(), in_reg, b) : in_reg;
  Op op;
  op.kind = Op::Kind::kAdd;
  op.in = body_out;
  op.in2 = skip_out;
  op.out = b.fresh_reg();
  return b.emit(std::move(op));
}

int lower(const Module& m, int in_reg, Builder& b) {
  if (const auto* seq = dynamic_cast<const Sequential*>(&m)) {
    int reg = in_reg;
    for (size_t i = 0; i < seq->size(); ++i) reg = lower(seq->at(i), reg, b);
    return reg;
  }
  if (const auto* res = dynamic_cast<const Residual*>(&m)) {
    return lower_residual(*res, in_reg, b);
  }
  if (const auto* tt = dynamic_cast<const TTConv2d*>(&m)) {
    return lower_ttconv(*tt, in_reg, b);
  }
  if (const auto* conv = dynamic_cast<const Conv2d*>(&m)) {
    return lower_conv(*conv, in_reg, b);
  }
  if (const auto* bn = dynamic_cast<const BatchNorm*>(&m)) {
    return lower_bn(*bn, in_reg, b);
  }
  if (const auto* lif = dynamic_cast<const LIFNeuron*>(&m)) {
    Op op;
    op.kind = Op::Kind::kLif;
    op.in = in_reg;
    op.out = b.fresh_reg();
    op.lif = lif->options();
    return b.emit(std::move(op));
  }
  if (const auto* pool = dynamic_cast<const AvgPool2d*>(&m)) {
    Op op;
    op.kind = Op::Kind::kAvgPool;
    op.in = in_reg;
    op.out = b.fresh_reg();
    op.pool_kernel = pool->kernel();
    return b.emit(std::move(op));
  }
  if (dynamic_cast<const GlobalAvgPool*>(&m) != nullptr) {
    Op op;
    op.kind = Op::Kind::kGlobalPool;
    op.in = in_reg;
    op.out = b.fresh_reg();
    return b.emit(std::move(op));
  }
  if (dynamic_cast<const Flatten*>(&m) != nullptr) {
    Op op;
    op.kind = Op::Kind::kFlatten;
    op.in = in_reg;
    op.out = b.fresh_reg();
    return b.emit(std::move(op));
  }
  if (const auto* lin = dynamic_cast<const Linear*>(&m)) {
    Op op;
    op.kind = Op::Kind::kLinear;
    op.in = in_reg;
    op.out = b.fresh_reg();
    op.weight = lin->weight().value.clone();
    if (lin->has_bias()) op.bias = lin->bias().value.clone();
    {
      std::ostringstream oss;
      oss << lin->in_features() << "->" << lin->out_features();
      op.label = oss.str();
    }
    return b.emit(std::move(op));
  }
  TTSNN_CHECK(false, "infer::compile: unsupported module type '" << m.name()
                                                                 << "'");
  return -1;
}

/// Greedy elementwise fusion over the lowered plan, gated on
/// CompileOptions::fuse_elementwise. Two rewrites over ONE pre-fusion
/// analysis: (A) a kLif whose producer output has exactly one consumer
/// collapses into kConvLif / kAffineLif / kAddLif at the LIF's index; (B) a
/// surviving kAdd absorbs a single-consumer kAffine operand into kAffineAdd.
/// Pass A leaves every surviving register's read count unchanged — the fused
/// op re-reads exactly what its dead producer read — so the one analysis
/// serves both passes. Placing the fused op at the CONSUMER's index is safe
/// even when producer and consumer are not adjacent: the plan is SSA over
/// pure ops, so the producer's inputs still hold their values there, and
/// re-running analyze_plan afterwards re-derives alias/in-place facts for the
/// rewritten plan. Dead producers are dropped and registers renumbered.
void fuse_elementwise(std::vector<Op>& ops, int& num_regs, int& result_reg) {
  if (ops.empty()) return;
  const PlanAnalysis a = analyze_plan(ops, num_regs, result_reg);
  std::vector<bool> dead(ops.size(), false);

  auto producer = [&](int reg) {
    const int d = a.live[static_cast<size_t>(reg)].def;
    return d >= 0 && !dead[static_cast<size_t>(d)] ? d : -1;
  };

  // Pass A: LIF epilogues.
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind != Op::Kind::kLif) continue;
    if (!fusion_candidate(a, ops[i].in)) continue;
    const int d = producer(ops[i].in);
    if (d < 0) continue;
    Op& prod = ops[static_cast<size_t>(d)];
    Op::Kind fused_kind = Op::Kind::kLif;
    switch (prod.kind) {
      case Op::Kind::kConv:
        // The per-tile epilogue needs the [T, N, C, H, W] batch layout.
        if (a.sym_shape[static_cast<size_t>(prod.in)].size() != 5) continue;
        fused_kind = Op::Kind::kConvLif;
        break;
      case Op::Kind::kAffine:
        fused_kind = Op::Kind::kAffineLif;
        break;
      case Op::Kind::kAdd:
        fused_kind = Op::Kind::kAddLif;
        break;
      default:
        continue;
    }
    Op fused = std::move(prod);
    fused.kind = fused_kind;
    fused.lif = ops[i].lif;
    fused.out = ops[i].out;
    ops[i] = std::move(fused);
    dead[static_cast<size_t>(d)] = true;
  }

  // Pass B: affine operands of the residual joins pass A left plain.
  for (size_t i = 0; i < ops.size(); ++i) {
    if (dead[i] || ops[i].kind != Op::Kind::kAdd) continue;
    for (int slot = 0; slot < 2; ++slot) {
      const int reg = slot == 0 ? ops[i].in : ops[i].in2;
      if (!fusion_candidate(a, reg)) continue;
      const int d = producer(reg);
      if (d < 0 || ops[static_cast<size_t>(d)].kind != Op::Kind::kAffine) {
        continue;
      }
      Op fused = std::move(ops[static_cast<size_t>(d)]);
      fused.kind = Op::Kind::kAffineAdd;
      fused.in2 = slot == 0 ? ops[i].in2 : ops[i].in;
      fused.fused_swap = slot == 1;
      fused.out = ops[i].out;
      ops[i] = std::move(fused);
      dead[static_cast<size_t>(d)] = true;
      break;
    }
  }

  // Drop dead producers and renumber registers densely in first-def order.
  std::vector<Op> kept;
  kept.reserve(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!dead[i]) kept.push_back(std::move(ops[i]));
  }
  std::vector<int> remap(static_cast<size_t>(num_regs), -1);
  remap[0] = 0;
  int next = 1;
  for (Op& op : kept) {
    TTSNN_CHECK(remap[static_cast<size_t>(op.in)] >= 0,
                "infer fuse: operand register lost in compaction");
    op.in = remap[static_cast<size_t>(op.in)];
    if (op.in2 >= 0) {
      TTSNN_CHECK(remap[static_cast<size_t>(op.in2)] >= 0,
                  "infer fuse: operand register lost in compaction");
      op.in2 = remap[static_cast<size_t>(op.in2)];
    }
    remap[static_cast<size_t>(op.out)] = next;
    op.out = next++;
  }
  TTSNN_CHECK(remap[static_cast<size_t>(result_reg)] >= 0,
              "infer fuse: result register lost in compaction");
  result_reg = remap[static_cast<size_t>(result_reg)];
  num_regs = next;
  ops = std::move(kept);
}

// ---- weight quantization pass ----------------------------------------------

/// True when register `reg` provably holds binary {0,1} spikes: its defining
/// op is a LIF step (standalone or fused epilogue), possibly viewed through
/// kFlatten. Register 0 (the raw encoded input) and every arithmetic output
/// (pools, affines, TT pipelines) are not binary, so int8 consumers of those
/// registers fall back to f32.
bool provably_binary(const std::vector<Op>& ops, const std::vector<int>& def_op,
                     int reg) {
  while (true) {
    if (reg <= 0 || reg >= static_cast<int>(def_op.size())) return false;
    const int d = def_op[static_cast<size_t>(reg)];
    if (d < 0) return false;
    const Op& op = ops[static_cast<size_t>(d)];
    switch (op.kind) {
      case Op::Kind::kLif:
      case Op::Kind::kConvLif:
      case Op::Kind::kAffineLif:
      case Op::Kind::kAddLif:
        return true;
      case Op::Kind::kFlatten:
        reg = op.in;
        continue;
      default:
        return false;
    }
  }
}

/// Rewrites eligible weight matrices to typed planes per the requested dtype.
/// Runs after BN folding and elementwise fusion, so the scales are calibrated
/// on the BN-folded weights (the checkpoint's running stats are already
/// multiplied in) and the census maps 1:1 onto the final op list. Every op
/// that keeps f32 records why in quant_note. Biases, BN vectors and the
/// exact-mode TT cores always stay f32.
void quantize_weights(std::vector<Op>& ops, int num_regs, WeightDtype dtype) {
  std::vector<int> def_op(static_cast<size_t>(num_regs), -1);
  for (size_t i = 0; i < ops.size(); ++i) {
    def_op[static_cast<size_t>(ops[i].out)] = static_cast<int>(i);
  }
  auto encode = [dtype](const Tensor& w) {
    return dtype == WeightDtype::kInt8 ? WeightPlane::int8_from(w)
                                       : WeightPlane::bf16_from(w);
  };
  for (Op& op : ops) {
    switch (op.kind) {
      case Op::Kind::kConv:
      case Op::Kind::kConvLif:
      case Op::Kind::kLinear: {
        if (dtype == WeightDtype::kInt8 && !provably_binary(ops, def_op, op.in)) {
          op.quant_note = "f32 (input not provably binary spikes)";
          break;
        }
        op.plane = encode(op.weight);
        op.weight = Tensor();  // the plane owns the only remaining copy
        op.quant_note = weight_dtype_name(dtype);
        break;
      }
      case Op::Kind::kTTHtt: {
        if (dtype == WeightDtype::kInt8 && !provably_binary(ops, def_op, op.in)) {
          op.quant_note = "f32 (input not provably binary spikes)";
          break;
        }
        op.plane = encode(op.full_kernel);
        op.half_plane = encode(op.half_kernel);
        op.full_kernel = Tensor();
        op.half_kernel = Tensor();
        op.quant_note = weight_dtype_name(dtype);
        break;
      }
      case Op::Kind::kTTExact:
        op.quant_note = "f32 (exact-mode TT cores stay f32)";
        break;
      default:
        break;  // no weight matrix to quantize
    }
  }
}

/// Bytes of read-only weight storage the plan references, split by dtype and
/// counting each unique buffer once: Engine copies (Router replicas) and
/// every cached per-shape program share these tensors and planes by refcount,
/// so this is the process-wide weight footprint no matter how many shapes are
/// resident.
WeightFootprint unique_weight_bytes(const std::vector<Op>& ops) {
  std::set<const void*> seen;
  WeightFootprint fp;
  auto add = [&](const Tensor& t) {
    if (!t.defined()) return;
    if (seen.insert(t.data()).second) {
      fp.f32_bytes += t.numel() * static_cast<int64_t>(sizeof(float));
    }
  };
  auto add_plane = [&](const WeightPlane& p) {
    if (!p.quantized()) return;
    if (!seen.insert(p.storage_key()).second) return;
    if (p.dtype() == WeightDtype::kBf16) {
      fp.bf16_bytes += p.payload_bytes();
    } else {
      fp.int8_bytes += p.payload_bytes();  // packed data + f32 scales
    }
  };
  for (const Op& op : ops) {
    for (const Tensor* t :
         {&op.weight, &op.bias, &op.w1, &op.w2, &op.w3, &op.w4,
          &op.full_kernel, &op.half_kernel, &op.bn_gamma, &op.bn_beta,
          &op.bn_mean, &op.bn_inv_std, &op.bn_step_scale}) {
      add(*t);
    }
    add_plane(op.plane);
    add_plane(op.half_plane);
  }
  return fp;
}

}  // namespace

Engine compile(const Module& root, const CompileOptions& opts) {
  Builder b{.opts = opts};
  int result = lower(root, 0, b);
  TTSNN_CHECK(!b.ops.empty(), "infer::compile: module tree lowered to no ops");
  if (opts.fuse_elementwise) fuse_elementwise(b.ops, b.num_regs, result);
  if (opts.weight_dtype != WeightDtype::kF32) {
    quantize_weights(b.ops, b.num_regs, opts.weight_dtype);
  }
  Engine e;
  e.opts_ = opts;
  e.ops_ = std::move(b.ops);
  e.num_regs_ = b.num_regs;
  e.result_reg_ = result;
  e.weight_footprint_ = unique_weight_bytes(e.ops_);
  e.seal();
  return e;
}

Engine compile_checkpoint(Module& root, const std::string& checkpoint_path,
                          const CompileOptions& opts) {
  load_parameters(root, checkpoint_path);
  return compile(root, opts);
}

}  // namespace ttsnn::infer
