#include "infer/server.h"

#include <algorithm>

namespace ttsnn::infer {

Server::Server(const Engine& engine, ServerOptions opts)
    : engine_(engine), opts_(opts) {
  TTSNN_CHECK(opts_.max_batch >= 1, "Server max_batch must be >= 1");
  TTSNN_CHECK(opts_.max_delay_ms >= 0.0, "Server max_delay_ms must be >= 0");
  TTSNN_CHECK(opts_.num_dispatchers >= 1, "Server needs >= 1 dispatcher");
  dispatchers_.reserve(static_cast<size_t>(opts_.num_dispatchers));
  for (int i = 0; i < opts_.num_dispatchers; ++i) {
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
  }
}

Server::~Server() { shutdown(); }

void Server::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : dispatchers_) t.join();
  dispatchers_.clear();
}

std::future<Tensor> Server::submit(Tensor x) {
  TTSNN_CHECK(x.dim() == 4, "Server::submit expects one sample [T, C, H, W], got "
                                << shape_str(x.shape()));
  Request req;
  req.x = std::move(x);
  req.arrival = std::chrono::steady_clock::now();
  std::future<Tensor> fut = req.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    TTSNN_CHECK(!stop_, "Server::submit after shutdown");
    queue_.push_back(std::move(req));
    ++stats_.requests;
  }
  cv_.notify_one();
  return fut;
}

Tensor Server::infer(Tensor x) { return submit(std::move(x)).get(); }

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<Server::Request> Server::next_batch() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return {};  // stop_ with a drained queue
    // Coalesce: hold until the batch is full, the server stops, or the
    // current oldest request ages out. Another dispatcher may pop the front
    // while we sleep, so the deadline is recomputed from the live front on
    // every wake — a stale deadline must not flush a brand-new request as a
    // premature partial batch.
    while (!stop_ && !queue_.empty() &&
           static_cast<int64_t>(queue_.size()) < opts_.max_batch) {
      const auto deadline =
          queue_.front().arrival +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(opts_.max_delay_ms));
      if (std::chrono::steady_clock::now() >= deadline) break;
      cv_.wait_until(lock, deadline);
    }
    if (queue_.empty()) continue;  // another dispatcher took everything
    // Only same-shaped requests share a batch: a run over the batch either
    // serves all of them or none, so a misshapen request must end up in its
    // own batch where only its own future fails.
    const Shape shape = queue_.front().x.shape();
    std::vector<Request> batch;
    batch.reserve(static_cast<size_t>(opts_.max_batch));
    while (!queue_.empty() &&
           static_cast<int64_t>(batch.size()) < opts_.max_batch &&
           queue_.front().x.shape() == shape) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    ++stats_.batches;
    stats_.max_batch =
        std::max<int64_t>(stats_.max_batch, static_cast<int64_t>(batch.size()));
    return batch;
  }
}

void Server::dispatcher_loop() {
  for (;;) {
    std::vector<Request> batch = next_batch();
    if (batch.empty()) return;
    // Promises fulfilled so far; the catch below must only touch the rest —
    // set_exception on an already-satisfied promise throws future_error.
    size_t fulfilled = 0;
    try {
      // Stack [T, C, H, W] samples into [T, N, C, H, W]: sample n's step t
      // lands at row (t * N + n).
      const Shape& s0 = batch[0].x.shape();
      const int64_t n = static_cast<int64_t>(batch.size());
      const int64_t t_steps = s0[0];
      const int64_t chw = batch[0].x.numel() / t_steps;
      Shape in_shape{t_steps, n, s0[1], s0[2], s0[3]};
      Tensor input(in_shape);
      for (int64_t j = 0; j < n; ++j) {
        TTSNN_CHECK(batch[static_cast<size_t>(j)].x.shape() == s0,
                    "Server: all in-flight requests must share one shape, got "
                        << shape_str(batch[static_cast<size_t>(j)].x.shape())
                        << " vs " << shape_str(s0));
        const float* src = batch[static_cast<size_t>(j)].x.data();
        for (int64_t t = 0; t < t_steps; ++t) {
          std::copy(src + t * chw, src + (t + 1) * chw,
                    input.data() + (t * n + j) * chw);
        }
      }

      Tensor out = engine_.run(input);

      // Split [T, N, ...] back into per-sample [T, ...] tensors.
      TTSNN_CHECK(out.dim() >= 2 && out.size(0) == t_steps && out.size(1) == n,
                  "Server: engine output shape " << shape_str(out.shape())
                                                 << " lost the batch layout");
      const int64_t row = out.numel() / (t_steps * n);
      Shape sample_shape;
      sample_shape.push_back(t_steps);
      for (int64_t d = 2; d < out.dim(); ++d) sample_shape.push_back(out.size(d));
      for (int64_t j = 0; j < n; ++j) {
        Tensor sample(sample_shape);
        for (int64_t t = 0; t < t_steps; ++t) {
          std::copy(out.data() + (t * n + j) * row,
                    out.data() + (t * n + j + 1) * row,
                    sample.data() + t * row);
        }
        batch[static_cast<size_t>(j)].promise.set_value(std::move(sample));
        ++fulfilled;
      }
    } catch (...) {
      // A failed run poisons the not-yet-fulfilled futures of its batch
      // (all same-shaped, per next_batch), never the server itself.
      for (size_t j = fulfilled; j < batch.size(); ++j) {
        batch[j].promise.set_exception(std::current_exception());
      }
    }
  }
}

}  // namespace ttsnn::infer
