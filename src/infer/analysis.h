#pragma once

/// \file analysis.h
/// Static-analysis pass pipeline over the compiled plan IR (the flat
/// register-addressed `std::vector<Op>` an Engine executes).
///
/// Three passes, run in order by analyze_plan() inside every compile():
///
///   1. Verifier — structural checks: every register is defined before it is
///      read, in/in2/out indices are in range, each register has exactly one
///      writer, every op output is consumed (or is the result), the result
///      register is reachable, and each op kind carries its complete field
///      group (a kTTHtt op has both merged kernels, a kAffine op has all BN
///      tensors, ...). Malformed plans throw ttsnn::Error naming the
///      offending op instead of crashing mid-run.
///
///   2. Symbolic shape inference — the input is [T, N, C, H, W] with unknown
///      extents (kDimUnknown); every op's shape-transfer function propagates
///      what it can (channel counts are concrete from the weights) and
///      *unifies* constraints back onto still-unknown dims, so a channel
///      mismatch between a producer and a consumer — or two TEBN ops pinned
///      to different T — is a compile-time diagnostic. The same transfer
///      functions run again with the concrete input shape when a plan is laid
///      out, where the remaining geometry (pool divisibility, empty conv
///      outputs) becomes checkable.
///
///   3. Liveness + alias analysis — exact live ranges per register (the
///      Engine's eager-release table is derived from this pass), kFlatten
///      lowered to a pure alias of its input buffer, and in-place-safe ops
///      (kLif, kAffine, kAdd over their last-read input) merged into their
///      input's storage group.
///
/// plan_memory() then turns the analysis plus a concrete input shape into a
/// MemoryPlan: greedy best-fit offset assignment of every storage group, the
/// composite-op scratch region, and the im2col scratch into ONE workspace
/// buffer, so Engine::run() performs a single workspace allocation (or none,
/// when the caller re-submits a workspace tensor) instead of a Tensor::empty
/// per register. Per-shape layouts are memoized inside the CompiledProgram
/// entries of the shape-keyed ProgramCache (plan_cache.h) that Engine
/// replicas share (see router.h).

#include <memory>
#include <string>
#include <vector>

#include "infer/engine.h"

namespace ttsnn::infer {

/// Extent marker for dimensions unknown until run time (T, N, H, W at
/// compile time; everything is concrete once run() sees the input).
constexpr int64_t kDimUnknown = -1;

/// Workspace regions are aligned to 16 floats (one 64-byte cache line) so
/// adjacent registers never share a line. The planner sizes regions with
/// plan_align_up and the planned executor bumps its scratch cursor by the
/// same amount, keeping the two in lockstep.
constexpr int64_t kPlanAlignFloats = 16;
constexpr int64_t plan_align_up(int64_t n) {
  return (n + kPlanAlignFloats - 1) / kPlanAlignFloats * kPlanAlignFloats;
}

/// Live range of one register, in op indices: `def` is the op that writes it
/// (-1 for the input register 0), `last_use` the last op that reads it (-1
/// when never read — only legal for the result register).
struct LiveRange {
  int def = -1;
  int last_use = -1;
};

/// Result of the verifier + liveness/alias passes. Structural only — no
/// concrete shapes — so one analysis serves every input shape the plan runs.
struct PlanAnalysis {
  int num_regs = 0;
  int result_reg = 0;

  /// Per register.
  std::vector<LiveRange> live;
  /// Per register: number of operand slots reading it across the whole plan
  /// (an op reading the same register through in and in2 counts twice). The
  /// fusion pass derives its single-consumer facts from this.
  std::vector<int> reads;
  /// Per register: representative of its storage group. Registers created by
  /// kFlatten aliases or in-place ops share their input's group; everyone
  /// else roots itself. root[r] always points at the group's first register.
  std::vector<int> root;
  /// Per register: index of the last op reading any register of its storage
  /// group (the Engine's eager-release table; the result group never dies).
  std::vector<int> last_use;

  /// Per op: true when the op is a pure view (kFlatten) — no kernel runs,
  /// the output register aliases the input buffer.
  std::vector<bool> is_alias;
  /// Per op: true when the op writes its output over its own input buffer
  /// (kLif / kAffine / kAdd whose input dies at this op).
  std::vector<bool> is_inplace;

  /// Per register: symbolic shape after inference (kDimUnknown entries for
  /// extents only the concrete input determines).
  std::vector<Shape> sym_shape;
};

/// Runs the full pipeline: verifier, symbolic shape inference, liveness +
/// alias analysis. Throws ttsnn::Error naming the offending op on any
/// malformed plan. compile() calls this on every lowering; tests feed it
/// hand-built op vectors directly.
PlanAnalysis analyze_plan(const std::vector<Op>& ops, int num_regs,
                          int result_reg);

/// Fusion legality of one producer output: true when `reg` may vanish into
/// its consumer — it is read by exactly one operand slot in the whole plan
/// and is not the plan's result. SSA purity makes the fact positional-free:
/// the producer's own inputs still hold their values at the consumer's index,
/// so the fused op can re-read them there.
bool fusion_candidate(const PlanAnalysis& analysis, int reg);

/// Concrete memory layout of one (plan, input shape) pair: every storage
/// group, the composite-op scratch region, and the im2col scratch packed
/// into a single buffer of total_floats.
struct MemoryPlan {
  /// Per register: concrete shape for this input.
  std::vector<Shape> shape;
  /// Per register: float offset of its storage group in the workspace; -1
  /// for the input register (caller memory) and the result register (owning
  /// output tensor).
  std::vector<int64_t> offset;
  /// Per register: numel (cached from shape).
  std::vector<int64_t> floats;

  int64_t scratch_offset = 0;  ///< composite-op temporaries (bump region)
  int64_t scratch_floats = 0;  ///< max over ops of their temp-sum
  int64_t col_offset = 0;      ///< shared im2col column buffer
  int64_t col_floats = 0;      ///< max over every conv lowering in the plan
  int64_t total_floats = 0;    ///< workspace size (one allocation per call)

  /// Sum of every op-output allocation the unplanned executor would make
  /// (registers + composite temps + col growth), for the savings report.
  int64_t unplanned_floats = 0;
  /// Widest simultaneously-live register set (what eager release peaks at).
  int64_t peak_live_floats = 0;
};

/// Lays out the plan for one concrete input shape. Runs the shape-transfer
/// functions with every extent known, so residual geometry errors (pool
/// divisibility, empty conv outputs, a TEBN plan run at the wrong T) throw
/// labeled ttsnn::Error here — before any kernel runs.
MemoryPlan plan_memory(const std::vector<Op>& ops, const PlanAnalysis& analysis,
                       const Shape& input);

/// Shape-transfer function for one op. `in` is the (possibly symbolic)
/// current shape of op.in and may be refined in place by unification;
/// `in2` is null except for kAdd. `index` labels diagnostics.
Shape infer_op_shape(const Op& op, size_t index, Shape& in, Shape* in2);

/// Floats of per-op internal scratch (composite TT pipelines, the LIF
/// membrane plane) the executor carves from the plan's scratch region; 0 for
/// simple ops. Requires a concrete input shape.
int64_t op_scratch_floats(const Op& op, const Shape& in_shape);

/// Floats of im2col column buffer the op needs at this input shape (the max
/// over its internal conv lowerings; 0 when every lowering is pointwise).
int64_t op_col_floats(const Op& op, const Shape& in_shape);

/// Human-readable memory-plan report for one input shape: one row per
/// register (live range, shape, bytes, offset, alias/in-place flags) plus
/// the workspace / scratch / col totals and the savings vs the unplanned
/// executor. The ttsnn_plan_lint CLI prints this per TT mode.
std::string memory_plan_report(const std::vector<Op>& ops,
                               const PlanAnalysis& analysis,
                               const Shape& input);

}  // namespace ttsnn::infer
