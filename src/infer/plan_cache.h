#pragma once

/// \file plan_cache.h
/// Shape-keyed cache of fully compiled programs — the piece that makes the
/// serving stack shape-general ("any user, any input shape, no warm-up").
///
/// An Engine's op list is lowered once per model, but everything the planned
/// executor needs beyond the ops is a function of the concrete input
/// signature [T, N, C, H, W]: the packed workspace layout, each op's
/// destination (workspace view / in-place alias / owning result), and the
/// HTT per-step schedule split. CompiledProgram bundles all of that for one
/// signature; ProgramCache memoizes CompiledPrograms behind Engine::run so
/// the first request of a new shape pays one compile and every later request
/// of that shape executes with zero per-call planning (the pattern of
/// tt-metal's op program cache).
///
/// Cache contract:
///  - Thread-safe, compile-on-first-miss. Concurrent first misses on the
///    SAME shape are single-flight: exactly one thread compiles, the rest
///    wait on the entry's shared future — a cold shape never compiles twice,
///    and a cold shape's compile never blocks other shapes (the lock is
///    dropped while compiling).
///  - LRU eviction by a configurable byte budget over the per-entry plan
///    metadata. Weights are NOT in the entries: programs reference the
///    engine's op list, whose tensors share refcounted read-only storage, so
///    N cached shapes cost N layouts — never N copies of the parameters.
///  - Engine copies (Router shard replicas) share one ProgramCache via
///    shared_ptr, so a shape compiled on any shard is warm on all of them.
///  - A cache-served program is bitwise-identical to a freshly compiled one:
///    compilation is deterministic (plan_memory + the schedule split), and
///    eviction only forgets the layout, never the weights.

#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <vector>

#include "infer/analysis.h"
#include "infer/engine.h"

namespace ttsnn::infer {

/// Per-op execution record of a compiled program: where this op's output
/// lives at this input signature, plus any per-shape control flow resolved
/// at compile time instead of per call.
struct OpExec {
  enum class Dest {
    kAlias,        ///< pure view of the input register (mid-plan kFlatten)
    kMaterialize,  ///< kFlatten into the result: fresh tensor + copy
    kResult,       ///< fresh owning tensor handed to the caller
    kInPlace,      ///< overwrite the dying input register's buffer
    kWorkspace,    ///< workspace view at the planner-assigned `offset`
  };
  Dest dest = Dest::kWorkspace;
  Shape out_shape;     ///< concrete output shape (layout->shape[op.out])
  int64_t offset = 0;  ///< workspace float offset (kWorkspace only)

  /// HTT per-step schedule resolved for this T (kTTHtt ops, and kTTExact in
  /// HTT mode). The executor consumes these instead of re-splitting the
  /// schedule on every call.
  bool has_schedule = false;
  std::vector<int64_t> full_idx;
  std::vector<int64_t> half_idx;
};

/// A fully compiled program: everything Engine::run needs for ONE input
/// signature beyond the (shared) op list. Immutable once built.
struct CompiledProgram {
  Shape input;                                  ///< the cache key
  std::shared_ptr<const MemoryPlan> layout;     ///< packed workspace layout
  std::vector<OpExec> exec;                     ///< parallel to the op list
  int64_t bytes = 0;  ///< metadata footprint, the LRU accounting unit
  /// Storage dtype of the plan's quantized weight planes (kF32 when it holds
  /// none): a serving-side tag so mixed-dtype fleets can label cached
  /// programs without walking the op list. Weights themselves stay out of
  /// the cache entries regardless of dtype.
  WeightDtype weight_dtype = WeightDtype::kF32;
};

/// Residency and traffic counters of one ProgramCache.
struct ProgramCacheStats {
  int64_t entries = 0;       ///< shapes currently cached (compiled)
  int64_t bytes = 0;         ///< plan metadata bytes held
  int64_t budget_bytes = 0;  ///< configured budget (0 = unbounded)
  int64_t hits = 0;          ///< lookups served from (or joined onto) an entry
  int64_t misses = 0;        ///< lookups that triggered a compile
  int64_t evictions = 0;     ///< entries dropped by the LRU budget
};

/// Splits [0, t_steps) into full/half step index lists per the HTT schedule
/// (non-HTT or an empty schedule runs every step full). Shared by program
/// compilation and the legacy executor so the two can never disagree.
void split_htt_schedule(const TTConv2d::Options& tt, int64_t t_steps,
                        std::vector<int64_t>& full_idx,
                        std::vector<int64_t>& half_idx);

/// Compiles one program outside any cache: lays out the memory plan for
/// `input` (throwing labeled ttsnn::Error on shapes the plan cannot run) and
/// resolves every op's destination and schedule. Deterministic — the cache's
/// bit-identity guarantee reduces to this function being a pure function of
/// (ops, analysis, input).
CompiledProgram compile_program(const std::vector<Op>& ops,
                                const PlanAnalysis& analysis,
                                const Shape& input);

/// Thread-safe, shape-keyed, LRU-bounded cache of CompiledPrograms. One
/// instance is created per compile() and shared by every copy of that Engine
/// (Router shard replicas), so each input signature is compiled once per
/// model, process-wide.
class ProgramCache {
 public:
  /// budget_bytes bounds the summed CompiledProgram::bytes; 0 disables
  /// eviction. The most recently inserted entry is always retained, so a
  /// budget smaller than one program still serves (it just never keeps a
  /// second shape warm).
  explicit ProgramCache(int64_t budget_bytes) : budget_(budget_bytes) {}

  /// Returns the program for `input`, compiling on first miss
  /// (single-flight). Throws what compile_program throws; a failed compile
  /// is not cached, so a later identical request retries.
  std::shared_ptr<const CompiledProgram> get(const std::vector<Op>& ops,
                                             const PlanAnalysis& analysis,
                                             const Shape& input);

  ProgramCacheStats stats() const;

 private:
  using Future = std::shared_future<std::shared_ptr<const CompiledProgram>>;
  struct Entry {
    Shape shape;
    Future ready;       ///< waiters join here while the miss compiles
    bool done = false;  ///< bytes accounted; eligible for eviction
    int64_t bytes = 0;
  };

  /// Drops least-recently-used DONE entries (never `keep`, never an
  /// in-flight compile) until the budget holds. Call with mu_ held.
  void evict_locked(const Shape& keep);

  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  int64_t budget_ = 0;
  int64_t bytes_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace ttsnn::infer
