#pragma once

/// \file ttconv.h
/// TTConv2d — the paper's primary contribution. A K x K convolution factored
/// into four TT sub-convolutions, executed in one of three pipelines:
///
///  - STT (Fig. 1b): sequential chain w1 -> w2 -> w3 -> w4. Stride-s layers
///    place stride (s,1) on the vertical core and (1,s) on the horizontal
///    core so the chain composes to a stride-s convolution.
///  - PTT (Fig. 1c, Eq. 5): w2 and w3 both consume the w1 output and run in
///    parallel (two threads — the CPU analog of the paper's GPU streams);
///    their sum feeds w4. The effective kernel is the K x K cross (no
///    corners). Stride-s layers stride both branches by (s,s).
///  - HTT (Fig. 2): a per-timestep schedule; "full" steps run the PTT path,
///    "half" steps skip the strips and run w1 -> w4 only (with the stride
///    moved onto w4 so output shapes agree across steps).
///
/// Merged inference kernels (Algorithm 1 lines 20-22) are exposed via
/// merged_kernel() / merged_half_kernel(); see also merge_network() in
/// factorize.h.

#include "nn/conv2d.h"
#include "nn/module.h"
#include "tt/tt_cores.h"

namespace ttsnn {

enum class TTMode { kSTT, kPTT, kHTT };

std::string tt_mode_name(TTMode mode);

class TTConv2d : public Module {
 public:
  struct Options {
    int64_t in_channels = 0;
    int64_t out_channels = 0;
    int64_t kernel = 3;
    int64_t stride = 1;
    int64_t rank = 0;
    TTMode mode = TTMode::kPTT;
    /// HTT schedule: full_step[t] == true runs the full (PTT) path at step t.
    /// Empty means "all steps full". Ignored for STT/PTT.
    std::vector<bool> full_step;
    /// Run the PTT/HTT strip branches on two threads.
    bool parallel_branches = true;
  };

  /// Randomly initialized cores (Kaiming fan-in per sub-convolution).
  TTConv2d(Options opts, Rng& rng);
  /// Cores from a TT-SVD of a pretrained dense weight (Algorithm 1 line 4).
  TTConv2d(Options opts, const TTCores& cores);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void describe(ShapeState& s, std::vector<LayerDesc>& out) const override;
  void clear_cache() override;
  std::string name() const override { return "TTConv2d"; }

  const Options& options() const { return opts_; }
  /// Snapshot of the current core weights.
  TTCores cores() const;
  /// Merged dense kernel for spike-based inference: full K x K for STT,
  /// cross-shaped for PTT/HTT full steps (Eq. 6).
  Tensor merged_kernel() const;
  /// Merged pointwise kernel for HTT half steps.
  Tensor merged_half_kernel() const;
  /// Fraction of timesteps executing the full path (1.0 unless HTT).
  double full_step_fraction(int64_t timesteps) const;

  Parameter& w1() { return w1_; }
  Parameter& w2() { return w2_; }
  Parameter& w3() { return w3_; }
  Parameter& w4() { return w4_; }
  const Parameter& w1() const { return w1_; }
  const Parameter& w2() const { return w2_; }
  const Parameter& w3() const { return w3_; }
  const Parameter& w4() const { return w4_; }

  // Sub-convolution option builders, public so the inference lowering pass
  // can reproduce the training pipeline's exact geometry.
  Conv2d::Options opt_w1() const;
  Conv2d::Options opt_w2(bool parallel_mode) const;
  Conv2d::Options opt_w3(bool parallel_mode) const;
  Conv2d::Options opt_w4(bool strided_half) const;

 private:
  Tensor forward_stt(const Tensor& o1);
  Tensor backward_stt(const Tensor& grad);
  /// PTT path over the given tensor (any leading layout); caches branch
  /// intermediates for the matching backward when training.
  Tensor forward_ptt_path(const Tensor& x);
  Tensor backward_ptt_path(const Tensor& grad);
  Tensor forward_htt(const Tensor& o1);
  Tensor backward_htt(const Tensor& grad);

  /// True at HTT step t.
  bool is_full_step(int64_t t) const;
  /// Input tensor the PTT path consumed in the last forward.
  const Tensor& cached_path_input() const;

  Options opts_;
  Parameter w1_, w2_, w3_, w4_;

  // Caches (which subset is populated depends on the mode).
  Tensor in_x_;        // layer input
  Tensor o1_;          // w1 output
  Tensor stt_z2_;      // STT: w2 output
  Tensor stt_z3_;      // STT: w3 output
  Tensor ptt_sum_;     // PTT: branch sum (w4 input)
  Tensor htt_full_x_;  // HTT: gathered full-step w1 outputs
  Tensor htt_half_x_;  // HTT: gathered half-step w1 outputs
  std::vector<int64_t> full_idx_, half_idx_;
};

}  // namespace ttsnn
