#include "core/flops.h"

#include <sstream>

namespace ttsnn {

ModelStats analyze_model(const Module& root, int64_t in_c, int64_t in_h,
                         int64_t in_w) {
  ModelStats stats;
  ShapeState s{.c = in_c, .h = in_h, .w = in_w};
  root.describe(s, stats.layers);

  // Spike-input fixup: a convolution consumes binary spikes iff the previous
  // compute layer in program order is an LIF. TTConv sub-layers w2..w4 keep
  // their analog flag (only w1 sees the layer input). Track WHICH LIF feeds
  // each spike-input layer so measured densities can be attached later.
  bool after_lif = false;
  int64_t lif_count = 0;
  for (LayerDesc& d : stats.layers) {
    if (d.kind == "conv" || d.kind == "linear" || d.detail.ends_with(".w1")) {
      d.spike_input = after_lif;
      d.source_lif = after_lif ? lif_count - 1 : -1;
    }
    if (d.kind == "lif") {
      after_lif = true;
      ++lif_count;
    } else if (d.kind == "conv" || d.kind == "ttconv" || d.kind == "linear") {
      after_lif = false;
    }
    // bn / pool keep the spike flag alive: they're element-wise reshapes of
    // the spiking activity from the preceding LIF in MS-ResNet ordering.
  }

  for (const LayerDesc& d : stats.layers) {
    stats.total_params += d.params;
    if (d.kind == "conv" || d.kind == "ttconv" || d.kind == "linear") {
      stats.macs_per_step += static_cast<double>(d.macs) * d.utilization;
    }
  }
  return stats;
}

SynopReport inference_synops(const ModelStats& stats,
                             const std::vector<double>& lif_densities,
                             int64_t timesteps) {
  SynopReport report;
  for (const LayerDesc& d : stats.layers) {
    if (d.kind != "conv" && d.kind != "ttconv" && d.kind != "linear") continue;
    const double ops =
        static_cast<double>(d.macs) * d.utilization * static_cast<double>(timesteps);
    if (d.spike_input && d.source_lif >= 0) {
      TTSNN_CHECK(d.source_lif < static_cast<int64_t>(lif_densities.size()),
                  "inference_synops: density list shorter than LIF count");
      report.ac_ops += ops * lif_densities[static_cast<size_t>(d.source_lif)];
    } else {
      report.mac_ops += ops;
    }
  }
  return report;
}

std::string stats_summary(const ModelStats& stats, int64_t timesteps) {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(3);
  oss << "P=" << stats.params_m() << "M, FLOPs(T=" << timesteps
      << ")=" << stats.flops_g(timesteps) << "G";
  return oss.str();
}

}  // namespace ttsnn
