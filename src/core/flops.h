#pragma once

/// \file flops.h
/// Static model analysis: parameter counts and FLOPs in the paper's
/// convention (FLOPs == multiply-accumulates of conv/linear layers, summed
/// over timesteps; Table II reports e.g. ResNet18 @ 32x32, T=4 as 2.221G).

#include "nn/module.h"

namespace ttsnn {

struct ModelStats {
  std::vector<LayerDesc> layers;
  int64_t total_params = 0;      ///< all trainable scalars (incl. BN affine)
  double macs_per_step = 0.0;    ///< utilization-weighted conv+linear MACs,
                                 ///< one sample, one timestep
  double params_m() const { return static_cast<double>(total_params) / 1e6; }
  double flops_g(int64_t timesteps) const {
    return macs_per_step * static_cast<double>(timesteps) / 1e9;
  }
};

/// Walks the module tree with describe() from the given input shape, fixing
/// up spike-input flags (a conv consumes spikes iff an LIF feeds it).
ModelStats analyze_model(const Module& root, int64_t in_c, int64_t in_h,
                         int64_t in_w);

/// Formats a one-line summary: "P=1.83M, FLOPs(T=4)=0.372G".
std::string stats_summary(const ModelStats& stats, int64_t timesteps);

/// Synaptic-operation accounting for spike-driven inference (the reason the
/// paper merges TT cores back into dense kernels: spiking inference costs
/// accumulates, not multiplies). Given measured per-LIF spike densities (in
/// LIF traversal order — see profile_spikes in snn/profile.h), splits each
/// compute layer's MACs into sparse ACs (spike input, scaled by the measured
/// density of its source LIF) and dense MACs (analog input).
struct SynopReport {
  double ac_ops = 0.0;    ///< accumulate-only ops over all timesteps
  double mac_ops = 0.0;   ///< full multiply-accumulates over all timesteps
  double total() const { return ac_ops + mac_ops; }
};

SynopReport inference_synops(const ModelStats& stats,
                             const std::vector<double>& lif_densities,
                             int64_t timesteps);

}  // namespace ttsnn
