#include "core/paper_config.h"

#include "tt/tt_cores.h"

namespace ttsnn {

namespace {

int64_t conv_out(int64_t in, int64_t kernel, int64_t stride) {
  const int64_t pad = (kernel - 1) / 2;
  return (in + 2 * pad - kernel) / stride + 1;
}

}  // namespace

PaperModel paper_ms_resnet(const std::string& name,
                           const std::vector<int64_t>& blocks, int64_t in_c,
                           int64_t classes, int64_t input, int64_t timesteps,
                           int64_t base_width) {
  PaperModel m;
  m.name = name;
  m.in_channels = in_c;
  m.input_h = m.input_w = input;
  m.timesteps = timesteps;

  int64_t h = input;
  int64_t c = base_width;
  // Stem (never decomposed).
  m.convs.push_back({.in_c = in_c, .out_c = c, .kernel = 3, .stride = 1,
                     .in_h = h, .in_w = h, .decomposed = false});
  m.bn_channels.push_back(c);

  int64_t cur_c = c;
  for (size_t stage = 0; stage < blocks.size(); ++stage) {
    const int64_t out_c = base_width << stage;
    for (int64_t b = 0; b < blocks[stage]; ++b) {
      const int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      // conv1 (3x3, maybe strided) - decomposed
      m.convs.push_back({.in_c = cur_c, .out_c = out_c, .kernel = 3,
                         .stride = stride, .in_h = h, .in_w = h,
                         .decomposed = true});
      m.bn_channels.push_back(out_c);
      const int64_t h2 = conv_out(h, 3, stride);
      // conv2 (3x3) - decomposed
      m.convs.push_back({.in_c = out_c, .out_c = out_c, .kernel = 3,
                         .stride = 1, .in_h = h2, .in_w = h2,
                         .decomposed = true});
      m.bn_channels.push_back(out_c);
      // projection shortcut (1x1) - kept dense
      if (stride != 1 || cur_c != out_c) {
        m.convs.push_back({.in_c = cur_c, .out_c = out_c, .kernel = 1,
                           .stride = stride, .in_h = h, .in_w = h,
                           .decomposed = false});
        m.bn_channels.push_back(out_c);
      }
      h = h2;
      cur_c = out_c;
    }
  }
  m.fc_in = cur_c;
  m.fc_out = classes;
  return m;
}

PaperModel paper_resnet18_cifar(int64_t classes) {
  return paper_ms_resnet("MS-ResNet18", {2, 2, 2, 2}, 3, classes, 32, 4);
}

PaperModel paper_resnet34_ncaltech() {
  return paper_ms_resnet("MS-ResNet34", {3, 4, 6, 3}, 2, 101, 48, 6);
}

const std::vector<int64_t>& paper_ranks_resnet18() {
  static const std::vector<int64_t> ranks{24, 27, 25, 29, 37, 45, 43, 41,
                                          65, 74, 70, 63, 104, 153, 186, 145};
  return ranks;
}

const std::vector<int64_t>& paper_ranks_resnet34() {
  static const std::vector<int64_t> ranks{
      24, 23, 22, 17, 16, 12, 22, 31, 25, 25, 24,  21,  20,  19,  48,  79,
      64, 69, 63, 69, 60, 65, 63, 63, 62, 58, 121, 170, 173, 147, 161, 108};
  return ranks;
}

PaperCounts paper_baseline_counts(const PaperModel& model) {
  PaperCounts out;
  double params = 0.0;
  double macs = 0.0;
  for (const PaperConv& c : model.convs) {
    params += static_cast<double>(c.out_c) * c.in_c * c.kernel * c.kernel;
    const int64_t oh = conv_out(c.in_h, c.kernel, c.stride);
    const int64_t ow = conv_out(c.in_w, c.kernel, c.stride);
    macs += static_cast<double>(c.out_c) * oh * ow * c.in_c * c.kernel * c.kernel;
  }
  for (int64_t bc : model.bn_channels) params += 2.0 * static_cast<double>(bc);
  params += static_cast<double>(model.fc_in) * model.fc_out + model.fc_out;
  macs += static_cast<double>(model.fc_in) * model.fc_out;

  out.params_m = params / 1e6;
  out.flops_g = macs * static_cast<double>(model.timesteps) / 1e9;
  return out;
}

PaperCounts paper_tt_counts(const PaperModel& model,
                            const std::vector<int64_t>& ranks, TTMode mode,
                            double strip_utilization) {
  PaperCounts out;
  double params = 0.0;
  double macs = 0.0;
  size_t rank_cursor = 0;
  for (const PaperConv& c : model.convs) {
    const int64_t oh = conv_out(c.in_h, c.kernel, c.stride);
    const int64_t ow = conv_out(c.in_w, c.kernel, c.stride);
    if (!c.decomposed) {
      params += static_cast<double>(c.out_c) * c.in_c * c.kernel * c.kernel;
      macs += static_cast<double>(c.out_c) * oh * ow * c.in_c * c.kernel *
              c.kernel;
      continue;
    }
    TTSNN_CHECK(rank_cursor < ranks.size(),
                "rank list shorter than decomposed conv count");
    const int64_t r = ranks[rank_cursor++];
    params += static_cast<double>(tt_num_params(c.in_c, c.out_c, c.kernel, r));

    // w1: pointwise at input resolution.
    macs += static_cast<double>(r) * c.in_c * c.in_h * c.in_w;
    // Strips at the strided resolution. STT strides the vertical strip by
    // (s,1) — its output keeps full width; PTT/HTT stride both by (s,s).
    const double strips =
        mode == TTMode::kSTT
            ? static_cast<double>(r) * r * c.kernel * (oh * c.in_w + oh * ow)
            : static_cast<double>(r) * r * c.kernel * (2.0 * oh * ow);
    macs += strips * strip_utilization;
    // w4: pointwise at output resolution (runs on every step in all modes).
    macs += static_cast<double>(c.out_c) * r * oh * ow;
  }
  TTSNN_CHECK(rank_cursor == ranks.size(),
              "rank list longer than decomposed conv count");
  for (int64_t bc : model.bn_channels) params += 2.0 * static_cast<double>(bc);
  params += static_cast<double>(model.fc_in) * model.fc_out + model.fc_out;
  macs += static_cast<double>(model.fc_in) * model.fc_out;

  out.params_m = params / 1e6;
  out.flops_g = macs * static_cast<double>(model.timesteps) / 1e9;
  return out;
}

}  // namespace ttsnn
