#include "core/factorize.h"

#include <cmath>

#include "tt/tt_svd.h"
#include "tt/vbmf.h"

namespace ttsnn {

int64_t FactorizeReport::dense_params() const {
  int64_t n = 0;
  for (const FactorizedLayer& l : layers) n += l.dense_params;
  return n;
}

int64_t FactorizeReport::tt_params() const {
  int64_t n = 0;
  for (const FactorizedLayer& l : layers) n += l.tt_params;
  return n;
}

FactorizeReport factorize_network(Module& root, const FactorizeOptions& opts,
                                  Rng& rng) {
  if (opts.mode == TTMode::kHTT) {
    TTSNN_CHECK(!opts.htt_schedule.empty(),
                "factorize_network: HTT mode requires a schedule");
  }
  FactorizeReport report;
  size_t rank_cursor = 0;

  visit_module_slots(root, [&](ModulePtr& slot) {
    auto* conv = dynamic_cast<Conv2d*>(slot.get());
    if (conv == nullptr) return;
    const Conv2d::Options& c = conv->options();
    // Eligibility: square odd kernel >= 3, uniform stride, non-stem input.
    if (c.kernel_h != c.kernel_w || c.kernel_h < 3 || c.kernel_h % 2 == 0) return;
    if (c.resolved_stride_h() != c.resolved_stride_w()) return;
    if (c.in_channels < opts.min_in_channels) return;

    int64_t rank = 0;
    if (!opts.explicit_ranks.empty()) {
      TTSNN_CHECK(rank_cursor < opts.explicit_ranks.size(),
                  "explicit_ranks list shorter than decomposed layer count");
      rank = opts.explicit_ranks[rank_cursor];
    } else if (opts.use_vbmf) {
      rank = estimate_tt_rank(conv->weight().value);
    } else {
      rank = std::max<int64_t>(
          1, static_cast<int64_t>(std::llround(
                 opts.rank_fraction *
                 static_cast<double>(std::min(c.in_channels, c.out_channels)))));
    }
    rank = std::clamp<int64_t>(rank, 1, std::min(c.in_channels, c.out_channels));
    ++rank_cursor;

    TTConv2d::Options tt_opts{.in_channels = c.in_channels,
                              .out_channels = c.out_channels,
                              .kernel = c.kernel_h,
                              .stride = c.resolved_stride_h(),
                              .rank = rank,
                              .mode = opts.mode,
                              .full_step = opts.mode == TTMode::kHTT
                                               ? opts.htt_schedule
                                               : std::vector<bool>{},
                              .parallel_branches = opts.parallel_branches};

    FactorizedLayer info;
    info.index = report.replaced();
    info.in_c = c.in_channels;
    info.out_c = c.out_channels;
    info.kernel = c.kernel_h;
    info.stride = c.resolved_stride_h();
    info.rank = rank;
    info.dense_params = conv->weight().value.numel();
    info.tt_params = tt_num_params(c.in_channels, c.out_channels, c.kernel_h, rank);

    ModulePtr replacement;
    if (opts.init_from_dense) {
      TTCores cores = tt_svd(conv->weight().value, rank);
      info.init_error = tt_reconstruction_error(conv->weight().value, cores);
      replacement = std::make_unique<TTConv2d>(tt_opts, cores);
    } else {
      replacement = std::make_unique<TTConv2d>(tt_opts, rng);
    }
    slot = std::move(replacement);
    report.layers.push_back(info);
  });

  if (!opts.explicit_ranks.empty()) {
    TTSNN_CHECK(rank_cursor == opts.explicit_ranks.size(),
                "explicit_ranks has " << opts.explicit_ranks.size()
                                      << " entries but " << rank_cursor
                                      << " layers were decomposed");
  }
  return report;
}

MergeReport merge_network(Module& root) {
  MergeReport report;
  visit_module_slots(root, [&](ModulePtr& slot) {
    auto* tt = dynamic_cast<TTConv2d*>(slot.get());
    if (tt == nullptr) return;
    const TTConv2d::Options& o = tt->options();
    Conv2d::Options dense_opts{.in_channels = o.in_channels,
                               .out_channels = o.out_channels,
                               .kernel_h = o.kernel,
                               .kernel_w = o.kernel,
                               .stride = o.stride};
    slot = std::make_unique<Conv2d>(dense_opts, tt->merged_kernel());
    ++report.merged;
  });
  return report;
}

}  // namespace ttsnn
