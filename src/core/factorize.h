#pragma once

/// \file factorize.h
/// Network rewrite passes of Algorithm 1:
///  - factorize_network(): replaces eligible dense Conv2d layers with
///    TTConv2d modules, with ranks from VBMF (line 2) or an explicit list,
///    initialized by TT-SVD of the pretrained dense weights (line 4).
///  - merge_network(): after training, replaces every TTConv2d with a dense
///    Conv2d carrying the merged kernel (lines 20-22) so inference runs the
///    standard spike-driven pipeline.
///
/// Eligibility follows the paper: the first conv layer (detected by its small
/// input channel count — RGB or event-polarity input) and the classifier are
/// never decomposed; 1x1 projection shortcuts are also kept dense.

#include <optional>

#include "core/ttconv.h"
#include "nn/module.h"

namespace ttsnn {

struct FactorizeOptions {
  TTMode mode = TTMode::kPTT;
  /// HTT per-timestep schedule (true = full step); required for kHTT.
  std::vector<bool> htt_schedule;
  /// If non-empty, ranks are taken from this list in traversal order
  /// (the format of the paper's published VBMF rank lists).
  std::vector<int64_t> explicit_ranks;
  /// Rank source when explicit_ranks is empty: VBMF on the trained weight,
  /// or a fixed fraction of min(in_c, out_c).
  bool use_vbmf = true;
  double rank_fraction = 0.25;
  /// Convs with fewer input channels are treated as stem layers and skipped.
  int64_t min_in_channels = 8;
  /// Initialize cores by TT-SVD of the dense weight (true) or randomly.
  bool init_from_dense = true;
  /// Run PTT/HTT strip branches on two threads.
  bool parallel_branches = true;
};

struct FactorizedLayer {
  int64_t index = 0;  ///< order of replacement (matches explicit_ranks order)
  int64_t in_c = 0, out_c = 0, kernel = 0, stride = 1;
  int64_t rank = 0;
  int64_t dense_params = 0;
  int64_t tt_params = 0;
  double init_error = 0.0;  ///< TT-SVD relative reconstruction error
};

struct FactorizeReport {
  std::vector<FactorizedLayer> layers;
  int64_t replaced() const { return static_cast<int64_t>(layers.size()); }
  int64_t dense_params() const;
  int64_t tt_params() const;
};

/// Rewrites the module tree in place. `rng` is used for random init when
/// init_from_dense is false.
FactorizeReport factorize_network(Module& root, const FactorizeOptions& opts,
                                  Rng& rng);

struct MergeReport {
  int64_t merged = 0;
};

/// Replaces every TTConv2d with a dense Conv2d holding the merged kernel.
MergeReport merge_network(Module& root);

}  // namespace ttsnn
