#pragma once

/// \file paper_config.h
/// Full-scale (paper-scale) model descriptions and the published VBMF rank
/// lists from Sec. V-A. These drive the exact params / FLOPs columns of
/// Table II as pure arithmetic — no tensors are materialized, so the counts
/// are at true ResNet18/34 scale even though training runs scaled down.

#include <string>
#include <vector>

#include "core/ttconv.h"

namespace ttsnn {

/// One convolution of a paper-scale model, with its input resolution.
struct PaperConv {
  int64_t in_c = 0, out_c = 0;
  int64_t kernel = 3;
  int64_t stride = 1;
  int64_t in_h = 0, in_w = 0;
  bool decomposed = false;  ///< 3x3 block convs only (Algorithm 1)
};

struct PaperModel {
  std::string name;
  std::vector<PaperConv> convs;
  std::vector<int64_t> bn_channels;  ///< one entry per BatchNorm layer
  int64_t fc_in = 0, fc_out = 0;
  int64_t timesteps = 4;
  int64_t in_channels = 3, input_h = 32, input_w = 32;
};

/// MS-ResNet with the given per-stage block counts at paper scale.
PaperModel paper_ms_resnet(const std::string& name,
                           const std::vector<int64_t>& blocks, int64_t in_c,
                           int64_t classes, int64_t input, int64_t timesteps,
                           int64_t base_width = 64);

/// ResNet18 on CIFAR10/100: 32x32 RGB, T = 4.
PaperModel paper_resnet18_cifar(int64_t classes);
/// ResNet34 on N-Caltech101: 48x48 two-polarity events, 101 classes, T = 6.
PaperModel paper_resnet34_ncaltech();

/// Published VBMF TT-ranks (Sec. V-A), in block-conv traversal order.
const std::vector<int64_t>& paper_ranks_resnet18();
const std::vector<int64_t>& paper_ranks_resnet34();

struct PaperCounts {
  double params_m = 0.0;
  double flops_g = 0.0;
};

/// Dense baseline parameters and FLOPs (MACs x T) of the model.
PaperCounts paper_baseline_counts(const PaperModel& model);

/// Counts after TT decomposition with the given per-layer ranks.
/// `strip_utilization` is the fraction of timesteps executing the w2/w3
/// strips (1.0 for STT/PTT; the full-step fraction for HTT).
PaperCounts paper_tt_counts(const PaperModel& model,
                            const std::vector<int64_t>& ranks, TTMode mode,
                            double strip_utilization = 1.0);

}  // namespace ttsnn
