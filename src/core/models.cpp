#include "core/models.h"

#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pooling.h"

namespace ttsnn {

namespace {

BatchNorm::Options bn_opts(const ModelConfig& cfg, int64_t channels) {
  return {.channels = channels,
          .mode = cfg.bn_mode,
          .alpha_vth = cfg.bn_mode == BatchNorm::Mode::kTdBn ? cfg.bn_alpha_vth
                                                             : 1.0F,
          .timesteps = cfg.timesteps};
}

/// One MS-ResNet basic block: pre-activation body with membrane shortcut.
ModulePtr make_ms_block(const ModelConfig& cfg, int64_t in_c, int64_t out_c,
                        int64_t stride, Rng& rng) {
  auto body = std::make_unique<Sequential>();
  body->emplace<LIFNeuron>(cfg.lif);
  body->emplace<Conv2d>(
      Conv2d::Options{.in_channels = in_c, .out_channels = out_c, .stride = stride},
      rng);
  body->emplace<BatchNorm>(bn_opts(cfg, out_c));
  body->emplace<LIFNeuron>(cfg.lif);
  body->emplace<Conv2d>(
      Conv2d::Options{.in_channels = out_c, .out_channels = out_c}, rng);
  auto bn2 = std::make_unique<BatchNorm>(bn_opts(cfg, out_c));
  if (cfg.zero_init_residual) bn2->gamma().value.zero_();
  body->add(std::move(bn2));

  ModulePtr shortcut;
  if (stride != 1 || in_c != out_c) {
    auto sc = std::make_unique<Sequential>();
    sc->emplace<Conv2d>(Conv2d::Options{.in_channels = in_c,
                                        .out_channels = out_c,
                                        .kernel_h = 1,
                                        .kernel_w = 1,
                                        .stride = stride},
                        rng);
    sc->emplace<BatchNorm>(bn_opts(cfg, out_c));
    shortcut = std::move(sc);
  }
  return std::make_unique<Residual>(std::move(body), std::move(shortcut));
}

}  // namespace

ModulePtr make_ms_resnet(const ModelConfig& cfg, const std::vector<int64_t>& blocks,
                         Rng& rng) {
  TTSNN_CHECK(!blocks.empty(), "make_ms_resnet: empty stage list");
  auto net = std::make_unique<Sequential>();
  // Stem: dense conv + BN (never decomposed; Algorithm 1).
  net->emplace<Conv2d>(Conv2d::Options{.in_channels = cfg.in_channels,
                                       .out_channels = cfg.base_width},
                       rng);
  net->emplace<BatchNorm>(bn_opts(cfg, cfg.base_width));

  int64_t in_c = cfg.base_width;
  for (size_t stage = 0; stage < blocks.size(); ++stage) {
    const int64_t out_c = cfg.base_width << stage;
    for (int64_t b = 0; b < blocks[stage]; ++b) {
      const int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      net->add(make_ms_block(cfg, in_c, out_c, stride, rng));
      in_c = out_c;
    }
  }
  // Head: spike, pool, classify (classifier kept dense; Algorithm 1 line 14).
  net->emplace<LIFNeuron>(cfg.lif);
  net->emplace<GlobalAvgPool>();
  net->emplace<Linear>(in_c, cfg.num_classes, rng);
  return net;
}

ModulePtr make_ms_resnet18(const ModelConfig& cfg, Rng& rng) {
  return make_ms_resnet(cfg, {2, 2, 2, 2}, rng);
}

ModulePtr make_ms_resnet34(const ModelConfig& cfg, Rng& rng) {
  return make_ms_resnet(cfg, {3, 4, 6, 3}, rng);
}

ModulePtr make_resnet20(const ModelConfig& cfg, Rng& rng) {
  ModelConfig c = cfg;
  if (c.bn_mode == BatchNorm::Mode::kPerStep) {
    // ResNet20's reference training recipe is tdBN [26].
    c.bn_mode = BatchNorm::Mode::kTdBn;
    c.bn_alpha_vth = c.lif.v_th;
  }
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2d>(Conv2d::Options{.in_channels = c.in_channels,
                                       .out_channels = c.base_width},
                       rng);
  net->emplace<BatchNorm>(bn_opts(c, c.base_width));
  int64_t in_c = c.base_width;
  for (int64_t stage = 0; stage < 3; ++stage) {
    const int64_t out_c = c.base_width << stage;
    for (int64_t b = 0; b < 3; ++b) {
      const int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      net->add(make_ms_block(c, in_c, out_c, stride, rng));
      in_c = out_c;
    }
  }
  net->emplace<LIFNeuron>(c.lif);
  net->emplace<GlobalAvgPool>();
  net->emplace<Linear>(in_c, c.num_classes, rng);
  return net;
}

namespace {

/// Shared VGG builder: `plan` lists conv widths (in units of base_width / 64)
/// with 0 marking a 2x2 average pool.
ModulePtr make_vgg(const ModelConfig& cfg, const std::vector<int64_t>& plan,
                   Rng& rng) {
  auto net = std::make_unique<Sequential>();
  int64_t in_c = cfg.in_channels;
  for (int64_t entry : plan) {
    if (entry == 0) {
      net->emplace<AvgPool2d>(2);
      continue;
    }
    const int64_t out_c = entry * cfg.base_width / 64;
    net->emplace<Conv2d>(
        Conv2d::Options{.in_channels = in_c, .out_channels = out_c}, rng);
    net->emplace<BatchNorm>(bn_opts(cfg, out_c));
    net->emplace<LIFNeuron>(cfg.lif);
    in_c = out_c;
  }
  net->emplace<GlobalAvgPool>();
  net->emplace<Linear>(in_c, cfg.num_classes, rng);
  return net;
}

}  // namespace

ModulePtr make_vgg9(const ModelConfig& cfg, Rng& rng) {
  // 7 convs: 64,64 P 128,128 P 256,256,256 P  (in base_width/64 units).
  return make_vgg(cfg, {64, 64, 0, 128, 128, 0, 256, 256, 256, 0}, rng);
}

ModulePtr make_vgg11(const ModelConfig& cfg, Rng& rng) {
  // 8 convs: 64 P 128 P 256,256 P 512,512 P 512,512.
  return make_vgg(cfg, {64, 0, 128, 0, 256, 256, 0, 512, 512, 0, 512, 512}, rng);
}

}  // namespace ttsnn
