#pragma once

/// \file models.h
/// Model zoo for the paper's experiments (all width/size-parameterized so the
/// same code runs both at paper scale for static analysis and scaled down for
/// CPU training):
///
///  - MS-ResNet18 / MS-ResNet34 [30]: the baseline architectures of Table II.
///    Pre-activation spiking residual blocks — LIF precedes conv, and the
///    residual sum acts on full-precision post-BN features (the "membrane
///    shortcut").
///  - ResNet20 with tdBN [26], VGG9 [27][28], VGG11 [29]: Table III hosts.

#include "nn/batchnorm.h"
#include "nn/containers.h"
#include "nn/lif.h"
#include "nn/module.h"

namespace ttsnn {

struct ModelConfig {
  int64_t in_channels = 3;
  int64_t num_classes = 10;
  /// Channel width of the first stage; later stages double it. Paper scale
  /// is 64 for ResNet18/34; benches use 8-16 to fit the CPU budget.
  int64_t base_width = 64;
  /// Timesteps (needed by TEBN's per-step parameters).
  int64_t timesteps = 4;
  BatchNorm::Mode bn_mode = BatchNorm::Mode::kPerStep;
  /// tdBN's alpha * V_th scale (used when bn_mode == kTdBn).
  float bn_alpha_vth = 1.0F;
  LIFNeuron::Options lif = {};
  /// Zero-initialize each residual block's final BN gamma so blocks start as
  /// identities. Without it the membrane-shortcut sums grow with depth and
  /// deep stacks (ResNet34) start from exploded logits — the standard
  /// residual-SNN initialization (tdBN [26] / MS-ResNet [30] practice).
  bool zero_init_residual = true;
};

/// MS-ResNet with basic blocks; `blocks` gives the per-stage block counts.
ModulePtr make_ms_resnet(const ModelConfig& cfg, const std::vector<int64_t>& blocks,
                         Rng& rng);
/// MS-ResNet18: stages {2, 2, 2, 2}.
ModulePtr make_ms_resnet18(const ModelConfig& cfg, Rng& rng);
/// MS-ResNet34: stages {3, 4, 6, 3}.
ModulePtr make_ms_resnet34(const ModelConfig& cfg, Rng& rng);
/// CIFAR ResNet20: 3 stages x 3 blocks at widths {w, 2w, 4w}; tdBN default.
ModulePtr make_resnet20(const ModelConfig& cfg, Rng& rng);
/// VGG9: 7 conv layers; used by TEBN/TET rows of Table III.
ModulePtr make_vgg9(const ModelConfig& cfg, Rng& rng);
/// VGG11: 8 conv layers; used by the NDA row of Table III.
ModulePtr make_vgg11(const ModelConfig& cfg, Rng& rng);

}  // namespace ttsnn
