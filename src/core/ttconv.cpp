#include "core/ttconv.h"

#include "tensor/ops.h"
#include "tensor/random.h"
#include "util/thread_pool.h"

namespace ttsnn {

std::string tt_mode_name(TTMode mode) {
  switch (mode) {
    case TTMode::kSTT:
      return "STT";
    case TTMode::kPTT:
      return "PTT";
    case TTMode::kHTT:
      return "HTT";
  }
  return "?";
}

namespace {

/// Shared Options validation for both constructors (rank is checked only on
/// the random-init path; the cores constructor derives it from the cores).
void validate_options(const TTConv2d::Options& opts) {
  TTSNN_CHECK(opts.in_channels > 0 && opts.out_channels > 0,
              "TTConv2d channels must be positive");
  TTSNN_CHECK(opts.kernel >= 1, "TTConv2d kernel must be >= 1, got " << opts.kernel);
  TTSNN_CHECK(opts.kernel % 2 == 1, "TTConv2d kernel must be odd");
  TTSNN_CHECK(opts.stride >= 1, "TTConv2d stride must be >= 1, got " << opts.stride);
}

}  // namespace

TTConv2d::TTConv2d(Options opts, Rng& rng) : opts_(opts) {
  validate_options(opts_);
  TTSNN_CHECK(opts_.rank >= 1, "TTConv2d rank must be >= 1, got " << opts_.rank);
  const int64_t r = opts_.rank;
  const int64_t k = opts_.kernel;
  w1_ = Parameter("tt.w1",
                  kaiming_normal({r, opts_.in_channels, 1, 1}, opts_.in_channels, rng));
  w2_ = Parameter("tt.w2", kaiming_normal({r, r, k, 1}, r * k, rng));
  w3_ = Parameter("tt.w3", kaiming_normal({r, r, 1, k}, r * k, rng));
  w4_ = Parameter("tt.w4", kaiming_normal({opts_.out_channels, r, 1, 1}, r, rng));
}

TTConv2d::TTConv2d(Options opts, const TTCores& cores) : opts_(opts) {
  validate_options(opts_);
  cores.check();
  TTSNN_CHECK(cores.in_channels == opts_.in_channels &&
                  cores.out_channels == opts_.out_channels &&
                  cores.kernel == opts_.kernel,
              "TTConv2d: cores do not match options");
  opts_.rank = cores.rank;
  w1_ = Parameter("tt.w1", cores.w1.clone());
  w2_ = Parameter("tt.w2", cores.w2.clone());
  w3_ = Parameter("tt.w3", cores.w3.clone());
  w4_ = Parameter("tt.w4", cores.w4.clone());
}

Conv2d::Options TTConv2d::opt_w1() const {
  return {.in_channels = opts_.in_channels, .out_channels = opts_.rank,
          .kernel_h = 1, .kernel_w = 1};
}

Conv2d::Options TTConv2d::opt_w2(bool parallel_mode) const {
  return {.in_channels = opts_.rank, .out_channels = opts_.rank,
          .kernel_h = opts_.kernel, .kernel_w = 1,
          .stride_h = opts_.stride,
          .stride_w = parallel_mode ? opts_.stride : 1};
}

Conv2d::Options TTConv2d::opt_w3(bool parallel_mode) const {
  return {.in_channels = opts_.rank, .out_channels = opts_.rank,
          .kernel_h = 1, .kernel_w = opts_.kernel,
          .stride_h = parallel_mode ? opts_.stride : 1,
          .stride_w = opts_.stride};
}

Conv2d::Options TTConv2d::opt_w4(bool strided_half) const {
  return {.in_channels = opts_.rank, .out_channels = opts_.out_channels,
          .kernel_h = 1, .kernel_w = 1,
          .stride = strided_half ? opts_.stride : 1};
}

bool TTConv2d::is_full_step(int64_t t) const {
  if (opts_.mode != TTMode::kHTT || opts_.full_step.empty()) return true;
  TTSNN_CHECK(t < static_cast<int64_t>(opts_.full_step.size()),
              "HTT schedule too short for timestep " << t);
  return opts_.full_step[static_cast<size_t>(t)];
}

double TTConv2d::full_step_fraction(int64_t timesteps) const {
  if (opts_.mode != TTMode::kHTT || opts_.full_step.empty()) return 1.0;
  int64_t full = 0;
  for (bool b : opts_.full_step) full += b ? 1 : 0;
  const int64_t total = static_cast<int64_t>(opts_.full_step.size());
  (void)timesteps;
  return static_cast<double>(full) / static_cast<double>(total);
}

Tensor TTConv2d::forward(const Tensor& x) {
  // Eval-mode forwards keep no activations: backward is a training-only
  // operation, and serving must not pay BPTT memory traffic (nor hold stale
  // caches from a previous training step).
  if (!training_) clear_cache();
  Tensor o1 = conv2d_forward(x, w1_.value, opt_w1());
  if (training_) {
    in_x_ = x;
    o1_ = o1;
  }
  switch (opts_.mode) {
    case TTMode::kSTT:
      return forward_stt(o1);
    case TTMode::kPTT:
      return forward_ptt_path(o1);
    case TTMode::kHTT:
      return forward_htt(o1);
  }
  TTSNN_CHECK(false, "unreachable");
  return {};
}

Tensor TTConv2d::backward(const Tensor& grad_out) {
  TTSNN_CHECK(in_x_.defined(), "TTConv2d::backward before forward");
  Tensor go;  // gradient w.r.t. o1 (the w1 output)
  switch (opts_.mode) {
    case TTMode::kSTT:
      go = backward_stt(grad_out);
      break;
    case TTMode::kPTT:
      go = backward_ptt_path(grad_out);
      break;
    case TTMode::kHTT:
      go = backward_htt(grad_out);
      break;
  }
  return conv2d_backward(in_x_, w1_.value, opt_w1(), go, w1_.grad);
}

Tensor TTConv2d::forward_stt(const Tensor& o1) {
  Tensor z2 = conv2d_forward(o1, w2_.value, opt_w2(false));
  Tensor z3 = conv2d_forward(z2, w3_.value, opt_w3(false));
  if (training_) {
    stt_z2_ = z2;
    stt_z3_ = z3;
  }
  return conv2d_forward(z3, w4_.value, opt_w4(false));
}

Tensor TTConv2d::backward_stt(const Tensor& grad) {
  Tensor g3 = conv2d_backward(stt_z3_, w4_.value, opt_w4(false), grad, w4_.grad);
  Tensor g2 = conv2d_backward(stt_z2_, w3_.value, opt_w3(false), g3, w3_.grad);
  return conv2d_backward(o1_, w2_.value, opt_w2(false), g2, w2_.grad);
}

const Tensor& TTConv2d::cached_path_input() const {
  // The PTT path consumes o1 directly in PTT mode and the gathered full-step
  // subset in HTT mode.
  return opts_.mode == TTMode::kHTT ? htt_full_x_ : o1_;
}

Tensor TTConv2d::forward_ptt_path(const Tensor& x) {
  // Both strips consume the same input; run them as two pool tasks (Eq. 5).
  Tensor a, b;
  if (opts_.parallel_branches) {
    parallel_invoke([&] { a = conv2d_forward(x, w2_.value, opt_w2(true)); },
                    [&] { b = conv2d_forward(x, w3_.value, opt_w3(true)); });
  } else {
    a = conv2d_forward(x, w2_.value, opt_w2(true));
    b = conv2d_forward(x, w3_.value, opt_w3(true));
  }
  a.add_(b);  // in place: a is a fresh conv output, nothing else aliases it
  if (training_) ptt_sum_ = a;
  return conv2d_forward(a, w4_.value, opt_w4(false));
}

Tensor TTConv2d::backward_ptt_path(const Tensor& grad) {
  Tensor g_sum =
      conv2d_backward(ptt_sum_, w4_.value, opt_w4(false), grad, w4_.grad);
  const Tensor& x = cached_path_input();
  Tensor ga, gb;
  if (opts_.parallel_branches) {
    parallel_invoke(
        [&] { ga = conv2d_backward(x, w2_.value, opt_w2(true), g_sum, w2_.grad); },
        [&] { gb = conv2d_backward(x, w3_.value, opt_w3(true), g_sum, w3_.grad); });
  } else {
    ga = conv2d_backward(x, w2_.value, opt_w2(true), g_sum, w2_.grad);
    gb = conv2d_backward(x, w3_.value, opt_w3(true), g_sum, w3_.grad);
  }
  ga.add_(gb);  // in place: ga is a fresh gradient buffer
  return ga;
}

Tensor TTConv2d::forward_htt(const Tensor& o1) {
  TTSNN_CHECK(o1.dim() == 5, "HTT expects [T, N, C, H, W]");
  const int64_t t_steps = o1.size(0);
  std::vector<int64_t> full_idx, half_idx;
  for (int64_t t = 0; t < t_steps; ++t) {
    (is_full_step(t) ? full_idx : half_idx).push_back(t);
  }
  Tensor full_x = gather_steps(o1, full_idx);
  Tensor half_x = gather_steps(o1, half_idx);
  if (training_) {
    full_idx_ = full_idx;
    half_idx_ = half_idx;
    htt_full_x_ = full_x;
    htt_half_x_ = half_x;
  }

  Tensor y_full, y_half;
  if (full_x.defined()) y_full = forward_ptt_path(full_x);
  if (half_x.defined()) {
    y_half = conv2d_forward(half_x, w4_.value, opt_w4(true));
  }
  TTSNN_CHECK(y_full.defined() || y_half.defined(), "HTT: empty schedule");
  Shape out_shape = (y_full.defined() ? y_full : y_half).shape();
  out_shape[0] = t_steps;
  Tensor out(out_shape);
  if (y_full.defined()) scatter_steps(out, y_full, full_idx);
  if (y_half.defined()) scatter_steps(out, y_half, half_idx);
  return out;
}

Tensor TTConv2d::backward_htt(const Tensor& grad) {
  Tensor go(o1_.shape());
  if (!full_idx_.empty()) {
    Tensor g_full = gather_steps(grad, full_idx_);
    Tensor go_full = backward_ptt_path(g_full);
    scatter_steps(go, go_full, full_idx_);
  }
  if (!half_idx_.empty()) {
    Tensor g_half = gather_steps(grad, half_idx_);
    Tensor go_half =
        conv2d_backward(htt_half_x_, w4_.value, opt_w4(true), g_half, w4_.grad);
    scatter_steps(go, go_half, half_idx_);
  }
  return go;
}

void TTConv2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&w1_);
  out.push_back(&w2_);
  out.push_back(&w3_);
  out.push_back(&w4_);
}

TTCores TTConv2d::cores() const {
  return TTCores{.in_channels = opts_.in_channels,
                 .out_channels = opts_.out_channels,
                 .kernel = opts_.kernel,
                 .rank = opts_.rank,
                 .w1 = w1_.value.clone(),
                 .w2 = w2_.value.clone(),
                 .w3 = w3_.value.clone(),
                 .w4 = w4_.value.clone()};
}

Tensor TTConv2d::merged_kernel() const {
  return opts_.mode == TTMode::kSTT ? merge_stt(cores()) : merge_ptt(cores());
}

Tensor TTConv2d::merged_half_kernel() const { return merge_half(cores()); }

void TTConv2d::describe(ShapeState& s, std::vector<LayerDesc>& out) const {
  const std::string mode = tt_mode_name(opts_.mode);
  const double strip_util = full_step_fraction(0);
  const bool parallel_mode = opts_.mode != TTMode::kSTT;
  const int64_t in_h = s.h, in_w = s.w;

  auto emit = [&](const Conv2d::Options& o, const char* part, double util,
                  bool spike_in, int64_t ih, int64_t iw) -> ConvGeometry {
    ConvGeometry g{.in_channels = o.in_channels,
                   .in_h = ih,
                   .in_w = iw,
                   .kernel_h = o.kernel_h,
                   .kernel_w = o.kernel_w,
                   .stride_h = o.resolved_stride_h(),
                   .stride_w = o.resolved_stride_w(),
                   .pad_h = o.resolved_pad_h(),
                   .pad_w = o.resolved_pad_w()};
    LayerDesc d;
    d.kind = "ttconv";
    d.detail = mode + "." + part;
    d.in_c = o.in_channels;
    d.out_c = o.out_channels;
    d.kernel_h = o.kernel_h;
    d.kernel_w = o.kernel_w;
    d.stride = opts_.stride;
    d.in_h = ih;
    d.in_w = iw;
    d.out_h = g.out_h();
    d.out_w = g.out_w();
    d.params = o.out_channels * o.in_channels * o.kernel_h * o.kernel_w;
    d.macs = d.out_c * d.out_h * d.out_w * o.in_channels * o.kernel_h *
             o.kernel_w;
    d.rank = opts_.rank;
    d.utilization = util;
    d.spike_input = spike_in;
    out.push_back(d);
    return g;
  };

  ConvGeometry g1 = emit(opt_w1(), "w1", 1.0, true, in_h, in_w);
  ConvGeometry g2 =
      emit(opt_w2(parallel_mode), "w2", strip_util, false, g1.out_h(), g1.out_w());
  ConvGeometry g3 =
      emit(opt_w3(parallel_mode), "w3", strip_util, false,
           parallel_mode ? g1.out_h() : g2.out_h(),
           parallel_mode ? g1.out_w() : g2.out_w());
  ConvGeometry g4 = emit(opt_w4(false), "w4", 1.0, false, g3.out_h(), g3.out_w());

  s.c = opts_.out_channels;
  s.h = g4.out_h();
  s.w = g4.out_w();
}

void TTConv2d::clear_cache() {
  in_x_ = Tensor();
  o1_ = Tensor();
  stt_z2_ = Tensor();
  stt_z3_ = Tensor();
  ptt_sum_ = Tensor();
  htt_full_x_ = Tensor();
  htt_half_x_ = Tensor();
  full_idx_.clear();
  half_idx_.clear();
}

}  // namespace ttsnn
