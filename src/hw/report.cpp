#include "hw/report.h"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/common.h"

namespace ttsnn {

std::string format_energy_table(const std::vector<NamedReport>& rows,
                                double clock_ghz) {
  TTSNN_CHECK(!rows.empty(), "format_energy_table: no rows");
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss << std::setw(10) << std::left << "design" << std::setw(10) << "mode"
      << std::right << std::setw(12) << "total(uJ)" << std::setw(9) << "ratio"
      << std::setw(12) << "compute" << std::setw(10) << "sram" << std::setw(10)
      << "dram" << std::setw(8) << "lif" << std::setw(10) << "leak"
      << std::setw(10) << "ms" << "\n";
  const double base = rows.front().report.total_pj();
  for (const NamedReport& row : rows) {
    const EnergyReport& r = row.report;
    oss << std::setw(10) << std::left << row.design << std::setw(10)
        << row.mode << std::right << std::setprecision(1) << std::setw(12)
        << r.total_pj() / 1e6 << std::setprecision(3) << std::setw(9)
        << r.total_pj() / base << std::setprecision(1) << std::setw(12)
        << r.compute_pj / 1e6 << std::setw(10) << r.sram_pj / 1e6
        << std::setw(10) << r.dram_pj / 1e6 << std::setw(8) << r.lif_pj / 1e6
        << std::setw(10) << r.leakage_pj / 1e6 << std::setprecision(2)
        << std::setw(10) << r.milliseconds(clock_ghz) << "\n";
  }
  return oss.str();
}

std::string energy_csv(const std::vector<NamedReport>& rows) {
  std::ostringstream oss;
  oss << "design,mode,compute_pj,lif_pj,sram_pj,dram_pj,leakage_pj,total_pj,"
         "cycles\n";
  for (const NamedReport& row : rows) {
    const EnergyReport& r = row.report;
    oss << row.design << ',' << row.mode << ',' << r.compute_pj << ','
        << r.lif_pj << ',' << r.sram_pj << ',' << r.dram_pj << ','
        << r.leakage_pj << ',' << r.total_pj() << ',' << r.cycles << "\n";
  }
  return oss.str();
}

void write_energy_csv(const std::vector<NamedReport>& rows,
                      const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  TTSNN_CHECK(out.is_open(), "cannot open " << path << " for writing");
  out << energy_csv(rows);
  TTSNN_CHECK(out.good(), "write failure on " << path);
}

}  // namespace ttsnn
