#pragma once

/// \file report.h
/// Presentation helpers for EnergyReport results: aligned text tables and
/// CSV export for plotting the Fig. 4 bar charts.

#include <string>
#include <vector>

#include "hw/energy_model.h"

namespace ttsnn {

struct NamedReport {
  std::string design;  ///< "existing" | "proposed" | ...
  std::string mode;    ///< "baseline" | "STT" | "PTT" | "HTT"
  EnergyReport report;
};

/// Multi-line aligned table of the reports (header + one row each), with
/// energies in uJ and the ratio against the first row.
std::string format_energy_table(const std::vector<NamedReport>& rows,
                                double clock_ghz);

/// CSV with header: design,mode,compute_pj,lif_pj,sram_pj,dram_pj,
/// leakage_pj,total_pj,cycles.
std::string energy_csv(const std::vector<NamedReport>& rows);

/// Writes the CSV to a file (throws on I/O failure).
void write_energy_csv(const std::vector<NamedReport>& rows,
                      const std::string& path);

}  // namespace ttsnn
