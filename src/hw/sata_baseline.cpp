#include "hw/sata_baseline.h"

#include <cmath>

namespace ttsnn {

namespace {

/// Forward + backward energy/cycles of one compute part on the single engine.
void simulate_part(const LayerWork& p, int64_t t_steps, const SataConfig& cfg,
                   EnergyReport& r) {
  const EnergyModel& e = cfg.energy;
  const double steps = static_cast<double>(t_steps) * p.utilization;

  // ---- forward compute: sparsity-aware (spikes -> accumulate only).
  const double fwd_ops = static_cast<double>(p.macs) * steps * p.input_density;
  r.compute_pj += fwd_ops * e.synop(p.spike_input);

  // ---- backward compute (BPTT): grad-input is dense multi-bit; grad-weight
  // reuses the sparse forward activations.
  const double bwd_input_ops = static_cast<double>(p.macs) * steps;
  const double bwd_weight_ops =
      static_cast<double>(p.macs) * steps * p.input_density;
  r.compute_pj += (bwd_input_ops + bwd_weight_ops) * e.mac_8b;

  // ---- weight traffic: fetched for forward and for backward, gradients
  // written back.
  const double wbytes = static_cast<double>(p.weight_bytes);
  r.dram_pj += 3.0 * wbytes * e.dram;
  r.sram_pj += 3.0 * wbytes * e.sram_large;

  // ---- activation traffic. Streams that cross the layer boundary go
  // through DRAM (layer-sequential execution; spike maps packed at 1 bit):
  // input forward + BPTT re-read, output forward, and the analog gradient
  // maps. Chained TT intermediates fit the 32 KB global buffers and stay on
  // chip (SRAM hops) — except for the PTT merge spill handled by the caller.
  const bool in_offchip = p.boundary_input;
  const bool out_offchip = p.boundary_output;
  const double in_traffic = 2.0 * p.in_bytes() * steps +
                            p.in_grad_bytes() * steps;  // fwd + save + grad
  const double out_traffic = p.out_bytes() * steps + p.out_grad_bytes() * steps;
  r.sram_pj += (in_traffic + out_traffic) * e.sram_small;
  r.dram_pj += (in_offchip ? in_traffic : 0.0) * e.dram;
  r.dram_pj += (out_offchip ? out_traffic : 0.0) * e.dram;
  // On-chip intermediates still need their BPTT copies saved off-chip
  // (the training-memory cost of storing analog sub-conv activations).
  if (!in_offchip) r.dram_pj += 2.0 * p.in_grad_bytes() * steps * e.dram;
  // Scratch-pad traffic scales with the op count.
  r.sram_pj += (fwd_ops + bwd_input_ops) * 2.0 * e.spad;

  // ---- latency: compute-bound on the single engine (fwd + bwd).
  const double total_ops = fwd_ops + bwd_input_ops + bwd_weight_ops;
  r.cycles += static_cast<int64_t>(
      std::ceil(total_ops / static_cast<double>(cfg.pes)));
}

/// LIF array + membrane-potential handling for one block's output neurons.
/// Membrane potentials are 16-bit and stay in the on-chip MemP buffer; the
/// backward pass recomputes them from the stored spike maps [3].
void simulate_lif(const LayerWork& last_part, int64_t t_steps,
                  const SataConfig& cfg, EnergyReport& r) {
  const EnergyModel& e = cfg.energy;
  const double neurons =
      static_cast<double>(last_part.out_elems) * static_cast<double>(t_steps);
  r.lif_pj += 2.0 * neurons * e.lif_update;  // forward + surrogate backward
  const double mem_bytes = neurons * static_cast<double>(cfg.membrane_bytes);
  r.sram_pj += 2.0 * mem_bytes * e.sram_small;
}

}  // namespace

EnergyReport simulate_sata(const HwWorkload& workload, const SataConfig& cfg) {
  EnergyReport r;
  for (const HwBlock& block : workload.blocks) {
    for (const LayerWork& p : block.parts) {
      simulate_part(p, workload.timesteps, cfg, r);
    }
    if (block.kind == HwBlock::Kind::kTT && block.parallel_strips) {
      // Layer-sequential mapping cannot co-execute the strips: the first
      // strip's (analog) output goes to DRAM and is re-fetched for the merge
      // before the last sub-convolution (Sec. V-B); the same spill happens
      // in the backward pass when the two branch gradients are merged into
      // the o1 gradient, and o1 itself is re-fetched for the second branch.
      // Full steps only (HTT).
      const double full_steps = static_cast<double>(workload.timesteps) *
                                block.strip_utilization;
      const double strip_bytes =
          static_cast<double>(block.parts[1].out_elems) * full_steps;
      const double o1_bytes =
          static_cast<double>(block.parts[0].out_elems) * full_steps;
      const double round_trip = 4.0 * strip_bytes + o1_bytes;
      r.dram_pj += round_trip * cfg.energy.dram;
      r.sram_pj += round_trip * cfg.energy.sram_small;
    }
    if (block.followed_by_lif) {
      simulate_lif(block.parts.back(), workload.timesteps, cfg, r);
    }
  }
  r.leakage_pj +=
      static_cast<double>(r.cycles) * cfg.energy.leakage_per_cycle;
  return r;
}

}  // namespace ttsnn
