#pragma once

/// \file sata_baseline.h
/// Simulator of the EXISTING single-engine SNN training accelerator ([3],
/// SATA-style) used for Fig. 4(a). One 128-PE compute engine executes layers
/// strictly one at a time (all timesteps per layer before moving on [25]),
/// with sparsity-aware accumulate-only arithmetic for spike inputs and a
/// DRAM spill/refetch of inter-layer activations.
///
/// Key modeled behaviour from the paper: with layer-sequential mapping the
/// PTT branches cannot run concurrently, and the engine must push the first
/// strip's output to DRAM and re-fetch it to merge with the second strip —
/// the mechanism behind PTT's energy overhead on prior accelerators.

#include "hw/energy_model.h"
#include "hw/workload.h"

namespace ttsnn {

struct SataConfig {
  int64_t pes = 128;
  EnergyModel energy;
  int64_t membrane_bytes = 2;  ///< 16-bit membrane potentials
};

/// Simulates the forward + BPTT-backward training pass of one image across
/// all timesteps (the paper's energy metric).
EnergyReport simulate_sata(const HwWorkload& workload,
                           const SataConfig& cfg = {});

}  // namespace ttsnn
