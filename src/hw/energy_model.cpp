#include "hw/energy_model.h"

// The energy model is a plain constants struct; this translation unit exists
// so the target has a home for future calibration tables.

namespace ttsnn {}  // namespace ttsnn
