#pragma once

/// \file energy_model.h
/// 28 nm per-operation energy and timing constants for the accelerator
/// simulators (Sec. IV). The paper synthesizes at 400 MHz in 28 nm CMOS and
/// uses CACTI for SRAM/DRAM; we use first-order constants in the style of
/// Horowitz (ISSCC'14) scaled to 28 nm, in the same spirit as SATASim [3].
/// Absolute pJ values are CALIBRATION CONSTANTS — the reproduced quantity is
/// the energy *ratio* between mapping strategies (Fig. 4), which depends on
/// op counts and traffic, not on the absolute scale.

#include <cstdint>

namespace ttsnn {

struct EnergyModel {
  // ---- arithmetic (pJ per op) ----------------------------------------------
  double add_16b = 0.05;   ///< accumulator update (spike input: AC only)
  double mac_8b = 0.25;    ///< 8-bit multiply + 16-bit accumulate
  double lif_update = 0.3; ///< leak multiply + compare + conditional reset

  // ---- memory (pJ per byte) ------------------------------------------------
  double spad = 0.03;        ///< register-file scratch pad
  double sram_small = 0.45;  ///< 32 KB global buffers
  double sram_large = 0.95;  ///< 144 KB filter buffer
  double dram = 20.0;        ///< off-chip DRAM

  // ---- static power --------------------------------------------------------
  /// Leakage energy per cycle for the whole 128-PE chip (pJ/cycle). Converts
  /// latency differences into energy differences.
  double leakage_per_cycle = 15.0;

  // ---- timing --------------------------------------------------------------
  double clock_ghz = 0.4;  ///< 400 MHz

  /// Energy of one synaptic operation given the input representation:
  /// binary spikes need only an accumulate; analog values need a full MAC.
  double synop(bool spike_input) const {
    return spike_input ? add_16b : mac_8b;
  }
};

/// Energy/latency totals of one simulated training pass (one image, all
/// timesteps, forward + backward), in pJ and cycles.
struct EnergyReport {
  double compute_pj = 0.0;  ///< MACs / ACs / adder arrays
  double lif_pj = 0.0;      ///< LIF unit updates (incl. membrane traffic)
  double sram_pj = 0.0;     ///< global buffer traffic
  double dram_pj = 0.0;     ///< off-chip traffic
  double leakage_pj = 0.0;  ///< static energy over the run
  int64_t cycles = 0;

  double total_pj() const {
    return compute_pj + lif_pj + sram_pj + dram_pj + leakage_pj;
  }
  double total_nj() const { return total_pj() / 1e3; }
  double milliseconds(double clock_ghz) const {
    return static_cast<double>(cycles) / (clock_ghz * 1e6);
  }
};

}  // namespace ttsnn
