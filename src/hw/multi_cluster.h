#pragma once

/// \file multi_cluster.h
/// Simulator of the PROPOSED multi-cluster systolic-array training
/// accelerator (Sec. IV, Fig. 3) used for Fig. 4(b): four 32-PE clusters,
/// spike-simplified PEs (no multipliers) in cluster 1, weight-stationary
/// clusters 2/3 running the two strips in parallel, an adder array merging
/// their outputs, output-stationary cluster 4, and an LIF array — all run in
/// a pipelined fashion so intermediate sub-convolution results are consumed
/// instantly instead of bouncing through the global buffers / DRAM.
///
/// Mapping by mode:
///  - PTT / HTT full steps: the pipelined 4-cluster mapping above.
///  - HTT half steps: clusters 1 and 4 only (w1 -> w4), strips idle.
///  - STT: sub-convolutions run sequentially using the whole 128-PE fabric,
///    with each intermediate written to and re-read from the global buffer
///    (no pipelining is possible across a serial chain).
///  - Dense layers: whole fabric as one engine (same as the baseline).

#include <string>

#include "hw/energy_model.h"
#include "hw/workload.h"

namespace ttsnn {

struct MultiClusterConfig {
  // Table I: Hardware Implementation Parameters.
  int64_t clusters = 4;
  int64_t pes_per_cluster = 32;
  int64_t spad_bytes_per_pe = 32;
  int64_t filter_buffer_kb = 144;     // Fig. 3 buffer labels
  int64_t input_spike_buffer_kb = 32;
  int64_t output_buffer_kb = 32;
  int64_t membrane_buffer_kb = 32;
  int64_t output_spike_buffer_kb = 32;
  int64_t accumulator_bits = 16;
  int64_t multiplier_bits = 8;
  std::string technology = "28nm CMOS";

  EnergyModel energy;
  int64_t membrane_bytes = 2;

  int64_t total_pes() const { return clusters * pes_per_cluster; }
  /// Table I "Total Global Buffer Size": 272 KB.
  int64_t total_global_buffer_kb() const {
    return filter_buffer_kb + input_spike_buffer_kb + output_buffer_kb +
           membrane_buffer_kb + output_spike_buffer_kb;
  }
};

/// Simulates the forward + BPTT-backward training pass of one image across
/// all timesteps on the proposed accelerator.
EnergyReport simulate_multi_cluster(const HwWorkload& workload,
                                    const MultiClusterConfig& cfg = {});

}  // namespace ttsnn
