#include "hw/workload.h"

namespace ttsnn {

namespace {

LayerWork make_work(const LayerDesc& d, const WorkloadOptions& opts,
                    bool last_in_block, bool followed_by_lif) {
  LayerWork w;
  w.name = d.detail.empty() ? d.kind : d.detail;
  w.macs = d.macs;
  w.utilization = d.utilization;
  w.spike_input = d.spike_input;
  w.input_density = d.spike_input ? opts.spike_density : 1.0;
  w.weight_bytes = d.params;  // 8-bit quantized weights
  w.in_elems = d.in_c * std::max<int64_t>(d.in_h, 1) * std::max<int64_t>(d.in_w, 1);
  w.out_elems =
      d.out_c * std::max<int64_t>(d.out_h, 1) * std::max<int64_t>(d.out_w, 1);
  w.in_bits = d.spike_input ? 1.0 : 8.0;
  // The block's final output passes through the LIF array and is stored as a
  // packed spike map; intermediates are analog.
  w.out_bits = (last_in_block && followed_by_lif) ? 1.0 : 8.0;
  return w;
}

}  // namespace

HwWorkload build_workload(const std::string& name, const ModelStats& stats,
                          const WorkloadOptions& opts) {
  HwWorkload wl;
  wl.name = name;
  wl.timesteps = opts.timesteps;

  for (size_t i = 0; i < stats.layers.size(); ++i) {
    const LayerDesc& d = stats.layers[i];
    if (d.kind == "conv" || d.kind == "linear") {
      HwBlock block;
      block.kind = HwBlock::Kind::kDense;
      // The classifier head produces analog logits (no LIF after it).
      block.followed_by_lif = d.kind != "linear";
      block.parts.push_back(
          make_work(d, opts, /*last_in_block=*/true, block.followed_by_lif));
      wl.blocks.push_back(std::move(block));
    } else if (d.kind == "ttconv") {
      // Consume the four consecutive sub-conv descriptors.
      TTSNN_CHECK(i + 3 < stats.layers.size() &&
                      stats.layers[i + 3].kind == "ttconv",
                  "truncated ttconv descriptor group");
      HwBlock block;
      block.kind = HwBlock::Kind::kTT;
      for (size_t j = 0; j < 4; ++j) {
        LayerWork w = make_work(stats.layers[i + j], opts,
                                /*last_in_block=*/j == 3,
                                /*followed_by_lif=*/true);
        w.boundary_input = j == 0;
        w.boundary_output = j == 3;
        block.parts.push_back(std::move(w));
      }
      block.strip_utilization = stats.layers[i + 1].utilization;
      block.parallel_strips = opts.parallel_strips;
      wl.blocks.push_back(std::move(block));
      i += 3;
    }
    // bn / lif / pool are folded into the block-level LIF and buffer costs.
  }
  return wl;
}

}  // namespace ttsnn
