#pragma once

/// \file workload.h
/// Hardware workload extraction: converts a model's LayerDesc list (from
/// analyze_model) into per-layer op/traffic counts the accelerator
/// simulators consume. A "block" is either one dense convolution / linear
/// layer or one TT-decomposed layer with its four sub-convolutions.
///
/// Stream widths follow the SNN-accelerator convention [3]: LIF outputs are
/// binary spike maps stored packed (1 bit/element); TT intermediates and all
/// gradient maps are 8-bit analog values; membrane potentials are 16-bit and
/// stay on chip.

#include <string>
#include <vector>

#include "core/flops.h"

namespace ttsnn {

/// One compute part (a dense layer or one TT sub-convolution).
struct LayerWork {
  std::string name;
  int64_t macs = 0;          ///< per sample, per timestep (before utilization)
  double utilization = 1.0;  ///< fraction of timesteps this part executes
  bool spike_input = false;  ///< binary input -> accumulate-only arithmetic
  double input_density = 1.0;  ///< fraction of non-zero inputs (spikes)
  int64_t weight_bytes = 0;
  int64_t in_elems = 0;   ///< input activation elements per timestep
  int64_t out_elems = 0;  ///< output activation elements per timestep
  double in_bits = 8.0;   ///< stream width of the input activations
  double out_bits = 8.0;  ///< stream width of the output activations
  /// Whether the input/output tensors cross the layer (block) boundary.
  /// Chained TT intermediates stay within the block's buffer working set.
  bool boundary_input = true;
  bool boundary_output = true;

  double in_bytes() const { return static_cast<double>(in_elems) * in_bits / 8.0; }
  double out_bytes() const { return static_cast<double>(out_elems) * out_bits / 8.0; }
  /// Gradient maps are always analog (8-bit).
  double in_grad_bytes() const { return static_cast<double>(in_elems); }
  double out_grad_bytes() const { return static_cast<double>(out_elems); }
};

struct HwBlock {
  enum class Kind { kDense, kTT };
  Kind kind = Kind::kDense;
  /// 1 part for dense, 4 parts (w1, w2, w3, w4) for TT.
  std::vector<LayerWork> parts;
  /// Fraction of timesteps running the strip branches (HTT < 1).
  double strip_utilization = 1.0;
  /// True when the strips execute in parallel (PTT/HTT full steps).
  bool parallel_strips = false;
  bool followed_by_lif = true;
};

struct HwWorkload {
  std::string name;
  std::vector<HwBlock> blocks;
  int64_t timesteps = 4;
};

struct WorkloadOptions {
  int64_t timesteps = 4;
  /// Mean spike density of LIF outputs feeding spike-input layers. The
  /// paper's SATA baseline exploits this sparsity; 0.15 is a representative
  /// trained-SNN value.
  double spike_density = 0.15;
  bool parallel_strips = true;  ///< strips parallel (PTT/HTT) vs chained (STT)
};

/// Builds the workload from analyzed layer descriptors.
HwWorkload build_workload(const std::string& name, const ModelStats& stats,
                          const WorkloadOptions& opts);

}  // namespace ttsnn
