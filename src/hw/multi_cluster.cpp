#include "hw/multi_cluster.h"

#include <algorithm>
#include <cmath>

namespace ttsnn {

namespace {

/// Op counts of one part over the run (forward; backward input/weight).
struct PartOps {
  double fwd = 0.0;
  double bwd_input = 0.0;
  double bwd_weight = 0.0;
  double total() const { return fwd + bwd_input + bwd_weight; }
};

PartOps part_ops(const LayerWork& p, int64_t t_steps) {
  const double steps = static_cast<double>(t_steps) * p.utilization;
  PartOps ops;
  ops.fwd = static_cast<double>(p.macs) * steps * p.input_density;
  ops.bwd_input = static_cast<double>(p.macs) * steps;
  ops.bwd_weight = static_cast<double>(p.macs) * steps * p.input_density;
  return ops;
}

/// Arithmetic + weight-traffic + scratch-pad costs shared by every mapping.
void charge_compute_and_weights(const LayerWork& p, int64_t t_steps,
                                const EnergyModel& e, EnergyReport& r) {
  const PartOps ops = part_ops(p, t_steps);
  r.compute_pj += ops.fwd * e.synop(p.spike_input);
  r.compute_pj += (ops.bwd_input + ops.bwd_weight) * e.mac_8b;
  const double wbytes = static_cast<double>(p.weight_bytes);
  r.dram_pj += 3.0 * wbytes * e.dram;
  r.sram_pj += 3.0 * wbytes * e.sram_large;
  r.sram_pj += (ops.fwd + ops.bwd_input) * 2.0 * e.spad;
}

/// DRAM + SRAM cost of a stream that crosses the chip boundary.
void charge_offchip(double bytes, const EnergyModel& e, EnergyReport& r) {
  r.dram_pj += bytes * e.dram;
  r.sram_pj += bytes * e.sram_small;
}

void charge_lif(const LayerWork& last_part, int64_t t_steps,
                const MultiClusterConfig& cfg, EnergyReport& r) {
  const EnergyModel& e = cfg.energy;
  const double neurons =
      static_cast<double>(last_part.out_elems) * static_cast<double>(t_steps);
  r.lif_pj += 2.0 * neurons * e.lif_update;  // forward + surrogate backward
  const double mem_bytes = neurons * static_cast<double>(cfg.membrane_bytes);
  r.sram_pj += 2.0 * mem_bytes * e.sram_small;
}

}  // namespace

EnergyReport simulate_multi_cluster(const HwWorkload& workload,
                                    const MultiClusterConfig& cfg) {
  const EnergyModel& e = cfg.energy;
  const double cluster_pes = static_cast<double>(cfg.pes_per_cluster);
  const double all_pes = static_cast<double>(cfg.total_pes());
  EnergyReport r;

  for (const HwBlock& block : workload.blocks) {
    const int64_t t = workload.timesteps;

    if (block.kind == HwBlock::Kind::kDense) {
      // Dense layers run like on the baseline engine, ganging all clusters.
      const LayerWork& p = block.parts[0];
      charge_compute_and_weights(p, t, e, r);
      const double steps = static_cast<double>(t) * p.utilization;
      charge_offchip((2.0 * p.in_bytes() + p.out_bytes()) * steps, e, r);
      charge_offchip((p.in_grad_bytes() + p.out_grad_bytes()) * steps, e, r);
      r.cycles += static_cast<int64_t>(std::ceil(part_ops(p, t).total() / all_pes));
      if (block.followed_by_lif) charge_lif(p, t, cfg, r);
      continue;
    }

    // ---- TT block: w1, w2, w3, w4 ------------------------------------------
    const LayerWork& w1 = block.parts[0];
    const LayerWork& w2 = block.parts[1];
    const LayerWork& w3 = block.parts[2];
    const LayerWork& w4 = block.parts[3];
    for (const LayerWork& p : block.parts) charge_compute_and_weights(p, t, e, r);

    const double steps = static_cast<double>(t);
    const double strip_steps = steps * block.strip_utilization;
    // Block boundary streams: spike input (read twice: forward + BPTT
    // backward), spike output, and the analog gradient maps.
    charge_offchip(2.0 * w1.in_bytes() * steps + w4.out_bytes() * steps, e, r);
    charge_offchip((w1.in_grad_bytes() + w4.out_grad_bytes()) * steps, e, r);
    // BPTT saves of the analog intermediates (o1, merged strips): the
    // training-memory cost of decomposition, paid by every mapping.
    const double o1_b = static_cast<double>(w1.out_elems) * steps;
    const double strip_b = static_cast<double>(w2.out_elems) * strip_steps;
    charge_offchip(2.0 * (o1_b + strip_b), e, r);

    const PartOps o1 = part_ops(w1, t);
    const PartOps s2 = part_ops(w2, t);
    const PartOps s3 = part_ops(w3, t);
    const PartOps o4 = part_ops(w4, t);

    if (block.parallel_strips) {
      // Pipelined mapping (Fig. 3): o1 written once to the output buffer and
      // read by both strip clusters; strip outputs merge in the adder array
      // and stream straight into cluster 4 — no further global-buffer hops.
      r.sram_pj += 3.0 * o1_b * e.sram_small;
      r.compute_pj += strip_b * e.add_16b;      // adder array merge
      r.sram_pj += 4.0 * strip_b * e.spad;      // branch regs + merge regs
      // Latency: the pipeline's steady state is bounded by its slowest
      // cluster (strips concurrent), forward and backward alike.
      const double fwd_stage = std::max({o1.fwd, s2.fwd, s3.fwd, o4.fwd});
      const double bwd_stage =
          std::max({o1.bwd_input + o1.bwd_weight, s2.bwd_input + s2.bwd_weight,
                    s3.bwd_input + s3.bwd_weight, o4.bwd_input + o4.bwd_weight});
      r.cycles +=
          static_cast<int64_t>(std::ceil((fwd_stage + bwd_stage) / cluster_pes));
    } else {
      // STT mapping: the chain is serial, so each sub-convolution runs alone
      // on its (specialized) cluster while the other three idle, and every
      // intermediate bounces through the global buffer in both directions.
      const double z2_b = static_cast<double>(w2.out_elems) * strip_steps;
      const double z3_b = static_cast<double>(w3.out_elems) * strip_steps;
      r.sram_pj += 2.0 * 2.0 * (o1_b + z2_b + z3_b) * e.sram_small;
      r.cycles += static_cast<int64_t>(
          std::ceil((o1.total() + s2.total() + s3.total() + o4.total()) /
                    cluster_pes));
    }

    if (block.followed_by_lif) charge_lif(w4, t, cfg, r);
  }

  r.leakage_pj += static_cast<double>(r.cycles) * e.leakage_per_cycle;
  return r;
}

}  // namespace ttsnn
