#include "nn/batchnorm.h"

#include <cmath>

#include "tensor/simd.h"

namespace ttsnn {

namespace {

/// Group extent in timesteps: per-step BN normalizes each timestep alone,
/// tdBN/TEBN normalize jointly across the sequence.
bool joint_stats(BatchNorm::Mode mode) {
  return mode != BatchNorm::Mode::kPerStep;
}

}  // namespace

BatchNorm::BatchNorm(Options opts) : opts_(opts) {
  TTSNN_CHECK(opts_.channels > 0, "BatchNorm channels must be positive");
  if (opts_.mode == Mode::kTebn) {
    TTSNN_CHECK(opts_.timesteps > 0, "TEBN requires timesteps in options");
    step_scale_ = Parameter("bn.step_scale", Tensor::ones({opts_.timesteps}),
                            /*apply_decay=*/false);
  }
  gamma_ = Parameter("bn.gamma", Tensor::ones({opts_.channels}),
                     /*apply_decay=*/false);
  beta_ = Parameter("bn.beta", Tensor::zeros({opts_.channels}),
                    /*apply_decay=*/false);
  running_mean_ = Tensor::zeros({opts_.channels});
  running_var_ = Tensor::ones({opts_.channels});
}

Tensor BatchNorm::forward(const Tensor& x) {
  TTSNN_CHECK(x.dim() == 5, "BatchNorm expects [T, N, C, H, W], got "
                                << shape_str(x.shape()));
  const int64_t t_steps = x.size(0);
  const int64_t n = x.size(1);
  const int64_t c = x.size(2);
  const int64_t hw = x.size(3) * x.size(4);
  TTSNN_CHECK(c == opts_.channels, "BatchNorm channel mismatch: " << c);
  if (opts_.mode == Mode::kTebn) {
    TTSNN_CHECK(t_steps == opts_.timesteps,
                "TEBN configured for T=" << opts_.timesteps << ", got " << t_steps);
  }

  const int64_t groups = joint_stats(opts_.mode) ? 1 : t_steps;
  const int64_t group_t = t_steps / groups;

  // Backward needs the normalized input; eval-mode forwards skip the cache
  // entirely (and drop any cache left over from a previous training step).
  const bool cache = training_;
  cached_t_ = t_steps;
  cached_n_ = n;
  cached_hw_ = hw;
  cached_xhat_ = cache ? Tensor::empty(x.shape()) : Tensor();
  if (cache) {
    cached_inv_std_.assign(static_cast<size_t>(groups * c), 0.0F);
  } else {
    cached_inv_std_.clear();
  }

  Tensor out = Tensor::empty(x.shape());
  const float* in = x.data();
  float* xhat = cache ? cached_xhat_.data() : nullptr;
  float* y = out.data();
  const float* g_gamma = gamma_.value.data();
  const float* g_beta = beta_.value.data();

  for (int64_t grp = 0; grp < groups; ++grp) {
    const int64_t t0 = grp * group_t;
    const int64_t t1 = t0 + group_t;
    const double count = static_cast<double>(group_t * n * hw);
    for (int64_t ch = 0; ch < c; ++ch) {
      double mean, var;
      if (training_) {
        double s1 = 0.0, s2 = 0.0;
        for (int64_t t = t0; t < t1; ++t) {
          for (int64_t b = 0; b < n; ++b) {
            const float* p = in + (((t * n + b) * c) + ch) * hw;
            for (int64_t i = 0; i < hw; ++i) {
              s1 += p[i];
              s2 += static_cast<double>(p[i]) * p[i];
            }
          }
        }
        mean = s1 / count;
        var = std::max(0.0, s2 / count - mean * mean);
        // EMA of running statistics for eval mode.
        const float m = opts_.momentum;
        running_mean_[ch] = (1.0F - m) * running_mean_[ch] +
                            m * static_cast<float>(mean);
        running_var_[ch] =
            (1.0F - m) * running_var_[ch] + m * static_cast<float>(var);
      } else {
        mean = running_mean_[ch];
        var = running_var_[ch];
      }
      const float inv_std = 1.0F / std::sqrt(static_cast<float>(var) + opts_.eps);
      if (cache) cached_inv_std_[static_cast<size_t>(grp * c + ch)] = inv_std;
      const float mu = static_cast<float>(mean);
      for (int64_t t = t0; t < t1; ++t) {
        const float step = opts_.mode == Mode::kTebn ? step_scale_.value[t] : 1.0F;
        const float eff = g_gamma[ch] * opts_.alpha_vth * step;
        const float* p = in + (((t * n) * c) + ch) * hw;
        float* yo = y + (((t * n) * c) + ch) * hw;
        for (int64_t b = 0; b < n; ++b) {
          const float* pb = p + b * c * hw;
          float* yb = yo + b * c * hw;
          if (cache) {
            float* xb = xhat + (((t * n) * c) + ch) * hw + b * c * hw;
            for (int64_t i = 0; i < hw; ++i) {
              const float v = (pb[i] - mu) * inv_std;
              xb[i] = v;
              yb[i] = eff * v + g_beta[ch];
            }
          } else {
            // Eval path: plain affine — same expression, vectorized.
            simd::affine(hw, mu, inv_std, eff, g_beta[ch], pb, yb);
          }
        }
      }
    }
  }
  return out;
}

Tensor BatchNorm::backward(const Tensor& grad_out) {
  TTSNN_CHECK(cached_xhat_.defined(), "BatchNorm::backward before forward");
  TTSNN_CHECK(grad_out.same_shape(cached_xhat_), "BatchNorm grad shape mismatch");
  const int64_t t_steps = cached_t_;
  const int64_t n = cached_n_;
  const int64_t c = opts_.channels;
  const int64_t hw = cached_hw_;
  const int64_t groups = joint_stats(opts_.mode) ? 1 : t_steps;
  const int64_t group_t = t_steps / groups;

  Tensor grad_in = Tensor::empty(cached_xhat_.shape());
  const float* g = grad_out.data();
  const float* xhat = cached_xhat_.data();
  float* gx = grad_in.data();
  const float* g_gamma = gamma_.value.data();
  float* d_gamma = gamma_.grad.data();
  float* d_beta = beta_.grad.data();

  for (int64_t grp = 0; grp < groups; ++grp) {
    const int64_t t0 = grp * group_t;
    const int64_t t1 = t0 + group_t;
    const double count = static_cast<double>(group_t * n * hw);
    for (int64_t ch = 0; ch < c; ++ch) {
      const float inv_std = cached_inv_std_[static_cast<size_t>(grp * c + ch)];
      // First pass: reductions. dxhat depends on the per-timestep effective
      // scale, so fold it in while reducing.
      double sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
      double dgamma_acc = 0.0, dbeta_acc = 0.0;
      for (int64_t t = t0; t < t1; ++t) {
        const float step = opts_.mode == Mode::kTebn ? step_scale_.value[t] : 1.0F;
        const float eff = g_gamma[ch] * opts_.alpha_vth * step;
        double dstep_acc = 0.0;
        for (int64_t b = 0; b < n; ++b) {
          const int64_t base = (((t * n + b) * c) + ch) * hw;
          const float* gb = g + base;
          const float* xb = xhat + base;
          for (int64_t i = 0; i < hw; ++i) {
            const double gd = gb[i];
            const double xd = xb[i];
            dbeta_acc += gd;
            dgamma_acc += gd * xd * opts_.alpha_vth * step;
            const double dxh = gd * eff;
            sum_dxhat += dxh;
            sum_dxhat_xhat += dxh * xd;
            dstep_acc += gd * xd * opts_.alpha_vth * g_gamma[ch];
          }
        }
        if (opts_.mode == Mode::kTebn && training_) {
          step_scale_.grad[t] += static_cast<float>(dstep_acc);
        }
      }
      d_gamma[ch] += static_cast<float>(dgamma_acc);
      d_beta[ch] += static_cast<float>(dbeta_acc);

      // Second pass: input gradients. In eval mode statistics are constants,
      // so dx = dxhat * inv_std directly.
      for (int64_t t = t0; t < t1; ++t) {
        const float step = opts_.mode == Mode::kTebn ? step_scale_.value[t] : 1.0F;
        const float eff = g_gamma[ch] * opts_.alpha_vth * step;
        for (int64_t b = 0; b < n; ++b) {
          const int64_t base = (((t * n + b) * c) + ch) * hw;
          const float* gb = g + base;
          const float* xb = xhat + base;
          float* gxb = gx + base;
          for (int64_t i = 0; i < hw; ++i) {
            const double dxh = static_cast<double>(gb[i]) * eff;
            if (training_) {
              gxb[i] = static_cast<float>(
                  inv_std * (dxh - sum_dxhat / count -
                             static_cast<double>(xb[i]) * sum_dxhat_xhat / count));
            } else {
              gxb[i] = static_cast<float>(inv_std * dxh);
            }
          }
        }
      }
    }
  }
  return grad_in;
}

void BatchNorm::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
  if (opts_.mode == Mode::kTebn) out.push_back(&step_scale_);
}

void BatchNorm::collect_buffers(std::vector<BufferRef>& out) {
  out.push_back({"bn.running_mean", &running_mean_});
  out.push_back({"bn.running_var", &running_var_});
}

void BatchNorm::describe(ShapeState& s, std::vector<LayerDesc>& out) const {
  LayerDesc d;
  d.kind = "bn";
  d.in_c = s.c;
  d.out_c = s.c;
  d.in_h = s.h;
  d.in_w = s.w;
  d.out_h = s.h;
  d.out_w = s.w;
  d.params = 2 * opts_.channels +
             (opts_.mode == Mode::kTebn ? opts_.timesteps : 0);
  d.macs = s.c * s.h * s.w;  // scale + shift per element
  out.push_back(d);
}

void BatchNorm::clear_cache() {
  cached_xhat_ = Tensor();
  cached_inv_std_.clear();
}

}  // namespace ttsnn
