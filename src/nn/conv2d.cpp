#include "nn/conv2d.h"

#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/random.h"

namespace ttsnn {

namespace {

/// Folds all leading dims of x ([..., C, H, W]) into a batch extent.
int64_t folded_batch(const Tensor& x, int64_t c, const char* who) {
  TTSNN_CHECK(x.dim() >= 3, who << ": input must be at least [C, H, W], got "
                                << shape_str(x.shape()));
  TTSNN_CHECK(x.size(-3) == c, who << ": channel mismatch, expected " << c
                                   << " in " << shape_str(x.shape()));
  const int64_t chw = x.size(-3) * x.size(-2) * x.size(-1);
  return x.numel() / chw;
}

Shape output_shape(const Tensor& x, int64_t out_c, int64_t oh, int64_t ow) {
  Shape s = x.shape();
  s[s.size() - 3] = out_c;
  s[s.size() - 2] = oh;
  s[s.size() - 1] = ow;
  return s;
}

}  // namespace

Conv2d::Conv2d(Options opts, Rng& rng) : opts_(opts) {
  TTSNN_CHECK(opts_.in_channels > 0 && opts_.out_channels > 0,
              "Conv2d channels must be positive");
  const int64_t fan_in = opts_.in_channels * opts_.kernel_h * opts_.kernel_w;
  weight_ = Parameter(
      "conv.weight",
      kaiming_normal({opts_.out_channels, opts_.in_channels, opts_.kernel_h,
                      opts_.kernel_w},
                     fan_in, rng));
  if (opts_.bias) {
    bias_ = Parameter("conv.bias", Tensor::zeros({opts_.out_channels}));
  }
}

Conv2d::Conv2d(Options opts, Tensor weight) : opts_(opts) {
  TTSNN_CHECK(weight.shape() == (Shape{opts_.out_channels, opts_.in_channels,
                                       opts_.kernel_h, opts_.kernel_w}),
              "Conv2d explicit weight shape " << shape_str(weight.shape())
                                              << " does not match options");
  weight_ = Parameter("conv.weight", std::move(weight));
  if (opts_.bias) {
    bias_ = Parameter("conv.bias", Tensor::zeros({opts_.out_channels}));
  }
}

ConvGeometry Conv2d::geometry(int64_t in_h, int64_t in_w) const {
  return ConvGeometry{.in_channels = opts_.in_channels,
                      .in_h = in_h,
                      .in_w = in_w,
                      .kernel_h = opts_.kernel_h,
                      .kernel_w = opts_.kernel_w,
                      .stride_h = opts_.resolved_stride_h(),
                      .stride_w = opts_.resolved_stride_w(),
                      .pad_h = opts_.resolved_pad_h(),
                      .pad_w = opts_.resolved_pad_w()};
}

Tensor conv2d_forward(const Tensor& x, const Tensor& weight,
                      const Conv2d::Options& opts) {
  const int64_t batch = folded_batch(x, opts.in_channels, "conv2d_forward");
  ConvGeometry g{.in_channels = opts.in_channels,
                 .in_h = x.size(-2),
                 .in_w = x.size(-1),
                 .kernel_h = opts.kernel_h,
                 .kernel_w = opts.kernel_w,
                 .stride_h = opts.resolved_stride_h(),
                 .stride_w = opts.resolved_stride_w(),
                 .pad_h = opts.resolved_pad_h(),
                 .pad_w = opts.resolved_pad_w()};
  const int64_t oh = g.out_h();
  const int64_t ow = g.out_w();
  TTSNN_CHECK(oh > 0 && ow > 0, "conv2d output would be empty for input "
                                    << shape_str(x.shape()));
  // Both buffers are fully overwritten (im2col writes every column entry,
  // the gemm runs with beta = 0), so skip the zero-fill.
  Tensor out = Tensor::empty(output_shape(x, opts.out_channels, oh, ow));
  // Pointwise stride-1 convolutions — the TT w1/w4 cores, half the factorized
  // pipeline — skip the im2col lowering: the column matrix would be an
  // identity copy of the input plane, so gemm reads the plane in place. The
  // gemm call is argument-for-argument identical, keeping bit-identity (the
  // inference engine applies the same skip).
  const bool pointwise = g.pointwise();
  Tensor col =
      pointwise ? Tensor() : Tensor::empty({g.col_rows(), g.col_cols()});
  const int64_t in_stride = opts.in_channels * g.in_h * g.in_w;
  const int64_t out_stride = opts.out_channels * oh * ow;
  for (int64_t b = 0; b < batch; ++b) {
    const float* lowered;
    if (pointwise) {
      lowered = x.data() + b * in_stride;
    } else {
      im2col(x.data() + b * in_stride, g, col.data());
      lowered = col.data();
    }
    // out_b [O, oh*ow] = W [O, C*kh*kw] * col
    gemm(false, false, opts.out_channels, g.col_cols(), g.col_rows(), 1.0F,
         weight.data(), lowered, 0.0F, out.data() + b * out_stride);
  }
  return out;
}

Tensor conv2d_backward(const Tensor& x, const Tensor& weight,
                       const Conv2d::Options& opts, const Tensor& grad_out,
                       Tensor& weight_grad) {
  const int64_t batch = folded_batch(x, opts.in_channels, "conv2d_backward");
  ConvGeometry g{.in_channels = opts.in_channels,
                 .in_h = x.size(-2),
                 .in_w = x.size(-1),
                 .kernel_h = opts.kernel_h,
                 .kernel_w = opts.kernel_w,
                 .stride_h = opts.resolved_stride_h(),
                 .stride_w = opts.resolved_stride_w(),
                 .pad_h = opts.resolved_pad_h(),
                 .pad_w = opts.resolved_pad_w()};
  const int64_t oh = g.out_h();
  const int64_t ow = g.out_w();
  TTSNN_CHECK(grad_out.size(-3) == opts.out_channels &&
                  grad_out.size(-2) == oh && grad_out.size(-1) == ow,
              "conv2d_backward grad shape " << shape_str(grad_out.shape())
                                            << " mismatch");
  Tensor grad_in(x.shape());  // zero-filled: col2im accumulates into it
  // Pointwise stride-1 case: im2col is an identity copy and col2im an
  // identity accumulate, so dW reads the input plane in place and dcol is
  // written straight into the (zeroed) grad_in plane with beta=1 — the same
  // products accumulate in the same order, so the bits match the lowered
  // path.
  const bool pointwise = g.pointwise();
  Tensor col =
      pointwise ? Tensor() : Tensor::empty({g.col_rows(), g.col_cols()});
  Tensor dcol =
      pointwise ? Tensor() : Tensor::empty({g.col_rows(), g.col_cols()});
  const int64_t in_stride = opts.in_channels * g.in_h * g.in_w;
  const int64_t out_stride = opts.out_channels * oh * ow;
  for (int64_t b = 0; b < batch; ++b) {
    const float* gout = grad_out.data() + b * out_stride;
    const float* lowered;
    if (pointwise) {
      lowered = x.data() + b * in_stride;
    } else {
      im2col(x.data() + b * in_stride, g, col.data());
      lowered = col.data();
    }
    // dW += g_b [O, ohw] * col^T  -> [O, C*kh*kw]
    gemm(false, true, opts.out_channels, g.col_rows(), g.col_cols(), 1.0F,
         gout, lowered, 1.0F, weight_grad.data());
    // dcol = W^T [Ckk, O] * g_b [O, ohw]
    if (pointwise) {
      gemm(true, false, g.col_rows(), g.col_cols(), opts.out_channels, 1.0F,
           weight.data(), gout, 1.0F, grad_in.data() + b * in_stride);
    } else {
      gemm(true, false, g.col_rows(), g.col_cols(), opts.out_channels, 1.0F,
           weight.data(), gout, 0.0F, dcol.data());
      col2im(dcol.data(), g, grad_in.data() + b * in_stride);
    }
  }
  return grad_in;
}

Tensor Conv2d::forward(const Tensor& x) {
  // Only the backward pass consumes the cached input; eval-mode forwards
  // (and any stale cache from a previous training step) keep nothing alive.
  cached_input_ = training_ ? x : Tensor();
  Tensor out = conv2d_forward(x, weight_.value, opts_);
  if (opts_.bias) {
    // Bias broadcasts over the folded batch; reuse the NCHW helper by viewing
    // output as [B, O, oh, ow].
    const int64_t b = out.numel() / (out.size(-3) * out.size(-2) * out.size(-1));
    Tensor flat = out.reshape({b, out.size(-3), out.size(-2), out.size(-1)});
    out = add_channel_bias(flat, bias_.value).reshape(out.shape());
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  TTSNN_CHECK(cached_input_.defined(), "Conv2d::backward before forward");
  if (opts_.bias) {
    const int64_t b = grad_out.numel() /
                      (grad_out.size(-3) * grad_out.size(-2) * grad_out.size(-1));
    Tensor flat = grad_out.reshape(
        {b, grad_out.size(-3), grad_out.size(-2), grad_out.size(-1)});
    bias_.grad.add_(sum_nhw(flat));
  }
  return conv2d_backward(cached_input_, weight_.value, opts_, grad_out,
                         weight_.grad);
}

void Conv2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (opts_.bias) out.push_back(&bias_);
}

void Conv2d::describe(ShapeState& s, std::vector<LayerDesc>& out) const {
  ConvGeometry g = geometry(s.h, s.w);
  LayerDesc d;
  d.kind = "conv";
  d.in_c = opts_.in_channels;
  d.out_c = opts_.out_channels;
  d.kernel_h = opts_.kernel_h;
  d.kernel_w = opts_.kernel_w;
  d.stride = opts_.stride;
  d.in_h = s.h;
  d.in_w = s.w;
  d.out_h = g.out_h();
  d.out_w = g.out_w();
  d.params = opts_.out_channels * opts_.in_channels * opts_.kernel_h *
                 opts_.kernel_w +
             (opts_.bias ? opts_.out_channels : 0);
  d.macs = d.out_c * d.out_h * d.out_w * opts_.in_channels * opts_.kernel_h *
           opts_.kernel_w;
  out.push_back(d);
  s.c = d.out_c;
  s.h = d.out_h;
  s.w = d.out_w;
}

}  // namespace ttsnn
