#pragma once

/// \file containers.h
/// Composite modules: Sequential chains, residual blocks (the MS-ResNet
/// "membrane shortcut" pattern [30] — addition happens on real-valued
/// features, activations precede convolutions), and a Flatten adapter.

#include "nn/module.h"

namespace ttsnn {

/// Runs children in order; backward in reverse order.
class Sequential : public Module {
 public:
  Sequential() = default;
  explicit Sequential(std::vector<ModulePtr> modules);

  /// Appends a module; returns *this for chaining.
  Sequential& add(ModulePtr m);
  /// Convenience: constructs M in place.
  template <typename M, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<M>(std::forward<Args>(args)...));
  }

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void describe(ShapeState& s, std::vector<LayerDesc>& out) const override;
  std::vector<ModulePtr*> child_slots() override;
  void clear_cache() override;
  std::string name() const override { return "Sequential"; }

  size_t size() const { return modules_.size(); }
  Module& at(size_t i) { return *modules_.at(i); }
  const Module& at(size_t i) const { return *modules_.at(i); }

 private:
  std::vector<ModulePtr> modules_;
};

/// y = body(x) + shortcut(x); shortcut == nullptr means identity.
/// This is the MS-ResNet residual: the body is (LIF, Conv, BN, LIF, Conv, BN)
/// so the sum is on full-precision post-BN values, not on spikes.
class Residual : public Module {
 public:
  Residual(ModulePtr body, ModulePtr shortcut);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void describe(ShapeState& s, std::vector<LayerDesc>& out) const override;
  std::vector<ModulePtr*> child_slots() override;
  void clear_cache() override;
  std::string name() const override { return "Residual"; }

  const Module& body() const { return *body_; }
  /// nullptr means identity shortcut.
  const Module* shortcut() const { return shortcut_.get(); }

 private:
  ModulePtr body_;
  ModulePtr shortcut_;  ///< may be null (identity)
};

/// [T, N, C, H, W] -> [T, N, C*H*W]; backward restores the shape.
class Flatten : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void describe(ShapeState& s, std::vector<LayerDesc>& out) const override;
  std::string name() const override { return "Flatten"; }

 private:
  Shape cached_in_shape_;
};

}  // namespace ttsnn
