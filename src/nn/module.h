#pragma once

/// \file module.h
/// Layer abstraction for SNN training with backprop-through-time.
///
/// Sequence convention: activations flow through the network as 5-D tensors
/// [T, N, C, H, W] (or 3-D [T, N, F] after flattening), where T is the number
/// of SNN timesteps. Layers are processed *layer-major*: each module consumes
/// the entire timestep sequence before the next module runs. This matches the
/// accelerator dataflow in Sec. IV of the paper ("finish processing all
/// timesteps for each layer and then move to the next") and lets tdBN / TEBN
/// normalize across time. Temporal recurrence lives inside LIFNeuron, which
/// iterates timesteps internally in both directions (forward and BPTT).
///
/// Each module caches whatever its backward pass needs during forward();
/// backward() must be called exactly once per forward() with the gradient of
/// the loss w.r.t. the module output, and returns the gradient w.r.t. input.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace ttsnn {

/// A trainable tensor with its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;
  /// Excluded from weight decay when false (BN affine parameters).
  bool decay = true;

  Parameter() = default;
  Parameter(std::string n, Tensor v, bool apply_decay = true)
      : name(std::move(n)), value(std::move(v)), grad(Tensor::zeros(value.shape())),
        decay(apply_decay) {}
};

/// A named non-trainable tensor (e.g. BatchNorm running statistics) that is
/// part of a module's persistent state but not of its gradient graph.
struct BufferRef {
  std::string name;
  Tensor* value = nullptr;
};

/// Static per-layer description used by the FLOPs analyzer and the hardware
/// workload extractor. `macs` counts multiply-accumulates for ONE sample and
/// ONE timestep (multiply by T and batch externally).
struct LayerDesc {
  std::string kind;      ///< "conv" | "ttconv" | "linear" | "lif" | "bn" | "pool"
  std::string detail;    ///< free-form, e.g. TT mode
  int64_t in_c = 0, out_c = 0;
  int64_t kernel_h = 0, kernel_w = 0;
  int64_t stride = 1;
  int64_t in_h = 0, in_w = 0, out_h = 0, out_w = 0;
  int64_t params = 0;
  int64_t macs = 0;
  int64_t rank = 0;      ///< TT-rank for "ttconv" entries
  bool spike_input = true;  ///< consumes binary spikes (accumulate-only HW)
  /// Average fraction of timesteps on which this layer executes (HTT strips
  /// run only on "full" steps; everything else is 1.0).
  double utilization = 1.0;
  /// For spike-input compute layers: index (in LIF traversal order) of the
  /// LIF whose output this layer consumes; -1 for analog inputs. Filled in
  /// by analyze_model so measured spike densities can be attached.
  int64_t source_lif = -1;
};

/// Spatial/channel shape threaded through describe() calls.
struct ShapeState {
  int64_t c = 0, h = 0, w = 0;
};

class Module;
using ModulePtr = std::unique_ptr<Module>;

/// Base class for all layers. See file comment for the sequence convention.
class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  virtual ~Module() = default;

  /// Forward over the full timestep sequence; caches for backward.
  virtual Tensor forward(const Tensor& x) = 0;
  /// Backward: gradient w.r.t. output -> gradient w.r.t. input. Parameter
  /// gradients accumulate into Parameter::grad.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Appends pointers to this module's parameters (recursing into children).
  virtual void collect_parameters(std::vector<Parameter*>& out);
  std::vector<Parameter*> parameters();

  /// Named non-trainable state that checkpoints must carry (BatchNorm running
  /// statistics). Overrides append their own entries, then the default
  /// recurses into children.
  virtual void collect_buffers(std::vector<BufferRef>& out);
  std::vector<BufferRef> buffers();

  /// Training/eval mode (affects batch-norm statistics).
  virtual void set_training(bool training);
  bool is_training() const { return training_; }

  /// Appends layer descriptors, threading the activation shape through.
  virtual void describe(ShapeState& s, std::vector<LayerDesc>& out) const;

  /// Mutable access to child module slots, enabling tree rewrites such as the
  /// factorize pass that swaps Conv2d layers for TTConv2d (DESIGN.md §4).
  virtual std::vector<ModulePtr*> child_slots() { return {}; }

  /// Frees cached activations (called between optimizer steps).
  virtual void clear_cache() {}

  virtual std::string name() const = 0;

  /// Total number of trainable scalars in this module (and children).
  int64_t num_params();

 protected:
  bool training_ = true;
};

/// Walks the module tree depth-first, visiting every child slot. The visitor
/// may replace the slot's module; recursion continues into the (possibly new)
/// module's own children.
void visit_module_slots(Module& root,
                        const std::function<void(ModulePtr& slot)>& fn);

}  // namespace ttsnn
