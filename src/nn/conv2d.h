#pragma once

/// \file conv2d.h
/// Standard dense 2-D convolution over spike or analog activations.
/// Supports asymmetric kernels — the TT sub-convolutions are (1,1), (kh,1),
/// (1,kw) shaped — with independent stride and padding per axis.

#include "nn/module.h"
#include "tensor/im2col.h"

namespace ttsnn {

class Conv2d : public Module {
 public:
  struct Options {
    int64_t in_channels = 0;
    int64_t out_channels = 0;
    int64_t kernel_h = 3;
    int64_t kernel_w = 3;
    int64_t stride = 1;
    /// -1 inherits `stride`; the TT sub-convolutions use asymmetric strides
    /// such as (s, 1) / (1, s) so the STT chain composes to a stride-s conv.
    int64_t stride_h = -1;
    int64_t stride_w = -1;
    /// -1 selects "same" padding for odd kernels: (k - 1) / 2.
    int64_t pad_h = -1;
    int64_t pad_w = -1;
    bool bias = false;

    int64_t resolved_stride_h() const { return stride_h >= 0 ? stride_h : stride; }
    int64_t resolved_stride_w() const { return stride_w >= 0 ? stride_w : stride; }
    int64_t resolved_pad_h() const { return pad_h >= 0 ? pad_h : (kernel_h - 1) / 2; }
    int64_t resolved_pad_w() const { return pad_w >= 0 ? pad_w : (kernel_w - 1) / 2; }
  };

  /// Kaiming-normal initialized convolution.
  Conv2d(Options opts, Rng& rng);
  /// Convolution with explicit weights [O, C, kh, kw] (used by the merge pass).
  Conv2d(Options opts, Tensor weight);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void describe(ShapeState& s, std::vector<LayerDesc>& out) const override;
  void clear_cache() override { cached_input_ = Tensor(); }
  std::string name() const override { return "Conv2d"; }

  const Options& options() const { return opts_; }
  Parameter& weight() { return weight_; }
  const Parameter& weight() const { return weight_; }
  Parameter& bias() { return bias_; }
  const Parameter& bias() const { return bias_; }

  /// Geometry for a given input spatial size.
  ConvGeometry geometry(int64_t in_h, int64_t in_w) const;

 private:
  Options opts_;
  Parameter weight_;  ///< [O, C, kh, kw]
  Parameter bias_;    ///< [O] when opts_.bias
  Tensor cached_input_;
};

/// Stateless functional convolution used by both Conv2d and TTConv2d.
/// x: [..., C, H, W] (leading dims folded into batch), weight [O, C, kh, kw].
Tensor conv2d_forward(const Tensor& x, const Tensor& weight,
                      const Conv2d::Options& opts);

/// Backward of conv2d_forward. Accumulates into weight_grad (same shape as
/// weight); returns grad w.r.t. x.
Tensor conv2d_backward(const Tensor& x, const Tensor& weight,
                       const Conv2d::Options& opts, const Tensor& grad_out,
                       Tensor& weight_grad);

}  // namespace ttsnn
