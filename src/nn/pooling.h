#pragma once

/// \file pooling.h
/// Average pooling layers. SNN stacks use average pooling (max pooling over
/// binary spikes is lossy), matching the VGG architectures of Table III.

#include "nn/module.h"

namespace ttsnn {

/// Non-overlapping average pooling with square kernel == stride.
class AvgPool2d : public Module {
 public:
  explicit AvgPool2d(int64_t kernel);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void describe(ShapeState& s, std::vector<LayerDesc>& out) const override;
  std::string name() const override { return "AvgPool2d"; }

  int64_t kernel() const { return kernel_; }

 private:
  int64_t kernel_ = 2;
  Shape cached_in_shape_;
};

/// Global average pool: [T, N, C, H, W] -> [T, N, C].
class GlobalAvgPool : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void describe(ShapeState& s, std::vector<LayerDesc>& out) const override;
  std::string name() const override { return "GlobalAvgPool"; }

 private:
  Shape cached_in_shape_;
};

}  // namespace ttsnn
