#include "nn/module.h"

namespace ttsnn {

void Module::collect_parameters(std::vector<Parameter*>& out) {
  for (ModulePtr* slot : child_slots()) {
    if (*slot) (*slot)->collect_parameters(out);
  }
}

std::vector<Parameter*> Module::parameters() {
  std::vector<Parameter*> out;
  collect_parameters(out);
  return out;
}

void Module::collect_buffers(std::vector<BufferRef>& out) {
  for (ModulePtr* slot : child_slots()) {
    if (*slot) (*slot)->collect_buffers(out);
  }
}

std::vector<BufferRef> Module::buffers() {
  std::vector<BufferRef> out;
  collect_buffers(out);
  return out;
}

void Module::set_training(bool training) {
  training_ = training;
  for (ModulePtr* slot : child_slots()) {
    if (*slot) (*slot)->set_training(training);
  }
}

void Module::describe(ShapeState& s, std::vector<LayerDesc>& out) const {
  (void)s;
  (void)out;
}

int64_t Module::num_params() {
  int64_t n = 0;
  for (Parameter* p : parameters()) n += p->value.numel();
  return n;
}

void visit_module_slots(Module& root,
                        const std::function<void(ModulePtr& slot)>& fn) {
  for (ModulePtr* slot : root.child_slots()) {
    if (!*slot) continue;
    fn(*slot);
    if (*slot) visit_module_slots(**slot, fn);
  }
}

}  // namespace ttsnn
