#pragma once

/// \file linear.h
/// Fully-connected layer (the classifier head; never TT-decomposed per
/// Algorithm 1, which keeps the first conv and the final classifier dense).

#include "nn/module.h"

namespace ttsnn {

class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias = true);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void describe(ShapeState& s, std::vector<LayerDesc>& out) const override;
  void clear_cache() override { cached_input_ = Tensor(); }
  std::string name() const override { return "Linear"; }

  Parameter& weight() { return weight_; }
  const Parameter& weight() const { return weight_; }
  Parameter& bias() { return bias_; }
  const Parameter& bias() const { return bias_; }
  bool has_bias() const { return has_bias_; }
  int64_t in_features() const { return in_; }
  int64_t out_features() const { return out_; }

 private:
  int64_t in_ = 0;
  int64_t out_ = 0;
  bool has_bias_ = true;
  Parameter weight_;  ///< [out, in]
  Parameter bias_;    ///< [out]
  Tensor cached_input_;
};

}  // namespace ttsnn
