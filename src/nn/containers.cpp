#include "nn/containers.h"

#include "tensor/ops.h"

namespace ttsnn {

Sequential::Sequential(std::vector<ModulePtr> modules)
    : modules_(std::move(modules)) {
  for (const ModulePtr& m : modules_) {
    TTSNN_CHECK(m != nullptr, "Sequential: null module");
  }
}

Sequential& Sequential::add(ModulePtr m) {
  TTSNN_CHECK(m != nullptr, "Sequential::add null module");
  modules_.push_back(std::move(m));
  return *this;
}

Tensor Sequential::forward(const Tensor& x) {
  Tensor cur = x;
  for (ModulePtr& m : modules_) cur = m->forward(cur);
  return cur;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor cur = grad_out;
  for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
    cur = (*it)->backward(cur);
  }
  return cur;
}

void Sequential::describe(ShapeState& s, std::vector<LayerDesc>& out) const {
  for (const ModulePtr& m : modules_) m->describe(s, out);
}

std::vector<ModulePtr*> Sequential::child_slots() {
  std::vector<ModulePtr*> slots;
  slots.reserve(modules_.size());
  for (ModulePtr& m : modules_) slots.push_back(&m);
  return slots;
}

void Sequential::clear_cache() {
  for (ModulePtr& m : modules_) m->clear_cache();
}

Residual::Residual(ModulePtr body, ModulePtr shortcut)
    : body_(std::move(body)), shortcut_(std::move(shortcut)) {
  TTSNN_CHECK(body_ != nullptr, "Residual requires a body");
}

Tensor Residual::forward(const Tensor& x) {
  Tensor main = body_->forward(x);
  Tensor skip = shortcut_ ? shortcut_->forward(x) : x;
  TTSNN_CHECK(main.same_shape(skip),
              "Residual branch shapes differ: " << shape_str(main.shape())
                                                << " vs " << shape_str(skip.shape()));
  return add(main, skip);
}

Tensor Residual::backward(const Tensor& grad_out) {
  Tensor g_body = body_->backward(grad_out);
  if (shortcut_) {
    Tensor g_skip = shortcut_->backward(grad_out);
    return add(g_body, g_skip);
  }
  return add(g_body, grad_out);
}

void Residual::describe(ShapeState& s, std::vector<LayerDesc>& out) const {
  ShapeState skip_state = s;
  body_->describe(s, out);
  if (shortcut_) shortcut_->describe(skip_state, out);
}

std::vector<ModulePtr*> Residual::child_slots() {
  std::vector<ModulePtr*> slots{&body_};
  if (shortcut_) slots.push_back(&shortcut_);
  return slots;
}

void Residual::clear_cache() {
  body_->clear_cache();
  if (shortcut_) shortcut_->clear_cache();
}

Tensor Flatten::forward(const Tensor& x) {
  TTSNN_CHECK(x.dim() >= 3, "Flatten expects [T, N, ...]");
  cached_in_shape_ = x.shape();
  return x.reshape({x.size(0), x.size(1), -1});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  TTSNN_CHECK(!cached_in_shape_.empty(), "Flatten::backward before forward");
  return grad_out.reshape(cached_in_shape_);
}

void Flatten::describe(ShapeState& s, std::vector<LayerDesc>& out) const {
  (void)out;
  s.c = s.c * s.h * s.w;
  s.h = 1;
  s.w = 1;
}

}  // namespace ttsnn
