#include "nn/linear.h"

#include "tensor/gemm.h"
#include "tensor/random.h"

namespace ttsnn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng, bool bias)
    : in_(in_features), out_(out_features), has_bias_(bias) {
  TTSNN_CHECK(in_ > 0 && out_ > 0, "Linear features must be positive");
  weight_ = Parameter("linear.weight", kaiming_normal({out_, in_}, in_, rng));
  if (has_bias_) bias_ = Parameter("linear.bias", Tensor::zeros({out_}));
}

Tensor Linear::forward(const Tensor& x) {
  TTSNN_CHECK(x.size(-1) == in_, "Linear expected last dim " << in_ << ", got "
                                                             << shape_str(x.shape()));
  cached_input_ = training_ ? x : Tensor();
  const int64_t b = x.numel() / in_;
  Shape out_shape = x.shape();
  out_shape[out_shape.size() - 1] = out_;
  Tensor out(out_shape);
  // out [b, out] = x [b, in] * W^T [in, out]
  gemm(false, true, b, out_, in_, 1.0F, x.data(), weight_.value.data(), 0.0F,
       out.data());
  if (has_bias_) {
    float* p = out.data();
    const float* bb = bias_.value.data();
    for (int64_t i = 0; i < b; ++i) {
      for (int64_t j = 0; j < out_; ++j) p[i * out_ + j] += bb[j];
    }
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_out) {
  TTSNN_CHECK(cached_input_.defined(), "Linear::backward before forward");
  const int64_t b = cached_input_.numel() / in_;
  TTSNN_CHECK(grad_out.numel() == b * out_, "Linear grad shape mismatch");
  // dW [out, in] += g^T [out, b] * x [b, in]
  gemm(true, false, out_, in_, b, 1.0F, grad_out.data(), cached_input_.data(),
       1.0F, weight_.grad.data());
  if (has_bias_) {
    float* gb = bias_.grad.data();
    const float* g = grad_out.data();
    for (int64_t i = 0; i < b; ++i) {
      for (int64_t j = 0; j < out_; ++j) gb[j] += g[i * out_ + j];
    }
  }
  // dx [b, in] = g [b, out] * W [out, in]
  Tensor grad_in(cached_input_.shape());
  gemm(false, false, b, in_, out_, 1.0F, grad_out.data(), weight_.value.data(),
       0.0F, grad_in.data());
  return grad_in;
}

void Linear::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  if (has_bias_) out.push_back(&bias_);
}

void Linear::describe(ShapeState& s, std::vector<LayerDesc>& out) const {
  LayerDesc d;
  d.kind = "linear";
  d.in_c = in_;
  d.out_c = out_;
  d.params = out_ * in_ + (has_bias_ ? out_ : 0);
  d.macs = out_ * in_;
  out.push_back(d);
  s.c = out_;
  s.h = 1;
  s.w = 1;
}

}  // namespace ttsnn
