#include "nn/pooling.h"

namespace ttsnn {

AvgPool2d::AvgPool2d(int64_t kernel) : kernel_(kernel) {
  TTSNN_CHECK(kernel_ >= 1, "AvgPool2d kernel must be >= 1");
}

Tensor AvgPool2d::forward(const Tensor& x) {
  TTSNN_CHECK(x.dim() >= 3, "AvgPool2d expects [..., C, H, W]");
  const int64_t h = x.size(-2);
  const int64_t w = x.size(-1);
  TTSNN_CHECK(h % kernel_ == 0 && w % kernel_ == 0,
              "AvgPool2d requires divisible spatial dims, got " << h << "x" << w
                                                                << " k=" << kernel_);
  cached_in_shape_ = x.shape();
  const int64_t oh = h / kernel_;
  const int64_t ow = w / kernel_;
  const int64_t planes = x.numel() / (h * w);

  Shape out_shape = x.shape();
  out_shape[out_shape.size() - 2] = oh;
  out_shape[out_shape.size() - 1] = ow;
  Tensor out(out_shape);
  const float* in = x.data();
  float* o = out.data();
  const float inv = 1.0F / static_cast<float>(kernel_ * kernel_);
  for (int64_t p = 0; p < planes; ++p) {
    const float* plane = in + p * h * w;
    float* oplane = o + p * oh * ow;
    for (int64_t y = 0; y < oh; ++y) {
      for (int64_t xx = 0; xx < ow; ++xx) {
        float s = 0.0F;
        for (int64_t ky = 0; ky < kernel_; ++ky) {
          const float* row = plane + (y * kernel_ + ky) * w + xx * kernel_;
          for (int64_t kx = 0; kx < kernel_; ++kx) s += row[kx];
        }
        oplane[y * ow + xx] = s * inv;
      }
    }
  }
  return out;
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  TTSNN_CHECK(!cached_in_shape_.empty(), "AvgPool2d::backward before forward");
  const int64_t h = cached_in_shape_[cached_in_shape_.size() - 2];
  const int64_t w = cached_in_shape_[cached_in_shape_.size() - 1];
  const int64_t oh = h / kernel_;
  const int64_t ow = w / kernel_;
  const int64_t planes = shape_numel(cached_in_shape_) / (h * w);
  Tensor grad_in(cached_in_shape_);
  const float* g = grad_out.data();
  float* gi = grad_in.data();
  const float inv = 1.0F / static_cast<float>(kernel_ * kernel_);
  for (int64_t p = 0; p < planes; ++p) {
    const float* gplane = g + p * oh * ow;
    float* giplane = gi + p * h * w;
    for (int64_t y = 0; y < oh; ++y) {
      for (int64_t xx = 0; xx < ow; ++xx) {
        const float gv = gplane[y * ow + xx] * inv;
        for (int64_t ky = 0; ky < kernel_; ++ky) {
          float* row = giplane + (y * kernel_ + ky) * w + xx * kernel_;
          for (int64_t kx = 0; kx < kernel_; ++kx) row[kx] = gv;
        }
      }
    }
  }
  return grad_in;
}

void AvgPool2d::describe(ShapeState& s, std::vector<LayerDesc>& out) const {
  LayerDesc d;
  d.kind = "pool";
  d.in_c = s.c;
  d.out_c = s.c;
  d.in_h = s.h;
  d.in_w = s.w;
  d.out_h = s.h / kernel_;
  d.out_w = s.w / kernel_;
  d.macs = s.c * s.h * s.w;  // one add per input element
  out.push_back(d);
  s.h = d.out_h;
  s.w = d.out_w;
}

Tensor GlobalAvgPool::forward(const Tensor& x) {
  TTSNN_CHECK(x.dim() == 5, "GlobalAvgPool expects [T, N, C, H, W]");
  cached_in_shape_ = x.shape();
  const int64_t hw = x.size(3) * x.size(4);
  const int64_t rows = x.numel() / hw;
  Tensor out({x.size(0), x.size(1), x.size(2)});
  const float* in = x.data();
  float* o = out.data();
  const float inv = 1.0F / static_cast<float>(hw);
  for (int64_t r = 0; r < rows; ++r) {
    double s = 0.0;
    const float* row = in + r * hw;
    for (int64_t i = 0; i < hw; ++i) s += row[i];
    o[r] = static_cast<float>(s) * inv;
  }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  TTSNN_CHECK(!cached_in_shape_.empty(), "GlobalAvgPool::backward before forward");
  const int64_t hw =
      cached_in_shape_[3] * cached_in_shape_[4];
  const int64_t rows = shape_numel(cached_in_shape_) / hw;
  TTSNN_CHECK(grad_out.numel() == rows, "GlobalAvgPool grad shape mismatch");
  Tensor grad_in(cached_in_shape_);
  const float* g = grad_out.data();
  float* gi = grad_in.data();
  const float inv = 1.0F / static_cast<float>(hw);
  for (int64_t r = 0; r < rows; ++r) {
    const float gv = g[r] * inv;
    float* row = gi + r * hw;
    for (int64_t i = 0; i < hw; ++i) row[i] = gv;
  }
  return grad_in;
}

void GlobalAvgPool::describe(ShapeState& s, std::vector<LayerDesc>& out) const {
  LayerDesc d;
  d.kind = "pool";
  d.detail = "global";
  d.in_c = s.c;
  d.out_c = s.c;
  d.in_h = s.h;
  d.in_w = s.w;
  d.out_h = 1;
  d.out_w = 1;
  d.macs = s.c * s.h * s.w;
  out.push_back(d);
  s.h = 1;
  s.w = 1;
}

}  // namespace ttsnn
