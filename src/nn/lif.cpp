#include "nn/lif.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "tensor/simd.h"

namespace ttsnn {

float surrogate_grad(Surrogate kind, float alpha, float v_th, float u) {
  const float x = u - v_th;
  switch (kind) {
    case Surrogate::kRectangle:
      return std::fabs(x) < 0.5F * alpha ? 1.0F / alpha : 0.0F;
    case Surrogate::kTriangle: {
      const float v = 1.0F - std::fabs(x) / alpha;
      return v > 0.0F ? v / alpha : 0.0F;
    }
    case Surrogate::kAtan: {
      const float z = 0.5F * std::numbers::pi_v<float> * alpha * x;
      return alpha / (2.0F * (1.0F + z * z));
    }
    case Surrogate::kSigmoid: {
      const float s = 1.0F / (1.0F + std::exp(-x / alpha));
      return s * (1.0F - s) / alpha;
    }
  }
  return 0.0F;
}

LIFNeuron::LIFNeuron(Options opts) : opts_(opts) {
  TTSNN_CHECK(opts_.tau > 0.0F && opts_.tau <= 1.0F,
              "LIF tau must be in (0, 1], got " << opts_.tau);
  TTSNN_CHECK(opts_.surrogate_alpha > 0.0F, "surrogate alpha must be positive");
}

Tensor LIFNeuron::forward(const Tensor& x) {
  TTSNN_CHECK(x.dim() >= 2, "LIF expects [T, N, ...], got " << shape_str(x.shape()));
  if (!training_) {
    clear_cache();
    Tensor spikes = lif_forward_eval(opts_, x);
    last_density_ = spikes.density();
    return spikes;
  }
  const int64_t t_steps = x.size(0);
  const int64_t m = x.numel() / t_steps;

  cached_u_ = Tensor::empty(x.shape());
  cached_spikes_ = Tensor::empty(x.shape());
  const float* in = x.data();
  float* u_out = cached_u_.data();
  float* s_out = cached_spikes_.data();

  std::vector<float> u_post(static_cast<size_t>(m), 0.0F);
  for (int64_t t = 0; t < t_steps; ++t) {
    simd::lif_step_train(m, opts_.tau, opts_.v_th,
                         opts_.reset == ResetMode::kZero, in + t * m,
                         u_post.data(), u_out + t * m, s_out + t * m);
  }
  last_density_ = cached_spikes_.density();
  return cached_spikes_;
}

Tensor lif_forward_eval(const LIFNeuron::Options& opts, const Tensor& x) {
  TTSNN_CHECK(x.dim() >= 2, "LIF expects [T, N, ...], got " << shape_str(x.shape()));
  const int64_t t_steps = x.size(0);
  const int64_t m = x.numel() / t_steps;
  Tensor spikes = Tensor::empty(x.shape());
  std::vector<float> u_post(static_cast<size_t>(m), 0.0F);
  lif_forward_eval_into(opts, x, spikes, u_post.data());
  return spikes;
}

void lif_forward_eval_into(const LIFNeuron::Options& opts, const Tensor& x,
                           Tensor& spikes, float* u_post) {
  TTSNN_CHECK(x.dim() >= 2, "LIF expects [T, N, ...], got " << shape_str(x.shape()));
  TTSNN_CHECK(spikes.numel() == x.numel(), "LIF eval output shape mismatch");
  const int64_t t_steps = x.size(0);
  const int64_t m = x.numel() / t_steps;
  const float* in = x.data();
  float* s_out = spikes.data();
  std::fill(u_post, u_post + m, 0.0F);
  for (int64_t t = 0; t < t_steps; ++t) {
    simd::lif_step_eval(m, opts.tau, opts.v_th, opts.reset == ResetMode::kZero,
                        in + t * m, u_post, s_out + t * m);
  }
}

Tensor LIFNeuron::backward(const Tensor& grad_out) {
  TTSNN_CHECK(cached_u_.defined(), "LIF::backward before forward");
  TTSNN_CHECK(grad_out.same_shape(cached_u_), "LIF grad shape mismatch");
  const int64_t t_steps = cached_u_.size(0);
  const int64_t m = cached_u_.numel() / t_steps;

  Tensor grad_in = Tensor::empty(cached_u_.shape());
  const float* gs = grad_out.data();
  const float* u_all = cached_u_.data();
  const float* s_all = cached_spikes_.data();
  float* gi = grad_in.data();

  // The exp-free surrogate families run on the vectorized kernel; sigmoid
  // needs exp() and keeps the scalar loop below.
  const bool vectorizable = opts_.surrogate != Surrogate::kSigmoid;
  const simd::LifSurrogate kind =
      opts_.surrogate == Surrogate::kRectangle ? simd::LifSurrogate::kRectangle
      : opts_.surrogate == Surrogate::kTriangle
          ? simd::LifSurrogate::kTriangle
          : simd::LifSurrogate::kAtan;

  std::vector<float> gu_post(static_cast<size_t>(m), 0.0F);
  for (int64_t t = t_steps - 1; t >= 0; --t) {
    const float* gst = gs + t * m;
    const float* ut = u_all + t * m;
    const float* st = s_all + t * m;
    float* git = gi + t * m;
    if (vectorizable) {
      simd::lif_backward_step(m, kind, opts_.surrogate_alpha, opts_.tau,
                              opts_.v_th, opts_.reset == ResetMode::kZero,
                              opts_.detach_reset, gst, ut, st, gu_post.data(),
                              git);
      continue;
    }
    for (int64_t i = 0; i < m; ++i) {
      const float surr =
          surrogate_grad(opts_.surrogate, opts_.surrogate_alpha, opts_.v_th, ut[i]);
      // d u_post / d u: hard reset scales the carried gradient by (1 - s);
      // soft reset passes it through unchanged. The reset's own dependence
      // on the spike adds a surrogate term unless detached.
      const float carry = opts_.reset == ResetMode::kZero
                              ? gu_post[static_cast<size_t>(i)] * (1.0F - st[i])
                              : gu_post[static_cast<size_t>(i)];
      float gu = gst[i] * surr + carry;
      if (!opts_.detach_reset) {
        const float reset_term =
            opts_.reset == ResetMode::kZero ? ut[i] : opts_.v_th;
        gu -= gu_post[static_cast<size_t>(i)] * reset_term * surr;
      }
      git[i] = gu;
      gu_post[static_cast<size_t>(i)] = opts_.tau * gu;
    }
  }
  return grad_in;
}

void LIFNeuron::describe(ShapeState& s, std::vector<LayerDesc>& out) const {
  LayerDesc d;
  d.kind = "lif";
  d.in_c = s.c;
  d.out_c = s.c;
  d.in_h = s.h;
  d.in_w = s.w;
  d.out_h = s.h;
  d.out_w = s.w;
  d.macs = s.c * s.h * s.w;  // one multiply-add per neuron per step
  out.push_back(d);
}

void LIFNeuron::clear_cache() {
  cached_u_ = Tensor();
  cached_spikes_ = Tensor();
}

}  // namespace ttsnn
