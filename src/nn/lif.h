#pragma once

/// \file lif.h
/// Leaky-Integrate-and-Fire neuron (Eq. 1 of the paper) with surrogate
/// gradient backprop-through-time.
///
/// Forward, per timestep t (u_post is the after-reset potential):
///   u[t]      = tau_m * u_post[t-1] + I[t]          (u_post[-1] = 0)
///   s[t]      = H(u[t] - v_th)                      (binary spike)
///   u_post[t] = u[t] * (1 - s[t])                   (hard reset to 0)
///
/// Backward iterates t = T-1 .. 0 carrying d L/d u_post[t]:
///   du[t] = ds[t] * surr'(u[t]) + du_post[t] * (1 - s[t])
///           [+ du_post[t] * (-u[t]) * surr'(u[t]) unless detach_reset]
///   dI[t] = du[t];   du_post[t-1] = tau_m * du[t]
///
/// surr' is the surrogate derivative of the Heaviside step — rectangular
/// window by default (STBP [6]).

#include "nn/module.h"

namespace ttsnn {

/// Surrogate gradient family for the Heaviside step.
enum class Surrogate {
  kRectangle,  ///< 1/alpha inside |u - v_th| < alpha/2 (STBP)
  kTriangle,   ///< (1/alpha) * max(0, 1 - |u - v_th| / alpha)
  kAtan,       ///< alpha / (2 * (1 + (pi/2 * alpha * (u - v_th))^2))
  kSigmoid,    ///< s'(x/alpha)/alpha with s the logistic function
};

/// Evaluates the surrogate derivative at membrane potential u.
float surrogate_grad(Surrogate kind, float alpha, float v_th, float u);

/// Reset behaviour after a spike.
enum class ResetMode {
  kZero,      ///< hard reset: u <- 0 (the paper's Eq. 1)
  kSubtract,  ///< soft reset: u <- u - v_th (common SNN variant)
};

class LIFNeuron : public Module {
 public:
  struct Options {
    float tau = 0.25F;              ///< membrane leak (paper Sec. V-A)
    float v_th = 0.5F;              ///< firing threshold (paper Sec. V-A)
    Surrogate surrogate = Surrogate::kRectangle;
    float surrogate_alpha = 1.0F;   ///< surrogate window width
    bool detach_reset = true;       ///< detach the reset from the gradient path
    ResetMode reset = ResetMode::kZero;
  };

  LIFNeuron() : LIFNeuron(Options{}) {}
  explicit LIFNeuron(Options opts);

  /// x: [T, N, ...]; returns binary spikes of the same shape.
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void describe(ShapeState& s, std::vector<LayerDesc>& out) const override;
  void clear_cache() override;
  std::string name() const override { return "LIF"; }

  const Options& options() const { return opts_; }
  /// Mean spike density of the last forward pass (for HW sparsity modeling).
  double last_spike_density() const { return last_density_; }

 private:
  Options opts_;
  Tensor cached_u_;       ///< pre-reset membrane potentials, same shape as input
  Tensor cached_spikes_;  ///< emitted spikes
  double last_density_ = 0.0;
};

/// Stateless LIF forward over [T, N, ...] that keeps no membrane trace —
/// the eval path of LIFNeuron and the kernel behind infer::Engine's LIF op.
/// Bit-identical to the training forward's spike output.
Tensor lif_forward_eval(const LIFNeuron::Options& opts, const Tensor& x);

/// Allocation-free variant: writes spikes into `spikes` (same shape as x)
/// using `u_post` (numel / T floats, zeroed here) as the membrane plane.
/// `spikes` may alias x — each timestep's kernel reads its input element
/// before writing the spike at the same position, so the inference engine
/// runs this op in place when liveness allows.
void lif_forward_eval_into(const LIFNeuron::Options& opts, const Tensor& x,
                           Tensor& spikes, float* u_post);

}  // namespace ttsnn
