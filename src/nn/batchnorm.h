#pragma once

/// \file batchnorm.h
/// Batch normalization for spiking sequences [T, N, C, H, W] in three
/// flavors used across the paper's experiments:
///
///  - kPerStep: statistics over (N, H, W) independently per timestep, shared
///    affine — the vanilla BN inside MS-ResNet (Algorithm 1).
///  - kTdBn:   threshold-dependent BN [26]: joint statistics over
///    (T, N, H, W) and normalization scaled by alpha * V_th.
///  - kTebn:   temporal effective BN [27]: joint statistics plus a learnable
///    per-timestep scale p_t on the normalized value.
///
/// Running statistics are tracked with EMA for eval mode in all flavors.

#include "nn/module.h"

namespace ttsnn {

class BatchNorm : public Module {
 public:
  enum class Mode { kPerStep, kTdBn, kTebn };

  struct Options {
    int64_t channels = 0;
    Mode mode = Mode::kPerStep;
    float eps = 1e-5F;
    float momentum = 0.1F;
    /// tdBN's alpha * V_th pre-affine scale (1.0 for other modes).
    float alpha_vth = 1.0F;
    /// Number of timesteps; required for kTebn (size of the p_t vector).
    int64_t timesteps = 0;
  };

  explicit BatchNorm(Options opts);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_buffers(std::vector<BufferRef>& out) override;
  void describe(ShapeState& s, std::vector<LayerDesc>& out) const override;
  void clear_cache() override;
  std::string name() const override { return "BatchNorm"; }

  const Options& options() const { return opts_; }
  Parameter& gamma() { return gamma_; }
  const Parameter& gamma() const { return gamma_; }
  Parameter& beta() { return beta_; }
  const Parameter& beta() const { return beta_; }
  /// TEBN per-timestep scales (defined only in kTebn mode).
  Parameter& step_scale() { return step_scale_; }
  const Parameter& step_scale() const { return step_scale_; }
  /// EMA statistics used in eval mode (read by the inference lowering pass).
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  Options opts_;
  Parameter gamma_;       ///< [C], no weight decay
  Parameter beta_;        ///< [C], no weight decay
  Parameter step_scale_;  ///< [T] (TEBN only), no weight decay

  Tensor running_mean_;   ///< [C]
  Tensor running_var_;    ///< [C]

  // Backward caches.
  Tensor cached_xhat_;             ///< normalized input, input shape
  std::vector<float> cached_inv_std_;  ///< per (t-group, channel)
  int64_t cached_t_ = 0;
  int64_t cached_n_ = 0, cached_hw_ = 0;
};

}  // namespace ttsnn
