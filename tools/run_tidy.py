#!/usr/bin/env python3
"""clang-tidy driver over the CMake compile database.

Runs the pinned .clang-tidy check set (bugprone-*, performance-*,
modernize-use-override, all promoted to errors) over the project's own
translation units — src/, tools/, bench/, tests/ — using the compile
commands CMake exports, so every TU is analyzed with its real flags.

    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
    python3 tools/run_tidy.py --build=build

Exit codes: 0 clean (or clang-tidy not installed, unless --require),
1 findings, 2 usage/environment error. CI runs with --require so a broken
install fails loudly instead of skipping the gate.
"""

import argparse
import json
import multiprocessing
import os
import shutil
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Directories whose TUs are linted; third-party and generated code has none.
DEFAULT_SCOPES = ("src", "tools", "bench", "tests", "examples")


def find_clang_tidy():
    """The binary from $CLANG_TIDY, or the newest one on PATH."""
    explicit = os.environ.get("CLANG_TIDY")
    if explicit:
        return explicit if shutil.which(explicit) else None
    candidates = ["clang-tidy"] + [f"clang-tidy-{v}" for v in range(25, 13, -1)]
    for name in candidates:
        if shutil.which(name):
            return name
    return None


def load_database(build_dir):
    path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(path):
        sys.stderr.write(
            f"run_tidy: {path} not found; configure with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON\n")
        sys.exit(2)
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def select_files(database, scopes):
    roots = tuple(os.path.join(REPO, scope) + os.sep for scope in scopes)
    files = sorted(
        {os.path.abspath(entry["file"]) for entry in database
         if os.path.abspath(entry["file"]).startswith(roots)})
    return files


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build", default="build",
                        help="build dir holding compile_commands.json")
    parser.add_argument("--scope", action="append", default=None,
                        help="top-level dir to lint (repeatable); default: "
                             + ", ".join(DEFAULT_SCOPES))
    parser.add_argument("--jobs", type=int,
                        default=max(1, multiprocessing.cpu_count() - 1))
    parser.add_argument("--fix", action="store_true",
                        help="apply clang-tidy's suggested fixes in place")
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 2) when clang-tidy is not installed")
    args = parser.parse_args()

    tidy = find_clang_tidy()
    if tidy is None:
        msg = "run_tidy: clang-tidy not found on PATH (set $CLANG_TIDY)\n"
        if args.require:
            sys.stderr.write(msg)
            return 2
        sys.stderr.write(msg + "run_tidy: skipping lint\n")
        return 0

    database = load_database(args.build)
    files = select_files(database, args.scope or DEFAULT_SCOPES)
    if not files:
        sys.stderr.write("run_tidy: no project TUs in the compile database\n")
        return 2

    cmd = [tidy, "-p", args.build, "--quiet"]
    if args.fix:
        cmd.append("--fix")
    failed = []
    # One process per TU, args.jobs at a time: clang-tidy is single-threaded
    # per invocation, and per-file output keeps diagnostics attributable.
    pending = list(files)
    running = []
    while pending or running:
        while pending and len(running) < args.jobs:
            f = pending.pop(0)
            running.append((f, subprocess.Popen(
                cmd + [f], stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                text=True)))
        f, proc = running.pop(0)
        out, err = proc.communicate()
        rel = os.path.relpath(f, REPO)
        if proc.returncode != 0:
            failed.append(rel)
            sys.stdout.write(f"== {rel} ==\n{out}\n")
            if err.strip():
                sys.stderr.write(err)
        else:
            sys.stdout.write(f"ok {rel}\n")
    if failed:
        sys.stdout.write(
            f"\nrun_tidy: {len(failed)}/{len(files)} files have findings:\n")
        for f in failed:
            sys.stdout.write(f"  {f}\n")
        return 1
    sys.stdout.write(f"run_tidy: {len(files)} files clean\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
