#!/usr/bin/env python3
"""Docs hygiene checker (runs in CI and as the `docs_check` ctest entry).

Two passes over the repo:

1. Markdown link check: every relative link in README.md, ROADMAP.md,
   CHANGES.md and docs/**/*.md must resolve to an existing file or directory
   (external http(s)/mailto links and pure #anchors are skipped — no network
   in CI).
2. Header brief check: every public header under src/ must carry a Doxygen
   `\\file` line followed by a non-empty brief within its first lines, so the
   API stays self-describing.

Usage: check_docs.py [repo_root]   (exit 0 = clean, 1 = findings, printed
one per line as `path: message`).
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:")


def markdown_files(root: Path):
    for name in ("README.md", "ROADMAP.md", "CHANGES.md"):
        path = root / name
        if path.exists():
            yield path
    yield from sorted((root / "docs").glob("**/*.md"))


def check_markdown_links(root: Path):
    problems = []
    for md in markdown_files(root):
        text = md.read_text(encoding="utf-8")
        # Strip fenced code blocks: shell snippets legitimately contain
        # bracket-paren sequences that are not links.
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for target in LINK_RE.findall(text):
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            resolved = (md.parent / rel).resolve()
            if not resolved.exists():
                problems.append(f"{md.relative_to(root)}: broken link -> {target}")
    return problems


def check_header_briefs(root: Path):
    problems = []
    for header in sorted((root / "src").glob("**/*.h")):
        lines = header.read_text(encoding="utf-8").splitlines()
        file_line = next(
            (i for i, l in enumerate(lines[:12]) if "\\file" in l), None
        )
        rel = header.relative_to(root)
        if file_line is None:
            problems.append(f"{rel}: missing Doxygen \\file brief in header")
            continue
        brief = ""
        for line in lines[file_line:file_line + 4]:
            stripped = line.strip().lstrip("/").strip()
            if stripped.startswith("\\file"):
                stripped = stripped[len("\\file"):].strip()
                # Drop the conventional "\file name.h" token itself.
                stripped = re.sub(r"^\S+\.h\b", "", stripped).strip()
            brief += stripped
        if len(brief) < 10:
            problems.append(f"{rel}: \\file present but no brief text follows")
    return problems


def main() -> int:
    root = Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    problems = check_markdown_links(root) + check_header_briefs(root)
    for p in problems:
        print(p)
    if problems:
        print(f"check_docs: {len(problems)} problem(s)")
        return 1
    n_md = len(list(markdown_files(root)))
    n_h = len(list((root / "src").glob("**/*.h")))
    print(f"check_docs: OK ({n_md} markdown files, {n_h} headers)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
