// ttsnn_train — scenario-driven training CLI.
//
// Composes any paper scenario end to end from flags and/or a config file:
// dataset (synthetic image / CIFAR-like / event-gesture), model, TT mode
// (STT/PTT/HTT) with explicit ranks or VBMF auto-rank, loss (CE-sum / TET),
// timesteps, augmentation, async prefetching, checkpoint save, and an
// infer::compile smoke check. Writes a JSON training report in the
// util/bench_json.h schema so CI tracks accuracy and the compute/data-wait
// split the same way it tracks BENCH_micro.json.
//
//   ./build/ttsnn_train --config=configs/tiny_ptt.cfg --report=train.json
//   ./build/ttsnn_train --dataset=event --model=resnet18 --tt_mode=htt …
//       --timesteps=6 --htt_schedule=111100 --augment --epochs=5
//
// Precedence: defaults < --config file < later --key=value flags.
// Run with --help for the full key list.

#include <cstdio>
#include <string>
#include <vector>

#include "snn/scenario.h"
#include "util/failpoint.h"

namespace {

void print_help() {
  std::printf(
      "ttsnn_train: train a TT-SNN scenario from flags / a config file\n"
      "\n"
      "  --config=FILE            load 'key = value' lines ('#' comments);\n"
      "                           must come first, later flags override it\n"
      "  --help                   this text\n"
      "\n"
      "dataset:  --dataset=image|event|gesture --classes=N\n"
      "          --train_per_class=N --test_per_class=N --image_size=N\n"
      "          --data_seed=N\n"
      "model:    --model=resnet18|resnet34|resnet20|vgg9|vgg11\n"
      "          --base_width=N --bn=per_step|tdbn|tebn\n"
      "tt:       --tt_mode=none|stt|ptt|htt --pretrain_epochs=N\n"
      "          --ranks=R1,R2,... | --vbmf | --rank_fraction=F\n"
      "          --htt_schedule=1100 (one '1'/'0' per timestep)\n"
      "training: --epochs=N --batch_size=N --timesteps=N --lr=F\n"
      "          --loss=ce|tet --tet_lambda=F --augment\n"
      "          --augment_max_shift=N --augment_cutout=N\n"
      "          --prefetch=N (0 = synchronous loading) --seed=N --verbose\n"
      "outputs:  --checkpoint=PATH --compile_smoke --report=PATH.json\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  for (const std::string& a : args) {
    if (a == "--help" || a == "-h") {
      print_help();
      return 0;
    }
  }
  try {
    // A fault drill armed via TTSNN_FAILPOINTS announces itself up front, so
    // an injected failure in the logs below is never mistaken for a real one.
    if (ttsnn::failpoint::any_armed()) {
      std::printf("failpoints armed (TTSNN_FAILPOINTS):\n%s",
                  ttsnn::failpoint::summary().c_str());
    }
    const ttsnn::ScenarioConfig cfg = ttsnn::parse_scenario_cli(args);
    const ttsnn::ScenarioResult result = ttsnn::run_scenario(cfg);
    std::printf("%s\n", ttsnn::scenario_summary(cfg, result).c_str());
    if (result.compile_max_abs_diff >= 0.0) {
      std::printf("compile smoke: max |engine - module| = %.3g\n",
                  result.compile_max_abs_diff);
    }
    if (!cfg.checkpoint.empty()) {
      std::printf("checkpoint: %s\n", cfg.checkpoint.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ttsnn_train: %s\n", e.what());
    std::fprintf(stderr, "run with --help for usage\n");
    return 1;
  }
  return 0;
}
