// ttsnn_plan_lint — static-analysis report for compiled inference plans.
//
// Builds the scenario's model architecture (optionally loading a trained
// checkpoint), lowers it through infer::compile, and prints the
// verifier-backed plan: one line per op with register dataflow, live range
// and alias/in-place marks, followed by the static memory plan for one input
// shape — workspace offsets, the packed workspace total, and the
// planned-vs-unplanned allocation footprint. compile() runs the verifier on
// every lowering, so a malformed plan fails the run with an op-level
// diagnostic instead of printing a report.
//
//   ./build/ttsnn_plan_lint --config=configs/tiny_htt.cfg
//   ./build/ttsnn_plan_lint --config=... --checkpoint=model.ckpt --batch=8
//
// Without --checkpoint the tool lints every TT mode (stt, ptt, htt — plan
// structure does not depend on trained weight values) plus the dense
// baseline; with one, it lints exactly the config's own architecture, so a
// serving rollout can verify the plan it is about to run.
//
// flags:
//   --config=FILE      scenario config (model / tt / timesteps); required
//   --checkpoint=PATH  load trained weights (must match the architecture)
//   --batch=N          batch extent of the planned input shape (default 1)
//   --exact            lint the unmerged (bit-exact) lowering instead of the
//                      merged one
//   --expect-fused     fail (exit 1) when any linted lowering carries zero
//                      fused elementwise ops — the CI guard that the fusion
//                      pass actually fired on the scenario's architecture
//   --weight-dtype=D   lint the D-quantized lowering (f32 | bf16 | int8).
//                      The printed summary carries the per-layer quantization
//                      census; for bf16/int8 the tool fails unless at least
//                      one op actually quantized (fallback-only would mean
//                      the pass silently did nothing for this architecture)

#include <cstdio>
#include <string>
#include <vector>

#include "core/factorize.h"
#include "infer/analysis.h"
#include "infer/engine.h"
#include "snn/scenario.h"

namespace {

void print_help() {
  std::printf(
      "ttsnn_plan_lint: verify + report the static plan of a compiled model\n"
      "\n"
      "  --config=FILE      scenario config naming the architecture (required)\n"
      "  --checkpoint=PATH  lint a trained checkpoint (config's tt_mode only)\n"
      "  --batch=N          planned input batch extent (default 1)\n"
      "  --exact            lint the unmerged bit-exact lowering\n"
      "  --expect-fused     fail when a lowering has no fused ops\n"
      "  --weight-dtype=D   quantize weights (f32|bf16|int8) and print the\n"
      "                     per-layer quantization census\n"
      "  --help             this text\n");
}

struct LintFlags {
  std::string config;
  std::string checkpoint;
  int64_t batch = 1;
  bool exact = false;
  bool expect_fused = false;
  ttsnn::WeightDtype weight_dtype = ttsnn::WeightDtype::kF32;
};

LintFlags parse_flags(const std::vector<std::string>& args) {
  LintFlags f;
  for (const std::string& a : args) {
    const size_t eq = a.find('=');
    const std::string key = a.substr(0, eq);
    const std::string value = eq == std::string::npos ? "" : a.substr(eq + 1);
    if (key == "--config") {
      f.config = value;
    } else if (key == "--checkpoint") {
      f.checkpoint = value;
    } else if (key == "--batch") {
      f.batch = std::stoll(value);
    } else if (key == "--exact") {
      f.exact = true;
    } else if (key == "--expect-fused") {
      f.expect_fused = true;
    } else if (key == "--weight-dtype") {
      f.weight_dtype = ttsnn::parse_weight_dtype(value);
    } else {
      TTSNN_CHECK(false, "ttsnn_plan_lint: unknown flag '" << a << "'");
    }
  }
  TTSNN_CHECK(!f.config.empty(), "ttsnn_plan_lint: --config=FILE is required");
  TTSNN_CHECK(f.batch >= 1, "ttsnn_plan_lint: --batch must be >= 1");
  return f;
}

/// Compiles one architecture variant and prints its verified plan + memory
/// layout. Returns the lowering's fused-elementwise-op count so main can
/// enforce --expect-fused.
int lint_one(const ttsnn::ScenarioConfig& cfg, const LintFlags& flags,
             int64_t in_channels) {
  ttsnn::Rng rng(cfg.seed);
  ttsnn::ModulePtr net =
      ttsnn::build_scenario_model(cfg, in_channels, rng);
  if (cfg.tt_mode != "none") {
    ttsnn::factorize_network(*net,
                             ttsnn::scenario_factorize_options(cfg), rng);
  }
  net->set_training(false);

  ttsnn::infer::CompileOptions copts;
  copts.weight_dtype = flags.weight_dtype;
  if (flags.exact) {
    copts.merge_tt = false;
    copts.fold_batchnorm = false;
  }
  ttsnn::infer::Engine engine =
      flags.checkpoint.empty()
          ? ttsnn::infer::compile(*net, copts)
          : ttsnn::infer::compile_checkpoint(*net, flags.checkpoint, copts);

  const ttsnn::Shape input{cfg.timesteps, flags.batch, in_channels,
                           cfg.image_size, cfg.image_size};
  std::printf("== %s / %s / %s lowering ==\n", cfg.model.c_str(),
              cfg.tt_mode.c_str(), flags.exact ? "exact" : "merged");
  std::printf("plan verified: %zu ops, %d registers\n", engine.num_ops(),
              engine.num_regs());
  std::printf("%s\n", engine.summary(input).c_str());

  int fused = 0;
  for (const ttsnn::infer::Op& op : engine.ops()) {
    switch (op.kind) {
      case ttsnn::infer::Op::Kind::kConvLif:
      case ttsnn::infer::Op::Kind::kAffineLif:
      case ttsnn::infer::Op::Kind::kAddLif:
      case ttsnn::infer::Op::Kind::kAffineAdd:
        ++fused;
        break;
      default:
        break;
    }
  }
  TTSNN_CHECK(!flags.expect_fused || fused > 0,
              "ttsnn_plan_lint: --expect-fused, but the "
                  << cfg.tt_mode << "/" << (flags.exact ? "exact" : "merged")
                  << " lowering carries no fused elementwise ops");

  if (flags.weight_dtype != ttsnn::WeightDtype::kF32 && !flags.exact) {
    // The exact lowering keeps everything f32 by design (TT cores are pinned
    // to the bit-exact path); for the merged one, a census with zero
    // quantized ops means the requested dtype silently did nothing.
    int quantized = 0;
    for (const ttsnn::infer::Op& op : engine.ops()) {
      quantized += (op.plane.quantized() || op.half_plane.quantized()) ? 1 : 0;
    }
    TTSNN_CHECK(quantized > 0,
                "ttsnn_plan_lint: --weight-dtype="
                    << ttsnn::weight_dtype_name(flags.weight_dtype)
                    << ", but the " << cfg.tt_mode
                    << " lowering quantized zero ops");
  }
  return fused;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  for (const std::string& a : args) {
    if (a == "--help" || a == "-h") {
      print_help();
      return 0;
    }
  }
  try {
    const LintFlags flags = parse_flags(args);
    ttsnn::ScenarioConfig cfg = ttsnn::load_scenario_file(flags.config);
    const int64_t in_c =
        ttsnn::make_scenario_dataset(cfg, /*train=*/false)->channels();

    if (!flags.checkpoint.empty()) {
      // Trained weights constrain the architecture: lint exactly the config.
      lint_one(cfg, flags, in_c);
    } else {
      // Plan structure is weight-value independent: lint every mode.
      for (const char* mode : {"stt", "ptt", "htt", "none"}) {
        cfg.tt_mode = mode;
        lint_one(cfg, flags, in_c);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ttsnn_plan_lint: %s\n", e.what());
    return 1;
  }
  return 0;
}
