// Table IV reproduction: HTT ablation over the placement of full (F) and
// half (H) sub-convolutions across T = 4 timesteps on CIFAR10/ResNet18.
//
// Paper: FFHH 91.19 > FHFH 90.89 ~ HHFF 90.94 > HFHF 90.68 — placing full
// sub-convolutions in the EARLY timesteps wins, consistent with SNNs
// capturing most information early [23].

#include <cstdio>

#include "bench_util.h"
#include "data/synthetic_image.h"

using namespace ttsnn;

int main() {
  std::printf("=== Table IV: order of full/half sub-convolutions in HTT "
              "(T = 4) ===\n");
  std::printf("paper: FFHH 91.19 | HHFF 90.94 | HFHF 90.68 | FHFH 90.89\n");

  const struct {
    const char* name;
    std::vector<bool> schedule;
  } cases[] = {
      {"FFHH", {true, true, false, false}},
      {"HHFF", {false, false, true, true}},
      {"HFHF", {false, true, false, true}},
      {"FHFH", {true, false, true, false}},
  };

  SyntheticImageDataset train({.num_classes = 5, .samples_per_class = 24,
                               .size = 12, .seed = 900});
  SyntheticImageDataset test({.num_classes = 5, .samples_per_class = 10,
                              .size = 12, .seed = 901});

  for (const auto& c : cases) {
    BenchSetup setup;
    setup.make_model = make_ms_resnet18;
    setup.model = {.in_channels = 3, .num_classes = 5, .base_width = 10,
                   .timesteps = 4};
    setup.input_size = 12;
    setup.train = {.epochs = 8, .batch_size = 16, .timesteps = 4, .lr = 0.1F,
                   .seed = 11};
    setup.htt_schedule = c.schedule;
    BenchRun run = run_mode(BenchMode::kHTT, setup, train, test);
    std::printf("%-5s accuracy %5.1f%%   time %6.4f s/batch\n", c.name,
                100.0 * run.accuracy, run.batch_time_s);
  }
  return 0;
}
