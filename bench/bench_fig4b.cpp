// Fig. 4(b) reproduction: training-energy improvement of PTT and HTT over
// STT on the PROPOSED multi-cluster accelerator (Sec. IV) for ResNet18 and
// ResNet34 at paper scale.
//
// Paper: PTT saves 28.3% and HTT 43.5% relative to STT, because the
// 4-cluster pipelined design runs the two strips concurrently and merges
// them in the adder array instead of bouncing intermediates through buffers.

#include <cstdio>

#include "core/factorize.h"
#include "core/flops.h"
#include "core/models.h"
#include "core/paper_config.h"
#include "hw/multi_cluster.h"

using namespace ttsnn;

namespace {

HwWorkload make_workload(bool resnet34, TTMode mode, bool parallel) {
  Rng rng(1);
  ModelConfig cfg;
  cfg.base_width = 64;
  cfg.in_channels = resnet34 ? 2 : 3;
  cfg.num_classes = resnet34 ? 101 : 10;
  cfg.timesteps = resnet34 ? 6 : 4;
  ModulePtr net =
      resnet34 ? make_ms_resnet34(cfg, rng) : make_ms_resnet18(cfg, rng);
  FactorizeOptions f;
  f.mode = mode;
  f.explicit_ranks = resnet34 ? paper_ranks_resnet34() : paper_ranks_resnet18();
  f.init_from_dense = false;
  if (mode == TTMode::kHTT) {
    f.htt_schedule.assign(static_cast<size_t>(cfg.timesteps), true);
    f.htt_schedule[static_cast<size_t>(cfg.timesteps) - 1] = false;
    f.htt_schedule[static_cast<size_t>(cfg.timesteps) - 2] = false;
  }
  factorize_network(*net, f, rng);
  const int64_t input = resnet34 ? 48 : 32;
  ModelStats stats = analyze_model(*net, cfg.in_channels, input, input);
  WorkloadOptions w;
  w.timesteps = cfg.timesteps;
  w.parallel_strips = parallel;
  return build_workload(resnet34 ? "ResNet34" : "ResNet18", stats, w);
}

void run_arch(bool resnet34) {
  const char* name = resnet34 ? "ResNet34" : "ResNet18";
  EnergyReport stt =
      simulate_multi_cluster(make_workload(resnet34, TTMode::kSTT, false));
  EnergyReport ptt =
      simulate_multi_cluster(make_workload(resnet34, TTMode::kPTT, true));
  EnergyReport htt =
      simulate_multi_cluster(make_workload(resnet34, TTMode::kHTT, true));
  std::printf("%-9s STT %10.1f uJ | PTT %10.1f uJ (-%4.1f%%) | HTT %10.1f uJ "
              "(-%.1f%%)\n",
              name, stt.total_pj() / 1e6, ptt.total_pj() / 1e6,
              100.0 * (1.0 - ptt.total_pj() / stt.total_pj()),
              htt.total_pj() / 1e6,
              100.0 * (1.0 - htt.total_pj() / stt.total_pj()));
}

}  // namespace

int main() {
  std::printf("=== Fig. 4(b): PTT / HTT energy improvement over STT on the "
              "PROPOSED multi-cluster accelerator ===\n");
  std::printf("paper: PTT -28.3%%, HTT -43.5%% (vs STT)\n");
  run_arch(false);
  run_arch(true);
  return 0;
}
