// Fig. 5 reproduction: performance trends of the TT modules across
// timesteps T in {2, 4, 6} on CIFAR10/ResNet18 —
//   (a) accuracy per mode per T, (b) training time per mode per T.
//
// Paper trends: PTT holds the highest accuracy at every T; HTT is the
// fastest at every T; training time grows roughly linearly with T.
// Accuracy is averaged over three seeds (tiny-scale runs are noisy).

#include <cstdio>

#include "bench_util.h"
#include "data/synthetic_image.h"

using namespace ttsnn;

int main() {
  std::printf("=== Fig. 5: TT modules across timesteps (scaled ResNet18, "
              "synthetic CIFAR10 stand-in, mean of 3 seeds) ===\n");
  std::printf("paper: PTT accuracy-best and HTT fastest at every T\n");
  std::printf("%-4s %-6s %-10s %-12s\n", "T", "mode", "accuracy", "s/batch");

  SyntheticImageDataset train({.num_classes = 5, .samples_per_class = 24,
                               .size = 12, .seed = 700});
  SyntheticImageDataset test({.num_classes = 5, .samples_per_class = 8,
                              .size = 12, .seed = 701});

  for (int64_t t : {2, 4, 6}) {
    for (BenchMode mode : {BenchMode::kSTT, BenchMode::kPTT, BenchMode::kHTT}) {
      double acc = 0.0;
      double time_s = 0.0;
      const uint64_t seeds[] = {23, 24, 25};
      for (uint64_t seed : seeds) {
        BenchSetup setup;
        setup.make_model = make_ms_resnet18;
        setup.model = {.in_channels = 3, .num_classes = 5, .base_width = 10,
                       .timesteps = t};
        setup.input_size = 12;
        setup.train = {.epochs = 8, .batch_size = 16, .timesteps = t,
                       .lr = 0.1F, .seed = seed};
        setup.model_seed = seed;
        // First half of the steps full, second half half (paper policy).
        setup.htt_schedule.assign(static_cast<size_t>(t), false);
        for (int64_t i = 0; i < t / 2; ++i) {
          setup.htt_schedule[static_cast<size_t>(i)] = true;
        }
        BenchRun run = run_mode(mode, setup, train, test);
        acc += run.accuracy / 3.0;
        time_s += run.batch_time_s / 3.0;
      }
      std::printf("%-4lld %-6s %6.1f%%    %8.4f\n", static_cast<long long>(t),
                  bench_mode_name(mode), 100.0 * acc, time_s);
    }
  }
  return 0;
}
