// Table II reproduction: accuracy / training time / #params / FLOPs for
// baseline, STT, PTT, HTT on CIFAR10 (ResNet18, T=4), CIFAR100 (ResNet18,
// T=4) and N-Caltech101 (ResNet34, T=6).
//
// Two complementary parts (DESIGN.md §2):
//  - PART 1 is exact arithmetic at PAPER SCALE: full ResNet18/34 shapes with
//    the published VBMF rank lists — reproduces the params/FLOPs columns.
//  - PART 2 trains width-scaled models on the synthetic dataset stand-ins —
//    reproduces the accuracy/training-time TRENDS (who wins, by how much).

#include <cstdio>

#include "bench_util.h"
#include "core/paper_config.h"
#include "data/synthetic_event.h"
#include "data/synthetic_image.h"

using namespace ttsnn;

namespace {

void paper_scale_rows(const char* dataset, const PaperModel& model,
                      const std::vector<int64_t>& ranks, double htt_util) {
  PaperCounts base = paper_baseline_counts(model);
  PaperCounts stt = paper_tt_counts(model, ranks, TTMode::kSTT);
  PaperCounts ptt = paper_tt_counts(model, ranks, TTMode::kPTT);
  PaperCounts htt = paper_tt_counts(model, ranks, TTMode::kHTT, htt_util);
  auto row = [&](const char* mode, const PaperCounts& c) {
    std::printf("%-14s %-9s params %6.2f M (%5.2fx)   FLOPs %6.3f G (%5.2fx)\n",
                dataset, mode, c.params_m, base.params_m / c.params_m,
                c.flops_g, base.flops_g / c.flops_g);
  };
  row("baseline", base);
  row("STT", stt);
  row("PTT", ptt);
  row("HTT", htt);
}

void measured_cifar(const char* name, uint64_t seed, int64_t classes) {
  BenchSetup setup;
  setup.make_model = make_ms_resnet18;
  setup.model = {.in_channels = 3, .num_classes = classes, .base_width = 10,
                 .timesteps = 4};
  setup.input_size = 12;
  setup.train = {.epochs = 8, .batch_size = 16, .timesteps = 4, .lr = 0.1F,
                 .seed = seed};
  setup.htt_schedule = {true, true, false, false};  // Sec. V-A: t = 3, 4 half

  SyntheticImageDataset train({.num_classes = classes, .samples_per_class = 24,
                               .size = 12, .seed = seed});
  SyntheticImageDataset test({.num_classes = classes, .samples_per_class = 8,
                              .size = 12, .seed = seed + 1});

  BenchRun base = run_mode(BenchMode::kBaseline, setup, train, test);
  print_run_row(name, base, base);
  for (BenchMode m : {BenchMode::kSTT, BenchMode::kPTT, BenchMode::kHTT}) {
    print_run_row(name, run_mode(m, setup, train, test), base);
  }
}

void measured_ncaltech() {
  BenchSetup setup;
  setup.make_model = make_ms_resnet34;
  setup.model = {.in_channels = 2, .num_classes = 5, .base_width = 8,
                 .timesteps = 6};
  setup.input_size = 12;
  setup.train = {.epochs = 8, .batch_size = 16, .timesteps = 6, .lr = 0.1F,
                 .seed = 77};
  setup.htt_schedule = {true, true, true, true, false, false};  // t = 5, 6 half

  SyntheticEventDataset train({.num_classes = 5, .samples_per_class = 24,
                               .size = 12, .seed = 500});
  SyntheticEventDataset test({.num_classes = 5, .samples_per_class = 8,
                              .size = 12, .seed = 600});

  BenchRun base = run_mode(BenchMode::kBaseline, setup, train, test);
  print_run_row("n-caltech101*", base, base);
  for (BenchMode m : {BenchMode::kSTT, BenchMode::kPTT, BenchMode::kHTT}) {
    print_run_row("n-caltech101*", run_mode(m, setup, train, test), base);
  }
}

}  // namespace

int main() {
  std::printf("=== Table II, PART 1: paper-scale params/FLOPs (exact "
              "arithmetic, published VBMF ranks) ===\n");
  std::printf("paper reference: CIFAR10 TT 6.13x params 5.97x FLOPs; HTT "
              "7.88x FLOPs; N-Caltech 7.98x / 9.25x, HTT 10.75x\n");
  paper_scale_rows("cifar10", paper_resnet18_cifar(10), paper_ranks_resnet18(),
                   0.5);
  paper_scale_rows("cifar100", paper_resnet18_cifar(100),
                   paper_ranks_resnet18(), 0.5);
  paper_scale_rows("n-caltech101", paper_resnet34_ncaltech(),
                   paper_ranks_resnet34(), 4.0 / 6.0);

  std::printf("\n=== Table II, PART 2: measured training runs (width-scaled "
              "models, synthetic stand-in datasets) ===\n");
  std::printf("paper trends: PTT best TT accuracy; time baseline > STT > PTT "
              "> HTT; params equal across TT modes\n");
  // cifar100* keeps the CIFAR10/100 relationship: same backbone, 2x the
  // class count (scaled from 10x to keep the synthetic task learnable).
  measured_cifar("cifar10*", 1000, 5);
  measured_cifar("cifar100*", 2000, 10);
  measured_ncaltech();
  std::printf("\n(*) scaled substitution datasets — see DESIGN.md §3.\n");
  return 0;
}
