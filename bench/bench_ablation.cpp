// Design-choice ablations beyond the paper's tables (DESIGN.md §2):
//   A. TT-rank sweep — accuracy vs parameter count trade-off.
//   B. Surrogate gradient family — rectangle (paper) vs triangle/atan/sigmoid.
//   C. detach_reset — detaching the LIF reset from the gradient path.
//   D. PTT branch threading — serial vs two-thread strip execution.

#include <cstdio>

#include "bench_util.h"
#include "data/synthetic_image.h"
#include "hw/multi_cluster.h"
#include "hw/sata_baseline.h"
#include "nn/lif.h"

using namespace ttsnn;

namespace {

SyntheticImageDataset make_train() {
  return SyntheticImageDataset({.num_classes = 5, .samples_per_class = 20,
                                .size = 12, .seed = 800});
}
SyntheticImageDataset make_test() {
  return SyntheticImageDataset({.num_classes = 5, .samples_per_class = 8,
                                .size = 12, .seed = 801});
}

BenchSetup base_setup() {
  BenchSetup setup;
  setup.make_model = make_ms_resnet18;
  setup.model = {.in_channels = 3, .num_classes = 5, .base_width = 10,
                 .timesteps = 4};
  setup.input_size = 12;
  setup.train = {.epochs = 6, .batch_size = 16, .timesteps = 4, .lr = 0.08F,
                 .seed = 9};
  return setup;
}

}  // namespace

int main() {
  SyntheticImageDataset train = make_train();
  SyntheticImageDataset test = make_test();

  std::printf("=== A. TT-rank sweep (PTT): accuracy vs parameters ===\n");
  for (double frac : {0.125, 0.25, 0.5, 1.0}) {
    BenchSetup setup = base_setup();
    setup.rank_fraction = frac;
    BenchRun run = run_mode(BenchMode::kPTT, setup, train, test);
    std::printf("rank_fraction %.3f: acc %5.1f%%  params %.4f M  FLOPs %.4f G\n",
                frac, 100.0 * run.accuracy, run.params_m, run.flops_g);
  }

  std::printf("\n=== B. Surrogate gradient family (dense baseline) ===\n");
  const struct {
    const char* name;
    Surrogate kind;
  } surrogates[] = {{"rectangle", Surrogate::kRectangle},
                    {"triangle", Surrogate::kTriangle},
                    {"atan", Surrogate::kAtan},
                    {"sigmoid", Surrogate::kSigmoid}};
  for (const auto& s : surrogates) {
    BenchSetup setup = base_setup();
    setup.model.lif.surrogate = s.kind;
    BenchRun run = run_mode(BenchMode::kBaseline, setup, train, test);
    std::printf("%-10s acc %5.1f%%\n", s.name, 100.0 * run.accuracy);
  }

  std::printf("\n=== C. detach_reset (dense baseline) ===\n");
  for (bool detach : {true, false}) {
    BenchSetup setup = base_setup();
    setup.model.lif.detach_reset = detach;
    BenchRun run = run_mode(BenchMode::kBaseline, setup, train, test);
    std::printf("detach_reset=%-5s acc %5.1f%%\n", detach ? "true" : "false",
                100.0 * run.accuracy);
  }

  std::printf("\n=== D. Spike density vs training energy (both accelerators, "
              "paper-scale ResNet18 PTT) ===\n");
  {
    Rng rng(12);
    ModelConfig cfg;
    cfg.base_width = 64;
    cfg.num_classes = 10;
    cfg.timesteps = 4;
    ModulePtr net = make_ms_resnet18(cfg, rng);
    FactorizeOptions f;
    f.mode = TTMode::kPTT;
    f.use_vbmf = false;
    f.rank_fraction = 0.4;
    f.init_from_dense = false;
    factorize_network(*net, f, rng);
    ModelStats stats = analyze_model(*net, 3, 32, 32);
    for (double density : {0.05, 0.15, 0.3, 0.6, 1.0}) {
      WorkloadOptions w;
      w.timesteps = 4;
      w.spike_density = density;
      HwWorkload wl = build_workload("r18", stats, w);
      std::printf("density %.2f: existing %8.1f uJ   proposed %8.1f uJ\n",
                  density, simulate_sata(wl).total_pj() / 1e6,
                  simulate_multi_cluster(wl).total_pj() / 1e6);
    }
  }

  std::printf("\n=== E. PTT strip threading: serial vs parallel ===\n");
  {
    Rng rng(4);
    BenchSetup setup = base_setup();
    for (bool parallel : {false, true}) {
      ModulePtr net = setup.make_model(setup.model, rng);
      FactorizeOptions f;
      f.mode = TTMode::kPTT;
      f.use_vbmf = false;
      f.rank_fraction = setup.rank_fraction;
      f.parallel_branches = parallel;
      factorize_network(*net, f, rng);
      Trainer trainer(*net, train, test, setup.train);
      const double t = trainer.time_batch(5);
      std::printf("parallel_branches=%-5s %8.4f s/batch\n",
                  parallel ? "true" : "false", t);
    }
  }
  return 0;
}
