// Serving bench: throughput and latency of the compiled inference stack.
//
// Single-engine configurations over the same factorized (PTT) MS-ResNet:
//   module      — looping eval-mode Module::forward, one request at a time
//                 (the only serving story before the train/infer split)
//   merged/1    — Engine with merged dense kernels (Algorithm 1 lines
//                 20-22). Reference only: merging trades more MACs for
//                 accumulate-only spike hardware, so on CPU it loses FLOPs
//   engine/1    — Engine::run on the exact (unmerged) TT plan, batch 1:
//                 same FLOPs as the module, minus caching/allocation
//                 overhead and with the pointwise-conv im2col skip
//   engine/B    — Engine::run over pre-batched requests (upper bound for
//                 the micro-batcher at batch size B)
//   server      — infer::Server with concurrent clients; requests are
//                 coalesced into micro-batches under a latency deadline
//
// Router load sweep (the scale-out story): a closed-loop load generator —
// configurable client count (--clients), shape-mix ratio (--mix), optional
// per-run request budget (--requests) — drives infer::Router at shard counts
// 1 / 2 / 4, unpaced (saturation) and paced at target QPS fractions of the
// measured single-engine rate, so the shard count -> throughput / p99 knee
// lands in BENCH_serving.json. Paced latencies are measured from each
// request's *scheduled* send time, so queue build-up past the knee shows up
// in p99 instead of being hidden by coordinated omission.
//
// With --mixed-resolutions, a plan-cache cold-start sweep runs as well: a
// freshly compiled engine is flooded with many input resolutions, and the
// router_cache/* rows separate each shape's one-time first-miss compile
// latency from its warm p50/p99, compare mixed-warm p99 against a
// single-shape flood on the same router, and show a never-seen shape's
// compile not inflating concurrent warm traffic.
//
// With --weight-dtype=bf16|int8, a serving_dtype/* section compares the
// requested typed-weight-plane engine against the f32 merged plan on the
// same requests: batch-1 p50/p99 plus the per-dtype unique weight bytes
// (the compression the quantization pass actually delivered, not a model).
//
// Reports requests/s plus p50/p99 end-to-end latency per request.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/bench_json.h"
#include "core/factorize.h"
#include "core/models.h"
#include "infer/engine.h"
#include "infer/router.h"
#include "infer/server.h"
#include "tensor/ops.h"
#include "util/common.h"
#include "util/failpoint.h"

namespace ttsnn {
namespace {

constexpr int64_t kTimesteps = 4;
constexpr int64_t kInputSize = 12;
constexpr int64_t kRequests = 96;
constexpr int64_t kBatch = 8;
// More clients than one batch so several batches are in flight at once.
constexpr int kDefaultClients = 16;

struct LatencyStats {
  double throughput = 0.0;  ///< requests / s
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

LatencyStats summarize(std::vector<double> latencies_s, double total_s) {
  LatencyStats s;
  const size_t n = latencies_s.size();
  if (n == 0) return s;  // an empty run reports zeros instead of faulting
  std::sort(latencies_s.begin(), latencies_s.end());
  s.throughput = static_cast<double>(n) / total_s;
  s.p50_ms = latencies_s[n / 2] * 1e3;
  s.p99_ms = latencies_s[bench::p99_index(n)] * 1e3;
  return s;
}

bench::Row& report(bench::Report& out, const std::string& name,
                   const LatencyStats& s) {
  std::printf("  %-22s %10.1f req/s   p50 %7.2f ms   p99 %7.2f ms\n",
              name.c_str(), s.throughput, s.p50_ms, s.p99_ms);
  return out.add(name)
      .num("req_per_s", s.throughput)
      .num("p50_ms", s.p50_ms)
      .num("p99_ms", s.p99_ms);
}

/// bench_serving's flags: the shared --out / --quick (bench::Args) plus the
/// load-generator knobs, hooked in through the shared parser.
struct ServingArgs {
  bench::Args base;
  int clients = kDefaultClients;
  double mix = 0.25;       ///< fraction of router requests using shape B
  int64_t requests = 0;    ///< per-run router request budget; 0 = auto
  /// Run the plan-cache cold-start sweep: a flood over many input
  /// resolutions against a freshly compiled engine, separating each shape's
  /// one-time compile latency from its warm p50/p99 (router_cache/* rows).
  bool mixed_resolutions = false;
  /// Run the fault-injection sweep (router_fault/* rows): a replica failing
  /// every batch must quarantine with traffic serving bit-identically on the
  /// survivors, deadline misses must fail fast with DeadlineError, and
  /// admission sheds must clear under client-side capped exponential
  /// backoff. Every drill proves every future resolves.
  bool fault = false;
  /// Non-empty: run the serving_dtype/* comparison of the f32 merged plan
  /// against this weight dtype ("bf16" or "int8"; "f32" compares the plan
  /// against itself, a sanity baseline).
  std::string weight_dtype;

  static ServingArgs parse(int argc, char** argv) {
    ServingArgs a;
    a.base = bench::Args::parse(
        argc, argv, "BENCH_serving.json", [&a](const std::string& arg) {
          try {
            if (arg.rfind("--clients=", 0) == 0) {
              a.clients = std::max(1, std::stoi(arg.substr(10)));
            } else if (arg.rfind("--mix=", 0) == 0) {
              a.mix = std::clamp(std::stod(arg.substr(6)), 0.0, 1.0);
            } else if (arg.rfind("--requests=", 0) == 0) {
              // 0 keeps the auto budget (see the field comment above).
              a.requests = std::max<int64_t>(0, std::stoll(arg.substr(11)));
            } else if (arg == "--mixed-resolutions") {
              a.mixed_resolutions = true;
            } else if (arg == "--fault") {
              a.fault = true;
            } else if (arg.rfind("--weight-dtype=", 0) == 0) {
              a.weight_dtype = arg.substr(15);
            } else {
              return false;
            }
          } catch (const std::exception&) {
            std::printf("bad value in %s, keeping the default\n", arg.c_str());
          }
          return true;
        });
    return a;
  }
};

/// Closed-loop load generator over a two-shape mix. Each client owns a
/// session key (so one client's same-shaped requests coalesce on one shard
/// while different clients spread across replicas) and submits its next
/// request as soon as the previous future resolves; with target_qps > 0 the
/// sends are additionally paced onto a fixed schedule and latency is counted
/// from the scheduled send time.
LatencyStats run_router_load(infer::Router& router, const Tensor& shape_a,
                             const Tensor& shape_b, int clients,
                             int64_t per_client, double mix, double target_qps,
                             double* total_s_out) {
  std::vector<std::vector<double>> lat(static_cast<size_t>(clients));
  const auto start = std::chrono::steady_clock::now();
  Timer total;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<double>& my = lat[static_cast<size_t>(c)];
      my.reserve(static_cast<size_t>(per_client));
      for (int64_t i = 0; i < per_client; ++i) {
        // Deterministic shape mix, spread evenly through the stream
        // (Bresenham-style: the B share crosses an integer boundary every
        // 1/mix requests, so any prefix of the stream carries ~mix B's).
        const int64_t idx = i * clients + c;
        const bool use_b =
            std::fmod(static_cast<double>(idx + 1) * mix, 1.0) < mix;
        auto sent = std::chrono::steady_clock::now();
        if (target_qps > 0.0) {
          const double interval_s = static_cast<double>(clients) / target_qps;
          const auto scheduled =
              start + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(
                              (static_cast<double>(i) +
                               static_cast<double>(c) / clients) *
                              interval_s));
          std::this_thread::sleep_until(scheduled);
          sent = scheduled;  // count schedule lag as latency (no omission)
        }
        router.infer(use_b ? shape_b : shape_a,
                     /*session=*/static_cast<uint64_t>(c));
        my.push_back(std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - sent)
                         .count());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double total_s = total.seconds();
  if (total_s_out != nullptr) *total_s_out = total_s;
  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  return summarize(std::move(all), total_s);
}

}  // namespace
}  // namespace ttsnn

int main(int argc, char** argv) {
  using namespace ttsnn;
  ServingArgs args = ServingArgs::parse(argc, argv);
  bench::Report json;

  Rng rng(7);
  ModelConfig cfg;
  cfg.in_channels = 3;
  cfg.num_classes = 10;
  cfg.base_width = 8;
  cfg.timesteps = kTimesteps;
  ModulePtr net = make_ms_resnet18(cfg, rng);
  FactorizeOptions fopts;
  fopts.mode = TTMode::kPTT;
  fopts.use_vbmf = false;
  fopts.rank_fraction = 0.4;
  factorize_network(*net, fopts, rng);

  // Move the BN statistics off init so the fold is non-trivial, then freeze.
  net->set_training(true);
  for (int i = 0; i < 2; ++i) {
    net->forward(Tensor::uniform({kTimesteps, kBatch, 3, kInputSize, kInputSize},
                                 rng));
  }
  net->clear_cache();
  net->set_training(false);

  // The serving plan keeps the TT pipeline unmerged: on CPU the factorized
  // convolutions are the FLOP-cheap path (merging exists for accumulate-only
  // spike hardware). BN still folds where time-invariant.
  infer::Engine engine =
      infer::compile(*net, {.merge_tt = false, .fold_batchnorm = true});
  infer::Engine merged = infer::compile(*net);
  std::printf("serving bench: MS-ResNet18 w=%lld T=%lld PTT, %lld requests, "
              "plan: %zu ops (merged: %zu)\n",
              static_cast<long long>(cfg.base_width),
              static_cast<long long>(kTimesteps),
              static_cast<long long>(kRequests), engine.num_ops(),
              merged.num_ops());

  std::vector<Tensor> requests;
  requests.reserve(kRequests);
  for (int64_t i = 0; i < kRequests; ++i) {
    requests.push_back(
        Tensor::uniform({kTimesteps, 3, kInputSize, kInputSize}, rng));
  }
  auto as_batch1 = [](const Tensor& x) {
    Shape s = x.shape();
    return x.reshape({s[0], 1, s[1], s[2], s[3]});
  };

  // --- module: sequential eval-mode Module::forward, batch 1 ---------------
  {
    std::vector<double> lat;
    lat.reserve(kRequests);
    Timer total;
    for (const Tensor& r : requests) {
      Timer t;
      net->forward(as_batch1(r));
      lat.push_back(t.seconds());
    }
    report(json, "module", summarize(std::move(lat), total.seconds()));
  }

  // --- merged/1: dense merged kernels (spike-hardware plan) on CPU ---------
  {
    std::vector<double> lat;
    lat.reserve(kRequests);
    Timer total;
    for (const Tensor& r : requests) {
      Timer t;
      merged.run(as_batch1(r));
      lat.push_back(t.seconds());
    }
    report(json, "merged/1", summarize(std::move(lat), total.seconds()));
  }

  // --- engine/1: compiled exact plan, still one request per run ------------
  LatencyStats engine1;
  {
    std::vector<double> lat;
    lat.reserve(kRequests);
    Timer total;
    for (const Tensor& r : requests) {
      Timer t;
      engine.run(as_batch1(r));
      lat.push_back(t.seconds());
    }
    engine1 = summarize(std::move(lat), total.seconds());
    report(json, "engine/1", engine1);
  }

  // --- engine/B: ideal pre-batched runs (micro-batching upper bound) -------
  {
    std::vector<double> lat;
    lat.reserve(kRequests);
    Timer total;
    for (int64_t base = 0; base < kRequests; base += kBatch) {
      Tensor batch({kTimesteps, kBatch, 3, kInputSize, kInputSize});
      const int64_t chw = 3 * kInputSize * kInputSize;
      for (int64_t j = 0; j < kBatch; ++j) {
        const float* src = requests[static_cast<size_t>(base + j)].data();
        for (int64_t t = 0; t < kTimesteps; ++t) {
          std::copy(src + t * chw, src + (t + 1) * chw,
                    batch.data() + (t * kBatch + j) * chw);
        }
      }
      Timer t;
      engine.run(batch);
      const double s = t.seconds();
      for (int64_t j = 0; j < kBatch; ++j) lat.push_back(s);
    }
    report(json, "engine/8", summarize(std::move(lat), total.seconds()));
  }

  // --- serving weight-dtype comparison: typed planes on the merged plan ----
  // Both engines run the merged lowering (the quantization-friendly one);
  // only the weight storage differs. Latency rows are informational — the
  // hard compression gates live in bench_micro_ops (deterministic bytes).
  if (!args.weight_dtype.empty()) {
    const WeightDtype dtype = parse_weight_dtype(args.weight_dtype);
    infer::Engine quant = infer::compile(*net, {.weight_dtype = dtype});
    std::printf("serving weight-dtype comparison (merged lowering)\n");
    const struct {
      const char* tag;
      const infer::Engine* e;
    } dtype_variants[] = {{"f32", &merged},
                          {weight_dtype_name(dtype), &quant}};
    for (const auto& v : dtype_variants) {
      std::vector<double> lat;
      lat.reserve(kRequests);
      v.e->run(as_batch1(requests[0]));  // warm: program cache + workspace
      Timer total;
      for (const Tensor& r : requests) {
        Timer t;
        v.e->run(as_batch1(r));
        lat.push_back(t.seconds());
      }
      const LatencyStats s = summarize(std::move(lat), total.seconds());
      const infer::WeightFootprint& fp = v.e->weight_footprint();
      report(json, std::string("serving_dtype/") + v.tag, s)
          .str("weight_dtype", v.tag)
          .num("weight_bytes", static_cast<double>(fp.total()))
          .num("weight_f32_bytes", static_cast<double>(fp.f32_bytes))
          .num("weight_bf16_bytes", static_cast<double>(fp.bf16_bytes))
          .num("weight_int8_bytes", static_cast<double>(fp.int8_bytes));
      std::printf("    weights: %lld bytes (f32 %lld, bf16 %lld, "
                  "int8+scales %lld)\n",
                  static_cast<long long>(fp.total()),
                  static_cast<long long>(fp.f32_bytes),
                  static_cast<long long>(fp.bf16_bytes),
                  static_cast<long long>(fp.int8_bytes));
    }
  }

  // --- server: concurrent clients, micro-batched under a deadline ----------
  {
    infer::Server server(engine, {.max_batch = kBatch, .max_delay_ms = 2.0,
                                  .num_dispatchers = 2});
    std::vector<double> lat(kRequests, 0.0);
    std::vector<std::thread> clients;
    Timer total;
    for (int c = 0; c < kDefaultClients; ++c) {
      clients.emplace_back([&, c] {
        for (int64_t i = c; i < kRequests; i += kDefaultClients) {
          Timer t;
          server.infer(requests[static_cast<size_t>(i)]);
          lat[static_cast<size_t>(i)] = t.seconds();
        }
      });
    }
    for (std::thread& t : clients) t.join();
    const double total_s = total.seconds();
    infer::ServerStats stats = server.stats();
    report(json, "server", summarize(lat, total_s));
    std::printf("  server coalescing: %lld requests in %lld batches "
                "(mean %.1f, max %lld)\n",
                static_cast<long long>(stats.requests),
                static_cast<long long>(stats.batches), stats.mean_batch(),
                static_cast<long long>(stats.max_batch));
    json.add("server_coalescing")
        .num("requests", static_cast<double>(stats.requests))
        .num("batches", static_cast<double>(stats.batches))
        .num("mean_batch", stats.mean_batch());
  }

  // --- router shard sweep: closed-loop load generator over a shape mix -----
  // Shape A is the image-pipeline size, shape B a smaller mixed-scenario
  // shape (what used to head-of-line block on the single-queue server). One
  // sample per shape rides every request: serving latency here is batching +
  // dispatch, and the fixed content lets the sweep pin bit-identity against
  // direct Engine::run below.
  {
    Rng load_rng(17);
    Tensor shape_a =
        Tensor::uniform({kTimesteps, 3, kInputSize, kInputSize}, load_rng);
    Tensor shape_b = Tensor::uniform({kTimesteps, 3, 8, 8}, load_rng);
    Tensor ref_a = engine.run(as_batch1(shape_a));
    Tensor ref_b = engine.run(as_batch1(shape_b));

    // Paced points bracket the measured single-engine rate so the knee
    // (queueing p99 blow-up) is visible on whatever machine runs this.
    std::vector<double> qps_factors;
    if (!args.base.quick) qps_factors = {0.5, 1.5, 3.0};
    const int64_t auto_budget = args.base.quick ? 48 : 128;
    const int64_t budget = args.requests > 0 ? args.requests : auto_budget;
    // Budgets divide evenly over the clients; `issued` is what actually runs
    // (and what the /load rows record), not the pre-rounding ask.
    const int64_t per_client = std::max<int64_t>(1, budget / args.clients);
    const int64_t issued = per_client * args.clients;
    double bitwise_max_diff = 0.0;

    for (int shards : {1, 2, 4}) {
      infer::Router router(engine, {.num_shards = shards,
                                    .max_batch = kBatch,
                                    .max_delay_ms = 2.0,
                                    .dispatchers_per_shard = 2});
      // Bit-identity of the routed path vs direct Engine::run, per shard
      // count (covers every replica-selection code path the sweep uses).
      bitwise_max_diff = std::max(
          bitwise_max_diff,
          max_abs_diff(router.infer(shape_a, 1).reshape({kTimesteps, -1}),
                       ref_a.reshape({kTimesteps, -1})));
      bitwise_max_diff = std::max(
          bitwise_max_diff,
          max_abs_diff(router.infer(shape_b, 2).reshape({kTimesteps, -1}),
                       ref_b.reshape({kTimesteps, -1})));

      const std::string base = "router/shards=" + std::to_string(shards);
      double total_s = 0.0;
      LatencyStats closed =
          run_router_load(router, shape_a, shape_b, args.clients, per_client,
                          args.mix, /*target_qps=*/0.0, &total_s);
      report(json, base, closed);
      json.add(base + "/load")
          .num("clients", args.clients)
          .num("mix", args.mix)
          .num("requests", static_cast<double>(issued))
          .num("total_s", total_s);

      for (double f : qps_factors) {
        const double qps = f * engine1.throughput;
        // Size each paced run to ~1.5 s of offered load (bounded), so slow
        // points do not dominate bench wall clock.
        const int64_t paced_budget =
            std::clamp<int64_t>(static_cast<int64_t>(qps * 1.5), 32, 256);
        const int64_t paced_per_client =
            std::max<int64_t>(1, paced_budget / args.clients);
        char suffix[32];
        std::snprintf(suffix, sizeof(suffix), "/qps=%.1fx", f);
        LatencyStats paced =
            run_router_load(router, shape_a, shape_b, args.clients,
                            paced_per_client, args.mix, qps, nullptr);
        report(json, base + suffix, paced).num("offered_qps", qps);
      }
      infer::RouterStats rstats = router.stats();
      std::printf("  %s: %lld requests, %lld batches (mean %.1f)\n",
                  base.c_str(), static_cast<long long>(rstats.requests),
                  static_cast<long long>(rstats.batches), rstats.mean_batch());
    }
    std::printf("  router bitwise max |diff| vs Engine::run: %g\n",
                bitwise_max_diff);
    json.add("router/bitwise").num("max_abs_diff", bitwise_max_diff);
    TTSNN_CHECK(bitwise_max_diff == 0.0,
                "routed outputs diverged from direct Engine::run");
  }

  // --- mixed-resolution flood: the plan-cache cold-start sweep -------------
  // A freshly compiled engine (empty program cache) is flooded with many
  // input resolutions. Per shape: the FIRST request pays its one compile
  // (cold), every later one rides the cached program (warm). The sweep pins
  // three properties: each cold shape pays only its own compile, mixed warm
  // traffic stays near single-shape latency, and cache-served outputs are
  // bitwise-equal to a separately compiled engine's direct runs.
  if (args.mixed_resolutions) {
    std::printf("mixed-resolution flood (program cache cold-start sweep)\n");
    infer::Engine fresh =
        infer::compile(*net, {.merge_tt = false, .fold_batchnorm = true});
    const std::vector<int64_t> resolutions =
        args.base.quick ? std::vector<int64_t>{8, 12}
                        : std::vector<int64_t>{8, 10, 12, 14, 16};
    const int64_t canonical = kInputSize;  // shared by both floods below
    infer::Router router(fresh, {.num_shards = 2, .max_batch = kBatch,
                                 .max_delay_ms = 2.0,
                                 .dispatchers_per_shard = 2});

    Rng mrng(23);
    std::vector<Tensor> samples;
    std::vector<Tensor> refs;  // from `engine`: same weights, separate cache
    samples.reserve(resolutions.size());
    for (int64_t r : resolutions) {
      samples.push_back(Tensor::uniform({kTimesteps, 3, r, r}, mrng));
      refs.push_back(engine.run(as_batch1(samples.back())));
    }

    double cold_total_ms = 0.0;
    double bitwise_max_diff = 0.0;
    std::vector<double> cold_ms(resolutions.size());
    for (size_t i = 0; i < resolutions.size(); ++i) {
      Timer t;
      Tensor out = router.infer(samples[i], /*session=*/i);
      cold_ms[i] = t.seconds() * 1e3;
      cold_total_ms += cold_ms[i];
      bitwise_max_diff =
          std::max(bitwise_max_diff,
                   max_abs_diff(out.reshape({kTimesteps, -1}),
                                refs[i].reshape({kTimesteps, -1})));
    }

    // Warm per-shape latencies: sequential probes after the cold pass, so
    // every number is pure cached-program serving (batching + dispatch).
    const int64_t warm_probes = args.base.quick ? 12 : 32;
    for (size_t i = 0; i < resolutions.size(); ++i) {
      std::vector<double> lat;
      lat.reserve(static_cast<size_t>(warm_probes));
      Timer total;
      for (int64_t k = 0; k < warm_probes; ++k) {
        Timer t;
        router.infer(samples[i], /*session=*/i);
        lat.push_back(t.seconds());
      }
      LatencyStats warm = summarize(std::move(lat), total.seconds());
      const std::string name = "router_cache/shape=" +
                               std::to_string(resolutions[i]) + "x" +
                               std::to_string(resolutions[i]);
      std::printf("  %-22s cold %7.2f ms   warm p50 %7.2f ms   p99 %7.2f ms\n",
                  name.c_str(), cold_ms[i], warm.p50_ms, warm.p99_ms);
      json.add(name)
          .num("cold_first_ms", cold_ms[i])
          .num("warm_p50_ms", warm.p50_ms)
          .num("warm_p99_ms", warm.p99_ms)
          .num("warm_req_per_s", warm.throughput);
    }

    // Concurrent floods over the SAME router (cache fully warm): every
    // resolution at once vs the canonical shape alone, same client count.
    // Per-shape isolation means the mixed p99 should sit near the single-
    // shape p99 instead of multiplying with the number of resident shapes.
    auto flood_p99 = [&](const std::vector<size_t>& shape_idx) {
      const int64_t per_client = args.base.quick ? 6 : 8;
      const int clients = std::max<int>(args.clients,
                                        static_cast<int>(shape_idx.size()));
      std::vector<std::vector<double>> lat(static_cast<size_t>(clients));
      std::vector<std::thread> threads;
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          const Tensor& x =
              samples[shape_idx[static_cast<size_t>(c) % shape_idx.size()]];
          for (int64_t k = 0; k < per_client; ++k) {
            Timer t;
            router.infer(x, /*session=*/static_cast<uint64_t>(c));
            lat[static_cast<size_t>(c)].push_back(t.seconds());
          }
        });
      }
      for (std::thread& t : threads) t.join();
      std::vector<double> all;
      for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
      return summarize(std::move(all), 1.0);  // only the percentiles matter
    };
    std::vector<size_t> all_idx(resolutions.size());
    for (size_t i = 0; i < all_idx.size(); ++i) all_idx[i] = i;
    const size_t canon_idx = static_cast<size_t>(
        std::find(resolutions.begin(), resolutions.end(), canonical) -
        resolutions.begin());
    LatencyStats single = flood_p99({canon_idx % resolutions.size()});
    LatencyStats mixed = flood_p99(all_idx);
    const double ratio = single.p99_ms > 0.0 ? mixed.p99_ms / single.p99_ms : 0.0;
    std::printf("  router_cache/mixed_warm p99 %.2f ms vs single-shape %.2f ms "
                "(%.2fx)\n",
                mixed.p99_ms, single.p99_ms, ratio);
    json.add("router_cache/single_shape")
        .num("p50_ms", single.p50_ms)
        .num("p99_ms", single.p99_ms);
    json.add("router_cache/mixed_warm")
        .num("p50_ms", mixed.p50_ms)
        .num("p99_ms", mixed.p99_ms)
        .num("p99_vs_single_shape", ratio);

    // Warm-during-cold: while the canonical shape floods, a NEVER-seen
    // resolution arrives. Its compile runs outside the cache lock, so the
    // warm stream's p99 must not absorb the cold shape's first-miss cost.
    {
      const int64_t cold_res = args.base.quick ? 20 : 24;
      Tensor cold_x = Tensor::uniform({kTimesteps, 3, cold_res, cold_res}, mrng);
      Tensor cold_ref = engine.run(as_batch1(cold_x));
      std::atomic<bool> stop{false};
      std::vector<double> warm_lat;
      std::mutex warm_mu;
      std::vector<std::thread> warm_clients;
      for (int c = 0; c < 4; ++c) {
        warm_clients.emplace_back([&, c] {
          while (!stop.load(std::memory_order_relaxed)) {
            Timer t;
            router.infer(samples[canon_idx], static_cast<uint64_t>(c));
            const double s = t.seconds();
            std::lock_guard<std::mutex> lock(warm_mu);
            warm_lat.push_back(s);
          }
        });
      }
      Timer cold_t;
      Tensor cold_out = router.infer(cold_x, /*session=*/99);
      const double cold_during_ms = cold_t.seconds() * 1e3;
      stop.store(true);
      for (std::thread& t : warm_clients) t.join();
      bitwise_max_diff =
          std::max(bitwise_max_diff,
                   max_abs_diff(cold_out.reshape({kTimesteps, -1}),
                                cold_ref.reshape({kTimesteps, -1})));
      LatencyStats during = summarize(warm_lat, 1.0);
      std::printf("  router_cache/warm_during_cold p99 %.2f ms while a "
                  "%lldx%lld first-miss compiled (%.2f ms)\n",
                  during.p99_ms, static_cast<long long>(cold_res),
                  static_cast<long long>(cold_res), cold_during_ms);
      json.add("router_cache/warm_during_cold")
          .num("warm_p99_ms", during.p99_ms)
          .num("cold_first_ms", cold_during_ms);
    }

    infer::RouterStats rstats = router.stats();
    std::printf("  router_cache/stats: %lld shapes, %lld bytes, %lld hits, "
                "%lld misses, %lld evictions, %lld steals, %lld shed\n",
                static_cast<long long>(rstats.cache_shapes),
                static_cast<long long>(rstats.cache_bytes),
                static_cast<long long>(rstats.cache_hits),
                static_cast<long long>(rstats.cache_misses),
                static_cast<long long>(rstats.cache_evictions),
                static_cast<long long>(rstats.steals),
                static_cast<long long>(rstats.shed));
    json.add("router_cache/stats")
        .num("shapes", static_cast<double>(rstats.cache_shapes))
        .num("bytes", static_cast<double>(rstats.cache_bytes))
        .num("hits", static_cast<double>(rstats.cache_hits))
        .num("misses", static_cast<double>(rstats.cache_misses))
        .num("evictions", static_cast<double>(rstats.cache_evictions))
        .num("cold_total_ms", cold_total_ms);
    json.add("router_cache/bitwise").num("max_abs_diff", bitwise_max_diff);
    TTSNN_CHECK(bitwise_max_diff == 0.0,
                "cache-served outputs diverged from a fresh engine's runs");
  }

  // --- fault sweep: the reliability layer under deterministic injection ----
  // Three drills, each over the same fixed sample so served outputs can be
  // pinned bit-identical against direct Engine::run. The invariant every
  // drill enforces (with a bounded wait, so a hang is a failure, not a
  // stall): EVERY submitted future resolves — with a value or a typed error.
  if (args.fault) {
    std::printf("fault sweep (deterministic failpoint injection)\n");
    Rng frng(31);
    Tensor fx = Tensor::uniform({kTimesteps, 3, kInputSize, kInputSize}, frng);
    Tensor fref = engine.run(as_batch1(fx));
    const auto flat = [&](Tensor t) { return t.reshape({kTimesteps, -1}); };

    // (a) replica down: replica 0 fails EVERY batch (router.dispatch.0
    // armed every:1). After at most quarantine_after failed batches it must
    // quarantine; from then on 100% of traffic serves on the survivor,
    // bit-identically. Disarming lets a probe re-admit it.
    {
      infer::Router router(engine, {.num_shards = 2,
                                    .max_batch = 4,
                                    .max_delay_ms = 1.0,
                                    .dispatchers_per_shard = 1,
                                    .quarantine_after = 2,
                                    .probe_interval_ms = 10.0});
      failpoint::arm("router.dispatch.0", "every:1");
      // A session whose home is the failing replica, so the drill exercises
      // the full path: fail -> quarantine -> re-route -> probe -> re-admit.
      uint64_t hot_session = 0;
      while (router.shard_for(fx.shape(), hot_session) != 0) ++hot_session;

      int64_t pre_errors = 0;
      int pre_attempts = 0;
      while (router.stats().quarantines == 0 && pre_attempts < 32) {
        ++pre_attempts;
        try {
          router.infer(fx, hot_session);
        } catch (const Error&) {
          ++pre_errors;
        }
      }
      TTSNN_CHECK(router.stats().quarantines >= 1,
                  "fault drill: failing replica was never quarantined");

      const int64_t n = args.base.quick ? 32 : 96;
      std::vector<std::future<Tensor>> futs;
      futs.reserve(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        futs.push_back(router.submit(fx, hot_session));
      }
      int64_t served = 0;
      double diff = 0.0;
      for (auto& f : futs) {
        TTSNN_CHECK(
            f.wait_for(std::chrono::seconds(30)) == std::future_status::ready,
            "fault drill: a future did not resolve");
        diff = std::max(diff, max_abs_diff(flat(f.get()), flat(fref)));
        ++served;  // post-quarantine traffic must never error
      }
      TTSNN_CHECK(diff == 0.0,
                  "fault drill: survivor outputs diverged from Engine::run");

      failpoint::disarm("router.dispatch.0");
      const auto t0 = std::chrono::steady_clock::now();
      while (router.stats().readmissions == 0 &&
             std::chrono::steady_clock::now() - t0 < std::chrono::seconds(10)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      infer::RouterStats fs = router.stats();
      TTSNN_CHECK(fs.readmissions >= 1,
                  "fault drill: replica was not re-admitted after recovery");
      diff = std::max(diff, max_abs_diff(flat(router.infer(fx, hot_session)),
                                         flat(fref)));
      TTSNN_CHECK(diff == 0.0, "fault drill: post-readmission output diverged");
      std::printf("  %-22s %lld pre-errors -> quarantined, %lld served on "
                  "survivor (diff %g), %lld probes, re-admitted\n",
                  "router_fault/replica", static_cast<long long>(pre_errors),
                  static_cast<long long>(served), diff,
                  static_cast<long long>(fs.probes));
      json.add("router_fault/replica_down")
          .num("pre_quarantine_errors", static_cast<double>(pre_errors))
          .num("served_on_survivor", static_cast<double>(served))
          .num("max_abs_diff", diff)
          .num("quarantines", static_cast<double>(fs.quarantines))
          .num("rerouted", static_cast<double>(fs.rerouted))
          .num("probes", static_cast<double>(fs.probes))
          .num("readmissions", static_cast<double>(fs.readmissions))
          .num("replica_failures", static_cast<double>(fs.replica_failures));
    }

    // (b) deadline pressure: a single slow dispatcher, a burst far larger
    // than it can serve inside the per-request deadline. Misses must fail
    // FAST (typed DeadlineError, resolved promptly after expiry — never
    // hang), and whatever is served must stay bit-identical.
    {
      infer::Router router(engine, {.num_shards = 1,
                                    .max_batch = 2,
                                    .max_delay_ms = 1.0,
                                    .dispatchers_per_shard = 1});
      const double deadline_ms = 5.0;
      const int64_t n = args.base.quick ? 24 : 48;
      infer::SubmitOptions so;
      so.session = 7;
      so.deadline_ms = deadline_ms;
      std::vector<std::future<Tensor>> futs;
      std::vector<std::chrono::steady_clock::time_point> sent;
      futs.reserve(static_cast<size_t>(n));
      sent.reserve(static_cast<size_t>(n));
      for (int64_t i = 0; i < n; ++i) {
        sent.push_back(std::chrono::steady_clock::now());
        futs.push_back(router.submit(fx, so));
      }
      // Poll for resolution times (0.5 ms granularity): proves no future
      // hangs AND yields the miss-resolution latency distribution.
      std::vector<double> resolve_ms(static_cast<size_t>(n), -1.0);
      size_t remaining = static_cast<size_t>(n);
      const auto t0 = std::chrono::steady_clock::now();
      while (remaining > 0 &&
             std::chrono::steady_clock::now() - t0 < std::chrono::seconds(30)) {
        for (size_t i = 0; i < futs.size(); ++i) {
          if (resolve_ms[i] < 0.0 &&
              futs[i].wait_for(std::chrono::seconds(0)) ==
                  std::future_status::ready) {
            resolve_ms[i] = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - sent[i])
                                .count();
            --remaining;
          }
        }
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
      TTSNN_CHECK(remaining == 0, "deadline drill: " << remaining
                                                     << " futures never resolved");
      int64_t ok = 0;
      int64_t missed = 0;
      double diff = 0.0;
      std::vector<double> miss_late_ms;
      for (size_t i = 0; i < futs.size(); ++i) {
        try {
          diff = std::max(diff, max_abs_diff(flat(futs[i].get()), flat(fref)));
          ++ok;
        } catch (const infer::DeadlineError&) {
          ++missed;
          miss_late_ms.push_back(resolve_ms[i] - deadline_ms);
        }
        // Any OTHER exception type propagates and fails the bench.
      }
      TTSNN_CHECK(diff == 0.0, "deadline drill: served outputs diverged");
      double late_p99 = 0.0;
      if (!miss_late_ms.empty()) {
        std::sort(miss_late_ms.begin(), miss_late_ms.end());
        late_p99 = miss_late_ms[bench::p99_index(miss_late_ms.size())];
        TTSNN_CHECK(late_p99 < 500.0,
                    "deadline drill: misses resolved " << late_p99
                                                       << " ms after expiry");
      }
      std::printf("  %-22s %lld served, %lld missed (deadline %.1f ms, "
                  "miss resolved p99 %+.2f ms after expiry)\n",
                  "router_fault/deadline", static_cast<long long>(ok),
                  static_cast<long long>(missed), deadline_ms, late_p99);
      json.add("router_fault/deadline")
          .num("requests", static_cast<double>(n))
          .num("deadline_ms", deadline_ms)
          .num("served", static_cast<double>(ok))
          .num("missed", static_cast<double>(missed))
          .num("miss_resolve_p99_ms", late_p99)
          .num("deadline_misses_stat",
               static_cast<double>(router.stats().deadline_misses));
    }

    // (c) overload + backoff: a queue budget of ~2 samples against many
    // clients. Shed requests carry a retry_after_ms hint; clients retry
    // under capped exponential backoff seeded by that hint. Every request
    // must eventually serve.
    {
      const int64_t sample_bytes =
          fx.numel() * static_cast<int64_t>(sizeof(float));
      infer::Router router(engine, {.num_shards = 1,
                                    .max_batch = 2,
                                    .max_delay_ms = 1.0,
                                    .dispatchers_per_shard = 1,
                                    .queue_bytes = 2 * sample_bytes});
      const int clients = std::min(args.clients, 8);
      const int64_t per_client = args.base.quick ? 4 : 8;
      std::atomic<int64_t> sheds{0};
      std::atomic<int64_t> served{0};
      double diff = 0.0;
      std::mutex diff_mu;
      std::vector<std::thread> threads;
      threads.reserve(static_cast<size_t>(clients));
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          for (int64_t i = 0; i < per_client; ++i) {
            for (int attempt = 0;; ++attempt) {
              try {
                Tensor out = router.infer(fx, static_cast<uint64_t>(c));
                const double d = max_abs_diff(flat(std::move(out)), flat(fref));
                std::lock_guard<std::mutex> lock(diff_mu);
                diff = std::max(diff, d);
                ++served;
                break;
              } catch (const infer::AdmissionError& e) {
                ++sheds;
                // Capped exponential backoff seeded by the router's own
                // queue-depth hint: hint, 2*hint, 4*hint, ... capped at
                // 50 ms so recovery is prompt once the queue drains.
                const double hint = std::max(e.retry_after_ms(), 0.5);
                const double wait_ms =
                    std::min(hint * std::pow(2.0, attempt), 50.0);
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(wait_ms));
              }
            }
          }
        });
      }
      for (std::thread& t : threads) t.join();
      const int64_t want = static_cast<int64_t>(clients) * per_client;
      TTSNN_CHECK(served.load() == want,
                  "backoff drill: " << served.load() << " of " << want
                                    << " requests served");
      TTSNN_CHECK(diff == 0.0, "backoff drill: served outputs diverged");
      std::printf("  %-22s %lld requests served after %lld sheds "
                  "(budget %lld bytes)\n",
                  "router_fault/backoff", static_cast<long long>(want),
                  static_cast<long long>(sheds.load()),
                  static_cast<long long>(2 * sample_bytes));
      json.add("router_fault/backoff")
          .num("requests", static_cast<double>(want))
          .num("sheds", static_cast<double>(sheds.load()))
          .num("served", static_cast<double>(served.load()))
          .num("queue_bytes", static_cast<double>(2 * sample_bytes));
    }
  }

  json.write(args.base.out);
  return 0;
}
