// Serving bench: throughput and latency of the compiled inference stack.
//
// Configurations over the same factorized (PTT) MS-ResNet:
//   module      — looping eval-mode Module::forward, one request at a time
//                 (the only serving story before the train/infer split)
//   merged/1    — Engine with merged dense kernels (Algorithm 1 lines
//                 20-22). Reference only: merging trades more MACs for
//                 accumulate-only spike hardware, so on CPU it loses FLOPs
//   engine/1    — Engine::run on the exact (unmerged) TT plan, batch 1:
//                 same FLOPs as the module, minus caching/allocation
//                 overhead and with the pointwise-conv im2col skip
//   engine/B    — Engine::run over pre-batched requests (upper bound for
//                 the micro-batcher at batch size B)
//   server      — infer::Server with concurrent clients; requests are
//                 coalesced into micro-batches under a latency deadline
//
// Reports requests/s plus p50/p99 end-to-end latency per request.

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "util/bench_json.h"
#include "core/factorize.h"
#include "core/models.h"
#include "infer/engine.h"
#include "infer/server.h"
#include "util/common.h"

namespace ttsnn {
namespace {

constexpr int64_t kTimesteps = 4;
constexpr int64_t kInputSize = 12;
constexpr int64_t kRequests = 96;
constexpr int64_t kBatch = 8;
// More clients than one batch so several batches are in flight at once.
constexpr int kClients = 16;

struct LatencyStats {
  double throughput = 0.0;  ///< requests / s
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

LatencyStats summarize(std::vector<double> latencies_s, double total_s) {
  std::sort(latencies_s.begin(), latencies_s.end());
  const size_t n = latencies_s.size();
  LatencyStats s;
  s.throughput = static_cast<double>(n) / total_s;
  s.p50_ms = latencies_s[n / 2] * 1e3;
  s.p99_ms = latencies_s[std::min(n - 1, n * 99 / 100)] * 1e3;
  return s;
}

void report(bench::Report& out, const char* name, const LatencyStats& s) {
  std::printf("  %-10s %10.1f req/s   p50 %7.2f ms   p99 %7.2f ms\n", name,
              s.throughput, s.p50_ms, s.p99_ms);
  out.add(name)
      .num("req_per_s", s.throughput)
      .num("p50_ms", s.p50_ms)
      .num("p99_ms", s.p99_ms);
}

}  // namespace
}  // namespace ttsnn

int main(int argc, char** argv) {
  using namespace ttsnn;
  bench::Args args = bench::Args::parse(argc, argv, "BENCH_serving.json");
  bench::Report json;

  Rng rng(7);
  ModelConfig cfg;
  cfg.in_channels = 3;
  cfg.num_classes = 10;
  cfg.base_width = 8;
  cfg.timesteps = kTimesteps;
  ModulePtr net = make_ms_resnet18(cfg, rng);
  FactorizeOptions fopts;
  fopts.mode = TTMode::kPTT;
  fopts.use_vbmf = false;
  fopts.rank_fraction = 0.4;
  factorize_network(*net, fopts, rng);

  // Move the BN statistics off init so the fold is non-trivial, then freeze.
  net->set_training(true);
  for (int i = 0; i < 2; ++i) {
    net->forward(Tensor::uniform({kTimesteps, kBatch, 3, kInputSize, kInputSize},
                                 rng));
  }
  net->clear_cache();
  net->set_training(false);

  // The serving plan keeps the TT pipeline unmerged: on CPU the factorized
  // convolutions are the FLOP-cheap path (merging exists for accumulate-only
  // spike hardware). BN still folds where time-invariant.
  infer::Engine engine =
      infer::compile(*net, {.merge_tt = false, .fold_batchnorm = true});
  infer::Engine merged = infer::compile(*net);
  std::printf("serving bench: MS-ResNet18 w=%lld T=%lld PTT, %lld requests, "
              "plan: %zu ops (merged: %zu)\n",
              static_cast<long long>(cfg.base_width),
              static_cast<long long>(kTimesteps),
              static_cast<long long>(kRequests), engine.num_ops(),
              merged.num_ops());

  std::vector<Tensor> requests;
  requests.reserve(kRequests);
  for (int64_t i = 0; i < kRequests; ++i) {
    requests.push_back(
        Tensor::uniform({kTimesteps, 3, kInputSize, kInputSize}, rng));
  }
  auto as_batch1 = [](const Tensor& x) {
    Shape s = x.shape();
    return x.reshape({s[0], 1, s[1], s[2], s[3]});
  };

  // --- module: sequential eval-mode Module::forward, batch 1 ---------------
  {
    std::vector<double> lat;
    lat.reserve(kRequests);
    Timer total;
    for (const Tensor& r : requests) {
      Timer t;
      net->forward(as_batch1(r));
      lat.push_back(t.seconds());
    }
    report(json, "module", summarize(std::move(lat), total.seconds()));
  }

  // --- merged/1: dense merged kernels (spike-hardware plan) on CPU ---------
  {
    std::vector<double> lat;
    lat.reserve(kRequests);
    Timer total;
    for (const Tensor& r : requests) {
      Timer t;
      merged.run(as_batch1(r));
      lat.push_back(t.seconds());
    }
    report(json, "merged/1", summarize(std::move(lat), total.seconds()));
  }

  // --- engine/1: compiled exact plan, still one request per run ------------
  {
    std::vector<double> lat;
    lat.reserve(kRequests);
    Timer total;
    for (const Tensor& r : requests) {
      Timer t;
      engine.run(as_batch1(r));
      lat.push_back(t.seconds());
    }
    report(json, "engine/1", summarize(std::move(lat), total.seconds()));
  }

  // --- engine/B: ideal pre-batched runs (micro-batching upper bound) -------
  {
    std::vector<double> lat;
    lat.reserve(kRequests);
    Timer total;
    for (int64_t base = 0; base < kRequests; base += kBatch) {
      Tensor batch({kTimesteps, kBatch, 3, kInputSize, kInputSize});
      const int64_t chw = 3 * kInputSize * kInputSize;
      for (int64_t j = 0; j < kBatch; ++j) {
        const float* src = requests[static_cast<size_t>(base + j)].data();
        for (int64_t t = 0; t < kTimesteps; ++t) {
          std::copy(src + t * chw, src + (t + 1) * chw,
                    batch.data() + (t * kBatch + j) * chw);
        }
      }
      Timer t;
      engine.run(batch);
      const double s = t.seconds();
      for (int64_t j = 0; j < kBatch; ++j) lat.push_back(s);
    }
    report(json, "engine/8", summarize(std::move(lat), total.seconds()));
  }

  // --- server: concurrent clients, micro-batched under a deadline ----------
  {
    infer::Server server(engine, {.max_batch = kBatch, .max_delay_ms = 2.0,
                                  .num_dispatchers = 2});
    std::vector<double> lat(kRequests, 0.0);
    std::vector<std::thread> clients;
    Timer total;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int64_t i = c; i < kRequests; i += kClients) {
          Timer t;
          server.infer(requests[static_cast<size_t>(i)]);
          lat[static_cast<size_t>(i)] = t.seconds();
        }
      });
    }
    for (std::thread& t : clients) t.join();
    const double total_s = total.seconds();
    infer::ServerStats stats = server.stats();
    report(json, "server", summarize(lat, total_s));
    std::printf("  server coalescing: %lld requests in %lld batches "
                "(mean %.1f, max %lld)\n",
                static_cast<long long>(stats.requests),
                static_cast<long long>(stats.batches), stats.mean_batch(),
                static_cast<long long>(stats.max_batch));
    json.add("server_coalescing")
        .num("requests", static_cast<double>(stats.requests))
        .num("batches", static_cast<double>(stats.batches))
        .num("mean_batch", stats.mean_batch());
  }
  json.write(args.out);
  return 0;
}
