#pragma once

/// \file bench_util.h
/// Shared helpers for the table/figure benches: a standard scaled training
/// run over the four execution modes (baseline / STT / PTT / HTT) with the
/// paper's recipe, returning the Table II metrics.
///
/// Thread accounting (2-core CPU analog of the paper's GPU setup): modes
/// without branch parallelism (baseline, STT) get 2-thread GEMMs — they may
/// use the whole device, as cuDNN kernels would. PTT/HTT instead spend the
/// second core on the parallel strip branches (1-thread GEMMs underneath),
/// mirroring how the paper's PTT overlaps two CUDA streams.

#include <cstdio>
#include <string>

#include "core/factorize.h"
#include "core/flops.h"
#include "core/models.h"
#include "snn/trainer.h"
#include "tensor/gemm.h"

namespace ttsnn {

enum class BenchMode { kBaseline, kSTT, kPTT, kHTT };

inline const char* bench_mode_name(BenchMode m) {
  switch (m) {
    case BenchMode::kBaseline:
      return "baseline";
    case BenchMode::kSTT:
      return "STT";
    case BenchMode::kPTT:
      return "PTT";
    case BenchMode::kHTT:
      return "HTT";
  }
  return "?";
}

struct BenchRun {
  BenchMode mode = BenchMode::kBaseline;
  double accuracy = 0.0;      ///< held-out accuracy in [0, 1]
  double batch_time_s = 0.0;  ///< fwd+bwd wall clock per batch
  double params_m = 0.0;
  double flops_g = 0.0;
};

struct BenchSetup {
  /// Model factory: e.g. make_ms_resnet18. Called fresh per mode.
  ModulePtr (*make_model)(const ModelConfig&, Rng&) = nullptr;
  ModelConfig model;
  int64_t input_size = 12;
  TrainConfig train;
  /// HTT schedule (size == train.timesteps); defaults to first-half full.
  std::vector<bool> htt_schedule;
  double rank_fraction = 0.4;
  uint64_t model_seed = 1;
};

/// Trains one mode from scratch and reports the Table II metrics.
inline BenchRun run_mode(BenchMode mode, const BenchSetup& setup,
                         const Dataset& train, const Dataset& test) {
  Rng rng(setup.model_seed);
  ModulePtr net = setup.make_model(setup.model, rng);

  const bool branch_parallel =
      mode == BenchMode::kPTT || mode == BenchMode::kHTT;
  if (mode != BenchMode::kBaseline) {
    FactorizeOptions f;
    f.mode = mode == BenchMode::kSTT  ? TTMode::kSTT
             : mode == BenchMode::kPTT ? TTMode::kPTT
                                       : TTMode::kHTT;
    f.use_vbmf = false;
    f.rank_fraction = setup.rank_fraction;
    f.parallel_branches = branch_parallel;
    if (f.mode == TTMode::kHTT) {
      f.htt_schedule = setup.htt_schedule;
      if (f.htt_schedule.empty()) {
        f.htt_schedule.assign(static_cast<size_t>(setup.train.timesteps), false);
        for (int64_t t = 0; t < setup.train.timesteps / 2; ++t) {
          f.htt_schedule[static_cast<size_t>(t)] = true;
        }
      }
    }
    factorize_network(*net, f, rng);
  }

  // See the file comment: full-device GEMMs for serial modes, branch threads
  // for the parallel modes. The guard restores whatever setting the caller
  // had, so one bench cannot leak its thread count into the next.
  FitResult fit;
  {
    GemmThreadsGuard gemm_guard(branch_parallel ? 1 : 2);
    Trainer trainer(*net, train, test, setup.train);
    fit = trainer.fit();
  }

  ModelStats stats = analyze_model(*net, setup.model.in_channels,
                                   setup.input_size, setup.input_size);
  BenchRun run;
  run.mode = mode;
  run.accuracy = fit.test_accuracy;
  run.batch_time_s = fit.batch_time_s;
  run.params_m = stats.params_m();
  run.flops_g = stats.flops_g(setup.train.timesteps);
  return run;
}

inline void print_run_row(const char* dataset, const BenchRun& r,
                          const BenchRun& baseline) {
  std::printf("%-14s %-9s acc %5.1f%%  time %7.4f s (%+6.1f%%)  params %6.3f M "
              "(%4.2fx)  FLOPs %6.4f G (%4.2fx)\n",
              dataset, bench_mode_name(r.mode), 100.0 * r.accuracy,
              r.batch_time_s,
              100.0 * (r.batch_time_s / baseline.batch_time_s - 1.0),
              r.params_m, baseline.params_m / r.params_m, r.flops_g,
              baseline.flops_g / r.flops_g);
}

}  // namespace ttsnn
