// Table III reproduction: PTT plugged into four existing SNN training
// methods — tdBN (ResNet20 / CIFAR10), TEBN (VGG9 / CIFAR10), TET (VGG9 /
// DVS Gesture) and NDA (VGG11 / DVS Gesture) — comparing base vs PTT
// accuracy and per-batch training time.
//
// Paper trends: PTT cuts training time on every host method (25.0% / 15.2% /
// 9.1% / 19.7%) without significant accuracy degradation.

#include <cstdio>

#include "bench_util.h"
#include "data/synthetic_gesture.h"
#include "data/synthetic_image.h"

using namespace ttsnn;

namespace {

struct MethodSpec {
  const char* name;
  ModulePtr (*make_model)(const ModelConfig&, Rng&);
  BatchNorm::Mode bn_mode;
  LossKind loss;
  bool augment;
  bool gesture_data;  ///< DVS-Gesture stand-in (else CIFAR stand-in)
  int64_t timesteps;
  int64_t base_width;
  /// Shortcut-free VGG stacks are LR-sensitive once TT-decomposed (no
  /// residual path to stabilize the factored layers); ResNet hosts train
  /// with the hotter default.
  float lr;
};

void run_method(const MethodSpec& spec) {
  BenchSetup setup;
  setup.make_model = spec.make_model;
  setup.model = {.in_channels = spec.gesture_data ? int64_t{2} : int64_t{3},
                 .num_classes = 5,
                 .base_width = spec.base_width,
                 .timesteps = spec.timesteps,
                 .bn_mode = spec.bn_mode};
  setup.model.bn_alpha_vth = setup.model.lif.v_th;
  setup.input_size = 16;
  setup.train = {.epochs = 5,
                 .batch_size = 16,
                 .timesteps = spec.timesteps,
                 .lr = spec.lr,
                 .loss = spec.loss,
                 .augment = spec.augment,
                 .augment_opts = {.max_shift = 1, .cutout_size = 0},
                 .seed = 42};

  BenchRun base, ptt;
  if (spec.gesture_data) {
    SyntheticGestureDataset train({.num_classes = 5, .samples_per_class = 20,
                                   .size = 16, .seed = 31});
    SyntheticGestureDataset test({.num_classes = 5, .samples_per_class = 8,
                                  .size = 16, .seed = 32});
    base = run_mode(BenchMode::kBaseline, setup, train, test);
    ptt = run_mode(BenchMode::kPTT, setup, train, test);
  } else {
    SyntheticImageDataset train({.num_classes = 5, .samples_per_class = 20,
                                 .size = 16, .seed = 31});
    SyntheticImageDataset test({.num_classes = 5, .samples_per_class = 8,
                                .size = 16, .seed = 32});
    base = run_mode(BenchMode::kBaseline, setup, train, test);
    ptt = run_mode(BenchMode::kPTT, setup, train, test);
  }
  std::printf("%-6s %-22s acc %5.1f%% / %5.1f%%   time %6.4f / %6.4f s "
              "(%5.1f%% faster)\n",
              spec.name, spec.gesture_data ? "(DVS-Gesture stand-in)"
                                           : "(CIFAR10 stand-in)",
              100.0 * base.accuracy, 100.0 * ptt.accuracy, base.batch_time_s,
              ptt.batch_time_s,
              100.0 * (1.0 - ptt.batch_time_s / base.batch_time_s));
}

}  // namespace

int main() {
  std::printf("=== Table III: PTT as a plug-in to prior SNN training methods "
              "(base / PTT) ===\n");
  std::printf("paper: tdBN 92.96/91.10 (25.0%% faster), TEBN 91.78/90.56 "
              "(15.2%%), TET 94.79/94.49 (9.1%%), NDA 96.88/95.83 (19.7%%)\n");
  run_method({.name = "tdBN", .make_model = make_resnet20,
              .bn_mode = BatchNorm::Mode::kTdBn, .loss = LossKind::kCeSum,
              .augment = false, .gesture_data = false, .timesteps = 4,
              .base_width = 8, .lr = 0.08F});
  run_method({.name = "TEBN", .make_model = make_vgg9,
              .bn_mode = BatchNorm::Mode::kTebn, .loss = LossKind::kCeSum,
              .augment = false, .gesture_data = false, .timesteps = 4,
              .base_width = 16, .lr = 0.02F});
  run_method({.name = "TET", .make_model = make_vgg9,
              .bn_mode = BatchNorm::Mode::kPerStep, .loss = LossKind::kTet,
              .augment = false, .gesture_data = true, .timesteps = 6,
              .base_width = 16, .lr = 0.02F});
  run_method({.name = "NDA", .make_model = make_vgg11,
              .bn_mode = BatchNorm::Mode::kPerStep, .loss = LossKind::kCeSum,
              .augment = true, .gesture_data = true, .timesteps = 6,
              .base_width = 16, .lr = 0.01F});
  return 0;
}
