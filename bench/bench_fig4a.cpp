// Fig. 4(a) reproduction: training energy of baseline / STT / PTT / HTT
// SNNs on the EXISTING single-engine accelerator [3] for ResNet18 (T=4,
// CIFAR) and ResNet34 (T=6, N-Caltech events), at paper scale with the
// published VBMF ranks.
//
// Paper: STT cuts 68.1% vs baseline; layer-sequential mapping makes PTT cost
// +10.9% OVER STT (DRAM round-trip of one strip output before the merge);
// HTT lands near STT.

#include <cstdio>

#include "core/factorize.h"
#include "core/flops.h"
#include "core/models.h"
#include "core/paper_config.h"
#include "hw/sata_baseline.h"

using namespace ttsnn;

namespace {

HwWorkload make_workload(bool resnet34, TTMode mode, bool factorize,
                         bool parallel) {
  Rng rng(1);
  ModelConfig cfg;
  cfg.base_width = 64;
  cfg.in_channels = resnet34 ? 2 : 3;
  cfg.num_classes = resnet34 ? 101 : 10;
  cfg.timesteps = resnet34 ? 6 : 4;
  ModulePtr net =
      resnet34 ? make_ms_resnet34(cfg, rng) : make_ms_resnet18(cfg, rng);
  if (factorize) {
    FactorizeOptions f;
    f.mode = mode;
    f.explicit_ranks =
        resnet34 ? paper_ranks_resnet34() : paper_ranks_resnet18();
    f.init_from_dense = false;
    if (mode == TTMode::kHTT) {
      f.htt_schedule.assign(static_cast<size_t>(cfg.timesteps), true);
      // Sec. V-A: half sub-convs at t=3,4 (CIFAR) and t=5,6 (N-Caltech).
      f.htt_schedule[static_cast<size_t>(cfg.timesteps) - 1] = false;
      f.htt_schedule[static_cast<size_t>(cfg.timesteps) - 2] = false;
    }
    factorize_network(*net, f, rng);
  }
  const int64_t input = resnet34 ? 48 : 32;
  ModelStats stats = analyze_model(*net, cfg.in_channels, input, input);
  WorkloadOptions w;
  w.timesteps = cfg.timesteps;
  w.parallel_strips = parallel;
  return build_workload(resnet34 ? "ResNet34" : "ResNet18", stats, w);
}

void run_arch(bool resnet34) {
  const char* name = resnet34 ? "ResNet34" : "ResNet18";
  EnergyReport base =
      simulate_sata(make_workload(resnet34, TTMode::kSTT, false, false));
  EnergyReport stt =
      simulate_sata(make_workload(resnet34, TTMode::kSTT, true, false));
  EnergyReport ptt =
      simulate_sata(make_workload(resnet34, TTMode::kPTT, true, true));
  EnergyReport htt =
      simulate_sata(make_workload(resnet34, TTMode::kHTT, true, true));

  auto row = [&](const char* mode, const EnergyReport& r) {
    std::printf("%-9s %-9s %12.1f uJ  (%.3fx of baseline)\n", name, mode,
                r.total_pj() / 1e6, r.total_pj() / base.total_pj());
  };
  row("baseline", base);
  row("STT", stt);
  row("PTT", ptt);
  row("HTT", htt);
  std::printf("  STT saves %.1f%% vs baseline (paper 68.1%%); PTT costs "
              "%+.1f%% vs STT (paper +10.9%%); HTT %+.1f%% vs STT (paper: "
              "similar)\n",
              100.0 * (1.0 - stt.total_pj() / base.total_pj()),
              100.0 * (ptt.total_pj() / stt.total_pj() - 1.0),
              100.0 * (htt.total_pj() / stt.total_pj() - 1.0));
}

}  // namespace

int main() {
  std::printf("=== Fig. 4(a): training energy on the EXISTING SNN training "
              "accelerator [3] (one image, fwd+bwd, all timesteps) ===\n");
  run_arch(false);
  run_arch(true);
  return 0;
}
