// Micro-benchmarks (google-benchmark) for the op-level building blocks:
// dense conv vs the TT pipelines (forward and forward+backward), merge
// contractions, TT-SVD and VBMF. Not a paper exhibit — supports the
// latency claims behind Table II and profiles regressions.

#include <benchmark/benchmark.h>

#include "core/ttconv.h"
#include "nn/conv2d.h"
#include "tensor/gemm.h"
#include "tensor/linalg.h"
#include "tt/tt_svd.h"
#include "tt/vbmf.h"

namespace ttsnn {
namespace {

// --- GEMM kernels: naive (seed) vs cache-blocked, reported in GFLOP/s ------
//
// Run e.g.:  ./bench_micro_ops --benchmark_filter=Gemm
// The kernel/0 rows are the pre-PR naive loops, kernel/1 the blocked ones;
// the GFLOPS counter makes the old-vs-new comparison direct.

void bench_gemm(benchmark::State& state, bool trans_a, float density) {
  const auto kernel = state.range(0) == 0 ? GemmKernel::kNaive
                                          : GemmKernel::kBlocked;
  const int64_t m = state.range(1);
  const int64_t n = state.range(2);
  const int64_t k = state.range(3);
  Rng rng(8);
  Tensor a = trans_a ? Tensor::bernoulli({k, m}, rng, density)
                     : Tensor::bernoulli({m, k}, rng, density);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor c = Tensor::zeros({m, n});
  GemmKernelGuard guard(kernel);
  GemmThreadsGuard threads(1);  // isolate the kernel, not the fan-out
  for (auto _ : state) {
    gemm(trans_a, false, m, n, k, 1.0F, a.data(), b.data(), 0.0F, c.data());
    benchmark::DoNotOptimize(c.data());
    benchmark::ClobberMemory();
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(m * n * k) *
          static_cast<double>(state.iterations()) * 1e-9,
      benchmark::Counter::kIsRate);
}

void BM_GemmNN(benchmark::State& state) { bench_gemm(state, false, 1.0F); }
void BM_GemmTN(benchmark::State& state) { bench_gemm(state, true, 1.0F); }
void BM_GemmNNSpikes(benchmark::State& state) {
  bench_gemm(state, false, 0.2F);  // spike-sparse A: zero-row skip active
}

BENCHMARK(BM_GemmNN)
    ->ArgsProduct({{0, 1}, {256}, {256}, {256}})
    ->ArgsProduct({{0, 1}, {128}, {512}, {1024}})
    ->ArgNames({"kernel", "m", "n", "k"});
BENCHMARK(BM_GemmTN)
    ->ArgsProduct({{0, 1}, {256}, {256}, {256}})
    ->ArgNames({"kernel", "m", "n", "k"});
BENCHMARK(BM_GemmNNSpikes)
    ->ArgsProduct({{0, 1}, {256}, {256}, {256}})
    ->ArgNames({"kernel", "m", "n", "k"});

constexpr int64_t kC = 32;
constexpr int64_t kHW = 16;
constexpr int64_t kRank = 8;

Tensor make_input() {
  Rng rng(1);
  return Tensor::bernoulli({4, 2, kC, kHW, kHW}, rng, 0.2F);
}

void BM_DenseConvForward(benchmark::State& state) {
  Rng rng(2);
  Conv2d conv({.in_channels = kC, .out_channels = kC}, rng);
  Tensor x = make_input();
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x));
  }
}
BENCHMARK(BM_DenseConvForward);

void BM_TTConvForward(benchmark::State& state) {
  const auto mode = static_cast<TTMode>(state.range(0));
  const bool parallel = state.range(1) != 0;
  Rng rng(3);
  TTConv2d conv({.in_channels = kC, .out_channels = kC, .kernel = 3,
                 .stride = 1, .rank = kRank, .mode = mode,
                 .full_step = std::vector<bool>{true, true, false, false},
                 .parallel_branches = parallel},
                rng);
  Tensor x = make_input();
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x));
  }
}
BENCHMARK(BM_TTConvForward)
    ->ArgsProduct({{static_cast<long>(TTMode::kSTT), static_cast<long>(TTMode::kPTT),
                    static_cast<long>(TTMode::kHTT)},
                   {0, 1}})
    ->ArgNames({"mode", "parallel"});

void BM_TTConvTrainStep(benchmark::State& state) {
  const auto mode = static_cast<TTMode>(state.range(0));
  Rng rng(4);
  TTConv2d conv({.in_channels = kC, .out_channels = kC, .kernel = 3,
                 .stride = 1, .rank = kRank, .mode = mode,
                 .full_step = std::vector<bool>{true, true, false, false}},
                rng);
  Tensor x = make_input();
  Tensor g = Tensor::randn({4, 2, kC, kHW, kHW}, rng);
  for (auto _ : state) {
    conv.forward(x);
    benchmark::DoNotOptimize(conv.backward(g));
  }
}
BENCHMARK(BM_TTConvTrainStep)
    ->Arg(static_cast<long>(TTMode::kSTT))
    ->Arg(static_cast<long>(TTMode::kPTT))
    ->Arg(static_cast<long>(TTMode::kHTT))
    ->ArgName("mode");

void BM_MergePtt(benchmark::State& state) {
  Rng rng(5);
  TTConv2d conv({.in_channels = 64, .out_channels = 64, .kernel = 3,
                 .stride = 1, .rank = 24, .mode = TTMode::kPTT},
                rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.merged_kernel());
  }
}
BENCHMARK(BM_MergePtt);

void BM_TtSvd(benchmark::State& state) {
  Rng rng(6);
  Tensor dense = Tensor::randn({64, 64, 3, 3}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tt_svd(dense, 24));
  }
}
BENCHMARK(BM_TtSvd);

void BM_Vbmf(benchmark::State& state) {
  Rng rng(7);
  Tensor dense = Tensor::randn({64, 64, 3, 3}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimate_tt_rank(dense));
  }
}
BENCHMARK(BM_Vbmf);

}  // namespace
}  // namespace ttsnn

BENCHMARK_MAIN();
