// Micro-benchmarks for the op-level building blocks, reported both as a
// human-readable table and as BENCH_micro.json (see bench_json.h) so the
// perf trajectory is tracked PR-over-PR.
//
// Families:
//   gemm_*      — kernel tiers (naive / blocked / simd / sparse) over dense
//                 and spike-sparse operands; GFLOP/s is nominal 2mnk work,
//                 so tier rows divide directly into speedups. The
//                 `speedup_vs_naive` field is the headline: the sparse tier
//                 at 90% spike sparsity (density 0.1) is the PR-3 target.
//   elemwise_*  — scalar vs AVX2 tiers of the axpy/adam/lif kernels.
//   ttconv_*    — TTConv2d forward and forward+backward per mode.
//   infer_run/* — batch-1 Engine::run: legacy per-register executor vs the
//                 statically planned workspace (PR-6), fresh and reused;
//                 each row reports arena acquisitions per call alongside p50,
//                 so "one allocation per call" is a tracked number, not a
//                 comment.
//   quant/*     — typed weight planes: bf16 dequant tiers, the int8 spike-
//                 GEMM vs the f32 tiers at 90% sparsity, and the per-mode
//                 weight footprint with HARD compression gates (int8 < 0.5x
//                 f32, bf16 <= 0.55x — deterministic byte accounting, so CI
//                 fails on them directly).
//   merge/svd   — TT merge contraction, TT-SVD, VBMF rank estimation.
//   train_epoch — end-to-end epoch with the pre-PR compute path (naive gemm,
//                 scalar elementwise) vs the current defaults, plus a
//                 sync-vs-prefetch pair with augmentation on; every row
//                 reports the compute / data-wait wall-clock split.
//
// Flags: --out=PATH (default BENCH_micro.json), --quick (CI smoke sizing).

#include <cstdio>
#include <functional>

#include "util/bench_json.h"
#include "core/factorize.h"
#include "core/models.h"
#include "core/ttconv.h"
#include "data/synthetic_image.h"
#include "infer/analysis.h"
#include "infer/engine.h"
#include "nn/conv2d.h"
#include "snn/trainer.h"
#include "tensor/arena.h"
#include "tensor/gemm.h"
#include "tensor/simd.h"
#include "tt/tt_svd.h"
#include "tt/vbmf.h"

namespace ttsnn {
namespace {

const char* kernel_name(GemmKernel k) {
  switch (k) {
    case GemmKernel::kAuto:
      return "auto";
    case GemmKernel::kNaive:
      return "naive";
    case GemmKernel::kBlocked:
      return "blocked";
    case GemmKernel::kSimd:
      return "simd";
    case GemmKernel::kSparse:
      return "sparse";
  }
  return "?";
}

/// One GEMM config at several kernel tiers; emits GFLOP/s + speedup rows.
void bench_gemm(bench::Report& report, const char* op, bool trans_a,
                bool trans_b, int64_t m, int64_t n, int64_t k, float density,
                const std::vector<GemmKernel>& kernels, double min_seconds) {
  Rng rng(8);
  // Density < 1 makes the *B* operand a binary spike matrix (the operand the
  // conv lowering makes sparse); A stays dense like conv weights / gradients.
  Tensor a = trans_a ? Tensor::randn({k, m}, rng) : Tensor::randn({m, k}, rng);
  Tensor b;
  if (trans_b) {
    b = density < 1.0F ? Tensor::bernoulli({n, k}, rng, density)
                       : Tensor::randn({n, k}, rng);
  } else {
    b = density < 1.0F ? Tensor::bernoulli({k, n}, rng, density)
                       : Tensor::randn({k, n}, rng);
  }
  Tensor c = Tensor::zeros({m, n});
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                       static_cast<double>(k);
  GemmThreadsGuard threads(1);  // isolate the kernel, not the fan-out
  double naive_gflops = 0.0;
  for (GemmKernel kern : kernels) {
    GemmKernelGuard guard(kern);
    const bench::Timing t = bench::time_fn(
        [&] {
          gemm(trans_a, trans_b, m, n, k, 1.0F, a.data(), b.data(), 0.0F,
               c.data());
        },
        min_seconds);
    const double gflops = flops / t.p50_s * 1e-9;
    if (kern == GemmKernel::kNaive) naive_gflops = gflops;
    char name[128];
    std::snprintf(name, sizeof(name), "%s/%lldx%lldx%lld/d%.2f/%s", op,
                  static_cast<long long>(m), static_cast<long long>(n),
                  static_cast<long long>(k), density, kernel_name(kern));
    bench::Row& row = report.add(name)
                          .str("op", op)
                          .str("kernel", kernel_name(kern))
                          .num("m", static_cast<double>(m))
                          .num("n", static_cast<double>(n))
                          .num("k", static_cast<double>(k))
                          .num("density", density)
                          .num("gflops", gflops)
                          .timing(t);
    if (naive_gflops > 0.0) {
      row.num("speedup_vs_naive", gflops / naive_gflops);
    }
    std::printf("  %-44s %8.2f GFLOP/s  p50 %7.3f ms%s\n", name, gflops,
                t.p50_s * 1e3,
                kern == GemmKernel::kNaive
                    ? ""
                    : (" (" + std::to_string(gflops / naive_gflops) + "x)")
                          .c_str());
  }
}

/// Scalar-vs-AVX2 pair for one elementwise kernel.
template <typename Fn>
void bench_elemwise(bench::Report& report, const char* name, int64_t n,
                    Fn&& fn) {
  double scalar_ms = 0.0;
  for (simd::Level level : {simd::Level::kScalar, simd::Level::kAvx2}) {
    if (level == simd::Level::kAvx2 &&
        simd::detected_level() != simd::Level::kAvx2) {
      continue;
    }
    simd::LevelGuard guard(level);
    const bench::Timing t = bench::time_fn(fn, 0.1);
    if (level == simd::Level::kScalar) scalar_ms = t.p50_s * 1e3;
    std::string row_name =
        std::string("elemwise_") + name + "/" + simd::level_name(level);
    bench::Row& row = report.add(row_name)
                          .str("op", name)
                          .str("level", simd::level_name(level))
                          .num("numel", static_cast<double>(n))
                          .num("ns_per_elem", t.p50_s * 1e9 /
                                                  static_cast<double>(n))
                          .timing(t);
    if (scalar_ms > 0.0) {
      row.num("speedup_vs_scalar", scalar_ms / (t.p50_s * 1e3));
    }
    std::printf("  %-44s p50 %7.4f ms\n", row_name.c_str(), t.p50_s * 1e3);
  }
}

constexpr int64_t kC = 32;
constexpr int64_t kHW = 16;
constexpr int64_t kRank = 8;

Tensor make_conv_input() {
  Rng rng(1);
  return Tensor::bernoulli({4, 2, kC, kHW, kHW}, rng, 0.2F);
}

void bench_ttconv(bench::Report& report, bool quick) {
  Tensor x = make_conv_input();
  {
    Rng rng(2);
    Conv2d conv({.in_channels = kC, .out_channels = kC}, rng);
    const bench::Timing t = bench::time_fn([&] { conv.forward(x); }, 0.1);
    report.add("dense_conv_forward").timing(t);
    std::printf("  %-44s p50 %7.3f ms\n", "dense_conv_forward", t.p50_s * 1e3);
  }
  const TTMode modes[] = {TTMode::kSTT, TTMode::kPTT, TTMode::kHTT};
  for (TTMode mode : modes) {
    Rng rng(3);
    TTConv2d conv({.in_channels = kC, .out_channels = kC, .kernel = 3,
                   .stride = 1, .rank = kRank, .mode = mode,
                   .full_step = std::vector<bool>{true, true, false, false}},
                  rng);
    const bench::Timing fwd = bench::time_fn([&] { conv.forward(x); }, 0.1);
    std::string name = std::string("ttconv_forward/") + tt_mode_name(mode);
    report.add(name).str("mode", tt_mode_name(mode)).timing(fwd);
    std::printf("  %-44s p50 %7.3f ms\n", name.c_str(), fwd.p50_s * 1e3);
    if (quick) continue;
    Rng grng(4);
    Tensor g = Tensor::randn({4, 2, kC, kHW, kHW}, grng);
    const bench::Timing step = bench::time_fn(
        [&] {
          conv.forward(x);
          conv.backward(g);
        },
        0.1);
    name = std::string("ttconv_train_step/") + tt_mode_name(mode);
    report.add(name).str("mode", tt_mode_name(mode)).timing(step);
    std::printf("  %-44s p50 %7.3f ms\n", name.c_str(), step.p50_s * 1e3);
  }
}

/// Batch-1 serving latency + allocation traffic: the legacy executor
/// (Tensor::empty per register) against the statically planned one (one
/// packed workspace), with and without the caller reusing the workspace
/// tensor across calls — the Router dispatcher's steady state.
ModulePtr make_serving_model(Rng& rng) {
  ModelConfig cfg;
  cfg.in_channels = 3;
  cfg.num_classes = 10;
  cfg.base_width = 16;
  cfg.timesteps = 4;
  ModulePtr net = make_ms_resnet18(cfg, rng);
  FactorizeOptions fopts;
  fopts.mode = TTMode::kPTT;
  fopts.use_vbmf = false;
  fopts.rank_fraction = 0.4;
  factorize_network(*net, fopts, rng);
  net->set_training(false);
  return net;
}

void bench_planned_run(bench::Report& report) {
  Rng rng(31);
  ModulePtr net = make_serving_model(rng);
  Tensor x = Tensor::bernoulli({4, 1, 3, 16, 16}, rng, 0.2F);

  const infer::Engine legacy =
      infer::compile(*net, {.static_plan = false});
  const infer::Engine planned = infer::compile(*net);
  const auto plan = planned.memory_plan(x.shape());
  Tensor ws;

  const struct {
    const char* tag;
    std::function<Tensor()> run;
  } variants[] = {
      {"legacy", [&] { return legacy.run(x); }},
      {"planned", [&] { return planned.run(x); }},
      {"planned_reuse", [&] { return planned.run(x, ws); }},
  };
  for (const auto& v : variants) {
    v.run();  // warm-up: plan cache, arena population, ws growth
    constexpr int kCalls = 32;
    Arena::instance().reset_stats();
    for (int i = 0; i < kCalls; ++i) v.run();
    const ArenaStats calls = Arena::instance().stats();
    const double allocs_per_call =
        static_cast<double>(calls.hits + calls.misses) / kCalls;
    const bench::Timing t = bench::time_fn([&] { v.run(); }, 0.1);
    const std::string name = std::string("infer_run/") + v.tag;
    bench::Row& row = report.add(name)
                          .str("config", v.tag)
                          .num("allocs_per_call", allocs_per_call)
                          .timing(t);
    if (std::string(v.tag) != "legacy") {
      row.num("workspace_bytes", static_cast<double>(plan->total_floats) * 4)
          .num("unplanned_bytes",
               static_cast<double>(plan->unplanned_floats) * 4);
    }
    std::printf("  %-44s p50 %7.3f ms  %5.1f allocs/call\n", name.c_str(),
                t.p50_s * 1e3, allocs_per_call);
  }
}

/// Elementwise fusion on vs off at the serving entry point: the same planned
/// executor and reused workspace, the only variable being whether the LIF /
/// residual epilogues run as fused single-pass plan ops (intermediates never
/// leave registers/L1) or as separate kConv/kAffine/kAdd/kLif ops.
void bench_fused_run(bench::Report& report) {
  Rng rng(31);
  ModulePtr net = make_serving_model(rng);
  Tensor x = Tensor::bernoulli({4, 1, 3, 16, 16}, rng, 0.2F);

  const infer::Engine fused = infer::compile(*net);
  const infer::Engine unfused =
      infer::compile(*net, {.fuse_elementwise = false});
  int fused_ops = 0;
  for (const infer::Op& op : fused.ops()) {
    switch (op.kind) {
      case infer::Op::Kind::kConvLif:
      case infer::Op::Kind::kAffineLif:
      case infer::Op::Kind::kAddLif:
      case infer::Op::Kind::kAffineAdd:
        ++fused_ops;
        break;
      default:
        break;
    }
  }
  Tensor ws_on;
  Tensor ws_off;
  const struct {
    const char* tag;
    const infer::Engine* engine;
    Tensor* ws;
    int fused;
  } variants[] = {
      {"on", &fused, &ws_on, fused_ops},
      {"off", &unfused, &ws_off, 0},
  };
  for (const auto& v : variants) {
    v.engine->run(x, *v.ws);  // warm-up: plan cache + workspace growth
    constexpr int kCalls = 32;
    Arena::instance().reset_stats();
    for (int i = 0; i < kCalls; ++i) v.engine->run(x, *v.ws);
    const ArenaStats calls = Arena::instance().stats();
    const double allocs_per_call =
        static_cast<double>(calls.hits + calls.misses) / kCalls;
    const bench::Timing t =
        bench::time_fn([&] { v.engine->run(x, *v.ws); }, 0.1);
    const std::string name = std::string("infer_fused/") + v.tag;
    report.add(name)
        .str("config", v.tag)
        .num("fused_ops", static_cast<double>(v.fused))
        .num("num_ops", static_cast<double>(v.engine->num_ops()))
        .num("allocs_per_call", allocs_per_call)
        .timing(t);
    std::printf("  %-44s p50 %7.3f ms  %5.1f allocs/call  %zu ops\n",
                name.c_str(), t.p50_s * 1e3, allocs_per_call,
                v.engine->num_ops());
  }
}

/// Typed weight-plane kernels. Three row families:
///   quant/bf16_dequant/*    — bulk bf16->f32 decode, scalar vs AVX2 tier.
///   quant/gemm_int8/*       — the int8-weight x binary-spike GEMM at 90%
///                             spike sparsity (u8 conversion included)
///                             against the f32 simd and sparse tiers on the
///                             same operands. Speedups are reported, not
///                             hard-checked — timing gates flake on shared
///                             CI runners.
///   quant/weight_bytes/*    — per-mode unique weight footprint of the tiny
///                             serving models at f32 / bf16 / int8, with the
///                             HARD compression gates (int8 < 0.5x f32,
///                             bf16 <= 0.55x) enforced by TTSNN_CHECK: byte
///                             accounting is deterministic, so these are
///                             safe to fail the CI bench job on.
void bench_quant_kernels(bench::Report& report, bool quick) {
  {
    const int64_t n = 1 << 16;
    Rng rng(61);
    std::vector<uint16_t> src(static_cast<size_t>(n));
    for (auto& v : src) {
      v = bf16_from_f32(static_cast<float>(rng.index(2000) - 1000) * 0.01F);
    }
    std::vector<float> dst(static_cast<size_t>(n));
    double scalar_ms = 0.0;
    for (simd::Level level : {simd::Level::kScalar, simd::Level::kAvx2}) {
      if (level == simd::Level::kAvx2 &&
          simd::detected_level() != simd::Level::kAvx2) {
        continue;
      }
      simd::LevelGuard guard(level);
      const bench::Timing t = bench::time_fn(
          [&] { simd::dequant_bf16(n, src.data(), dst.data()); }, 0.1);
      if (level == simd::Level::kScalar) scalar_ms = t.p50_s * 1e3;
      const std::string name =
          std::string("quant/bf16_dequant/") + simd::level_name(level);
      bench::Row& row =
          report.add(name)
              .str("level", simd::level_name(level))
              .num("numel", static_cast<double>(n))
              .num("ns_per_elem", t.p50_s * 1e9 / static_cast<double>(n))
              .timing(t);
      if (scalar_ms > 0.0) {
        row.num("speedup_vs_scalar", scalar_ms / (t.p50_s * 1e3));
      }
      std::printf("  %-44s p50 %7.4f ms\n", name.c_str(), t.p50_s * 1e3);
    }
  }

  // Conv-shaped int8 spike-GEMM: out_c x spatial x (in_c*k*k) at density
  // 0.10 — the PR-3 90%-sparsity operating point. The int8 row times the
  // whole replacement path (float col -> transposed u8 -> integer GEMM with
  // per-channel rescale); the f32 rows time the gemm call the plan would
  // otherwise make on the identical operands.
  {
    const int64_t m = 64;
    const int64_t n = quick ? 256 : 1024;
    const int64_t k = 288;
    Rng rng(62);
    Tensor w = Tensor::randn({m, k}, rng);
    Tensor col = Tensor::bernoulli({k, n}, rng, 0.1F);
    Tensor c = Tensor::zeros({m, n});
    const WeightPlane plane = WeightPlane::int8_from(w);
    std::vector<uint8_t> su8(static_cast<size_t>(k * n));
    GemmThreadsGuard threads(1);
    double f32_simd_ms = 0.0;
    const struct {
      const char* tag;
      std::function<void()> run;
    } variants[] = {
        {"f32_simd",
         [&] {
           GemmKernelGuard guard(GemmKernel::kSimd);
           gemm(false, false, m, n, k, 1.0F, w.data(), col.data(), 0.0F,
                c.data());
         }},
        {"f32_sparse",
         [&] {
           GemmKernelGuard guard(GemmKernel::kSparse);
           gemm(false, false, m, n, k, 1.0F, w.data(), col.data(), 0.0F,
                c.data());
         }},
        {"int8",
         [&] {
           simd::spikes_to_u8_t(k, n, col.data(), su8.data());
           simd::gemm_s8_wxs(m, n, k, plane.int8_data(), su8.data(),
                             plane.scales().data(), c.data());
         }},
    };
    for (const auto& v : variants) {
      const bench::Timing t = bench::time_fn(v.run, quick ? 0.05 : 0.2);
      if (std::string(v.tag) == "f32_simd") f32_simd_ms = t.p50_s * 1e3;
      char name[128];
      std::snprintf(name, sizeof(name), "quant/gemm_int8/%lldx%lldx%lld/d0.10/%s",
                    static_cast<long long>(m), static_cast<long long>(n),
                    static_cast<long long>(k), v.tag);
      bench::Row& row = report.add(name)
                            .str("kernel", v.tag)
                            .num("m", static_cast<double>(m))
                            .num("n", static_cast<double>(n))
                            .num("k", static_cast<double>(k))
                            .num("density", 0.1)
                            .timing(t);
      if (f32_simd_ms > 0.0) {
        row.num("speedup_vs_f32_simd", f32_simd_ms / (t.p50_s * 1e3));
      }
      std::printf("  %-44s p50 %7.3f ms\n", name, t.p50_s * 1e3);
    }
  }

  // Weight footprint of the tiny serving models per TT mode — the byte gate.
  // Row names track the configs/tiny_<mode>.cfg serving scenarios.
  const struct {
    TTMode mode;
    const char* tag;
  } tiny_modes[] = {{TTMode::kSTT, "stt"},
                    {TTMode::kPTT, "ptt"},
                    {TTMode::kHTT, "htt"}};
  for (const auto& tm : tiny_modes) {
    const TTMode mode = tm.mode;
    Rng rng(63);
    ModelConfig cfg;
    cfg.in_channels = 3;
    cfg.num_classes = 10;
    cfg.base_width = 8;
    cfg.timesteps = 4;
    ModulePtr net = make_ms_resnet18(cfg, rng);
    FactorizeOptions fopts;
    fopts.mode = mode;
    fopts.htt_schedule = {true, false, true, false};
    fopts.use_vbmf = false;
    fopts.rank_fraction = 0.5;
    factorize_network(*net, fopts, rng);
    net->set_training(false);
    const int64_t f32_b =
        infer::compile(*net).weight_bytes();
    const int64_t bf16_b =
        infer::compile(*net, {.weight_dtype = WeightDtype::kBf16})
            .weight_bytes();
    const int64_t int8_b =
        infer::compile(*net, {.weight_dtype = WeightDtype::kInt8})
            .weight_bytes();
    const double bf16_ratio =
        static_cast<double>(bf16_b) / static_cast<double>(f32_b);
    const double int8_ratio =
        static_cast<double>(int8_b) / static_cast<double>(f32_b);
    const std::string name =
        std::string("quant/weight_bytes/tiny_") + tm.tag;
    report.add(name)
        .str("mode", tm.tag)
        .num("f32_bytes", static_cast<double>(f32_b))
        .num("bf16_bytes", static_cast<double>(bf16_b))
        .num("int8_bytes", static_cast<double>(int8_b))
        .num("bf16_ratio", bf16_ratio)
        .num("int8_ratio", int8_ratio);
    std::printf("  %-44s f32 %lld B  bf16 %.3fx  int8 %.3fx\n", name.c_str(),
                static_cast<long long>(f32_b), bf16_ratio, int8_ratio);
    TTSNN_CHECK(int8_ratio < 0.5,
                "quant: int8 weight bytes must be < 0.5x f32 for "
                    << name << ", got " << int8_ratio);
    TTSNN_CHECK(bf16_ratio <= 0.55,
                "quant: bf16 weight bytes must be <= 0.55x f32 for "
                    << name << ", got " << bf16_ratio);
  }
}

void bench_decompositions(bench::Report& report) {
  Rng rng(6);
  Tensor dense = Tensor::randn({64, 64, 3, 3}, rng);
  {
    Rng mrng(5);
    TTConv2d conv({.in_channels = 64, .out_channels = 64, .kernel = 3,
                   .stride = 1, .rank = 24, .mode = TTMode::kPTT},
                  mrng);
    const bench::Timing t = bench::time_fn([&] { conv.merged_kernel(); }, 0.1);
    report.add("merge_ptt").timing(t);
    std::printf("  %-44s p50 %7.3f ms\n", "merge_ptt", t.p50_s * 1e3);
  }
  const bench::Timing svd = bench::time_fn([&] { tt_svd(dense, 24); }, 0.1);
  report.add("tt_svd").timing(svd);
  std::printf("  %-44s p50 %7.3f ms\n", "tt_svd", svd.p50_s * 1e3);
  const bench::Timing vbmf =
      bench::time_fn([&] { estimate_tt_rank(dense); }, 0.1);
  report.add("vbmf").timing(vbmf);
  std::printf("  %-44s p50 %7.3f ms\n", "vbmf", vbmf.p50_s * 1e3);
}

/// End-to-end training epoch on a shared model/data recipe. `legacy` pins the
/// naive GEMM kernel and the scalar elementwise tier — the exact hot-path
/// code the seed ran. `augment` + `prefetch` exercise the DataLoader: the
/// sync (prefetch 0) vs prefetch-2 pair with augmentation on isolates how
/// much batch assembly the producer tasks hide behind the compute.
double bench_train_epoch(bench::Report& report, const char* tag, bool legacy,
                         bool quick, bool augment = false,
                         int64_t prefetch = 2) {
  // Sized so the conv GEMMs actually reach the kernel-tier thresholds
  // (base_width 16 on 16x16 inputs); a toy-scale model measures framework
  // overhead, not kernels.
  SyntheticImageDataset data({.num_classes = 10,
                              .samples_per_class = quick ? 2 : 4,
                              .channels = 3,
                              .size = 16,
                              .seed = 99});
  Rng rng(21);
  ModelConfig cfg;
  cfg.in_channels = 3;
  cfg.num_classes = 10;
  cfg.base_width = 16;
  cfg.timesteps = 4;
  ModulePtr net = make_ms_resnet18(cfg, rng);
  FactorizeOptions fopts;
  fopts.mode = TTMode::kPTT;
  fopts.use_vbmf = false;
  fopts.rank_fraction = 0.4;
  factorize_network(*net, fopts, rng);

  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 8;
  tc.timesteps = 4;
  tc.augment = augment;
  tc.augment_opts = {.max_shift = 2, .cutout_size = 4};
  tc.prefetch = prefetch;
  tc.verbose = false;
  Trainer trainer(*net, data, data, tc);

  GemmKernelGuard kernel(legacy ? GemmKernel::kNaive : GemmKernel::kAuto);
  simd::LevelGuard level(legacy ? simd::Level::kScalar
                                : simd::detected_level());
  trainer.run_epoch(0);  // warm-up: first-touch weights, arena population
  Timer t;
  EpochStats stats = trainer.run_epoch(0);
  const double seconds = t.seconds();
  report.add(std::string("train_epoch/") + tag)
      .str("config", tag)
      .num("seconds", seconds)
      .num("compute_s", stats.compute_seconds)
      .num("data_wait_s", stats.data_wait_seconds)
      .num("prefetch", static_cast<double>(prefetch))
      .num("augment", augment ? 1.0 : 0.0)
      .num("loss", stats.loss);
  std::printf("  %-44s %7.3f s (%.3f s data wait)\n",
              (std::string("train_epoch/") + tag).c_str(), seconds,
              stats.data_wait_seconds);
  return seconds;
}

}  // namespace
}  // namespace ttsnn

int main(int argc, char** argv) {
  using namespace ttsnn;
  bench::Args args = bench::Args::parse(argc, argv, "BENCH_micro.json");
  bench::Report report;
  const double gemm_secs = args.quick ? 0.05 : 0.2;

  std::printf("simd: detected=%s active=%s\n",
              simd::level_name(simd::detected_level()),
              simd::level_name(simd::active_level()));
  report.add("simd_dispatch")
      .str("detected", simd::level_name(simd::detected_level()))
      .str("active", simd::level_name(simd::active_level()));

  std::printf("== GEMM kernel tiers ==\n");
  const std::vector<GemmKernel> dense_kernels = {
      GemmKernel::kNaive, GemmKernel::kBlocked, GemmKernel::kSimd};
  const std::vector<GemmKernel> spike_kernels = {
      GemmKernel::kNaive, GemmKernel::kSimd, GemmKernel::kSparse};
  bench_gemm(report, "gemm_nn", false, false, 256, 256, 256, 1.0F,
             dense_kernels, gemm_secs);
  if (!args.quick) {
    bench_gemm(report, "gemm_nn", false, false, 128, 512, 1024, 1.0F,
               dense_kernels, gemm_secs);
  }
  bench_gemm(report, "gemm_tn", true, false, 256, 256, 256, 1.0F,
             dense_kernels, gemm_secs);
  // Spike-sparse B: density 0.10 is the PR-3 "90% spike sparsity" target row.
  for (float density : args.quick ? std::vector<float>{0.1F}
                                  : std::vector<float>{0.3F, 0.1F, 0.03F}) {
    bench_gemm(report, "gemm_nn", false, false, 256, 256, 256, density,
               spike_kernels, gemm_secs);
  }
  bench_gemm(report, "gemm_nt", false, true, 64, 288, 1024, 0.1F,
             {GemmKernel::kNaive, GemmKernel::kSparse}, gemm_secs);

  std::printf("== elementwise tiers ==\n");
  {
    const int64_t n = 1 << 16;
    Rng rng(11);
    Tensor x = Tensor::randn({n}, rng);
    Tensor y = Tensor::randn({n}, rng);
    bench_elemwise(report, "axpy", n,
                   [&] { simd::axpy(n, 0.5F, x.data(), y.data()); });
    // Unit-magnitude multiplier: repeated y *= x with random x drives y into
    // subnormals, which would benchmark the FPU's denormal stalls instead.
    Tensor sign = Tensor::bernoulli({n}, rng, 0.5F);
    sign.mul_scalar_(2.0F).add_scalar_(-1.0F);
    bench_elemwise(report, "mul", n,
                   [&] { simd::mul(n, sign.data(), y.data()); });
    Tensor g = Tensor::randn({n}, rng);
    Tensor m = Tensor::zeros({n});
    Tensor v = Tensor::zeros({n});
    Tensor w = Tensor::randn({n}, rng);
    bench_elemwise(report, "adam", n, [&] {
      simd::adam_step(n, 1e-3F, 0.9F, 0.999F, 0.1F, 0.01F, 1e-8F, 1e-4F,
                      g.data(), m.data(), v.data(), w.data());
    });
    Tensor in = Tensor::randn({n}, rng);
    Tensor u = Tensor::zeros({n});
    Tensor s = Tensor::zeros({n});
    bench_elemwise(report, "lif_step", n, [&] {
      simd::lif_step_eval(n, 0.5F, 1.0F, true, in.data(), u.data(), s.data());
    });
    // Fused inference epilogues: the same LIF step with its producer folded
    // into one pass (what kAffineLif / kAddLif execute per plane). Compare
    // ns_per_elem against lif_step + the producer's own row to see what the
    // fusion pass saves per element.
    Tensor u2 = Tensor::zeros({n});
    bench_elemwise(report, "affine_lif_step", n, [&] {
      simd::affine_lif_step(n, 0.1F, 1.1F, 0.9F, 0.02F, 0.5F, 1.0F, true,
                            in.data(), u2.data(), s.data());
    });
    Tensor other = Tensor::randn({n}, rng);
    Tensor u3 = Tensor::zeros({n});
    bench_elemwise(report, "add_lif_step", n, [&] {
      simd::add_lif_step(n, 0.5F, 1.0F, true, in.data(), other.data(),
                         u3.data(), s.data());
    });
  }

  std::printf("== TTConv pipelines ==\n");
  bench_ttconv(report, args.quick);
  std::printf("== typed weight planes (quant tier) ==\n");
  bench_quant_kernels(report, args.quick);
  std::printf("== planned inference run (batch 1) ==\n");
  bench_planned_run(report);
  std::printf("== elementwise fusion on/off (batch 1) ==\n");
  bench_fused_run(report);
  if (!args.quick) {
    std::printf("== decompositions ==\n");
    bench_decompositions(report);
  }

  std::printf("== end-to-end training epoch ==\n");
  // Legacy pins prefetch=0 as well: the seed assembled batches synchronously,
  // and the row must keep measuring that exact path PR-over-PR.
  const double legacy_s = bench_train_epoch(report, "legacy", true, args.quick,
                                            /*augment=*/false, /*prefetch=*/0);
  const double current_s =
      bench_train_epoch(report, "current", false, args.quick);
  report.add("train_epoch/speedup").num("speedup_vs_legacy",
                                        legacy_s / current_s);
  std::printf("  %-44s %7.2fx\n", "train_epoch speedup", legacy_s / current_s);
  // DataLoader pair: same compute, augmentation on, batch assembly on the
  // training thread (sync) vs hidden behind prefetch-2 producer tasks. On a
  // single-core host the loader falls back to sync and the pair ties.
  const double sync_aug_s = bench_train_epoch(report, "sync_augment", false,
                                              args.quick, /*augment=*/true,
                                              /*prefetch=*/0);
  const double prefetch_aug_s =
      bench_train_epoch(report, "prefetch_augment", false, args.quick,
                        /*augment=*/true, /*prefetch=*/2);
  report.add("train_epoch/prefetch_speedup")
      .num("speedup_vs_sync", sync_aug_s / prefetch_aug_s);
  std::printf("  %-44s %7.2fx\n", "train_epoch prefetch speedup",
              sync_aug_s / prefetch_aug_s);

  const ArenaStats arena = Arena::instance().stats();
  report.add("arena")
      .num("hits", static_cast<double>(arena.hits))
      .num("misses", static_cast<double>(arena.misses))
      .num("recycled", static_cast<double>(arena.recycled));

  report.write(args.out);
  return 0;
}
