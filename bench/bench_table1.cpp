// Table I reproduction: the hardware implementation parameters of the
// proposed TT-SNN training accelerator (Sec. IV). These are configuration
// constants, not measurements — this binary prints the design point the
// Fig. 4(b) simulations run at and checks internal consistency (the five
// Fig. 3 buffers must add up to the published 272 KB total).

#include <cstdio>

#include "hw/multi_cluster.h"

using namespace ttsnn;

int main() {
  MultiClusterConfig cfg;
  std::printf("=== Table I: Hardware Implementation Parameters ===\n");
  std::printf("%-28s %s\n", "Technology", cfg.technology.c_str());
  std::printf("%-28s %lld\n", "# of Cluster",
              static_cast<long long>(cfg.clusters));
  std::printf("%-28s %lld\n", "# of PE / Cluster",
              static_cast<long long>(cfg.pes_per_cluster));
  std::printf("%-28s %lld bytes\n", "Scratch Pad Size / PE",
              static_cast<long long>(cfg.spad_bytes_per_pe));
  std::printf("%-28s %lld KB\n", "Total Global Buffer Size",
              static_cast<long long>(cfg.total_global_buffer_kb()));
  std::printf("%-28s %lld-bits\n", "Accumulator Precision",
              static_cast<long long>(cfg.accumulator_bits));
  std::printf("%-28s %lld-bits\n", "Multiplier Precision",
              static_cast<long long>(cfg.multiplier_bits));
  std::printf("\nFig. 3 buffer breakdown: filter %lld + input-spike %lld + "
              "output %lld + memP %lld + output-spike %lld KB\n",
              static_cast<long long>(cfg.filter_buffer_kb),
              static_cast<long long>(cfg.input_spike_buffer_kb),
              static_cast<long long>(cfg.output_buffer_kb),
              static_cast<long long>(cfg.membrane_buffer_kb),
              static_cast<long long>(cfg.output_spike_buffer_kb));
  // Paper values: 4 clusters x 32 PEs, 32-byte scratch pads, 272 KB total,
  // 16-bit accumulators, 8-bit multipliers.
  const bool ok = cfg.clusters == 4 && cfg.pes_per_cluster == 32 &&
                  cfg.total_global_buffer_kb() == 272 &&
                  cfg.accumulator_bits == 16 && cfg.multiplier_bits == 8;
  std::printf("matches paper Table I: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
