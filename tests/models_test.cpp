// Model zoo and analyzer tests: output shapes, parameter counts at paper
// scale (Table II static columns), and FLOPs accounting.

#include <gtest/gtest.h>

#include "core/factorize.h"
#include "core/flops.h"
#include "core/models.h"
#include "core/paper_config.h"

namespace ttsnn {
namespace {

TEST(ModelsTest, MsResNet18ForwardShape) {
  Rng rng(1);
  ModelConfig cfg{.in_channels = 3, .num_classes = 10, .base_width = 8,
                  .timesteps = 2};
  ModulePtr net = make_ms_resnet18(cfg, rng);
  Tensor x = Tensor::uniform({2, 3, 3, 16, 16}, rng);
  Tensor y = net->forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 3, 10}));
}

TEST(ModelsTest, MsResNet34Depth) {
  Rng rng(2);
  ModelConfig cfg{.in_channels = 2, .num_classes = 5, .base_width = 8,
                  .timesteps = 2};
  ModulePtr net = make_ms_resnet34(cfg, rng);
  ModelStats stats = analyze_model(*net, 2, 16, 16);
  // 1 stem + 32 block convs + 3 shortcuts = 36 convs.
  int64_t convs = 0;
  for (const auto& d : stats.layers) convs += d.kind == "conv" ? 1 : 0;
  EXPECT_EQ(convs, 36);
}

TEST(ModelsTest, ResNet20UsesTdBn) {
  Rng rng(3);
  ModelConfig cfg{.num_classes = 4, .base_width = 8, .timesteps = 2};
  cfg.lif.v_th = 0.5F;
  ModulePtr net = make_resnet20(cfg, rng);
  Tensor x = Tensor::uniform({2, 2, 3, 16, 16}, rng);
  Tensor y = net->forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 2, 4}));
}

TEST(ModelsTest, VggForwardShapes) {
  Rng rng(4);
  ModelConfig cfg{.in_channels = 2, .num_classes = 6, .base_width = 16,
                  .timesteps = 3};
  ModulePtr v9 = make_vgg9(cfg, rng);
  ModulePtr v11 = make_vgg11(cfg, rng);
  Tensor x = Tensor::uniform({3, 2, 2, 16, 16}, rng);
  EXPECT_EQ(v9->forward(x).shape(), (Shape{3, 2, 6}));
  EXPECT_EQ(v11->forward(x).shape(), (Shape{3, 2, 6}));
}

TEST(ModelsTest, BackwardRunsThroughResNet) {
  Rng rng(5);
  ModelConfig cfg{.num_classes = 4, .base_width = 8, .timesteps = 2};
  // Zero-init residual gammas deliberately block the body gradient on the
  // first step; disable it here — this test checks gradient plumbing.
  cfg.zero_init_residual = false;
  ModulePtr net = make_ms_resnet18(cfg, rng);
  Tensor x = Tensor::uniform({2, 2, 3, 8, 8}, rng);
  Tensor y = net->forward(x);
  Tensor g = Tensor::randn(y.shape(), rng);
  Tensor gx = net->backward(g);
  EXPECT_EQ(gx.shape(), x.shape());
  // Every parameter receives some gradient signal.
  int64_t touched = 0;
  for (Parameter* p : net->parameters()) {
    touched += p->grad.norm() > 0.0 ? 1 : 0;
  }
  EXPECT_GT(touched, static_cast<int64_t>(net->parameters().size() * 3 / 4));
}

// ---- Paper-scale static analysis (Table II params/FLOPs columns) -----------

TEST(PaperConfigTest, ResNet18BaselineMatchesTable2) {
  PaperModel m = paper_resnet18_cifar(10);
  PaperCounts counts = paper_baseline_counts(m);
  // Table II: 11.20 M params, 2.221 G FLOPs (T = 4).
  EXPECT_NEAR(counts.params_m, 11.20, 0.15);
  EXPECT_NEAR(counts.flops_g, 2.221, 0.03);
}

TEST(PaperConfigTest, ResNet18TtMatchesTable2) {
  PaperModel m = paper_resnet18_cifar(10);
  PaperCounts tt = paper_tt_counts(m, paper_ranks_resnet18(), TTMode::kPTT);
  // Table II: 1.83 M params (6.13x), 0.372 G FLOPs (5.97x). The params
  // tolerance is wide: the published rank list does not correspond exactly
  // to the tabulated run (the paper's CIFAR100 row reports FEWER TT params
  // than CIFAR10 for the same backbone, so ranks varied per run); with the
  // published ranks the formula r(I+O)+6r^2 gives 1.66 M (6.74x).
  EXPECT_NEAR(tt.params_m, 1.83, 0.25);
  EXPECT_NEAR(tt.flops_g, 0.372, 0.05);
  PaperCounts base = paper_baseline_counts(m);
  EXPECT_NEAR(base.params_m / tt.params_m, 6.13, 0.9);
  EXPECT_NEAR(base.flops_g / tt.flops_g, 5.97, 0.6);
}

TEST(PaperConfigTest, ResNet18HttFlopsMatchTable2) {
  PaperModel m = paper_resnet18_cifar(10);
  // CIFAR10 HTT: strips run on 2 of 4 timesteps.
  PaperCounts htt = paper_tt_counts(m, paper_ranks_resnet18(), TTMode::kHTT, 0.5);
  // Table II: 0.282 G FLOPs (7.88x).
  EXPECT_NEAR(htt.flops_g, 0.282, 0.05);
}

TEST(PaperConfigTest, ResNet34NCaltechMatchesTable2) {
  PaperModel m = paper_resnet34_ncaltech();
  PaperCounts base = paper_baseline_counts(m);
  // Table II: 21.31 M params, 15.65 G FLOPs (T = 6).
  EXPECT_NEAR(base.params_m, 21.31, 0.25);
  EXPECT_NEAR(base.flops_g, 15.65, 0.6);

  PaperCounts tt = paper_tt_counts(m, paper_ranks_resnet34(), TTMode::kPTT);
  // Table II: 2.67 M (7.98x), 1.69 G (9.25x).
  EXPECT_NEAR(tt.params_m, 2.67, 0.2);
  EXPECT_NEAR(tt.flops_g, 1.69, 0.2);

  // HTT: strips on 4 of 6 timesteps -> 1.46 G (10.75x).
  PaperCounts htt =
      paper_tt_counts(m, paper_ranks_resnet34(), TTMode::kHTT, 4.0 / 6.0);
  EXPECT_NEAR(htt.flops_g, 1.46, 0.2);
}

TEST(PaperConfigTest, RankListLengthsMatchDecomposedConvs) {
  PaperModel r18 = paper_resnet18_cifar(10);
  int64_t decomposed = 0;
  for (const auto& c : r18.convs) decomposed += c.decomposed ? 1 : 0;
  EXPECT_EQ(decomposed, static_cast<int64_t>(paper_ranks_resnet18().size()));

  PaperModel r34 = paper_resnet34_ncaltech();
  decomposed = 0;
  for (const auto& c : r34.convs) decomposed += c.decomposed ? 1 : 0;
  EXPECT_EQ(decomposed, static_cast<int64_t>(paper_ranks_resnet34().size()));
}

TEST(PaperConfigTest, SttAndPttFlopsNearlyEqual) {
  // The paper reports the same FLOPs for STT and PTT (they differ only on
  // strided layers, where STT's first strip keeps full width).
  PaperModel m = paper_resnet18_cifar(10);
  PaperCounts stt = paper_tt_counts(m, paper_ranks_resnet18(), TTMode::kSTT);
  PaperCounts ptt = paper_tt_counts(m, paper_ranks_resnet18(), TTMode::kPTT);
  EXPECT_NEAR(stt.flops_g, ptt.flops_g, 0.1 * ptt.flops_g);
  EXPECT_GE(stt.flops_g, ptt.flops_g);  // STT never cheaper
}

TEST(AnalyzeModelTest, MatchesDirectParamCount) {
  Rng rng(6);
  ModelConfig cfg{.num_classes = 7, .base_width = 8, .timesteps = 2};
  ModulePtr net = make_ms_resnet18(cfg, rng);
  ModelStats stats = analyze_model(*net, 3, 16, 16);
  EXPECT_EQ(stats.total_params, net->num_params());
  EXPECT_GT(stats.macs_per_step, 0.0);
}

TEST(AnalyzeModelTest, FactorizationReducesAnalyzedFlops) {
  Rng rng(7);
  ModelConfig cfg{.num_classes = 4, .base_width = 16, .timesteps = 2};
  ModulePtr net = make_ms_resnet18(cfg, rng);
  ModelStats dense = analyze_model(*net, 3, 16, 16);
  FactorizeOptions opts;
  opts.use_vbmf = false;
  opts.rank_fraction = 0.25;
  factorize_network(*net, opts, rng);
  ModelStats tt = analyze_model(*net, 3, 16, 16);
  EXPECT_LT(tt.total_params, dense.total_params);
  EXPECT_LT(tt.macs_per_step, dense.macs_per_step);
}

TEST(AnalyzeModelTest, SpikeInputFlagsFollowLif) {
  Rng rng(8);
  ModelConfig cfg{.num_classes = 4, .base_width = 8, .timesteps = 2};
  ModulePtr net = make_ms_resnet18(cfg, rng);
  ModelStats stats = analyze_model(*net, 3, 16, 16);
  // Stem conv consumes the analog input.
  ASSERT_FALSE(stats.layers.empty());
  EXPECT_EQ(stats.layers[0].kind, "conv");
  EXPECT_FALSE(stats.layers[0].spike_input);
  // Block convs follow an LIF: spike input.
  bool found_block_conv = false;
  for (size_t i = 1; i < stats.layers.size(); ++i) {
    if (stats.layers[i].kind == "conv" && stats.layers[i].kernel_h == 3) {
      EXPECT_TRUE(stats.layers[i].spike_input) << "layer " << i;
      found_block_conv = true;
      break;
    }
  }
  EXPECT_TRUE(found_block_conv);
}

}  // namespace
}  // namespace ttsnn
