// Unit tests for the shared ThreadPool and a stress test pinning the GEMM
// bit-identical guarantee: every (kernel, thread-count, transpose) combination
// must produce exactly the same bytes, because each C element accumulates its
// k contributions in the same order everywhere.

#include <atomic>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/gemm.h"
#include "tensor/random.h"
#include "tensor/tensor.h"
#include "util/common.h"
#include "util/thread_pool.h"

namespace ttsnn {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(257, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0);
  std::atomic<int64_t> sum{0};
  pool.parallel_for(100, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPoolTest, EmptyAndSingleRanges) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](int64_t, int64_t) { calls++; });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(-5, [&](int64_t, int64_t) { calls++; });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(1, [&](int64_t begin, int64_t end) {
    EXPECT_EQ(begin, 0);
    EXPECT_EQ(end, 1);
    calls++;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](int64_t begin, int64_t) {
                          if (begin == 0) throw Error("chunk zero failed");
                        },
                        /*grain=*/1),
      Error);
}

TEST(ThreadPoolTest, ReusableAfterExceptionAndAcrossCalls) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8, [](int64_t, int64_t) { throw Error("boom"); }),
      Error);
  std::atomic<int64_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(64, [&](int64_t begin, int64_t end) {
      total += end - begin;
    });
  }
  EXPECT_EQ(total.load(), 50 * 64);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Outer tasks each issue an inner region on the same pool. With a single
  // worker, every inner region must complete via caller work-sharing.
  ThreadPool pool(1);
  std::atomic<int64_t> inner_sum{0};
  pool.parallel_for(
      4,
      [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          pool.parallel_for(
              8, [&](int64_t b, int64_t e) { inner_sum += e - b; },
              /*grain=*/1);
        }
      },
      /*grain=*/1);
  EXPECT_EQ(inner_sum.load(), 4 * 8);
}

TEST(ThreadPoolTest, ParallelInvokeRunsBothThunks) {
  int a = 0, b = 0;
  parallel_invoke([&] { a = 1; }, [&] { b = 2; });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  EXPECT_THROW(parallel_invoke([] { throw Error("left"); }, [] {}), Error);
}

TEST(ThreadPoolTest, GlobalParallelForWorks) {
  std::atomic<int64_t> sum{0};
  parallel_for(1000, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 499500);
  EXPECT_GE(ThreadPool::instance().workers(), 0);
}

// ---------------------------------------------------------------------------
// GEMM stress: serial vs pooled vs blocked must be bit-identical.

struct GemmCase {
  bool trans_a;
  bool trans_b;
  const char* name;
};

Tensor run_gemm(const GemmCase& tc, int64_t m, int64_t n, int64_t k,
                const Tensor& a, const Tensor& b) {
  Tensor c = Tensor::zeros({m, n});
  gemm(tc.trans_a, tc.trans_b, m, n, k, 1.0F, a.data(), b.data(), 0.0F,
       c.data());
  return c;
}

bool bit_identical(const Tensor& x, const Tensor& y) {
  return x.numel() == y.numel() &&
         std::memcmp(x.data(), y.data(),
                     static_cast<size_t>(x.numel()) * sizeof(float)) == 0;
}

TEST(GemmStressTest, SerialPooledAndBlockedAreBitIdentical) {
  const GemmCase cases[] = {{false, false, "nn"},
                            {false, true, "nt"},
                            {true, false, "tn"}};
  // Odd shapes straddling the parallel and blocked thresholds; the last two
  // are large enough to trigger both row fan-out and the blocked kernel.
  const int64_t shapes[][3] = {
      {1, 1, 1}, {3, 5, 7}, {17, 9, 33}, {33, 129, 65}, {65, 31, 129},
      {129, 67, 65}};
  Rng rng(42);
  for (const auto& tc : cases) {
    for (const auto& s : shapes) {
      const int64_t m = s[0], n = s[1], k = s[2];
      // Bernoulli-masked A exercises the spike-sparsity zero-row skip.
      Tensor a = tc.trans_a ? Tensor::bernoulli({k, m}, rng, 0.4F)
                            : Tensor::bernoulli({m, k}, rng, 0.4F);
      Tensor b = tc.trans_b ? Tensor::randn({n, k}, rng)
                            : Tensor::randn({k, n}, rng);

      Tensor ref;
      {
        GemmThreadsGuard threads(1);
        GemmKernelGuard kernel(GemmKernel::kNaive);
        ref = run_gemm(tc, m, n, k, a, b);
      }
      for (int threads : {1, 2, 4}) {
        for (GemmKernel kern :
             {GemmKernel::kAuto, GemmKernel::kNaive, GemmKernel::kBlocked}) {
          GemmThreadsGuard tguard(threads);
          GemmKernelGuard kguard(kern);
          Tensor out = run_gemm(tc, m, n, k, a, b);
          EXPECT_TRUE(bit_identical(ref, out))
              << tc.name << " m=" << m << " n=" << n << " k=" << k
              << " threads=" << threads
              << " kernel=" << static_cast<int>(kern);
        }
      }
    }
  }
  EXPECT_EQ(gemm_threads(), 1);
  EXPECT_EQ(gemm_kernel(), GemmKernel::kAuto);
}

}  // namespace
}  // namespace ttsnn
