// Tests for the named-failpoint registry (util/failpoint.h): spec semantics
// (off / once / every:N / after:K), hit/fired accounting, env-list parsing,
// re-arm counter reset, and — the property the reliability layer leans on —
// DETERMINISM under concurrency: hit accounting is mutex-serialized, so the
// set of firing hits is a pure function of the spec and the total hit count,
// no matter how threads interleave (pinned under TSan by the CI tsan job).
//
// The EnvArmed test runs FIRST (gtest runs tests in declaration order): when
// CI launches this binary with TTSNN_FAILPOINTS set, the env-armed "once"
// spec must still be unconsumed when the test asserts on it. Without the env
// var it skips.

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/failpoint.h"

namespace ttsnn {
namespace {

/// Every test starts and ends with an empty registry so env- or test-armed
/// points never leak across tests (except EnvArmed, which consumes the env
/// arming on purpose — it runs first).
struct FailpointTest : ::testing::Test {
  void TearDown() override { failpoint::disarm_all(); }
};

int fired_count(const char* name, int evals) {
  int fired = 0;
  for (int i = 0; i < evals; ++i) {
    try {
      TTSNN_FAILPOINT(name);
    } catch (const failpoint::FailpointError&) {
      ++fired;
    }
  }
  return fired;
}

// Declared OUTSIDE the fixture so gtest's declaration order puts it first in
// this translation unit; see the file comment.
TEST(FailpointEnvTest, EnvArmedFailpointFiresWithNoCodeChanges) {
  if (std::getenv("TTSNN_FAILPOINTS") == nullptr) {
    GTEST_SKIP() << "TTSNN_FAILPOINTS not set; env arming covered by CI";
  }
  // CI arms test.env:once (and nothing else consumes that name before this
  // test). The site fires exactly once, then passes.
  ASSERT_TRUE(failpoint::armed("test.env"))
      << "TTSNN_FAILPOINTS set but test.env not armed; armed:\n"
      << failpoint::summary();
  EXPECT_EQ(fired_count("test.env", 3), 1);
  EXPECT_EQ(failpoint::fired("test.env"), 1);
  failpoint::disarm_all();
}

TEST_F(FailpointTest, UnarmedSiteIsPassThrough) {
  EXPECT_FALSE(failpoint::any_armed());
  EXPECT_EQ(fired_count("test.nothing", 100), 0);
  // Unarmed evaluation does not even count hits (the macro's fast path
  // skips the registry entirely).
  EXPECT_EQ(failpoint::hits("test.nothing"), 0);
}

TEST_F(FailpointTest, ArmedOtherNameDoesNotFireThisSite) {
  failpoint::arm("test.other", "every:1");
  EXPECT_EQ(fired_count("test.this", 10), 0);
  EXPECT_EQ(failpoint::fired("test.other"), 0);
}

TEST_F(FailpointTest, OffSpecCountsHitsWithoutFiring) {
  failpoint::arm("test.off", "off");
  EXPECT_EQ(fired_count("test.off", 7), 0);
  EXPECT_EQ(failpoint::hits("test.off"), 7);  // proves the site is reached
  EXPECT_EQ(failpoint::fired("test.off"), 0);
}

TEST_F(FailpointTest, OnceFiresOnFirstHitOnly) {
  failpoint::arm("test.once", "once");
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    try {
      TTSNN_FAILPOINT("test.once");
    } catch (const failpoint::FailpointError& e) {
      ++fired;
      EXPECT_EQ(i, 0) << "fired on a later hit";
      EXPECT_NE(std::string(e.what()).find("test.once"), std::string::npos);
    }
  }
  EXPECT_EQ(fired, 1);
}

TEST_F(FailpointTest, EveryNFiresOnExactMultiples) {
  failpoint::arm("test.every", "every:3");
  std::vector<int> fired_at;
  for (int i = 1; i <= 10; ++i) {
    try {
      TTSNN_FAILPOINT("test.every");
    } catch (const failpoint::FailpointError&) {
      fired_at.push_back(i);
    }
  }
  EXPECT_EQ(fired_at, (std::vector<int>{3, 6, 9}));
}

TEST_F(FailpointTest, AfterKPassesKHitsThenAlwaysFires) {
  failpoint::arm("test.after", "after:4");
  EXPECT_EQ(fired_count("test.after", 4), 0);  // the free pass
  EXPECT_EQ(fired_count("test.after", 5), 5);  // everything after fires
}

TEST_F(FailpointTest, RearmResetsCounters) {
  failpoint::arm("test.rearm", "once");
  EXPECT_EQ(fired_count("test.rearm", 3), 1);
  failpoint::arm("test.rearm", "once");  // re-arm: counters reset
  EXPECT_EQ(failpoint::hits("test.rearm"), 0);
  EXPECT_EQ(fired_count("test.rearm", 3), 1);  // fires again on its new first
}

TEST_F(FailpointTest, DisarmStopsFiringAndReportsPresence) {
  failpoint::arm("test.disarm", "every:1");
  EXPECT_EQ(fired_count("test.disarm", 2), 2);
  EXPECT_TRUE(failpoint::disarm("test.disarm"));
  EXPECT_FALSE(failpoint::disarm("test.disarm"));  // second disarm: not armed
  EXPECT_EQ(fired_count("test.disarm", 2), 0);
}

TEST_F(FailpointTest, SpecListParsesTheEnvGrammar) {
  // The spec itself may contain ':' — the split is on the FIRST colon.
  failpoint::arm_spec_list("test.a:once,test.b:every:2,test.c:after:1");
  EXPECT_TRUE(failpoint::armed("test.a"));
  EXPECT_TRUE(failpoint::armed("test.b"));
  EXPECT_TRUE(failpoint::armed("test.c"));
  EXPECT_EQ(fired_count("test.b", 4), 2);  // every:2 -> hits 2 and 4
}

TEST_F(FailpointTest, MalformedSpecsThrowLabeledErrors) {
  EXPECT_THROW(failpoint::arm("test.bad", "sometimes"), Error);
  EXPECT_THROW(failpoint::arm("test.bad", "every:0"), Error);
  EXPECT_THROW(failpoint::arm("test.bad", "every:x"), Error);
  EXPECT_THROW(failpoint::arm("test.bad", "after:-1"), Error);
  EXPECT_THROW(failpoint::arm("", "once"), Error);
  EXPECT_THROW(failpoint::arm_spec_list("no-colon-here"), Error);
  EXPECT_FALSE(failpoint::armed("test.bad"));  // rejected before registering
}

// Determinism under concurrency: N threads hammer one every:K failpoint; the
// total fired count must be exactly floor(total_hits / K) regardless of the
// interleaving, because hit accounting is serialized. This is the suite's
// TSan target: the registry must also be free of data races.
TEST_F(FailpointTest, ConcurrentHitsFireDeterministically) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 250;
  constexpr int kEvery = 7;
  failpoint::arm("test.concurrent", "every:7");
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fired] {
      for (int i = 0; i < kPerThread; ++i) {
        try {
          TTSNN_FAILPOINT("test.concurrent");
        } catch (const failpoint::FailpointError&) {
          fired.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  constexpr int kTotal = kThreads * kPerThread;
  EXPECT_EQ(failpoint::hits("test.concurrent"), kTotal);
  EXPECT_EQ(fired.load(), kTotal / kEvery);
  EXPECT_EQ(failpoint::fired("test.concurrent"), kTotal / kEvery);
}

}  // namespace
}  // namespace ttsnn
