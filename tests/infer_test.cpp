// Tests for the compiled inference engine and micro-batching server: exact
// (unmerged) lowering must reproduce eval-mode Module::forward bit-for-bit
// in every TT mode — including an HTT half-step schedule and stride-2
// layers; merged lowering must match merge_network() bit-for-bit; Engine::run
// must be thread-safe (identical bits from concurrent callers); and the
// save -> load -> compile pipeline must reproduce the original model.

#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/factorize.h"
#include "core/models.h"
#include "infer/engine.h"
#include "infer/server.h"
#include "snn/serialize.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace ttsnn {
namespace {

ModelConfig small_config() {
  ModelConfig cfg;
  cfg.in_channels = 3;
  cfg.num_classes = 4;
  cfg.base_width = 8;
  cfg.timesteps = 4;
  return cfg;
}

/// Factorized MS-ResNet18 with a few training forwards so the BN running
/// statistics move off their init values (otherwise BN folding and the
/// buffer round-trip would be vacuous).
ModulePtr trained_model(TTMode mode, Rng& rng, int64_t timesteps = 4) {
  ModelConfig cfg = small_config();
  cfg.timesteps = timesteps;
  ModulePtr net = make_ms_resnet18(cfg, rng);
  FactorizeOptions fopts;
  fopts.mode = mode;
  fopts.use_vbmf = false;
  fopts.rank_fraction = 0.5;
  if (mode == TTMode::kHTT) {
    // Half-step schedule: full, half, full, half.
    fopts.htt_schedule = {true, false, true, false};
    fopts.htt_schedule.resize(static_cast<size_t>(timesteps));
  }
  factorize_network(*net, fopts, rng);
  net->set_training(true);
  for (int i = 0; i < 2; ++i) {
    Tensor warm = Tensor::uniform({timesteps, 2, 3, 8, 8}, rng);
    net->forward(warm);
  }
  net->clear_cache();
  net->set_training(false);
  return net;
}

class InferModeTest : public ::testing::TestWithParam<TTMode> {};

TEST_P(InferModeTest, ExactEngineBitIdenticalToEvalModule) {
  Rng rng(11);
  ModulePtr net = trained_model(GetParam(), rng);
  Tensor x = Tensor::uniform({4, 2, 3, 8, 8}, rng);
  Tensor y_ref = net->forward(x);

  infer::Engine engine = infer::compile(
      *net, {.merge_tt = false, .fold_batchnorm = false});
  Tensor y = engine.run(x);
  ASSERT_EQ(y.shape(), y_ref.shape());
  EXPECT_EQ(max_abs_diff(y, y_ref), 0.0) << tt_mode_name(GetParam());
}

TEST_P(InferModeTest, MergedEngineCloseToEvalModule) {
  Rng rng(12);
  ModulePtr net = trained_model(GetParam(), rng);
  Tensor x = Tensor::uniform({4, 2, 3, 8, 8}, rng);
  Tensor y_ref = net->forward(x);

  infer::Engine engine = infer::compile(*net);  // merged + BN folding
  Tensor y = engine.run(x);
  ASSERT_EQ(y.shape(), y_ref.shape());
  // Merged kernels re-associate float contractions, so allow numeric slack.
  EXPECT_LT(max_abs_diff(y, y_ref), 2e-2) << tt_mode_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Modes, InferModeTest,
                         ::testing::Values(TTMode::kSTT, TTMode::kPTT,
                                           TTMode::kHTT),
                         [](const auto& info) {
                           return tt_mode_name(info.param);
                         });

// merge_network() replaces TTConv2d with the merged dense kernels; the
// merged engine (without BN folding) must agree with it bit-for-bit. HTT is
// excluded: merge_network is lossy there (it applies the cross kernel on
// half steps too), which is exactly what the engine's per-step plan fixes.
TEST(InferTest, MergedEngineBitIdenticalToMergedNetwork) {
  for (TTMode mode : {TTMode::kSTT, TTMode::kPTT}) {
    Rng rng(13);
    ModulePtr net = trained_model(mode, rng);
    infer::Engine engine =
        infer::compile(*net, {.merge_tt = true, .fold_batchnorm = false});

    merge_network(*net);
    net->set_training(false);
    Tensor x = Tensor::uniform({4, 2, 3, 8, 8}, rng);
    Tensor y_ref = net->forward(x);
    Tensor y = engine.run(x);
    EXPECT_EQ(max_abs_diff(y, y_ref), 0.0) << tt_mode_name(mode);
  }
}

// A bare strided HTT layer with a half-step schedule: the smallest case
// exercising the stride-on-w4 half path and the per-step merged plan.
TEST(InferTest, StridedHttLayerExactAndMerged) {
  Rng rng(14);
  TTConv2d::Options o{.in_channels = 6, .out_channels = 8, .kernel = 3,
                      .stride = 2, .rank = 3, .mode = TTMode::kHTT,
                      .full_step = std::vector<bool>{true, false, false, true}};
  TTConv2d conv(o, rng);
  conv.set_training(false);
  Tensor x = Tensor::uniform({4, 3, 6, 10, 10}, rng);
  Tensor y_ref = conv.forward(x);

  infer::Engine exact = infer::compile(
      conv, {.merge_tt = false, .fold_batchnorm = false});
  EXPECT_EQ(max_abs_diff(exact.run(x), y_ref), 0.0);

  infer::Engine merged = infer::compile(conv);
  Tensor y_merged = merged.run(x);
  ASSERT_EQ(y_merged.shape(), y_ref.shape());
  EXPECT_LT(max_abs_diff(y_merged, y_ref), 1e-4);
}

TEST(InferTest, FoldingBatchnormShrinksThePlan) {
  Rng rng(15);
  ModulePtr net = trained_model(TTMode::kPTT, rng);
  infer::Engine folded = infer::compile(*net);
  infer::Engine unfolded =
      infer::compile(*net, {.merge_tt = true, .fold_batchnorm = false});
  EXPECT_LT(folded.num_ops(), unfolded.num_ops());
  EXPECT_FALSE(folded.summary().empty());

  Tensor x = Tensor::uniform({4, 2, 3, 8, 8}, rng);
  Tensor y_folded = folded.run(x);
  Tensor y_unfolded = unfolded.run(x);
  ASSERT_EQ(y_folded.shape(), y_unfolded.shape());
  EXPECT_LT(max_abs_diff(y_folded, y_unfolded), 2e-2);
}

// TEBN's per-timestep scale cannot fold into a time-invariant kernel; the
// lowering must keep a standalone affine op and still be bit-exact.
TEST(InferTest, TebnStaysUnfoldedAndExact) {
  Rng rng(16);
  ModelConfig cfg = small_config();
  cfg.bn_mode = BatchNorm::Mode::kTebn;
  ModulePtr net = make_vgg9(cfg, rng);
  net->set_training(true);
  Tensor warm = Tensor::uniform({4, 2, 3, 8, 8}, rng);
  net->forward(warm);
  net->clear_cache();
  net->set_training(false);

  Tensor x = Tensor::uniform({4, 2, 3, 8, 8}, rng);
  Tensor y_ref = net->forward(x);
  infer::Engine engine = infer::compile(*net);  // fold requested, TEBN skips
  EXPECT_EQ(max_abs_diff(engine.run(x), y_ref), 0.0);
}

// A Residual whose body STARTS with BatchNorm: the BN's input register is
// also the skip input, so the fold must NOT rewrite the conv that produced
// it (the skip branch needs the raw conv output).
TEST(InferTest, FoldNeverRewritesASharedResidualInput) {
  Rng rng(22);
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2d>(Conv2d::Options{.in_channels = 3, .out_channels = 4},
                       rng);
  auto body = std::make_unique<Sequential>();
  body->emplace<BatchNorm>(BatchNorm::Options{.channels = 4});
  net->add(std::make_unique<Residual>(std::move(body), nullptr));
  net->emplace<LIFNeuron>();

  net->set_training(true);
  net->forward(Tensor::uniform({2, 2, 3, 6, 6}, rng));
  net->clear_cache();
  net->set_training(false);

  Tensor x = Tensor::uniform({2, 2, 3, 6, 6}, rng);
  Tensor y_ref = net->forward(x);
  infer::Engine engine = infer::compile(*net);  // folding requested
  EXPECT_EQ(max_abs_diff(engine.run(x), y_ref), 0.0);
}

TEST(InferTest, ConcurrentRunsAreBitIdentical) {
  Rng rng(17);
  ModulePtr net = trained_model(TTMode::kPTT, rng);
  infer::Engine engine = infer::compile(*net);

  constexpr int kInputs = 4;
  constexpr int kThreads = 6;
  std::vector<Tensor> inputs;
  std::vector<Tensor> golden;
  for (int i = 0; i < kInputs; ++i) {
    inputs.push_back(Tensor::uniform({4, 1, 3, 8, 8}, rng));
    golden.push_back(engine.run(inputs.back()));
  }

  // Raise the gemm fan-out so concurrent runs also contend on the shared
  // thread pool, not just on the engine.
  GemmThreadsGuard guard(2);
  std::vector<std::thread> threads;
  std::vector<double> worst(kThreads, -1.0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      double w = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        for (int i = 0; i < kInputs; ++i) {
          w = std::max(w, max_abs_diff(engine.run(inputs[static_cast<size_t>(i)]),
                                       golden[static_cast<size_t>(i)]));
        }
      }
      worst[static_cast<size_t>(t)] = w;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(worst[static_cast<size_t>(t)], 0.0) << "thread " << t;
  }
}

class InferCheckpointTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/ttsnn_infer_ckpt.bin";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(InferCheckpointTest, SaveLoadCompileReproducesOriginal) {
  Rng rng(18);
  ModulePtr original = trained_model(TTMode::kPTT, rng);
  save_parameters(*original, path_);

  // A fresh model from a different seed: everything — weights AND BN running
  // statistics — must come from the checkpoint.
  Rng rng2(990);
  ModelConfig cfg = small_config();
  ModulePtr fresh = make_ms_resnet18(cfg, rng2);
  FactorizeOptions fopts;
  fopts.mode = TTMode::kPTT;
  fopts.use_vbmf = false;
  fopts.rank_fraction = 0.5;
  factorize_network(*fresh, fopts, rng2);

  infer::Engine engine = infer::compile_checkpoint(*fresh, path_);
  infer::Engine reference = infer::compile(*original);

  Tensor x = Tensor::uniform({4, 2, 3, 8, 8}, rng);
  EXPECT_EQ(max_abs_diff(engine.run(x), reference.run(x)), 0.0);

  // And the exact pipeline agrees with the original module itself.
  infer::Engine exact = infer::compile(
      *fresh, {.merge_tt = false, .fold_batchnorm = false});
  original->set_training(false);
  EXPECT_EQ(max_abs_diff(exact.run(x), original->forward(x)), 0.0);
}

TEST(InferServerTest, OutputsMatchPerRequestEngineRuns) {
  Rng rng(19);
  ModulePtr net = trained_model(TTMode::kPTT, rng);
  infer::Engine engine = infer::compile(*net);
  infer::Server server(engine, {.max_batch = 4, .max_delay_ms = 5.0,
                                .num_dispatchers = 2});

  constexpr int kRequests = 8;
  std::vector<Tensor> samples;
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < kRequests; ++i) {
    samples.push_back(Tensor::uniform({4, 3, 8, 8}, rng));
    futures.push_back(server.submit(samples.back()));
  }
  for (int i = 0; i < kRequests; ++i) {
    Tensor got = futures[static_cast<size_t>(i)].get();
    // Reference: the same sample as a batch of one.
    Tensor single = samples[static_cast<size_t>(i)].reshape({4, 1, 3, 8, 8});
    Tensor want = engine.run(single);
    Tensor want_flat = want.reshape({want.size(0), -1});
    Tensor got_flat = got.reshape({got.size(0), -1});
    ASSERT_EQ(got_flat.shape(), want_flat.shape());
    EXPECT_EQ(max_abs_diff(got_flat, want_flat), 0.0) << "request " << i;
  }
  infer::ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, kRequests);
  EXPECT_GE(stats.batches, 1);
}

TEST(InferServerTest, CoalescesBurstsIntoBatches) {
  Rng rng(20);
  ModulePtr net = trained_model(TTMode::kPTT, rng);
  infer::Engine engine = infer::compile(*net);
  // A generous deadline: the dispatcher should fill whole batches from a
  // burst instead of dribbling out one request at a time.
  infer::Server server(engine, {.max_batch = 4, .max_delay_ms = 200.0});

  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(server.submit(Tensor::uniform({4, 3, 8, 8}, rng)));
  }
  for (auto& f : futures) f.get();
  infer::ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, 8);
  EXPECT_LE(stats.batches, 4);  // mean batch >= 2: coalescing happened
  EXPECT_GE(stats.max_batch, 2);
}

// Mixed spatial sizes are legal (same-padded convs take any H x W): the
// batcher must partition them into same-shaped batches, not mix them.
TEST(InferServerTest, PartitionsMixedShapesIntoSeparateBatches) {
  Rng rng(23);
  ModulePtr net = trained_model(TTMode::kPTT, rng);
  infer::Engine engine = infer::compile(*net);
  infer::Server server(engine, {.max_batch = 4, .max_delay_ms = 50.0});

  std::future<Tensor> small = server.submit(Tensor::uniform({4, 3, 8, 8}, rng));
  std::future<Tensor> large =
      server.submit(Tensor::uniform({4, 3, 12, 12}, rng));
  EXPECT_EQ(small.get().size(0), 4);
  EXPECT_EQ(large.get().size(0), 4);
  EXPECT_GE(server.stats().batches, 2);
}

TEST(InferServerTest, BadRequestFailsAtSubmitAndNeverPoisonsOthers) {
  Rng rng(21);
  ModulePtr net = trained_model(TTMode::kPTT, rng);
  infer::Engine engine = infer::compile(*net);
  infer::Server server(engine, {.max_batch = 1, .max_delay_ms = 1.0});

  // Wrong channel count: the plan can NEVER serve it, so the submit call
  // itself rejects it against the model's input signature — synchronously,
  // instead of queueing it and poisoning a future inside the dispatcher.
  EXPECT_THROW(server.submit(Tensor::uniform({4, 5, 8, 8}, rng)), Error);

  // The server survives and keeps serving.
  Tensor ok = server.infer(Tensor::uniform({4, 3, 8, 8}, rng));
  EXPECT_EQ(ok.size(0), 4);
}

// Regression: a zero-sized sample ([0, C, H, W] etc.) used to pass the
// dim()==4 submit check and crash the dispatcher process with an integer
// divide by zero while stacking (numel / t_steps). It must fail the one
// submit call instead, and the server must keep serving.
TEST(InferServerTest, SubmitRejectsZeroSizedSample) {
  Rng rng(24);
  ModulePtr net = trained_model(TTMode::kPTT, rng);
  infer::Engine engine = infer::compile(*net);
  infer::Server server(engine, {.max_batch = 2, .max_delay_ms = 1.0});

  EXPECT_THROW(server.submit(Tensor(Shape{0, 3, 8, 8})), Error);
  EXPECT_THROW(server.submit(Tensor(Shape{4, 3, 0, 8})), Error);

  Tensor ok = server.infer(Tensor::uniform({4, 3, 8, 8}, rng));
  EXPECT_EQ(ok.size(0), 4);
  EXPECT_EQ(server.stats().requests, 1);
}

TEST(InferTest, CompileRejectsUnknownModules) {
  class Mystery : public Module {
   public:
    Tensor forward(const Tensor& x) override { return x; }
    Tensor backward(const Tensor& g) override { return g; }
    std::string name() const override { return "Mystery"; }
  };
  Mystery m;
  EXPECT_THROW(infer::compile(m), Error);
}

}  // namespace
}  // namespace ttsnn
