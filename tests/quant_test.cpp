/// \file quant_test.cpp
/// Typed weight planes: bf16 codec bitwise behavior (round-to-nearest-even
/// incl. ties, NaN/denormal handling), int8 spike-GEMM scalar-vs-AVX2
/// equality across all tail lanes, per-channel quantization invariants, and
/// the end-to-end contracts — weight_dtype=f32 bit-identical to the default
/// engine, planned and legacy executors bit-identical for quantized plans,
/// and an accuracy-delta sweep over STT/PTT/HTT vs the f32 engine.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "infer/engine.h"
#include "infer/plan_cache.h"
#include "model_gen.h"
#include "tensor/simd.h"
#include "tensor/weight_plane.h"

namespace ttsnn {
namespace {

uint32_t f32_bits(float x) {
  uint32_t b = 0;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

float bits_f32(uint32_t b) {
  float x = 0.0F;
  std::memcpy(&x, &b, sizeof(x));
  return x;
}

/// Independent reference encoder: pick the nearer of the two neighboring
/// bf16 codes (truncate / truncate+1), ties to the even code. IEEE bit
/// patterns of one sign are ordered by magnitude, so +1 on the upper half is
/// exactly "next representable bf16 away from zero" — including the carry
/// into the exponent and the overflow of the largest finite value to inf.
uint16_t ref_bf16(float x) {
  const uint32_t bits = f32_bits(x);
  const auto lo = static_cast<uint16_t>(bits >> 16U);
  const uint32_t rem = bits & 0xffffU;
  const auto hi = static_cast<uint16_t>(lo + 1);
  if (rem < 0x8000U) return lo;
  if (rem > 0x8000U) return hi;
  return (lo & 1U) != 0 ? hi : lo;
}

TEST(Bf16Codec, RoundToNearestEvenIncludingTies) {
  // Exact values stay exact.
  EXPECT_EQ(bf16_from_f32(1.0F), 0x3f80);
  EXPECT_EQ(bf16_from_f32(-2.0F), 0xc000);
  EXPECT_EQ(bf16_from_f32(0.0F), 0x0000);
  EXPECT_EQ(bf16_from_f32(-0.0F), 0x8000);
  // Below the tie: rounds down. Above: rounds up.
  EXPECT_EQ(bf16_from_f32(bits_f32(0x3f807fffU)), 0x3f80);
  EXPECT_EQ(bf16_from_f32(bits_f32(0x3f808001U)), 0x3f81);
  // Exact ties go to the even code: 0x3f80 keeps (even), 0x3f81 bumps.
  EXPECT_EQ(bf16_from_f32(bits_f32(0x3f808000U)), 0x3f80);
  EXPECT_EQ(bf16_from_f32(bits_f32(0x3f818000U)), 0x3f82);
  // Carry across the exponent boundary: 1.9999999 -> 2.0.
  EXPECT_EQ(bf16_from_f32(bits_f32(0x3fffffffU)), 0x4000);
  // Largest finite f32 rounds past the largest finite bf16 into infinity.
  EXPECT_EQ(bf16_from_f32(bits_f32(0x7f7fffffU)), 0x7f80);
  EXPECT_EQ(bf16_from_f32(bits_f32(0xff7fffffU)), 0xff80);
}

TEST(Bf16Codec, SpecialValuesAndDenormals) {
  // Infinities are exact.
  EXPECT_EQ(bf16_from_f32(bits_f32(0x7f800000U)), 0x7f80);
  EXPECT_EQ(bf16_from_f32(bits_f32(0xff800000U)), 0xff80);
  // NaN must stay NaN (quiet), never collapse to infinity — even a
  // signaling NaN whose payload lives only in the dropped bits.
  const uint16_t quiet = bf16_from_f32(bits_f32(0x7fc00001U));
  EXPECT_TRUE(std::isnan(bf16_to_f32(quiet)));
  const uint16_t signaling = bf16_from_f32(bits_f32(0x7f800001U));
  EXPECT_TRUE(std::isnan(bf16_to_f32(signaling)));
  EXPECT_TRUE(std::isnan(bf16_to_f32(bf16_from_f32(bits_f32(0xffc12345U)))));
  // bf16-representable denormals (low 16 bits clear) round-trip exactly.
  for (uint32_t b : {0x00010000U, 0x00700000U, 0x807f0000U}) {
    const float x = bits_f32(b);
    EXPECT_EQ(f32_bits(bf16_to_f32(bf16_from_f32(x))), b);
  }
  // A denormal below the smallest bf16 denormal rounds to (signed) zero.
  EXPECT_EQ(bf16_from_f32(bits_f32(0x00000001U)), 0x0000);
  EXPECT_EQ(bf16_from_f32(bits_f32(0x80000001U)), 0x8000);
}

TEST(Bf16Codec, MatchesNearestNeighborReferenceOnRandomBits) {
  Rng rng(testgen::suite_seed(0xbf16));
  for (int i = 0; i < 20000; ++i) {
    uint32_t bits = static_cast<uint32_t>(rng.index(1LL << 32));
    if ((bits & 0x7fffffffU) > 0x7f800000U) continue;  // NaN: separate test
    const float x = bits_f32(bits);
    EXPECT_EQ(bf16_from_f32(x), ref_bf16(x))
        << "bits=0x" << std::hex << bits << " " << testgen::seed_line(0xbf16);
  }
}

TEST(Bf16Codec, DecodeIsExactBitExpansion) {
  for (uint32_t code = 0; code <= 0xffffU; ++code) {
    const auto h = static_cast<uint16_t>(code);
    EXPECT_EQ(f32_bits(bf16_to_f32(h)), static_cast<uint32_t>(h) << 16U);
  }
}

TEST(Bf16Codec, BulkDequantScalarVsAvx2AllTailLanes) {
  if (simd::detected_level() != simd::Level::kAvx2) {
    GTEST_SKIP() << "AVX2 not available on this host";
  }
  Rng rng(testgen::suite_seed(0xdeca));
  for (int64_t n = 1; n <= 33; ++n) {
    std::vector<uint16_t> src(static_cast<size_t>(n));
    for (auto& v : src) v = static_cast<uint16_t>(rng.index(1 << 16));
    std::vector<float> scalar(static_cast<size_t>(n));
    std::vector<float> vec(static_cast<size_t>(n));
    {
      simd::LevelGuard guard(simd::Level::kScalar);
      simd::dequant_bf16(n, src.data(), scalar.data());
    }
    {
      simd::LevelGuard guard(simd::Level::kAvx2);
      simd::dequant_bf16(n, src.data(), vec.data());
    }
    EXPECT_EQ(std::memcmp(scalar.data(), vec.data(),
                          static_cast<size_t>(n) * sizeof(float)),
              0)
        << "n=" << n;
  }
}

TEST(Int8Plane, PerChannelScalesAndBoundedError) {
  Rng rng(7);
  Tensor w = Tensor::randn({6, 5, 3, 3}, rng);
  // One all-zero output channel pins the degenerate-scale path.
  for (int64_t i = 0; i < 45; ++i) w.data()[2 * 45 + i] = 0.0F;
  const WeightPlane p = WeightPlane::int8_from(w);
  ASSERT_EQ(p.dtype(), WeightDtype::kInt8);
  ASSERT_EQ(p.rows(), 6);
  ASSERT_EQ(p.scales().numel(), 6);
  const Tensor deq = p.dequant();
  for (int64_t r = 0; r < 6; ++r) {
    float amax = 0.0F;
    for (int64_t i = 0; i < 45; ++i) {
      amax = std::max(amax, std::fabs(w.data()[r * 45 + i]));
    }
    const float scale = p.scales().data()[r];
    if (r == 2) {
      EXPECT_EQ(scale, 1.0F);  // all-zero row: neutral scale, zero codes
    } else {
      EXPECT_FLOAT_EQ(scale, amax / 127.0F);
    }
    int saturated = 0;
    for (int64_t i = 0; i < 45; ++i) {
      const float err = std::fabs(deq.data()[r * 45 + i] - w.data()[r * 45 + i]);
      EXPECT_LE(err, scale * 0.5F + 1e-7F);
      if (std::abs(p.int8_data()[r * 45 + i]) == 127) ++saturated;
    }
    if (r != 2) EXPECT_GE(saturated, 1);  // the amax element maps to +-127
  }
}

TEST(Int8Gemm, ScalarVsAvx2BitIdenticalAcrossAllTailLanes) {
  if (simd::detected_level() != simd::Level::kAvx2) {
    GTEST_SKIP() << "AVX2 not available on this host";
  }
  Rng rng(testgen::suite_seed(0x5e8));
  std::vector<int64_t> ks;
  for (int64_t k = 1; k <= 40; ++k) ks.push_back(k);  // every maddubs tail
  ks.push_back(64);
  ks.push_back(100);
  for (const int64_t k : ks) {
    const int64_t m = 3;
    const int64_t n = 5;
    std::vector<int8_t> w(static_cast<size_t>(m * k));
    std::vector<uint8_t> s(static_cast<size_t>(n * k));
    std::vector<float> scale(static_cast<size_t>(std::max(m, n)));
    for (auto& v : w) v = static_cast<int8_t>(rng.index(255) - 127);
    for (auto& v : s) v = rng.bernoulli(0.1F) ? 1 : 0;  // 90% sparse spikes
    for (auto& v : scale) v = 0.25F + 0.01F * static_cast<float>(rng.index(100));
    std::vector<float> c_scalar(static_cast<size_t>(m * n));
    std::vector<float> c_vec(static_cast<size_t>(m * n));
    {
      simd::LevelGuard guard(simd::Level::kScalar);
      simd::gemm_s8_wxs(m, n, k, w.data(), s.data(), scale.data(),
                        c_scalar.data());
    }
    {
      simd::LevelGuard guard(simd::Level::kAvx2);
      simd::gemm_s8_wxs(m, n, k, w.data(), s.data(), scale.data(),
                        c_vec.data());
    }
    EXPECT_EQ(std::memcmp(c_scalar.data(), c_vec.data(),
                          c_scalar.size() * sizeof(float)),
              0)
        << "gemm_s8_wxs k=" << k;
    // Linear orientation: s is [m, k] rows, w is [n, k] rows. Reuse the same
    // payloads with m<->n roles that still fit the buffers.
    std::vector<float> l_scalar(static_cast<size_t>(n * m));
    std::vector<float> l_vec(static_cast<size_t>(n * m));
    {
      simd::LevelGuard guard(simd::Level::kScalar);
      simd::gemm_s8_sxw(n, m, k, s.data(), w.data(), scale.data(),
                        l_scalar.data());
    }
    {
      simd::LevelGuard guard(simd::Level::kAvx2);
      simd::gemm_s8_sxw(n, m, k, s.data(), w.data(), scale.data(),
                        l_vec.data());
    }
    EXPECT_EQ(std::memcmp(l_scalar.data(), l_vec.data(),
                          l_scalar.size() * sizeof(float)),
              0)
        << "gemm_s8_sxw k=" << k;
  }
}

// ---- end-to-end contracts over STT / PTT / HTT -----------------------------

struct ModeCase {
  TTMode mode;
  const char* name;
};

const ModeCase kModes[] = {{TTMode::kSTT, "stt"},
                           {TTMode::kPTT, "ptt"},
                           {TTMode::kHTT, "htt"}};

float max_abs(const Tensor& t) {
  float m = 0.0F;
  for (int64_t i = 0; i < t.numel(); ++i) {
    m = std::max(m, std::fabs(t.data()[i]));
  }
  return m;
}

float max_abs_delta(const Tensor& a, const Tensor& b) {
  EXPECT_TRUE(a.same_shape(b));
  float m = 0.0F;
  for (int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::fabs(a.data()[i] - b.data()[i]));
  }
  return m;
}

TEST(QuantEndToEnd, ExplicitF32DtypeIsBitIdenticalToDefault) {
  for (const ModeCase& mc : kModes) {
    SCOPED_TRACE(mc.name);
    Rng rng(41);
    ModulePtr net = testgen::trained_resnet18(mc.mode, rng);
    const infer::Engine base = infer::compile(*net);
    const infer::Engine f32 =
        infer::compile(*net, {.weight_dtype = WeightDtype::kF32});
    const Tensor x = Tensor::uniform({4, 2, 3, 8, 8}, rng);
    EXPECT_EQ(max_abs_delta(base.run(x), f32.run(x)), 0.0F);
    EXPECT_EQ(base.weight_bytes(), f32.weight_bytes());
    EXPECT_EQ(f32.weight_footprint().bf16_bytes, 0);
    EXPECT_EQ(f32.weight_footprint().int8_bytes, 0);
  }
}

TEST(QuantEndToEnd, PlannedAndLegacyExecutorsBitIdenticalWhenQuantized) {
  for (const ModeCase& mc : kModes) {
    for (const WeightDtype dtype : {WeightDtype::kBf16, WeightDtype::kInt8}) {
      SCOPED_TRACE(std::string(mc.name) + "/" + weight_dtype_name(dtype));
      Rng rng(43);
      ModulePtr net = testgen::trained_resnet18(mc.mode, rng);
      const infer::Engine planned =
          infer::compile(*net, {.weight_dtype = dtype});
      const infer::Engine legacy = infer::compile(
          *net, {.static_plan = false, .weight_dtype = dtype});
      const Tensor x = Tensor::uniform({4, 2, 3, 8, 8}, rng);
      // Twice through the planned path: the second call runs from the warm
      // program cache and must not depend on scratch left by the first.
      const Tensor y1 = planned.run(x);
      const Tensor y2 = planned.run(x);
      EXPECT_EQ(max_abs_delta(y1, y2), 0.0F);
      EXPECT_EQ(max_abs_delta(y1, legacy.run(x)), 0.0F);
    }
  }
}

TEST(QuantEndToEnd, AccuracyDeltaSweepAndFootprintAcrossModes) {
  for (const ModeCase& mc : kModes) {
    SCOPED_TRACE(mc.name);
    Rng rng(47);
    ModulePtr net = testgen::trained_resnet18(mc.mode, rng);
    const infer::Engine f32 = infer::compile(*net);
    const infer::Engine bf16 =
        infer::compile(*net, {.weight_dtype = WeightDtype::kBf16});
    const infer::Engine int8 =
        infer::compile(*net, {.weight_dtype = WeightDtype::kInt8});
    const Tensor x = Tensor::uniform({4, 2, 3, 8, 8}, rng);
    const Tensor y = f32.run(x);
    const float norm = std::max(max_abs(y), 1e-6F);
    // Per-scenario accuracy gate: quantized logits must stay within a small
    // relative band of the f32 engine's. The thresholds have headroom over
    // the observed deltas but still catch a broken kernel or mis-scaled
    // plane outright (those blow up by orders of magnitude).
    // Observed (deterministic): bf16 0.1612 — dominated by the bf16-encoded
    // classifier, since conv-weight perturbations are absorbed by the LIF
    // thresholds; int8 0.0 exactly — every int8 op feeds a LIF whose spikes
    // do not flip at this scale, and the classifier falls back to f32. The
    // bands keep ~2x headroom yet still fail outright on a broken kernel or
    // mis-scaled plane (those blow past 1.0).
    EXPECT_LT(max_abs_delta(bf16.run(x), y) / norm, 0.3F) << "bf16 drift";
    EXPECT_LT(max_abs_delta(int8.run(x), y) / norm, 0.3F) << "int8 drift";

    // Census: int8 must quantize the spike-fed convs, and the stem conv
    // (register 0 input — real-valued encoder output) must fall back.
    int quantized = 0;
    int fell_back = 0;
    for (const infer::Op& op : int8.ops()) {
      if (op.plane.quantized() || op.half_plane.quantized()) ++quantized;
      if (!op.quant_note.empty() && !op.plane.quantized()) ++fell_back;
    }
    EXPECT_GE(quantized, 4);
    EXPECT_GE(fell_back, 1);

    // Footprint: quantized planes must actually shrink the unique weight
    // bytes (the hard <0.5x / <=0.55x gates on the tiny serving configs live
    // in bench_micro_ops; models here are tiny-width too, so the same
    // direction must hold).
    EXPECT_GT(int8.weight_footprint().int8_bytes, 0);
    EXPECT_GT(bf16.weight_footprint().bf16_bytes, 0);
    EXPECT_LT(int8.weight_bytes(), f32.weight_bytes());
    EXPECT_LT(bf16.weight_bytes(), f32.weight_bytes());

    // Dtype tag on the compiled per-shape program.
    EXPECT_EQ(int8.program(x.shape())->weight_dtype, WeightDtype::kInt8);
    EXPECT_EQ(f32.program(x.shape())->weight_dtype, WeightDtype::kF32);
  }
}

TEST(QuantEndToEnd, SameBitsOnBothSimdTiersWhenQuantized) {
  Rng rng(53);
  ModulePtr net = testgen::trained_resnet18(TTMode::kPTT, rng);
  const infer::Engine int8 =
      infer::compile(*net, {.weight_dtype = WeightDtype::kInt8});
  const Tensor x = Tensor::uniform({4, 2, 3, 8, 8}, rng);
  Tensor y_scalar;
  Tensor y_active;
  {
    simd::LevelGuard guard(simd::Level::kScalar);
    y_scalar = int8.run(x);
  }
  y_active = int8.run(x);
  EXPECT_EQ(max_abs_delta(y_scalar, y_active), 0.0F);
}

}  // namespace
}  // namespace ttsnn
