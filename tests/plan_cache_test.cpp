// Tests for the shape-keyed compiled-program cache (infer/plan_cache.h): a
// cache-served program must be bitwise-equal to a freshly compiled one (the
// shape-general serving bar), LRU eviction under a tiny byte budget must
// recompile evicted shapes bit-identically, concurrent first misses on one
// shape must compile exactly once (single-flight), engine copies must share
// ONE weight storage and ONE cache (replicas cost metadata, not a model
// copy), and a failed compile must not poison the cache.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/factorize.h"
#include "core/models.h"
#include "infer/analysis.h"
#include "infer/engine.h"
#include "infer/plan_cache.h"
#include "tensor/ops.h"

namespace ttsnn {
namespace {

/// Builds the suite's small factorized MS-ResNet18 with real BN statistics.
infer::Engine make_engine(TTMode mode, infer::CompileOptions copts = {}) {
  Rng rng(31);
  ModelConfig cfg;
  cfg.in_channels = 3;
  cfg.num_classes = 4;
  cfg.base_width = 8;
  cfg.timesteps = 4;
  ModulePtr net = make_ms_resnet18(cfg, rng);
  FactorizeOptions fopts;
  fopts.mode = mode;
  fopts.use_vbmf = false;
  fopts.rank_fraction = 0.5;
  if (mode == TTMode::kHTT) fopts.htt_schedule = {true, false, true, false};
  factorize_network(*net, fopts, rng);
  net->set_training(true);
  for (int i = 0; i < 2; ++i) {
    net->forward(Tensor::uniform({4, 2, 3, 8, 8}, rng));
  }
  net->clear_cache();
  net->set_training(false);
  return infer::compile(*net, copts);
}

/// Field-by-field equality of two compiled programs — the bit-identity bar:
/// layouts, destinations, offsets and resolved schedules must all agree, so
/// a cache round-trip (or an eviction + recompile) can never change what the
/// executor does.
void expect_program_eq(const infer::CompiledProgram& a,
                       const infer::CompiledProgram& b) {
  EXPECT_EQ(a.input, b.input);
  EXPECT_EQ(a.bytes, b.bytes);
  ASSERT_NE(a.layout, nullptr);
  ASSERT_NE(b.layout, nullptr);
  EXPECT_EQ(a.layout->shape, b.layout->shape);
  EXPECT_EQ(a.layout->offset, b.layout->offset);
  EXPECT_EQ(a.layout->floats, b.layout->floats);
  EXPECT_EQ(a.layout->scratch_offset, b.layout->scratch_offset);
  EXPECT_EQ(a.layout->scratch_floats, b.layout->scratch_floats);
  EXPECT_EQ(a.layout->col_offset, b.layout->col_offset);
  EXPECT_EQ(a.layout->col_floats, b.layout->col_floats);
  EXPECT_EQ(a.layout->total_floats, b.layout->total_floats);
  ASSERT_EQ(a.exec.size(), b.exec.size());
  for (size_t i = 0; i < a.exec.size(); ++i) {
    EXPECT_EQ(a.exec[i].dest, b.exec[i].dest) << "op " << i;
    EXPECT_EQ(a.exec[i].out_shape, b.exec[i].out_shape) << "op " << i;
    EXPECT_EQ(a.exec[i].offset, b.exec[i].offset) << "op " << i;
    EXPECT_EQ(a.exec[i].has_schedule, b.exec[i].has_schedule) << "op " << i;
    EXPECT_EQ(a.exec[i].full_idx, b.exec[i].full_idx) << "op " << i;
    EXPECT_EQ(a.exec[i].half_idx, b.exec[i].half_idx) << "op " << i;
  }
}

TEST(PlanCacheTest, CacheServedProgramBitwiseEqualsFreshCompile) {
  infer::Engine engine = make_engine(TTMode::kPTT);
  const Shape shape{4, 2, 3, 8, 8};

  // First call compiles and caches; second call must return the SAME object.
  auto cached = engine.program(shape);
  auto again = engine.program(shape);
  EXPECT_EQ(cached.get(), again.get());

  // The cached program equals an out-of-cache compile field for field.
  infer::CompiledProgram fresh =
      infer::compile_program(engine.ops(), engine.analysis(), shape);
  expect_program_eq(*cached, fresh);

  // And the executor driven by it is deterministic: identical bits per run.
  Rng rng(7);
  Tensor x = Tensor::uniform(shape, rng);
  Tensor y1 = engine.run(x);
  Tensor y2 = engine.run(x);
  EXPECT_EQ(max_abs_diff(y1, y2), 0.0);

  infer::ProgramCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_GE(stats.hits, 3);  // the second program() + the two runs
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.bytes, cached->bytes);
  EXPECT_GT(stats.bytes, 0);
}

// HTT is the mode where per-shape compilation does real work beyond the
// layout: the full/half step split is resolved for the input's T. The cached
// split must match both a fresh compile and the engine's output bits.
TEST(PlanCacheTest, HttScheduleSplitIsCachedPerTimestepCount) {
  infer::Engine engine = make_engine(TTMode::kHTT);
  const Shape shape{4, 1, 3, 8, 8};

  auto cached = engine.program(shape);
  bool saw_schedule = false;
  for (const infer::OpExec& e : cached->exec) {
    if (!e.has_schedule) continue;
    saw_schedule = true;
    // htt_schedule = {1, 0, 1, 0} at T=4.
    EXPECT_EQ(e.full_idx, (std::vector<int64_t>{0, 2}));
    EXPECT_EQ(e.half_idx, (std::vector<int64_t>{1, 3}));
  }
  EXPECT_TRUE(saw_schedule) << "HTT plan compiled without any schedule split";

  expect_program_eq(
      *cached, infer::compile_program(engine.ops(), engine.analysis(), shape));

  Rng rng(8);
  Tensor x = Tensor::uniform(shape, rng);
  EXPECT_EQ(max_abs_diff(engine.run(x), engine.run(x)), 0.0);
}

TEST(PlanCacheTest, LruEvictionUnderTinyBudgetRecompilesBitIdentically) {
  // A 1-byte budget retains only the most recently compiled shape: every new
  // shape evicts the previous one, and the evicted shape must recompile to
  // the exact same program (and the exact same output bits) when it returns.
  infer::Engine engine =
      make_engine(TTMode::kPTT, infer::CompileOptions{.plan_cache_bytes = 1});
  const Shape shape_a{4, 1, 3, 8, 8};
  const Shape shape_b{4, 1, 3, 12, 12};

  Rng rng(9);
  Tensor xa = Tensor::uniform(shape_a, rng);
  infer::CompiledProgram first = *engine.program(shape_a);
  Tensor ya1 = engine.run(xa);
  EXPECT_EQ(engine.cache_stats().entries, 1);

  engine.run(Tensor::uniform(shape_b, rng));  // compiles B, evicts A
  infer::ProgramCacheStats stats = engine.cache_stats();
  EXPECT_EQ(stats.entries, 1);
  EXPECT_GE(stats.evictions, 1);

  // A comes back: a fresh miss, not a stale entry — and bit-identical.
  const int64_t misses_before = stats.misses;
  infer::CompiledProgram recompiled = *engine.program(shape_a);
  EXPECT_EQ(engine.cache_stats().misses, misses_before + 1);
  expect_program_eq(first, recompiled);
  Tensor ya2 = engine.run(xa);
  EXPECT_EQ(max_abs_diff(ya1, ya2), 0.0);
}

TEST(PlanCacheTest, ConcurrentFirstMissIsSingleFlight) {
  infer::Engine engine = make_engine(TTMode::kPTT);
  const Shape shape{4, 3, 3, 10, 10};
  constexpr int kThreads = 8;

  const infer::ProgramCacheStats before = engine.cache_stats();
  std::atomic<int> ready{0};
  std::vector<std::shared_ptr<const infer::CompiledProgram>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      // Crude barrier so the calls overlap; correctness does not depend on
      // it (a miss is counted at entry insertion, under the lock).
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      got[static_cast<size_t>(i)] = engine.program(shape);
    });
  }
  for (std::thread& t : threads) t.join();

  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(got[0].get(), got[static_cast<size_t>(i)].get())
        << "thread " << i << " got a different program object";
  }
  const infer::ProgramCacheStats after = engine.cache_stats();
  EXPECT_EQ(after.misses - before.misses, 1) << "shape compiled more than once";
  EXPECT_EQ(after.hits - before.hits, kThreads - 1);
}

TEST(PlanCacheTest, EngineCopiesShareWeightStorageAndCache) {
  infer::Engine engine = make_engine(TTMode::kPTT);
  infer::Engine replica = engine;  // what Router does per shard

  // Every weight tensor of every op shares storage with the original: a
  // replica (and N cached shapes — programs hold no weights at all) costs
  // plan metadata, never a copy of the parameters.
  ASSERT_EQ(engine.ops().size(), replica.ops().size());
  for (size_t i = 0; i < engine.ops().size(); ++i) {
    const infer::Op& a = engine.ops()[i];
    const infer::Op& b = replica.ops()[i];
    if (a.weight.defined()) EXPECT_EQ(a.weight.data(), b.weight.data());
    if (a.bias.defined()) EXPECT_EQ(a.bias.data(), b.bias.data());
    if (a.w1.defined()) EXPECT_EQ(a.w1.data(), b.w1.data());
    if (a.full_kernel.defined()) {
      EXPECT_EQ(a.full_kernel.data(), b.full_kernel.data());
    }
    if (a.bn_gamma.defined()) EXPECT_EQ(a.bn_gamma.data(), b.bn_gamma.data());
  }
  EXPECT_GT(engine.weight_bytes(), 0);
  EXPECT_EQ(engine.weight_bytes(), replica.weight_bytes());

  // One shared cache: a shape compiled through the ORIGINAL is a warm hit on
  // the REPLICA, returning the very same program object.
  const Shape shape{4, 1, 3, 14, 14};
  auto via_original = engine.program(shape);
  const int64_t misses = engine.cache_stats().misses;
  auto via_replica = replica.program(shape);
  EXPECT_EQ(via_original.get(), via_replica.get());
  EXPECT_EQ(replica.cache_stats().misses, misses) << "replica recompiled";

  // Cached metadata stays far below the (shared) weight footprint.
  EXPECT_LT(engine.cache_stats().bytes, engine.weight_bytes());
}

TEST(PlanCacheTest, FailedCompileIsNotCached) {
  // The HTT schedule covers T=4; T=8 cannot be laid out. The error must
  // surface on every attempt (no cached-exception poisoning) and must leave
  // no residue in the cache.
  infer::Engine engine = make_engine(TTMode::kHTT);
  const Shape bad{8, 1, 3, 8, 8};

  const infer::ProgramCacheStats before = engine.cache_stats();
  EXPECT_THROW(engine.program(bad), Error);
  infer::ProgramCacheStats mid = engine.cache_stats();
  EXPECT_EQ(mid.entries, before.entries);
  EXPECT_EQ(mid.misses, before.misses + 1);
  EXPECT_THROW(engine.program(bad), Error);  // retried, not replayed
  EXPECT_EQ(engine.cache_stats().misses, before.misses + 2);

  // The engine still serves good shapes afterwards.
  Rng rng(10);
  Tensor y = engine.run(Tensor::uniform({4, 1, 3, 8, 8}, rng));
  EXPECT_EQ(y.size(0), 4);
}

TEST(PlanCacheTest, SummaryReportsCacheResidencyAndSharedWeights) {
  infer::Engine engine = make_engine(TTMode::kPTT);
  engine.program({4, 1, 3, 8, 8});
  engine.program({4, 1, 3, 12, 12});

  const std::string s = engine.summary();
  EXPECT_NE(s.find("plan cache: 2 shape(s)"), std::string::npos) << s;
  EXPECT_NE(s.find("hits"), std::string::npos) << s;
  EXPECT_NE(s.find("evictions"), std::string::npos) << s;
  EXPECT_NE(s.find("weights: "), std::string::npos) << s;
  EXPECT_NE(s.find("shared across all cached shapes"), std::string::npos) << s;
}

}  // namespace
}  // namespace ttsnn
