// DataLoader contract tests: deterministic seeded shuffle order, bitwise
// async-vs-sync batch identity (the tentpole guarantee), prefetch-depth
// sweep including the synchronous fallback, clean shutdown mid-epoch, and
// producer-exception propagation.

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/models.h"
#include "data/synthetic_event.h"
#include "data/synthetic_image.h"
#include "snn/dataloader.h"
#include "snn/trainer.h"
#include "util/thread_pool.h"

namespace ttsnn {
namespace {

// This container can report a single core, which would give the shared pool
// zero workers and silently collapse every loader to the sync fallback. Size
// the pool before its lazy construction so the async path actually runs.
const bool kPoolSized = [] {
  setenv("TTSNN_POOL_THREADS", "3", /*overwrite=*/0);
  return true;
}();

SyntheticEventDataset event_data(int64_t per_class = 8) {
  return SyntheticEventDataset(
      {.num_classes = 4, .samples_per_class = per_class, .size = 10, .seed = 77});
}

DataLoaderOptions loader_opts(int64_t prefetch, bool augment = true) {
  DataLoaderOptions o;
  o.batch_size = 6;
  o.timesteps = 3;
  o.seed = 21;
  o.augment = augment;
  o.augment_opts = {.max_shift = 1, .cutout_size = 2};
  o.prefetch = prefetch;
  return o;
}

/// Collects one full epoch: (inputs, labels) per batch.
std::vector<Batch> collect_epoch(DataLoader& loader, int64_t epoch) {
  loader.begin_epoch(epoch);
  std::vector<Batch> out;
  Batch b;
  while (loader.next(&b)) out.push_back(b);
  return out;
}

void expect_bitwise_equal(const std::vector<Batch>& a,
                          const std::vector<Batch>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].labels, b[i].labels) << "batch " << i;
    ASSERT_EQ(a[i].input.numel(), b[i].input.numel()) << "batch " << i;
    const float* pa = a[i].input.data();
    const float* pb = b[i].input.data();
    for (int64_t j = 0; j < a[i].input.numel(); ++j) {
      ASSERT_EQ(pa[j], pb[j]) << "batch " << i << " elem " << j;
    }
  }
}

TEST(DataLoaderTest, PoolHasWorkersForAsyncCoverage) {
  ASSERT_TRUE(kPoolSized);
  // If this fires, every async assertion below silently tests the fallback.
  EXPECT_GT(ThreadPool::instance().workers(), 0);
}

TEST(DataLoaderTest, ShuffleOrderDeterministicAcrossRuns) {
  SyntheticEventDataset data = event_data();
  DataLoader a(data, loader_opts(/*prefetch=*/2));
  DataLoader b(data, loader_opts(/*prefetch=*/2));
  expect_bitwise_equal(collect_epoch(a, 0), collect_epoch(b, 0));
  expect_bitwise_equal(collect_epoch(a, 3), collect_epoch(b, 3));
}

TEST(DataLoaderTest, EpochsReshuffle) {
  SyntheticEventDataset data = event_data();
  DataLoader loader(data, loader_opts(/*prefetch=*/0, /*augment=*/false));
  std::vector<Batch> e0 = collect_epoch(loader, 0);
  std::vector<Batch> e1 = collect_epoch(loader, 1);
  ASSERT_EQ(e0.size(), e1.size());
  bool any_difference = false;
  for (size_t i = 0; i < e0.size() && !any_difference; ++i) {
    any_difference = e0[i].labels != e1[i].labels;
  }
  EXPECT_TRUE(any_difference) << "epoch 1 kept epoch 0's shuffle order";
}

TEST(DataLoaderTest, AsyncBitwiseIdenticalToSync) {
  SyntheticEventDataset data = event_data();
  DataLoader sync_loader(data, loader_opts(/*prefetch=*/0));
  DataLoader async_loader(data, loader_opts(/*prefetch=*/2));
  ASSERT_FALSE(sync_loader.async());
  ASSERT_TRUE(async_loader.async());
  for (int64_t epoch = 0; epoch < 3; ++epoch) {
    expect_bitwise_equal(collect_epoch(sync_loader, epoch),
                         collect_epoch(async_loader, epoch));
  }
}

TEST(DataLoaderTest, PrefetchDepthSweep) {
  SyntheticEventDataset data = event_data();
  DataLoader reference(data, loader_opts(/*prefetch=*/0));
  const std::vector<Batch> want = collect_epoch(reference, 0);
  ASSERT_EQ(static_cast<int64_t>(want.size()), reference.batches_per_epoch());
  // Depth beyond batches_per_epoch must clamp, not wedge or over-schedule.
  for (int64_t depth : {1, 2, 3, 64}) {
    DataLoader loader(data, loader_opts(depth));
    expect_bitwise_equal(want, collect_epoch(loader, 0));
  }
}

TEST(DataLoaderTest, ShutdownMidEpochDoesNotDeadlock) {
  SyntheticEventDataset data = event_data(16);
  for (int64_t consumed : {0, 1, 3}) {
    DataLoader loader(data, loader_opts(/*prefetch=*/4));
    loader.begin_epoch(0);
    Batch b;
    for (int64_t i = 0; i < consumed; ++i) ASSERT_TRUE(loader.next(&b));
    // Destructor must cancel + drain in-flight producers; a deadlock here
    // hangs the test binary (ctest timeout catches it loudly).
  }
}

TEST(DataLoaderTest, BeginEpochMidEpochRestartsCleanly) {
  SyntheticEventDataset data = event_data();
  DataLoader loader(data, loader_opts(/*prefetch=*/2));
  loader.begin_epoch(0);
  Batch b;
  ASSERT_TRUE(loader.next(&b));  // abandon the rest of the epoch
  DataLoader reference(data, loader_opts(/*prefetch=*/0));
  expect_bitwise_equal(collect_epoch(reference, 1), collect_epoch(loader, 1));
}

TEST(DataLoaderTest, RemainderBatchKeptWhenNotDropping) {
  SyntheticImageDataset data({.num_classes = 3, .samples_per_class = 5,
                              .size = 8, .seed = 5});  // 15 samples
  DataLoaderOptions o;
  o.batch_size = 6;
  o.timesteps = 2;
  o.shuffle = false;
  o.drop_last = false;
  o.prefetch = 2;
  DataLoader loader(data, o);
  EXPECT_EQ(loader.batches_per_epoch(), 3);
  std::vector<Batch> got = collect_epoch(loader, 0);
  ASSERT_EQ(got.size(), 3U);
  EXPECT_EQ(static_cast<int64_t>(got.back().labels.size()), 3);

  o.drop_last = true;
  DataLoader dropping(data, o);
  EXPECT_EQ(dropping.batches_per_epoch(), 2);
}

TEST(DataLoaderTest, SequentialOrderWithoutShuffle) {
  SyntheticImageDataset data({.num_classes = 2, .samples_per_class = 6,
                              .size = 8, .seed = 5});
  DataLoaderOptions o;
  o.batch_size = 4;
  o.timesteps = 2;
  o.shuffle = false;
  o.drop_last = false;
  o.prefetch = 2;
  DataLoader loader(data, o);
  std::vector<Batch> got = collect_epoch(loader, 0);
  int64_t cursor = 0;
  for (const Batch& b : got) {
    for (int64_t label : b.labels) {
      EXPECT_EQ(label, data.label(cursor));
      ++cursor;
    }
  }
  EXPECT_EQ(cursor, data.size());
}

TEST(DataLoaderTest, WaitSecondsAccumulateInSyncMode) {
  SyntheticEventDataset data = event_data();
  DataLoader loader(data, loader_opts(/*prefetch=*/0));
  collect_epoch(loader, 0);
  // Synchronous assembly is all data wait by definition.
  EXPECT_GT(loader.wait_seconds(), 0.0);
  loader.begin_epoch(1);
  EXPECT_EQ(loader.wait_seconds(), 0.0);  // reset per epoch
}

/// Dataset whose get_batch throws past a sample threshold — exercises the
/// producer-error path without involving real data bugs.
class ThrowingDataset : public Dataset {
 public:
  int64_t size() const override { return 24; }
  int64_t num_classes() const override { return 2; }
  int64_t channels() const override { return 1; }
  int64_t height() const override { return 4; }
  int64_t width() const override { return 4; }
  bool is_temporal() const override { return false; }
  Batch get_batch(const std::vector<int64_t>& indices,
                  int64_t timesteps) const override {
    for (int64_t i : indices) {
      TTSNN_CHECK(i < 12, "ThrowingDataset: simulated read failure");
    }
    Batch b;
    b.input = Tensor::zeros({timesteps, static_cast<int64_t>(indices.size()),
                             1, 4, 4});
    b.labels.assign(indices.size(), 0);
    return b;
  }
};

TEST(DataLoaderTest, ProducerExceptionPropagatesToConsumer) {
  ThrowingDataset data;
  for (int64_t prefetch : {0, 3}) {
    DataLoaderOptions o;
    o.batch_size = 6;
    o.timesteps = 2;
    o.shuffle = false;  // batches 0-1 fine, 2-3 throw
    o.prefetch = prefetch;
    DataLoader loader(data, o);
    loader.begin_epoch(0);
    Batch b;
    // Error delivery order matches the sync path: both good batches arrive
    // before the failure surfaces, even when the failing producer (batch 2,
    // prefetched ahead) errors before batch 0 is consumed.
    int64_t delivered = 0;
    EXPECT_THROW(
        {
          while (loader.next(&b)) ++delivered;
        },
        Error)
        << "prefetch=" << prefetch;
    EXPECT_EQ(delivered, 2) << "prefetch=" << prefetch;
    // The loader must stay usable: a fresh epoch fails the same way rather
    // than deadlocking on leftover state.
    loader.begin_epoch(0);
    delivered = 0;
    EXPECT_THROW(
        {
          while (loader.next(&b)) ++delivered;
        },
        Error);
    EXPECT_EQ(delivered, 2);
  }
}

// A producer exception must not poison the PROCESS-WIDE pool the loader ran
// on: after the failing epochs above, an async loader over a healthy dataset
// still prefetches a full epoch, bit-identical to the synchronous path.
TEST(DataLoaderTest, SharedPoolStaysHealthyAfterProducerException) {
  {
    ThrowingDataset bad;
    DataLoaderOptions o;
    o.batch_size = 6;
    o.timesteps = 2;
    o.shuffle = false;
    o.prefetch = 3;
    DataLoader loader(bad, o);
    loader.begin_epoch(0);
    Batch b;
    EXPECT_THROW(
        {
          while (loader.next(&b)) {
          }
        },
        Error);
  }  // the failed loader is gone; only the shared pool could carry damage

  SyntheticEventDataset good = event_data();
  DataLoader sync_loader(good, loader_opts(/*prefetch=*/0));
  DataLoader async_loader(good, loader_opts(/*prefetch=*/3));
  ASSERT_TRUE(async_loader.async()) << "pool lost its workers";
  expect_bitwise_equal(collect_epoch(sync_loader, 1),
                       collect_epoch(async_loader, 1));
}

TEST(DataLoaderTest, TrainerEpochBitIdenticalSyncVsAsync) {
  // End-to-end hinge: identical models trained for one epoch through the
  // sync and async loaders (augmentation on) must produce the same loss to
  // the last bit — prefetch is a performance knob, never a numerics knob.
  SyntheticEventDataset train = event_data();
  auto run = [&](int64_t prefetch) {
    Rng rng(4);
    ModelConfig mc;
    mc.in_channels = 2;
    mc.num_classes = 4;
    mc.base_width = 8;
    mc.timesteps = 3;
    ModulePtr net = make_ms_resnet18(mc, rng);
    TrainConfig tc;
    tc.epochs = 1;
    tc.batch_size = 8;
    tc.timesteps = 3;
    tc.lr = 0.05F;
    tc.augment = true;
    tc.augment_opts = {.max_shift = 1, .cutout_size = 2};
    tc.prefetch = prefetch;
    tc.seed = 11;
    Trainer trainer(*net, train, train, tc);
    EpochStats stats = trainer.run_epoch(0);
    EXPECT_LE(stats.data_wait_seconds, stats.seconds + 1e-9);
    EXPECT_GE(stats.compute_seconds, 0.0);
    return stats.loss;
  };
  const double sync_loss = run(0);
  const double async_loss = run(2);
  EXPECT_EQ(sync_loss, async_loss);
}

}  // namespace
}  // namespace ttsnn
