// Property-based sweeps (TEST_P) across the library's parameter spaces:
// convolution geometry, GEMM shapes, TT kernel sizes beyond 3x3, merge
// equivalence across the full (mode x stride x kernel x rank) grid, and
// dataset invariants over their option spaces.

#include <tuple>

#include <gtest/gtest.h>

#include "core/ttconv.h"
#include "data/synthetic_event.h"
#include "data/synthetic_image.h"
#include "gradcheck.h"
#include "infer/engine.h"
#include "model_gen.h"
#include "nn/conv2d.h"
#include "tensor/gemm.h"
#include "tensor/linalg.h"
#include "tensor/ops.h"
#include "tt/tt_svd.h"

namespace ttsnn {
namespace {

// ---- convolution geometry sweep ---------------------------------------------

using ConvCase = std::tuple<int64_t /*kh*/, int64_t /*kw*/, int64_t /*stride*/,
                            int64_t /*in_hw*/>;

class ConvGeometrySweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGeometrySweep, ForwardShapeAndGradCheck) {
  auto [kh, kw, stride, hw] = GetParam();
  const uint64_t seed = testgen::suite_seed(static_cast<uint64_t>(kh * 100 + kw * 10 + stride + hw));
  SCOPED_TRACE(testgen::seed_line(seed));
  Rng rng(seed);
  Conv2d::Options o{.in_channels = 2, .out_channels = 3, .kernel_h = kh,
                    .kernel_w = kw, .stride = stride};
  Conv2d conv(o, rng);
  Tensor x = Tensor::randn({1, 1, 2, hw, hw}, rng);
  Tensor y = conv.forward(x);
  ConvGeometry g = conv.geometry(hw, hw);
  EXPECT_EQ(y.size(-2), g.out_h());
  EXPECT_EQ(y.size(-1), g.out_w());

  Tensor w = Tensor::randn(y.shape(), rng);
  GradCheckOptions opts;
  opts.max_coords = 24;
  check_input_grad(conv, x, w, opts);
  check_param_grads(conv, x, w, opts);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGeometrySweep,
    ::testing::Values(ConvCase{1, 1, 1, 5}, ConvCase{3, 3, 1, 6},
                      ConvCase{3, 1, 1, 6}, ConvCase{1, 3, 1, 6},
                      ConvCase{5, 5, 1, 7}, ConvCase{5, 1, 2, 8},
                      ConvCase{3, 3, 2, 8}, ConvCase{1, 1, 2, 6}));

// ---- GEMM shape sweep --------------------------------------------------------

using GemmCase = std::tuple<int64_t, int64_t, int64_t>;

class GemmSweep : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmSweep, MatchesNaiveTripleLoop) {
  auto [m, n, k] = GetParam();
  const uint64_t seed = testgen::suite_seed(static_cast<uint64_t>(m * 10000 + n * 100 + k));
  SCOPED_TRACE(testgen::seed_line(seed));
  Rng rng(seed);
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor c = matmul(a, b);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        s += static_cast<double>(a.at({i, p})) * b.at({p, j});
      }
      EXPECT_NEAR(c.at({i, j}), s, 1e-3 * std::max(1.0, std::fabs(s)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmSweep,
                         ::testing::Values(GemmCase{1, 1, 1}, GemmCase{1, 7, 3},
                                           GemmCase{7, 1, 3}, GemmCase{5, 5, 1},
                                           GemmCase{13, 11, 17},
                                           GemmCase{32, 9, 64}));

// ---- TT kernels beyond 3x3 ---------------------------------------------------

class TTKernelSweep
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, TTMode>> {};

TEST_P(TTKernelSweep, MergeEquivalenceHoldsForLargerKernels) {
  auto [kernel, stride, mode] = GetParam();
  const uint64_t seed = testgen::suite_seed(static_cast<uint64_t>(kernel * 10 + stride));
  SCOPED_TRACE(testgen::seed_line(seed));
  Rng rng(seed);
  TTConv2d::Options o{.in_channels = 4, .out_channels = 5, .kernel = kernel,
                      .stride = stride, .rank = 3, .mode = mode};
  TTConv2d tt(o, rng);
  Tensor x = Tensor::randn({2, 1, 4, 10, 10}, rng);
  Tensor y_tt = tt.forward(x);

  Conv2d dense({.in_channels = 4, .out_channels = 5, .kernel_h = kernel,
                .kernel_w = kernel, .stride = stride},
               tt.merged_kernel());
  Tensor y_dense = dense.forward(x);
  EXPECT_LT(max_abs_diff(y_tt, y_dense), 1e-4)
      << "k=" << kernel << " s=" << stride << " " << tt_mode_name(mode);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, TTKernelSweep,
    ::testing::Combine(::testing::Values<int64_t>(3, 5),
                       ::testing::Values<int64_t>(1, 2),
                       ::testing::Values(TTMode::kSTT, TTMode::kPTT)));

// ---- TT-SVD rank/shape sweep -------------------------------------------------

class TtSvdSweep
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {};

TEST_P(TtSvdSweep, CoreShapesAndErrorBounded) {
  auto [in_c, out_c, rank] = GetParam();
  const uint64_t seed = testgen::suite_seed(static_cast<uint64_t>(in_c * 100 + out_c + rank));
  SCOPED_TRACE(testgen::seed_line(seed));
  Rng rng(seed);
  Tensor dense = Tensor::randn({out_c, in_c, 3, 3}, rng);
  TTCores cores = tt_svd(dense, rank);
  const int64_t r = std::min({rank, in_c, out_c});
  EXPECT_EQ(cores.rank, r);
  EXPECT_EQ(cores.w1.shape(), (Shape{r, in_c, 1, 1}));
  EXPECT_EQ(cores.w4.shape(), (Shape{out_c, r, 1, 1}));
  // Relative error is bounded by 1 (never worse than the zero tensor by an
  // order of magnitude) and decreases to a modest value at full rank.
  const double err = tt_reconstruction_error(dense, cores);
  EXPECT_GE(err, 0.0);
  EXPECT_LE(err, 1.05);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TtSvdSweep,
    ::testing::Combine(::testing::Values<int64_t>(4, 9, 16),
                       ::testing::Values<int64_t>(4, 12),
                       ::testing::Values<int64_t>(1, 3, 8)));

// ---- HTT schedule sweep ------------------------------------------------------

class HttScheduleSweep : public ::testing::TestWithParam<int> {};

TEST_P(HttScheduleSweep, ForwardBackwardConsistentForAnySchedule) {
  // Schedules are all 4-bit patterns except 0000-adjacent degenerate cases;
  // each must produce shape-correct outputs and finite gradients.
  const int bits = GetParam();
  std::vector<bool> schedule(4);
  for (int i = 0; i < 4; ++i) schedule[static_cast<size_t>(i)] = (bits >> i) & 1;

  const uint64_t seed = testgen::suite_seed(static_cast<uint64_t>(bits));
  SCOPED_TRACE(testgen::seed_line(seed));
  Rng rng(seed);
  TTConv2d::Options o{.in_channels = 3, .out_channels = 3, .kernel = 3,
                      .stride = 1, .rank = 2, .mode = TTMode::kHTT,
                      .full_step = schedule};
  TTConv2d conv(o, rng);
  Tensor x = Tensor::randn({4, 2, 3, 5, 5}, rng);
  Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), x.shape());
  Tensor g = Tensor::randn(y.shape(), rng);
  Tensor gx = conv.backward(g);
  EXPECT_EQ(gx.shape(), x.shape());
  for (int64_t i = 0; i < gx.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(gx[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchedules, HttScheduleSweep,
                         ::testing::Range(0, 16));

// ---- dataset option sweeps ---------------------------------------------------

class ImageDatasetSweep
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(ImageDatasetSweep, BatchesWellFormed) {
  auto [classes, size] = GetParam();
  SyntheticImageDataset ds({.num_classes = classes, .samples_per_class = 3,
                            .channels = 3,
                            .size = size});
  Batch b = ds.get_batch({0, ds.size() - 1}, 2);
  EXPECT_EQ(b.input.shape(), (Shape{2, 2, 3, size, size}));
  EXPECT_EQ(b.labels[0], 0);
  EXPECT_EQ(b.labels[1], classes - 1);
  EXPECT_GE(b.input.min_value(), 0.0F);
  EXPECT_LE(b.input.max_value(), 1.0F);
}

INSTANTIATE_TEST_SUITE_P(
    Options, ImageDatasetSweep,
    ::testing::Combine(::testing::Values<int64_t>(2, 5, 10),
                       ::testing::Values<int64_t>(8, 16, 32)));

class EventDatasetSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(EventDatasetSweep, AnyTimestepCountWorks) {
  const int64_t t = GetParam();
  SyntheticEventDataset ds({.num_classes = 3, .samples_per_class = 2});
  Batch b = ds.get_batch({0, 3}, t);
  EXPECT_EQ(b.input.shape(), (Shape{t, 2, 2, 16, 16}));
  EXPECT_GT(b.input.sum(), 0.0);  // events fire at every T
}

INSTANTIATE_TEST_SUITE_P(Timesteps, EventDatasetSweep,
                         ::testing::Values<int64_t>(1, 2, 4, 6, 10));

// ---- compiled-model properties over the generator space ----------------------

// Invariants that must hold for ANY module tree the shared generator
// (tests/model_gen.h) can produce — the replacement for this suite's old
// habit of hand-rolling one fixture per architecture quirk. Replayable via
// TTSNN_TEST_SEED, bounded via TTSNN_FUZZ_ITERS.
TEST(GeneratedModelProperties, CompileInvariantsHoldForAnySample) {
  const uint64_t base = testgen::suite_seed(0x9e0de1);
  const int iters = testgen::seed_pinned() ? 1 : testgen::iteration_budget(6);
  for (int i = 0; i < iters; ++i) {
    const uint64_t seed = base + static_cast<uint64_t>(i);
    SCOPED_TRACE(testgen::seed_line(seed));
    const testgen::GeneratedModel gm = testgen::random_model(seed);
    SCOPED_TRACE(gm.desc);

    // The exact lowering reproduces eval Module::forward bit-for-bit (with
    // the fusion pass on — its default).
    Rng rng(seed ^ 0xfaceu);
    Tensor x = Tensor::uniform(gm.input, rng);
    Tensor want = gm.net->forward(x);
    gm.net->clear_cache();
    infer::Engine exact = infer::compile(
        *gm.net, {.merge_tt = false, .fold_batchnorm = false});
    EXPECT_EQ(max_abs_diff(exact.run(x), want), 0.0) << exact.summary();

    // The default engine pins the channel count in its input signature and
    // always reports a fused-op line for plan-lint consumers.
    infer::Engine engine = infer::compile(*gm.net);
    EXPECT_EQ(engine.input_signature()[2], gm.input[2]);
    EXPECT_NE(engine.summary().find("fused ops:"), std::string::npos);

    // Register numbering stays dense after fusion compaction: every operand
    // register is written (or the input), every output is in range.
    for (const infer::Op& op : engine.ops()) {
      EXPECT_GE(op.in, 0);
      EXPECT_LT(op.out, engine.num_regs());
    }
    if (::testing::Test::HasFailure()) return;
  }
}

// ---- SVD robustness ----------------------------------------------------------

class SvdEdgeCases : public ::testing::TestWithParam<int> {};

TEST_P(SvdEdgeCases, HandlesDegenerateMatrices) {
  const int kind = GetParam();
  const uint64_t seed = testgen::suite_seed(static_cast<uint64_t>(kind));
  SCOPED_TRACE(testgen::seed_line(seed));
  Rng rng(seed);
  Tensor a;
  switch (kind) {
    case 0:  // zero matrix
      a = Tensor::zeros({4, 6});
      break;
    case 1:  // rank one
      a = matmul(Tensor::randn({5, 1}, rng), Tensor::randn({1, 7}, rng));
      break;
    case 2:  // repeated columns
      a = Tensor::zeros({4, 4});
      for (int64_t i = 0; i < 4; ++i) {
        a.at({i, 0}) = a.at({i, 1}) = static_cast<float>(i + 1);
      }
      break;
    case 3:  // single row
      a = Tensor::randn({1, 9}, rng);
      break;
    default:  // single column
      a = Tensor::randn({9, 1}, rng);
      break;
  }
  Svd f = svd(a);
  // Reconstruction must hold even with zero singular values.
  Tensor us = f.u.clone();
  for (int64_t i = 0; i < us.size(0); ++i) {
    for (int64_t j = 0; j < us.size(1); ++j) us.at({i, j}) *= f.s[j];
  }
  EXPECT_LT(max_abs_diff(matmul_nt(us, f.v), a), 1e-4) << "kind " << kind;
}

INSTANTIATE_TEST_SUITE_P(Kinds, SvdEdgeCases, ::testing::Range(0, 5));

}  // namespace
}  // namespace ttsnn
