// Tests for the sharded serving router: routed outputs must be bit-identical
// to direct Engine::run; shape groups must never head-of-line-block each
// other (a full batch dispatches past an older, not-yet-due foreign group,
// and a shape-A flood cannot inflate shape-B latency when the shapes live on
// different shards); flush deadlines must ride with each group's own oldest
// arrival rather than being re-armed by other groups' flushes; and submit
// must reject zero-sized samples up front instead of letting the stacking
// arithmetic divide by zero in a dispatcher. The QoS layer rides the same
// suite: signature-mismatched samples fail at submit (synchronously, typed),
// admission control sheds over-budget submissions with AdmissionError,
// higher priority classes dispatch strictly before lower ones among ready
// groups, and an idle shard steals ready work bit-identically.

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/factorize.h"
#include "core/models.h"
#include "infer/engine.h"
#include "infer/router.h"
#include "infer/server.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "util/failpoint.h"

namespace ttsnn {
namespace {

using std::chrono::steady_clock;

// The wall-clock-bounded tests below assert ordering through timing; under
// ThreadSanitizer (the CI tsan job) every Engine::run is several times
// slower, so the coalescing delays — and with them every derived bound —
// scale up to keep the margins about instrumentation-independent.
#if defined(__SANITIZE_THREAD__)
constexpr double kTimeScale = 4.0;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr double kTimeScale = 4.0;
#else
constexpr double kTimeScale = 1.0;
#endif
#else
constexpr double kTimeScale = 1.0;
#endif

double ms_since(const steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(steady_clock::now() - t0)
      .count();
}

/// One engine for the whole suite: a small factorized MS-ResNet18 with real
/// BN statistics, compiled once (Engine is copyable; the router clones it per
/// shard anyway).
const infer::Engine& test_engine() {
  static const infer::Engine engine = [] {
    Rng rng(31);
    ModelConfig cfg;
    cfg.in_channels = 3;
    cfg.num_classes = 4;
    cfg.base_width = 8;
    cfg.timesteps = 4;
    ModulePtr net = make_ms_resnet18(cfg, rng);
    FactorizeOptions fopts;
    fopts.mode = TTMode::kPTT;
    fopts.use_vbmf = false;
    fopts.rank_fraction = 0.5;
    factorize_network(*net, fopts, rng);
    net->set_training(true);
    for (int i = 0; i < 2; ++i) {
      net->forward(Tensor::uniform({4, 2, 3, 8, 8}, rng));
    }
    net->clear_cache();
    net->set_training(false);
    return infer::compile(*net);
  }();
  return engine;
}

/// Session key that lands `shape` on shard `want` — the hash is deterministic,
/// so a short scan always finds one for any realistic shard count.
uint64_t session_on_shard(const infer::Router& router, const Shape& shape,
                          int want) {
  for (uint64_t s = 0; s < 1024; ++s) {
    if (router.shard_for(shape, s) == want) return s;
  }
  ADD_FAILURE() << "no session maps " << shape_str(shape) << " to shard "
                << want;
  return 0;
}

TEST(RouterTest, RoutedOutputsBitIdenticalToDirectEngineRuns) {
  const infer::Engine& engine = test_engine();
  infer::Router router(engine, {.num_shards = 3, .max_batch = 4,
                                .max_delay_ms = 5.0});

  Rng rng(41);
  const std::vector<Shape> shapes = {{4, 3, 8, 8}, {4, 3, 12, 12},
                                     {4, 3, 10, 10}};
  std::vector<Tensor> samples;
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 18; ++i) {
    samples.push_back(Tensor::uniform(shapes[static_cast<size_t>(i) % 3], rng));
    futures.push_back(
        router.submit(samples.back(), /*session=*/static_cast<uint64_t>(i)));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    Tensor got = futures[i].get();
    const Shape& s = samples[i].shape();
    Tensor want = engine.run(samples[i].reshape({s[0], 1, s[1], s[2], s[3]}));
    Tensor want_flat = want.reshape({want.size(0), -1});
    Tensor got_flat = got.reshape({got.size(0), -1});
    ASSERT_EQ(got_flat.shape(), want_flat.shape());
    EXPECT_EQ(max_abs_diff(got_flat, want_flat), 0.0) << "request " << i;
  }
  infer::RouterStats stats = router.stats();
  EXPECT_EQ(stats.requests, 18);
  EXPECT_GE(stats.batches, 3);  // three shape groups can never share a batch
}

// Regression for the stacking divide-by-zero: a [0, C, H, W] (or any
// zero-extent) sample used to pass the dim()==4 check, reach the dispatcher,
// and crash the whole process at `numel / t_steps`. It must now fail the one
// submit call, and the server must keep serving.
TEST(RouterTest, SubmitRejectsZeroSizedDims) {
  const infer::Engine& engine = test_engine();
  infer::Router router(engine, {.num_shards = 2});

  EXPECT_THROW(router.submit(Tensor(Shape{0, 3, 8, 8})), Error);
  EXPECT_THROW(router.submit(Tensor(Shape{4, 0, 8, 8})), Error);
  EXPECT_THROW(router.submit(Tensor(Shape{4, 3, 0, 8})), Error);
  EXPECT_THROW(router.submit(Tensor(Shape{4, 3, 8, 0})), Error);
  EXPECT_THROW(router.submit(Tensor(Shape{4, 3, 8})), Error);

  Rng rng(43);
  Tensor ok = router.infer(Tensor::uniform({4, 3, 8, 8}, rng));
  EXPECT_EQ(ok.size(0), 4);
  EXPECT_EQ(router.stats().requests, 1);  // rejected submits never counted
}

// The PR-2 batch-stacking hazard: the single-queue server slept on the FRONT
// request's deadline, so a full batch of another shape sat ready behind a
// lone, not-yet-due request. Groups are now independent: the full group
// dispatches immediately; the lone request still flushes on ITS deadline —
// carried from its own arrival, not re-armed when the other group flushes.
TEST(RouterTest, FullGroupDispatchesPastAnOlderWaitingGroup) {
  const infer::Engine& engine = test_engine();
  const double kDelayMs = 250.0 * kTimeScale;
  infer::Router router(engine, {.num_shards = 1, .max_batch = 4,
                                .max_delay_ms = kDelayMs});

  Rng rng(44);
  const auto t0 = steady_clock::now();
  // The older group first: one request that cannot fill a batch.
  std::future<Tensor> lone = router.submit(Tensor::uniform({4, 3, 8, 8}, rng));
  // Then a burst that fills a whole batch of a different shape.
  std::vector<std::future<Tensor>> burst;
  for (int i = 0; i < 4; ++i) {
    burst.push_back(router.submit(Tensor::uniform({4, 3, 12, 12}, rng)));
  }
  for (auto& f : burst) f.get();
  const double burst_ms = ms_since(t0);
  lone.get();
  const double lone_ms = ms_since(t0);

  // The full batch must not wait out the lone request's quarter second.
  EXPECT_LT(burst_ms, kDelayMs / 2.0) << "full batch waited on a foreign group";
  // The lone request flushes on its own original deadline: after it, but
  // well before a second, re-armed delay would have expired.
  EXPECT_GE(lone_ms, 0.8 * kDelayMs);
  EXPECT_LT(lone_ms, 1.9 * kDelayMs) << "group deadline was re-armed";
}

// A partial pop leaves the tail of a group behind; the tail's deadline must
// stay anchored to the tail requests' own arrivals.
TEST(RouterTest, PartialPopKeepsTailArrivals) {
  const infer::Engine& engine = test_engine();
  const double kDelayMs = 200.0 * kTimeScale;
  infer::Router router(engine, {.num_shards = 1, .max_batch = 2,
                                .max_delay_ms = kDelayMs});

  Rng rng(45);
  const auto t0 = steady_clock::now();
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(router.submit(Tensor::uniform({4, 3, 8, 8}, rng)));
  }
  futures[0].get();
  futures[1].get();
  const double full_ms = ms_since(t0);
  futures[2].get();
  const double tail_ms = ms_since(t0);

  EXPECT_LT(full_ms, kDelayMs / 2.0);  // the full pair never waits
  // The tail request arrived at ~t0, so it flushes around ONE delay after
  // t0 — not one delay after the first batch's flush plus another.
  EXPECT_GE(tail_ms, 0.8 * kDelayMs);
  EXPECT_LT(tail_ms, 1.9 * kDelayMs) << "tail deadline was re-armed";
  EXPECT_EQ(router.stats().batches, 2);
}

// The acceptance scenario: a flood of shape-A requests on one shard must not
// inflate shape-B latency on another — the old single-queue server serialized
// every shape behind the front group's deadline and engine run.
TEST(RouterTest, ShapeFloodDoesNotBlockOtherShapesAcrossShards) {
  const infer::Engine& engine = test_engine();
  const double kDelayMs = 40.0 * kTimeScale;
  constexpr int kProbes = 10;
  const Shape shape_a{4, 3, 16, 16};
  const Shape shape_b{4, 3, 8, 8};

  // Keep every Engine::run on its own dispatcher thread (no pool fan-out):
  // the assertion below is about queue isolation between shards, and shard
  // count deliberately does NOT isolate shared-pool compute lanes — a flood
  // hogging the pool would inflate the probe's run time for reasons this
  // test is not about.
  GemmThreadsGuard gemm_guard(1);
  infer::Router router(engine, {.num_shards = 2, .max_batch = 8,
                                .max_delay_ms = kDelayMs,
                                .dispatchers_per_shard = 1});
  const uint64_t session_a = session_on_shard(router, shape_a, 0);
  const uint64_t session_b = session_on_shard(router, shape_b, 1);

  Rng rng(46);
  Tensor probe = Tensor::uniform(shape_b, rng);
  Tensor probe_ref =
      engine.run(probe.reshape({4, 1, shape_b[1], shape_b[2], shape_b[3]}));

  // Isolated: sequential probes, each riding out the full coalescing delay.
  auto probe_p99 = [&] {
    std::vector<double> lat;
    for (int i = 0; i < kProbes; ++i) {
      const auto t0 = steady_clock::now();
      Tensor out = router.infer(probe, session_b);
      lat.push_back(ms_since(t0));
      EXPECT_EQ(max_abs_diff(out.reshape({4, -1}), probe_ref.reshape({4, -1})),
                0.0);
    }
    std::sort(lat.begin(), lat.end());
    return lat[lat.size() - 1];  // max: n < 100, so nearest-rank p99 is max
  };
  const double isolated_p99 = probe_p99();

  // Flood shard 0 with shape-A traffic from closed-loop clients while the
  // probes repeat on shard 1.
  std::atomic<bool> stop_flood{false};
  std::atomic<int64_t> flooded{0};
  std::vector<std::thread> flood;
  for (int c = 0; c < 6; ++c) {
    flood.emplace_back([&, c] {
      Rng crng(100 + static_cast<uint64_t>(c));
      Tensor x = Tensor::uniform(shape_a, crng);
      while (!stop_flood.load(std::memory_order_relaxed)) {
        router.infer(x, session_a);
        flooded.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  const double flooded_p99 = probe_p99();
  stop_flood.store(true);
  for (std::thread& t : flood) t.join();

  EXPECT_GT(flooded.load(), 0) << "flood never ran";
  // The sharded router keeps B's latency at its own coalescing delay; the
  // old single-queue server serialized B behind every A batch.
  EXPECT_LT(flooded_p99, 2.0 * isolated_p99)
      << "isolated p99 " << isolated_p99 << " ms, flooded p99 " << flooded_p99
      << " ms";
}

// A sustained flood that keeps one shape group permanently full must not
// starve an expired group on the SAME shard: among ready groups the
// dispatcher serves the one whose front request has waited longest, and the
// flood's front stays fresh (it keeps being consumed) while the lone
// request's front only ages.
TEST(RouterTest, ExpiredGroupNotStarvedByFullGroupFlood) {
  const infer::Engine& engine = test_engine();
  const double kDelayMs = 50.0 * kTimeScale;
  infer::Router router(engine, {.num_shards = 1, .max_batch = 2,
                                .max_delay_ms = kDelayMs,
                                .dispatchers_per_shard = 1});

  Rng rng(49);
  const Shape flood_shape{4, 3, 8, 8};
  // Enough closed-loop clients that the flood group refills to max_batch
  // before each dispatch completes, staying "full" on every scan.
  std::atomic<bool> stop_flood{false};
  std::vector<std::thread> flood;
  for (int c = 0; c < 6; ++c) {
    flood.emplace_back([&, c] {
      Rng crng(200 + static_cast<uint64_t>(c));
      Tensor x = Tensor::uniform(flood_shape, crng);
      while (!stop_flood.load(std::memory_order_relaxed)) {
        router.infer(x);
      }
    });
  }
  // Let the flood reach steady state, then probe with a different shape
  // whose batch can never fill.
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
      2.0 * kDelayMs));
  const auto t0 = steady_clock::now();
  Tensor probe_out = router.infer(Tensor::uniform({4, 3, 12, 12}, rng));
  const double probe_ms = ms_since(t0);
  stop_flood.store(true);
  for (std::thread& t : flood) t.join();

  EXPECT_EQ(probe_out.size(0), 4);
  // The probe flushes soon after ITS deadline; starvation would hold it
  // until the flood stops.
  EXPECT_LT(probe_ms, 6.0 * kDelayMs)
      << "lone request starved behind a full-group flood";
}

TEST(RouterTest, SessionKeysSpreadAHotShapeAcrossShards) {
  const infer::Engine& engine = test_engine();
  infer::Router router(engine, {.num_shards = 4, .max_batch = 4,
                                .max_delay_ms = 2.0});
  const Shape shape{4, 3, 8, 8};

  // shard_for is deterministic and in range.
  for (uint64_t s = 0; s < 64; ++s) {
    const int shard = router.shard_for(shape, s);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, router.num_shards());
    EXPECT_EQ(shard, router.shard_for(shape, s));
  }

  Rng rng(47);
  std::vector<std::future<Tensor>> futures;
  for (uint64_t s = 0; s < 32; ++s) {
    futures.push_back(router.submit(Tensor::uniform(shape, rng), s));
  }
  for (auto& f : futures) f.get();

  infer::RouterStats stats = router.stats();
  EXPECT_EQ(stats.requests, 32);
  ASSERT_EQ(stats.shard_requests.size(), 4U);
  ASSERT_EQ(stats.shard_batches.size(), 4U);
  int64_t sum_requests = 0;
  int64_t sum_batches = 0;
  int shards_hit = 0;
  for (size_t i = 0; i < 4; ++i) {
    sum_requests += stats.shard_requests[i];
    sum_batches += stats.shard_batches[i];
    if (stats.shard_requests[i] > 0) ++shards_hit;
  }
  EXPECT_EQ(sum_requests, stats.requests);
  EXPECT_EQ(sum_batches, stats.batches);
  EXPECT_GE(shards_hit, 2) << "32 sessions all hashed onto one shard";
}

// Regression: a sample the compiled model can NEVER serve (here a channel
// count the weights don't have) used to queue, wait out its deadline, and
// fail deep inside a dispatcher with an engine-internal message. It must now
// fail the submit call itself — synchronously, with a labeled error — and
// the router must keep serving.
TEST(RouterTest, SubmitRejectsSignatureMismatchSynchronously) {
  const infer::Engine& engine = test_engine();
  infer::Router router(engine, {.num_shards = 2});

  // The model takes 3 input channels; 5 can never run.
  try {
    router.submit(Tensor(Shape{4, 5, 8, 8}));
    FAIL() << "channel-mismatched sample was accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("signature"), std::string::npos)
        << e.what();
  }

  Rng rng(50);
  Tensor ok = router.infer(Tensor::uniform({4, 3, 8, 8}, rng));
  EXPECT_EQ(ok.size(0), 4);
  EXPECT_EQ(router.stats().requests, 1);  // rejected submits never counted
}

// Admission control: once a shard's queued bytes exceed the budget, submit
// sheds with a *typed* AdmissionError (so callers can distinguish "back off"
// from a real failure), the shed is counted, and the queued requests still
// complete. Deterministic: a huge deadline and a large max_batch keep the
// queued group un-ready until shutdown drains it.
TEST(RouterTest, AdmissionControlShedsOverBudgetAndTracksClassDepth) {
  const infer::Engine& engine = test_engine();
  const Shape shape{4, 3, 8, 8};
  const int64_t sample_bytes = 4 * 3 * 8 * 8 * static_cast<int64_t>(sizeof(float));
  std::vector<std::future<Tensor>> queued;
  {
    infer::Router router(engine,
                         {.num_shards = 1, .max_batch = 8,
                          .max_delay_ms = 60000.0,
                          .queue_bytes = 2 * sample_bytes});
    Rng rng(51);
    queued.push_back(router.submit(Tensor::uniform(shape, rng), 0,
                                   infer::Priority::kInteractive));
    queued.push_back(router.submit(Tensor::uniform(shape, rng), 0,
                                   infer::Priority::kBatch));

    // The gauge sees both queued samples, per class.
    infer::RouterStats mid = router.stats();
    ASSERT_EQ(mid.class_depth.size(), static_cast<size_t>(infer::kNumPriority));
    EXPECT_EQ(mid.class_depth[static_cast<size_t>(infer::Priority::kInteractive)], 1);
    EXPECT_EQ(mid.class_depth[static_cast<size_t>(infer::Priority::kBatch)], 1);
    EXPECT_EQ(mid.class_depth[static_cast<size_t>(infer::Priority::kNormal)], 0);

    // Third sample would exceed the budget: shed, typed, counted.
    EXPECT_THROW(router.submit(Tensor::uniform(shape, rng)),
                 infer::AdmissionError);
    infer::RouterStats after = router.stats();
    EXPECT_EQ(after.shed, 1);
    EXPECT_EQ(after.requests, 2);  // shed submissions are not accepted

    router.shutdown();  // drain flushes the un-ready groups immediately
    infer::RouterStats drained = router.stats();
    for (int64_t depth : drained.class_depth) EXPECT_EQ(depth, 0);
  }
  for (auto& f : queued) {
    Tensor out = f.get();  // shed never poisons ACCEPTED requests
    EXPECT_EQ(out.size(0), 4);
  }
}

// Strict priority among ready groups: while the single dispatcher is busy
// with a blocker batch, a kBatch and a kInteractive request queue up (both
// instantly "ready" — max_delay 0). The dispatcher must run the interactive
// group first, so by the time the low-priority future resolves, the
// interactive one must ALREADY be resolved.
TEST(RouterTest, InteractiveClassDispatchesBeforeBatchClass) {
  const infer::Engine& engine = test_engine();
  infer::Router router(engine, {.num_shards = 1, .max_batch = 1,
                                .max_delay_ms = 0.0,
                                .dispatchers_per_shard = 1});

  Rng rng(52);
  // A heavyweight blocker occupies the dispatcher; wait until it has been
  // POPPED (batches >= 1) so the two probes below queue behind it.
  std::future<Tensor> blocker =
      router.submit(Tensor::uniform({4, 3, 32, 32}, rng));
  while (router.stats().batches < 1) std::this_thread::yield();

  std::future<Tensor> low = router.submit(Tensor::uniform({4, 3, 12, 12}, rng),
                                          0, infer::Priority::kBatch);
  std::future<Tensor> high = router.submit(
      Tensor::uniform({4, 3, 10, 10}, rng), 0, infer::Priority::kInteractive);

  low.get();
  EXPECT_EQ(high.wait_for(std::chrono::seconds(0)), std::future_status::ready)
      << "a kBatch group dispatched before a ready kInteractive group";
  blocker.get();
}

// Work stealing: all traffic pins to shard 0 (by session key), saturating
// its single dispatcher; shard 1's idle dispatcher must pull ready groups
// over and execute them on ITS replica — bit-identically, since replicas
// share weights and the program cache.
TEST(RouterTest, IdleShardStealsReadyWorkBitIdentically) {
  const infer::Engine& engine = test_engine();
  const Shape shape{4, 3, 8, 8};
  infer::Router router(engine, {.num_shards = 2, .max_batch = 2,
                                .max_delay_ms = 1.0,
                                .dispatchers_per_shard = 1,
                                .work_stealing = true,
                                .steal_poll_ms = 0.5});
  const uint64_t session = session_on_shard(router, shape, 0);

  Rng rng(53);
  Tensor probe = Tensor::uniform(shape, rng);
  Tensor ref = engine.run(probe.reshape({4, 1, shape[1], shape[2], shape[3]}));
  // test_engine() is shared across the suite and the cache rides with the
  // engine's copies, so its counters are cumulative — assert on deltas.
  const int64_t misses_before = router.stats().cache_misses;

  std::atomic<bool> stop{false};
  std::atomic<int64_t> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        Tensor out = router.infer(probe, session);
        if (max_abs_diff(out.reshape({4, -1}), ref.reshape({4, -1})) != 0.0) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Flood until at least one steal lands (bounded; typically milliseconds).
  const auto t0 = steady_clock::now();
  while (router.stats().steals == 0 && ms_since(t0) < 20000.0 * kTimeScale) {
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& t : clients) t.join();

  infer::RouterStats stats = router.stats();
  EXPECT_GT(stats.steals, 0) << "idle shard never stole from the loaded one";
  ASSERT_EQ(stats.shard_requests.size(), 2U);
  EXPECT_EQ(stats.shard_requests[1], 0) << "traffic was not pinned to shard 0";
  EXPECT_GT(stats.shard_batches[1], 0) << "stolen batches not counted on thief";
  EXPECT_EQ(stats.shard_steals[1], stats.steals);
  EXPECT_EQ(mismatches.load(), 0) << "a stolen batch diverged from direct run";
  // The whole flood touched at most two batch signatures ([4, 1, 3, 8, 8]
  // and [4, 2, 3, 8, 8]); the shared cache compiled each once, process-wide,
  // no matter which shard ran the batch.
  EXPECT_GT(stats.cache_hits, 0);
  EXPECT_LE(stats.cache_misses - misses_before, 2);
}

TEST(RouterTest, ShutdownDrainsPendingRequestsWithoutTheirDeadlines) {
  const infer::Engine& engine = test_engine();
  Rng rng(48);
  std::vector<std::future<Tensor>> futures;
  const auto t0 = steady_clock::now();
  {
    // A long deadline that drain must NOT ride out.
    infer::Router router(engine, {.num_shards = 2, .max_batch = 8,
                                  .max_delay_ms = 10000.0});
    futures.push_back(router.submit(Tensor::uniform({4, 3, 8, 8}, rng), 1));
    futures.push_back(router.submit(Tensor::uniform({4, 3, 12, 12}, rng), 2));
    futures.push_back(router.submit(Tensor::uniform({4, 3, 8, 8}, rng), 3));
    router.shutdown();
    EXPECT_THROW(router.submit(Tensor::uniform({4, 3, 8, 8}, rng)), Error);
  }
  for (auto& f : futures) {
    Tensor out = f.get();  // drained, not dropped
    EXPECT_EQ(out.size(0), 4);
  }
  EXPECT_LT(ms_since(t0), 5000.0) << "shutdown waited out the deadline";
}

// Regression: submit after shutdown must throw a LABELED error immediately
// (the shard queues are gone; anything else would hang a future forever).
TEST(RouterTest, SubmitAfterShutdownThrowsLabeledError) {
  const infer::Engine& engine = test_engine();
  infer::Router router(engine, {.num_shards = 1});
  router.shutdown();
  Rng rng(50);
  try {
    router.submit(Tensor::uniform({4, 3, 8, 8}, rng));
    FAIL() << "submit after shutdown did not throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("shutdown"), std::string::npos)
        << "error is not labeled with the cause: " << e.what();
  }
}

// cancel(session) resolves every queued future of that session with a typed
// CancelledError, without running them — and leaves OTHER sessions' requests
// in the same (shape, class) group untouched and servable.
TEST(RouterTest, CancelResolvesQueuedFuturesWithoutRunning) {
  const infer::Engine& engine = test_engine();
  // A delay long enough that everything below is still queued when cancel
  // lands; shutdown() then drains the survivor without riding it out.
  infer::Router router(engine, {.num_shards = 1, .max_batch = 8,
                                .max_delay_ms = 10000.0});
  Rng rng(51);
  constexpr uint64_t kDoomed = 5;
  constexpr uint64_t kKept = 6;
  std::vector<std::future<Tensor>> doomed;
  for (int i = 0; i < 3; ++i) {
    doomed.push_back(router.submit(Tensor::uniform({4, 3, 8, 8}, rng), kDoomed));
  }
  std::future<Tensor> kept =
      router.submit(Tensor::uniform({4, 3, 8, 8}, rng), kKept);

  EXPECT_EQ(router.cancel(kDoomed), 3);
  for (auto& f : doomed) {
    // Already resolved — no dispatcher ever saw these requests.
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_THROW(f.get(), infer::CancelledError);
  }
  EXPECT_EQ(router.cancel(kDoomed), 0);  // idempotent: nothing left to cancel
  EXPECT_EQ(router.stats().cancelled, 3);

  router.shutdown();  // drain flushes the survivor immediately
  Tensor out = kept.get();
  EXPECT_EQ(out.size(0), 4);
}

// A request whose deadline expires while queued fails fast with a typed
// DeadlineError — pruned BEFORE batching, so the surviving batch is exactly
// the batch that would have formed without it and its outputs stay
// bit-identical to direct Engine::run.
TEST(RouterTest, DeadlineExpiryFailsFastAndSurvivorsStayBitIdentical) {
  const infer::Engine& engine = test_engine();
  const double kFlushMs = 400.0 * kTimeScale;
  const double kDeadlineMs = 40.0 * kTimeScale;
  // max_batch 4 > the 3 requests below: the group only flushes on its delay,
  // leaving a wide window in which the deadline must fire on its own.
  infer::Router router(engine, {.num_shards = 1, .max_batch = 4,
                                .max_delay_ms = kFlushMs});
  Rng rng(52);
  Tensor expiring = Tensor::uniform({4, 3, 8, 8}, rng);
  Tensor survivor_a = Tensor::uniform({4, 3, 8, 8}, rng);
  Tensor survivor_b = Tensor::uniform({4, 3, 8, 8}, rng);
  Tensor ref_a = engine.run(survivor_a.reshape({4, 1, 3, 8, 8}));
  Tensor ref_b = engine.run(survivor_b.reshape({4, 1, 3, 8, 8}));

  infer::SubmitOptions with_deadline;
  with_deadline.deadline_ms = kDeadlineMs;
  const auto t0 = steady_clock::now();
  std::future<Tensor> doomed = router.submit(expiring, with_deadline);
  std::future<Tensor> fa = router.submit(survivor_a);
  std::future<Tensor> fb = router.submit(survivor_b);

  // The miss resolves promptly after ITS deadline — typed — while the
  // survivors are still coalescing toward the (much later) flush.
  EXPECT_THROW(doomed.get(), infer::DeadlineError);
  const double miss_ms = ms_since(t0);
  EXPECT_GE(miss_ms, 0.8 * kDeadlineMs);
  EXPECT_LT(miss_ms, kFlushMs * 0.75) << "miss waited for the group flush";

  EXPECT_EQ(max_abs_diff(fa.get().reshape({4, -1}), ref_a.reshape({4, -1})),
            0.0);
  EXPECT_EQ(max_abs_diff(fb.get().reshape({4, -1}), ref_b.reshape({4, -1})),
            0.0);
  EXPECT_EQ(router.stats().deadline_misses, 1);
}

// AdmissionError carries a queue-depth-derived retry hint, so shed clients
// can back off proportionally to the actual overload.
TEST(RouterTest, AdmissionErrorCarriesRetryAfterHint) {
  const infer::Engine& engine = test_engine();
  const Shape shape{4, 3, 8, 8};
  const int64_t sample_bytes = shape_numel(shape) * sizeof(float);
  infer::Router router(engine, {.num_shards = 1, .max_batch = 8,
                                .max_delay_ms = 10000.0,
                                .queue_bytes = sample_bytes});
  Rng rng(53);
  std::future<Tensor> accepted = router.submit(Tensor::uniform(shape, rng));
  try {
    router.submit(Tensor::uniform(shape, rng));
    FAIL() << "over-budget submit was not shed";
  } catch (const infer::AdmissionError& e) {
    EXPECT_GT(e.retry_after_ms(), 0.0);
    EXPECT_LE(e.retry_after_ms(), 1000.0);  // capped: never "go away forever"
  }
  router.shutdown();
  EXPECT_EQ(accepted.get().size(0), 4);
}

// The full health drill, deterministic via failpoints: replica 0 fails every
// batch -> after quarantine_after consecutive failures it is quarantined
// (gauges flip), traffic whose home it was re-routes and serves on the
// survivor bit-identically, and once the fault clears a probe re-admits it.
TEST(RouterTest, QuarantineReroutesTrafficAndProbeReadmits) {
  const infer::Engine& engine = test_engine();
  failpoint::disarm_all();  // a clean slate no matter what ran before
  infer::Router router(engine, {.num_shards = 2, .max_batch = 4,
                                .max_delay_ms = 1.0 * kTimeScale,
                                .dispatchers_per_shard = 1,
                                .quarantine_after = 2,
                                .probe_interval_ms = 5.0 * kTimeScale});
  Rng rng(54);
  Tensor x = Tensor::uniform({4, 3, 8, 8}, rng);
  Tensor ref = engine.run(x.reshape({4, 1, 3, 8, 8}));
  const uint64_t hot = session_on_shard(router, x.shape(), 0);

  failpoint::arm("router.dispatch.0", "every:1");
  int64_t pre_errors = 0;
  for (int i = 0; i < 32 && router.stats().quarantines == 0; ++i) {
    try {
      router.infer(x, hot);
    } catch (const Error&) {
      ++pre_errors;
    }
  }
  infer::RouterStats down = router.stats();
  ASSERT_GE(down.quarantines, 1) << "failing replica never quarantined";
  EXPECT_EQ(pre_errors, 2);  // exactly quarantine_after batches failed
  ASSERT_EQ(down.shard_quarantined.size(), 2U);
  EXPECT_EQ(down.shard_quarantined[0], 1);
  EXPECT_EQ(down.shard_quarantined[1], 0);
  EXPECT_EQ(down.healthy_shards, 1);

  // 100% of post-quarantine traffic — including traffic HOMED on the dead
  // replica — serves on the survivor, bit-identically.
  std::vector<std::future<Tensor>> futs;
  for (int i = 0; i < 12; ++i) futs.push_back(router.submit(x, hot));
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(60)), std::future_status::ready)
        << "a future did not resolve";
    EXPECT_EQ(max_abs_diff(f.get().reshape({4, -1}), ref.reshape({4, -1})),
              0.0);
  }
  EXPECT_GT(router.stats().rerouted, 0);

  // Fault clears -> a probe (synthetic run on the failed shape, no client
  // future attached) re-admits the replica.
  failpoint::disarm("router.dispatch.0");
  const auto t0 = steady_clock::now();
  while (router.stats().readmissions == 0 &&
         ms_since(t0) < 20000.0 * kTimeScale) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  infer::RouterStats up = router.stats();
  ASSERT_GE(up.readmissions, 1) << "probe never re-admitted the replica";
  EXPECT_GT(up.probes, 0);
  EXPECT_EQ(up.healthy_shards, 2);
  EXPECT_EQ(max_abs_diff(router.infer(x, hot).reshape({4, -1}),
                         ref.reshape({4, -1})),
            0.0);
}

}  // namespace
}  // namespace ttsnn
