// Tests for the static-analysis pass pipeline over the plan IR
// (infer/analysis.h): the verifier must reject hand-built malformed plans
// with a diagnostic naming the offending op; the liveness/alias pass must
// mark kFlatten views and in-place-safe ops; the memory planner must catch
// concrete-shape geometry errors before any kernel runs; and — the hard
// acceptance bar — the statically planned executor must be bit-identical to
// the legacy per-register executor in every TT mode, with exactly one
// allocation per call once a caller reuses its workspace.

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "infer/analysis.h"
#include "infer/engine.h"
#include "model_gen.h"
#include "nn/containers.h"
#include "nn/linear.h"
#include "tensor/arena.h"
#include "tensor/ops.h"

namespace ttsnn {
namespace {

using infer::Op;

Op conv_op(int in, int out, int64_t in_c, int64_t out_c, int64_t k = 3) {
  Op op;
  op.kind = Op::Kind::kConv;
  op.in = in;
  op.out = out;
  op.conv.in_channels = in_c;
  op.conv.out_channels = out_c;
  op.conv.kernel_h = k;
  op.conv.kernel_w = k;
  op.weight = Tensor::zeros({out_c, in_c, k, k});
  return op;
}

/// Runs the verifier on a hand-built plan and returns the diagnostic ("" when
/// the plan verifies).
std::string verify_error(const std::vector<Op>& ops, int num_regs,
                         int result_reg) {
  try {
    infer::analyze_plan(ops, num_regs, result_reg);
  } catch (const Error& e) {
    return e.what();
  }
  return {};
}

void expect_contains(const std::string& msg, const std::string& needle) {
  EXPECT_NE(msg.find(needle), std::string::npos)
      << "diagnostic was: \"" << msg << "\", expected to contain \"" << needle
      << "\"";
}

TEST(PlanVerifierTest, AcceptsAWellFormedPlan) {
  std::vector<Op> ops;
  ops.push_back(conv_op(0, 1, 3, 4));
  ops.push_back(conv_op(1, 2, 4, 4));
  EXPECT_EQ(verify_error(ops, 3, 2), "");
}

TEST(PlanVerifierTest, RejectsUseBeforeDef) {
  std::vector<Op> ops;
  ops.push_back(conv_op(1, 2, 4, 4));  // r1 is never written before this read
  ops.push_back(conv_op(0, 1, 3, 4));
  const std::string msg = verify_error(ops, 3, 2);
  expect_contains(msg, "op 0");
  expect_contains(msg, "before it is written");
}

TEST(PlanVerifierTest, RejectsOutOfRangeRegister) {
  std::vector<Op> ops;
  ops.push_back(conv_op(7, 1, 3, 4));
  expect_contains(verify_error(ops, 2, 1), "out of range");
  ops.clear();
  ops.push_back(conv_op(0, 9, 3, 4));
  expect_contains(verify_error(ops, 2, 1), "out of range");
}

TEST(PlanVerifierTest, RejectsASecondWriterPerRegister) {
  std::vector<Op> ops;
  Op a = conv_op(0, 1, 3, 4);
  a.label = "first-writer";
  Op b = conv_op(0, 1, 3, 4);
  b.label = "second-writer";
  ops.push_back(a);
  ops.push_back(b);
  const std::string msg = verify_error(ops, 2, 1);
  expect_contains(msg, "already written");
  expect_contains(msg, "second-writer");  // diagnostics carry the op label
}

TEST(PlanVerifierTest, RejectsWritingTheInputRegister) {
  std::vector<Op> ops;
  ops.push_back(conv_op(0, 0, 3, 3));
  expect_contains(verify_error(ops, 1, 0), "r0 is the input");
}

TEST(PlanVerifierTest, RejectsANeverReadOutput) {
  std::vector<Op> ops;
  ops.push_back(conv_op(0, 1, 3, 4));  // r1 is dead: never read, not result
  ops.push_back(conv_op(0, 2, 3, 4));
  expect_contains(verify_error(ops, 3, 2), "never read");
}

TEST(PlanVerifierTest, RejectsANeverWrittenRegister) {
  std::vector<Op> ops;
  ops.push_back(conv_op(0, 1, 3, 4));
  expect_contains(verify_error(ops, 3, 1), "never written");
}

TEST(PlanVerifierTest, RejectsSecondInputOnNonAddOps) {
  std::vector<Op> ops;
  ops.push_back(conv_op(0, 1, 3, 4));
  ops.back().in2 = 0;
  expect_contains(verify_error(ops, 2, 1), "second input");
}

TEST(PlanVerifierTest, RejectsMissingHttHalfKernel) {
  Op op;
  op.kind = Op::Kind::kTTHtt;
  op.in = 0;
  op.out = 1;
  op.tt.mode = TTMode::kHTT;
  op.tt.full_step = {true, false};
  op.conv.in_channels = 4;
  op.conv.out_channels = 8;
  op.conv.kernel_h = 3;
  op.conv.kernel_w = 3;
  op.full_kernel = Tensor::zeros({8, 4, 3, 3});
  op.half_conv.in_channels = 4;
  op.half_conv.out_channels = 8;
  op.half_conv.kernel_h = 1;
  op.half_conv.kernel_w = 1;
  op.label = "layer2.htt";
  // half_kernel deliberately left undefined.
  const std::string msg = verify_error({op}, 2, 1);
  expect_contains(msg, "missing its merged half-step kernel");
  expect_contains(msg, "layer2.htt");
}

TEST(PlanVerifierTest, RejectsIncompleteAffineFieldGroup) {
  Op op;
  op.kind = Op::Kind::kAffine;
  op.in = 0;
  op.out = 1;
  op.bn_gamma = Tensor::zeros({4});
  op.bn_beta = Tensor::zeros({4});
  op.bn_mean = Tensor::zeros({4});
  // bn_inv_std deliberately left undefined.
  expect_contains(verify_error({op}, 2, 1), "missing bn_inv_std");
}

TEST(PlanVerifierTest, RejectsChannelMismatchBetweenProducerAndConsumer) {
  std::vector<Op> ops;
  ops.push_back(conv_op(0, 1, 3, 4));
  ops.push_back(conv_op(1, 2, 8, 4));  // expects 8 channels, gets 4
  const std::string msg = verify_error(ops, 3, 2);
  expect_contains(msg, "op 1");
  expect_contains(msg, "channels mismatch");
}

TEST(PlanVerifierTest, RejectsRankMismatchedResidualOperands) {
  std::vector<Op> ops;
  ops.push_back(conv_op(0, 1, 3, 4));
  Op flat;
  flat.kind = Op::Kind::kFlatten;
  flat.in = 1;
  flat.out = 2;
  ops.push_back(flat);
  Op add;
  add.kind = Op::Kind::kAdd;
  add.in = 1;
  add.in2 = 2;
  add.out = 3;
  ops.push_back(add);  // [T,N,C,H,W] + [T,N,F]: rank mismatch
  expect_contains(verify_error(ops, 4, 3), "rank mismatch");
}

TEST(PlanVerifierTest, RejectsConvWeightShapeMismatch) {
  Op op = conv_op(0, 1, 3, 4);
  op.weight = Tensor::zeros({4, 3, 5, 5});  // geometry says 3x3
  expect_contains(verify_error({op}, 2, 1), "does not match geometry");
}

// ---- concrete-shape (plan_memory) diagnostics ------------------------------

TEST(MemoryPlanTest, RejectsIndivisiblePoolAtPlanTime) {
  Op pool;
  pool.kind = Op::Kind::kAvgPool;
  pool.pool_kernel = 2;
  pool.in = 0;
  pool.out = 1;
  const infer::PlanAnalysis an = infer::analyze_plan({pool}, 2, 1);
  EXPECT_THROW(infer::plan_memory({pool}, an, {2, 1, 3, 7, 7}), Error);
  EXPECT_NO_THROW(infer::plan_memory({pool}, an, {2, 1, 3, 8, 8}));
}

TEST(MemoryPlanTest, RejectsWrongTebnTimestepsAtPlanTime) {
  Op aff;
  aff.kind = Op::Kind::kAffine;
  aff.in = 0;
  aff.out = 1;
  aff.bn_mode = BatchNorm::Mode::kTebn;
  aff.bn_timesteps = 4;
  aff.bn_gamma = Tensor::zeros({3});
  aff.bn_beta = Tensor::zeros({3});
  aff.bn_mean = Tensor::zeros({3});
  aff.bn_inv_std = Tensor::zeros({3});
  aff.bn_step_scale = Tensor::zeros({4});
  const infer::PlanAnalysis an = infer::analyze_plan({aff}, 2, 1);
  EXPECT_THROW(infer::plan_memory({aff}, an, {2, 1, 3, 8, 8}), Error);
  EXPECT_NO_THROW(infer::plan_memory({aff}, an, {4, 1, 3, 8, 8}));
}

TEST(MemoryPlanTest, RejectsShortHttScheduleAtPlanTime) {
  Op op;
  op.kind = Op::Kind::kTTHtt;
  op.in = 0;
  op.out = 1;
  op.tt.mode = TTMode::kHTT;
  op.tt.full_step = {true, false};
  op.conv.in_channels = 3;
  op.conv.out_channels = 4;
  op.conv.kernel_h = 3;
  op.conv.kernel_w = 3;
  op.full_kernel = Tensor::zeros({4, 3, 3, 3});
  op.half_conv.in_channels = 3;
  op.half_conv.out_channels = 4;
  op.half_conv.kernel_h = 1;
  op.half_conv.kernel_w = 1;
  op.half_kernel = Tensor::zeros({4, 3, 1, 1});
  const infer::PlanAnalysis an = infer::analyze_plan({op}, 2, 1);
  EXPECT_THROW(infer::plan_memory({op}, an, {4, 1, 3, 8, 8}), Error);
  EXPECT_NO_THROW(infer::plan_memory({op}, an, {2, 1, 3, 8, 8}));
}

// ---- liveness / alias / in-place -------------------------------------------

TEST(PlanAnalysisTest, MarksLifInPlaceWhenItsInputDies) {
  Rng rng(41);
  Sequential net;
  net.emplace<Conv2d>(Conv2d::Options{.in_channels = 3, .out_channels = 4},
                      rng);
  net.emplace<LIFNeuron>();
  net.emplace<Conv2d>(Conv2d::Options{.in_channels = 4, .out_channels = 4},
                      rng);
  net.set_training(false);
  // Fusion off: this test pins the UNFUSED alias/in-place facts (with fusion
  // the conv+lif pair collapses into one kConvLif op).
  infer::Engine engine = infer::compile(net, {.fuse_elementwise = false});
  ASSERT_EQ(engine.num_ops(), 3U);
  const infer::PlanAnalysis& an = engine.analysis();
  EXPECT_FALSE(an.is_inplace[0]);  // conv is never in-place
  EXPECT_TRUE(an.is_inplace[1]);   // LIF overwrites the conv output
  // In-place output shares its input's storage group, so the group's
  // workspace region is charged once.
  EXPECT_EQ(an.root[2], an.root[1]);
}

// ---- fusion pass -------------------------------------------------------------

TEST(FusionAnalysisTest, FusionCandidateRequiresASingleReader) {
  std::vector<Op> ops;
  ops.push_back(conv_op(0, 1, 3, 4));
  ops.push_back(conv_op(1, 2, 4, 4));
  ops.push_back(conv_op(2, 3, 4, 4));
  {
    const infer::PlanAnalysis an = infer::analyze_plan(ops, 4, 3);
    EXPECT_TRUE(infer::fusion_candidate(an, 1));   // read once, not result
    EXPECT_TRUE(infer::fusion_candidate(an, 2));
    EXPECT_FALSE(infer::fusion_candidate(an, 3));  // the result never fuses
  }
  // A residual join reading r1 through BOTH slots makes it a two-reader
  // register — never a fusion candidate.
  Op add;
  add.kind = Op::Kind::kAdd;
  add.in = 1;
  add.in2 = 1;
  add.out = 2;
  std::vector<Op> ops2;
  ops2.push_back(conv_op(0, 1, 3, 4));
  ops2.push_back(add);
  const infer::PlanAnalysis an = infer::analyze_plan(ops2, 3, 2);
  EXPECT_EQ(an.reads[1], 2);
  EXPECT_FALSE(infer::fusion_candidate(an, 1));
}

TEST(FusionAnalysisTest, ConvLifChainCollapsesToOneOp) {
  Rng rng(41);
  Sequential net;
  net.emplace<Conv2d>(Conv2d::Options{.in_channels = 3, .out_channels = 4},
                      rng);
  net.emplace<LIFNeuron>();
  net.emplace<Conv2d>(Conv2d::Options{.in_channels = 4, .out_channels = 4},
                      rng);
  net.set_training(false);
  infer::Engine engine = infer::compile(net);
  ASSERT_EQ(engine.num_ops(), 2U);
  EXPECT_EQ(engine.ops()[0].kind, Op::Kind::kConvLif);
  EXPECT_EQ(engine.ops()[1].kind, Op::Kind::kConv);
  // Register numbering stays dense after the dead producer is compacted out.
  EXPECT_EQ(engine.num_regs(), 3);
  EXPECT_EQ(engine.ops()[0].out, 1);
  EXPECT_EQ(engine.ops()[1].in, 1);
  // The summary advertises the fusion for plan-lint consumers.
  EXPECT_NE(engine.summary().find("fused ops: 1 (conv+lif x1)"),
            std::string::npos)
      << engine.summary();
}

TEST(FusionAnalysisTest, FusedPlansVerifyAndStayBitIdentical) {
  // Randomized sweep (replayable via TTSNN_TEST_SEED / bounded via
  // TTSNN_FUZZ_ITERS): every generated model must compile under the verifier
  // with fusion on AND off, never emit fused kinds when the pass is off, and
  // the two engines must agree bit-for-bit.
  const uint64_t base = testgen::suite_seed(0xa11a5);
  const int iters = testgen::seed_pinned() ? 1 : testgen::iteration_budget(6);
  for (int i = 0; i < iters; ++i) {
    const uint64_t seed = base + static_cast<uint64_t>(i);
    SCOPED_TRACE(testgen::seed_line(seed));
    const testgen::GeneratedModel gm = testgen::random_model(seed);
    SCOPED_TRACE(gm.desc);
    infer::Engine fused = infer::compile(*gm.net);
    infer::Engine plain = infer::compile(*gm.net, {.fuse_elementwise = false});
    for (const Op& op : plain.ops()) {
      EXPECT_TRUE(op.kind != Op::Kind::kConvLif &&
                  op.kind != Op::Kind::kAffineLif &&
                  op.kind != Op::Kind::kAddLif &&
                  op.kind != Op::Kind::kAffineAdd)
          << plain.summary();
    }
    EXPECT_LE(fused.num_ops(), plain.num_ops());
    Rng rng(seed ^ 0x5eed);
    Tensor x = Tensor::uniform(gm.input, rng);
    EXPECT_EQ(max_abs_diff(fused.run(x), plain.run(x)), 0.0)
        << fused.summary();
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(PlanAnalysisTest, LiveRangesMatchTheDataflow) {
  std::vector<Op> ops;
  ops.push_back(conv_op(0, 1, 3, 4));
  ops.push_back(conv_op(1, 2, 4, 4));
  ops.push_back(conv_op(2, 3, 4, 4));
  const infer::PlanAnalysis an = infer::analyze_plan(ops, 4, 3);
  EXPECT_EQ(an.live[0].def, -1);  // the input has no writer
  EXPECT_EQ(an.live[0].last_use, 0);
  EXPECT_EQ(an.live[1].def, 0);
  EXPECT_EQ(an.live[1].last_use, 1);
  EXPECT_EQ(an.live[3].def, 2);
  EXPECT_EQ(an.live[3].last_use, -1);  // the result is read by the caller
  // Derived eager-release table: same semantics the legacy executor uses.
  EXPECT_EQ(an.last_use[1], 1);
  EXPECT_EQ(an.last_use[3], std::numeric_limits<int>::max());
}

// ---- planned executor: bit identity + allocation behavior ------------------

// The hand-rolled "trained model" fixture this suite used to carry moved to
// the shared tests/model_gen.h (testgen::trained_resnet18), which the fuzz
// and property suites reuse.

class PlannedModeTest : public ::testing::TestWithParam<TTMode> {};

TEST_P(PlannedModeTest, PlannedRunBitIdenticalToLegacyExecutor) {
  Rng rng(42);
  ModulePtr net = testgen::trained_resnet18(GetParam(), rng);
  for (const bool merge : {true, false}) {
    infer::Engine planned = infer::compile(
        *net,
        {.merge_tt = merge, .fold_batchnorm = merge, .static_plan = true});
    infer::Engine legacy = infer::compile(
        *net,
        {.merge_tt = merge, .fold_batchnorm = merge, .static_plan = false});
    // Two shapes through the same engine: the plan cache must lay out (and
    // execute) each one correctly.
    for (const Shape& s : {Shape{4, 2, 3, 8, 8}, Shape{4, 1, 3, 12, 12}}) {
      Tensor x = Tensor::uniform(s, rng);
      Tensor want = legacy.run(x);
      Tensor got = planned.run(x);
      ASSERT_EQ(got.shape(), want.shape());
      EXPECT_EQ(max_abs_diff(got, want), 0.0)
          << tt_mode_name(GetParam()) << " merge=" << merge << " "
          << shape_str(s);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, PlannedModeTest,
                         ::testing::Values(TTMode::kSTT, TTMode::kPTT,
                                           TTMode::kHTT),
                         [](const auto& info) {
                           return tt_mode_name(info.param);
                         });

// TEBN keeps a standalone kAffine op (per-timestep scale); the planned
// executor must run it — possibly in place — with identical bits.
TEST(PlannedRunTest, TebnAffineBitIdentical) {
  Rng rng(43);
  ModelConfig cfg;
  cfg.in_channels = 3;
  cfg.num_classes = 4;
  cfg.base_width = 8;
  cfg.timesteps = 4;
  cfg.bn_mode = BatchNorm::Mode::kTebn;
  ModulePtr net = make_vgg9(cfg, rng);
  net->set_training(true);
  net->forward(Tensor::uniform({4, 2, 3, 8, 8}, rng));
  net->clear_cache();
  net->set_training(false);

  Tensor x = Tensor::uniform({4, 2, 3, 8, 8}, rng);
  Tensor y_ref = net->forward(x);
  infer::Engine planned = infer::compile(*net);
  EXPECT_EQ(max_abs_diff(planned.run(x), y_ref), 0.0);
}

TEST(PlannedRunTest, WorkspaceReuseIsBitIdenticalAndSingleAllocation) {
  Rng rng(44);
  ModulePtr net = testgen::trained_resnet18(TTMode::kPTT, rng);
  infer::Engine engine = infer::compile(*net);
  Tensor x = Tensor::uniform({4, 2, 3, 8, 8}, rng);
  Tensor golden = engine.run(x);

  Tensor ws;
  Tensor y1 = engine.run(x, ws);  // lays out the plan, allocates ws
  ASSERT_TRUE(ws.defined());
  EXPECT_EQ(ws.numel(), engine.memory_plan(x.shape())->total_floats);

  // Steady state: the workspace is reused, so the only storage acquisition
  // left is the caller-owned result tensor.
  Arena::instance().reset_stats();
  Tensor y2 = engine.run(x, ws);
  const ArenaStats stats = Arena::instance().stats();
  EXPECT_EQ(stats.hits + stats.misses, 1);

  EXPECT_EQ(max_abs_diff(y1, golden), 0.0);
  EXPECT_EQ(max_abs_diff(y2, golden), 0.0);
}

TEST(PlannedRunTest, EngineCopiesShareThePlanCache) {
  Rng rng(45);
  ModulePtr net = testgen::trained_resnet18(TTMode::kSTT, rng);
  infer::Engine engine = infer::compile(*net);
  infer::Engine replica = engine;  // what Router shards do
  const Shape s{4, 1, 3, 8, 8};
  EXPECT_EQ(engine.memory_plan(s).get(), replica.memory_plan(s).get());

  Tensor x = Tensor::uniform(s, rng);
  EXPECT_EQ(max_abs_diff(engine.run(x), replica.run(x)), 0.0);
}

TEST(PlannedRunTest, PlanPacksBelowTheUnplannedFootprint) {
  Rng rng(46);
  ModulePtr net = testgen::trained_resnet18(TTMode::kHTT, rng);
  infer::Engine engine = infer::compile(*net);
  const Shape s{4, 2, 3, 8, 8};
  const auto plan = engine.memory_plan(s);
  EXPECT_GT(plan->total_floats, 0);
  // Liveness-aware packing must beat allocate-everything (the legacy
  // executor's total traffic) on any multi-layer plan.
  EXPECT_LT(plan->total_floats, plan->unplanned_floats);
  // The report renders and carries the totals.
  const std::string report = engine.summary(s);
  EXPECT_NE(report.find("workspace:"), std::string::npos);
}

TEST(PlannedRunTest, FlattenLowersToAnAliasAndStaysBitIdentical) {
  Rng rng(47);
  Sequential net;
  net.emplace<Conv2d>(Conv2d::Options{.in_channels = 3, .out_channels = 4},
                      rng);
  net.emplace<LIFNeuron>();
  net.emplace<Flatten>();
  net.emplace<Linear>(4 * 6 * 6, 5, rng);
  net.set_training(false);
  infer::Engine engine = infer::compile(net);

  const infer::PlanAnalysis& an = engine.analysis();
  const auto& ops = engine.ops();
  bool saw_alias = false;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == infer::Op::Kind::kFlatten) {
      EXPECT_TRUE(an.is_alias[i]);  // a view, not a copy
      saw_alias = true;
    }
  }
  EXPECT_TRUE(saw_alias);

  Tensor x = Tensor::uniform({2, 2, 3, 6, 6}, rng);
  Tensor y_ref = net.forward(x);
  EXPECT_EQ(max_abs_diff(engine.run(x), y_ref), 0.0);
}

}  // namespace
}  // namespace ttsnn
