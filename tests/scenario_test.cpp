// Scenario layer tests: config parsing (file + CLI precedence, loud failures
// on typos), and the `ttsnn_train` smoke — one tiny epoch per TT mode driven
// from the checked-in configs/*.cfg files, with report and checkpoint
// artifacts verified.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "snn/scenario.h"

namespace ttsnn {
namespace {

// Match dataloader_test: give the lazily-built pool workers so the scenarios
// exercise the async loader path, not just the sync fallback.
const bool kPoolSized = [] {
  setenv("TTSNN_POOL_THREADS", "3", /*overwrite=*/0);
  return true;
}();

std::string source_config(const std::string& name) {
  return std::string(TTSNN_SOURCE_DIR) + "/configs/" + name;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(ScenarioConfigTest, FileThenCliPrecedence) {
  const std::string path = temp_path("scenario_precedence.cfg");
  {
    std::ofstream out(path);
    out << "# comment line\n"
        << "dataset = event\n"
        << "epochs = 4   # trailing comment\n"
        << "augment = on\n";
  }
  ScenarioConfig cfg = parse_scenario_cli(
      {"--config=" + path, "--epochs=2", "--tt_mode=ptt"});
  EXPECT_EQ(cfg.dataset, "event");  // from the file
  EXPECT_EQ(cfg.epochs, 2);         // CLI overrides the file
  EXPECT_EQ(cfg.tt_mode, "ptt");    // CLI on top of defaults
  EXPECT_TRUE(cfg.augment);
  // Options in front of --config would be silently discarded by the file
  // load; that must be a loud error, not a quietly wrong scenario.
  EXPECT_THROW(parse_scenario_cli({"--epochs=9", "--config=" + path}), Error);
}

TEST(ScenarioConfigTest, BareFlagEnablesBoolean) {
  ScenarioConfig cfg = parse_scenario_cli({"--vbmf", "--compile_smoke"});
  EXPECT_TRUE(cfg.vbmf);
  EXPECT_TRUE(cfg.compile_smoke);
}

TEST(ScenarioConfigTest, RanksParseAsList) {
  ScenarioConfig cfg = parse_scenario_cli({"--ranks=4, 8,12"});
  EXPECT_EQ(cfg.ranks, (std::vector<int64_t>{4, 8, 12}));
}

TEST(ScenarioConfigTest, TyposFailLoudly) {
  EXPECT_THROW(parse_scenario_cli({"--no_such_option=1"}), Error);
  EXPECT_THROW(parse_scenario_cli({"--epochs=three"}), Error);
  EXPECT_THROW(parse_scenario_cli({"--augment=maybe"}), Error);
  EXPECT_THROW(parse_scenario_cli({"epochs=3"}), Error);  // missing --
  // Bare flags are only for booleans; a bare --checkpoint would otherwise
  // silently write a file literally named "true".
  EXPECT_THROW(parse_scenario_cli({"--checkpoint"}), Error);
  EXPECT_THROW(parse_scenario_cli({"--report"}), Error);
  EXPECT_THROW(parse_scenario_cli({"--config=/no/such/file.cfg"}), Error);
  EXPECT_THROW(run_scenario(parse_scenario_cli({"--dataset=imagenet"})), Error);
  EXPECT_THROW(run_scenario(parse_scenario_cli({"--model=alexnet"})), Error);
  EXPECT_THROW(run_scenario(parse_scenario_cli({"--loss=mse"})), Error);
}

TEST(ScenarioConfigTest, HttScheduleValidated) {
  ScenarioConfig cfg;
  cfg.tt_mode = "htt";
  cfg.timesteps = 4;
  cfg.epochs = 1;
  cfg.train_per_class = 4;
  cfg.test_per_class = 2;
  cfg.batch_size = 8;
  cfg.htt_schedule = "110";  // wrong length
  EXPECT_THROW(run_scenario(cfg), Error);
  cfg.htt_schedule = "11x0";
  EXPECT_THROW(run_scenario(cfg), Error);
}

TEST(ScenarioConfigTest, MakeDatasetCoversAllKinds) {
  ScenarioConfig cfg;
  cfg.classes = 3;
  cfg.train_per_class = 2;
  for (const char* kind : {"image", "event", "gesture"}) {
    cfg.dataset = kind;
    std::unique_ptr<Dataset> data = make_scenario_dataset(cfg, /*train=*/true);
    ASSERT_NE(data, nullptr) << kind;
    EXPECT_EQ(data->size(), 6) << kind;
    EXPECT_EQ(data->channels(), std::string(kind) == "image" ? 3 : 2) << kind;
  }
}

/// The ttsnn_train CI smoke, as a test: one tiny epoch per TT mode from the
/// checked-in config files, producing a JSON report and a checkpoint.
class ScenarioSmokeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ScenarioSmokeTest, RunsOneTinyEpochFromConfigFile) {
  const std::string name = GetParam();
  ScenarioConfig cfg = load_scenario_file(source_config("tiny_" + name + ".cfg"));
  EXPECT_EQ(cfg.tt_mode, name);
  EXPECT_EQ(cfg.epochs, 1) << "CI smoke configs must stay one-epoch tiny";
  cfg.report = temp_path("scenario_" + name + ".json");
  cfg.checkpoint = temp_path("scenario_" + name + ".ckpt");

  ScenarioResult result = run_scenario(cfg);
  ASSERT_EQ(result.fit.epochs.size(), 1U);
  EXPECT_GE(result.fit.test_accuracy, 0.0);
  EXPECT_LE(result.fit.test_accuracy, 1.0);
  EXPECT_GT(result.fit.batch_time_s, 0.0);
  EXPECT_GT(result.factorization.replaced(), 0);
  // The configs all request the compile smoke; exact lowering must match the
  // module bit-for-bit.
  EXPECT_EQ(result.compile_max_abs_diff, 0.0);
  // Epoch wall clock decomposes into compute + data wait.
  const EpochStats& e = result.fit.epochs[0];
  EXPECT_NEAR(e.seconds, e.compute_seconds + e.data_wait_seconds,
              1e-6 + 0.01 * e.seconds);

  const std::string report = read_file(cfg.report);
  EXPECT_NE(report.find("\"schema\": 1"), std::string::npos);
  EXPECT_NE(report.find("\"name\": \"result\""), std::string::npos);
  EXPECT_NE(report.find("data_wait_s"), std::string::npos);
  std::ifstream ckpt(cfg.checkpoint, std::ios::binary);
  EXPECT_TRUE(ckpt.good()) << "checkpoint not written";
}

INSTANTIATE_TEST_SUITE_P(Modes, ScenarioSmokeTest,
                         ::testing::Values("stt", "ptt", "htt"));

}  // namespace
}  // namespace ttsnn
