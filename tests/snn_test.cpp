// SNN framework tests: encoders, losses (gradient identities), optimizer
// dynamics, LR schedule, and augmentation invariants.

#include <cmath>

#include <gtest/gtest.h>

#include "snn/adam.h"
#include "snn/augment.h"
#include "snn/encoder.h"
#include "snn/loss.h"
#include "snn/optimizer.h"
#include "tensor/ops.h"

namespace ttsnn {
namespace {

TEST(EncoderTest, DirectCodeReplicatesFrames) {
  Rng rng(1);
  Tensor img = Tensor::randn({2, 3, 4, 4}, rng);
  Tensor seq = direct_code(img, 3);
  EXPECT_EQ(seq.shape(), (Shape{3, 2, 3, 4, 4}));
  for (int64_t t = 0; t < 3; ++t) {
    EXPECT_LT(max_abs_diff(seq.slice0(t, t + 1).reshape(img.shape()), img), 1e-7);
  }
}

TEST(EncoderTest, RateCodeMatchesIntensity) {
  Rng rng(2);
  Tensor img = Tensor::full({1, 1, 50, 50}, 0.3F);
  Tensor seq = rate_code(img, 8, rng);
  EXPECT_NEAR(seq.density(), 0.3, 0.02);
  for (int64_t i = 0; i < seq.numel(); ++i) {
    EXPECT_TRUE(seq[i] == 0.0F || seq[i] == 1.0F);
  }
}

TEST(LossTest, CeSumLossOnConfidentLogits) {
  // Strongly correct logits -> small loss; strongly wrong -> large loss.
  Tensor good({1, 1, 3}, {10.0F, 0.0F, 0.0F});
  Tensor bad({1, 1, 3}, {0.0F, 10.0F, 0.0F});
  auto lg = cross_entropy_sum_loss(good, {0});
  auto lb = cross_entropy_sum_loss(bad, {0});
  EXPECT_LT(lg.value, 0.01);
  EXPECT_GT(lb.value, 5.0);
}

TEST(LossTest, CeSumGradMatchesFiniteDifference) {
  Rng rng(3);
  Tensor logits = Tensor::randn({2, 3, 4}, rng);
  std::vector<int64_t> labels{1, 3, 0};
  auto loss = cross_entropy_sum_loss(logits, labels);
  const float eps = 1e-3F;
  for (int64_t i = 0; i < logits.numel(); i += 5) {
    Tensor lp = logits.clone();
    lp[i] += eps;
    Tensor lm = logits.clone();
    lm[i] -= eps;
    const double fd = (cross_entropy_sum_loss(lp, labels).value -
                       cross_entropy_sum_loss(lm, labels).value) /
                      (2.0 * eps);
    EXPECT_NEAR(loss.grad[i], fd, 1e-3) << "coordinate " << i;
  }
}

TEST(LossTest, CeSumGradIdenticalAcrossTimesteps) {
  Rng rng(4);
  Tensor logits = Tensor::randn({3, 2, 5}, rng);
  auto loss = cross_entropy_sum_loss(logits, {0, 4});
  const int64_t nc = 2 * 5;
  for (int64_t i = 0; i < nc; ++i) {
    EXPECT_FLOAT_EQ(loss.grad[i], loss.grad[nc + i]);
    EXPECT_FLOAT_EQ(loss.grad[i], loss.grad[2 * nc + i]);
  }
}

TEST(LossTest, TetGradMatchesFiniteDifference) {
  Rng rng(5);
  Tensor logits = Tensor::randn({2, 2, 3}, rng);
  std::vector<int64_t> labels{2, 0};
  auto loss = tet_loss(logits, labels, 0.2F, 0.8F);
  const float eps = 1e-3F;
  for (int64_t i = 0; i < logits.numel(); i += 3) {
    Tensor lp = logits.clone();
    lp[i] += eps;
    Tensor lm = logits.clone();
    lm[i] -= eps;
    const double fd = (tet_loss(lp, labels, 0.2F, 0.8F).value -
                       tet_loss(lm, labels, 0.2F, 0.8F).value) /
                      (2.0 * eps);
    EXPECT_NEAR(loss.grad[i], fd, 1e-3) << "coordinate " << i;
  }
}

TEST(LossTest, TetPerStepGradsDiffer) {
  // Unlike CE-sum, TET penalizes each step separately.
  Tensor logits({2, 1, 2}, {3.0F, 0.0F, 0.0F, 3.0F});
  auto loss = tet_loss(logits, {0}, 0.0F);
  EXPECT_NE(loss.grad[0], loss.grad[2]);
}

TEST(LossTest, AccuracyCountsSummedArgmax) {
  // Step logits disagree; the sum decides.
  Tensor logits({2, 2, 2}, {2, 0, 0, 2,   // t0: pred 0, pred 1
                            0, 1, 0, 2});  // t1: pred 1, pred 1
  // sums: sample0 = (2,1) -> 0; sample1 = (0,4) -> 1.
  EXPECT_DOUBLE_EQ(accuracy(logits, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 0}), 0.0);
}

TEST(LossTest, RejectsBadLabels) {
  Tensor logits = Tensor::zeros({1, 1, 3});
  EXPECT_THROW(cross_entropy_sum_loss(logits, {3}), Error);
  EXPECT_THROW(cross_entropy_sum_loss(logits, {0, 1}), Error);
}

TEST(OptimizerTest, SgdDescendsQuadratic) {
  // Minimize f(w) = 0.5 * ||w||^2; gradient = w.
  Parameter p("w", Tensor({2}, {1.0F, -2.0F}));
  SGD sgd({&p}, {.lr = 0.1F, .momentum = 0.0F, .weight_decay = 0.0F});
  for (int i = 0; i < 100; ++i) {
    p.grad = p.value.clone();
    sgd.step();
  }
  EXPECT_LT(std::fabs(p.value[0]), 1e-4);
  EXPECT_LT(std::fabs(p.value[1]), 1e-4);
}

TEST(OptimizerTest, MomentumAcceleratesDescent) {
  auto run = [](float momentum) {
    Parameter p("w", Tensor({1}, {1.0F}));
    SGD sgd({&p}, {.lr = 0.01F, .momentum = momentum, .weight_decay = 0.0F});
    for (int i = 0; i < 20; ++i) {
      p.grad = p.value.clone();
      sgd.step();
    }
    return std::fabs(p.value[0]);
  };
  EXPECT_LT(run(0.9F), run(0.0F));
}

TEST(OptimizerTest, WeightDecayShrinksWeights) {
  Parameter p("w", Tensor({1}, {1.0F}));
  SGD sgd({&p}, {.lr = 0.1F, .momentum = 0.0F, .weight_decay = 0.5F});
  p.grad.zero_();
  sgd.step();
  EXPECT_NEAR(p.value[0], 1.0F - 0.1F * 0.5F, 1e-6);
}

TEST(OptimizerTest, DecayFlagExcludesParameter) {
  Parameter p("bn.gamma", Tensor({1}, {1.0F}), /*apply_decay=*/false);
  SGD sgd({&p}, {.lr = 0.1F, .momentum = 0.0F, .weight_decay = 0.5F});
  p.grad.zero_();
  sgd.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.0F);
}

TEST(OptimizerTest, ZeroGradClears) {
  Parameter p("w", Tensor({2}, {1, 1}));
  p.grad.fill_(3.0F);
  SGD sgd({&p}, {});
  sgd.zero_grad();
  EXPECT_DOUBLE_EQ(p.grad.sum(), 0.0);
}

TEST(AdamTest, DescendsQuadratic) {
  Parameter p("w", Tensor({2}, {1.0F, -2.0F}));
  Adam adam({&p}, {.lr = 0.05F});
  for (int i = 0; i < 300; ++i) {
    p.grad = p.value.clone();
    adam.step();
  }
  EXPECT_LT(std::fabs(p.value[0]), 1e-2);
  EXPECT_LT(std::fabs(p.value[1]), 1e-2);
}

TEST(AdamTest, FirstStepIsLrSizedRegardlessOfGradScale) {
  // Bias correction: the first update magnitude is ~lr for any grad scale.
  for (float scale : {1e-3F, 1.0F, 1e3F}) {
    Parameter p("w", Tensor({1}, {0.0F}));
    Adam adam({&p}, {.lr = 0.1F});
    p.grad = Tensor({1}, {scale});
    adam.step();
    EXPECT_NEAR(std::fabs(p.value[0]), 0.1F, 0.01F) << "scale " << scale;
  }
}

TEST(AdamTest, DecoupledWeightDecayShrinks) {
  Parameter p("w", Tensor({1}, {1.0F}));
  Adam adam({&p}, {.lr = 0.1F, .weight_decay = 0.5F});
  p.grad.zero_();
  adam.step();
  EXPECT_NEAR(p.value[0], 1.0F - 0.1F * 0.5F, 1e-6);
  // decay=false parameters are untouched.
  Parameter q("bn.gamma", Tensor({1}, {1.0F}), /*apply_decay=*/false);
  Adam adam2({&q}, {.lr = 0.1F, .weight_decay = 0.5F});
  q.grad.zero_();
  adam2.step();
  EXPECT_FLOAT_EQ(q.value[0], 1.0F);
}

TEST(AdamTest, RejectsBadOptions) {
  Parameter p("w", Tensor({1}, {1.0F}));
  EXPECT_THROW(Adam({&p}, {.lr = 0.0F}), Error);
  EXPECT_THROW(Adam({&p}, {.beta1 = 1.0F}), Error);
  EXPECT_THROW(Adam({}, {}), Error);
}

TEST(CosineLrTest, AnnealsFromBaseToZero) {
  CosineLr sched(0.1F, 100);
  EXPECT_FLOAT_EQ(sched.at(0), 0.1F);
  EXPECT_NEAR(sched.at(50), 0.05F, 1e-6);
  EXPECT_NEAR(sched.at(100), 0.0F, 1e-6);
  EXPECT_GT(sched.at(25), sched.at(75));
}

TEST(AugmentTest, PreservesShapeAndBinaryValues) {
  Rng data_rng(6);
  Tensor x = Tensor::bernoulli({3, 2, 2, 8, 8}, data_rng, 0.2F);
  Rng rng(7);
  Tensor y = augment_events(x, {}, rng);
  EXPECT_EQ(y.shape(), x.shape());
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_TRUE(y[i] == 0.0F || y[i] == 1.0F);
  }
}

TEST(AugmentTest, TransformConsistentAcrossTimesteps) {
  // A static-in-time clip must stay static after augmentation (one transform
  // per sample shared by all timesteps).
  Rng data_rng(8);
  Tensor frame = Tensor::bernoulli({1, 1, 1, 8, 8}, data_rng, 0.4F);
  Tensor clip({4, 1, 1, 8, 8});
  for (int64_t t = 0; t < 4; ++t) {
    std::copy(frame.data(), frame.data() + 64, clip.data() + t * 64);
  }
  Rng rng(9);
  Tensor y = augment_events(clip, {.cutout_size = 0}, rng);
  for (int64_t t = 1; t < 4; ++t) {
    EXPECT_LT(max_abs_diff(y.slice0(t, t + 1), y.slice0(0, 1)), 1e-7) << t;
  }
}

TEST(AugmentTest, IdentityOptionsPreserveInput) {
  Rng data_rng(10);
  Tensor x = Tensor::bernoulli({2, 2, 1, 6, 6}, data_rng, 0.3F);
  Rng rng(11);
  AugmentOptions opts{.max_shift = 0, .hflip = false, .cutout_size = 0};
  Tensor y = augment_events(x, opts, rng);
  EXPECT_LT(max_abs_diff(x, y), 1e-7);
}

}  // namespace
}  // namespace ttsnn
