// Cross-module integration tests: the complete Algorithm-1 lifecycle,
// spike-driven inference accounting, training-vs-eval batchnorm coherence,
// checkpoint-resume training, and the measured-density -> hardware-energy
// chain.

#include <cstdio>

#include <gtest/gtest.h>

#include "core/factorize.h"
#include "core/flops.h"
#include "core/models.h"
#include "data/synthetic_event.h"
#include "data/synthetic_image.h"
#include "hw/multi_cluster.h"
#include "hw/sata_baseline.h"
#include "snn/profile.h"
#include "snn/serialize.h"
#include "snn/trainer.h"
#include "tensor/ops.h"

namespace ttsnn {
namespace {

ModelConfig tiny_cfg() {
  return {.in_channels = 3, .num_classes = 4, .base_width = 8, .timesteps = 4};
}

TEST(IntegrationTest, FullAlgorithmOneLifecycle) {
  // Algorithm 1 end to end: pretrain dense base -> VBMF ranks -> TT-SVD
  // factorize -> train TT -> merge -> identical eval accuracy.
  Rng rng(1);
  ModulePtr net = make_ms_resnet18(tiny_cfg(), rng);
  SyntheticImageDataset train({.num_classes = 4, .samples_per_class = 16,
                               .size = 12, .seed = 10});
  SyntheticImageDataset test({.num_classes = 4, .samples_per_class = 8,
                              .size = 12, .seed = 20});
  TrainConfig tcfg{.epochs = 3, .batch_size = 16, .timesteps = 4, .lr = 0.08F,
                   .seed = 30};

  Trainer base_trainer(*net, train, test, tcfg);
  for (int64_t e = 0; e < tcfg.epochs; ++e) base_trainer.run_epoch(e);

  FactorizeOptions fopts;  // VBMF on the trained weights (the default)
  FactorizeReport report = factorize_network(*net, fopts, rng);
  EXPECT_EQ(report.replaced(), 16);
  for (const FactorizedLayer& l : report.layers) {
    EXPECT_GE(l.rank, 1);
    EXPECT_LE(l.rank, 8);
  }

  Trainer tt_trainer(*net, train, test, tcfg);
  for (int64_t e = 0; e < tcfg.epochs; ++e) tt_trainer.run_epoch(e);
  const double acc_tt = tt_trainer.evaluate();

  merge_network(*net);
  Trainer merged(*net, train, test, tcfg);
  EXPECT_NEAR(merged.evaluate(), acc_tt, 1e-9);
}

TEST(IntegrationTest, SpikingInferenceSynopsChain) {
  // Train -> merge -> profile spike densities -> synop accounting: the
  // merged spiking model computes mostly ACs, and the total tracks density.
  Rng rng(2);
  ModulePtr net = make_ms_resnet18(tiny_cfg(), rng);
  SyntheticImageDataset data({.num_classes = 4, .samples_per_class = 8,
                              .size = 12, .seed = 40});
  Batch batch = data.get_batch({0, 1, 2, 3}, 4);

  SpikeProfile profile = profile_spikes(*net, batch.input);
  ModelStats stats = analyze_model(*net, 3, 12, 12);
  SynopReport synops = inference_synops(stats, profile.lif_densities, 4);

  EXPECT_GT(synops.ac_ops, 0.0);
  EXPECT_GT(synops.mac_ops, 0.0);  // stem + classifier stay analog
  // All block convs are spike-input: ACs dominate the dense MACs budget.
  const double dense_total = stats.macs_per_step * 4;
  EXPECT_LT(synops.total(), dense_total);
  // Halving the densities halves the AC count.
  std::vector<double> halved = profile.lif_densities;
  for (double& d : halved) d *= 0.5;
  SynopReport half = inference_synops(stats, halved, 4);
  EXPECT_NEAR(half.ac_ops, 0.5 * synops.ac_ops, 1e-6 * synops.ac_ops);
  EXPECT_DOUBLE_EQ(half.mac_ops, synops.mac_ops);
}

TEST(IntegrationTest, CheckpointResumeMatchesUninterruptedTraining) {
  // Train 2 epochs, checkpoint, train 2 more; must equal 4 straight epochs
  // when the data order matches (fresh trainer with the same seed replays
  // the same shuffles).
  SyntheticImageDataset train({.num_classes = 4, .samples_per_class = 8,
                               .size = 12, .seed = 50});
  const std::string path = ::testing::TempDir() + "/resume.bin";

  Rng rng_a(3);
  ModulePtr a = make_ms_resnet18(tiny_cfg(), rng_a);
  TrainConfig tcfg{.epochs = 4, .batch_size = 16, .timesteps = 2,
                   .lr = 0.05F, .cosine_lr = false, .seed = 60};
  Trainer trainer_a(*a, train, train, tcfg);
  for (int64_t e = 0; e < 4; ++e) trainer_a.run_epoch(e);

  Rng rng_b(3);
  ModulePtr b = make_ms_resnet18(tiny_cfg(), rng_b);
  {
    Trainer first(*b, train, train, tcfg);
    first.run_epoch(0);
    first.run_epoch(1);
    save_parameters(*b, path);
  }
  Rng rng_c(99);
  ModulePtr c = make_ms_resnet18(tiny_cfg(), rng_c);
  load_parameters(*c, path);
  // NOTE: optimizer momentum restarts at the checkpoint; compare b-continued
  // against c-resumed (identical state) rather than against a.
  Trainer cont_b(*b, train, train, tcfg);
  Trainer cont_c(*c, train, train, tcfg);
  EpochStats sb = cont_b.run_epoch(2);
  EpochStats sc = cont_c.run_epoch(2);
  EXPECT_NEAR(sb.loss, sc.loss, 1e-5);
  std::remove(path.c_str());
}

TEST(IntegrationTest, EvalModeIsDeterministicAndBatchInvariant) {
  // In eval mode BN uses running statistics, so per-sample predictions must
  // not depend on batch composition.
  Rng rng(4);
  ModulePtr net = make_ms_resnet18(tiny_cfg(), rng);
  SyntheticImageDataset data({.num_classes = 4, .samples_per_class = 8,
                              .size = 12, .seed = 70});
  // A few training steps to move the running stats off their init.
  Trainer trainer(*net, data, data,
                  {.epochs = 1, .batch_size = 16, .timesteps = 2, .seed = 80});
  trainer.run_epoch(0);

  net->set_training(false);
  Batch pair = data.get_batch({0, 9}, 2);
  Tensor logits_pair = net->forward(pair.input);
  Batch solo = data.get_batch({0}, 2);
  Tensor logits_solo = net->forward(solo.input);
  // Sample 0's logits agree whether batched with sample 9 or alone.
  for (int64_t t = 0; t < 2; ++t) {
    for (int64_t c = 0; c < 4; ++c) {
      EXPECT_NEAR(logits_pair.at({t, 0, c}), logits_solo.at({t, 0, c}), 1e-4);
    }
  }
}

TEST(IntegrationTest, HttOnEventsUsesPaperSchedule) {
  // The N-Caltech recipe: T=6 with half sub-convolutions at t=5,6. Verify
  // the full pipeline (factorize -> train -> merge) runs on event data and
  // the merged model is equivalent in eval.
  Rng rng(5);
  ModelConfig cfg = tiny_cfg();
  cfg.in_channels = 2;
  cfg.timesteps = 6;
  ModulePtr net = make_ms_resnet18(cfg, rng);
  FactorizeOptions fopts;
  fopts.mode = TTMode::kHTT;
  fopts.use_vbmf = false;
  fopts.rank_fraction = 0.5;
  fopts.htt_schedule = {true, true, true, true, false, false};
  factorize_network(*net, fopts, rng);

  SyntheticEventDataset train({.num_classes = 4, .samples_per_class = 8,
                               .size = 12, .seed = 90});
  Trainer trainer(*net, train, train,
                  {.epochs = 2, .batch_size = 16, .timesteps = 6, .lr = 0.05F,
                   .seed = 91});
  trainer.run_epoch(0);
  trainer.run_epoch(1);
  const double acc_tt = trainer.evaluate();

  // HTT merge produces the full-step (cross) kernel; on FULL steps the
  // merged model matches, on half steps it intentionally differs — so
  // equivalence is only exact for all-full schedules. Here we just require
  // the merged model to stay functional.
  merge_network(*net);
  Trainer merged(*net, train, train,
                 {.epochs = 1, .batch_size = 16, .timesteps = 6, .seed = 91});
  const double acc_merged = merged.evaluate();
  EXPECT_GE(acc_merged, 0.0);
  EXPECT_LE(std::fabs(acc_merged - acc_tt), 1.0);
}

TEST(IntegrationTest, MeasuredDensityNarrowsSimulatorGap) {
  // The full chain: train briefly, profile real spike density, feed it to
  // both accelerator models — trained (sparser) nets must cost less than a
  // pessimistic dense assumption on both designs.
  Rng rng(6);
  ModulePtr net = make_ms_resnet18(tiny_cfg(), rng);
  SyntheticImageDataset data({.num_classes = 4, .samples_per_class = 8,
                              .size = 12, .seed = 95});
  Batch batch = data.get_batch({0, 1, 2, 3}, 4);
  SpikeProfile profile = profile_spikes(*net, batch.input);
  ModelStats stats = analyze_model(*net, 3, 12, 12);

  WorkloadOptions measured;
  measured.spike_density = profile.mean_density;
  WorkloadOptions dense;
  dense.spike_density = 1.0;
  EXPECT_LT(simulate_sata(build_workload("m", stats, measured)).total_pj(),
            simulate_sata(build_workload("d", stats, dense)).total_pj());
  EXPECT_LT(
      simulate_multi_cluster(build_workload("m", stats, measured)).total_pj(),
      simulate_multi_cluster(build_workload("d", stats, dense)).total_pj());
}

}  // namespace
}  // namespace ttsnn
