// Tests for the Algorithm-1 network rewrite passes: factorize (dense conv ->
// TTConv2d with VBMF or explicit ranks, TT-SVD init) and merge (TTConv2d ->
// dense conv for spike-driven inference).

#include <gtest/gtest.h>

#include "core/factorize.h"
#include "core/flops.h"
#include "core/models.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "tensor/ops.h"

namespace ttsnn {
namespace {

ModelConfig tiny_config() {
  ModelConfig cfg;
  cfg.base_width = 8;
  cfg.num_classes = 4;
  cfg.timesteps = 2;
  return cfg;
}

int64_t count_type(Module& root, const char* which) {
  int64_t n = 0;
  visit_module_slots(root, [&](ModulePtr& slot) {
    if (std::string(which) == "ttconv" && dynamic_cast<TTConv2d*>(slot.get())) {
      ++n;
    }
    if (std::string(which) == "conv" && dynamic_cast<Conv2d*>(slot.get())) ++n;
  });
  return n;
}

TEST(FactorizeTest, ReplacesBlockConvsOnly) {
  Rng rng(1);
  ModulePtr net = make_ms_resnet18(tiny_config(), rng);
  // ResNet18: 16 block 3x3 convs decomposed; stem + 3 shortcut 1x1 kept.
  FactorizeOptions opts;
  opts.use_vbmf = false;
  opts.rank_fraction = 0.5;
  FactorizeReport report = factorize_network(*net, opts, rng);
  EXPECT_EQ(report.replaced(), 16);
  EXPECT_EQ(count_type(*net, "ttconv"), 16);
  EXPECT_EQ(count_type(*net, "conv"), 4);  // stem + 3 projection shortcuts
}

TEST(FactorizeTest, ExplicitRankListConsumedInOrder) {
  Rng rng(2);
  ModulePtr net = make_ms_resnet18(tiny_config(), rng);
  FactorizeOptions opts;
  opts.explicit_ranks = {1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4};
  FactorizeReport report = factorize_network(*net, opts, rng);
  ASSERT_EQ(report.replaced(), 16);
  for (int64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(report.layers[static_cast<size_t>(i)].rank,
              opts.explicit_ranks[static_cast<size_t>(i)]);
  }
}

TEST(FactorizeTest, ExplicitRankLengthMismatchThrows) {
  Rng rng(3);
  ModulePtr net = make_ms_resnet18(tiny_config(), rng);
  FactorizeOptions opts;
  opts.explicit_ranks = {4, 4};  // too short
  EXPECT_THROW(factorize_network(*net, opts, rng), Error);
}

TEST(FactorizeTest, HttRequiresSchedule) {
  Rng rng(4);
  ModulePtr net = make_ms_resnet18(tiny_config(), rng);
  FactorizeOptions opts;
  opts.mode = TTMode::kHTT;
  EXPECT_THROW(factorize_network(*net, opts, rng), Error);
}

TEST(FactorizeTest, ReducesParameterCount) {
  Rng rng(5);
  ModelConfig cfg = tiny_config();
  cfg.base_width = 16;
  ModulePtr net = make_ms_resnet18(cfg, rng);
  const int64_t dense_params = net->num_params();
  FactorizeOptions opts;
  opts.use_vbmf = false;
  opts.rank_fraction = 0.25;
  FactorizeReport report = factorize_network(*net, opts, rng);
  const int64_t tt_params = net->num_params();
  EXPECT_LT(tt_params, dense_params);
  EXPECT_EQ(dense_params - tt_params,
            report.dense_params() - report.tt_params());
}

TEST(FactorizeTest, TtSvdInitIsExactForLowTtRankWeights) {
  // Algorithm 1 line 4: the factorized model is initialized from the dense
  // weights by TT-SVD. When the dense weights genuinely have low TT-rank,
  // initialization must be lossless and the factorized network must compute
  // the same function as the dense one.
  Rng rng(6);
  ModelConfig cfg = tiny_config();
  ModulePtr net = make_ms_resnet18(cfg, rng);

  // Overwrite every eligible conv weight with a rank-2 TT tensor.
  visit_module_slots(*net, [&](ModulePtr& slot) {
    auto* conv = dynamic_cast<Conv2d*>(slot.get());
    if (conv == nullptr) return;
    const auto& o = conv->options();
    if (o.kernel_h != 3 || o.in_channels < 8) return;
    TTCores gen{.in_channels = o.in_channels, .out_channels = o.out_channels,
                .kernel = 3, .rank = 2};
    gen.w1 = Tensor::randn({2, o.in_channels, 1, 1}, rng);
    gen.w2 = Tensor::randn({2, 2, 3, 1}, rng);
    gen.w3 = Tensor::randn({2, 2, 1, 3}, rng);
    gen.w4 = Tensor::randn({o.out_channels, 2, 1, 1}, rng);
    gen.w1.mul_scalar_(0.4F);
    gen.w2.mul_scalar_(0.4F);
    gen.w3.mul_scalar_(0.4F);
    gen.w4.mul_scalar_(0.4F);
    conv->weight().value = merge_stt(gen);
  });

  Tensor x = Tensor::uniform({2, 2, 3, 8, 8}, rng);
  net->set_training(false);
  Tensor y_dense = net->forward(x);

  FactorizeOptions opts;
  opts.mode = TTMode::kSTT;  // STT reconstructs the full kernel support
  opts.explicit_ranks = std::vector<int64_t>(16, 2);
  FactorizeReport report = factorize_network(*net, opts, rng);
  for (const FactorizedLayer& l : report.layers) {
    EXPECT_LT(l.init_error, 1e-2) << "layer " << l.index;
  }
  net->set_training(false);
  Tensor y_tt = net->forward(x);
  const double scale = std::max(1.0, static_cast<double>(y_dense.max_value()));
  EXPECT_LT(max_abs_diff(y_dense, y_tt) / scale, 5e-2);
}

TEST(MergePassTest, MergeRestoresDenseNetwork) {
  Rng rng(7);
  ModelConfig cfg = tiny_config();
  ModulePtr net = make_ms_resnet18(cfg, rng);
  FactorizeOptions opts;
  opts.mode = TTMode::kPTT;
  opts.use_vbmf = false;
  opts.rank_fraction = 0.5;
  factorize_network(*net, opts, rng);

  Tensor x = Tensor::uniform({2, 2, 3, 8, 8}, rng);
  net->set_training(false);
  Tensor y_tt = net->forward(x);

  MergeReport merged = merge_network(*net);
  EXPECT_EQ(merged.merged, 16);
  EXPECT_EQ(count_type(*net, "ttconv"), 0);
  net->set_training(false);
  Tensor y_merged = net->forward(x);
  // Eq. (6): the merged dense network computes the identical function.
  EXPECT_LT(max_abs_diff(y_tt, y_merged), 1e-3);
}

TEST(MergePassTest, MergedNetworkTrainsNoTtLayers) {
  Rng rng(8);
  ModulePtr net = make_ms_resnet18(tiny_config(), rng);
  FactorizeOptions opts;
  opts.use_vbmf = false;
  factorize_network(*net, opts, rng);
  merge_network(*net);
  ModelStats stats = analyze_model(*net, 3, 8, 8);
  for (const LayerDesc& d : stats.layers) {
    EXPECT_NE(d.kind, "ttconv");
  }
}

TEST(FactorizeTest, VggFactorizesAllButStem) {
  Rng rng(9);
  ModelConfig cfg = tiny_config();
  ModulePtr net = make_vgg9(cfg, rng);
  FactorizeOptions opts;
  opts.use_vbmf = false;
  FactorizeReport report = factorize_network(*net, opts, rng);
  EXPECT_EQ(report.replaced(), 6);  // 7 convs, stem excluded
}

}  // namespace
}  // namespace ttsnn
