// Synthetic dataset tests: determinism, label structure, static-vs-temporal
// frame behaviour (the property the HTT analysis depends on), and class
// separability sanity (nearest-centroid accuracy above chance).

#include <map>

#include <gtest/gtest.h>

#include "data/synthetic_event.h"
#include "data/synthetic_gesture.h"
#include "data/synthetic_image.h"
#include "tensor/ops.h"

namespace ttsnn {
namespace {

TEST(SyntheticImageTest, SizesAndLabels) {
  SyntheticImageDataset ds({.num_classes = 5, .samples_per_class = 4,
                            .channels = 3, .size = 12});
  EXPECT_EQ(ds.size(), 20);
  EXPECT_EQ(ds.num_classes(), 5);
  EXPECT_FALSE(ds.is_temporal());
  std::map<int64_t, int64_t> counts;
  for (int64_t i = 0; i < ds.size(); ++i) ++counts[ds.label(i)];
  for (int64_t k = 0; k < 5; ++k) EXPECT_EQ(counts[k], 4);
}

TEST(SyntheticImageTest, DeterministicAcrossInstances) {
  SyntheticImageDataset a({.num_classes = 3, .samples_per_class = 2, .seed = 42});
  SyntheticImageDataset b({.num_classes = 3, .samples_per_class = 2, .seed = 42});
  EXPECT_LT(max_abs_diff(a.image(3), b.image(3)), 1e-7);
}

TEST(SyntheticImageTest, SeedChangesData) {
  SyntheticImageDataset a({.num_classes = 3, .samples_per_class = 2, .seed = 1});
  SyntheticImageDataset b({.num_classes = 3, .samples_per_class = 2, .seed = 2});
  EXPECT_GT(max_abs_diff(a.image(0), b.image(0)), 1e-3);
}

TEST(SyntheticImageTest, PixelsInUnitRange) {
  SyntheticImageDataset ds({.num_classes = 4, .samples_per_class = 4});
  for (int64_t i = 0; i < ds.size(); i += 3) {
    Tensor img = ds.image(i);
    EXPECT_GE(img.min_value(), 0.0F);
    EXPECT_LE(img.max_value(), 1.0F);
  }
}

TEST(SyntheticImageTest, BatchReplicatesFramesAcrossTime) {
  SyntheticImageDataset ds({.num_classes = 3, .samples_per_class = 3});
  Batch batch = ds.get_batch({0, 4}, 4);
  EXPECT_EQ(batch.input.shape(), (Shape{4, 2, 3, 16, 16}));
  EXPECT_EQ(batch.labels.size(), 2u);
  // Static dataset: identical frames at every timestep.
  for (int64_t t = 1; t < 4; ++t) {
    EXPECT_LT(max_abs_diff(batch.input.slice0(t, t + 1),
                           batch.input.slice0(0, 1)),
              1e-7);
  }
}

TEST(SyntheticImageTest, ClassesAreSeparable) {
  // Nearest-centroid in pixel space must beat chance by a wide margin —
  // otherwise no network could learn the task.
  SyntheticImageDataset ds({.num_classes = 4, .samples_per_class = 16,
                            .size = 12, .seed = 5});
  const int64_t dim = 3 * 12 * 12;
  std::vector<Tensor> centroids;
  for (int64_t k = 0; k < 4; ++k) {
    Tensor c = Tensor::zeros({dim});
    for (int64_t i = 0; i < 8; ++i) {  // first half as "train"
      c.add_(ds.image(k * 16 + i).reshape({dim}));
    }
    c.mul_scalar_(1.0F / 8.0F);
    centroids.push_back(c);
  }
  int64_t correct = 0, total = 0;
  for (int64_t k = 0; k < 4; ++k) {
    for (int64_t i = 8; i < 16; ++i) {  // second half as "test"
      Tensor x = ds.image(k * 16 + i).reshape({dim});
      double best = 1e30;
      int64_t arg = -1;
      for (int64_t c = 0; c < 4; ++c) {
        Tensor d = sub(x, centroids[static_cast<size_t>(c)]);
        const double dist = d.norm();
        if (dist < best) {
          best = dist;
          arg = c;
        }
      }
      correct += arg == k ? 1 : 0;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.6);  // chance = 0.25
}

TEST(SyntheticEventTest, FramesDistinctPerTimestep) {
  SyntheticEventDataset ds({.num_classes = 4, .samples_per_class = 2});
  Batch batch = ds.get_batch({0, 5}, 6);
  EXPECT_EQ(batch.input.shape(), (Shape{6, 2, 2, 16, 16}));
  EXPECT_TRUE(ds.is_temporal());
  // Dynamic dataset: consecutive frames differ (the paper's HTT argument).
  double total_diff = 0.0;
  for (int64_t t = 1; t < 6; ++t) {
    total_diff += max_abs_diff(batch.input.slice0(t, t + 1),
                               batch.input.slice0(t - 1, t));
  }
  EXPECT_GT(total_diff, 1.0);
}

TEST(SyntheticEventTest, EventsAreBinaryTwoPolarity) {
  SyntheticEventDataset ds({.num_classes = 3, .samples_per_class = 2});
  Batch batch = ds.get_batch({1}, 4);
  for (int64_t i = 0; i < batch.input.numel(); ++i) {
    EXPECT_TRUE(batch.input[i] == 0.0F || batch.input[i] == 1.0F);
  }
  // Both polarities fire somewhere.
  double on = 0.0, off = 0.0;
  for (int64_t t = 0; t < 4; ++t) {
    for (int64_t p = 0; p < 16 * 16; ++p) {
      on += batch.input.at({t, 0, 0, p / 16, p % 16});
      off += batch.input.at({t, 0, 1, p / 16, p % 16});
    }
  }
  EXPECT_GT(on, 0.0);
  EXPECT_GT(off, 0.0);
}

TEST(SyntheticEventTest, DeterministicPerSample) {
  SyntheticEventDataset ds({.num_classes = 3, .samples_per_class = 2, .seed = 11});
  Batch a = ds.get_batch({2}, 5);
  Batch b = ds.get_batch({2}, 5);
  EXPECT_LT(max_abs_diff(a.input, b.input), 1e-7);
}

TEST(SyntheticGestureTest, MotionClassesNeedTime) {
  // Translation classes share the same blob shape: the time-summed frame of
  // clips from different direction classes overlaps heavily, while the
  // per-step event locations trace different trajectories.
  SyntheticGestureDataset ds({.num_classes = 4, .samples_per_class = 2,
                              .speed = 2.0});
  Batch batch = ds.get_batch({0, 2}, 6);  // two different classes
  EXPECT_EQ(batch.input.shape(), (Shape{6, 2, 2, 16, 16}));
  EXPECT_NE(batch.labels[0], batch.labels[1]);
  // Frames move: consecutive steps differ for every sample.
  for (int64_t t = 1; t < 6; ++t) {
    EXPECT_GT(max_abs_diff(batch.input.slice0(t, t + 1),
                           batch.input.slice0(t - 1, t)),
              0.0);
  }
}

TEST(SyntheticGestureTest, LabelsPartitionSamples) {
  SyntheticGestureDataset ds({.num_classes = 6, .samples_per_class = 3});
  EXPECT_EQ(ds.size(), 18);
  EXPECT_EQ(ds.label(0), 0);
  EXPECT_EQ(ds.label(17), 5);
}

TEST(DatasetTest, OutOfRangeIndexThrows) {
  SyntheticImageDataset img({.num_classes = 2, .samples_per_class = 2});
  EXPECT_THROW(img.get_batch({99}, 2), Error);
  SyntheticEventDataset ev({.num_classes = 2, .samples_per_class = 2});
  EXPECT_THROW(ev.get_batch({-1}, 2), Error);
}

}  // namespace
}  // namespace ttsnn
