// Tests for the Jacobi eigensolver and Gram-based SVD that underpin TT-SVD
// and VBMF rank estimation.

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/linalg.h"
#include "tensor/ops.h"

namespace ttsnn {
namespace {

TEST(SymEigTest, DiagonalMatrixEigenvalues) {
  Tensor a({3, 3}, {3, 0, 0, 0, 1, 0, 0, 0, 2});
  SymEig e = sym_eig(a);
  EXPECT_NEAR(e.values[0], 3.0, 1e-6);
  EXPECT_NEAR(e.values[1], 2.0, 1e-6);
  EXPECT_NEAR(e.values[2], 1.0, 1e-6);
}

TEST(SymEigTest, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  Tensor a({2, 2}, {2, 1, 1, 2});
  SymEig e = sym_eig(a);
  EXPECT_NEAR(e.values[0], 3.0, 1e-6);
  EXPECT_NEAR(e.values[1], 1.0, 1e-6);
  // Eigenvector for 3 is (1, 1)/sqrt(2) up to sign.
  const float v0 = e.vectors.at({0, 0});
  const float v1 = e.vectors.at({1, 0});
  EXPECT_NEAR(std::fabs(v0), std::sqrt(0.5), 1e-5);
  EXPECT_NEAR(v0, v1, 1e-5);
}

TEST(SymEigTest, ReconstructsMatrix) {
  Rng rng(4);
  Tensor b = Tensor::randn({6, 6}, rng);
  Tensor a = matmul_tn(b, b);  // symmetric PSD
  SymEig e = sym_eig(a);
  // A == V diag(lambda) V^T
  Tensor lam({6, 6});
  for (int64_t i = 0; i < 6; ++i) {
    lam.at({i, i}) = static_cast<float>(e.values[static_cast<size_t>(i)]);
  }
  Tensor recon = matmul(matmul(e.vectors, lam), e.vectors.transpose2d());
  EXPECT_LT(max_abs_diff(a, recon), 1e-3);
}

TEST(SymEigTest, EigenvectorsOrthonormal) {
  Rng rng(8);
  Tensor b = Tensor::randn({8, 8}, rng);
  Tensor a = matmul_tn(b, b);
  SymEig e = sym_eig(a);
  Tensor vtv = matmul_tn(e.vectors, e.vectors);
  for (int64_t i = 0; i < 8; ++i) {
    for (int64_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(vtv.at({i, j}), i == j ? 1.0F : 0.0F, 1e-4);
    }
  }
}

TEST(SymEigTest, RejectsAsymmetric) {
  Tensor a({2, 2}, {1, 5, -5, 1});
  EXPECT_THROW(sym_eig(a), Error);
}

TEST(SymEigTest, RejectsNonSquare) {
  EXPECT_THROW(sym_eig(Tensor::zeros({2, 3})), Error);
}

class SvdShapeTest : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(SvdShapeTest, ReconstructsInput) {
  auto [m, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 100 + n));
  Tensor a = Tensor::randn({m, n}, rng);
  Svd f = svd(a);
  const int64_t r = std::min(m, n);
  EXPECT_EQ(f.u.shape(), (Shape{m, r}));
  EXPECT_EQ(f.s.shape(), (Shape{r}));
  EXPECT_EQ(f.v.shape(), (Shape{n, r}));
  // Reconstruct U S V^T.
  Tensor us = f.u.clone();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < r; ++j) us.at({i, j}) *= f.s[j];
  }
  Tensor recon = matmul_nt(us, f.v);
  EXPECT_LT(max_abs_diff(a, recon), 1e-3) << "m=" << m << " n=" << n;
  // Singular values descending and non-negative.
  for (int64_t i = 0; i + 1 < r; ++i) {
    EXPECT_GE(f.s[i] + 1e-6F, f.s[i + 1]);
  }
  EXPECT_GE(f.s[r - 1], -1e-6F);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdShapeTest,
                         ::testing::Values(std::pair<int64_t, int64_t>{4, 4},
                                           std::pair<int64_t, int64_t>{3, 9},
                                           std::pair<int64_t, int64_t>{9, 3},
                                           std::pair<int64_t, int64_t>{16, 5},
                                           std::pair<int64_t, int64_t>{5, 16},
                                           std::pair<int64_t, int64_t>{1, 7},
                                           std::pair<int64_t, int64_t>{32, 48}));

TEST(SvdTest, ExactLowRankMatrixRecovered) {
  // Rank-2 matrix: singular values beyond index 1 must be ~0.
  Rng rng(17);
  Tensor u = Tensor::randn({10, 2}, rng);
  Tensor v = Tensor::randn({2, 12}, rng);
  Tensor a = matmul(u, v);
  Svd f = svd(a);
  EXPECT_GT(f.s[0], 0.1F);
  EXPECT_GT(f.s[1], 0.01F);
  for (int64_t i = 2; i < f.s.numel(); ++i) EXPECT_NEAR(f.s[i], 0.0F, 1e-2F);
}

TEST(SvdTest, SingularValuesMatchFullSvd) {
  Rng rng(23);
  Tensor a = Tensor::randn({7, 11}, rng);
  Svd f = svd(a);
  auto s = singular_values(a);
  ASSERT_EQ(static_cast<int64_t>(s.size()), f.s.numel());
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_NEAR(s[i], f.s[static_cast<int64_t>(i)], 1e-3);
  }
}

TEST(SvdTest, OrthonormalFactors) {
  Rng rng(29);
  Tensor a = Tensor::randn({6, 14}, rng);
  Svd f = svd(a);
  Tensor utu = matmul_tn(f.u, f.u);
  Tensor vtv = matmul_tn(f.v, f.v);
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(utu.at({i, j}), i == j ? 1.0F : 0.0F, 1e-3);
      EXPECT_NEAR(vtv.at({i, j}), i == j ? 1.0F : 0.0F, 1e-3);
    }
  }
}

TEST(SvdTest, FrobeniusNormPreserved) {
  Rng rng(31);
  Tensor a = Tensor::randn({9, 5}, rng);
  Svd f = svd(a);
  double s2 = 0.0;
  for (int64_t i = 0; i < f.s.numel(); ++i) {
    s2 += static_cast<double>(f.s[i]) * f.s[i];
  }
  EXPECT_NEAR(std::sqrt(s2), a.norm(), 1e-3);
}

}  // namespace
}  // namespace ttsnn
