#pragma once

/// \file model_gen.h
/// Shared seeded random module-tree generator for the fuzz/property suites.
///
/// One seed fully determines one sample: architecture depth, channel widths,
/// strides, residual vs plain blocks, pool placement, BN flavor (per-step /
/// tdBN / TEBN), LIF reset mode, head style, and the TT decomposition
/// (none / STT / PTT / HTT with a random schedule). The sample comes back
/// trained for two steps (so the BN running statistics are non-trivial) and
/// frozen in eval mode — exactly the state infer::compile consumes.
///
/// Replay protocol, honored by every suite that includes this header:
///  - TTSNN_TEST_SEED=<n> pins the whole suite to that single seed; on any
///    randomized failure the suite prints the exact line to re-export.
///  - TTSNN_FUZZ_ITERS=<n> bounds sample counts (sanitizer CI jobs run a
///    reduced sweep; the default count is the suite's own).

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/factorize.h"
#include "core/models.h"
#include "nn/batchnorm.h"
#include "nn/containers.h"
#include "nn/conv2d.h"
#include "nn/lif.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "tensor/ops.h"
#include "util/common.h"

namespace ttsnn::testgen {

/// True when TTSNN_TEST_SEED is exported — the suite should then run ONLY
/// that seed (the replay of one failing sample), not its whole sweep.
inline bool seed_pinned() {
  const char* env = std::getenv("TTSNN_TEST_SEED");
  return env != nullptr && *env != '\0';
}

/// The suite's base seed: TTSNN_TEST_SEED when exported, else `fallback`.
inline uint64_t suite_seed(uint64_t fallback) {
  const char* env = std::getenv("TTSNN_TEST_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return fallback;
}

/// Sample budget for randomized sweeps: TTSNN_FUZZ_ITERS when exported (and
/// positive), else `fallback`. A pinned seed always means exactly one sample.
inline int iteration_budget(int fallback) {
  const char* env = std::getenv("TTSNN_FUZZ_ITERS");
  if (env != nullptr && *env != '\0') {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<int>(v);
  }
  return fallback;
}

/// The exact environment line that replays one failing sample. Printed via
/// SCOPED_TRACE / assertion messages so a CI failure is reproducible with a
/// copy-paste.
inline std::string seed_line(uint64_t seed) {
  std::ostringstream oss;
  oss << "replay: TTSNN_TEST_SEED=" << seed << " <this test binary>";
  return oss.str();
}

/// TT decomposition applied to a generated sample; kNone keeps every conv
/// dense.
enum class GenTT { kNone, kStt, kPtt, kHtt };

inline const char* gen_tt_name(GenTT m) {
  switch (m) {
    case GenTT::kNone:
      return "none";
    case GenTT::kStt:
      return "stt";
    case GenTT::kPtt:
      return "ptt";
    case GenTT::kHtt:
      return "htt";
  }
  return "?";
}

struct GeneratedModel {
  ModulePtr net;
  int64_t timesteps = 1;
  Shape input;       ///< a valid concrete [T, N, C, H, W] for this sample
  std::string desc;  ///< one-line sample summary for failure messages
};

/// Builds, briefly trains (two forwards move the BN running statistics away
/// from their init) and eval-freezes one random sample. Every knob derives
/// from `seed` alone, so a failing sample replays bit-exactly.
inline GeneratedModel random_model(uint64_t seed) {
  Rng rng(seed);
  GeneratedModel gm;

  gm.timesteps = 1 + rng.index(4);                  // T in [1, 4]
  const int64_t n = 1 + rng.index(2);               // N in [1, 2]
  const int64_t in_c = rng.bernoulli(0.5F) ? 3 : 2;
  const int64_t h0 = 8 + 4 * rng.index(2);          // 8 or 12
  const int64_t width = 8LL << rng.index(2);        // 8 or 16
  const int64_t classes = 2 + rng.index(4);
  const GenTT mode = static_cast<GenTT>(rng.index(4));

  BatchNorm::Mode bn_mode = BatchNorm::Mode::kPerStep;
  switch (rng.index(3)) {
    case 1:
      bn_mode = BatchNorm::Mode::kTdBn;
      break;
    case 2:
      bn_mode = BatchNorm::Mode::kTebn;
      break;
    default:
      break;
  }
  LIFNeuron::Options lif;
  lif.reset = rng.bernoulli(0.3F) ? ResetMode::kSubtract : ResetMode::kZero;
  const auto bn = [&](int64_t channels) {
    return BatchNorm::Options{
        .channels = channels,
        .mode = bn_mode,
        .alpha_vth = bn_mode == BatchNorm::Mode::kTdBn ? lif.v_th : 1.0F,
        .timesteps = gm.timesteps};
  };

  auto net = std::make_unique<Sequential>();
  // Stem: dense conv + BN (never decomposed — small input channel count).
  net->emplace<Conv2d>(
      Conv2d::Options{.in_channels = in_c, .out_channels = width}, rng);
  net->emplace<BatchNorm>(bn(width));

  std::ostringstream desc;
  desc << "seed=" << seed << " T=" << gm.timesteps << " N=" << n
       << " C=" << in_c << " HW=" << h0 << " width=" << width
       << " tt=" << gen_tt_name(mode) << " bn="
       << (bn_mode == BatchNorm::Mode::kTebn
               ? "tebn"
               : bn_mode == BatchNorm::Mode::kTdBn ? "tdbn" : "perstep")
       << " reset=" << (lif.reset == ResetMode::kZero ? "zero" : "sub")
       << " blocks=";

  int64_t c = width;
  int64_t h = h0;  // "same" 3x3 convs keep H; stride 2 halves it (k=3, p=1)
  const int depth = 1 + static_cast<int>(rng.index(3));  // 1..3 blocks
  for (int i = 0; i < depth; ++i) {
    const bool residual = rng.bernoulli(0.5F);
    const int64_t out_c = rng.bernoulli(0.3F) ? c * 2 : c;
    const int64_t stride = (h >= 8 && rng.bernoulli(0.3F)) ? 2 : 1;
    if (residual) {
      // MS-ResNet basic block: pre-activation body, membrane shortcut (the
      // residual sum is on post-BN values, which is what kAffineAdd fuses).
      auto body = std::make_unique<Sequential>();
      body->emplace<LIFNeuron>(lif);
      body->emplace<Conv2d>(Conv2d::Options{.in_channels = c,
                                            .out_channels = out_c,
                                            .stride = stride},
                            rng);
      body->emplace<BatchNorm>(bn(out_c));
      body->emplace<LIFNeuron>(lif);
      body->emplace<Conv2d>(
          Conv2d::Options{.in_channels = out_c, .out_channels = out_c}, rng);
      body->emplace<BatchNorm>(bn(out_c));
      ModulePtr shortcut;
      if (stride != 1 || c != out_c) {
        auto sc = std::make_unique<Sequential>();
        sc->emplace<Conv2d>(Conv2d::Options{.in_channels = c,
                                            .out_channels = out_c,
                                            .kernel_h = 1,
                                            .kernel_w = 1,
                                            .stride = stride},
                            rng);
        sc->emplace<BatchNorm>(bn(out_c));
        shortcut = std::move(sc);
      }
      net->add(std::make_unique<Residual>(std::move(body), std::move(shortcut)));
      desc << "R";
    } else {
      net->emplace<LIFNeuron>(lif);
      net->emplace<Conv2d>(Conv2d::Options{.in_channels = c,
                                           .out_channels = out_c,
                                           .stride = stride},
                           rng);
      net->emplace<BatchNorm>(bn(out_c));
      desc << "P";
    }
    c = out_c;
    if (stride == 2) h = (h - 1) / 2 + 1;
    desc << "(c" << out_c << ",s" << stride;
    // Pool placement knob: sometimes between blocks, on the real-valued
    // post-BN features (needs an even spatial extent to stay legal).
    if (h % 2 == 0 && h >= 4 && rng.bernoulli(0.25F)) {
      net->emplace<AvgPool2d>(2);
      h /= 2;
      desc << ",pool";
    }
    desc << ")";
  }

  // Head: spike then either global-pool or flatten classification.
  net->emplace<LIFNeuron>(lif);
  if (rng.bernoulli(0.5F)) {
    net->emplace<GlobalAvgPool>();
    net->emplace<Linear>(c, classes, rng);
    desc << " head=gpool";
  } else {
    net->emplace<Flatten>();
    net->emplace<Linear>(c * h * h, classes, rng);
    desc << " head=flatten";
  }

  if (mode != GenTT::kNone) {
    FactorizeOptions fo;
    fo.mode = mode == GenTT::kStt
                  ? TTMode::kSTT
                  : mode == GenTT::kPtt ? TTMode::kPTT : TTMode::kHTT;
    fo.use_vbmf = false;
    fo.rank_fraction = 0.25 + 0.25 * static_cast<double>(rng.index(3));
    if (mode == GenTT::kHtt) {
      fo.htt_schedule.resize(static_cast<size_t>(gm.timesteps));
      for (size_t t = 0; t < fo.htt_schedule.size(); ++t) {
        fo.htt_schedule[t] = rng.bernoulli(0.5F);
      }
    }
    factorize_network(*net, fo, rng);
  }

  gm.input = {gm.timesteps, n, in_c, h0, h0};
  net->set_training(true);
  for (int i = 0; i < 2; ++i) {
    net->forward(Tensor::uniform(gm.input, rng));
  }
  net->clear_cache();
  net->set_training(false);

  gm.net = std::move(net);
  gm.desc = desc.str();
  return gm;
}

/// Deterministic factorized MS-ResNet18 with moved BN statistics — the shared
/// replacement for the hand-rolled "trained model" fixtures the infer suites
/// used to duplicate. Exercises residuals, flatten, pooling, and every TT op.
inline ModulePtr trained_resnet18(TTMode mode, Rng& rng,
                                  int64_t timesteps = 4) {
  ModelConfig cfg;
  cfg.in_channels = 3;
  cfg.num_classes = 4;
  cfg.base_width = 8;
  cfg.timesteps = timesteps;
  ModulePtr net = make_ms_resnet18(cfg, rng);
  FactorizeOptions fopts;
  fopts.mode = mode;
  fopts.use_vbmf = false;
  fopts.rank_fraction = 0.5;
  if (mode == TTMode::kHTT) {
    fopts.htt_schedule = {true, false, true, false};
    fopts.htt_schedule.resize(static_cast<size_t>(timesteps));
  }
  factorize_network(*net, fopts, rng);
  net->set_training(true);
  for (int i = 0; i < 2; ++i) {
    net->forward(Tensor::uniform({timesteps, 2, 3, 8, 8}, rng));
  }
  net->clear_cache();
  net->set_training(false);
  return net;
}

}  // namespace ttsnn::testgen
